(** Structured diagnostics for the detection pipeline (core-layer name).

    The failure taxonomy is defined in [Rader_runtime.Fault] — the engine
    must be able to produce these values, and the runtime layer sits below
    core — and re-exported here, with type equalities, under the name the
    core layer and the CLI use. A [Diag.failure] {e is} a
    [Rader_runtime.Fault.failure]; constructors, accessors and renderers
    can be used through either path.

    The taxonomy:
    - [User_program_exn] — an exception escaped the program under test
      (user strand or update/reduce/identity callback);
    - [Monoid_contract] — a sampled reducer self-check found a monoid law
      violated;
    - [Invalid_steal_spec] — the steal specification cannot fire on this
      program (continuation indices beyond K, depth beyond D, …);
    - [Budget_exceeded] — a spec/event/deadline budget ran out;
    - [Engine_invariant] — a Cilk-discipline violation.

    Each failure carries frame / strand / spec context ({!origin}) and has
    a human-readable rendering ({!to_string}). *)

include module type of struct
  include Rader_runtime.Fault
end
