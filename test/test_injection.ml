(* Fault injection: take correct reducer programs and introduce each class
   of bug the paper describes; the right detector must catch exactly the
   injected bug, and the uninjected programs must stay clean. This is the
   "would the tool have saved me?" test matrix. *)

open Rader_runtime
open Rader_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A correct skeleton: sum array elements through a reducer inside a
   spawned computation running alongside other work. Each fault variant
   perturbs exactly one aspect. *)
type fault =
  | None_injected
  | Read_before_sync  (** view-read race: get_value while children run *)
  | Set_after_spawn  (** view-read race: set_value with outstanding children *)
  | Update_touches_shared  (** determinacy race: update writes a shared cell *)
  | Reduce_touches_shared  (** determinacy race: reduce writes a shared cell *)
  | Oblivious_conflict  (** plain determinacy race on a shared cell *)
  | Reduce_raises  (** reduce callback raises: must be contained, serial
                       runs stay clean, coverage sweeps survive partial *)

let program fault ctx =
  let shared = Cell.make_in ctx ~label:"observer" 0 in
  let monoid =
    {
      Reducer.name = "sum";
      identity = (fun c -> Cell.make_in c 0);
      reduce =
        (fun c l r ->
          if fault = Reduce_raises then failwith "injected reduce crash";
          if fault = Reduce_touches_shared then Cell.write c shared 1;
          Cell.write c l (Cell.read c l + Cell.read c r);
          l);
    }
  in
  let sum = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  if fault = Set_after_spawn then begin
    ignore (Cilk.spawn ctx (fun _ -> ()));
    Reducer.set_value ctx sum (Cell.make_in ctx 0)
  end;
  (* a watcher runs in parallel with the summing loop *)
  let watcher =
    Cilk.spawn ctx (fun ctx ->
        if fault = Oblivious_conflict then Cell.write ctx shared 2;
        Cell.read ctx shared)
  in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:1 ~hi:30 (fun ctx i ->
          Reducer.update ctx sum (fun c v ->
              if fault = Update_touches_shared then Cell.write c shared i;
              Cell.write c v (Cell.read c v + i);
              v));
      if fault = Read_before_sync then
        (* the loop helper frames have synced, but the WATCHER (spawned by
           the root, which has not synced) may still be updating... to make
           this a true view-read race, read inside an unsynced region: *)
        ignore ctx);
  if fault = Read_before_sync then ignore (Reducer.get_value ctx sum);
  (* read while the watcher may still be writing: a plain (view-oblivious)
     determinacy race *)
  if fault = Oblivious_conflict then ignore (Cell.read ctx shared);
  Cilk.sync ctx;
  ignore (Cilk.get ctx watcher);
  ignore (Cell.read ctx shared);
  ignore (Reducer.get_value ctx sum)

let peer_set_verdict fault =
  let eng = Engine.create () in
  let d = Peer_set.attach eng in
  ignore (Engine.run eng (program fault));
  List.length (Peer_set.races d)

let coverage_verdict fault = Coverage.exhaustive_check (program fault)

let test_clean_baseline () =
  check "peer-set clean" 0 (peer_set_verdict None_injected);
  let res = coverage_verdict None_injected in
  check "sp+ clean under all specs" 0 (List.length res.Coverage.racy_locs)

let test_read_before_sync () =
  checkb "peer-set catches" true (peer_set_verdict Read_before_sync > 0);
  (* this fault is a view-read race only; SP+ must not blame the reducer's
     own view cells *)
  let res = coverage_verdict Read_before_sync in
  checkb "no determinacy race on the observer cell" true
    (not
       (List.exists
          (fun r -> r.Report.subject_label = "observer")
          res.Coverage.reports))

let test_set_after_spawn () =
  checkb "peer-set catches" true (peer_set_verdict Set_after_spawn > 0)

let test_update_touches_shared () =
  check "peer-set silent (not a view-read race)" 0
    (peer_set_verdict Update_touches_shared);
  let res = coverage_verdict Update_touches_shared in
  checkb "sp+ catches via coverage" true
    (List.exists (fun r -> r.Report.subject_label = "observer") res.Coverage.reports)

let test_reduce_touches_shared () =
  check "peer-set silent" 0 (peer_set_verdict Reduce_touches_shared);
  (* invisible without steals *)
  let eng = Engine.create () in
  let d = Sp_plus.attach eng in
  ignore (Engine.run eng (program Reduce_touches_shared));
  check "serial SP+ run misses it" 0 (List.length (Sp_plus.races d));
  let res = coverage_verdict Reduce_touches_shared in
  checkb "coverage elicits the reduce race" true
    (List.exists (fun r -> r.Report.subject_label = "observer") res.Coverage.reports);
  (* and the witness spec reproduces it in one run *)
  match res.Coverage.reports with
  | r :: _ -> (
      match Coverage.witness_spec res r.Report.subject with
      | Some spec ->
          let eng = Engine.create ~spec () in
          let d = Sp_plus.attach eng in
          ignore (Engine.run eng (program Reduce_touches_shared));
          checkb "witness reproduces" true (Sp_plus.found d)
      | None -> Alcotest.fail "no witness")
  | [] -> Alcotest.fail "no report"

let test_oblivious_conflict () =
  let res = coverage_verdict Oblivious_conflict in
  checkb "sp+ catches the plain race" true
    (List.exists (fun r -> r.Report.subject_label = "observer") res.Coverage.reports);
  (* the baselines catch it too under the serial schedule *)
  let eng = Engine.create () in
  let d = Sp_bags.attach eng in
  ignore (Engine.run eng (program Oblivious_conflict));
  checkb "sp-bags catches" true (Sp_bags.found d);
  let eng = Engine.create () in
  let d = Sp_order.attach eng in
  ignore (Engine.run eng (program Oblivious_conflict));
  checkb "sp-order catches" true (Sp_order.found d)

let test_reduce_raises () =
  (* no steals: the reduce callback never fires, so the run is clean *)
  let eng = Engine.create () in
  (match Engine.run_result eng (program Reduce_raises) with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "serial run should succeed: %s" (Diag.to_string f));
  (* force steals: the crash must surface as a structured diagnostic
     attributed to a reduce frame, not as an escaped exception *)
  let eng = Engine.create ~spec:(Steal_spec.all ()) () in
  (match Engine.run_result eng (program Reduce_raises) with
  | Error (Diag.User_program_exn { origin; _ }) ->
      checkb "origin is a reduce frame" true
        (origin.Diag.o_kind = Tool.Reduce_fn)
  | Error f -> Alcotest.failf "wrong diagnostic class: %s" (Diag.to_string f)
  | Ok _ -> Alcotest.fail "expected a contained failure under steals");
  (* the coverage sweep survives: crashing specs are recorded as
     incomplete while the remaining specs still run *)
  let res = coverage_verdict Reduce_raises in
  checkb "sweep marked partial" true (not res.Coverage.complete);
  checkb "crashing specs recorded" true (res.Coverage.incomplete <> [])

(* Each benchmark, perturbed with an early reducer read, must trip
   Peer-Set; unperturbed it must not (already covered in
   test_benchsuite). *)
let test_benchmarks_with_injected_view_read () =
  List.iter
    (fun b ->
      let racy ctx =
        (* run the benchmark inside a spawned child and read one of ITS
           reducers... we cannot reach inside, so instead: create an extra
           reducer, spawn the benchmark, read the reducer before sync *)
        let r = Rmonoid.new_int_add ctx ~init:0 in
        let work = Cilk.spawn ctx (fun ctx ->
            Rmonoid.add ctx r 1;
            b.Rader_benchsuite.Bench_def.cilk ctx)
        in
        let _ = Rmonoid.int_cell_value ctx r in
        Cilk.sync ctx;
        ignore (Cilk.get ctx work)
      in
      let eng = Engine.create () in
      let d = Peer_set.attach eng in
      ignore (Engine.run eng racy);
      checkb (b.Rader_benchsuite.Bench_def.name ^ ": injected race caught") true
        (Peer_set.found d))
    (Rader_benchsuite.Suite.all ~seed:3 ~scale:0.02 ())

let () =
  Alcotest.run "injection"
    [
      ( "faults",
        [
          Alcotest.test_case "clean baseline" `Quick test_clean_baseline;
          Alcotest.test_case "read before sync" `Quick test_read_before_sync;
          Alcotest.test_case "set after spawn" `Quick test_set_after_spawn;
          Alcotest.test_case "update touches shared" `Quick test_update_touches_shared;
          Alcotest.test_case "reduce touches shared" `Quick test_reduce_touches_shared;
          Alcotest.test_case "oblivious conflict" `Quick test_oblivious_conflict;
          Alcotest.test_case "reduce raises" `Quick test_reduce_raises;
          Alcotest.test_case "benchmarks + injected read" `Quick
            test_benchmarks_with_injected_view_read;
        ] );
    ]
