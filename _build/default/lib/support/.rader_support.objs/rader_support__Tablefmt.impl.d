lib/support/tablefmt.ml: Array Buffer List Printf String
