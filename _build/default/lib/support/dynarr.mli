(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this is a small, allocation-conscious
    replacement used throughout the runtime (shadow spaces, traces, dag
    construction). Elements live in a flat [array] that doubles on demand.
    All operations are O(1) amortized unless stated otherwise. *)

type 'a t

(** [create ()] is an empty dynamic array. *)
val create : unit -> 'a t

(** [make n x] is a dynamic array of length [n] filled with [x]. *)
val make : int -> 'a -> 'a t

(** [length t] is the number of elements currently stored. *)
val length : 'a t -> int

(** [get t i] is element [i]. @raise Invalid_argument if out of bounds. *)
val get : 'a t -> int -> 'a

(** [set t i x] replaces element [i]. @raise Invalid_argument if out of
    bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push t x] appends [x] at the end. *)
val push : 'a t -> 'a -> unit

(** [pop t] removes and returns the last element.
    @raise Invalid_argument if [t] is empty. *)
val pop : 'a t -> 'a

(** [top t] is the last element without removing it.
    @raise Invalid_argument if [t] is empty. *)
val top : 'a t -> 'a

(** [is_empty t] is [length t = 0]. *)
val is_empty : 'a t -> bool

(** [clear t] removes all elements (keeps the backing store). *)
val clear : 'a t -> unit

(** [ensure t n x] grows [t] to length at least [n], filling new slots with
    [x]. Does nothing if [length t >= n]. *)
val ensure : 'a t -> int -> 'a -> unit

(** [iter f t] applies [f] to every element in index order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f t] applies [f i x] to every element in index order. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [fold_left f acc t] folds over elements in index order. *)
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

(** [to_list t] is the elements in index order (O(n)). *)
val to_list : 'a t -> 'a list

(** [to_array t] is a fresh array of the elements (O(n)). *)
val to_array : 'a t -> 'a array

(** [of_list xs] is a dynamic array holding [xs] in order. *)
val of_list : 'a list -> 'a t

(** [exists p t] is true iff some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [find_opt p t] is the first element satisfying [p], if any. *)
val find_opt : ('a -> bool) -> 'a t -> 'a option
