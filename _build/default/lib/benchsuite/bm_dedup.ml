open Rader_runtime

(* Content-defined chunking: a boundary is declared where a rolling hash of
   the last 8 bytes has its low [mask_bits] bits zero, with min/max chunk
   lengths; then each chunk is fingerprinted and RLE-compressed. All of
   this is pure, block-local computation shared verbatim by both
   versions. *)

let mask = 0x3f (* ~64-byte average chunks *)
let min_chunk = 16
let max_chunk = 256

let chunk_block bytes lo hi emit =
  let roll = ref 0 in
  let start = ref lo in
  for i = lo to hi - 1 do
    roll := ((!roll lsl 1) + Char.code (Bytes.get bytes i)) land 0xffffff;
    let len = i - !start + 1 in
    if (len >= min_chunk && !roll land mask = 0) || len >= max_chunk || i = hi - 1
    then begin
      emit !start (i + 1);
      start := i + 1;
      roll := 0
    end
  done

let fingerprint bytes lo hi =
  let acc = ref 0x3bf29ce484222325 in
  for i = lo to hi - 1 do
    acc := (!acc lxor Char.code (Bytes.get bytes i)) * 0x100000001b3
  done;
  !acc land max_int

let rle_size bytes lo hi =
  (* size of the run-length encoding: 2 bytes per run *)
  let runs = ref 0 in
  let i = ref lo in
  while !i < hi do
    let c = Bytes.get bytes !i in
    let j = ref !i in
    while !j < hi && Bytes.get bytes !j = c && !j - !i < 255 do
      incr j
    done;
    incr runs;
    i := !j
  done;
  2 * !runs

let descriptor bytes lo hi =
  Printf.sprintf "%016x:%d:%d\n" (fingerprint bytes lo hi) (hi - lo)
    (rle_size bytes lo hi)

let block_bounds size block i =
  let lo = i * block in
  (lo, min size (lo + block))

let distinct_fingerprints output =
  let seen = Hashtbl.create 256 in
  String.split_on_char '\n' output
  |> List.iter (fun line ->
         match String.index_opt line ':' with
         | Some k -> Hashtbl.replace seen (String.sub line 0 k) ()
         | None -> ());
  Hashtbl.length seen

let checksum output =
  Bench_def.fnv_int (Bench_def.fnv_string output) (distinct_fingerprints output)

let plain bytes block () =
  let size = Bytes.length bytes in
  let n_blocks = (size + block - 1) / block in
  let buf = Buffer.create (size / 8) in
  for i = 0 to n_blocks - 1 do
    let lo, hi = block_bounds size block i in
    chunk_block bytes lo hi (fun a b -> Buffer.add_string buf (descriptor bytes a b))
  done;
  checksum (Buffer.contents buf)

let cilk bytes block ctx =
  let size = Bytes.length bytes in
  let n_blocks = (size + block - 1) / block in
  let out = Reducer.create ctx Rmonoid.ostream ~init:(Cell.make_in ctx (Buffer.create (size / 8))) in
  Cilk.parallel_for ctx ~lo:0 ~hi:n_blocks (fun ctx i ->
      let lo, hi = block_bounds size block i in
      chunk_block bytes lo hi (fun a b ->
          Rmonoid.ostream_emit ctx out (descriptor bytes a b)));
  Cilk.sync ctx;
  let final = Reducer.get_value ctx out in
  checksum (Buffer.contents (Cell.read ctx final))

let bench ~seed ~size ~block =
  let bytes = Workloads.random_bytes ~seed size in
  {
    Bench_def.name = "dedup";
    descr = "Compression program";
    input = Printf.sprintf "%d KiB" (size / 1024);
    plain = plain bytes block;
    cilk = cilk bytes block;
  }
