lib/dag/peers.mli: Dag Rader_support
