(** The 6-benchmark suite of the paper's §8 evaluation, with laptop-scale
    default inputs. [scale] multiplies the work (≈ linearly, except [fib]
    and [knapsack] whose depth parameters grow logarithmically). *)

(** [all ?seed ?scale ()] is the suite in the paper's table order
    (collision, dedup, ferret, fib, knapsack, pbfs). *)
val all : ?seed:int -> ?scale:float -> unit -> Bench_def.t list

(** [find name] picks a benchmark from [all ()] by name.
    @raise Not_found for unknown names. *)
val find : ?seed:int -> ?scale:float -> string -> Bench_def.t

(** [names] in table order. *)
val names : string list
