(** Replayable witness certificates — the [rader verify] driver.

    Joins the {!Symbolic} whole-family verdict with the sweep that
    replays exactly {!Symbolic.replay_specs}
    ([Coverage.exhaustive_check ~symbolic:true]): every reported race is
    backed by a replay-confirmed witness steal specification (the first
    spec, in canonical family order, whose replay elicited it — the
    lexicographic minimum of the family under that order), every clean
    location by a steal-independent certificate plus, where the residual
    set is non-empty, the residual replays that also came back clean.
    [racy_locs] is byte-identical to the enumerated §7 sweep by
    construction.

    The symbolic layer explains and accelerates; it never decides: a
    scan claim no replay confirms is surfaced in [unconfirmed] and the
    replayed verdict stands. *)

type verdict =
  | Racy of {
      witness : string;  (** replay-confirmed witness spec name *)
      first_strand : int;  (** -1 when only steal-elicited (not in the IR) *)
      second_strand : int;
      pair : string;  (** access kinds, e.g. ["write/write"] *)
      always : bool;  (** racy on every spec of the family (R006) *)
    }
  | Clean of {
      cert : Rader_core.Coverage.certificate option;
      cleared_by : int;  (** residual replays that also had to come back clean *)
    }

type row = { r_loc : int; r_label : string; r_verdict : verdict }

type t = {
  program : string;
  prof : Rader_core.Coverage.profile;
  n_specs : int;
  n_replays : int;
  n_skipped : int;
  n_residual : int;
  racy_locs : int list;
  reports : Rader_core.Report.t list;
  rows : row list;
  spec_independent : int list;
  unconfirmed : int list;
  truncated : bool;
  incomplete : (string * Rader_core.Diag.failure) list;
  complete : bool;
  res : Rader_core.Coverage.result;
}

(** [verify ~name program] runs the symbolic verification pipeline: one
    profiling run, one recorded IR run, the scan, and replays of exactly
    the witness specs. [Error] if the IR run crashes (contained) — use the
    enumerated sweep for crashing programs. Parameters as in
    [Coverage.exhaustive_check]. *)
val verify :
  ?reach:Rader_reach.Reach.backend ->
  ?max_pairs:int ->
  ?jobs:int ->
  ?max_events:int ->
  ?deadline:float ->
  ?with_obs:bool ->
  name:string ->
  (Rader_runtime.Engine.ctx -> int) ->
  (t, Rader_core.Diag.failure) result

(** Render the per-location witness table (or the race-free one-liner). *)
val to_table : t -> string

(** Render the result as one JSON object. *)
val to_json : t -> string
