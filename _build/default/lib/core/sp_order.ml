module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Om = Rader_support.Om
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr

type fstate = {
  fid : int;
  mutable cur_e : Om.elt; (* English label of the current strand *)
  mutable cur_h : Om.elt; (* Hebrew label of the current strand *)
  mutable pending_cont_h : Om.elt; (* Hebrew label reserved for the
                                      continuation of the ongoing spawn *)
  mutable first_child_last_h : Om.elt; (* Hebrew label of the last strand of
                                          the current sync block's first
                                          spawned child; -1 if none *)
}

type t = {
  eng : Engine.t;
  english : Om.t;
  hebrew : Om.t;
  stack : fstate Dynarr.t;
  reader_h : Shadow.t; (* loc -> Hebrew label of last recorded reader *)
  writer_h : Shadow.t;
  collector : Report.collector;
  reader_frame : Shadow.t; (* loc -> frame of recorded reader, for reports *)
  writer_frame : Shadow.t;
}

let create eng =
  {
    eng;
    english = Om.create ();
    hebrew = Om.create ();
    stack = Dynarr.create ();
    reader_h = Shadow.create ();
    writer_h = Shadow.create ();
    collector = Report.collector ();
    reader_frame = Shadow.create ();
    writer_frame = Shadow.create ();
  }

let top d = Dynarr.top d.stack

let on_frame_enter d ~frame ~spawned =
  if Dynarr.is_empty d.stack then
    Dynarr.push d.stack
      {
        fid = frame;
        cur_e = Om.base d.english;
        cur_h = Om.base d.hebrew;
        pending_cont_h = -1;
        first_child_last_h = -1;
      }
  else begin
    let f = top d in
    let child_e = Om.insert_after d.english f.cur_e in
    let child_h =
      if spawned then begin
        (* Hebrew: continuation first, then the child; reserve the
           continuation's label now so the child's strands land after it. *)
        let cont_h = Om.insert_after d.hebrew f.cur_h in
        f.pending_cont_h <- cont_h;
        Om.insert_after d.hebrew cont_h
      end
      else Om.insert_after d.hebrew f.cur_h
    in
    Dynarr.push d.stack
      {
        fid = frame;
        cur_e = child_e;
        cur_h = child_h;
        pending_cont_h = -1;
        first_child_last_h = -1;
      }
  end

let on_frame_return d ~frame ~spawned =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  if not (Dynarr.is_empty d.stack) then begin
    let f = top d in
    (* English order = serial order: the continuation strand follows the
       child's last strand. *)
    f.cur_e <- Om.insert_after d.english g.cur_e;
    if spawned then begin
      if f.first_child_last_h = -1 then f.first_child_last_h <- g.cur_h;
      f.cur_h <- f.pending_cont_h
    end
    else f.cur_h <- Om.insert_after d.hebrew g.cur_h
  end

let on_sync d ~frame =
  let f = top d in
  assert (f.fid = frame);
  (* The post-sync strand is in series with everything in the block. In
     Hebrew order the block's maximum is the last strand of the FIRST
     spawned child (spawned children's chains stack in reverse). *)
  f.cur_e <- Om.insert_after d.english f.cur_e;
  f.cur_h <-
    Om.insert_after d.hebrew
      (if f.first_child_last_h = -1 then f.cur_h else f.first_child_last_h);
  f.first_child_last_h <- -1

(* The recorded access is serially — hence English- — before the current
   strand, so it is logically parallel iff the current strand is
   Hebrew-before it. *)
let parallel_with_current d f h_stored = Om.precedes d.hebrew f.cur_h h_stored

let report d ~loc ~first_frame ~first_access ~second_access ~frame =
  Report.report d.collector
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label d.eng loc;
      first_frame;
      first_access;
      second_frame = frame;
      second_access;
      second_strand = Engine.current_strand d.eng;
      second_view_aware = false;
      detail = "(SP-order)";
    }

let on_read d ~frame ~loc =
  let f = top d in
  let wh = Shadow.get d.writer_h loc in
  if wh <> Shadow.absent && parallel_with_current d f wh then
    report d ~loc
      ~first_frame:(Shadow.get d.writer_frame loc)
      ~first_access:Report.Write ~second_access:Report.Read ~frame;
  let rh = Shadow.get d.reader_h loc in
  if rh = Shadow.absent || not (parallel_with_current d f rh) then begin
    Shadow.set d.reader_h loc f.cur_h;
    Shadow.set d.reader_frame loc frame
  end

let on_write d ~frame ~loc =
  let f = top d in
  let rh = Shadow.get d.reader_h loc in
  if rh <> Shadow.absent && parallel_with_current d f rh then
    report d ~loc
      ~first_frame:(Shadow.get d.reader_frame loc)
      ~first_access:Report.Read ~second_access:Report.Write ~frame;
  let wh = Shadow.get d.writer_h loc in
  if wh <> Shadow.absent && parallel_with_current d f wh then
    report d ~loc
      ~first_frame:(Shadow.get d.writer_frame loc)
      ~first_access:Report.Write ~second_access:Report.Write ~frame;
  if wh = Shadow.absent || not (parallel_with_current d f wh) then begin
    Shadow.set d.writer_h loc f.cur_h;
    Shadow.set d.writer_frame loc frame
  end

let tool d =
  {
    Tool.null with
    Tool.on_frame_enter =
      (fun ~frame ~parent:_ ~spawned ~kind:_ -> on_frame_enter d ~frame ~spawned);
    on_frame_return =
      (fun ~frame ~parent:_ ~spawned ~kind:_ -> on_frame_return d ~frame ~spawned);
    on_sync = (fun ~frame -> on_sync d ~frame);
    on_read = (fun ~frame ~loc ~view_aware:_ -> on_read d ~frame ~loc);
    on_write = (fun ~frame ~loc ~view_aware:_ -> on_write d ~frame ~loc);
  }

let attach eng =
  let d = create eng in
  Engine.set_tool eng (tool d);
  d

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
