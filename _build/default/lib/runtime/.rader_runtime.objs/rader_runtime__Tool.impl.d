lib/runtime/tool.ml:
