type t = Leaf of int | S of t * t | P of t * t

type item = Strand of int | Spawned of t | Called of t

let tree_of_item = function
  | Strand id -> Leaf id
  | Spawned t -> t
  | Called t -> t

let rec block_tree = function
  | [] -> invalid_arg "Sp_tree.block_tree: empty sync block"
  | [ item ] -> tree_of_item item
  | item :: rest ->
      let left = tree_of_item item in
      let right = block_tree rest in
      (* A node is a P node exactly when its left child is the parse tree of
         a spawned subcomputation (canonical form, paper §4). *)
      (match item with
      | Spawned _ -> P (left, right)
      | Strand _ | Called _ -> S (left, right))

let rec function_tree = function
  | [] -> invalid_arg "Sp_tree.function_tree: no sync blocks"
  | [ b ] -> b
  | b :: rest -> S (b, function_tree rest)

let leaves t =
  let rec go t acc =
    match t with
    | Leaf id -> id :: acc
    | S (a, b) | P (a, b) -> go a (go b acc)
  in
  go t []

type indexed = {
  parent : int array; (* node id -> parent node id, -1 at root *)
  is_p : bool array;
  depth : int array;
  leaf_node : (int, int) Hashtbl.t; (* strand id -> node id *)
}

let index t =
  let count = ref 0 in
  let rec count_nodes = function
    | Leaf _ -> incr count
    | S (a, b) | P (a, b) ->
        incr count;
        count_nodes a;
        count_nodes b
  in
  count_nodes t;
  let n = !count in
  let parent = Array.make n (-1) in
  let is_p = Array.make n false in
  let depth = Array.make n 0 in
  let leaf_node = Hashtbl.create 64 in
  let next = ref 0 in
  let rec go t p d =
    let id = !next in
    incr next;
    parent.(id) <- p;
    depth.(id) <- d;
    (match t with
    | Leaf s ->
        if Hashtbl.mem leaf_node s then
          invalid_arg "Sp_tree.index: duplicate leaf strand id";
        Hashtbl.replace leaf_node s id
    | S (a, b) ->
        go a id (d + 1);
        go b id (d + 1)
    | P (a, b) ->
        is_p.(id) <- true;
        go a id (d + 1);
        go b id (d + 1));
    ()
  in
  go t (-1) 0;
  { parent; is_p; depth; leaf_node }

let node_of ix u =
  match Hashtbl.find_opt ix.leaf_node u with
  | Some n -> n
  | None -> invalid_arg "Sp_tree: unknown leaf strand"

(* Walk both nodes up to their LCA, applying [visit] to every internal node
   stepped onto (i.e., every proper ancestor of a start node up to and
   including the LCA). *)
let walk_to_lca ix a b visit =
  let a = ref a and b = ref b in
  while ix.depth.(!a) > ix.depth.(!b) do
    a := ix.parent.(!a);
    visit !a
  done;
  while ix.depth.(!b) > ix.depth.(!a) do
    b := ix.parent.(!b);
    visit !b
  done;
  while !a <> !b do
    a := ix.parent.(!a);
    visit !a;
    b := ix.parent.(!b);
    visit !b
  done;
  !a

let lca_kind ix u v =
  if u = v then invalid_arg "Sp_tree.lca_kind: identical leaves";
  let lca = walk_to_lca ix (node_of ix u) (node_of ix v) (fun _ -> ()) in
  if ix.is_p.(lca) then `P else `S

let all_s_path ix u v =
  if u = v then true
  else begin
    let ok = ref true in
    let _lca =
      walk_to_lca ix (node_of ix u) (node_of ix v) (fun n ->
          if ix.is_p.(n) then ok := false)
    in
    !ok
  end

let parallel ix u v = u <> v && lca_kind ix u v = `P

let to_dot ?(leaf_attrs = fun _ -> []) t =
  let g = Rader_support.Dot.create "sp_parse_tree" in
  let next = ref 0 in
  let rec go t =
    let id = Printf.sprintf "n%d" !next in
    incr next;
    (match t with
    | Leaf s ->
        Rader_support.Dot.node g id ~label:(string_of_int s)
          ~attrs:(("shape", "box") :: leaf_attrs s)
    | S (a, b) ->
        Rader_support.Dot.node g id ~label:"S" ~attrs:[ ("shape", "circle") ];
        Rader_support.Dot.edge g id (go a) ~attrs:[];
        Rader_support.Dot.edge g id (go b) ~attrs:[]
    | P (a, b) ->
        Rader_support.Dot.node g id ~label:"P"
          ~attrs:[ ("shape", "doublecircle") ];
        Rader_support.Dot.edge g id (go a) ~attrs:[];
        Rader_support.Dot.edge g id (go b) ~attrs:[]);
    id
  in
  let _root = go t in
  Rader_support.Dot.render g

let to_dag t =
  (* Number leaves in serial (left-to-right) order, then wire series
     compositions sink→source and leave parallel compositions unconnected;
     the enclosing series nodes supply the fan-out/fan-in edges. *)
  let dag = Dag.create () in
  let mapping = Hashtbl.create 64 in
  let rec alloc = function
    | Leaf s ->
        let id =
          Dag.add_strand dag ~frame:(-1) ~kind:Dag.User ~view:(-1)
            ~label:(string_of_int s)
        in
        Hashtbl.replace mapping s id
    | S (a, b) | P (a, b) ->
        alloc a;
        alloc b
  in
  alloc t;
  let rec wire = function
    | Leaf s ->
        let id = Hashtbl.find mapping s in
        ([ id ], [ id ])
    | S (a, b) ->
        let src_a, snk_a = wire a in
        let src_b, snk_b = wire b in
        List.iter (fun u -> List.iter (fun v -> Dag.add_edge dag u v) src_b) snk_a;
        (src_a, snk_b)
    | P (a, b) ->
        let src_a, snk_a = wire a in
        let src_b, snk_b = wire b in
        (src_a @ src_b, snk_a @ snk_b)
  in
  let _ = wire t in
  (dag, fun s -> Hashtbl.find mapping s)
