module Reach = Rader_reach.Reach
module Shadow = Rader_memory.Shadow
module Obs = Rader_obs.Obs

(* The Peer-Set detector's hot path: the precedence core (with lazy SS
   insertion), the per-reducer reader/spawn-count shadows, and the Lemma-3
   comparison. Report construction stays with the policy wrapper
   ([Rader_core.Peer_set]) via [on_race].

   Auxiliary (update/reduce/identity) frames are not Cilk functions in
   the peer-set sense and cannot perform reducer-reads (the engine
   forbids it); filtering them here makes the algorithm's verdicts
   independent of the steal specification, since view-read races are
   defined on the user dag. *)

type on_race = reducer:int -> first_frame:int -> second_frame:int -> unit

type t = {
  reach : Reach.Peer.t;
  reader : Shadow.t; (* reducer id -> last reader frame *)
  reader_sc : Shadow.t; (* reducer id -> spawn count of last reader *)
  mutable on_race : on_race;
}

let no_race ~reducer:_ ~first_frame:_ ~second_frame:_ = ()

let create ?(backend = Reach.Dset) () =
  {
    reach = Reach.Peer.create ~lazy_note:true backend;
    reader = Shadow.create ();
    reader_sc = Shadow.create ();
    on_race = no_race;
  }

let set_on_race t f = t.on_race <- f

let backend t = Reach.Peer.backend t.reach

let reset t =
  Reach.Peer.reset t.reach;
  Shadow.clear t.reader;
  Shadow.clear t.reader_sc

let frame_enter t ~frame ~spawned ~kind =
  if kind = Frame_kind.User_fn then
    Reach.Peer.on_frame_enter t.reach ~frame ~spawned

let frame_return t ~frame ~spawned ~kind =
  if kind = Frame_kind.User_fn then
    Reach.Peer.on_frame_return t.reach ~frame ~spawned

let sync t ~frame = Reach.Peer.on_sync t.reach ~frame

let reducer_read t ~frame ~reducer =
  if Obs.enabled () then Obs.bump_peerset_query ();
  let sc = Reach.Peer.spawn_count t.reach in
  let last = Shadow.get t.reader reducer in
  if last <> Shadow.absent then begin
    (* Lemma 3: same peer set iff same spawn count and not in a P bag.
       Short-circuit order matches the seed: the spawn-count shadow is
       only consulted when the bag is not already P. *)
    let racy =
      Reach.Peer.parallel_read t.reach ~reducer ~frame:last
      || Shadow.get t.reader_sc reducer <> sc
    in
    if racy then t.on_race ~reducer ~first_frame:last ~second_frame:frame
  end;
  Shadow.set t.reader reducer frame;
  Shadow.set t.reader_sc reducer sc;
  Reach.Peer.note_read t.reach ~reducer ~frame
