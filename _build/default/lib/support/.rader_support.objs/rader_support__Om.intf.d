lib/support/om.mli:
