open Rader_runtime

let plain n =
  let acc = ref 0 in
  let rec go n =
    if n < 2 then acc := !acc + n
    else begin
      go (n - 1);
      go (n - 2)
    end
  in
  go n;
  !acc

let cilk n ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  let rec go ctx n =
    if n < 2 then Rmonoid.add ctx r n
    else begin
      ignore (Cilk.spawn ctx (fun ctx -> go ctx (n - 1)));
      Cilk.call ctx (fun ctx -> go ctx (n - 2));
      Cilk.sync ctx
    end
  in
  Cilk.call ctx (fun ctx -> go ctx n);
  Rmonoid.int_cell_value ctx r

let bench ~n =
  {
    Bench_def.name = "fib";
    descr = "Recursive Fibonacci";
    input = string_of_int n;
    plain = (fun () -> plain n);
    cilk = cilk n;
  }
