(** Recursive 0/1 knapsack (after Frigo's Cilk++ knapsack-challenge
    program): exhaustive branch-and-bound over item subsets with spawns at
    every take/skip decision near the root, folding candidate values into a
    user-defined maximum reducer. Like [fib], very little work per strand. *)

val bench : seed:int -> n_items:int -> capacity:int -> spawn_depth:int -> Bench_def.t
