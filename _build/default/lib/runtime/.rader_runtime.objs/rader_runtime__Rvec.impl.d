lib/runtime/rvec.ml: Array Cell Engine List Printf Rader_support Reducer
