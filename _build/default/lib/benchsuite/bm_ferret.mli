(** Image similarity search, a synthetic rendition of PARSEC's [ferret]
    (the paper converted it to Cilk with a [reducer_ostream]). A database
    of clustered feature vectors stands in for the image corpus; each
    query vector is matched by brute-force k-nearest-neighbour (L2) over
    the database by a parallel loop over queries, and one result line per
    query is written through an ostream reducer. Checksum = FNV of the
    ordered output. *)

val bench : seed:int -> db:int -> queries:int -> dim:int -> topk:int -> Bench_def.t
