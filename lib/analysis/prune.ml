open Rader_runtime
open Rader_core

type decision = {
  d_spec : Steal_spec.t;
  d_kept : bool;
  d_reason : string;
}

let ints l = String.concat "," (List.map string_of_int l)

let decide (prof : Coverage.profile) (spec : Steal_spec.t) =
  let kept = Coverage.spec_relevant prof spec in
  let reason =
    match spec.Steal_spec.shape with
    | Steal_spec.Local_indices idxs ->
        if kept then
          Printf.sprintf "steals a position <= k_rel=%d" prof.Coverage.k_rel
        else
          Printf.sprintf
            "every index in [%s] exceeds k_rel=%d: all steals land after \
             the last instrumented event of their sync block"
            (ints idxs) prof.Coverage.k_rel
    | Steal_spec.At_depth d ->
        if kept then Printf.sprintf "depth %d has a perturbable sync block" d
        else
          Printf.sprintf
            "no frame at depth %d owns a perturbable sync block \
             (rel_depths=[%s])"
            d
            (ints prof.Coverage.rel_depths)
    | Steal_spec.Never -> "the no-steal baseline always runs"
    | Steal_spec.Always | Steal_spec.Probabilistic
    | Steal_spec.Spawn_indices _ | Steal_spec.Opaque ->
        "shape not localizable to sync-block positions: conservatively kept"
  in
  { d_spec = spec; d_kept = kept; d_reason = reason }

let family (prof : Coverage.profile) =
  List.map (decide prof)
    (Coverage.all_specs ~k:prof.Coverage.k ~d:prof.Coverage.d)

let summary decisions =
  ( List.length decisions,
    List.length (List.filter (fun d -> d.d_kept) decisions) )
