(** Explanations for steal-spec family pruning (the third analysis pass).

    The pruning itself lives in [Rader_core.Coverage] ([spec_relevant] /
    [exhaustive_check ~prune]), next to the family it prunes; this module
    turns those decisions into reportable values for the CLI
    ([rader coverage --prune --verbose]) and the bench S7 table: for each
    spec of a profile's family, whether it is kept and {e why}. See
    DESIGN.md §10 for the soundness argument. *)

type decision = {
  d_spec : Rader_runtime.Steal_spec.t;
  d_kept : bool;
  d_reason : string;  (** one-line justification of the decision *)
}

(** [decide prof spec] is [Coverage.spec_relevant] plus its reason. *)
val decide : Rader_core.Coverage.profile -> Rader_runtime.Steal_spec.t -> decision

(** [family prof] is the decision for every spec of [Coverage.all_specs]
    at the profile's [k] and [d], in family order. *)
val family : Rader_core.Coverage.profile -> decision list

(** [summary decisions] is [(total, kept)]. *)
val summary : decision list -> int * int
