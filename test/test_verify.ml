(* Tests for rader verify — symbolic whole-spec-space verification with
   replayable witness certificates (Rader_analysis.Symbolic / Witness).

   - parity: [Witness.verify]'s racy-location set must be byte-identical
     to the enumerated §7 sweep ([Coverage.exhaustive_check]) on 200
     generated reducer programs (racy and clean generators), under both
     reach backends;
   - witnesses: every reported race's witness spec, parsed back and
     replayed through the serial SP+ detector, must elicit a race on
     exactly that location (no unconfirmed claims ever surface as races);
   - certificates: a reducer-free read-only program verifies with zero
     replays (empty residual + clean scan); a truncated scan falls back
     to replaying the no-steal spec and stays sound;
   - R006: a spec-independent race is flagged both by
     [Symbolic.always_racy_locs] and by the lint rule when fed the
     verification result;
   - golden: rendered verify table/JSON for one clean and one racy demo
     are pinned as fixtures (regen: RADER_GOLDEN_REGEN=$PWD/test/golden
     dune runtest). *)

open Rader_runtime
open Rader_core
open Rader_analysis
module G = Rader_testkit.Gen_program
module Demos = Rader_benchsuite.Demos
module Reach = Rader_reach.Reach

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ints l = String.concat ";" (List.map string_of_int l)

let demo name =
  match Demos.resolve ~scale:0.25 name with
  | Ok p -> p
  | Error m -> Alcotest.fail m

let verify_ok ?reach ?max_pairs ~name prog =
  match Witness.verify ?reach ?max_pairs ~name prog with
  | Ok w -> w
  | Error f -> Alcotest.failf "%s: verify crashed: %s" name (Diag.to_string f)

(* Replay [spec] through the serial SP+ detector and return its racy
   locations — the confirmation step every witness must survive. *)
let replay_racy_locs ?reach prog spec =
  let eng = Engine.create ~spec () in
  let sp = Sp_plus.attach ?reach eng in
  ignore (Engine.run_result eng (fun ctx -> ignore (prog ctx)));
  Sp_plus.racy_locs sp

(* The named witness of every racy row must be the sweep's recorded
   witness spec for that location, and an independent serial replay of
   that spec must elicit the race. *)
let witness_spec_of ~tag (w : Witness.t) loc name =
  match Coverage.witness_spec w.Witness.res loc with
  | None -> Alcotest.failf "%s: no recorded witness spec for loc %d" tag loc
  | Some sp ->
      if sp.Steal_spec.name <> name then
        Alcotest.failf "%s: row witness %S ≠ recorded witness %S" tag name
          sp.Steal_spec.name;
      sp

let assert_witnesses_confirmed ?reach ~tag prog (w : Witness.t) =
  List.iter
    (fun row ->
      match row.Witness.r_verdict with
      | Witness.Racy { witness; _ } ->
          let spec = witness_spec_of ~tag w row.Witness.r_loc witness in
          let racy = replay_racy_locs ?reach prog spec in
          if not (List.mem row.Witness.r_loc racy) then
            Alcotest.failf
              "%s: witness %S does not elicit loc %d (replay racy=[%s])" tag
              witness row.Witness.r_loc (ints racy)
      | Witness.Clean _ -> ())
    w.Witness.rows

(* ---------- parity with the enumerated sweep ---------- *)

let prop_parity ~racy ~reach ~count =
  let rname = match reach with Reach.Dset -> "dset" | Reach.Depa -> "depa" in
  QCheck2.Test.make
    ~name:(Printf.sprintf "verify ≡ enumerated sweep (racy=%b reach=%s)" racy rname)
    ~count ~print:G.print
    (G.gen ~with_reducers:true ~racy)
    (fun p ->
      QCheck2.assume (G.max_local_spawns p <= 4);
      let prog = G.interpret p in
      let truth = Coverage.exhaustive_check ~reach ~max_events:200_000 prog in
      QCheck2.assume truth.Coverage.complete;
      match Witness.verify ~reach ~max_events:200_000 ~name:"gen" prog with
      | Error f ->
          QCheck2.Test.fail_reportf
            "sweep completed but verify crashed: %s" (Diag.class_name f)
      | Ok w ->
          if w.Witness.racy_locs <> truth.Coverage.racy_locs then
            QCheck2.Test.fail_reportf
              "verify racy=[%s] ≠ enumerated racy=[%s]"
              (ints w.Witness.racy_locs)
              (ints truth.Coverage.racy_locs)
          else begin
            (* every race claim must be backed by a confirmed witness *)
            List.iter
              (fun row ->
                match row.Witness.r_verdict with
                | Witness.Racy { witness; _ } ->
                    let spec =
                      witness_spec_of ~tag:"gen" w row.Witness.r_loc witness
                    in
                    let racy = replay_racy_locs ~reach prog spec in
                    if not (List.mem row.Witness.r_loc racy) then
                      QCheck2.Test.fail_reportf
                        "witness %S does not elicit loc %d" witness
                        row.Witness.r_loc
                | Witness.Clean _ -> ())
              w.Witness.rows;
            true
          end)

(* ---------- witness confirmation on demos ---------- *)

let test_demo_witnesses () =
  List.iter
    (fun name ->
      let prog = demo name in
      let w = verify_ok ~name prog in
      checkb (name ^ ": complete") true w.Witness.complete;
      checkb (name ^ ": racy") true (w.Witness.racy_locs <> []);
      checkb
        (name ^ ": a report per racy loc")
        true
        (List.length w.Witness.reports = List.length w.Witness.racy_locs);
      assert_witnesses_confirmed ~tag:name prog w)
    [ "fig1-buggy"; "racy-read"; "fib-racy" ]

(* ---------- zero-replay certification ---------- *)

(* Reducer-free, read-only parallelism: the scan certifies every location
   and the residual set is empty, so the whole family is proved race-free
   without a single replay. *)
let read_only_prog ctx =
  let c = Cell.make_in ctx ~label:"shared" 42 in
  let a = Cilk.spawn ctx (fun ctx -> Cell.read ctx c) in
  let b = Cilk.spawn ctx (fun ctx -> Cell.read ctx c) in
  let d = Cilk.spawn ctx (fun ctx -> Cell.read ctx c) in
  Cilk.sync ctx;
  Cilk.get ctx a + Cilk.get ctx b + Cilk.get ctx d

let test_zero_replays () =
  let w = verify_ok ~name:"read-only" read_only_prog in
  checkb "complete" true w.Witness.complete;
  check "racy locs" 0 (List.length w.Witness.racy_locs);
  check "replays" 0 w.Witness.n_replays;
  check "residual" 0 w.Witness.n_residual;
  checkb "whole family skipped" true (w.Witness.n_skipped = w.Witness.n_specs);
  checkb "family nonempty" true (w.Witness.n_specs > 0);
  checkb "not truncated" false w.Witness.truncated

let test_truncated_fallback () =
  (* a 1-pair budget truncates the scan; soundness demands the no-steal
     replay be kept and the verdict stay correct *)
  let w = verify_ok ~max_pairs:1 ~name:"read-only" read_only_prog in
  checkb "truncated" true w.Witness.truncated;
  checkb "still race-free" true (w.Witness.racy_locs = []);
  checkb "fell back to replaying" true (w.Witness.n_replays >= 1);
  let wb = verify_ok ~max_pairs:1 ~name:"fig1-buggy" (demo "fig1-buggy") in
  checkb "truncated racy program still racy" true (wb.Witness.racy_locs <> [])

(* ---------- R006: spec-independent races ---------- *)

let test_spec_independent () =
  let prog = demo "fib-racy" in
  let w = verify_ok ~name:"fib-racy" prog in
  checkb "spec-independent set nonempty" true (w.Witness.spec_independent <> []);
  checkb "spec-independent ⊆ racy" true
    (List.for_all
       (fun l -> List.mem l w.Witness.racy_locs)
       w.Witness.spec_independent);
  let ir =
    match Ir.of_program prog with
    | Ok ir -> ir
    | Error f -> Alcotest.fail (Diag.to_string f)
  in
  let findings = Lint.run ~program:prog ~verify:w ir in
  checkb "R006 fires" true
    (List.exists (fun f -> f.Lint.rule = "R006") findings);
  (* and stays silent when the program has no spec-independent race *)
  let clean = demo "fig1-fixed" in
  let wc = verify_ok ~name:"fig1-fixed" clean in
  check "clean program: no spec-independent locs" 0
    (List.length wc.Witness.spec_independent);
  let irc =
    match Ir.of_program clean with
    | Ok ir -> ir
    | Error f -> Alcotest.fail (Diag.to_string f)
  in
  let fc = Lint.run ~program:clean ~verify:wc irc in
  checkb "R006 silent on fig1-fixed" false
    (List.exists (fun f -> f.Lint.rule = "R006") fc)

(* ---------- golden fixtures ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let golden_case name render () =
  let rendered = render () in
  let fname = Printf.sprintf "%s.golden" name in
  match Sys.getenv_opt "RADER_GOLDEN_REGEN" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir fname) in
      output_string oc rendered;
      close_out oc
  | None ->
      let path = Filename.concat "golden" fname in
      if not (Sys.file_exists path) then
        Alcotest.failf
          "missing golden file %s — generate with \
           RADER_GOLDEN_REGEN=$PWD/test/golden dune runtest"
          fname;
      let expected = read_file path in
      if expected <> rendered then begin
        Printf.printf "--- expected (%s)\n%s--- got\n%s" fname expected rendered;
        Alcotest.failf
          "%s: verify output drifted — if intentional, re-baseline with \
           RADER_GOLDEN_REGEN (see test_verify.ml)"
          fname
      end

let verify_table name () = Witness.to_table (verify_ok ~name (demo name))
let verify_json name () = Witness.to_json (verify_ok ~name (demo name))

let goldens =
  [
    ("verify_fig1-fixed__table", verify_table "fig1-fixed");
    ("verify_fig1-fixed__json", verify_json "fig1-fixed");
    ("verify_fig1-buggy__table", verify_table "fig1-buggy");
    ("verify_fig1-buggy__json", verify_json "fig1-buggy");
  ]

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_parity ~racy:true ~reach:Reach.Dset ~count:50;
      prop_parity ~racy:true ~reach:Reach.Depa ~count:50;
      prop_parity ~racy:false ~reach:Reach.Dset ~count:50;
      prop_parity ~racy:false ~reach:Reach.Depa ~count:50;
    ]

let () =
  Alcotest.run "verify"
    [
      ("parity", properties);
      ( "witnesses",
        [
          Alcotest.test_case "demo witnesses replay-confirmed" `Quick
            test_demo_witnesses;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "zero replays on certified family" `Quick
            test_zero_replays;
          Alcotest.test_case "truncated scan falls back" `Quick
            test_truncated_fallback;
        ] );
      ( "r006",
        [ Alcotest.test_case "spec-independent races" `Quick test_spec_independent ] );
      ( "golden",
        List.map
          (fun (name, render) ->
            Alcotest.test_case name `Quick (golden_case name render))
          goldens );
    ]
