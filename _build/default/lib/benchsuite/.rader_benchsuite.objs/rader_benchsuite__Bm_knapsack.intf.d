lib/benchsuite/bm_knapsack.mli: Bench_def
