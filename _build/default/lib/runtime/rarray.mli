(** Instrumented arrays: one shadow location per slot. *)

type 'a t

(** [make eng ?label n v] allocates an [n]-slot array filled with [v];
    initialization is untracked. *)
val make : Engine.t -> ?label:string -> int -> 'a -> 'a t

(** [init eng ?label n f] allocates and fills slot [i] with [f i],
    untracked. *)
val init : Engine.t -> ?label:string -> int -> (int -> 'a) -> 'a t

(** [length a] is the slot count (no instrumentation: the length is
    immutable). *)
val length : 'a t -> int

(** [read ctx a i] is slot [i]; instrumented. *)
val read : Engine.ctx -> 'a t -> int -> 'a

(** [write ctx a i v] stores [v] in slot [i]; instrumented. *)
val write : Engine.ctx -> 'a t -> int -> 'a -> unit

(** [peek a i] / [poke a i v]: uninstrumented access for setup and
    post-run verification. *)
val peek : 'a t -> int -> 'a

val poke : 'a t -> int -> 'a -> unit

(** [loc a i] is slot [i]'s shadow location id. *)
val loc : 'a t -> int -> int

(** [to_array a] is an uninstrumented snapshot. *)
val to_array : 'a t -> 'a array
