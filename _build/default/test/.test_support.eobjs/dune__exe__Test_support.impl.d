test/test_support.ml: Alcotest Array Bitset Deque Dot Dynarr Fun Int List Om QCheck2 QCheck_alcotest Rader_support Rng Set Stats String Tablefmt
