(* Quickstart: declare a reducer, update it from parallel code, read it
   safely — then make the classic mistake and let the Peer-Set algorithm
   catch it.

   Run with: dune exec examples/quickstart.exe *)

open Rader_runtime
open Rader_core

(* A correct parallel sum with a reducer_opadd-style reducer: updates can
   run in any interleaving; the value is read only after the sync. *)
let correct_sum ctx =
  let sum = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:1 ~hi:101 (fun ctx i -> Rmonoid.add ctx sum i);
  Cilk.sync ctx;
  Rmonoid.int_cell_value ctx sum

(* The same program with the read moved BEFORE the sync: the value now
   depends on how the scheduler managed views — a view-read race. *)
let racy_sum ctx =
  let sum = Rmonoid.new_int_add ctx ~init:0 in
  let work = Cilk.spawn ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:1 ~hi:101 (fun ctx i -> Rmonoid.add ctx sum i))
  in
  let observed = Rmonoid.int_cell_value ctx sum in (* racy read *)
  Cilk.sync ctx;
  ignore (Cilk.get ctx work);
  observed

let run_with_peer_set name program =
  let eng = Engine.create () in
  let detector = Peer_set.attach eng in
  let value = Engine.run eng program in
  Printf.printf "%s -> %d\n" name value;
  match Peer_set.races detector with
  | [] -> print_endline "  no view-read races"
  | races ->
      List.iter (fun r -> Printf.printf "  RACE: %s\n" (Report.to_string r)) races

let () =
  print_endline "== Rader quickstart ==";
  run_with_peer_set "correct_sum" correct_sum;
  run_with_peer_set "racy_sum" racy_sum;
  (* The race is not hypothetical: under a schedule that steals the
     continuation, the racy read observes a fresh identity view. *)
  let serial, _ = Cilk.exec racy_sum in
  let stolen, _ = Cilk.exec ~spec:(Steal_spec.all ()) racy_sum in
  Printf.printf
    "racy read observes %d under the serial schedule but %d when the\n\
     continuation is stolen — the nondeterminism Peer-Set warned about.\n"
    serial stolen
