(** Symbolic whole-spec-space verdict from the no-steal IR.

    Computes, for every instrumented location, a closed-form verdict over
    {e all} steal specifications of the program's §7 density family,
    without replaying them:

    - {e racy on every spec} — a logically parallel, write-bearing access
      pair with both endpoints view-oblivious (the strongest diagnostic;
      feeds lint R006);
    - {e racy without steals} — such a pair whose later endpoint is
      view-oblivious; the witness spec is [Steal_spec.none];
    - {e race-free on every spec} — certified by a steal-independent
      condition ({!Rader_core.Coverage.certificate}), valid across the
      family because every spec outside the {e residual set} provably
      replays byte-identically to the no-steal execution (the PR 4
      relevance lemma over [k_rel] / [rel_depths]);
    - {e steal-dependent} — the residual specs can relocate view-aware
      accesses onto freshly created views and run identity/reduce code the
      IR never recorded; the closed form is explicitly incomplete there
      and {!replay_specs} names exactly the replays needed to decide.

    Soundness is non-negotiable: {!Witness.verify} replays
    {!replay_specs} and never reports a race without a replay-confirmed
    witness. See DESIGN.md §14 for the full argument. *)

type t = {
  scan : Rader_core.Coverage.scan;
  prof : Rader_core.Coverage.profile;
  residual : Rader_runtime.Steal_spec.t list;
      (** relevant specs beyond [none], in canonical family order *)
  n_family : int;  (** full §7 family size for this profile *)
}

(** [analyze ~prof ir] computes the symbolic verdict. [max_pairs] bounds
    the per-location pair scan (default 100_000); blowing it marks the
    scan truncated and {!complete} false. *)
val analyze : ?max_pairs:int -> prof:Rader_core.Coverage.profile -> Ir.t -> t

(** Locations racy in the no-steal execution, ascending. *)
val racy_locs : t -> int list

(** Locations racy under {e every} spec of the family (both witness
    endpoints view-oblivious), ascending — the R006 set. *)
val always_racy_locs : t -> int list

(** [witness_pair t loc] is the minimal witness access pair (serial scan
    order) for a no-steal-racy location. *)
val witness_pair :
  t -> int -> (Rader_runtime.Engine.access * Rader_runtime.Engine.access) option

(** [certificate t loc] is the race-freedom certificate of a clean
    location ([None] for racy or unscanned locations). *)
val certificate : t -> int -> Rader_core.Coverage.certificate option

(** [complete t] — did the pair scan finish within budget? When false,
    verdicts are advisory and a sound checker falls back to replaying the
    no-steal spec as well. *)
val complete : t -> bool

(** [replay_specs t] is the exact replay set a sound whole-family check
    still needs: [Steal_spec.none] when the scan found (or could have
    missed) a no-steal race, then the residual specs, in family order.
    [[]] = the family is proved race-free with zero replays. *)
val replay_specs : t -> Rader_runtime.Steal_spec.t list

(** Human-readable certificate text for tables. *)
val certificate_string : Rader_core.Coverage.certificate -> string
