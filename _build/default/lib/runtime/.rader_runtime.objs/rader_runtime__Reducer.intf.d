lib/runtime/reducer.mli: Engine
