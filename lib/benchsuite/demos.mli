(** Demo programs addressable by name — the registry shared by the CLI
    ([rader check PROGRAM]) and the serve daemon, so a daemon-side check
    replays {e exactly} the program a one-shot check would run and the two
    verdicts can be compared byte for byte. *)

open Rader_runtime

(** Paper Fig. 1: a list reducer updated in parallel with a scan of the
    same list. [~buggy:true] shares structure (shallow copy) and races;
    [~buggy:false] deep-copies and is clean. *)
val fig1 : buggy:bool -> Engine.ctx -> int

(** A reducer-read racing with parallel updates — the view-read race
    Peer-Set exists to catch. *)
val racy_read : Engine.ctx -> int

(** A fib spawn tree whose leaves all bump one shared cell: a structural
    determinacy race on every schedule, with a deterministic return value
    (plain fib). The online CI smoke keys on it. *)
val fib_racy : scale:float -> Engine.ctx -> int

(** Dictionary-reducer word count; clean under every schedule. *)
val wordcount : scale:float -> Engine.ctx -> int

(** Arg-max-reducer game-tree search; deterministic best move under every
    schedule. *)
val minimax : scale:float -> Engine.ctx -> int

(** The demo names (excluding the {!Suite} benchmarks). *)
val demo_names : string list

(** [names ()] is every addressable program: demos then benchmarks. *)
val names : unit -> string list

(** [resolve ~scale name] is the program registered under [name] — a demo
    or a {!Suite} benchmark — or [Error] with a message listing the valid
    names. *)
val resolve :
  ?seed:int -> scale:float -> string -> (Engine.ctx -> int, string) result
