test/test_oracle.ml: Alcotest Cell Cilk Engine List Oracle Rader_core Rader_runtime Reducer Rmonoid Sp_plus Steal_spec
