module Monoid = Rader_monoid.Monoid

let of_pure (m : 'a Monoid.t) : 'a Reducer.monoid =
  {
    Reducer.name = m.Monoid.name;
    identity = (fun _ -> m.Monoid.identity ());
    reduce = (fun _ l r -> m.Monoid.combine l r);
  }

let int_cell_monoid ~name ~zero ~op : int Cell.t Reducer.monoid =
  (* hoisted: the identity runs once per steal-created view *)
  let view_label = name ^ ".view" in
  {
    Reducer.name;
    identity = (fun ctx -> Cell.make_in ctx ~label:view_label zero);
    reduce =
      (fun ctx l r ->
        let rv = Cell.read ctx r in
        let lv = Cell.read ctx l in
        Cell.write ctx l (op lv rv);
        l);
  }

let int_add_cell = int_cell_monoid ~name:"opadd" ~zero:0 ~op:( + )
let int_max_cell = int_cell_monoid ~name:"max" ~zero:min_int ~op:max
let int_min_cell = int_cell_monoid ~name:"min" ~zero:max_int ~op:min

let ostream : Buffer.t Cell.t Reducer.monoid =
  {
    Reducer.name = "ostream";
    identity = (fun ctx -> Cell.make_in ctx ~label:"ostream.view" (Buffer.create 64));
    reduce =
      (fun ctx l r ->
        let rb = Cell.read ctx r in
        let lb = Cell.read ctx l in
        Buffer.add_buffer lb rb;
        Cell.write ctx l lb;
        l);
  }

let ostream_emit ctx r s =
  Reducer.update ctx r (fun c cell ->
      let b = Cell.read c cell in
      Buffer.add_string b s;
      Cell.write c cell b;
      cell)

let ostream_contents r =
  match Reducer.peek r with
  | Some cell -> Buffer.contents (Cell.peek cell)
  | None -> invalid_arg "Rmonoid.ostream_contents: no view in creation region"

let new_int_cell ctx monoid ~init ~label =
  Reducer.create ctx monoid ~init:(Cell.make_in ctx ~label init)

let new_int_add ctx ~init = new_int_cell ctx int_add_cell ~init ~label:"opadd.view0"

let add ctx r k =
  Reducer.update ctx r (fun c cell ->
      Cell.write c cell (Cell.read c cell + k);
      cell)

let new_int_max ctx ~init = new_int_cell ctx int_max_cell ~init ~label:"max.view0"

let maximize ctx r k =
  Reducer.update ctx r (fun c cell ->
      let v = Cell.read c cell in
      if k > v then Cell.write c cell k;
      cell)

let int_cell_value ctx r =
  let cell = Reducer.get_value ctx r in
  Cell.read ctx cell
