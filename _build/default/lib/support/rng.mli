(** Deterministic pseudo-random number generation.

    All workload generators, schedule fuzzers, and property tests use this
    splittable PRNG (splitmix64 core with an xoshiro256** stream) so that
    every experiment in the repository is reproducible from a single integer
    seed, independent of the OCaml stdlib [Random] state. *)

type t

(** [create seed] is a fresh generator determined entirely by [seed]. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Useful to give sub-tasks their own streams. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is true with probability [p]. *)
val bernoulli : t -> float -> bool

(** [shuffle t arr] permutes [arr] in place uniformly (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t arr] is a uniformly chosen element of [arr].
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a
