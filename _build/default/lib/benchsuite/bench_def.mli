(** Common shape of a benchmark: a plain-OCaml version (the paper's
    "no instrumentation" baseline) and a Cilk-DSL version that computes the
    same integer checksum, so correctness is checked on every run. *)

type t = {
  name : string;
  descr : string;
  input : string;  (** human-readable input description for the tables *)
  plain : unit -> int;  (** uninstrumented implementation, returns checksum *)
  cilk : Rader_runtime.Engine.ctx -> int;  (** DSL implementation, same checksum *)
}

(** [fnv_string s] / [fnv_int acc x]: FNV-1a hashing used for stable
    checksums across implementations. *)
val fnv_string : string -> int

val fnv_int : int -> int -> int
