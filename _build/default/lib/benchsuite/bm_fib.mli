(** The paper's synthetic [fib] stress test: recursive Fibonacci where
    every base case updates a [reducer_opadd] and every internal node
    spawns — almost no work per strand, so running time is dominated by
    instrumentation and reducer bookkeeping (paper §8: the benchmark
    "devised to stress test Rader"). *)

val bench : n:int -> Bench_def.t
