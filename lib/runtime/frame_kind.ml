(* Why a frame was created. Lives in its own module so the hot detector
   cores ([Sp_hot], [Peer_hot]) can pattern-match on frame kinds without
   depending on [Tool], which in turn depends on them; [Tool] re-exports
   the constructors so existing clients keep writing [Tool.User_fn]. *)

type t = User_fn | Update_fn | Reduce_fn | Identity_fn

let is_view_aware = function
  | User_fn -> false
  | Update_fn | Reduce_fn | Identity_fn -> true

let name = function
  | User_fn -> "user"
  | Update_fn -> "update"
  | Reduce_fn -> "reduce"
  | Identity_fn -> "identity"
