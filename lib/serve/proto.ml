(* Length-prefixed binary wire protocol for the rader serve daemon.

   Frame: u32 big-endian body length (<= max_frame), then the body.
   Body:  u8 version | u8 tag | u32 request id | tag-specific fields.

   The decoder is total: every malformed body — unknown version or tag,
   truncated field, trailing bytes, a string length pointing past the end
   — yields a structured [err], never an exception. The framing layer is
   equally defensive: an oversized or negative length prefix is an error
   before any allocation happens, so a hostile client cannot make the
   server allocate a giant buffer. *)

let version = 1
let max_frame = 1 lsl 20

type err = { code : int; msg : string }

(* error codes — stable, documented in README *)
let err_bad_length = 1
let err_bad_version = 2
let err_bad_tag = 3
let err_truncated = 4
let err_trailing = 5
let err_bad_field = 6
let err_unknown_program = 10
let err_bad_spec = 11
let err_draining = 12

type check_kind = Check | Coverage | Lint | Verify

type submit = {
  kind : check_kind;
  program : string;
  scale : float;
  seed : int;
  spec : string;  (** steal spec, [Steal_spec.parse] syntax; check only *)
  density : float;
  max_events : int option;  (** per-run event budget; server caps it *)
  deadline_s : float option;  (** relative budget in s; server caps it *)
  prune : bool;  (** coverage only *)
}

type request = Submit of submit | Health | Shutdown

type status = Clean | Races | Partial

type verdict = {
  status : status;
  cached : bool;
  v_result : int option;  (** program result, when the run finished *)
  n_run : int;  (** specs attempted (coverage); 1 for check/lint *)
  n_specs : int;  (** spec family size (coverage); 1 otherwise *)
  races : string list;  (** rendered race reports / lint findings *)
  failures : (string * string) list;
      (** (failure class, rendered diagnostic) for every contained
          failure; non-empty iff [status = Partial] *)
}

type response =
  | Verdict of verdict
  | Retry_after of int  (** shed: retry after this many milliseconds *)
  | Internal_fault of string  (** worker poisoned while serving this *)
  | Health_report of string  (** JSON *)
  | Proto_error of err
  | Bye

(* ---------- encoding ---------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt b put = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put v

let put_bool b v = put_u8 b (if v then 1 else 0)

let kind_code = function Check -> 0 | Coverage -> 1 | Lint -> 2 | Verify -> 3
let status_code = function Clean -> 0 | Races -> 1 | Partial -> 3

let header b ~tag ~id =
  put_u8 b version;
  put_u8 b tag;
  put_u32 b id

let encode_request ~id req =
  let b = Buffer.create 64 in
  (match req with
  | Submit s ->
      header b ~tag:1 ~id;
      put_u8 b (kind_code s.kind);
      put_str b s.program;
      put_f64 b s.scale;
      put_u32 b s.seed;
      put_str b s.spec;
      put_f64 b s.density;
      put_opt b (fun v -> put_u32 b v) s.max_events;
      put_opt b (fun v -> put_f64 b v) s.deadline_s;
      put_bool b s.prune
  | Health -> header b ~tag:2 ~id
  | Shutdown -> header b ~tag:3 ~id);
  Buffer.contents b

let encode_response ~id resp =
  let b = Buffer.create 64 in
  (match resp with
  | Verdict v ->
      header b ~tag:129 ~id;
      put_u8 b (status_code v.status);
      put_bool b v.cached;
      put_opt b (fun r -> Buffer.add_int64_be b (Int64.of_int r)) v.v_result;
      put_u32 b v.n_run;
      put_u32 b v.n_specs;
      put_u32 b (List.length v.races);
      List.iter (put_str b) v.races;
      put_u32 b (List.length v.failures);
      List.iter
        (fun (cls, msg) ->
          put_str b cls;
          put_str b msg)
        v.failures
  | Retry_after ms ->
      header b ~tag:130 ~id;
      put_u32 b ms
  | Internal_fault msg ->
      header b ~tag:131 ~id;
      put_str b msg
  | Health_report json ->
      header b ~tag:132 ~id;
      put_str b json
  | Proto_error e ->
      header b ~tag:133 ~id;
      put_u32 b e.code;
      put_str b e.msg
  | Bye -> header b ~tag:134 ~id);
  Buffer.contents b

(* ---------- decoding ---------- *)

exception Bad of err

let bad code msg = raise (Bad { code; msg })

type cursor = { body : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.body then
    bad err_truncated
      (Printf.sprintf "truncated body: need %d byte(s) at offset %d of %d" n
         c.pos (String.length c.body))

let get_u8 c =
  need c 1;
  let v = Char.code c.body.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v =
    (Char.code c.body.[c.pos] lsl 24)
    lor (Char.code c.body.[c.pos + 1] lsl 16)
    lor (Char.code c.body.[c.pos + 2] lsl 8)
    lor Char.code c.body.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = String.get_int64_be c.body c.pos in
  c.pos <- c.pos + 8;
  v

let get_f64 c = Int64.float_of_bits (get_i64 c)

let get_str c =
  let n = get_u32 c in
  if n > max_frame then bad err_bad_field (Printf.sprintf "string length %d" n);
  need c n;
  let s = String.sub c.body c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt c get =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get c)
  | v -> bad err_bad_field (Printf.sprintf "option discriminant %d" v)

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> bad err_bad_field (Printf.sprintf "bool %d" v)

let get_kind c =
  match get_u8 c with
  | 0 -> Check
  | 1 -> Coverage
  | 2 -> Lint
  | 3 -> Verify
  | v -> bad err_bad_field (Printf.sprintf "check kind %d" v)

let get_status c =
  match get_u8 c with
  | 0 -> Clean
  | 1 -> Races
  | 3 -> Partial
  | v -> bad err_bad_field (Printf.sprintf "status %d" v)

let get_list c get =
  let n = get_u32 c in
  (* each element takes at least one byte, so a count beyond the body is
     a lie about the remainder, not a big allocation to attempt *)
  if n > String.length c.body - c.pos then
    bad err_bad_field (Printf.sprintf "list length %d" n);
  List.init n (fun _ -> get c)

let decode header_of body =
  let c = { body; pos = 0 } in
  match
    let v = get_u8 c in
    if v <> version then bad err_bad_version (Printf.sprintf "version %d" v);
    let tag = get_u8 c in
    let id = get_u32 c in
    let payload = header_of c tag in
    if c.pos <> String.length body then
      bad err_trailing
        (Printf.sprintf "%d trailing byte(s)" (String.length body - c.pos));
    (id, payload)
  with
  | r -> Ok r
  | exception Bad e -> Error e

let decode_request body =
  decode
    (fun c -> function
      | 1 ->
          let kind = get_kind c in
          let program = get_str c in
          let scale = get_f64 c in
          let seed = get_u32 c in
          let spec = get_str c in
          let density = get_f64 c in
          let max_events = get_opt c get_u32 in
          let deadline_s = get_opt c get_f64 in
          let prune = get_bool c in
          Submit
            {
              kind;
              program;
              scale;
              seed;
              spec;
              density;
              max_events;
              deadline_s;
              prune;
            }
      | 2 -> Health
      | 3 -> Shutdown
      | tag -> bad err_bad_tag (Printf.sprintf "request tag %d" tag))
    body

let decode_response body =
  decode
    (fun c -> function
      | 129 ->
          let status = get_status c in
          let cached = get_bool c in
          let v_result = get_opt c (fun c -> Int64.to_int (get_i64 c)) in
          let n_run = get_u32 c in
          let n_specs = get_u32 c in
          let races = get_list c get_str in
          let failures =
            get_list c (fun c ->
                let cls = get_str c in
                let msg = get_str c in
                (cls, msg))
          in
          Verdict { status; cached; v_result; n_run; n_specs; races; failures }
      | 130 -> Retry_after (get_u32 c)
      | 131 -> Internal_fault (get_str c)
      | 132 -> Health_report (get_str c)
      | 133 ->
          let code = get_u32 c in
          let msg = get_str c in
          Proto_error { code; msg }
      | 134 -> Bye
      | tag -> bad err_bad_tag (Printf.sprintf "response tag %d" tag))
    body

(* ---------- framing over a file descriptor ---------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done

let send fd body =
  let n = String.length body in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Proto.send: body of %d bytes" n);
  let b = Buffer.create (n + 4) in
  put_u32 b n;
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)

(* [read_exact fd n] is [Some bytes] or [None] on EOF at offset 0;
   EOF mid-buffer is a truncation error. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    let r = Unix.read fd buf !got (n - !got) in
    if r = 0 then eof := true else got := !got + r
  done;
  if !got = n then Ok (Some (Bytes.unsafe_to_string buf))
  else if !got = 0 then Ok None
  else
    Error
      {
        code = err_truncated;
        msg = Printf.sprintf "connection closed %d byte(s) into a read" !got;
      }

let recv fd =
  match read_exact fd 4 with
  | Error e -> Error (`Err e)
  | Ok None -> Error `Eof
  | Ok (Some hdr) ->
      let n =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if n > max_frame then
        Error
          (`Err
            {
              code = err_bad_length;
              msg = Printf.sprintf "frame length %d exceeds %d" n max_frame;
            })
      else if n = 0 then
        Error (`Err { code = err_bad_length; msg = "empty frame" })
      else (
        match read_exact fd n with
        | Error e -> Error (`Err e)
        | Ok None ->
            Error
              (`Err
                {
                  code = err_truncated;
                  msg = "connection closed after length prefix";
                })
        | Ok (Some body) -> Ok body)
