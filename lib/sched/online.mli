(** On-the-fly race detection on a real work-stealing runtime.

    [Wsim] simulates work stealing over a {e recorded} dag; this module
    actually runs the DSL program on OCaml 5 domains. Each worker owns a
    Chase-Lev deque ({!Rader_support.Ws_deque}); spawns are implemented
    with effect handlers (the spawning frame's continuation is captured,
    published as a stealable task, and the child runs first — Cilk's
    child-first discipline), and syncs park the frame until its last
    outstanding child pushes the resumption.

    {2 Structural steals}

    Which continuations count as {e stolen} — i.e. run in a freshly
    created view region, exactly as if a thief had taken them — is decided
    at spawn time by a seeded hash of the spawning frame's fork path and
    the spawn's per-frame ordinal against [density]. The steal {e set} is
    therefore a pure function of (program, seed, density): task placement
    across workers stays timing-nondeterministic, but the SP-tree
    structure the detector sees, the resulting steal trace
    ({!Rader_core.Steal_trace}) and the verdict are identical for every
    worker count and every rerun — the property the determinism tests
    pin down, and what makes each online run serially replayable.

    {2 Detection}

    Every instrumented access is captured as an immutable structural
    coordinate ({!Rader_reach.Reach.Fp.point}) and checked against a
    lock-striped shadow space keeping, per location, the serially-last
    writer and the serially-least and -greatest readers (the SP-order
    retention argument makes the racy-location set independent of arrival
    order). Precedence queries go to the fingerprint oracle
    ([Reach.Fp.relate]) — queries mutate nothing, so workers race with
    nothing; the [dset] backend is replay-only and rejected here. The SP+
    view rule compares the earlier point's surviving region (the LCA
    child-edge entry region — exact under the at-sync reduce policy this
    runtime implements) with the later point's region; the Peer-Set rule
    flags reducer-reads that are structurally parallel or carry different
    serial spawn counts (Lemma 3's peer-set key, recorded per read — a
    sound under-approximation of bag membership). Accesses
    inside [Reduce] callbacks are not checked online (loc-level
    completeness for them comes from the serial sweep; skipping cannot
    add false positives).

    {2 Endpoint attribution}

    Each frame records its serially-ordered event skeleton (user
    children, auxiliary frames, syncs) as it executes; after all workers
    join, a depth-first walk replays the serial engine's deterministic
    frame/strand numbering over that skeleton, so reports carry the same
    frame and strand ids a serial replay of the recorded steal trace
    assigns (the trace replays under the at-sync reduce policy, matching
    this runtime's merge placement). If an endpoint cannot be resolved —
    e.g. the run was cancelled mid-flight — its ids fall back to [-1]
    and the report's detail says so. *)

open Rader_runtime

type config = {
  workers : int;  (** worker domains, >= 1 (1 = this domain only) *)
  seed : int;  (** seeds structural steal decisions and victim choice *)
  density : float;  (** probability a spawn's continuation is stolen *)
  reach : Rader_reach.Reach.backend;
      (** precedence backend; must be [Depa] (the [dset] oracle is
          serially anchored and replay-only) *)
  stripes : int option;
      (** shadow-space lock stripes, rounded up to a power of two;
          [None] derives [max 64 (pow2 (workers * 16))]. Striping only
          affects contention, never the verdict. *)
  max_events : int option;  (** global event budget across all workers *)
  deadline : float option;  (** absolute deadline, [clock] timebase *)
  clock : (unit -> float) option;  (** default [Unix.gettimeofday] *)
}

(** [default ()] is 2 workers, seed 1, density 0.5, [Depa], derived
    striping, no budgets. *)
val default : ?workers:int -> ?seed:int -> ?density:float -> unit -> config

type outcome = {
  value : (int, Fault.failure) result;
      (** the program's result, or the first contained failure (user
          exception, budget, engine invariant) — first failure wins and
          cancels the remaining workers *)
  races : Rader_core.Report.t list;  (** canonically sorted (kind, subject) *)
  trace : Rader_core.Steal_trace.t;  (** the structural steal set *)
  n_structural_steals : int;
  n_tasks : int;  (** tasks executed (root + continuations) *)
  n_deque_steals : int;  (** successful cross-worker deque steals *)
  n_parks : int;  (** syncs that actually suspended *)
  events : int;  (** instrumented events across all workers *)
  counters : Rader_obs.Obs.counters option;
      (** summed per-worker {!Rader_obs.Obs} deltas when counting was
          enabled, [None] otherwise *)
}

(** [run cfg program] executes [program] on [cfg.workers] domains (the
    calling domain is worker 0) with on-the-fly detection.
    @raise Invalid_argument if [workers < 1], [density] is outside
    [0..1], or [cfg.reach] is [Dset]. *)
val run : config -> (Engine.ctx -> int) -> outcome

(** Canonical one-line rendering of a verdict's racy subjects, e.g.
    ["determinacy=[3;7] view-read=[0]"] — the string the determinism and
    cross-validation tests compare. *)
val race_summary : Rader_core.Report.t list -> string
