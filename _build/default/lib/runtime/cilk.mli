(** Convenience facade over the runtime: everything a program needs in one
    module. See {!Engine} for the execution model.

    {[
      open Rader_runtime

      let sum, eng =
        Cilk.exec (fun ctx ->
            let r = Rmonoid.new_int_add ctx ~init:0 in
            Cilk.parallel_for ctx ~lo:0 ~hi:100 (fun ctx i ->
                Rmonoid.add ctx r i);
            Rmonoid.int_cell_value ctx r)
    ]} *)

type ctx = Engine.ctx

type 'a future = 'a Engine.future

val spawn : ctx -> (ctx -> 'a) -> 'a future
val get : ctx -> 'a future -> 'a
val sync : ctx -> unit
val call : ctx -> (ctx -> 'a) -> 'a
val parallel_for : ?grain:int -> ctx -> lo:int -> hi:int -> (ctx -> int -> unit) -> unit

(** [exec ?tool ?spec ?record main] creates an engine, runs [main], and
    returns the result together with the engine for inspection. *)
val exec :
  ?tool:Tool.t ->
  ?spec:Steal_spec.t ->
  ?record:bool ->
  (ctx -> 'a) ->
  'a * Engine.t
