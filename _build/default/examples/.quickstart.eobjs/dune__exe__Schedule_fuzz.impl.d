examples/schedule_fuzz.ml: Cilk List Printf Rader_runtime Rader_sched Rmonoid Schedule_gen String
