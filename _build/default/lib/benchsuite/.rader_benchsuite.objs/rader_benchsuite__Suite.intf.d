lib/benchsuite/suite.mli: Bench_def
