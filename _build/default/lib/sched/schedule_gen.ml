module Engine = Rader_runtime.Engine
module Steal_spec = Rader_runtime.Steal_spec

let derive_specs program ~workers ~seeds =
  let eng = Engine.create ~record:true () in
  let _ = Engine.run eng program in
  List.map (fun seed -> Wsim.steal_spec (Wsim.simulate ~workers ~seed eng)) seeds

let fuzz program ~workers ~seeds =
  let specs = derive_specs program ~workers ~seeds in
  let serial =
    let eng = Engine.create () in
    ("serial", Engine.run eng program)
  in
  serial
  :: List.map
       (fun spec ->
         let eng = Engine.create ~spec () in
         (spec.Steal_spec.name, Engine.run eng program))
       specs

let deterministic ~equal = function
  | [] -> true
  | (_, first) :: rest -> List.for_all (fun (_, r) -> equal first r) rest
