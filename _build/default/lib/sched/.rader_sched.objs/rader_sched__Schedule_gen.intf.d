lib/sched/schedule_gen.mli: Rader_runtime
