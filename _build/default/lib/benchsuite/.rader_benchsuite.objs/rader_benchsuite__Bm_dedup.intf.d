lib/benchsuite/bm_dedup.mli: Bench_def
