lib/support/dot.mli:
