(** Instrumented mutable cells.

    A ['a Cell.t] is a mutable box whose reads and writes are reported to
    the installed tool — the moral equivalent of a shared variable compiled
    with ThreadSanitizer instrumentation. All shared state that should be
    visible to the determinacy-race detectors must live in cells or
    {!Rarray}s. *)

type 'a t

(** [make eng ?label v] allocates a cell holding [v]. The initial write is
    untracked (it happens before the computation, like initialized program
    data). *)
val make : Engine.t -> ?label:string -> 'a -> 'a t

(** [make_in ctx ?label v] allocates from inside a computation; the
    allocation itself is not an instrumented access (writing to freshly
    allocated private memory cannot race). *)
val make_in : Engine.ctx -> ?label:string -> 'a -> 'a t

(** [read ctx c] is the contents; reported as an instrumented read. *)
val read : Engine.ctx -> 'a t -> 'a

(** [write ctx c v] stores [v]; reported as an instrumented write. *)
val write : Engine.ctx -> 'a t -> 'a -> unit

(** [peek c] reads without instrumentation — for inspecting results after
    the run, never from inside the computation. *)
val peek : 'a t -> 'a

(** [poke c v] writes without instrumentation — for test setup only. *)
val poke : 'a t -> 'a -> unit

(** [loc c] is the cell's shadow-memory location id. *)
val loc : 'a t -> int
