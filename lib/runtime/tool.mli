(** The instrumentation interface between the Cilk engine and race
    detectors.

    A {e tool} is what the engine dispatches events into at every
    parallel-control construct and every instrumented memory access — the
    OCaml analogue of Rader's compiler instrumentation (low-overhead
    annotations for control constructs, ThreadSanitizer hooks for memory
    accesses; paper §8). The event set and its discipline are unchanged
    from the seed:

    - [frame_enter]/[frame_return] are properly nested; the root frame
      (id 0, [parent = -1]) brackets the whole run.
    - [sync] fires for every explicit sync and for the implicit sync
      before each frame return (Cilk functions always sync before
      returning).
    - [steal] fires when a continuation designated by the steal
      specification begins executing on a fresh view/region.
    - [reduce] fires when the two most recently opened regions of the
      current sync block are merged — {e before} the [Reduce_fn] frames
      (zero or more, one per reducer holding views in both regions) run.
    - [read]/[write]/[reducer_read] carry the id of the frame performing
      the access; [view_aware] is true inside [Update_fn], [Reduce_fn]
      and [Identity_fn] frames.

    What changed is the representation: a tool is no longer a record of
    eight closures but a {e variant of known tool stacks}, so the
    per-event dispatch is a single match into flat detector state
    ({!Sp_hot}, {!Peer_hot}) instead of two indirect calls through a
    closure pair. The old all-closures shape survives as {!hooks} behind
    the {!extern} constructor — the escape hatch for tests, tracers and
    ad-hoc tools — and {!chain} is allocation-free when either side is
    {!null}. *)

(** Why a frame was created (re-exported from {!Frame_kind} so detector
    cores can match on kinds without depending on this module). *)
type frame_kind = Frame_kind.t =
  | User_fn  (** a spawned or called Cilk function *)
  | Update_fn  (** body of [Reducer.update] *)
  | Reduce_fn  (** a runtime-invoked [Reduce] operation *)
  | Identity_fn  (** a runtime-invoked [Create-Identity] *)

type hooks = {
  on_frame_enter : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_frame_return : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_sync : frame:int -> unit;
  on_steal : frame:int -> region:int -> unit;
  on_reduce : frame:int -> into_region:int -> from_region:int -> unit;
  on_read : frame:int -> loc:int -> view_aware:bool -> unit;
  on_write : frame:int -> loc:int -> view_aware:bool -> unit;
  on_reducer_read : frame:int -> reducer:int -> unit;
}
(** The seed's closure-record tool shape, kept as the [Extern] escape
    hatch. *)

(** A tool stack. Constructors are exposed so the engine can match (e.g.
    to disable span batching when an [Extern] arm is present); build
    values with {!null}, {!sp_plus}, {!peer_set}, {!extern} and
    {!chain}. *)
type t =
  | Null
  | Sp_plus of Sp_hot.t
  | Peer_set of Peer_hot.t
  | Both of t * t
  | Extern of hooks

(** [null] ignores every event — the "empty tool" baseline of Fig. 8. *)
val null : t

val sp_plus : Sp_hot.t -> t
val peer_set : Peer_hot.t -> t

(** [extern h] wraps a closure-record tool. *)
val extern : hooks -> t

(** [hooks_null] ignores every event; use [{ hooks_null with ... }] to
    build partial external tools. *)
val hooks_null : hooks

(** [chain a b] dispatches every event to [a] then [b]. Chaining with
    {!null} returns the other tool physically ([chain a null == a]). *)
val chain : t -> t -> t

(** [both] is {!chain} (the seed's name for it). *)
val both : t -> t -> t

(** {2 Event dispatch} — used by the engine; one match per event. *)

val frame_enter :
  t -> frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit

val frame_return :
  t -> frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit

val sync : t -> frame:int -> unit
val steal : t -> frame:int -> region:int -> unit
val reduce : t -> frame:int -> into_region:int -> from_region:int -> unit
val read : t -> frame:int -> loc:int -> view_aware:bool -> unit
val write : t -> frame:int -> loc:int -> view_aware:bool -> unit
val reducer_read : t -> frame:int -> reducer:int -> unit

(** [read_span t ~frame ~base ~len ~stride ~view_aware] delivers the
    coalesced access run [base, base+stride, …] (length [len]); detectors
    process it in a tight loop, and an [Extern] arm (which the engine
    never batches for) falls back to per-access calls. *)
val read_span :
  t -> frame:int -> base:int -> len:int -> stride:int -> view_aware:bool -> unit

val write_span :
  t -> frame:int -> base:int -> len:int -> stride:int -> view_aware:bool -> unit

(** [spans_ok t] — may the engine batch consecutive same-strand accesses
    into span events for this stack? False iff an [Extern] arm is present
    (external tools may observe event interleaving, e.g. the chaos
    harness). *)
val spans_ok : t -> bool

(** The all-closures view of a tool: every hook forwards to the variant
    dispatch. Used by the dispatch-parity tests to drive the same
    detector state through the seed's closure-record path. *)
val hooks_of : t -> hooks

(** [is_view_aware_kind k] is true for [Update_fn], [Reduce_fn],
    [Identity_fn]. *)
val is_view_aware_kind : frame_kind -> bool

(** [frame_kind_name k] is a short printable name. *)
val frame_kind_name : frame_kind -> string
