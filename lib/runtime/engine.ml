module Dynarr = Rader_support.Dynarr
module Loc = Rader_memory.Loc
module Dag = Rader_dag.Dag
module Obs = Rader_obs.Obs

exception Cilk_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Cilk_error s)) fmt

type access = {
  a_loc : int;
  a_strand : int;
  a_frame : int;
  a_is_write : bool;
  a_view_aware : bool;
}

type merge_rec = { m_from : int; m_into : int; m_at : int }

type stats = {
  n_frames : int;
  n_strands : int;
  n_spawns : int;
  n_syncs : int;
  n_steals : int;
  n_reduce_calls : int;
  n_reads : int;
  n_writes : int;
  n_reducer_reads : int;
}

(* One open view region of a sync block. [tails] (recording only) are the
   dag vertices whose completion the region's next reduce — or the sync —
   depends on: the last strand of each completed child spawned in the
   region, the last continuation strand of the region's segment, and the
   region's latest reduce strand. *)
type region_entry = { mutable rid : int; mutable tails : int list }

(* [fid]/[depth]/[kind]/[parent_fid] are mutable only so reduce/identity
   frame records can be recycled through [aux_pool]; user-facing code
   never observes a mutation (a frame is reinitialized only between
   lifetimes, while no ctx for it exists). *)
type frame = {
  mutable fid : int;
  mutable depth : int;
  mutable kind : Tool.frame_kind;
  spawned : bool;
  mutable parent_fid : int;
  mutable alive : bool;
  mutable sync_block : int;
  mutable local_cont_index : int; (* spawns since last sync *)
  mutable steals_in_block : int;
  regions : region_entry Dynarr.t; (* stack; bottom = entry region *)
  mutable cur_node : int; (* strand id (= dag vertex when recording) *)
}

type state = Fresh | Running | Done

type 'a future = {
  mutable value : 'a option;
  owner : int;
  born_block : int;
  (* Online mode: filled by the child's executor, read by the parent
     frame's executor strictly after the join — the publication happens
     through the runtime's join lock, so no atomic is needed here. *)
}

type t = {
  mutable tool : Tool.t;
  mutable spec : Steal_spec.t;
  mutable record : bool;
  registry : Loc.registry;
  mutable next_fid : int;
  mutable next_rid : int;
  mutable strand_counter : int;
  mutable spawn_counter : int;
  mutable dag_store : Dag.t option;
  accesses_log : access Dynarr.t;
  merges_log : merge_rec Dynarr.t;
  rreads_log : (int * int) Dynarr.t;
  aux_log : (Tool.frame_kind * int * int) Dynarr.t;
  spawn_log : (int * int * int) Dynarr.t;
  spawn_conts_log : (Steal_spec.cont_info * int * int) Dynarr.t;
  frames_log : (int * int * bool * Tool.frame_kind) Dynarr.t;
  reducer_merges :
    (ctx -> from_region:int -> into_region:int -> unit) Dynarr.t;
  (* During a region merge: the dependency frontier feeding the next reduce
     strand (recording only). *)
  mutable pending_deps : int list;
  mutable in_merge : bool;
  mutable state : state;
  (* fault containment *)
  mutable active_frames : frame list; (* innermost first; live only *)
  mutable contract_log : Fault.contract_violation list; (* newest first *)
  mutable max_local_seen : int; (* largest sync-block continuation index *)
  mutable max_depth_seen : int; (* deepest frame entered *)
  mutable event_count : int;
  mutable max_events : int option;
  mutable deadline : float option; (* absolute Unix time *)
  mutable clock : unit -> float; (* deadline timebase; virtualizable *)
  (* counters *)
  mutable c_frames : int;
  mutable c_spawns : int;
  mutable c_syncs : int;
  mutable c_steals : int;
  mutable c_reduce_calls : int;
  mutable c_reads : int;
  mutable c_writes : int;
  mutable c_reducer_reads : int;
  (* Online mode: when [Some ops], the DSL entry points dispatch to the
     installed work-stealing runtime instead of the serial interpreter.
     The serial path is untouched (one [None] branch per call). *)
  mutable online : online_ops option;
  contract_mu : Mutex.t; (* contract log guard; contended only online *)
  (* Span batching: consecutive same-frame same-view-awareness reads (or
     writes) coalesce into one pending run, dispatched as a single
     [Tool.read_span]/[write_span] at the next non-access event. Only
     when the tool stack allows it ([spans_on]); counters, logs and the
     event budget are still charged per access at accept time. *)
  mutable spans_on : bool;
  mutable pend_kind : int; (* 0 = none, 1 = read, 2 = write *)
  mutable pend_frame : int;
  mutable pend_va : bool;
  mutable pend_base : int;
  mutable pend_len : int;
  mutable pend_stride : int; (* meaningful once pend_len >= 2 *)
  (* Recycled reduce/identity frame records (each with its one-entry
     region stack). These frames are created by the steal/merge machinery
     itself — perfectly LIFO, gone before the merge returns — so reusing
     their records keeps steal-heavy runs from allocating two frame
     records plus a region stack per steal. Update frames are NOT pooled:
     they run arbitrary user code on the serial path, where the seed's
     stale-ctx detection (a dead frame stays dead) is kept intact. *)
  aux_pool : frame Dynarr.t;
  (* Recycled region entries: a steal pushes one, the matching reduce pops
     and discards it — pooling makes the steal branch allocation-free. *)
  region_pool : region_entry Dynarr.t;
}

and ctx = { eng : t; frame : frame; ost : Obj.t }
(* [ost] is the online runtime's per-execution-segment state (opaque to
   the engine); [online_dummy_frame] fills [frame] in online contexts so
   the record layout is shared. Serial contexts carry [no_ost]. *)

and online_ops = {
  oo_spawn : 'a. ctx -> (ctx -> 'a) -> 'a future;
  oo_get : 'a. ctx -> 'a future -> 'a;
  oo_sync : ctx -> unit;
  oo_call : 'a. ctx -> (ctx -> 'a) -> 'a;
  oo_run_aux : 'a. reducer:int -> ctx -> Tool.frame_kind -> (ctx -> 'a) -> 'a;
  oo_emit_read : ctx -> int -> unit;
  oo_emit_write : ctx -> int -> unit;
  oo_emit_reducer_read : ctx -> int -> unit;
  oo_register_reducer :
    merge:(ctx -> from_region:int -> into_region:int -> unit) -> int;
  oo_alloc_locs : label:string -> int -> int;
  oo_current_region : ctx -> int;
  oo_current_frame : ctx -> int;
  oo_view_find : ctx -> region:int -> reducer:int -> Obj.t option;
  oo_view_set : ctx -> region:int -> reducer:int -> Obj.t -> unit;
}

let no_ost = Obj.repr ()

(* Batching is off for a bare [Null] stack (nothing to deliver to — the
   empty-tool baseline keeps the seed's per-access cost) and whenever an
   [Extern] arm is present (external tools may observe interleaving, e.g.
   the chaos harness counts events to pick an injection point). *)
let spans_of_tool = function Tool.Null -> false | t -> Tool.spans_ok t

let create ?(tool = Tool.null) ?(spec = Steal_spec.none) ?(record = false)
    ?max_events ?deadline ?(clock = Unix.gettimeofday) () =
  {
    tool;
    spec;
    record;
    registry = Loc.registry ();
    next_fid = 0;
    next_rid = 1;
    strand_counter = 0;
    spawn_counter = 0;
    dag_store = (if record then Some (Dag.create ()) else None);
    accesses_log = Dynarr.create ();
    merges_log = Dynarr.create ();
    rreads_log = Dynarr.create ();
    aux_log = Dynarr.create ();
    spawn_log = Dynarr.create ();
    spawn_conts_log = Dynarr.create ();
    frames_log = Dynarr.create ();
    reducer_merges = Dynarr.create ();
    pending_deps = [];
    in_merge = false;
    state = Fresh;
    active_frames = [];
    contract_log = [];
    max_local_seen = 0;
    max_depth_seen = 0;
    event_count = 0;
    max_events;
    deadline;
    clock;
    c_frames = 0;
    c_spawns = 0;
    c_syncs = 0;
    c_steals = 0;
    c_reduce_calls = 0;
    c_reads = 0;
    c_writes = 0;
    c_reducer_reads = 0;
    online = None;
    contract_mu = Mutex.create ();
    spans_on = spans_of_tool tool;
    pend_kind = 0;
    pend_frame = -1;
    pend_va = false;
    pend_base = 0;
    pend_len = 0;
    pend_stride = 0;
    aux_pool = Dynarr.create ();
    region_pool = Dynarr.create ();
  }

let set_tool t tool =
  if t.state <> Fresh then err "Engine.set_tool: engine already running";
  t.tool <- tool;
  t.spans_on <- spans_of_tool tool

(* Recycle an engine for another run: every counter and log goes back to
   its [create] value, but the arenas behind the Dynarrs and the location
   registry keep their grown backing stores. Equivalent to [create] with
   the same arguments — coverage sweeps lean on that equivalence to keep
   parallel and serial results byte-identical — while skipping the
   per-spec reallocation that dominates short runs. *)
let reset ?(tool = Tool.null) ?(spec = Steal_spec.none) ?(record = false)
    ?max_events ?deadline ?(clock = Unix.gettimeofday) t =
  if t.state = Running then err "Engine.reset: engine is running";
  t.tool <- tool;
  t.spec <- spec;
  t.record <- record;
  Loc.reset t.registry;
  t.next_fid <- 0;
  t.next_rid <- 1;
  t.strand_counter <- 0;
  t.spawn_counter <- 0;
  t.dag_store <- (if record then Some (Dag.create ()) else None);
  Dynarr.clear t.accesses_log;
  Dynarr.clear t.merges_log;
  Dynarr.clear t.rreads_log;
  Dynarr.clear t.aux_log;
  Dynarr.clear t.spawn_log;
  Dynarr.clear t.spawn_conts_log;
  Dynarr.clear t.frames_log;
  Dynarr.clear t.reducer_merges;
  t.pending_deps <- [];
  t.in_merge <- false;
  t.state <- Fresh;
  t.active_frames <- [];
  t.contract_log <- [];
  t.max_local_seen <- 0;
  t.max_depth_seen <- 0;
  t.event_count <- 0;
  t.max_events <- max_events;
  t.deadline <- deadline;
  t.clock <- clock;
  t.c_frames <- 0;
  t.c_spawns <- 0;
  t.c_syncs <- 0;
  t.c_steals <- 0;
  t.c_reduce_calls <- 0;
  t.c_reads <- 0;
  t.c_writes <- 0;
  t.c_reducer_reads <- 0;
  t.online <- None;
  t.spans_on <- spans_of_tool tool;
  t.pend_kind <- 0

let dag_kind_of_frame_kind = function
  | Tool.User_fn -> Dag.User
  | Tool.Update_fn -> Dag.Update
  | Tool.Reduce_fn -> Dag.Reduce
  | Tool.Identity_fn -> Dag.Identity

(* Budget accounting: one event per strand start and per instrumented
   access. The clock is consulted at the first event — so a deadline that
   already expired at dispatch cancels the run before it does any work,
   keeping deadline-charged specs consistent across sweep job counts — and
   every 16 events thereafter (only deadline-bearing engines pay this; a
   service quota needs finer granularity than the historical 256). *)
let bump_event t =
  t.event_count <- t.event_count + 1;
  (match t.max_events with
  | Some m when t.event_count > m -> raise (Fault.Stop (Fault.Max_events m))
  | _ -> ());
  match t.deadline with
  | Some dl
    when (t.event_count land 0xf = 0 || t.event_count = 1) && t.clock () > dl
    ->
      raise (Fault.Stop (Fault.Deadline dl))
  | _ -> ()

(* Deliver the pending access run. Every coalesced access was already
   accepted — counted, logged and charged against the budget — so the
   flush is pure tool dispatch: a single-access run degrades to the plain
   per-access event. *)
let really_flush t =
  let k = t.pend_kind in
  t.pend_kind <- 0;
  if k = 1 then begin
    if t.pend_len = 1 then
      Tool.read t.tool ~frame:t.pend_frame ~loc:t.pend_base
        ~view_aware:t.pend_va
    else
      Tool.read_span t.tool ~frame:t.pend_frame ~base:t.pend_base
        ~len:t.pend_len ~stride:t.pend_stride ~view_aware:t.pend_va
  end
  else if t.pend_len = 1 then
    Tool.write t.tool ~frame:t.pend_frame ~loc:t.pend_base
      ~view_aware:t.pend_va
  else
    Tool.write_span t.tool ~frame:t.pend_frame ~base:t.pend_base
      ~len:t.pend_len ~stride:t.pend_stride ~view_aware:t.pend_va

let[@inline] flush_pend t = if t.pend_kind <> 0 then really_flush t

(* Allocate the next strand id; add the dag vertex and its incoming edges
   when recording. *)
let new_strand t ~frame ~kind ~view ~label ~preds =
  flush_pend t;
  bump_event t;
  let id = t.strand_counter in
  t.strand_counter <- id + 1;
  (match t.dag_store with
  | None -> ()
  | Some dag ->
      let did = Dag.add_strand dag ~frame ~kind ~view ~label in
      assert (did = id);
      List.iter (fun p -> Dag.add_edge dag p id) (List.sort_uniq compare preds));
  id

let top_region fr = Dynarr.top fr.regions

let cur_region fr = (top_region fr).rid

let check_alive fr =
  if not fr.alive then err "Cilk context used outside its dynamic extent"

let require_user fr what =
  check_alive fr;
  if fr.kind <> Tool.User_fn then
    err "%s is not allowed inside view-aware (update/reduce/identity) code" what

(* Merge the two most recently opened regions of [ctx]'s frame: emit the
   reduce event (the SP+ P-bag pop/union point), then let every registered
   reducer fold its dominated view into the surviving one. *)
let merge_top_two ctx =
  let fr = ctx.frame in
  let t = ctx.eng in
  assert (Dynarr.length fr.regions >= 2);
  let from = Dynarr.pop fr.regions in
  let into = top_region fr in
  flush_pend t;
  Tool.reduce t.tool ~frame:fr.fid ~into_region:into.rid ~from_region:from.rid;
  if t.record then
    Dynarr.push t.merges_log
      { m_from = from.rid; m_into = into.rid; m_at = t.strand_counter };
  t.pending_deps <- List.rev_append from.tails into.tails;
  Dynarr.push t.region_pool from;
  t.in_merge <- true;
  (* index loop, not [Dynarr.iter]: merges run once per steal, and the
     iteration closure would otherwise be allocated on every one *)
  let from_region = from.rid and into_region = into.rid in
  for i = 0 to Dynarr.length t.reducer_merges - 1 do
    (Dynarr.get t.reducer_merges i) ctx ~from_region ~into_region
  done;
  t.in_merge <- false;
  into.tails <- t.pending_deps;
  t.pending_deps <- []

let do_sync ctx =
  let fr = ctx.frame in
  let t = ctx.eng in
  require_user fr "sync";
  let top = top_region fr in
  top.tails <- fr.cur_node :: top.tails;
  while Dynarr.length fr.regions > 1 do
    merge_top_two ctx
  done;
  flush_pend t;
  Tool.sync t.tool ~frame:fr.fid;
  t.c_syncs <- t.c_syncs + 1;
  fr.sync_block <- fr.sync_block + 1;
  fr.local_cont_index <- 0;
  fr.steals_in_block <- 0;
  let base = top_region fr in
  let preds = base.tails in
  base.tails <- [];
  fr.cur_node <-
    new_strand t ~frame:fr.fid ~kind:Dag.User ~view:base.rid ~label:"sync" ~preds

let sync ctx =
  match ctx.eng.online with Some o -> o.oo_sync ctx | None -> do_sync ctx

let fresh_frame t ~parent ~spawned ~kind ~entry_rid =
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  t.c_frames <- t.c_frames + 1;
  if t.record then
    Dynarr.push t.frames_log
      (fid, (match parent with Some p -> p.fid | None -> -1), spawned, kind);
  let regions = Dynarr.create () in
  Dynarr.push regions { rid = entry_rid; tails = [] };
  let depth = match parent with Some p -> p.depth + 1 | None -> 0 in
  if depth > t.max_depth_seen then t.max_depth_seen <- depth;
  {
    fid;
    depth;
    kind;
    spawned;
    parent_fid = (match parent with Some p -> p.fid | None -> -1);
    alive = true;
    sync_block = 0;
    local_cont_index = 0;
    steals_in_block = 0;
    regions;
    cur_node = -1;
  }

(* Run [f] as a child User_fn frame. Returns the child's result and the
   strand id of the child's final strand. *)
let run_child ctx ~spawned f =
  let t = ctx.eng in
  let pf = ctx.frame in
  require_user pf (if spawned then "spawn" else "call");
  let entry_rid = cur_region pf in
  let fr = fresh_frame t ~parent:(Some pf) ~spawned ~kind:Tool.User_fn ~entry_rid in
  t.active_frames <- fr :: t.active_frames;
  flush_pend t;
  Tool.frame_enter t.tool ~frame:fr.fid ~parent:pf.fid ~spawned
    ~kind:Tool.User_fn;
  fr.cur_node <-
    new_strand t ~frame:fr.fid ~kind:Dag.User ~view:entry_rid ~label:"enter"
      ~preds:[ pf.cur_node ];
  let result = f { eng = t; frame = fr; ost = no_ost } in
  (* Cilk functions implicitly sync before returning. *)
  do_sync { eng = t; frame = fr; ost = no_ost };
  fr.alive <- false;
  t.active_frames <- List.tl t.active_frames;
  flush_pend t;
  Tool.frame_return t.tool ~frame:fr.fid ~parent:pf.fid ~spawned
    ~kind:Tool.User_fn;
  (result, fr.cur_node)

let fr_continue t pf ~preds =
  pf.cur_node <-
    new_strand t ~frame:pf.fid ~kind:Dag.User ~view:(cur_region pf) ~label:"cont"
      ~preds

let serial_call ctx f =
  let t = ctx.eng in
  let pf = ctx.frame in
  let result, child_last = run_child ctx ~spawned:false f in
  (* Continuation after a call is in series with the child. *)
  fr_continue t pf ~preds:[ child_last ];
  result

let call ctx f =
  match ctx.eng.online with Some o -> o.oo_call ctx f | None -> serial_call ctx f

let serial_spawn ctx f =
  let t = ctx.eng in
  let pf = ctx.frame in
  let spawn_strand = pf.cur_node in
  let fut = { value = None; owner = pf.fid; born_block = pf.sync_block } in
  let result, child_last = run_child ctx ~spawned:true f in
  fut.value <- Some result;
  (* The spawned child joins at the sync: its last strand feeds the tail
     set of the region it ran in. *)
  (top_region pf).tails <- child_last :: (top_region pf).tails;
  t.c_spawns <- t.c_spawns + 1;
  pf.local_cont_index <- pf.local_cont_index + 1;
  if pf.local_cont_index > t.max_local_seen then
    t.max_local_seen <- pf.local_cont_index;
  let info =
    {
      Steal_spec.spawn_index = t.spawn_counter;
      frame = pf.fid;
      depth = pf.depth;
      local_index = pf.local_cont_index;
      sync_block = pf.sync_block;
    }
  in
  t.spawn_counter <- t.spawn_counter + 1;
  if t.spec.Steal_spec.steal info then begin
    pf.steals_in_block <- pf.steals_in_block + 1;
    (* The stolen continuation closes the current region's segment: the
       spawn strand is the segment's last strand. *)
    let top = top_region pf in
    top.tails <- spawn_strand :: top.tails;
    let n_open = Dynarr.length pf.regions in
    let k =
      Steal_spec.merges_before_steal t.spec ~steal_ordinal:pf.steals_in_block
        ~n_open
    in
    for _ = 1 to k do
      merge_top_two ctx
    done;
    let rid = t.next_rid in
    t.next_rid <- rid + 1;
    let entry =
      if Dynarr.is_empty t.region_pool then { rid; tails = [] }
      else begin
        let e = Dynarr.pop t.region_pool in
        e.rid <- rid;
        e.tails <- [];
        e
      end
    in
    Dynarr.push pf.regions entry;
    flush_pend t;
    Tool.steal t.tool ~frame:pf.fid ~region:rid;
    t.c_steals <- t.c_steals + 1
  end;
  (* Continuation after a spawn depends only on the spawn strand. *)
  fr_continue t pf ~preds:[ spawn_strand ];
  if t.record then begin
    Dynarr.push t.spawn_log (info.Steal_spec.spawn_index, spawn_strand, pf.cur_node);
    Dynarr.push t.spawn_conts_log (info, spawn_strand, pf.cur_node)
  end;
  fut

let spawn ctx f =
  match ctx.eng.online with
  | Some o -> o.oo_spawn ctx f
  | None -> serial_spawn ctx f

let serial_get ctx fut =
  let fr = ctx.frame in
  check_alive fr;
  if fr.fid <> fut.owner then
    err "future read from a frame other than the spawning one";
  if fr.sync_block <= fut.born_block then
    err "future read before sync (the spawned child may still be running)";
  match fut.value with Some v -> v | None -> err "future has no value"

let get ctx fut =
  match ctx.eng.online with Some o -> o.oo_get ctx fut | None -> serial_get ctx fut

(* Built from the dispatching [spawn]/[call]/[sync], so the same
   divide-and-conquer tree runs identically under the serial interpreter
   and the online work-stealing runtime. *)
let parallel_for ?(grain = 1) ctx ~lo ~hi body =
  if grain < 1 then invalid_arg "parallel_for: grain must be >= 1";
  if hi > lo then begin
    let rec go ctx lo0 hi0 =
      let lo = ref lo0 in
      while hi0 - !lo > grain do
        let mid = (!lo + hi0) / 2 in
        let l = !lo in
        ignore (spawn ctx (fun ctx -> go ctx l mid));
        lo := mid
      done;
      for i = !lo to hi0 - 1 do
        body ctx i
      done;
      sync ctx
    in
    call ctx (fun ctx -> go ctx lo hi)
  end

(* Flush this run's event counts into the current domain's observability
   counters — once per run, at completion or during contained unwinding,
   so the per-event cost of the layer stays zero. *)
let flush_obs t =
  if Obs.enabled () then
    Obs.note_engine_run ~events:t.event_count ~strands:t.strand_counter
      ~frames:t.c_frames ~spawns:t.c_spawns ~syncs:t.c_syncs ~steals:t.c_steals
      ~reduce_calls:t.c_reduce_calls ~reads:t.c_reads ~writes:t.c_writes
      ~reducer_reads:t.c_reducer_reads

let run t main =
  (match t.state with
  | Fresh -> ()
  | Running | Done -> err "Engine.run: engine values are single-use");
  t.state <- Running;
  let root = fresh_frame t ~parent:None ~spawned:false ~kind:Tool.User_fn ~entry_rid:0 in
  t.active_frames <- [ root ];
  Tool.frame_enter t.tool ~frame:root.fid ~parent:(-1) ~spawned:false
    ~kind:Tool.User_fn;
  root.cur_node <-
    new_strand t ~frame:root.fid ~kind:Dag.User ~view:0 ~label:"main" ~preds:[];
  let ctx = { eng = t; frame = root; ost = no_ost } in
  let result = main ctx in
  do_sync ctx;
  root.alive <- false;
  t.active_frames <- [];
  flush_pend t;
  Tool.frame_return t.tool ~frame:root.fid ~parent:(-1) ~spawned:false
    ~kind:Tool.User_fn;
  t.state <- Done;
  flush_obs t;
  result

(* -------- fault containment -------- *)

let failure_origin t =
  let o_frame, o_kind, o_depth =
    match t.active_frames with
    | [] -> (-1, Tool.User_fn, 0)
    | fr :: _ -> (fr.fid, fr.kind, fr.depth)
  in
  {
    Fault.o_frame;
    o_kind;
    o_depth;
    o_strand = t.strand_counter - 1;
    o_spec = t.spec.Steal_spec.name;
  }

(* Unwind after a contained failure: kill every frame still on the stack
   (so a captured ctx cannot be used post-mortem), drop merge state, and
   retire the engine. Tool callbacks are NOT invoked during unwinding —
   attached detectors simply stop receiving events, leaving them holding
   their verdicts over the completed prefix. *)
let unwind t =
  (* Deliver any pending access run first: the coalesced accesses were
     accepted (counted, logged, budget-charged) before the failure, so the
     detectors must see them to hold verdicts over the exact completed
     prefix. *)
  flush_pend t;
  List.iter (fun fr -> fr.alive <- false) t.active_frames;
  t.active_frames <- [];
  t.in_merge <- false;
  t.pending_deps <- [];
  t.state <- Done;
  flush_obs t

(* Mutex-guarded: online reducer self-checks report from worker domains. *)
let report_contract_violation t cv =
  Mutex.lock t.contract_mu;
  t.contract_log <- cv :: t.contract_log;
  Mutex.unlock t.contract_mu
let contract_violations t = List.rev t.contract_log

(* Post-run spec check: if the spec never fired and its shape names
   coordinates the program cannot reach, the caller got a silently serial
   run — surface that as a diagnostic rather than an empty report. *)
let spec_mismatch t =
  if t.c_steals > 0 then None
  else
    match
      Steal_spec.validate t.spec ~k:t.max_local_seen ~d:t.max_depth_seen
        ~n_spawns:t.spawn_counter
    with
    | Ok () -> None
    | Error reason -> Some reason

let run_result t main =
  match t.state with
  | Running | Done ->
      Error
        (Fault.Engine_invariant
           {
             what = "Engine.run_result: engine values are single-use";
             origin = failure_origin t;
           })
  | Fresh -> (
      match run t main with
      | result -> (
          match List.rev t.contract_log with
          | cv :: _ -> Error (Fault.Monoid_contract cv)
          | [] -> (
              match spec_mismatch t with
              | Some reason ->
                  Error
                    (Fault.Invalid_steal_spec
                       { spec = t.spec.Steal_spec.name; reason })
              | None -> Ok result))
      | exception Fault.Stop kind ->
          unwind t;
          Error (Fault.Budget_exceeded kind)
      | exception Cilk_error what ->
          let origin = failure_origin t in
          unwind t;
          Error (Fault.Engine_invariant { what; origin })
      | exception e ->
          let backtrace = Printexc.get_backtrace () in
          let origin = failure_origin t in
          unwind t;
          Error
            (Fault.User_program_exn
               { exn = Printexc.to_string e; backtrace; origin }))

(* -------- introspection -------- *)

let engine ctx = ctx.eng

let current_frame ctx =
  match ctx.eng.online with
  | Some o -> o.oo_current_frame ctx
  | None -> ctx.frame.fid

let current_strand t = t.strand_counter - 1

let current_region ctx =
  match ctx.eng.online with
  | Some o -> o.oo_current_region ctx
  | None -> cur_region ctx.frame

let stats t =
  {
    n_frames = t.c_frames;
    n_strands = t.strand_counter;
    n_spawns = t.c_spawns;
    n_syncs = t.c_syncs;
    n_steals = t.c_steals;
    n_reduce_calls = t.c_reduce_calls;
    n_reads = t.c_reads;
    n_writes = t.c_writes;
    n_reducer_reads = t.c_reducer_reads;
  }

let loc_registry t = t.registry
let loc_label t loc = Loc.label t.registry loc
let dag t = t.dag_store
let accesses t = Dynarr.to_list t.accesses_log
let merges t = Dynarr.to_list t.merges_log
let reducer_reads t = Dynarr.to_list t.rreads_log
let aux_frames t = Dynarr.to_list t.aux_log
let spawn_log t = Dynarr.to_list t.spawn_log
let spawn_conts t = Dynarr.to_list t.spawn_conts_log
let frames t = Dynarr.to_list t.frames_log

(* -------- low-level hooks -------- *)

let alloc_locs t ~label n =
  match t.online with
  | Some o -> o.oo_alloc_locs ~label n
  | None -> Loc.alloc_range t.registry ~label n

let serial_emit_read ctx loc =
  let fr = ctx.frame in
  let t = ctx.eng in
  check_alive fr;
  bump_event t;
  let view_aware = fr.kind <> Tool.User_fn in
  (if t.spans_on then begin
     if t.pend_kind = 1 && t.pend_frame = fr.fid && t.pend_va = view_aware
     then begin
       if t.pend_len = 1 then begin
         t.pend_stride <- loc - t.pend_base;
         t.pend_len <- 2
       end
       else if loc = t.pend_base + (t.pend_len * t.pend_stride) then
         t.pend_len <- t.pend_len + 1
       else begin
         really_flush t;
         t.pend_kind <- 1;
         t.pend_frame <- fr.fid;
         t.pend_va <- view_aware;
         t.pend_base <- loc;
         t.pend_len <- 1
       end
     end
     else begin
       flush_pend t;
       t.pend_kind <- 1;
       t.pend_frame <- fr.fid;
       t.pend_va <- view_aware;
       t.pend_base <- loc;
       t.pend_len <- 1
     end
   end
   else Tool.read t.tool ~frame:fr.fid ~loc ~view_aware);
  t.c_reads <- t.c_reads + 1;
  if t.record then
    Dynarr.push t.accesses_log
      {
        a_loc = loc;
        a_strand = fr.cur_node;
        a_frame = fr.fid;
        a_is_write = false;
        a_view_aware = view_aware;
      }

let emit_read ctx loc =
  match ctx.eng.online with
  | Some o -> o.oo_emit_read ctx loc
  | None -> serial_emit_read ctx loc

let serial_emit_write ctx loc =
  let fr = ctx.frame in
  let t = ctx.eng in
  check_alive fr;
  bump_event t;
  let view_aware = fr.kind <> Tool.User_fn in
  (if t.spans_on then begin
     if t.pend_kind = 2 && t.pend_frame = fr.fid && t.pend_va = view_aware
     then begin
       if t.pend_len = 1 then begin
         t.pend_stride <- loc - t.pend_base;
         t.pend_len <- 2
       end
       else if loc = t.pend_base + (t.pend_len * t.pend_stride) then
         t.pend_len <- t.pend_len + 1
       else begin
         really_flush t;
         t.pend_kind <- 2;
         t.pend_frame <- fr.fid;
         t.pend_va <- view_aware;
         t.pend_base <- loc;
         t.pend_len <- 1
       end
     end
     else begin
       flush_pend t;
       t.pend_kind <- 2;
       t.pend_frame <- fr.fid;
       t.pend_va <- view_aware;
       t.pend_base <- loc;
       t.pend_len <- 1
     end
   end
   else Tool.write t.tool ~frame:fr.fid ~loc ~view_aware);
  t.c_writes <- t.c_writes + 1;
  if t.record then
    Dynarr.push t.accesses_log
      {
        a_loc = loc;
        a_strand = fr.cur_node;
        a_frame = fr.fid;
        a_is_write = true;
        a_view_aware = view_aware;
      }

let emit_write ctx loc =
  match ctx.eng.online with
  | Some o -> o.oo_emit_write ctx loc
  | None -> serial_emit_write ctx loc

let serial_emit_reducer_read ctx reducer =
  let fr = ctx.frame in
  let t = ctx.eng in
  require_user fr "reducer read (create/get/set)";
  flush_pend t;
  Tool.reducer_read t.tool ~frame:fr.fid ~reducer;
  t.c_reducer_reads <- t.c_reducer_reads + 1;
  if t.record then Dynarr.push t.rreads_log (reducer, fr.cur_node)

let emit_reducer_read ctx reducer =
  match ctx.eng.online with
  | Some o -> o.oo_emit_reducer_read ctx reducer
  | None -> serial_emit_reducer_read ctx reducer

(* Acquire a frame for a runtime-invoked (reduce/identity) aux function,
   reusing a pooled record when one is available. The pooled frame's
   region stack already holds exactly one entry — aux frames cannot spawn,
   so they never push another. *)
let acquire_aux_frame t ~parent ~kind ~entry_rid =
  if Dynarr.is_empty t.aux_pool then
    fresh_frame t ~parent:(Some parent) ~spawned:false ~kind ~entry_rid
  else begin
    let fr = Dynarr.pop t.aux_pool in
    let fid = t.next_fid in
    t.next_fid <- fid + 1;
    t.c_frames <- t.c_frames + 1;
    if t.record then Dynarr.push t.frames_log (fid, parent.fid, false, kind);
    fr.fid <- fid;
    fr.depth <- parent.depth + 1;
    fr.kind <- kind;
    fr.parent_fid <- parent.fid;
    fr.alive <- true;
    fr.sync_block <- 0;
    fr.local_cont_index <- 0;
    fr.steals_in_block <- 0;
    (let e = Dynarr.top fr.regions in
     e.rid <- entry_rid;
     e.tails <- []);
    fr.cur_node <- -1;
    if fr.depth > t.max_depth_seen then t.max_depth_seen <- fr.depth;
    fr
  end

let serial_run_aux_frame ?(reducer = -1) ctx kind f =
  let t = ctx.eng in
  let pf = ctx.frame in
  require_user pf "reducer operation";
  (match kind with
  | Tool.User_fn -> invalid_arg "run_aux_frame: kind must be view-aware"
  | Tool.Update_fn | Tool.Reduce_fn | Tool.Identity_fn -> ());
  let entry_rid = cur_region pf in
  let fr =
    if kind = Tool.Update_fn then
      fresh_frame t ~parent:(Some pf) ~spawned:false ~kind ~entry_rid
    else acquire_aux_frame t ~parent:pf ~kind ~entry_rid
  in
  t.active_frames <- fr :: t.active_frames;
  flush_pend t;
  Tool.frame_enter t.tool ~frame:fr.fid ~parent:pf.fid ~spawned:false ~kind;
  let in_reduce = kind = Tool.Reduce_fn && t.in_merge in
  let preds = if in_reduce then t.pending_deps else [ pf.cur_node ] in
  fr.cur_node <-
    new_strand t ~frame:fr.fid
      ~kind:(dag_kind_of_frame_kind kind)
      ~view:entry_rid
      ~label:(Tool.frame_kind_name kind)
      ~preds;
  if t.record then Dynarr.push t.aux_log (kind, reducer, fr.cur_node);
  let result = f { eng = t; frame = fr; ost = no_ost } in
  fr.alive <- false;
  t.active_frames <- List.tl t.active_frames;
  flush_pend t;
  Tool.frame_return t.tool ~frame:fr.fid ~parent:pf.fid ~spawned:false ~kind;
  if in_reduce then begin
    t.pending_deps <- [ fr.cur_node ];
    t.c_reduce_calls <- t.c_reduce_calls + 1
  end
  else fr_continue t pf ~preds:[ fr.cur_node ];
  if kind <> Tool.Update_fn then Dynarr.push t.aux_pool fr;
  result

let run_aux_frame ?(reducer = -1) ctx kind f =
  match ctx.eng.online with
  | Some o -> o.oo_run_aux ~reducer ctx kind f
  | None -> serial_run_aux_frame ~reducer ctx kind f

let register_reducer t ~merge =
  match t.online with
  | Some o -> o.oo_register_reducer ~merge
  | None ->
      let id = Dynarr.length t.reducer_merges in
      Dynarr.push t.reducer_merges merge;
      id

(* -------- online-runtime hooks (see Rader_sched.Online) -------- *)

(* The engine value doubles as the online run's shell: it owns the location
   registry and labels, the contract log and the reducer-merge dispatch,
   while every DSL entry point above forwards to the installed ops. The
   shell never enters [Running] state — the online runtime drives frames
   itself — so [loc_label], [contract_violations] and friends keep working
   on it after the run. *)

let set_online t ops =
  if t.state <> Fresh then err "Engine.set_online: engine already running";
  t.online <- Some ops

let clear_online t = t.online <- None
let is_online ctx = ctx.eng.online <> None

(* A placeholder serial frame for online contexts: every dispatching entry
   point branches on [online] before touching [ctx.frame], so this record
   is never read. One shared value is fine — it is immutable in practice. *)
let online_dummy_frame =
  lazy
    (let regions = Dynarr.create () in
     Dynarr.push regions { rid = 0; tails = [] };
     {
       fid = -1;
       depth = 0;
       kind = Tool.User_fn;
       spawned = false;
       parent_fid = -1;
       alive = true;
       sync_block = 0;
       local_cont_index = 0;
       steals_in_block = 0;
       regions;
       cur_node = -1;
     })

let online_ctx t ost = { eng = t; frame = Lazy.force online_dummy_frame; ost }
let ctx_ost ctx = ctx.ost

let online_view_find ctx ~region ~reducer =
  match ctx.eng.online with
  | Some o -> o.oo_view_find ctx ~region ~reducer
  | None -> invalid_arg "Engine.online_view_find: not an online context"

let online_view_set ctx ~region ~reducer v =
  match ctx.eng.online with
  | Some o -> o.oo_view_set ctx ~region ~reducer v
  | None -> invalid_arg "Engine.online_view_set: not an online context"

let online_future_make ~owner ~born_block = { value = None; owner; born_block }
let online_future_fill fut v = fut.value <- Some v
let online_future_peek fut = fut.value
let future_owner fut = fut.owner
let future_born_block fut = fut.born_block

(* Serial raw registry access, bypassing the online dispatch — the online
   ops implement [oo_alloc_locs] with this under their own lock. *)
let raw_alloc_locs t ~label n = Loc.alloc_range t.registry ~label n
