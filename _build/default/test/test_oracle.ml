(* Precise tests of the brute-force oracles' semantics — in particular
   the same-view serialization rule of §5: a view-aware access races with
   a parallel access only when their (canonicalized) views differ. These
   scenarios encode the reasoning behind the SP+ view-ID checks as
   regression tests on the oracle itself, independent of the detectors. *)

open Rader_runtime
open Rader_core

let check = Alcotest.(check (list int))
let checkb = Alcotest.(check bool)

(* A reducer whose Reduce writes a shared witness cell. *)
let touchy_monoid witness =
  {
    Reducer.name = "touchy";
    identity = (fun c -> Cell.make_in c 0);
    reduce =
      (fun c l r ->
        Cell.write c witness 1;
        Cell.write c l (Cell.read c l + Cell.read c r);
        l);
  }

(* reader spawned by root; updates inside a called helper whose internal
   continuation is stolen. Whether the reduce's write races with the
   reader depends on whether the ROOT's continuation was also stolen:
   if not, the reduce merges into the reader's own region (same view ->
   serialized); if yes, the views are parallel. *)
let scenario ~steal_root ctx =
  let witness = Cell.make_in ctx ~label:"witness" 0 in
  let red = Reducer.create ctx (touchy_monoid witness) ~init:(Cell.make_in ctx 0) in
  let probe = Cilk.spawn ctx (fun ctx -> Cell.read ctx witness) in
  Cilk.call ctx (fun ctx ->
      ignore
        (Cilk.spawn ctx (fun ctx ->
             Reducer.update ctx red (fun c v ->
                 Cell.write c v (Cell.read c v + 1);
                 v)));
      (* helper's continuation: stolen in both scenarios *)
      Reducer.update ctx red (fun c v ->
          Cell.write c v (Cell.read c v + 1);
          v);
      Cilk.sync ctx);
  Cilk.sync ctx;
  ignore (Cilk.get ctx probe);
  ignore steal_root

let run_oracle ~spec program =
  let eng = Engine.create ~spec ~record:true () in
  ignore (Engine.run eng program);
  (eng, Oracle.determinacy_races eng)

(* spawn indices: 0 = probe spawn (root), 1 = update spawn (helper) *)
let spec_helper_only =
  Steal_spec.by_spawn_index ~name:"helper-only"
    ~policy:Steal_spec.Reduce_eagerly [ 1 ]

let spec_root_and_helper =
  Steal_spec.by_spawn_index ~name:"root+helper"
    ~policy:Steal_spec.Reduce_eagerly [ 0; 1 ]

let witness_loc eng =
  (* the witness cell is the first allocated location with that label *)
  let rec go i = if Engine.loc_label eng i = "witness" then i else go (i + 1) in
  go 0

let test_same_view_reduce_is_serialized () =
  (* Only the helper's continuation is stolen: the reduce merges back into
     region 0, which is also the probe's region. In the execution this
     schedule names, the probe finished before the worker reached the
     helper — no race. *)
  let eng, races = run_oracle ~spec:spec_helper_only (scenario ~steal_root:false) in
  checkb "reduce ran" true ((Engine.stats eng).Engine.n_reduce_calls >= 1);
  check "no race under helper-only steals" [] races

let test_parallel_view_reduce_races () =
  (* Additionally stealing the root's continuation puts the helper (and
     its reduce) on a fresh view region, truly concurrent with the probe:
     the reduce's witness write races with the probe's read. *)
  let eng, races = run_oracle ~spec:spec_root_and_helper (scenario ~steal_root:true) in
  check "race under root+helper steals" [ witness_loc eng ] races;
  (* and SP+ agrees on both scenarios *)
  List.iter
    (fun (spec, expect_race) ->
      let eng = Engine.create ~spec () in
      let d = Sp_plus.attach eng in
      ignore (Engine.run eng (scenario ~steal_root:expect_race));
      Alcotest.(check bool)
        ("SP+ " ^ spec.Steal_spec.name)
        expect_race (Sp_plus.found d))
    [ (spec_helper_only, false); (spec_root_and_helper, true) ]

let test_view_oblivious_pair_ignores_views () =
  (* When the LATER access is view-oblivious, logical parallelism alone
     decides (§5), even though the earlier access is view-aware. *)
  let program ctx =
    let shared = Cell.make_in ctx ~label:"s" 0 in
    let red = Reducer.create ctx (touchy_monoid shared) ~init:(Cell.make_in ctx 0) in
    ignore
      (Cilk.spawn ctx (fun ctx ->
           Reducer.update ctx red (fun c v ->
               Cell.write c shared 7;
               v)));
    ignore (Cell.read ctx shared);
    Cilk.sync ctx
  in
  let _, races = run_oracle ~spec:Steal_spec.none program in
  Alcotest.(check int) "one racy loc" 1 (List.length races)

let test_pairs_report_exact_strands () =
  let program ctx =
    let c = Cell.make_in ctx 0 in
    ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
    ignore (Cell.read ctx c);
    Cilk.sync ctx
  in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng program);
  match Oracle.determinacy_pairs eng with
  | [ (loc, s1, s2) ] ->
      let accesses = Engine.accesses eng in
      let writes = List.filter (fun a -> a.Engine.a_is_write) accesses in
      let reads = List.filter (fun a -> not a.Engine.a_is_write) accesses in
      Alcotest.(check int) "loc is the cell" (List.hd writes).Engine.a_loc loc;
      Alcotest.(check int) "first strand = the write" (List.hd writes).Engine.a_strand s1;
      Alcotest.(check int) "second strand = the read" (List.hd reads).Engine.a_strand s2
  | pairs -> Alcotest.failf "expected 1 pair, got %d" (List.length pairs)

let test_view_read_pairs_endpoints () =
  let program ctx =
    let r = Rmonoid.new_int_add ctx ~init:0 in
    ignore (Cilk.spawn ctx (fun _ -> ()));
    ignore (Rmonoid.int_cell_value ctx r);
    Cilk.sync ctx
  in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng program);
  let rreads = Engine.reducer_reads eng in
  Alcotest.(check int) "two reducer-reads (create + get)" 2 (List.length rreads);
  match Oracle.view_read_pairs eng with
  | [ (rid, s1, s2) ] ->
      Alcotest.(check int) "reducer 0" 0 rid;
      let strands = List.map snd rreads in
      Alcotest.(check (list int)) "pair = the two reducer-reads" (List.sort compare strands)
        (List.sort compare [ s1; s2 ])
  | pairs -> Alcotest.failf "expected 1 view-read pair, got %d" (List.length pairs)

let () =
  Alcotest.run "oracle"
    [
      ( "view semantics",
        [
          Alcotest.test_case "same-view reduce serialized" `Quick
            test_same_view_reduce_is_serialized;
          Alcotest.test_case "parallel-view reduce races" `Quick
            test_parallel_view_reduce_races;
          Alcotest.test_case "oblivious pair ignores views" `Quick
            test_view_oblivious_pair_ignores_views;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "determinacy pair strands" `Quick
            test_pairs_report_exact_strands;
          Alcotest.test_case "view-read pair strands" `Quick
            test_view_read_pairs_endpoints;
        ] );
    ]
