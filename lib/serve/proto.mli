(** Wire protocol for [rader serve] / [rader submit].

    Frames are a u32 big-endian body length (at most {!max_frame}) followed
    by the body: [u8 version | u8 tag | u32 request id | fields]. Strings
    are u32-length-prefixed bytes, floats are IEEE-754 bits big-endian,
    options are a u8 discriminant then the value.

    Request tags: 1 Submit, 2 Health, 3 Shutdown. Response tags: 129
    Verdict, 130 Retry_after, 131 Internal_fault, 132 Health_report,
    133 Proto_error, 134 Bye.

    Both decoders are {e total}: any malformed body — wrong version,
    unknown tag, truncated field, trailing bytes, absurd lengths — comes
    back as [Error err] with a stable {!err} code, never an exception, so
    a hostile or corrupted client cannot crash the daemon. *)

val version : int

(** Hard cap on body size (1 MiB): enforced before allocation on receive
    and on send. *)
val max_frame : int

type err = { code : int; msg : string }

val err_bad_length : int
val err_bad_version : int
val err_bad_tag : int
val err_truncated : int
val err_trailing : int
val err_bad_field : int

(** Request-level (not framing-level) errors the server can answer. *)

val err_unknown_program : int

val err_bad_spec : int
val err_draining : int

type check_kind =
  | Check  (** one run under one steal spec, SP+ attached *)
  | Coverage  (** the §7 exhaustive sweep *)
  | Lint  (** static reducer-misuse lint — pure tree query, cacheable *)
  | Verify
      (** symbolic whole-family verification with witness replays —
          deterministic in (program, scale), so perfectly cacheable *)

type submit = {
  kind : check_kind;
  program : string;  (** registry name, see [Rader_benchsuite.Demos] *)
  scale : float;
  seed : int;
  spec : string;  (** steal spec, [Steal_spec.parse] syntax; check only *)
  density : float;
  max_events : int option;  (** per-run event budget; server caps it *)
  deadline_s : float option;  (** relative budget in s; server caps it *)
  prune : bool;  (** coverage only *)
}

type request = Submit of submit | Health | Shutdown

type status =
  | Clean  (** analysis complete, no races — CLI exit 0 *)
  | Races  (** races (or lint findings) — CLI exit 1 *)
  | Partial  (** contained failure / budget blowout — CLI exit 3 *)

type verdict = {
  status : status;
  cached : bool;  (** served from the verdict cache *)
  v_result : int option;  (** program result, when the run finished *)
  n_run : int;  (** specs attempted (coverage); 1 for check/lint *)
  n_specs : int;  (** spec family size (coverage); 1 otherwise *)
  races : string list;  (** rendered race reports / lint findings *)
  failures : (string * string) list;
      (** (failure class, rendered diagnostic) for every contained
          failure; non-empty iff [status = Partial] *)
}

type response =
  | Verdict of verdict
  | Retry_after of int  (** shed: retry after this many milliseconds *)
  | Internal_fault of string  (** worker poisoned while serving this *)
  | Health_report of string  (** JSON *)
  | Proto_error of err
  | Bye

val encode_request : id:int -> request -> string
val encode_response : id:int -> response -> string
val decode_request : string -> (int * request, err) result
val decode_response : string -> (int * response, err) result

(** [send fd body] writes the length prefix and [body] fully.
    @raise Invalid_argument if [body] exceeds {!max_frame}; [Unix_error]
    surfaces I/O failures. *)
val send : Unix.file_descr -> string -> unit

(** [recv fd] reads one frame body. [`Eof] is a clean close at a frame
    boundary; [`Err] covers oversized/zero length prefixes and mid-frame
    disconnects. Never raises on malformed input (only on [Unix_error]). *)
val recv : Unix.file_descr -> (string, [ `Eof | `Err of err ]) result
