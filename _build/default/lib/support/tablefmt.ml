type row = Cells of string list | Rule

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create headers = { headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Tablefmt.add_row: too many cells";
  let cells = cells @ List.init (n - k) (fun _ -> "") in
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    let last = ncols - 1 in
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf c;
        (* no trailing spaces after the last column *)
        if i < last then
          Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      cells;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "-+-";
      Buffer.add_string buf (String.make widths.(i) '-')
    done;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f v = Printf.sprintf "%.2f" v
