lib/benchsuite/workloads.mli: Bytes
