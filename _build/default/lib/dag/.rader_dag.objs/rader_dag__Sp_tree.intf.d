lib/dag/sp_tree.mli: Dag
