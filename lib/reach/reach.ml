module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type backend = Dset | Depa

let all = [ Dset; Depa ]

let show = function Dset -> "dset" | Depa -> "depa"

let parse = function
  | "dset" -> Ok Dset
  | "depa" -> Ok Depa
  | s -> Error (Printf.sprintf "unknown reachability backend %S (expected dset|depa)" s)

let doc_alts = "dset|depa"

(* ---------------------------------------------------------------------- *)
(* Fork-path fingerprints (shared by the depa backends).

   A frame's fingerprint is the sequence of child ordinals along its path
   from the root, each ordinal [i] encoded as the Elias-gamma code of
   [i+1] and packed MSB-first into 62-bit words. Gamma codes are
   prefix-free, so one fingerprint's bit string is a prefix of another's
   iff its path is an ancestor path — and the first differing bit sits
   inside the gamma code of the first diverging child, which a word XOR
   plus an in-word decode recovers in O(1) per word.

   Codes never straddle words: a code that does not fit the current
   word's remaining bits starts at bit 0 of a fresh word (the tail of the
   old word is zero padding), and [word_lvl.(j)] records the path level
   of the first code starting in word [j], so any word can be decoded
   from its own bit 0 without touching earlier words. Fingerprints are
   immutable; extension copies the word array (one or two words for every
   benchmark in the suite) — which is also what makes concurrent readers
   safe: a query never mutates, and never observes a half-built code. *)

let word_bits = 62

type fp = {
  words : int array;
  word_lvl : int array; (* word -> level of the first code starting there *)
  nbits : int; (* position where the next code would start *)
  ncodes : int; (* path depth *)
}

let fp_root = { words = [||]; word_lvl = [||]; nbits = 0; ncodes = 0 }

let bits_len v =
  let n = ref 0 and v = ref v in
  while !v <> 0 do
    incr n;
    v := !v lsr 1
  done;
  !n

let fp_extend fp ~ord =
  let v = ord + 1 in
  let l = bits_len v in
  let clen = (2 * l) - 1 in
  if clen > word_bits then invalid_arg "Reach: child ordinal out of range";
  let nw = Array.length fp.words in
  let j = fp.nbits / word_bits and off = fp.nbits mod word_bits in
  if j < nw && off + clen <= word_bits then begin
    let words = Array.copy fp.words in
    words.(j) <- words.(j) lor (v lsl (word_bits - off - clen));
    (* word_lvl is immutable and unchanged: share it *)
    { words; word_lvl = fp.word_lvl; nbits = fp.nbits + clen; ncodes = fp.ncodes + 1 }
  end
  else begin
    let words = Array.make (nw + 1) 0 in
    Array.blit fp.words 0 words 0 nw;
    words.(nw) <- v lsl (word_bits - clen);
    let word_lvl = Array.make (nw + 1) 0 in
    Array.blit fp.word_lvl 0 word_lvl 0 nw;
    word_lvl.(nw) <- fp.ncodes;
    { words; word_lvl; nbits = (nw * word_bits) + clen; ncodes = fp.ncodes + 1 }
  end

(* Ordinal encoded by code [idx] of [fp]. Requires [idx < fp.ncodes]. *)
let code_at fp idx =
  let wl = fp.word_lvl in
  let lo = ref 0 and hi = ref (Array.length wl - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if wl.(mid) <= idx then lo := mid else hi := mid - 1
  done;
  let w = fp.words.(!lo) in
  let t = ref wl.(!lo) and off = ref 0 in
  let res = ref 0 in
  (try
     while true do
       let z = ref 0 in
       while (w lsr (word_bits - 1 - (!off + !z))) land 1 = 0 do
         incr z
       done;
       let l = !z + 1 in
       let e = !off + (2 * l) - 1 in
       if !t = idx then begin
         res := (w lsr (word_bits - e)) land ((1 lsl l) - 1);
         raise Exit
       end;
       off := e;
       incr t
     done
   with Exit -> ());
  !res - 1

type div = Prefix | Diverge of { level : int; uord : int }

(* [divergence u v] relates recorded path [u] to current path [v]:
   [Prefix] iff [u]'s codes are a prefix of [v]'s (ancestor-or-self), else
   the first diverging level plus [u]'s child ordinal there. Also returns
   the number of words examined, for the cost counters. *)
let divergence u v =
  let nu = Array.length u.words and nv = Array.length v.words in
  let n = if nu < nv then nu else nv in
  let j = ref 0 in
  while !j < n && u.words.(!j) = v.words.(!j) do
    incr j
  done;
  let touched = if !j < n then !j + 1 else max 1 !j in
  if !j = n then
    if u.ncodes <= v.ncodes then (Prefix, touched)
    else (Diverge { level = v.ncodes; uord = code_at u v.ncodes }, touched)
  else begin
    let j = !j in
    (* offset (MSB-first) of the first differing bit *)
    let db =
      let b = ref (-1) and x = ref (u.words.(j) lxor v.words.(j)) in
      while !x <> 0 do
        incr b;
        x := !x lsr 1
      done;
      word_bits - 1 - !b
    in
    let w = u.words.(j) in
    let t = ref u.word_lvl.(j) and off = ref 0 in
    let res = ref Prefix in
    (try
       while true do
         if !t >= u.ncodes then raise Exit (* all of [u] matched: prefix *)
         else if j + 1 < Array.length u.word_lvl && u.word_lvl.(j + 1) = !t then begin
           (* [u]'s code [t] spilled to the next word while [v]'s fit
              here, so the two codes differ in length, hence in value *)
           res := Diverge { level = !t; uord = code_at u !t };
           raise Exit
         end;
         let z = ref 0 in
         while (w lsr (word_bits - 1 - (!off + !z))) land 1 = 0 do
           incr z
         done;
         let l = !z + 1 in
         let e = !off + (2 * l) - 1 in
         if e > db then begin
           res :=
             Diverge
               { level = !t; uord = ((w lsr (word_bits - e)) land ((1 lsl l) - 1)) - 1 };
           raise Exit
         end;
         off := e;
         incr t
       done
     with Exit -> ());
    (!res, touched)
  end

(* ---------------------------------------------------------------------- *)

(* Pairwise structural precedence for the online runtime.

   The serially-anchored backends below ([Sp], [Peer]) classify a
   recorded frame against "the current strand" of one depth-first serial
   execution — a notion that does not exist when many workers execute the
   SP tree at once. [Fp] instead relates two arbitrary {e points} of the
   computation from immutable per-frame records: each frame stores its
   fork-path fingerprint plus the coordinates of its creation edge
   (ordinal, spawned?, parent's sync block and in-frame sequence number),
   and every access captures its frame, block, sequence number, view
   region and chain-spawn stamp. Records are written once, by the frame's
   creator, before any other worker can see them, so queries from
   concurrent domains race with nothing — the same immutability argument
   that makes the [depa] backend's fingerprints safe under concurrent
   SP-tree extension, and the reason the mutating [dset] machinery is
   unusable online.

   For a fully strict program, two points [a] (serially earlier) and [b]
   are logically parallel iff, at their least common ancestor frame [L],
   [a] lies strictly inside a {e spawned} child subtree of [L] whose
   creation edge belongs to the same sync block of [L] as [b]'s side —
   i.e. [L] has not yet passed the sync that joins [a]'s subtree when [b]
   runs. The fingerprint divergence locates [L] in O(⌈depth/62⌉) word
   compares; two bounded parent walks then fetch the edge records. *)

module Fp = struct
  type frame = {
    f_fp : fp;
    f_parent : frame option;
    f_depth : int;
    f_spawned : bool;  (* creation edge: spawned (vs called) child *)
    f_block : int;  (* parent's sync block at creation *)
    f_seq : int;  (* parent's in-frame sequence number at creation *)
    f_rid_entry : int;  (* view region the child starts in *)
    f_cum_entry : int;
        (* chain-spawn stamp just after this edge: parent's stamp plus
           every spawn the parent had performed, including this edge's own
           spawn when [f_spawned] *)
  }

  let root () =
    {
      f_fp = fp_root;
      f_parent = None;
      f_depth = 0;
      f_spawned = false;
      f_block = 0;
      f_seq = 0;
      f_rid_entry = 0;
      f_cum_entry = 0;
    }

  let child parent ~ord ~spawned ~block ~seq ~rid_entry ~cum_entry =
    {
      f_fp = fp_extend parent.f_fp ~ord;
      f_parent = Some parent;
      f_depth = parent.f_depth + 1;
      f_spawned = spawned;
      f_block = block;
      f_seq = seq;
      f_rid_entry = rid_entry;
      f_cum_entry = cum_entry;
    }

  let depth f = f.f_depth

  type point = {
    p_frame : frame;
    p_block : int;  (* frame's sync block at the access *)
    p_seq : int;  (* frame's sequence number at the access *)
    p_rid : int;  (* view region at the access *)
    p_cum : int;  (* chain-spawn stamp at the access *)
  }

  type verdict =
    | Parallel of { a_before_b : bool; earlier_entry_rid : int }
        (* [earlier_entry_rid]: entry region of the serially-earlier
           point's child edge at the LCA — the region its whole subtree
           has been folded back into by the time the later point runs
           under the at-sync reduce policy, i.e. the surviving view id
           the serial SP+ comparison sees. *)
    | Serial of { a_before_b : bool; spawns_between_lb : int }
        (* [spawns_between_lb]: a sound lower bound on the number of
           spawns serially between the two points (chain spawns only —
           spawns inside the earlier point's completed subtree are not
           counted), used for the Peer-Set Lemma-3 spawn-count test. *)

  let rec ancestor_at fr d =
    if fr.f_depth = d then fr
    else
      match fr.f_parent with
      | Some p -> ancestor_at p d
      | None -> invalid_arg "Reach.Fp.ancestor_at: depth below root"

  (* Relate an in-frame point of the LCA to a point below it through edge
     [e]. In-frame coordinates at equal [f_seq] precede the edge: the
     sequence number is bumped when the child is created, so an access
     observing [seq = s] happened before the child whose edge records
     [f_seq = s]. An in-frame point that precedes the edge is never
     parallel to the subtree (the subtree is spawned after it). *)
  let relate_inframe ~inframe_first pt e other_pt =
    if pt.p_seq <= e.f_seq then
      Serial
        {
          a_before_b = inframe_first;
          spawns_between_lb = other_pt.p_cum - pt.p_cum;
        }
    else if e.f_spawned && e.f_block = pt.p_block then
      Parallel
        { a_before_b = not inframe_first; earlier_entry_rid = e.f_rid_entry }
    else
      Serial
        {
          a_before_b = not inframe_first;
          spawns_between_lb = pt.p_cum - e.f_cum_entry;
        }

  let relate a b =
    let fa = a.p_frame and fb = b.p_frame in
    if fa == fb then
      (* One frame executes its own statements serially. Equal sequence
         numbers mean no child creation separated the two accesses; the
         order is then immaterial to every client (identical coordinates),
         so break the tie arbitrarily. *)
      let a_first =
        a.p_seq < b.p_seq || (a.p_seq = b.p_seq && a.p_cum <= b.p_cum)
      in
      let lo, hi = if a_first then (a, b) else (b, a) in
      Serial { a_before_b = a_first; spawns_between_lb = hi.p_cum - lo.p_cum }
    else begin
      let d, words = divergence fa.f_fp fb.f_fp in
      if Obs.enabled () then Obs.bump_reach_query ~words;
      match d with
      | Prefix when fa.f_depth <= fb.f_depth ->
          (* [fa] is an ancestor of [fb]: the LCA is [fa] itself. *)
          let e = ancestor_at fb (fa.f_depth + 1) in
          relate_inframe ~inframe_first:true a e b
      | Prefix ->
          (* Equal-length distinct paths cannot happen (one frame record
             per path); [fb] is an ancestor of [fa]. *)
          let e = ancestor_at fa (fb.f_depth + 1) in
          relate_inframe ~inframe_first:false b e a
      | Diverge { level; uord = _ } when level >= fb.f_depth ->
          (* [divergence] is asymmetric: [fb] a strict ancestor of [fa]
             comes back as a divergence at [fb]'s own depth, not as
             [Prefix]. *)
          let e = ancestor_at fa (fb.f_depth + 1) in
          relate_inframe ~inframe_first:false b e a
      | Diverge { level; uord = _ } ->
          let ea = ancestor_at fa (level + 1) in
          let eb = ancestor_at fb (level + 1) in
          (* Distinct children of one parent have distinct sequence
             numbers. *)
          let a_first = ea.f_seq < eb.f_seq in
          let e_early, e_late, pt_late =
            if a_first then (ea, eb, b) else (eb, ea, a)
          in
          if e_early.f_spawned && e_early.f_block = e_late.f_block then
            Parallel
              { a_before_b = a_first; earlier_entry_rid = e_early.f_rid_entry }
          else
            Serial
              {
                a_before_b = a_first;
                spawns_between_lb = pt_late.p_cum - e_early.f_cum_entry;
              }
    end

  (* [serial_before a b]: [a] strictly precedes [b] in the depth-first
     serial order. Parallel points are ordered by their LCA edges — the
     left subtree's strands all precede the right's serially. *)
  let serial_before a b =
    match relate a b with
    | Serial { a_before_b; _ } | Parallel { a_before_b; _ } -> a_before_b
end

(* Flat union-find arena shared by the [dset] backends below.

   The seed's generic [Bag]/[Dset] machinery allocates one record per bag
   plus Dynarr-backed slots per element — three heap allocations per frame
   enter on a path fib-grained programs hit tens of millions of times.
   This arena keeps the identical set algebra in raw int arrays:

   - union-find over [parent]/[rank] indexed by frame id, with
     [parent.(x) = -1] marking "never inserted";
   - bag payloads (kind + view id) stored at roots in [pk]/[pv] and
     rewritten to the {e destination}'s payload on every union, exactly
     like [Bag.union_into] keeping the dst payload;
   - a bag is just a root index ([-1] when empty) held by its owning
     frame slot, so unions need no [find] at all — both roots are known.

   Set membership (and hence classification) is independent of union-find
   tree shape, and payloads are maintained explicitly at roots, so
   verdicts are byte-identical to the record-based machinery. *)
module Uf = struct
  (* One interleaved arena, 4 slots per node — parent, rank, payload kind,
     payload view — so a find/union touches one cache line per node
     instead of four. parent = -1 marks "never inserted"; self at root.
     Payload slots are valid at roots only. *)
  type t = {
    mutable a : int array;
    mutable hi : int; (* high-water mark of inserted ids, for reset *)
  }

  let stride = 4

  let create () =
    let a = Array.make (1024 * stride) 0 in
    let i = ref 0 in
    while !i < Array.length a do
      a.(!i) <- -1;
      i := !i + stride
    done;
    { a; hi = 0 }

  let grow a fill n =
    let b = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b

  let mem t x = x >= 0 && stride * x < Array.length t.a && t.a.(stride * x) >= 0

  (* Insert [x] as a fresh singleton root (payload set by the caller). *)
  let insert t x =
    let cap = Array.length t.a in
    if stride * x >= cap then begin
      let b = Array.make (max (stride * (x + 1)) (2 * cap)) 0 in
      Array.blit t.a 0 b 0 cap;
      let i = ref cap in
      while !i < Array.length b do
        b.(!i) <- -1;
        i := !i + stride
      done;
      t.a <- b
    end;
    t.a.(stride * x) <- x;
    t.a.((stride * x) + 1) <- 0;
    if x >= t.hi then t.hi <- x + 1;
    if Obs.enabled () then Obs.bump_dset_add ()

  (* Parent slots of inserted nodes always hold inserted node ids (the
     forest is closed under parent edges), so the unchecked reads stay
     within the arena for any [x] the caller has proved [mem]. *)
  let find t x =
    let x = ref x and steps = ref 0 in
    let a = t.a in
    while Array.unsafe_get a (stride * !x) <> !x do
      let gp =
        Array.unsafe_get a (stride * Array.unsafe_get a (stride * !x))
      in
      Array.unsafe_set a (stride * !x) gp; (* path halving *)
      x := gp;
      incr steps
    done;
    if Obs.enabled () then Obs.bump_dset_find ~compress_steps:!steps;
    !x

  (* Union the set rooted at [src] into the one rooted at [dst]; the
     merged root takes the destination payload [dkind]/[dvid]. Either
     root may be [-1] (empty set). Returns the merged root. *)
  let union_into t ~src ~dst ~dkind ~dvid =
    if Obs.enabled () then Obs.bump_bag_union ();
    if src < 0 then dst
    else begin
      let a = t.a in
      let r =
        if dst < 0 then src
        else begin
          if Obs.enabled () then Obs.bump_dset_union ();
          let rs = a.((stride * src) + 1) and rd = a.((stride * dst) + 1) in
          if rs > rd then begin
            a.(stride * dst) <- src;
            src
          end
          else begin
            a.(stride * src) <- dst;
            if rs = rd then a.((stride * dst) + 1) <- rd + 1;
            dst
          end
        end
      in
      a.((stride * r) + 2) <- dkind;
      a.((stride * r) + 3) <- dvid;
      r
    end

  (* Root payload accessors (valid at roots, like the former pk/pv). *)
  let kind_at t r = t.a.((stride * r) + 2)
  let view_at t r = t.a.((stride * r) + 3)
  let set_kind t r k = t.a.((stride * r) + 2) <- k
  let set_view t r v = t.a.((stride * r) + 3) <- v

  let reset t =
    let i = ref 0 in
    while !i < stride * t.hi do
      t.a.(!i) <- -1;
      i := !i + stride
    done;
    t.hi <- 0
end

let grow_stack = Uf.grow

module Sp = struct
  type cls = Serial | Parallel of int

  (* -------- dset backend: the seed's S/P bags over the flat arena --------

     The per-frame S bag and P-bag stack are flattened into parallel int
     stacks: [ffid]/[fvid]/[fsroot]/[fpbase] per live frame, plus one
     global [proot]/[pvid] stack holding every live frame's open P bags
     (innermost frame's on top; [fpbase] records where each frame's
     segment starts).

     [lazy_note] defers inserting a frame into its own S set until the
     first time its id is actually recorded in a shadow space ([note]).
     Un-noted frames are never classified (only shadow contents are), and
     a frame is only noted while live — when its S set can only have
     absorbed other sets, never moved — so a noted frame joins exactly
     the set the eager discipline would have it in and every verdict is
     unchanged, while spawn-heavy programs whose frames never touch
     instrumented memory (fib, knapsack skeletons) do no disjoint-set
     work at all. *)

  let ks = 0
  let kp = 1

  type dstate = {
    uf : Uf.t;
    lazy_note : bool;
    (* live-frame stack *)
    mutable ffid : int array;
    mutable fvid : int array; (* entry view id = the S bag's payload vid *)
    mutable fsroot : int array; (* root of the S set, -1 when empty *)
    mutable fpbase : int array; (* index of the frame's first P bag *)
    mutable depth : int;
    (* open P bags of all live frames *)
    mutable proot : int array; (* -1 when empty *)
    mutable pvid : int array;
    mutable np : int;
  }

  let d_create ~lazy_note =
    {
      uf = Uf.create ();
      lazy_note;
      ffid = Array.make 64 0;
      fvid = Array.make 64 0;
      fsroot = Array.make 64 0;
      fpbase = Array.make 64 0;
      depth = 0;
      proot = Array.make 64 0;
      pvid = Array.make 64 0;
      np = 0;
    }

  let d_top_vid st = st.pvid.(st.np - 1)

  let d_enter st ~frame =
    let vid = if st.depth = 0 then 0 else st.pvid.(st.np - 1) in
    if st.depth >= Array.length st.ffid then begin
      let n = st.depth + 1 in
      st.ffid <- grow_stack st.ffid 0 n;
      st.fvid <- grow_stack st.fvid 0 n;
      st.fsroot <- grow_stack st.fsroot 0 n;
      st.fpbase <- grow_stack st.fpbase 0 n
    end;
    let i = st.depth in
    st.depth <- i + 1;
    st.ffid.(i) <- frame;
    st.fvid.(i) <- vid;
    st.fpbase.(i) <- st.np;
    if st.lazy_note then st.fsroot.(i) <- -1
    else begin
      Uf.insert st.uf frame;
      Uf.set_kind st.uf frame ks;
      Uf.set_view st.uf frame vid;
      st.fsroot.(i) <- frame
    end;
    if st.np >= Array.length st.proot then begin
      st.proot <- grow_stack st.proot 0 (st.np + 1);
      st.pvid <- grow_stack st.pvid 0 (st.np + 1)
    end;
    st.proot.(st.np) <- -1;
    st.pvid.(st.np) <- vid;
    st.np <- st.np + 1;
    if Obs.enabled () then begin
      Obs.bump_bag_make ();
      Obs.bump_bag_make ()
    end

  (* First shadow recording of the (live, top) frame under [lazy_note]:
     insert it into its own S set now. No root payload changes, so no
     other frame's classification is affected; a second call is a no-op
     because the id is already present. *)
  let d_note st ~frame =
    if not (Uf.mem st.uf frame) then begin
      let i = st.depth - 1 in
      assert (st.ffid.(i) = frame);
      Uf.insert st.uf frame;
      st.fsroot.(i) <-
        Uf.union_into st.uf ~src:frame ~dst:st.fsroot.(i) ~dkind:ks
          ~dvid:st.fvid.(i)
    end

  let d_return st ~frame ~parallel =
    let i = st.depth - 1 in
    st.depth <- i;
    assert (st.ffid.(i) = frame);
    let gs = st.fsroot.(i) in
    (* drop G's P bags, as the seed dropped its dpstack (post-sync they
       are empty; elements already merged keep their sets either way) *)
    st.np <- st.fpbase.(i);
    if i > 0 then begin
      if parallel then begin
        let j = st.np - 1 in
        st.proot.(j) <-
          Uf.union_into st.uf ~src:gs ~dst:st.proot.(j) ~dkind:kp
            ~dvid:st.pvid.(j)
      end
      else
        st.fsroot.(i - 1) <-
          Uf.union_into st.uf ~src:gs ~dst:st.fsroot.(i - 1) ~dkind:ks
            ~dvid:st.fvid.(i - 1)
    end;
    (* A root payload was rewritten only if the returning frame's S set
       was non-empty (an empty [src] makes [union_into] a pure no-op). *)
    i > 0 && gs >= 0

  let d_sync st ~frame =
    let i = st.depth - 1 in
    assert (st.ffid.(i) = frame);
    assert (st.np = st.fpbase.(i) + 1);
    let j = st.np - 1 in
    let src = st.proot.(j) in
    st.fsroot.(i) <-
      Uf.union_into st.uf ~src ~dst:st.fsroot.(i) ~dkind:ks ~dvid:st.fvid.(i);
    (* refresh the single P bag: fresh and empty, carrying the S bag's
       vid (the frame's entry vid — unions keep the destination payload) *)
    st.proot.(j) <- -1;
    st.pvid.(j) <- st.fvid.(i);
    if Obs.enabled () then Obs.bump_bag_make ();
    src >= 0

  let d_steal st ~frame ~region =
    assert (st.ffid.(st.depth - 1) = frame);
    if st.np >= Array.length st.proot then begin
      st.proot <- grow_stack st.proot 0 (st.np + 1);
      st.pvid <- grow_stack st.pvid 0 (st.np + 1)
    end;
    st.proot.(st.np) <- -1;
    st.pvid.(st.np) <- region;
    st.np <- st.np + 1;
    if Obs.enabled () then Obs.bump_bag_make ()

  let d_reduce st ~frame =
    assert (st.ffid.(st.depth - 1) = frame);
    let j = st.np - 1 in
    st.np <- j;
    let src = st.proot.(j) in
    st.proot.(j - 1) <-
      Uf.union_into st.uf ~src ~dst:st.proot.(j - 1) ~dkind:kp
        ~dvid:st.pvid.(j - 1);
    src >= 0

  let d_classify st u =
    if Obs.enabled () then Obs.bump_bag_find ();
    if not (Uf.mem st.uf u) then Serial
    else begin
      let r = Uf.find st.uf u in
      if Uf.kind_at st.uf r = kp then Parallel (Uf.view_at st.uf r) else Serial
    end

  (* -------- depa backend: fingerprints + view epochs -------- *)

  type zframe = {
    mutable zfid : int;
    mutable zfp : fp;
    mutable entry_vid : int;
    mutable ord : int; (* child ordinal in the parent; -1 for the root *)
    mutable nchildren : int; (* next child ordinal *)
    mutable base_ord : int; (* [nchildren] at the last sync *)
    child_ep : int Dynarr.t; (* ordinal - base_ord -> epoch, -1 if serial *)
    ep : int Dynarr.t; (* live view epochs, increasing bottom to top *)
    vd : int Dynarr.t; (* view ids, parallel to [ep] *)
  }

  type zstate = {
    mutable next_epoch : int;
    zstack : zframe Dynarr.t;
    zpool : zframe Dynarr.t; (* recycled records: frames are LIFO *)
    ftab : fp option Dynarr.t; (* frame id -> fingerprint *)
  }

  let fresh_epoch st =
    let e = st.next_epoch in
    st.next_epoch <- e + 1;
    e

  let z_alloc st =
    if Dynarr.is_empty st.zpool then
      {
        zfid = -1;
        zfp = fp_root;
        entry_vid = 0;
        ord = -1;
        nchildren = 0;
        base_ord = 0;
        child_ep = Dynarr.create ();
        ep = Dynarr.create ();
        vd = Dynarr.create ();
      }
    else begin
      let g = Dynarr.pop st.zpool in
      Dynarr.clear g.child_ep;
      Dynarr.clear g.ep;
      Dynarr.clear g.vd;
      g
    end

  let z_enter st ~frame =
    let zfp, vid, ord =
      if Dynarr.is_empty st.zstack then (fp_root, 0, -1)
      else begin
        let f = Dynarr.top st.zstack in
        let ord = f.nchildren in
        f.nchildren <- ord + 1;
        (fp_extend f.zfp ~ord, Dynarr.top f.vd, ord)
      end
    in
    let g = z_alloc st in
    g.zfid <- frame;
    g.zfp <- zfp;
    g.entry_vid <- vid;
    g.ord <- ord;
    g.nchildren <- 0;
    g.base_ord <- 0;
    Dynarr.push g.ep (fresh_epoch st);
    Dynarr.push g.vd vid;
    Dynarr.push st.zstack g;
    Dynarr.ensure st.ftab (frame + 1) None;
    Dynarr.set st.ftab frame (Some zfp)

  let z_return st ~frame ~parallel =
    let g = Dynarr.pop st.zstack in
    assert (g.zfid = frame);
    if not (Dynarr.is_empty st.zstack) then begin
      let f = Dynarr.top st.zstack in
      (* Children run one at a time and in ordinal order, so the record
         for ordinal [g.ord] lands exactly at the end of [child_ep]. *)
      assert (g.ord - f.base_ord = Dynarr.length f.child_ep);
      Dynarr.push f.child_ep (if parallel then Dynarr.top f.ep else -1);
      if Obs.enabled () then Obs.bump_reach_epoch ~steps:1
    end;
    Dynarr.push st.zpool g;
    (* popping the stack changes the LCA walk for any recorded frame —
       conservatively report that classifications may have moved *)
    true

  let z_sync st ~frame =
    let f = Dynarr.top st.zstack in
    assert (f.zfid = frame);
    assert (Dynarr.length f.ep = 1);
    f.base_ord <- f.nchildren;
    Dynarr.clear f.child_ep;
    Dynarr.clear f.ep;
    Dynarr.clear f.vd;
    (* like the seed's post-sync refresh: the S bag's vid is always the
       frame's entry vid (union keeps the destination payload) *)
    Dynarr.push f.ep (fresh_epoch st);
    Dynarr.push f.vd f.entry_vid;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1;
    true

  let z_steal st ~frame ~region =
    let f = Dynarr.top st.zstack in
    assert (f.zfid = frame);
    Dynarr.push f.ep (fresh_epoch st);
    Dynarr.push f.vd region;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1

  let z_reduce st ~frame =
    let f = Dynarr.top st.zstack in
    assert (f.zfid = frame);
    assert (Dynarr.length f.ep >= 2);
    ignore (Dynarr.pop f.ep);
    ignore (Dynarr.pop f.vd);
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1;
    true

  (* View id surviving for recorded epoch [e] in frame [a]: the largest
     still-live epoch <= e (reduce pops epochs from the top, so the views
     a popped epoch's members merged into is exactly the one below). *)
  let z_survivor a e =
    let lo = ref 0 and hi = ref (Dynarr.length a.ep - 1) and steps = ref 1 in
    while !lo < !hi do
      incr steps;
      let mid = (!lo + !hi + 1) / 2 in
      if Dynarr.get a.ep mid <= e then lo := mid else hi := mid - 1
    done;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:!steps;
    Dynarr.get a.vd !lo

  let z_classify st u =
    if u >= Dynarr.length st.ftab then Serial
    else
      match Dynarr.get st.ftab u with
      | None -> Serial
      | Some ufp -> (
          let v = Dynarr.top st.zstack in
          let d, words = divergence ufp v.zfp in
          if Obs.enabled () then Obs.bump_reach_query ~words;
          match d with
          | Prefix -> Serial (* ancestor-or-self of the current frame *)
          | Diverge { level; uord } ->
              (* lowest common ancestor of [u] and the current point: it is
                 on the live stack at depth [level] *)
              let a = Dynarr.get st.zstack level in
              if uord < a.base_ord then Serial (* joined before [a]'s last sync *)
              else begin
                let idx = uord - a.base_ord in
                (* the diverging child cannot be [a]'s running child (that
                   one is on the current path), so its return is recorded *)
                assert (idx < Dynarr.length a.child_ep);
                match Dynarr.get a.child_ep idx with
                | -1 -> Serial (* called child: its subtree joined a.S *)
                | e -> Parallel (z_survivor a e)
              end)

  (* -------- dispatch -------- *)

  type t = Sp_dset of dstate | Sp_depa of zstate

  let create ?(lazy_note = false) = function
    | Dset -> Sp_dset (d_create ~lazy_note)
    | Depa ->
        (* [lazy_note] is irrelevant here: the depa frame table is filled
           at enter and queries are already mutation-free O(1). *)
        Sp_depa
          {
            next_epoch = 0;
            zstack = Dynarr.create ();
            zpool = Dynarr.create ();
            ftab = Dynarr.create ();
          }

  let backend = function Sp_dset _ -> Dset | Sp_depa _ -> Depa

  let reset = function
    | Sp_dset st ->
        Uf.reset st.uf;
        st.depth <- 0;
        st.np <- 0
    | Sp_depa st ->
        st.next_epoch <- 0;
        Dynarr.iter (fun g -> Dynarr.push st.zpool g) st.zstack;
        Dynarr.clear st.zstack;
        Dynarr.clear st.ftab

  let on_frame_enter t ~frame =
    match t with Sp_dset st -> d_enter st ~frame | Sp_depa st -> z_enter st ~frame

  let on_frame_return t ~frame ~parallel =
    match t with
    | Sp_dset st -> d_return st ~frame ~parallel
    | Sp_depa st -> z_return st ~frame ~parallel

  let on_sync t ~frame =
    match t with Sp_dset st -> d_sync st ~frame | Sp_depa st -> z_sync st ~frame

  let on_steal t ~frame ~region =
    match t with
    | Sp_dset st -> d_steal st ~frame ~region
    | Sp_depa st -> z_steal st ~frame ~region

  let on_reduce t ~frame =
    match t with Sp_dset st -> d_reduce st ~frame | Sp_depa st -> z_reduce st ~frame

  let classify t u =
    match t with Sp_dset st -> d_classify st u | Sp_depa st -> z_classify st u

  let note t ~frame =
    match t with Sp_dset st -> d_note st ~frame | Sp_depa _ -> ()

  let cur_view = function
    | Sp_dset st -> d_top_vid st
    | Sp_depa st -> Dynarr.top (Dynarr.top st.zstack).vd
end

(* ---------------------------------------------------------------------- *)

module Peer = struct
  (* -------- dset backend: the seed's three bags over the flat arena --------

     Same flattening as [Sp]: each live frame's SS/SP/P bags are root
     indices in parallel int stacks, and [lazy_note] defers inserting a
     frame into its own SS set until its first recorded reducer-read
     ([note_read]) — only shadow-recorded reader frames are ever queried
     by [parallel_read], and a live frame's SS set only absorbs others,
     so verdicts are unchanged. *)

  let kss = 0
  let ksp = 1
  let kp = 2

  type dstate = {
    uf : Uf.t;
    lazy_note : bool;
    mutable pfid : int array;
    mutable panc : int array;
    mutable pls : int array;
    mutable pss : int array; (* SS/SP/P set roots, -1 when empty *)
    mutable psp : int array;
    mutable pp : int array;
    mutable depth : int;
  }

  let d_create ~lazy_note =
    {
      uf = Uf.create ();
      lazy_note;
      pfid = Array.make 64 0;
      panc = Array.make 64 0;
      pls = Array.make 64 0;
      pss = Array.make 64 0;
      psp = Array.make 64 0;
      pp = Array.make 64 0;
      depth = 0;
    }

  let d_enter st ~frame ~spawned =
    let anc =
      if st.depth = 0 then 0
      else begin
        let i = st.depth - 1 in
        if spawned then begin
          st.pls.(i) <- st.pls.(i) + 1;
          (* SP retires into P; SP becomes fresh and empty *)
          st.pp.(i) <-
            Uf.union_into st.uf ~src:st.psp.(i) ~dst:st.pp.(i) ~dkind:kp ~dvid:0;
          st.psp.(i) <- -1
        end;
        st.panc.(i) + st.pls.(i)
      end
    in
    if st.depth >= Array.length st.pfid then begin
      let n = st.depth + 1 in
      st.pfid <- grow_stack st.pfid 0 n;
      st.panc <- grow_stack st.panc 0 n;
      st.pls <- grow_stack st.pls 0 n;
      st.pss <- grow_stack st.pss 0 n;
      st.psp <- grow_stack st.psp 0 n;
      st.pp <- grow_stack st.pp 0 n
    end;
    let i = st.depth in
    st.depth <- i + 1;
    st.pfid.(i) <- frame;
    st.panc.(i) <- anc;
    st.pls.(i) <- 0;
    if st.lazy_note then st.pss.(i) <- -1
    else begin
      Uf.insert st.uf frame;
      Uf.set_kind st.uf frame kss;
      st.pss.(i) <- frame
    end;
    st.psp.(i) <- -1;
    st.pp.(i) <- -1;
    if Obs.enabled () then begin
      Obs.bump_bag_make ();
      Obs.bump_bag_make ();
      Obs.bump_bag_make ()
    end

  let d_return st ~frame ~spawned =
    let i = st.depth - 1 in
    st.depth <- i;
    assert (st.pfid.(i) = frame);
    if i > 0 then begin
      let j = i - 1 in
      st.pp.(j) <-
        Uf.union_into st.uf ~src:st.pp.(i) ~dst:st.pp.(j) ~dkind:kp ~dvid:0;
      if spawned then
        st.pp.(j) <-
          Uf.union_into st.uf ~src:st.pss.(i) ~dst:st.pp.(j) ~dkind:kp ~dvid:0
      else if st.pls.(j) = 0 then
        st.pss.(j) <-
          Uf.union_into st.uf ~src:st.pss.(i) ~dst:st.pss.(j) ~dkind:kss ~dvid:0
      else
        st.psp.(j) <-
          Uf.union_into st.uf ~src:st.pss.(i) ~dst:st.psp.(j) ~dkind:ksp ~dvid:0
    end

  let d_sync st ~frame =
    let i = st.depth - 1 in
    assert (st.pfid.(i) = frame);
    st.pls.(i) <- 0;
    st.pp.(i) <-
      Uf.union_into st.uf ~src:st.psp.(i) ~dst:st.pp.(i) ~dkind:kp ~dvid:0;
    st.psp.(i) <- -1

  (* Lazy first-read insertion (no-op when the frame is already present,
     which is always the case under the eager discipline). *)
  let d_note st ~frame =
    if not (Uf.mem st.uf frame) then begin
      let i = st.depth - 1 in
      assert (st.pfid.(i) = frame);
      Uf.insert st.uf frame;
      st.pss.(i) <-
        Uf.union_into st.uf ~src:frame ~dst:st.pss.(i) ~dkind:kss ~dvid:0
    end

  let d_parallel st ~frame =
    if Obs.enabled () then Obs.bump_bag_find ();
    assert (Uf.mem st.uf frame);
    Uf.kind_at st.uf (Uf.find st.uf frame) = kp

  (* -------- depa backend: no bags at all --------

     Replay is depth-first, so a frame's [ls] and its SP generation are
     frozen for the whole lifetime of any one child: whether a returning
     child's SS folds into the parent's SS (pure: called with ls = 0), SP
     (called with ls > 0) or P (spawned) is already determined at the
     child's entry. Each frame therefore knows, at entry, the top [root]
     of its maximal pure chain; a recorded read is

     - KSS while that root is still on the live stack,
     - KP as soon as a spawned root has returned (its SS went straight to
       the grandparent's P),
     - KSP while a called-impure root is dead but its parent Q is live and
       has not retired its SP bag since — which we detect with a per-frame
       SP-generation counter [spe], bumped exactly when the seed unions
       SP into P (every spawned-child entry and every sync),
     - KP otherwise (Q retired SP, or Q itself returned — the implicit
       pre-return sync retires it). *)

  type pframe = {
    mutable pfid : int;
    mutable panc : int;
    mutable pls : int;
    mutable pspawned : bool;
    mutable root_id : int; (* top of this frame's maximal pure chain *)
    mutable root_depth : int;
    mutable par_spe : int; (* parent's [spe] at entry *)
    mutable spe : int; (* SP-bag generation *)
  }

  type pread = {
    mutable read_frame : int;
    mutable r_id : int; (* pure-chain root of the reading frame *)
    mutable r_depth : int;
    mutable r_spawned : bool;
    mutable q_id : int; (* the root's parent, -1 at the root frame *)
    mutable q_spe : int; (* Q's SP generation at the root's entry *)
  }

  type pstate = {
    pstack : pframe Dynarr.t;
    ppool : pframe Dynarr.t;
    rtab : pread option Dynarr.t; (* reducer id -> last-read classification *)
  }

  let p_alloc st =
    if Dynarr.is_empty st.ppool then
      {
        pfid = -1;
        panc = 0;
        pls = 0;
        pspawned = false;
        root_id = -1;
        root_depth = 0;
        par_spe = 0;
        spe = 0;
      }
    else Dynarr.pop st.ppool

  let p_enter st ~frame ~spawned =
    let depth = Dynarr.length st.pstack in
    let anc, root_id, root_depth, par_spe =
      if depth = 0 then (0, frame, 0, 0)
      else begin
        let f = Dynarr.top st.pstack in
        if spawned then begin
          f.pls <- f.pls + 1;
          f.spe <- f.spe + 1 (* seed: SP retires into P here *)
        end;
        let pure = (not spawned) && f.pls = 0 in
        ( f.panc + f.pls,
          (if pure then f.root_id else frame),
          (if pure then f.root_depth else depth),
          f.spe )
      end
    in
    let g = p_alloc st in
    g.pfid <- frame;
    g.panc <- anc;
    g.pls <- 0;
    g.pspawned <- spawned;
    g.root_id <- root_id;
    g.root_depth <- root_depth;
    g.par_spe <- par_spe;
    g.spe <- 0;
    Dynarr.push st.pstack g

  let p_return st ~frame ~spawned:_ =
    let g = Dynarr.pop st.pstack in
    assert (g.pfid = frame);
    Dynarr.push st.ppool g

  let p_sync st ~frame =
    let f = Dynarr.top st.pstack in
    assert (f.pfid = frame);
    f.pls <- 0;
    f.spe <- f.spe + 1

  let p_note_read st ~reducer ~frame =
    let u = Dynarr.top st.pstack in
    assert (u.pfid = frame);
    Dynarr.ensure st.rtab (reducer + 1) None;
    let r =
      match Dynarr.get st.rtab reducer with
      | Some r -> r
      | None ->
          let r =
            {
              read_frame = -1;
              r_id = -1;
              r_depth = 0;
              r_spawned = false;
              q_id = -1;
              q_spe = 0;
            }
          in
          Dynarr.set st.rtab reducer (Some r);
          r
    in
    let root = Dynarr.get st.pstack u.root_depth in
    assert (root.pfid = u.root_id);
    r.read_frame <- frame;
    r.r_id <- u.root_id;
    r.r_depth <- u.root_depth;
    r.r_spawned <- root.pspawned;
    r.q_id <-
      (if u.root_depth > 0 then (Dynarr.get st.pstack (u.root_depth - 1)).pfid else -1);
    r.q_spe <- root.par_spe;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1

  let p_parallel st ~reducer ~frame =
    let r =
      match
        (if reducer < Dynarr.length st.rtab then Dynarr.get st.rtab reducer else None)
      with
      | Some r -> r
      | None -> assert false
    in
    assert (r.read_frame = frame);
    if Obs.enabled () then Obs.bump_reach_query ~words:1;
    let n = Dynarr.length st.pstack in
    if r.r_depth < n && (Dynarr.get st.pstack r.r_depth).pfid = r.r_id then
      false (* root still live: the read is in a live SS chain *)
    else if r.r_spawned then true (* spawned root returned: SS went to P *)
    else begin
      (* called-impure root returned into Q's SP bag: parallel once Q has
         retired that SP generation (spawn or sync) or returned itself *)
      let qd = r.r_depth - 1 in
      not
        (qd >= 0 && qd < n
        &&
        let q = Dynarr.get st.pstack qd in
        q.pfid = r.q_id && q.spe = r.q_spe)
    end

  (* -------- dispatch -------- *)

  type t = Peer_dset of dstate | Peer_depa of pstate

  let create ?(lazy_note = false) = function
    | Dset -> Peer_dset (d_create ~lazy_note)
    | Depa ->
        Peer_depa
          { pstack = Dynarr.create (); ppool = Dynarr.create (); rtab = Dynarr.create () }

  let backend = function Peer_dset _ -> Dset | Peer_depa _ -> Depa

  let reset = function
    | Peer_dset st ->
        Uf.reset st.uf;
        st.depth <- 0
    | Peer_depa st ->
        Dynarr.iter (fun g -> Dynarr.push st.ppool g) st.pstack;
        Dynarr.clear st.pstack;
        Dynarr.clear st.rtab

  let on_frame_enter t ~frame ~spawned =
    match t with
    | Peer_dset st -> d_enter st ~frame ~spawned
    | Peer_depa st -> p_enter st ~frame ~spawned

  let on_frame_return t ~frame ~spawned =
    match t with
    | Peer_dset st -> d_return st ~frame ~spawned
    | Peer_depa st -> p_return st ~frame ~spawned

  let on_sync t ~frame =
    match t with Peer_dset st -> d_sync st ~frame | Peer_depa st -> p_sync st ~frame

  let spawn_count = function
    | Peer_dset st ->
        let i = st.depth - 1 in
        st.panc.(i) + st.pls.(i)
    | Peer_depa st ->
        let f = Dynarr.top st.pstack in
        f.panc + f.pls

  let note_read t ~reducer ~frame =
    match t with
    | Peer_dset st ->
        ignore reducer;
        d_note st ~frame
    | Peer_depa st -> p_note_read st ~reducer ~frame

  let parallel_read t ~reducer ~frame =
    match t with
    | Peer_dset st ->
        ignore reducer;
        d_parallel st ~frame
    | Peer_depa st -> p_parallel st ~reducer ~frame
end
