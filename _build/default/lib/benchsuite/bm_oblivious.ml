open Rader_runtime

(* ---------- fib via futures ---------- *)

let rec fib_plain n = if n < 2 then n else fib_plain (n - 1) + fib_plain (n - 2)

let fib_cilk n ctx =
  let rec go ctx n =
    if n < 2 then n
    else begin
      let a = Cilk.spawn ctx (fun ctx -> go ctx (n - 1)) in
      let b = Cilk.call ctx (fun ctx -> go ctx (n - 2)) in
      Cilk.sync ctx;
      Cilk.get ctx a + b
    end
  in
  Cilk.call ctx (fun ctx -> go ctx n)

let fib_futures ~n =
  {
    Bench_def.name = "fib-futures";
    descr = "Fibonacci via spawn/sync futures";
    input = string_of_int n;
    plain = (fun () -> fib_plain n);
    cilk = fib_cilk n;
  }

(* ---------- stencil ---------- *)

let step3 a b c = ((a * 31) + (b * 17) + (c * 7)) land 0xFFFFFF

let stencil_plain init rounds () =
  let n = Array.length init in
  let cur = Array.copy init in
  let next = Array.make n 0 in
  let cur = ref cur and next = ref next in
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      let a = if i = 0 then 0 else !cur.(i - 1) in
      let c = if i = n - 1 then 0 else !cur.(i + 1) in
      !next.(i) <- step3 a !cur.(i) c
    done;
    let t = !cur in
    cur := !next;
    next := t
  done;
  Array.fold_left Bench_def.fnv_int (Bench_def.fnv_string "stencil") !cur

let stencil_cilk init rounds grain ctx =
  let eng = Engine.engine ctx in
  let n = Array.length init in
  let buf0 = Rarray.init eng ~label:"stencil.a" n (fun i -> init.(i)) in
  let buf1 = Rarray.make eng ~label:"stencil.b" n 0 in
  let cur = ref buf0 and next = ref buf1 in
  for _ = 1 to rounds do
    let c = !cur and nx = !next in
    Cilk.parallel_for ~grain ctx ~lo:0 ~hi:n (fun ctx i ->
        let a = if i = 0 then 0 else Rarray.read ctx c (i - 1) in
        let m = Rarray.read ctx c i in
        let b = if i = n - 1 then 0 else Rarray.read ctx c (i + 1) in
        Rarray.write ctx nx i (step3 a m b));
    Cilk.sync ctx;
    cur := nx;
    next := c
  done;
  Array.fold_left Bench_def.fnv_int (Bench_def.fnv_string "stencil")
    (Rarray.to_array !cur)

let stencil ~seed ~n ~rounds ~grain =
  let rng = Rader_support.Rng.create seed in
  let init = Array.init n (fun _ -> Rader_support.Rng.int rng 1000) in
  {
    Bench_def.name = "stencil";
    descr = "Iterated 3-point stencil";
    input = Printf.sprintf "n=%d rounds=%d" n rounds;
    plain = stencil_plain init rounds;
    cilk = stencil_cilk init rounds grain;
  }
