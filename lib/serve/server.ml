(* The rader serve daemon.

   Thread/domain layout (no async runtime — Unix + threads + domains):

   - one accept thread owns the listener and spawns a thread per
     connection;
   - connection threads parse frames, answer Health inline, serve cache
     hits, and push Submit jobs onto a bounded admission queue (full
     queue => Retry_after, never blocking the socket);
   - a pool of worker *domains* drains the queue; each worker owns one
     engine + SP+ detector pair and recycles it per request
     (Engine.reset / Sp_plus.reset), so steady-state checking does no
     per-request arena allocation;
   - a supervisor thread joins dead workers and respawns them with fresh
     arenas under a restart budget (N restarts per rolling window);
     beyond the budget the pool degrades: queued and future requests are
     answered with Retry_after instead of silently hanging.

   Crash isolation: Engine.run_result is total over the Fault taxonomy,
   so a worker exception can only mean detector-infrastructure failure
   (or injected chaos). The in-flight request is answered with a
   structured Internal_fault, and the worker domain exits — its arenas
   are presumed corrupted — to be respawned by the supervisor. *)

module Obs = Rader_obs.Obs
module Engine = Rader_runtime.Engine
module Steal_spec = Rader_runtime.Steal_spec
module Sp_plus = Rader_core.Sp_plus
module Coverage = Rader_core.Coverage
module Diag = Rader_core.Diag
module Report = Rader_core.Report
module Demos = Rader_benchsuite.Demos
module An = Rader_analysis
module Rng = Rader_support.Rng
module Reach = Rader_reach.Reach

type addr = Unix_path of string | Tcp of string * int

let parse_addr s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "empty unix socket path" else Ok (Unix_path path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
          | _ -> Error (Printf.sprintf "bad port %S" port)))
  | _ ->
      Error
        (Printf.sprintf "cannot parse address %S (want unix:PATH or tcp:HOST:PORT)" s)

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

type chaos = { crash_rate : float; stall_rate : float; chaos_seed : int }

type config = {
  addr : addr;
  workers : int;
  queue_depth : int;
  max_deadline_s : float;
  default_deadline_s : float;
  max_events_cap : int;
  restart_budget : int;
  restart_window_s : float;
  cache_cap : int;
  retry_after_ms : int;
  drain_grace_s : float;
  chaos_cfg : chaos option;
  reach : Reach.backend;
}

let default_config ~addr =
  {
    addr;
    workers = 2;
    queue_depth = 16;
    max_deadline_s = 30.0;
    default_deadline_s = 10.0;
    max_events_cap = 20_000_000;
    restart_budget = 8;
    restart_window_s = 10.0;
    cache_cap = 256;
    retry_after_ms = 50;
    drain_grace_s = 10.0;
    chaos_cfg = None;
    reach = Reach.Dset;
  }

type conn = { fd : Unix.file_descr; cmu : Mutex.t; mutable alive : bool }

type job = {
  jid : int;  (* global admission index; seeds the per-job chaos roll *)
  req_id : int;
  sub : Proto.submit;
  jconn : conn;
  abs_deadline : float;
  eff_max_events : int;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  bound : addr;  (* cfg.addr with a real port when Tcp port 0 was asked *)
  (* admission queue *)
  qmu : Mutex.t;
  qcond : Condition.t;  (* queue non-empty or stopping *)
  queue : job Queue.t;
  mutable stopping : bool;
  mutable in_flight : int;
  mutable job_counter : int;
  (* request counters, under qmu *)
  mutable admitted : int;
  mutable answered : int;
  mutable shed : int;
  mutable faults : int;
  mutable proto_errors : int;
  mutable dropped_replies : int;
  mutable cache_served : int;
  cache : (string, Proto.verdict) Cache.t;  (* under qmu *)
  (* obs aggregation *)
  omu : Mutex.t;
  obs_totals : Obs.counters;
  (* supervision, under smu *)
  smu : Mutex.t;
  scond : Condition.t;  (* a worker died or stopping *)
  mutable dead : (int * bool) list;  (* (slot, poisoned) *)
  domains : unit Domain.t option array;
  mutable live_workers : int;
  mutable degraded : bool;
  mutable restart_times : float list;
  mutable restarts : int;
  (* connections, under conns_mu *)
  conns_mu : Mutex.t;
  mutable conns : conn list;
  mutable accept_thread : Thread.t option;
  mutable supervisor_thread : Thread.t option;
  obs_was_enabled : bool;
}

exception Chaos_crash

(* ---------- replies ---------- *)

let send_on conn ~id resp =
  Mutex.lock conn.cmu;
  let ok =
    conn.alive
    &&
    match Proto.send conn.fd (Proto.encode_response ~id resp) with
    | () -> true
    | exception Unix.Unix_error (_, _, _) ->
        conn.alive <- false;
        false
  in
  Mutex.unlock conn.cmu;
  ok

(* Reply to a Submit and keep the books. *)
let answer t conn ~id resp =
  let ok = send_on conn ~id resp in
  Mutex.lock t.qmu;
  t.answered <- t.answered + 1;
  if not ok then t.dropped_replies <- t.dropped_replies + 1;
  (match resp with
  | Proto.Retry_after _ -> t.shed <- t.shed + 1
  | Proto.Internal_fault _ -> t.faults <- t.faults + 1
  | _ -> ());
  Mutex.unlock t.qmu;
  ok

(* ---------- the verdict cache ---------- *)

(* The precedence backend cannot change a verdict, but it is part of the
   key anyway: a stale entry computed under another backend would make
   "verdicts byte-identical per backend" unfalsifiable from the outside. *)
let cache_key ~reach (s : Proto.submit) =
  Printf.sprintf "%s|%d|%s|%h|%d|%s|%h|%s|%s|%b" (Reach.show reach)
    (match s.kind with
    | Proto.Check -> 0
    | Proto.Coverage -> 1
    | Proto.Lint -> 2
    | Proto.Verify -> 3)
    s.program s.scale s.seed s.spec s.density
    (match s.max_events with None -> "-" | Some n -> string_of_int n)
    (match s.deadline_s with None -> "-" | Some d -> Printf.sprintf "%h" d)
    s.prune

(* ---------- serving one job (on a worker domain) ---------- *)

let partial_deadline_verdict ~kind ~abs_deadline =
  let f = Diag.Budget_exceeded (Diag.Deadline abs_deadline) in
  Proto.Verdict
    {
      status = Proto.Partial;
      cached = false;
      v_result = None;
      n_run = 0;
      n_specs = (match kind with Proto.Coverage | Proto.Verify -> 0 | _ -> 1);
      races = [];
      failures = [ (Diag.class_name f, Diag.to_string f) ];
    }

let serve_check (eng, det) prog ~spec ~max_events ~deadline =
  Engine.reset ~spec ~max_events ~deadline eng;
  Sp_plus.reset det;
  let verdict = Engine.run_result eng prog in
  let races = List.map Report.to_string (Sp_plus.races det) in
  match verdict with
  | Ok v ->
      Proto.Verdict
        {
          status = (if races = [] then Proto.Clean else Proto.Races);
          cached = false;
          v_result = Some v;
          n_run = 1;
          n_specs = 1;
          races;
          failures = [];
        }
  | Error f ->
      Proto.Verdict
        {
          status = Proto.Partial;
          cached = false;
          v_result = None;
          n_run = 1;
          n_specs = 1;
          races;
          failures = [ (Diag.class_name f, Diag.to_string f) ];
        }

let serve_coverage prog ~max_events ~remaining_s ~prune ~reach =
  let res =
    Coverage.exhaustive_check ~max_events ~deadline:remaining_s ~jobs:1 ~prune
      ~reach prog
  in
  let races = List.map Report.to_string res.Coverage.reports in
  let failures =
    List.map
      (fun (name, f) ->
        (Diag.class_name f, Printf.sprintf "%s: %s" name (Diag.to_string f)))
      res.Coverage.incomplete
  in
  let status =
    if not res.Coverage.complete then Proto.Partial
    else if races = [] then Proto.Clean
    else Proto.Races
  in
  Proto.Verdict
    {
      status;
      cached = false;
      v_result = None;
      n_run = res.Coverage.n_run;
      n_specs = res.Coverage.n_specs;
      races;
      failures;
    }

let serve_lint prog ~program_name =
  match An.Ir.of_program prog with
  | Error f ->
      Proto.Verdict
        {
          status = Proto.Partial;
          cached = false;
          v_result = None;
          n_run = 1;
          n_specs = 1;
          races = [];
          failures = [ (Diag.class_name f, Diag.to_string f) ];
        }
  | Ok ir ->
      let findings = An.Lint.run ~program:prog ir in
      let lines = An.Lint.baseline_lines ~program:program_name findings in
      Proto.Verdict
        {
          status = (if lines = [] then Proto.Clean else Proto.Races);
          cached = false;
          v_result = None;
          n_run = 1;
          n_specs = 1;
          races = lines;
          failures = [];
        }

let serve_verify prog ~program_name ~max_events ~remaining_s ~reach =
  match
    An.Witness.verify ~reach ~jobs:1 ~max_events ~deadline:remaining_s
      ~name:program_name prog
  with
  | Error f ->
      Proto.Verdict
        {
          status = Proto.Partial;
          cached = false;
          v_result = None;
          n_run = 1;
          n_specs = 0;
          races = [];
          failures = [ (Diag.class_name f, Diag.to_string f) ];
        }
  | Ok w ->
      let races = List.map Report.to_string w.An.Witness.reports in
      let failures =
        List.map
          (fun (name, f) ->
            (Diag.class_name f, Printf.sprintf "%s: %s" name (Diag.to_string f)))
          w.An.Witness.incomplete
      in
      let status =
        if not w.An.Witness.complete then Proto.Partial
        else if w.An.Witness.racy_locs = [] then Proto.Clean
        else Proto.Races
      in
      Proto.Verdict
        {
          status;
          cached = false;
          v_result = None;
          n_run = w.An.Witness.n_replays;
          n_specs = w.An.Witness.n_specs;
          races;
          failures;
        }

let serve_job t arena job =
  let sub = job.sub in
  (* deterministic per-job chaos roll: same seed, same jid => same fate,
     so every degradation path is replayable in tests *)
  let stalled =
    match t.cfg.chaos_cfg with
    | None -> false
    | Some c ->
        let rng = Rng.create (c.chaos_seed + (job.jid * 2_654_435_761)) in
        let crash = Rng.bernoulli rng c.crash_rate in
        let stall = Rng.bernoulli rng c.stall_rate in
        if crash then raise Chaos_crash;
        stall
  in
  let now = Unix.gettimeofday () in
  (* a stalled worker "wakes up" past the request deadline; and a request
     whose queue wait already exhausted its budget is charged the same
     way — the dispatch-time re-check mirrors Coverage's *)
  let abs_deadline = if stalled then now -. 1.0 else job.abs_deadline in
  if now > abs_deadline then partial_deadline_verdict ~kind:sub.kind ~abs_deadline
  else
    match Demos.resolve ~scale:sub.scale sub.program with
    | Error msg ->
        Proto.Proto_error { Proto.code = Proto.err_unknown_program; msg }
    | Ok prog -> (
        match sub.kind with
        | Proto.Check -> (
            match
              Steal_spec.parse ~seed:sub.seed ~density:sub.density sub.spec
            with
            | Error msg ->
                Proto.Proto_error { Proto.code = Proto.err_bad_spec; msg }
            | Ok spec ->
                serve_check arena prog ~spec ~max_events:job.eff_max_events
                  ~deadline:abs_deadline)
        | Proto.Coverage ->
            serve_coverage prog ~max_events:job.eff_max_events
              ~remaining_s:(abs_deadline -. now) ~prune:sub.prune
              ~reach:t.cfg.reach
        | Proto.Lint -> serve_lint prog ~program_name:sub.program
        | Proto.Verify ->
            serve_verify prog ~program_name:sub.program
              ~max_events:job.eff_max_events ~remaining_s:(abs_deadline -. now)
              ~reach:t.cfg.reach)

(* ---------- workers ---------- *)

let dequeue t =
  Mutex.lock t.qmu;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.qcond t.qmu
  done;
  let job =
    if Queue.is_empty t.queue then None
    else begin
      t.in_flight <- t.in_flight + 1;
      Some (Queue.pop t.queue)
    end
  in
  Mutex.unlock t.qmu;
  job

let job_done t =
  Mutex.lock t.qmu;
  t.in_flight <- t.in_flight - 1;
  Mutex.unlock t.qmu

let store_verdict t key resp =
  match resp with
  | Proto.Verdict v when v.Proto.status <> Proto.Partial ->
      Mutex.lock t.qmu;
      Cache.add t.cache key v;
      Mutex.unlock t.qmu
  | _ -> ()

let worker_body t =
  let eng = Engine.create () in
  let det = Sp_plus.attach ~reach:t.cfg.reach eng in
  let continue = ref true in
  while !continue do
    match dequeue t with
    | None -> continue := false (* stopping and the queue is drained *)
    | Some job -> (
        let snap = Obs.snapshot () in
        match serve_job t (eng, det) job with
        | resp ->
            Mutex.lock t.omu;
            Obs.add ~into:t.obs_totals (Obs.since snap);
            Mutex.unlock t.omu;
            store_verdict t (cache_key ~reach:t.cfg.reach job.sub) resp;
            ignore (answer t job.jconn ~id:job.req_id resp);
            job_done t
        | exception e ->
            (* poisoned: the arenas may be corrupted mid-update. Answer
               the in-flight request, then die and let the supervisor
               respawn a fresh arena. *)
            ignore
              (answer t job.jconn ~id:job.req_id
                 (Proto.Internal_fault (Printexc.to_string e)));
            job_done t;
            raise e)
  done

let report_death t slot ~poisoned =
  Mutex.lock t.smu;
  t.dead <- (slot, poisoned) :: t.dead;
  t.live_workers <- t.live_workers - 1;
  Condition.signal t.scond;
  Mutex.unlock t.smu

let rec worker_domain t slot () =
  match worker_body t with
  | () -> report_death t slot ~poisoned:false
  | exception _ -> report_death t slot ~poisoned:true

(* must hold t.smu *)
and spawn_worker t slot =
  t.domains.(slot) <- Some (Domain.spawn (worker_domain t slot));
  t.live_workers <- t.live_workers + 1

(* ---------- supervisor ---------- *)

(* Flush every queued job with Retry_after: used when the pool degrades
   to zero workers — requests must be answered, not stranded. *)
let shed_queue t =
  let jobs = ref [] in
  Mutex.lock t.qmu;
  Queue.iter (fun j -> jobs := j :: !jobs) t.queue;
  Queue.clear t.queue;
  Mutex.unlock t.qmu;
  List.iter
    (fun j ->
      ignore
        (answer t j.jconn ~id:j.req_id (Proto.Retry_after t.cfg.retry_after_ms)))
    (List.rev !jobs)

let supervisor t () =
  let continue = ref true in
  while !continue do
    Mutex.lock t.smu;
    while t.dead = [] && not (t.stopping && t.live_workers = 0) do
      Condition.wait t.scond t.smu
    done;
    let deads = List.rev t.dead in
    t.dead <- [];
    (* join outside smu would race a concurrent respawn of the same slot;
       joins are immediate (the domain already exited), keep the lock *)
    List.iter
      (fun (slot, poisoned) ->
        (match t.domains.(slot) with
        | Some d ->
            Domain.join d;
            t.domains.(slot) <- None
        | None -> ());
        if (not t.stopping) && poisoned then begin
          let now = Unix.gettimeofday () in
          t.restart_times <-
            now
            :: List.filter
                 (fun ts -> now -. ts <= t.cfg.restart_window_s)
                 t.restart_times;
          if List.length t.restart_times <= t.cfg.restart_budget then begin
            t.restarts <- t.restarts + 1;
            spawn_worker t slot
          end
          else if t.live_workers = 0 then t.degraded <- true
        end)
      deads;
    let stop_now = t.stopping && t.live_workers = 0 && t.dead = [] in
    let degraded = t.degraded in
    Mutex.unlock t.smu;
    if degraded && not stop_now then shed_queue t;
    if stop_now then continue := false
  done

(* ---------- health ---------- *)

let health_json t =
  Mutex.lock t.smu;
  let live = t.live_workers
  and degraded = t.degraded
  and restarts = t.restarts in
  Mutex.unlock t.smu;
  Mutex.lock t.qmu;
  let qdepth = Queue.length t.queue
  and in_flight = t.in_flight
  and stopping = t.stopping
  and admitted = t.admitted
  and answered = t.answered
  and shed = t.shed
  and faults = t.faults
  and proto_errors = t.proto_errors
  and dropped = t.dropped_replies
  and cache_served = t.cache_served
  and clen = Cache.len t.cache
  and chits = Cache.hits t.cache
  and cmisses = Cache.misses t.cache
  and cevict = Cache.evictions t.cache in
  Mutex.unlock t.qmu;
  Mutex.lock t.omu;
  let obs = Obs.to_json_string t.obs_totals in
  Mutex.unlock t.omu;
  Printf.sprintf
    "{\"pool\":{\"workers\":%d,\"live\":%d,\"degraded\":%b,\"restarts\":%d},\
     \"queue\":{\"depth\":%d,\"cap\":%d,\"in_flight\":%d},\"draining\":%b,\
     \"reach\":\"%s\",\
     \"requests\":{\"admitted\":%d,\"answered\":%d,\"shed\":%d,\"faults\":%d,\
     \"proto_errors\":%d,\"dropped_replies\":%d,\"cache_served\":%d},\
     \"cache\":{\"len\":%d,\"cap\":%d,\"hits\":%d,\"misses\":%d,\
     \"evictions\":%d},\"obs\":%s}"
    t.cfg.workers live degraded restarts qdepth t.cfg.queue_depth in_flight
    stopping
    (Reach.show t.cfg.reach)
    admitted answered shed faults proto_errors dropped cache_served clen
    t.cfg.cache_cap chits cmisses cevict obs

(* ---------- admission (connection threads) ---------- *)

let admit t conn ~id sub =
  let now = Unix.gettimeofday () in
  let budget_s =
    min
      (Option.value sub.Proto.deadline_s ~default:t.cfg.default_deadline_s)
      t.cfg.max_deadline_s
  in
  let eff_max_events =
    min
      (Option.value sub.Proto.max_events ~default:t.cfg.max_events_cap)
      t.cfg.max_events_cap
  in
  Mutex.lock t.smu;
  let degraded = t.degraded || t.live_workers = 0 in
  Mutex.unlock t.smu;
  Mutex.lock t.qmu;
  let resp =
    if t.stopping || degraded then Some (Proto.Retry_after t.cfg.retry_after_ms)
    else
      match Cache.find t.cache (cache_key ~reach:t.cfg.reach sub) with
      | Some v ->
          t.cache_served <- t.cache_served + 1;
          Some (Proto.Verdict { v with Proto.cached = true })
      | None ->
          if Queue.length t.queue >= t.cfg.queue_depth then
            Some (Proto.Retry_after t.cfg.retry_after_ms)
          else begin
            let jid = t.job_counter in
            t.job_counter <- t.job_counter + 1;
            t.admitted <- t.admitted + 1;
            Queue.push
              {
                jid;
                req_id = id;
                sub;
                jconn = conn;
                abs_deadline = now +. budget_s;
                eff_max_events;
              }
              t.queue;
            Condition.signal t.qcond;
            None
          end
  in
  Mutex.unlock t.qmu;
  match resp with Some r -> ignore (answer t conn ~id r) | None -> ()

let request_stop t =
  Mutex.lock t.qmu;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmu;
  Mutex.lock t.smu;
  Condition.broadcast t.scond;
  Mutex.unlock t.smu;
  if not already then begin
    (* wake the accept thread: closing the listener does not reliably
       interrupt a blocked accept, so poke it with a throwaway connect *)
    let domain, sockaddr =
      match t.bound with
      | Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
      | Tcp (_, p) ->
          (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, p))
    in
    match
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      (try Unix.connect fd sockaddr with _ -> ());
      Unix.close fd
    with
    | () -> ()
    | exception _ -> ()
  end

let conn_loop t conn () =
  let continue = ref true in
  while !continue do
    match Proto.recv conn.fd with
    | exception _ ->
        conn.alive <- false;
        continue := false
    | Error `Eof -> continue := false
    | Error (`Err e) ->
        (* framing is broken: answer once, then close — resynchronizing
           an unframed byte stream is guesswork *)
        Mutex.lock t.qmu;
        t.proto_errors <- t.proto_errors + 1;
        Mutex.unlock t.qmu;
        ignore (send_on conn ~id:0 (Proto.Proto_error e));
        continue := false
    | Ok body -> (
        match Proto.decode_request body with
        | Error e ->
            (* the frame boundary held, only the body is malformed: the
               connection stays usable *)
            Mutex.lock t.qmu;
            t.proto_errors <- t.proto_errors + 1;
            Mutex.unlock t.qmu;
            ignore (send_on conn ~id:0 (Proto.Proto_error e))
        | Ok (id, Proto.Health) ->
            ignore (send_on conn ~id (Proto.Health_report (health_json t)))
        | Ok (id, Proto.Shutdown) ->
            ignore (send_on conn ~id Proto.Bye);
            request_stop t
        | Ok (id, Proto.Submit sub) -> admit t conn ~id sub)
  done;
  Mutex.lock conn.cmu;
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error (_, _, _) -> ());
  Mutex.unlock conn.cmu;
  Mutex.lock t.conns_mu;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.conns_mu

let accept_loop t () =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listener with
    | fd, _ ->
        Mutex.lock t.qmu;
        let stopping = t.stopping in
        Mutex.unlock t.qmu;
        if stopping then begin
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          continue := false
        end
        else begin
          let conn = { fd; cmu = Mutex.create (); alive = true } in
          Mutex.lock t.conns_mu;
          t.conns <- conn :: t.conns;
          Mutex.unlock t.conns_mu;
          ignore (Thread.create (conn_loop t conn) ())
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        Mutex.lock t.qmu;
        let stopping = t.stopping in
        Mutex.unlock t.qmu;
        if stopping then continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* ---------- lifecycle ---------- *)

let bind_listener = function
  | Unix_path path ->
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_path path)
  | Tcp (host, port) ->
      let ip =
        if host = "" || host = "localhost" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (ip, port));
      Unix.listen fd 64;
      let bound_port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      (fd, Tcp (host, bound_port))

let start cfg =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.queue_depth < 1 then
    invalid_arg "Server.start: queue_depth must be >= 1";
  (* a client that disconnects mid-reply must not SIGPIPE the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener, bound = bind_listener cfg.addr in
  let obs_was_enabled = Obs.enabled () in
  Obs.set_enabled true;
  let t =
    {
      cfg;
      listener;
      bound;
      qmu = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      in_flight = 0;
      job_counter = 0;
      admitted = 0;
      answered = 0;
      shed = 0;
      faults = 0;
      proto_errors = 0;
      dropped_replies = 0;
      cache_served = 0;
      cache = Cache.create ~cap:cfg.cache_cap;
      omu = Mutex.create ();
      obs_totals = Obs.zero ();
      smu = Mutex.create ();
      scond = Condition.create ();
      dead = [];
      domains = Array.make cfg.workers None;
      live_workers = 0;
      degraded = false;
      restart_times = [];
      restarts = 0;
      conns_mu = Mutex.create ();
      conns = [];
      accept_thread = None;
      supervisor_thread = None;
      obs_was_enabled;
    }
  in
  Mutex.lock t.smu;
  for slot = 0 to cfg.workers - 1 do
    spawn_worker t slot
  done;
  Mutex.unlock t.smu;
  t.supervisor_thread <- Some (Thread.create (supervisor t) ());
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let bound_addr t = t.bound

let install_sigterm t =
  let handle = Sys.Signal_handle (fun _ -> request_stop t) in
  Sys.set_signal Sys.sigterm handle;
  Sys.set_signal Sys.sigint handle

(* Wait until the queue is empty and nothing is in flight, or the grace
   period expires. Polling at 10 ms keeps this dependency-free. *)
let drain_wait t =
  let deadline = Unix.gettimeofday () +. t.cfg.drain_grace_s in
  let rec loop () =
    Mutex.lock t.qmu;
    let quiet = Queue.is_empty t.queue && t.in_flight = 0 in
    Mutex.unlock t.qmu;
    if (not quiet) && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.01;
      loop ()
    end
  in
  loop ()

let wait t =
  (* block until a stop is requested *)
  let rec park () =
    Mutex.lock t.qmu;
    let stopping = t.stopping in
    Mutex.unlock t.qmu;
    if not stopping then begin
      Thread.delay 0.05;
      park ()
    end
  in
  park ();
  (* graceful drain: admission is already shut (conn threads shed on
     [stopping]); finish queued and in-flight work within the grace
     period — each request's deadline is capped, so this terminates *)
  drain_wait t;
  (* any job still queued after a blown grace period gets a shed reply
     rather than silence (each pop is exclusive, so this cannot
     double-answer a job a worker grabs concurrently) *)
  shed_queue t;
  (* release the workers and the supervisor *)
  Mutex.lock t.qmu;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmu;
  (match t.supervisor_thread with Some th -> Thread.join th | None -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listener with Unix.Unix_error (_, _, _) -> ());
  (match t.bound with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ());
  (* drop live connections so their threads unblock and exit *)
  Mutex.lock t.conns_mu;
  let conns = t.conns in
  Mutex.unlock t.conns_mu;
  List.iter
    (fun c ->
      Mutex.lock c.cmu;
      c.alive <- false;
      (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error (_, _, _) -> ());
      Mutex.unlock c.cmu)
    conns;
  Obs.set_enabled t.obs_was_enabled;
  (* the final flush: cumulative request counters and detector totals *)
  health_json t

let stop t =
  request_stop t;
  wait t
