type 'a t = { loc : int; mutable v : 'a }

let make eng ?(label = "cell") v =
  { loc = Engine.alloc_locs eng ~label 1; v }

let make_in ctx ?label v = make (Engine.engine ctx) ?label v

let read ctx c =
  Engine.emit_read ctx c.loc;
  c.v

let write ctx c v =
  Engine.emit_write ctx c.loc;
  c.v <- v

let peek c = c.v
let poke c v = c.v <- v
let loc c = c.loc
