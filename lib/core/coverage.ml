module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Steal_spec = Rader_runtime.Steal_spec
module Obs = Rader_obs.Obs

type profile = { k : int; d : int; n_spawns : int }

(* Count continuations per sync block and spawn depth with a tiny tool:
   each spawned-child return in a frame is one continuation; sync resets
   the frame's count. Contained: if the program crashes mid-profile, the
   maxima observed over the completed prefix are returned together with
   the diagnostic. *)
let profile_with_failure program =
  let max_k = ref 0 in
  let max_d = ref 0 in
  let conts = Hashtbl.create 64 in (* frame -> conts in current block *)
  let depth = Hashtbl.create 64 in
  let tool =
    {
      Tool.null with
      Tool.on_frame_enter =
        (fun ~frame ~parent ~spawned:_ ~kind:_ ->
          let d =
            if parent < 0 then 0
            else
              (* an unexpected parent (e.g. after a contained crash left a
                 gap in the enter/return pairing) profiles as depth 0
                 rather than raising Not_found mid-profile *)
              match Hashtbl.find_opt depth parent with
              | Some pd -> pd + 1
              | None -> 0
          in
          Hashtbl.replace depth frame d;
          if d > !max_d then max_d := d;
          Hashtbl.replace conts frame 0);
      on_frame_return =
        (fun ~frame ~parent ~spawned ~kind:_ ->
          Hashtbl.remove conts frame;
          Hashtbl.remove depth frame;
          if spawned && parent >= 0 then begin
            let c =
              (match Hashtbl.find_opt conts parent with Some c -> c | None -> 0)
              + 1
            in
            Hashtbl.replace conts parent c;
            if c > !max_k then max_k := c
          end);
      on_sync = (fun ~frame -> Hashtbl.replace conts frame 0);
    }
  in
  let eng = Engine.create ~tool () in
  let failure =
    match Engine.run_result eng program with Ok _ -> None | Error f -> Some f
  in
  let stats = Engine.stats eng in
  ({ k = !max_k; d = !max_d; n_spawns = stats.Engine.n_spawns }, failure)

let profile program = fst (profile_with_failure program)

let specs_for_updates ~k ~d =
  let by_position =
    List.init k (fun i ->
        Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ i + 1 ])
  in
  let by_depth = List.init (d + 1) (fun dd -> Steal_spec.at_depth dd) in
  by_position @ by_depth

let specs_for_reductions ~k =
  let specs = ref [] in
  let push s = specs := s :: !specs in
  for a = 1 to k do
    (* single steal: elicits ⟨0..a⟩ ⊗ ⟨a..end⟩ *)
    push (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_at_sync [ a ]);
    for b = a + 1 to k do
      (* right fold: elicits ⟨a..b⟩ ⊗ ⟨b..end⟩ then ⟨0..a⟩ ⊗ rest;
         left (eager) fold: elicits ⟨0..a⟩ ⊗ ⟨a..b⟩ then rest ⊗ ⟨b..end⟩ *)
      push (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_at_sync [ a; b ]);
      push (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ a; b ]);
      for c = b + 1 to k do
        (* middle pair first: elicits ⟨a..b⟩ ⊗ ⟨b..c⟩ (Theorem 7) *)
        push
          (Steal_spec.with_name
             (Steal_spec.at_local_indices
                ~policy:(Steal_spec.Reduce_schedule (fun ord -> if ord = 3 then 1 else 0))
                [ a; b; c ])
             (Printf.sprintf "triple(%d,%d,%d)" a b c))
      done
    done
  done;
  List.rev !specs

let all_specs ~k ~d =
  (Steal_spec.none :: specs_for_updates ~k ~d) @ specs_for_reductions ~k

type span = {
  span_spec : string;
  span_worker : int;
  span_t0_us : float;
  span_t1_us : float;
}

type obs_summary = {
  obs_counters : Obs.counters;
  obs_spans : span list;
  obs_phases : (string * float) list;
}

type result = {
  prof : profile;
  n_specs : int;
  n_run : int;
  racy_locs : int list;
  reports : Report.t list;
  per_spec : (Steal_spec.t * int list) list;
  incomplete : (string * Diag.failure) list;
  complete : bool;
  obs : obs_summary option;
}

let take n xs =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go n [] xs

(* What one spec replay produced. [Not_run] = the sweep-wide deadline
   expired before the spec was dispatched. *)
type spec_outcome =
  | Ran of {
      locs : int list;
      races : Report.t list;
      failure : Diag.failure option;
      (* observability (with_obs only): this replay's deterministic
         counter delta, plus wall-clock span coordinates for the trace *)
      counters : Obs.counters option;
      worker : int;
      t0_us : float;
      t1_us : float;
    }
  | Not_run

let exhaustive_check ?max_specs ?max_events ?deadline ?(jobs = 1)
    ?(with_obs = false) program =
  let abs_deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline in
  let past_deadline () =
    match abs_deadline with
    | Some dl -> Unix.gettimeofday () > dl
    | None -> false
  in
  let obs_was = Obs.enabled () in
  if with_obs then Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled obs_was) @@ fun () ->
  let phase_profile = Obs.phase "profile" in
  let phase_replay = Obs.phase "replay" in
  let phase_merge = Obs.phase "merge" in
  let prof_snap = if with_obs then Some (Obs.snapshot ()) else None in
  let prof, prof_failure =
    Obs.timed phase_profile (fun () -> profile_with_failure program)
  in
  let prof_counters = Option.map Obs.since prof_snap in
  let specs = all_specs ~k:prof.k ~d:prof.d in
  let n_specs = List.length specs in
  let specs, dropped =
    match max_specs with
    | Some m when m < n_specs -> take m specs
    | _ -> (specs, [])
  in
  let specs = Array.of_list specs in
  (* Fan the replays out across domains. Each worker owns one engine +
     detector pair and recycles it per spec (Engine.reset / Sp_plus.reset)
     instead of reallocating; each replay's verdicts are returned as a
     self-contained outcome, so workers never share mutable state. Under
     [with_obs] each replay also carries its own counter delta — replays
     are deterministic, so the deltas (and their spec-order sum) are
     independent of which worker ran them. *)
  let outcomes, _ =
    Obs.timed phase_replay (fun () ->
        Parallel_sweep.map ~jobs ~stop:past_deadline
          ~init:(fun wid ->
            let eng = Engine.create () in
            let det = Sp_plus.attach eng in
            (wid, eng, det))
          ~task:(fun (wid, eng, det) i ->
            Engine.reset ~spec:specs.(i) ?max_events ?deadline:abs_deadline eng;
            Sp_plus.reset det;
            let t0_us = if with_obs then Obs.now_us () else 0.0 in
            let snap = if with_obs then Some (Obs.snapshot ()) else None in
            let failure =
              match Engine.run_result eng program with
              | Ok _ -> None
              | Error f -> Some f
            in
            (* the detector's verdicts over the completed prefix still count *)
            Ran
              {
                locs = Sp_plus.racy_locs det;
                races = Sp_plus.races det;
                failure;
                counters = Option.map Obs.since snap;
                worker = wid;
                t0_us;
                t1_us = (if with_obs then Obs.now_us () else 0.0);
              })
          ~skipped:(fun _ -> Not_run)
          (Array.length specs))
  in
  (* Merge in spec order: the fold below is exactly the loop body of the
     serial sweep, so the result — report order, dedup decisions,
     [incomplete] order — is identical no matter how many domains ran. *)
  let seen = Hashtbl.create 32 in
  let reports = ref [] in
  let per_spec = ref [] in
  let incomplete =
    ref (match prof_failure with Some f -> [ ("profile", f) ] | None -> [])
  in
  let n_run = ref 0 in
  let merged = Option.map Obs.copy prof_counters in
  let spans = ref [] in
  Obs.timed phase_merge (fun () ->
      Array.iteri
        (fun i outcome ->
          let spec = specs.(i) in
          match outcome with
          | Not_run ->
              (* out of time: charge the remaining specs to the deadline without
                 running them, so the caller sees exactly what was not covered *)
              incomplete :=
                ( spec.Steal_spec.name,
                  Diag.Budget_exceeded (Diag.Deadline (Option.get abs_deadline)) )
                :: !incomplete
          | Ran { locs; races; failure; counters; worker; t0_us; t1_us } ->
              incr n_run;
              (match failure with
              | None -> ()
              | Some f -> incomplete := (spec.Steal_spec.name, f) :: !incomplete);
              (match (merged, counters) with
              | Some into, Some c ->
                  Obs.add ~into c;
                  spans :=
                    {
                      span_spec = spec.Steal_spec.name;
                      span_worker = worker;
                      span_t0_us = t0_us;
                      span_t1_us = t1_us;
                    }
                    :: !spans
              | _ -> ());
              per_spec := (spec, locs) :: !per_spec;
              List.iter
                (fun r ->
                  if not (Hashtbl.mem seen r.Report.subject) then begin
                    Hashtbl.replace seen r.Report.subject ();
                    reports := r :: !reports
                  end)
                races)
        outcomes);
  let m = Option.value max_specs ~default:0 in
  List.iter
    (fun (spec : Steal_spec.t) ->
      incomplete :=
        (spec.Steal_spec.name, Diag.Budget_exceeded (Diag.Max_specs m))
        :: !incomplete)
    dropped;
  let incomplete = List.rev !incomplete in
  let obs =
    Option.map
      (fun obs_counters ->
        {
          obs_counters;
          obs_spans = List.rev !spans;
          obs_phases =
            List.map
              (fun p -> (Obs.phase_name p, Obs.phase_seconds p))
              [ phase_profile; phase_replay; phase_merge ];
        })
      merged
  in
  {
    prof;
    n_specs;
    n_run = !n_run;
    racy_locs = List.sort_uniq compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []);
    reports = List.rev !reports;
    per_spec = List.rev !per_spec;
    incomplete;
    complete = incomplete = [];
    obs;
  }

let witness_spec res loc =
  List.find_map
    (fun (spec, locs) -> if List.mem loc locs then Some spec else None)
    res.per_spec
