lib/runtime/cilk.ml: Engine
