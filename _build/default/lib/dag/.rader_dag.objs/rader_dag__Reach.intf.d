lib/dag/reach.mli: Dag Rader_support
