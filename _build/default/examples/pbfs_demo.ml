(* PBFS: breadth-first search with a Bag reducer (Leiserson & Schardl),
   one of the paper's benchmarks, run as an application: build a graph,
   BFS it in parallel, verify against serial BFS, and certify the program
   race-free with both detectors.

   Run with: dune exec examples/pbfs_demo.exe *)

open Rader_runtime
open Rader_core
open Rader_benchsuite

let () =
  print_endline "== PBFS with a Bag reducer ==";
  let n = 20000 and m = 120000 in
  let bench = Bm_pbfs.bench ~seed:1 ~n ~m ~grain:16 in
  Printf.printf "graph: %s\n" bench.Bench_def.input;

  (* serial reference *)
  let reference, t_serial = Rader_support.Stats.time_it bench.Bench_def.plain in

  (* parallel (DSL) version, serial schedule *)
  let (value, eng), t_cilk =
    Rader_support.Stats.time_it (fun () -> Cilk.exec bench.Bench_def.cilk)
  in
  Printf.printf "serial BFS checksum %d in %.3fs; PBFS checksum %d in %.3fs: %s\n"
    reference t_serial value t_cilk
    (if reference = value then "MATCH" else "MISMATCH");
  let stats = Engine.stats eng in
  Printf.printf "PBFS execution: %d frames, %d spawns, %d instrumented accesses\n"
    stats.Engine.n_frames stats.Engine.n_spawns
    (stats.Engine.n_reads + stats.Engine.n_writes);

  (* same computation under a schedule with steals: reducer semantics keep
     the answer identical while views are created and reduced *)
  let value_stolen, eng2 =
    Cilk.exec ~spec:(Steal_spec.random ~seed:5 ~density:0.2 ()) bench.Bench_def.cilk
  in
  let s2 = Engine.stats eng2 in
  Printf.printf
    "under a random schedule: %d steals, %d reduce operations, checksum %s\n"
    s2.Engine.n_steals s2.Engine.n_reduce_calls
    (if value_stolen = reference then "unchanged" else "CHANGED (bug!)");

  (* certify with the detectors *)
  let eng3 = Engine.create () in
  let ps = Peer_set.attach eng3 in
  ignore (Engine.run eng3 bench.Bench_def.cilk);
  Printf.printf "Peer-Set: %d view-read races\n" (List.length (Peer_set.races ps));
  let eng4 = Engine.create ~spec:(Steal_spec.at_local_indices [ 1; 2; 3 ]) () in
  let sp = Sp_plus.attach eng4 in
  ignore (Engine.run eng4 bench.Bench_def.cilk);
  Printf.printf "SP+ (steals {1,2,3}): %d determinacy races\n"
    (List.length (Sp_plus.races sp))
