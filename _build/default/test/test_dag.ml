(* Tests for the dag model, reachability, peer sets and SP parse trees —
   anchored on the paper's Figure 2 running example. *)

open Rader_dag
module Bitset = Rader_support.Bitset

let checkb = Alcotest.(check bool)

(* The 16-strand computation of paper Fig. 2 (ids here are 0-based, so
   paper strand k is id k-1):

     a: 1, 4, 10, 14, 15(sync), 16      b: 2, 3       c: 5, 8, 9(sync)
     d: 6, 7                            e: 11         f: 12, 13

   a spawns b at 1 and c at 4, calls e at 10; f is spawned on return from
   e (the intervening strand of a is empty and not materialized); c spawns
   d at 5. Everything joins at a's sync strand 15; 16 follows the sync. *)
let fig2 () =
  let dag = Dag.create () in
  let frames = [| 0; 1; 1; 0; 2; 3; 3; 2; 2; 0; 4; 5; 5; 0; 0; 0 |] in
  Array.iteri
    (fun i f ->
      ignore
        (Dag.add_strand dag ~frame:f ~kind:Dag.User ~view:0
           ~label:(string_of_int (i + 1))))
    frames;
  List.iter
    (fun (u, v) -> Dag.add_edge dag (u - 1) (v - 1))
    [
      (1, 2); (2, 3); (1, 4); (4, 5); (5, 6); (6, 7); (5, 8); (7, 9); (8, 9);
      (4, 10); (10, 11); (11, 12); (12, 13); (11, 14); (3, 15); (9, 15);
      (13, 15); (14, 15); (15, 16);
    ];
  dag

(* Paper strand number -> our id. *)
let s k = k - 1

let test_dag_construction () =
  let dag = fig2 () in
  Alcotest.(check int) "16 strands" 16 (Dag.n_strands dag);
  Alcotest.(check (list int)) "preds of sync" [ s 3; s 9; s 13; s 14 ]
    (List.sort compare (Dag.preds dag (s 15)));
  Alcotest.(check (list int)) "succs of 4" [ s 5; s 10 ]
    (List.sort compare (Dag.succs dag (s 4)))

let test_dag_edge_order_enforced () =
  let dag = Dag.create () in
  let a = Dag.add_strand dag ~frame:0 ~kind:Dag.User ~view:0 ~label:"a" in
  let b = Dag.add_strand dag ~frame:0 ~kind:Dag.User ~view:0 ~label:"b" in
  Alcotest.check_raises "backward edge"
    (Invalid_argument "Dag.add_edge: edges must follow serial order (u < v)")
    (fun () -> Dag.add_edge dag b a);
  Alcotest.check_raises "self edge"
    (Invalid_argument "Dag.add_edge: edges must follow serial order (u < v)")
    (fun () -> Dag.add_edge dag a a)

let test_reach_fig2 () =
  let dag = fig2 () in
  let r = Reach.compute dag in
  (* Paper §3: "strands 4 and 9 are logically in series, because strand 4
     precedes strand 9, while strands 9 and 10 are logically in parallel". *)
  checkb "4 < 9" true (Reach.precedes r (s 4) (s 9));
  checkb "9 || 10" true (Reach.parallel r (s 9) (s 10));
  checkb "strict" false (Reach.precedes r (s 4) (s 4));
  checkb "2 || 5" true (Reach.parallel r (s 2) (s 5));
  checkb "6 < 9" true (Reach.precedes r (s 6) (s 9));
  checkb "6 || 8" true (Reach.parallel r (s 6) (s 8));
  checkb "everything < 16" true
    (List.for_all (fun k -> Reach.precedes r (s k) (s 16)) [ 1; 2; 3; 4; 5; 9; 14; 15 ]);
  checkb "1 < everything" true
    (List.for_all (fun k -> Reach.precedes r (s 1) (s k)) [ 2; 5; 11; 13; 16 ])

let test_reach_desc_anc_consistency () =
  let dag = fig2 () in
  let r = Reach.compute dag in
  for u = 0 to 15 do
    for v = 0 to 15 do
      checkb "desc/anc transpose" (Bitset.mem (Reach.descendants r u) v)
        (Bitset.mem (Reach.ancestors r v) u)
    done
  done

let test_peers_fig2 () =
  let dag = fig2 () in
  let p = Peers.compute dag in
  (* Paper §3: "the view of a reducer at strand 9 is guaranteed to reflect
     the updates since strand 5, because strands 5 and 9 have the same
     peers". *)
  checkb "peers(5) = peers(9)" true (Peers.equal_peers p (s 5) (s 9));
  (* "strands 10 and 14 do not share the same peers — strands 12 and 13
     are in the peer set of strand 14, but not that of strand 10". *)
  checkb "peers(10) <> peers(14)" false (Peers.equal_peers p (s 10) (s 14));
  checkb "12 in peers(14)" true (Bitset.mem (Peers.peers p (s 14)) (s 12));
  checkb "13 in peers(14)" true (Bitset.mem (Peers.peers p (s 14)) (s 13));
  checkb "12 not in peers(10)" false (Bitset.mem (Peers.peers p (s 10)) (s 12));
  checkb "13 not in peers(10)" false (Bitset.mem (Peers.peers p (s 10)) (s 13));
  (* §4: "strand 11 has a distinct peer set from strand 1, but the same
     peer set as strand 10, the caller of e". *)
  checkb "peers(11) = peers(10)" true (Peers.equal_peers p (s 11) (s 10));
  checkb "peers(11) <> peers(1)" false (Peers.equal_peers p (s 11) (s 1));
  (* §3 example: strands 1 and 9 do not share the same peer set. *)
  checkb "peers(1) <> peers(9)" false (Peers.equal_peers p (s 1) (s 9));
  Alcotest.(check int) "peers(10) size" 7 (Peers.n_peers p (s 10))

(* The canonical SP parse tree of Fig. 4, built with the Sp_tree
   constructors, must agree with the dag-based oracles. *)
let fig4_tree () =
  let open Sp_tree in
  let b = block_tree [ Strand (s 2); Strand (s 3) ] in
  let d = block_tree [ Strand (s 6); Strand (s 7) ] in
  let c =
    function_tree
      [ block_tree [ Strand (s 5); Spawned d; Strand (s 8) ]; Leaf (s 9) ]
  in
  let e = Leaf (s 11) in
  let f = block_tree [ Strand (s 12); Strand (s 13) ] in
  function_tree
    [
      block_tree
        [
          Strand (s 1);
          Spawned b;
          Strand (s 4);
          Spawned c;
          Strand (s 10);
          Called e;
          Spawned f;
          Strand (s 14);
        ];
      block_tree [ Strand (s 15); Strand (s 16) ];
    ]

let test_sp_tree_fig4_structure () =
  let t = fig4_tree () in
  Alcotest.(check (list int)) "leaves in serial order"
    (List.init 16 Fun.id)
    (Sp_tree.leaves t)

let test_sp_tree_fig4_queries () =
  let ix = Sp_tree.index (fig4_tree ()) in
  checkb "9 || 10 via LCA" true (Sp_tree.parallel ix (s 9) (s 10));
  checkb "4 not || 9" false (Sp_tree.parallel ix (s 4) (s 9));
  checkb "all-S 5..9" true (Sp_tree.all_s_path ix (s 5) (s 9));
  checkb "all-S 10..11" true (Sp_tree.all_s_path ix (s 10) (s 11));
  checkb "not all-S 10..14" false (Sp_tree.all_s_path ix (s 10) (s 14));
  checkb "not all-S 1..9" false (Sp_tree.all_s_path ix (s 1) (s 9));
  checkb "reflexive" true (Sp_tree.all_s_path ix (s 7) (s 7))

let test_sp_tree_fig4_matches_dag () =
  (* Lemma 2 and Feng–Leiserson Lemma 4, checked exhaustively on Fig. 2:
     tree queries agree with the explicit dag's peers/parallelism. *)
  let ix = Sp_tree.index (fig4_tree ()) in
  let dag = fig2 () in
  let reach = Reach.compute dag in
  let peers = Peers.compute dag in
  for u = 0 to 15 do
    for v = 0 to 15 do
      if u <> v then begin
        checkb
          (Printf.sprintf "parallel %d,%d" (u + 1) (v + 1))
          (Reach.parallel reach u v) (Sp_tree.parallel ix u v);
        checkb
          (Printf.sprintf "peer-equal %d,%d" (u + 1) (v + 1))
          (Peers.equal_peers peers u v)
          (Sp_tree.all_s_path ix u v)
      end
    done
  done

let test_sp_tree_to_dag_roundtrip () =
  let tree = fig4_tree () in
  let dag, mapping = Sp_tree.to_dag tree in
  Alcotest.(check int) "strand count" 16 (Dag.n_strands dag);
  let reach = Reach.compute dag in
  let ix = Sp_tree.index tree in
  for u = 0 to 15 do
    for v = 0 to 15 do
      if u <> v then
        checkb "roundtrip parallelism"
          (Sp_tree.parallel ix u v)
          (Reach.parallel reach (mapping u) (mapping v))
    done
  done

let test_sp_tree_errors () =
  Alcotest.check_raises "empty block" (Invalid_argument "Sp_tree.block_tree: empty sync block")
    (fun () -> ignore (Sp_tree.block_tree []));
  Alcotest.check_raises "empty function"
    (Invalid_argument "Sp_tree.function_tree: no sync blocks") (fun () ->
      ignore (Sp_tree.function_tree []));
  Alcotest.check_raises "duplicate leaf"
    (Invalid_argument "Sp_tree.index: duplicate leaf strand id") (fun () ->
      ignore (Sp_tree.index (Sp_tree.S (Leaf 1, Leaf 1))))

let test_dot_output () =
  let dag = fig2 () in
  let dot = Dag.to_dot dag in
  checkb "nonempty" true (String.length dot > 100);
  checkb "has digraph" true (String.sub dot 0 7 = "digraph")

(* Random SP trees: tree-based queries must agree with the dag oracle. *)
type shape = SLeaf | SNode of bool * shape * shape

let gen_sp_tree =
  let open QCheck2.Gen in
  let rec shape depth =
    if depth = 0 then return SLeaf
    else
      frequency
        [
          ( 2,
            let* l = shape (depth - 1) in
            let* r = shape (depth - 1) in
            let* p = bool in
            return (SNode (p, l, r)) );
          (1, return SLeaf);
        ]
  in
  let* d = int_range 1 5 in
  let* sh = shape d in
  (* number leaves left-to-right after generation so ids are unique *)
  let counter = ref 0 in
  let rec build = function
    | SLeaf ->
        let id = !counter in
        incr counter;
        Sp_tree.Leaf id
    | SNode (p, l, r) ->
        let lt = build l in
        let rt = build r in
        if p then Sp_tree.P (lt, rt) else Sp_tree.S (lt, rt)
  in
  return (build sh)

let prop_sp_tree_vs_dag =
  QCheck2.Test.make ~name:"SP tree queries agree with dag oracle (Lemmas 2 & 4)"
    ~count:300 gen_sp_tree (fun tree ->
      let ix = Sp_tree.index tree in
      let dag, mapping = Sp_tree.to_dag tree in
      let reach = Reach.compute dag in
      let peers = Peers.compute dag in
      let ls = Sp_tree.leaves tree in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              u = v
              || Sp_tree.parallel ix u v = Reach.parallel reach (mapping u) (mapping v)
                 && Sp_tree.all_s_path ix u v
                    = Peers.equal_peers peers (mapping u) (mapping v))
            ls)
        ls)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dag"
    [
      ( "dag",
        [
          Alcotest.test_case "fig2 construction" `Quick test_dag_construction;
          Alcotest.test_case "edge order enforced" `Quick test_dag_edge_order_enforced;
          Alcotest.test_case "dot output" `Quick test_dot_output;
        ] );
      ( "reach",
        [
          Alcotest.test_case "fig2 relations" `Quick test_reach_fig2;
          Alcotest.test_case "desc/anc transpose" `Quick test_reach_desc_anc_consistency;
        ] );
      ("peers", [ Alcotest.test_case "fig2 peer facts" `Quick test_peers_fig2 ]);
      ( "sp_tree",
        [
          Alcotest.test_case "fig4 structure" `Quick test_sp_tree_fig4_structure;
          Alcotest.test_case "fig4 queries" `Quick test_sp_tree_fig4_queries;
          Alcotest.test_case "fig4 vs dag exhaustive" `Quick test_sp_tree_fig4_matches_dag;
          Alcotest.test_case "to_dag roundtrip" `Quick test_sp_tree_to_dag_roundtrip;
          Alcotest.test_case "errors" `Quick test_sp_tree_errors;
        ] );
      qsuite "properties" [ prop_sp_tree_vs_dag ];
    ]
