(** Race reports produced by the detectors. *)

type race_kind =
  | View_read_race
      (** two reducer-reads with different peer sets (paper §3); [subject]
          is the reducer id *)
  | Determinacy_race
      (** a write logically parallel with another access to the same
          location (paper §5); [subject] is the location id *)

(** What each endpoint of the race was doing. *)
type access_kind = Read | Write | Reducer_read

type t = {
  kind : race_kind;
  subject : int;  (** location id or reducer id *)
  subject_label : string;
  first_frame : int;  (** frame recorded in the shadow space *)
  first_access : access_kind;
  second_frame : int;  (** frame performing the access that exposed the race *)
  second_access : access_kind;
  second_strand : int;  (** strand executing when the race was detected *)
  second_view_aware : bool;
  detail : string;
}

(** [to_string r] is a one-line human-readable description. *)
val to_string : t -> string

(** [access_str k] — ["read"] / ["write"] / ["reducer-read"]. *)
val access_str : access_kind -> string

(** A per-subject deduplicating collector: like the paper's Rader, each
    racy location/reducer is reported once (the first time). *)
type collector

val collector : unit -> collector

(** [report c r] records [r] unless a race on the same [(kind, subject)]
    was already recorded. *)
val report : collector -> t -> unit

(** [clear c] forgets everything recorded, returning the collector to a
    freshly created state (arena reuse across detector runs). *)
val clear : collector -> unit

(** [races c] is everything recorded, in detection order. *)
val races : collector -> t list

(** [count c] is [List.length (races c)] without the list. *)
val count : collector -> int

(** [racy_subjects c] is the sorted list of distinct racy subject ids. *)
val racy_subjects : collector -> int list
