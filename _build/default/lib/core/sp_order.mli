(** The SP-order algorithm [Bender, Fineman, Gilbert & Leiserson, SPAA'04]
    — serial variant, as a second baseline determinacy-race detector.

    The paper under reproduction remarks (§1, §9) that, to the authors'
    knowledge, no implementation of SP-order exists; this module provides
    one for the serial setting. Instead of disjoint-set bags, SP-order
    maintains two total orders over strands in order-maintenance lists:

    - the {e English} order: the serial depth-first order that visits a
      spawned child before the continuation (identical to execution
      order, so English comparisons against past accesses are implied);
    - the {e Hebrew} order: the depth-first order that visits the
      continuation before the spawned child.

    Two strands satisfy [u ≺ v] iff [u] precedes [v] in {e both} orders;
    they are logically parallel iff the orders disagree. Since the shadow
    entry is always serially (hence English-) earlier than the current
    strand, an access races with the recorded one iff the current strand
    is Hebrew-before it. Shadow update follows the same
    pseudotransitivity discipline as SP-bags.

    Like SP-bags, SP-order is {e not} reducer-aware: run it on
    reducer-free programs (or as the "what existing detectors do"
    comparison on programs with reducers). Checks are O(1); maintaining
    the orders is amortized polylogarithmic per strand. *)

type t

val create : Rader_runtime.Engine.t -> t
val tool : t -> Rader_runtime.Tool.t
val attach : Rader_runtime.Engine.t -> t
val races : t -> Report.t list
val found : t -> bool
