type 'a node = { value : 'a; next : 'a node option Cell.t }

type 'a t = { head : 'a node option Cell.t; tail : 'a node option Cell.t }

let empty ctx =
  {
    head = Cell.make_in ctx ~label:"mylist.head" None;
    tail = Cell.make_in ctx ~label:"mylist.tail" None;
  }

let insert ctx l x =
  let n = { value = x; next = Cell.make_in ctx ~label:"mylist.next" None } in
  (match Cell.read ctx l.tail with
  | None -> Cell.write ctx l.head (Some n)
  | Some t -> Cell.write ctx t.next (Some n));
  Cell.write ctx l.tail (Some n)

let concat ctx l r =
  (match Cell.read ctx r.head with
  | None -> ()
  | Some rh ->
      (match Cell.read ctx l.tail with
      | None -> Cell.write ctx l.head (Some rh)
      | Some lt -> Cell.write ctx lt.next (Some rh));
      Cell.write ctx l.tail (Cell.read ctx r.tail));
  l

let shallow_copy ctx l =
  {
    head = Cell.make_in ctx ~label:"mylist.head(copy)" (Cell.read ctx l.head);
    tail = Cell.make_in ctx ~label:"mylist.tail(copy)" (Cell.read ctx l.tail);
  }

let deep_copy ctx l =
  let copy = empty ctx in
  let rec go = function
    | None -> ()
    | Some n ->
        insert ctx copy n.value;
        go (Cell.read ctx n.next)
  in
  go (Cell.read ctx l.head);
  copy

let scan ctx l =
  let rec go acc = function
    | None -> acc
    | Some n -> go (acc + 1) (Cell.read ctx n.next)
  in
  go 0 (Cell.read ctx l.head)

let to_list ctx l =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.value :: acc) (Cell.read ctx n.next)
  in
  go [] (Cell.read ctx l.head)

let peek_list l =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.value :: acc) (Cell.peek n.next)
  in
  go [] (Cell.peek l.head)

let monoid () =
  { Reducer.name = "mylist"; identity = empty; reduce = concat }
