(** Deduplicating compressor, a Cilk-ified rendition of PARSEC's [dedup]
    pipeline (the paper converted it to Cilk with a [reducer_ostream]).
    The input byte stream is split into coarse blocks processed by a
    parallel loop; each block is content-defined-chunked with a rolling
    hash, every chunk is fingerprinted (FNV-64) and run-length compressed,
    and a descriptor line per chunk is written through an ostream reducer,
    which keeps the output in serial order. The checksum hashes the final
    output stream plus the count of distinct fingerprints (the
    deduplication result, computed from the assembled stream). *)

val bench : seed:int -> size:int -> block:int -> Bench_def.t
