type frame_kind = User_fn | Update_fn | Reduce_fn | Identity_fn

type t = {
  on_frame_enter : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_frame_return : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_sync : frame:int -> unit;
  on_steal : frame:int -> region:int -> unit;
  on_reduce : frame:int -> into_region:int -> from_region:int -> unit;
  on_read : frame:int -> loc:int -> view_aware:bool -> unit;
  on_write : frame:int -> loc:int -> view_aware:bool -> unit;
  on_reducer_read : frame:int -> reducer:int -> unit;
}

let null =
  {
    on_frame_enter = (fun ~frame:_ ~parent:_ ~spawned:_ ~kind:_ -> ());
    on_frame_return = (fun ~frame:_ ~parent:_ ~spawned:_ ~kind:_ -> ());
    on_sync = (fun ~frame:_ -> ());
    on_steal = (fun ~frame:_ ~region:_ -> ());
    on_reduce = (fun ~frame:_ ~into_region:_ ~from_region:_ -> ());
    on_read = (fun ~frame:_ ~loc:_ ~view_aware:_ -> ());
    on_write = (fun ~frame:_ ~loc:_ ~view_aware:_ -> ());
    on_reducer_read = (fun ~frame:_ ~reducer:_ -> ());
  }

let both a b =
  {
    on_frame_enter =
      (fun ~frame ~parent ~spawned ~kind ->
        a.on_frame_enter ~frame ~parent ~spawned ~kind;
        b.on_frame_enter ~frame ~parent ~spawned ~kind);
    on_frame_return =
      (fun ~frame ~parent ~spawned ~kind ->
        a.on_frame_return ~frame ~parent ~spawned ~kind;
        b.on_frame_return ~frame ~parent ~spawned ~kind);
    on_sync =
      (fun ~frame ->
        a.on_sync ~frame;
        b.on_sync ~frame);
    on_steal =
      (fun ~frame ~region ->
        a.on_steal ~frame ~region;
        b.on_steal ~frame ~region);
    on_reduce =
      (fun ~frame ~into_region ~from_region ->
        a.on_reduce ~frame ~into_region ~from_region;
        b.on_reduce ~frame ~into_region ~from_region);
    on_read =
      (fun ~frame ~loc ~view_aware ->
        a.on_read ~frame ~loc ~view_aware;
        b.on_read ~frame ~loc ~view_aware);
    on_write =
      (fun ~frame ~loc ~view_aware ->
        a.on_write ~frame ~loc ~view_aware;
        b.on_write ~frame ~loc ~view_aware);
    on_reducer_read =
      (fun ~frame ~reducer ->
        a.on_reducer_read ~frame ~reducer;
        b.on_reducer_read ~frame ~reducer);
  }

let is_view_aware_kind = function
  | User_fn -> false
  | Update_fn | Reduce_fn | Identity_fn -> true

let frame_kind_name = function
  | User_fn -> "user"
  | Update_fn -> "update"
  | Reduce_fn -> "reduce"
  | Identity_fn -> "identity"
