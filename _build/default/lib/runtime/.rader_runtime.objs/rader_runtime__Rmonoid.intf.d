lib/runtime/rmonoid.mli: Buffer Cell Engine Rader_monoid Reducer
