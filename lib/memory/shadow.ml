module Obs = Rader_obs.Obs

(* One flat epoch-stamped arena instead of a Dynarr: slot [loc] is the
   pair [a.(2*loc)] (value) / [a.(2*loc + 1)] (stamp), live only when the
   stamp equals [epoch]. Interleaving value and stamp keeps a lookup to a
   single cache line, and [clear] is a counter bump — no O(n) wipe between
   the thousands of runs of a coverage sweep. Stamps start at 0 and
   [epoch] at 1, so fresh capacity is never live. *)

type t = {
  mutable a : int array;
  mutable epoch : int;
}

let absent = -1

let create () = { a = Array.make 2048 0; epoch = 1 }

(* The explicit capacity checks below make the unchecked accesses safe:
   [get] only touches [i]/[i+1] after proving [i + 1] is in range, and
   [set] grows the arena first. *)
let get t loc =
  if Obs.enabled () then Obs.bump_shadow_lookup ();
  let i = 2 * loc in
  if
    i < Array.length t.a - 1
    && Array.unsafe_get t.a (i + 1) = t.epoch
  then Array.unsafe_get t.a i
  else absent

let set t loc v =
  if v < 0 then invalid_arg "Shadow.set: negative value";
  if Obs.enabled () then Obs.bump_shadow_update ();
  let i = 2 * loc in
  if i >= Array.length t.a then begin
    let cap = max (i + 2) (2 * Array.length t.a) in
    let a = Array.make cap 0 in
    Array.blit t.a 0 a 0 (Array.length t.a);
    t.a <- a
  end;
  Array.unsafe_set t.a i v;
  Array.unsafe_set t.a (i + 1) t.epoch

let clear t = t.epoch <- t.epoch + 1
