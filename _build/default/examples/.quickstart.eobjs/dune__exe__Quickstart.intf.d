examples/quickstart.mli:
