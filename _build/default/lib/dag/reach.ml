module Bitset = Rader_support.Bitset

type t = {
  n : int;
  desc : Bitset.t array; (* desc.(u) = strict descendants of u *)
  anc : Bitset.t array; (* anc.(u) = strict ancestors of u *)
}

let compute dag =
  let n = Dag.n_strands dag in
  let desc = Array.init n (fun _ -> Bitset.create n) in
  let anc = Array.init n (fun _ -> Bitset.create n) in
  (* Strand ids are a topological order, so a reverse sweep closes desc
     and a forward sweep closes anc. *)
  for u = n - 1 downto 0 do
    List.iter
      (fun v ->
        Bitset.add desc.(u) v;
        Bitset.union_into desc.(u) desc.(v))
      (Dag.succs dag u)
  done;
  for v = 0 to n - 1 do
    List.iter
      (fun u ->
        Bitset.add anc.(v) u;
        Bitset.union_into anc.(v) anc.(u))
      (Dag.preds dag v)
  done;
  { n; desc; anc }

let check t u = if u < 0 || u >= t.n then invalid_arg "Reach: unknown strand"

let precedes t u v =
  check t u;
  check t v;
  Bitset.mem t.desc.(u) v

let parallel t u v =
  check t u;
  check t v;
  u <> v && (not (Bitset.mem t.desc.(u) v)) && not (Bitset.mem t.desc.(v) u)

let descendants t u =
  check t u;
  t.desc.(u)

let ancestors t u =
  check t u;
  t.anc.(u)
