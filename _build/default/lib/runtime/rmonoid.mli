(** Instrumented monoids for common reducers.

    These mirror the Cilk Plus reducer library ([reducer_opadd],
    [reducer_max], [reducer_ostream], …) with views whose state lives in
    instrumented {!Cell}s, so that update and reduce operations perform
    real shadow-memory traffic — exactly what the SP+ algorithm must check.
    [of_pure] wraps a pure {!Rader_monoid.Monoid.t} for reducers whose
    views are immutable values (no instrumented internal state). *)

(** [of_pure m] lifts a pure monoid; its operations touch no instrumented
    memory (but still run as view-aware frames). *)
val of_pure : 'a Rader_monoid.Monoid.t -> 'a Reducer.monoid

(** Integer addition over a cell-backed view ([reducer_opadd]). *)
val int_add_cell : int Cell.t Reducer.monoid

(** Integer maximum over a cell-backed view ([reducer_max]). *)
val int_max_cell : int Cell.t Reducer.monoid

(** Integer minimum over a cell-backed view ([reducer_min]). *)
val int_min_cell : int Cell.t Reducer.monoid

(** Ordered output stream ([reducer_ostream]): views are cell-backed string
    accumulators concatenated in serial order. *)
val ostream : Buffer.t Cell.t Reducer.monoid

(** [ostream_emit ctx r s] appends [s] to an ostream reducer [r] through an
    [Update] frame. *)
val ostream_emit : Engine.ctx -> Buffer.t Cell.t Reducer.t -> string -> unit

(** [ostream_contents r] is the final output (post-run, uninstrumented).
    @raise Invalid_argument if the reducer has no view in its creation
    region. *)
val ostream_contents : Buffer.t Cell.t Reducer.t -> string

(** Convenience constructors for cell-backed int reducers. *)

(** [new_int_add ctx ~init] declares a [reducer_opadd] with initial
    value [init]. *)
val new_int_add : Engine.ctx -> init:int -> int Cell.t Reducer.t

(** [add ctx r k] adds [k] to an [int_add_cell] reducer. *)
val add : Engine.ctx -> int Cell.t Reducer.t -> int -> unit

(** [new_int_max ctx ~init] declares a max-reducer. *)
val new_int_max : Engine.ctx -> init:int -> int Cell.t Reducer.t

(** [maximize ctx r k] folds [k] into a max-reducer. *)
val maximize : Engine.ctx -> int Cell.t Reducer.t -> int -> unit

(** [int_cell_value ctx r] reads the current int view (a reducer-read plus
    an instrumented cell read). *)
val int_cell_value : Engine.ctx -> int Cell.t Reducer.t -> int
