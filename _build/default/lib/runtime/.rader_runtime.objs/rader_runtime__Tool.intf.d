lib/runtime/tool.mli:
