open Rader_runtime

type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  subject : string;
  message : string;
  strands : int list;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let rules =
  [
    ("R001", Error, "view-read race: reducer read at strands with different peer sets");
    ("R002", Error, "raw shared access logically parallel with a write");
    ("R003", Info, "reducer created but never read or updated");
    ("R004", Warning, "result depends on the reduction schedule (eager vs at-sync)");
    ("R005", Warning, "view-aware data accessed view-obliviously in parallel");
    ("R006", Error, "spec-independent race: racy under every steal spec");
  ]

(* Compact, space-free subject keys: baselines are line-oriented. *)
let sanitize label =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '[' | ']' | '.' | '_' | '-' -> c
      | _ -> '_')
    label

let reducer_subject rid = Printf.sprintf "reducer:%d" rid
let loc_subject ir loc = Printf.sprintf "loc:%d(%s)" loc (sanitize (Ir.loc_label ir loc))

(* ---------- R001: static view-read verdict ---------- *)

let r001 ir =
  List.map
    (fun (w : Verdict.witness) ->
      {
        rule = "R001";
        severity = Error;
        subject = reducer_subject w.Verdict.w_reducer;
        message =
          Printf.sprintf
            "reads of reducer %d at strands %d and %d have different peer \
             sets: the value read depends on scheduling"
            w.Verdict.w_reducer w.Verdict.w_first w.Verdict.w_second;
        strands = [ w.Verdict.w_first; w.Verdict.w_second ];
      })
    (Verdict.view_read ir)

(* ---------- R002 / R005: location-pair rules ---------- *)

let by_loc ir =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a : Engine.access) ->
      let prev = try Hashtbl.find tbl a.Engine.a_loc with Not_found -> [] in
      Hashtbl.replace tbl a.Engine.a_loc (a :: prev))
    (Ir.accesses ir);
  (* per-loc lists back in serial order; locs ascending for determinism *)
  List.sort compare (Hashtbl.fold (fun l accs acc -> (l, List.rev accs) :: acc) tbl [])

let loc_rules (ir : Ir.t) ~max_pairs =
  let parallel u v = u <> v && Rader_dag.Sp_tree.parallel ir.Ir.ix u v in
  List.concat_map
    (fun (loc, accs) ->
      let budget = ref max_pairs in
      (* first witness pair satisfying [pick], scanning serial order *)
      let find_pair pick =
        let rec outer = function
          | [] -> None
          | (x : Engine.access) :: rest ->
              let rec inner = function
                | [] -> outer rest
                | (y : Engine.access) :: more ->
                    if !budget <= 0 then None
                    else begin
                      decr budget;
                      if pick x y && parallel x.Engine.a_strand y.Engine.a_strand
                      then Some (x, y)
                      else inner more
                    end
              in
              inner rest
        in
        outer accs
      in
      let raw_race =
        find_pair (fun x y ->
            (not x.Engine.a_view_aware)
            && (not y.Engine.a_view_aware)
            && (x.Engine.a_is_write || y.Engine.a_is_write))
      in
      let escape =
        find_pair (fun x y ->
            x.Engine.a_view_aware <> y.Engine.a_view_aware
            && (x.Engine.a_is_write || y.Engine.a_is_write))
      in
      let f002 =
        match raw_race with
        | None -> []
        | Some (x, y) ->
            [
              {
                rule = "R002";
                severity = Error;
                subject = loc_subject ir loc;
                message =
                  Printf.sprintf
                    "raw accesses to %s at strands %d and %d are logically \
                     parallel and one writes: determinacy race"
                    (Ir.loc_label ir loc) x.Engine.a_strand y.Engine.a_strand;
                strands = [ x.Engine.a_strand; y.Engine.a_strand ];
              };
            ]
      in
      let f005 =
        match escape with
        | None -> []
        | Some (x, y) ->
            let va, vo = if x.Engine.a_view_aware then (x, y) else (y, x) in
            [
              {
                rule = "R005";
                severity = Warning;
                subject = loc_subject ir loc;
                message =
                  Printf.sprintf
                    "%s is touched by a view-aware frame (strand %d) and \
                     raw code (strand %d) in parallel: a view escaped its \
                     strand"
                    (Ir.loc_label ir loc) va.Engine.a_strand vo.Engine.a_strand;
                strands = [ va.Engine.a_strand; vo.Engine.a_strand ];
              };
            ]
      in
      f002 @ f005)
    (by_loc ir)

(* ---------- R003: dead reducers ---------- *)

let r003 ir =
  List.filter_map
    (fun rid ->
      match (Ir.reads ir rid, Ir.updates ir rid) with
      | creation :: [], [] ->
          Some
            {
              rule = "R003";
              severity = Info;
              subject = reducer_subject rid;
              message =
                Printf.sprintf
                  "reducer %d (created at strand %d) is never read or \
                   updated after creation"
                  rid creation;
              strands = [ creation ];
            }
      | _ -> None)
    (Ir.reducer_ids ir)

(* ---------- R004: differential schedule sensitivity ---------- *)

let r004 program =
  let replay policy =
    let eng = Engine.create ~spec:(Steal_spec.all ~policy ()) () in
    Engine.run_result eng program
  in
  match (replay Steal_spec.Reduce_eagerly, replay Steal_spec.Reduce_at_sync) with
  | Ok eager, Ok at_sync when eager <> at_sync ->
      [
        {
          rule = "R004";
          severity = Warning;
          subject = "schedule";
          message =
            Printf.sprintf
              "result differs between eager (%d) and at-sync (%d) \
               reduction under the all-steals schedule: the reduction \
               order is observable"
              eager at_sync;
          strands = [];
        };
      ]
  | _ -> (* equal, or a replay crashed: nothing provable *) []

(* ---------- R006: spec-independent race ---------- *)

(* Fed by the symbolic verification result: a location whose witness pair
   is view-oblivious at both endpoints races under *every* steal spec of
   the §7 family (Symbolic's class-A argument), cross-checked against the
   residual replays by [Witness.verify]. The strongest diagnostic the
   tool can issue — no schedule, steal placement or reduction order makes
   the program safe. *)
let r006 ir (w : Witness.t) =
  List.filter_map
    (fun (row : Witness.row) ->
      match row.Witness.r_verdict with
      | Witness.Racy { first_strand; second_strand; always = true; _ } ->
          Some
            {
              rule = "R006";
              severity = Error;
              subject = loc_subject ir row.Witness.r_loc;
              message =
                Printf.sprintf
                  "raw parallel accesses to %s (strands %d and %d) race \
                   under every steal spec of the family (%d specs, \
                   replay-confirmed): no schedule is safe"
                  row.Witness.r_label first_strand second_strand
                  w.Witness.n_specs;
              strands = [ first_strand; second_strand ];
            }
      | _ -> None)
    w.Witness.rows

(* ---------- driver ---------- *)

let run ?program ?verify ?(max_pairs = 100_000) ir =
  let findings =
    r001 ir @ loc_rules ir ~max_pairs @ r003 ir
    @ (match program with None -> [] | Some p -> r004 p)
    @ (match verify with None -> [] | Some w -> r006 ir w)
  in
  List.sort (fun a b -> compare (a.rule, a.subject) (b.rule, b.subject)) findings

(* ---------- renderers ---------- *)

let to_table = function
  | [] -> "no findings\n"
  | findings ->
      let rows =
        ("RULE", "SEVERITY", "SUBJECT", "MESSAGE")
        :: List.map
             (fun f -> (f.rule, severity_to_string f.severity, f.subject, f.message))
             findings
      in
      let w sel = List.fold_left (fun m r -> max m (String.length (sel r))) 0 rows in
      let w1 = w (fun (a, _, _, _) -> a)
      and w2 = w (fun (_, b, _, _) -> b)
      and w3 = w (fun (_, _, c, _) -> c) in
      String.concat ""
        (List.map
           (fun (a, b, c, d) -> Printf.sprintf "%-*s  %-*s  %-*s  %s\n" w1 a w2 b w3 c d)
           rows)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~program findings =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "{\"program\":\"%s\",\"findings\":[" (json_escape program));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"message\":\"%s\",\"strands\":[%s]}"
           (json_escape f.rule)
           (severity_to_string f.severity)
           (json_escape f.subject) (json_escape f.message)
           (String.concat "," (List.map string_of_int f.strands))))
    findings;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_dot (ir : Ir.t) findings =
  let worst = Hashtbl.create 16 in
  let rank = function Error -> 2 | Warning -> 1 | Info -> 0 in
  List.iter
    (fun f ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt worst s with
          | Some sev when rank sev >= rank f.severity -> ()
          | _ -> Hashtbl.replace worst s f.severity)
        f.strands)
    findings;
  let leaf_attrs s =
    match Hashtbl.find_opt worst s with
    | None -> []
    | Some sev ->
        let color =
          match sev with
          | Error -> "\"#f08080\""
          | Warning -> "\"#ffd27f\""
          | Info -> "\"#d3d3d3\""
        in
        [ ("style", "filled"); ("fillcolor", color) ]
  in
  Rader_dag.Sp_tree.to_dot ~leaf_attrs ir.Ir.tree

let baseline_lines ~program findings =
  List.sort compare
    (List.map (fun f -> Printf.sprintf "%s %s %s" program f.rule f.subject) findings)
