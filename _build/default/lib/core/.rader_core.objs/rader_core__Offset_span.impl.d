lib/core/offset_span.ml: Array Rader_memory Rader_runtime Rader_support Report
