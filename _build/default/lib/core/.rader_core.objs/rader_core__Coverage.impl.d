lib/core/coverage.ml: Hashtbl List Printf Rader_runtime Report Sp_plus
