examples/minimax.mli:
