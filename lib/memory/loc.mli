(** Dense memory-location identifiers.

    Every instrumented cell and array slot is assigned a small integer id by
    the registry at allocation time (the analogue of an address under
    ThreadSanitizer instrumentation). Shadow spaces are indexed by these
    ids. A registry is created per engine run so ids stay dense. *)

type t = int

(** A per-run allocator of location ids, with human-readable labels kept for
    race reports. *)
type registry

(** [registry ()] is a fresh registry; the first allocated id is 0. *)
val registry : unit -> registry

(** [alloc reg ~label] returns a fresh location id described by [label]. *)
val alloc : registry -> label:string -> t

(** [alloc_range reg ~label n] returns the first of [n] consecutive fresh
    ids; slot [i] is labelled ["label[i]"]. *)
val alloc_range : registry -> label:string -> int -> t

(** [label reg loc] is the label given at allocation ("?" if unknown). *)
val label : registry -> t -> string

(** [count reg] is the number of ids allocated so far. *)
val count : registry -> int

(** [reset reg] forgets every allocation, returning [reg] to the state of
    {!registry} while keeping its arenas — ids allocated before the reset
    are dangling afterwards. *)
val reset : registry -> unit
