lib/benchsuite/bm_fib.mli: Bench_def
