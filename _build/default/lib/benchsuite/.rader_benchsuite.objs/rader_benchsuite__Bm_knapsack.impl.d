lib/benchsuite/bm_knapsack.ml: Array Bench_def Cilk Printf Rader_runtime Rmonoid Workloads
