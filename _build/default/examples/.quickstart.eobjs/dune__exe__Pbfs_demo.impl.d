examples/pbfs_demo.ml: Bench_def Bm_pbfs Cilk Engine List Peer_set Printf Rader_benchsuite Rader_core Rader_runtime Rader_support Sp_plus Steal_spec
