(** Order-maintenance lists.

    Maintains a total order under [insert_after] with O(1) order queries —
    the data structure at the heart of the SP-order race-detection
    algorithm [Bender, Fineman, Gilbert & Leiserson, SPAA'04], which the
    paper cites as having no published implementation.

    Implementation: every element carries an integer tag in [0, 2^60);
    comparisons compare tags. An insertion with no tag gap triggers a
    relabel of the smallest aligned tag range [l, l + 2^i) around the
    insertion point satisfying [2^i >= 4·count²], whose elements are then
    spread evenly (leaving gaps >= 2). This is the "simplified
    algorithm" flavour of Bender et al.: amortized polylogarithmic
    relabeling cost, supporting up to ~2^30 elements. *)

type t

(** Element handles are dense ints, assigned consecutively from 0. *)
type elt = int

(** [create ()] is a list containing a single base element (handle 0). *)
val create : unit -> t

(** [base t] is the first element ever created (handle 0). *)
val base : t -> elt

(** [insert_after t x] inserts a fresh element immediately after [x] and
    returns its handle. O(1) amortized-ish (see module doc). *)
val insert_after : t -> elt -> elt

(** [precedes t a b] is true iff [a] is strictly before [b]. O(1). *)
val precedes : t -> elt -> elt -> bool

(** [length t] is the number of elements. *)
val length : t -> int

(** [to_list t] is all elements in list order (O(n); for tests). *)
val to_list : t -> elt list

(** [relabel_count t] is the total number of element relabelings performed
    so far (for performance tests). *)
val relabel_count : t -> int
