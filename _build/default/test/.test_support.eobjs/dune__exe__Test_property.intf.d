test/test_property.mli:
