(** Chrome [trace_event] JSON emitter.

    Produces the subset of the trace-event format that Perfetto and
    chrome://tracing load: complete spans ([ph:"X"]), instants ([ph:"i"]),
    counter samples ([ph:"C"]) and process/thread-name metadata, all under
    a single pid. Timestamps are float microseconds on the {!Obs.now_us}
    timebase.

    Insertion enforces two well-formedness invariants so every emitted
    file renders sanely: per-tid timestamps are monotone (clamped forward
    on a backwards wall-clock step), and [begin_span]/[end_span] keep a
    per-tid stack so one thread's spans always nest. An empty trace still
    emits a loadable file. *)

type t

val create : unit -> t

(** [set_process_name t name] labels the (single) process row. *)
val set_process_name : t -> string -> unit

(** [set_thread_name t ~tid name] labels a thread row (e.g. ["worker 3"]). *)
val set_thread_name : t -> tid:int -> string -> unit

(** [add_complete t ~name ~tid ~ts_us ~dur_us ()] records an
    externally-timed span (negative durations are clamped to 0). *)
val add_complete :
  ?cat:string ->
  ?args:(string * string) list ->
  t ->
  name:string ->
  tid:int ->
  ts_us:float ->
  dur_us:float ->
  unit ->
  unit

val add_instant :
  ?cat:string ->
  ?args:(string * string) list ->
  t ->
  name:string ->
  tid:int ->
  ts_us:float ->
  unit ->
  unit

(** [add_counter t ~name ~tid ~ts_us values] records a counter sample;
    Perfetto renders each key of [values] as a track. *)
val add_counter :
  ?cat:string -> t -> name:string -> tid:int -> ts_us:float -> (string * int) list -> unit

(** [begin_span t ~name ~tid ~ts_us] opens a span on [tid]'s stack. *)
val begin_span : ?cat:string -> t -> name:string -> tid:int -> ts_us:float -> unit

(** [end_span t ~tid ~ts_us] closes the innermost open span on [tid],
    emitting the complete event.
    @raise Invalid_argument if no span is open on [tid]. *)
val end_span : ?args:(string * string) list -> t -> tid:int -> ts_us:float -> unit

(** [with_span t ~name ~tid f] brackets [f] in a span on the shared clock
    (closed on exceptions too). *)
val with_span :
  ?cat:string ->
  ?args:(string * string) list ->
  t ->
  name:string ->
  tid:int ->
  (unit -> 'a) ->
  'a

(** [open_spans t tid] is the depth of [tid]'s span stack (0 when
    balanced). *)
val open_spans : t -> int -> int

val n_events : t -> int

(** [to_string t] is the full JSON document (always parseable, even when
    empty). *)
val to_string : t -> string

val save : t -> string -> unit
