module Engine = Rader_runtime.Engine
module Steal_spec = Rader_runtime.Steal_spec
module Dag = Rader_dag.Dag
module Deque = Rader_support.Deque
module Rng = Rader_support.Rng

type result = {
  makespan : int;
  work : int;
  n_steals : int;
  stolen_continuations : int list;
}

let simulate ~workers ~seed eng =
  if workers < 1 then invalid_arg "Wsim.simulate: workers < 1";
  let dag =
    match Engine.dag eng with
    | Some d -> d
    | None -> invalid_arg "Wsim.simulate: engine run was not recorded"
  in
  let n = Dag.n_strands dag in
  let indeg = Array.make n 0 in
  for v = 0 to n - 1 do
    indeg.(v) <- List.length (Dag.preds dag v)
  done;
  let executed_by = Array.make n (-1) in
  let rng = Rng.create seed in
  let deques = Array.init workers (fun _ -> Deque.create ()) in
  let running = Array.make workers (-1) in
  (* strand a worker just finished, -1 = idle *)
  if n > 0 then Deque.push_bottom deques.(0) 0;
  let time = ref 0 in
  let done_count = ref 0 in
  let steals = ref 0 in
  while !done_count < n do
    (* Acquire phase: each idle worker takes from its own deque bottom or
       steals the top of a random victim. *)
    for w = 0 to workers - 1 do
      if running.(w) < 0 then
        if not (Deque.is_empty deques.(w)) then
          running.(w) <- Deque.pop_bottom deques.(w)
        else begin
          (* One steal attempt per time step, random victim. *)
          let v = Rng.int rng workers in
          if v <> w && not (Deque.is_empty deques.(v)) then begin
            running.(w) <- Deque.steal_top deques.(v);
            incr steals
          end
        end
    done;
    (* Execute phase: every running strand completes (unit cost). *)
    incr time;
    for w = 0 to workers - 1 do
      let s = running.(w) in
      if s >= 0 then begin
        executed_by.(s) <- w;
        incr done_count;
        running.(w) <- -1;
        (* Enable successors; push serially-later ones first so the owner
           continues with the serially-first (depth-first) successor. *)
        let enabled =
          List.filter
            (fun v ->
              indeg.(v) <- indeg.(v) - 1;
              indeg.(v) = 0)
            (Dag.succs dag s)
        in
        List.iter
          (fun v -> Deque.push_bottom deques.(w) v)
          (List.sort (fun a b -> compare b a) enabled)
      end
    done
  done;
  let stolen =
    List.filter_map
      (fun (idx, spawn_strand, cont_strand) ->
        if executed_by.(cont_strand) <> executed_by.(spawn_strand) then Some idx
        else None)
      (Engine.spawn_log eng)
  in
  { makespan = !time; work = n; n_steals = !steals; stolen_continuations = stolen }

let steal_spec ?(policy = Steal_spec.Reduce_eagerly) res =
  Steal_spec.with_name
    (Steal_spec.by_spawn_index ~policy res.stolen_continuations)
    (Printf.sprintf "wsim(%d stolen)" (List.length res.stolen_continuations))
