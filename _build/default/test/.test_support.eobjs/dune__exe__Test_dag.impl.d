test/test_dag.ml: Alcotest Array Dag Fun List Peers Printf QCheck2 QCheck_alcotest Rader_dag Rader_support Reach Sp_tree String
