lib/core/trace.ml: Hashtbl List Printf Rader_dag Rader_runtime String
