(** Exhaustive coverage via steal-specification enumeration (paper §7).

    A single SP+ run checks one schedule. For an {e ostensibly
    deterministic} program — fixed view-oblivious strands, semantically
    associative reducers — Theorems 6 and 7 show that
    [Θ(max{KD, K³})] steal specifications are necessary and [O(KD + K³)]
    sufficient to elicit {e every} possible view-aware strand, where [K]
    is the maximum number of continuations in a sync block and [D] the
    spawn depth. Rader's practical construction (§8) steals the same
    continuation positions in every sync block:

    - {e update strands}: one spec per continuation position (and one per
      depth), so each update site runs at least once on a freshly created
      view — [O(K + D)] specs covering the [Θ(M)] classes of Theorem 6;
    - {e reduce strands}: every reduce operation combines two adjacent
      subsequences [⟨a..b⟩ ⊗ ⟨b..c⟩] of a sync block's continuation
      sequence; stealing the triple [(a, b, c)] and scheduling the merge
      of the middle pair first elicits exactly that reduce strand —
      [O(K³)] specs (Theorem 7 shows [Ω(K³)] are necessary).

    [exhaustive_check] runs SP+ under the whole family and aggregates the
    races; together with one serial Peer-Set run this yields the paper's
    §7 coverage guarantee for races involving a view-oblivious strand. *)

type profile = {
  k : int;  (** max continuations (spawns) in any sync block *)
  d : int;  (** max spawn depth *)
  n_spawns : int;  (** total spawns in the serial execution *)
  k_rel : int;
      (** largest continuation position at which a steal can still be
          followed, within its sync block's dynamic extent, by an
          instrumented event (cell access, reducer-read, or view-aware
          auxiliary frame). A steal at a position beyond [k_rel] — in any
          block — provably leaves the replay identical to the no-steal
          one. [0] = no steal anywhere can perturb the analysis; in
          particular, a program that performs no reducer operation at all
          reports [k_rel = 0] (and [rel_depths = []]), pruning its whole
          family down to [Steal_spec.none]. *)
  rel_depths : int list;
      (** sorted spawn depths of frames owning at least one sync block
          with a perturbable position (see [k_rel]) — the depths at which
          an [at_depth] spec can matter *)
}

(** [profile program] measures [k], [d], the spawn count and the relevance
    coordinates ([k_rel], [rel_depths]) by running [program] once,
    uninstrumented, under [Steal_spec.none]. Total: if the program
    crashes, the maxima observed over the completed prefix are returned
    (use {!profile_with_failure} to also see the diagnostic). *)
val profile : (Rader_runtime.Engine.ctx -> 'a) -> profile

(** [profile_with_failure program] is {!profile} plus the contained
    failure, if the profiling run crashed. *)
val profile_with_failure :
  (Rader_runtime.Engine.ctx -> 'a) -> profile * Diag.failure option

(** [spec_relevant prof spec] is false only when every steal [spec] could
    perform provably lands after the last instrumented event of its sync
    block, making the replay's SP+ verdict byte-identical to
    [Steal_spec.none]'s (which [all_specs] always runs first):
    [Local_indices] whose indices all exceed [prof.k_rel], or [At_depth]
    at a depth outside [prof.rel_depths]. Unlocalizable shapes ([Always],
    [Probabilistic], [Spawn_indices], [Opaque]) are conservatively
    relevant. See DESIGN.md §10 for the soundness argument. *)
val spec_relevant : profile -> Rader_runtime.Steal_spec.t -> bool

(** [prune_specs prof specs] keeps the {!spec_relevant} specs. *)
val prune_specs :
  profile -> Rader_runtime.Steal_spec.t list -> Rader_runtime.Steal_spec.t list

(** [specs_for_updates ~k ~d] is the update-eliciting family. *)
val specs_for_updates : k:int -> d:int -> Rader_runtime.Steal_spec.t list

(** [specs_for_reductions ~k] is the reduce-eliciting family: singles,
    pairs (both fold directions) and middle-pair-first triples over
    continuation positions [1..k]. *)
val specs_for_reductions : k:int -> Rader_runtime.Steal_spec.t list

(** [all_specs ~k ~d] is the union (updates, reductions, and the no-steal
    spec). *)
val all_specs : k:int -> d:int -> Rader_runtime.Steal_spec.t list

(** {2 Symbolic no-steal scan}

    SP+ under [Steal_spec.none] has a closed form: no steal fires, every
    access carries view id 0, and the detector reports exactly the
    locations with two logically parallel accesses, at least one a write,
    whose {e later} endpoint is view-oblivious (the view-aware branch
    compares equal view ids and never fires; single-slot shadow retention
    is per-location complete because entries are only replaced by
    serially-later accesses and SP precedence is transitive). The scan
    recomputes that verdict from one recorded run with parse-tree Lemma-4
    queries — no replay, no detector. Together with {!spec_relevant}
    (every spec outside the residual set replays byte-identically to
    [none]) it lets {!exhaustive_check}[ ~symbolic:true] cover the whole
    §7 family with replays only for the no-steal witness and the residual
    specs — and with {e zero} replays when the scan is clean and the
    residual set empty. See DESIGN.md §14. *)

(** Why a location cannot race without steals, independently of the
    schedule. *)
type certificate =
  | No_parallel_pair  (** no two accesses are ever logically parallel *)
  | Parallel_reads_only  (** parallel accesses exist but none writes *)
  | Va_suppressed
      (** parallel write-pairs exist but each one's later endpoint is
          view-aware — only the residual replays can decide the stolen
          schedules *)

type loc_scan = {
  ls_loc : int;
  ls_first : Rader_runtime.Engine.access;
      (** earlier endpoint of the witness pair (the first such pair in
          serial scan order — the minimality the witness table reports) *)
  ls_second : Rader_runtime.Engine.access;  (** later endpoint *)
  ls_always : bool;
      (** both endpoints view-oblivious: the pair executes, stays
          parallel, and fires the later-endpoint-oblivious check under
          {e every} spec of the family — racy on all of them (lint R006) *)
}

type scan = {
  scan_racy : loc_scan list;  (** no-steal-racy locations, ascending *)
  scan_clean : (int * certificate) list;  (** clean locations, ascending *)
  scan_truncated : bool;
      (** some location blew the pair budget: scan-based skip decisions
          are void (the sweep keeps the no-steal replay) *)
}

(** [scan_trace trace] computes the symbolic no-steal verdict from a
    recorded [Steal_spec.none] trace. [max_pairs] (default 100_000) bounds
    the per-location pair scan; blowing it sets [scan_truncated]. *)
val scan_trace : ?max_pairs:int -> Trace.t -> scan

(** [symbolic_scan program] records one no-steal run and scans it.
    [Error] if the program crashed (contained). *)
val symbolic_scan :
  ?max_pairs:int ->
  (Rader_runtime.Engine.ctx -> 'a) ->
  (scan, Diag.failure) result

type span = {
  span_spec : string;  (** steal-spec name this replay ran *)
  span_worker : int;  (** worker domain id (0-based) that ran it *)
  span_t0_us : float;  (** wall-clock start, microseconds *)
  span_t1_us : float;  (** wall-clock end, microseconds *)
}
(** One spec replay's wall-clock extent, for the Chrome-trace emitter:
    one complete-event span per replay, one trace thread per worker. *)

type obs_summary = {
  obs_counters : Rader_obs.Obs.counters;
      (** merged detector counters: the profiling run's delta plus every
          replay's delta, summed in spec order — deterministic and equal
          to the serial run's counters for every job count *)
  obs_spans : span list;  (** replay spans in spec order *)
  obs_phases : (string * float) list;
      (** [(phase, seconds)] for the ["profile"], ["replay"] and ["merge"]
          phases of the sweep *)
}

type result = {
  prof : profile;
  n_specs : int;  (** size of the full spec family for this profile *)
  n_pruned : int;
      (** specs dropped by [~prune] as provably redundant (0 without it) *)
  n_skipped : int;
      (** specs the [~symbolic] fast path proved redundant without
          replaying (0 without it); includes [Steal_spec.none] itself when
          the scan proved the no-steal execution race-free *)
  sym : scan option;
      (** the symbolic scan, when [~symbolic] ran one (present even if
          truncated; [None] when the scan's recorded run crashed and the
          sweep fell back to enumeration) *)
  n_run : int;  (** specs actually attempted (≤ [n_specs] under budgets) *)
  racy_locs : int list;  (** union over all runs, sorted *)
  reports : Report.t list;  (** deduplicated by location *)
  per_spec : (Rader_runtime.Steal_spec.t * int list) list;
      (** each attempted spec together with the racy locations it elicited
          (crashed runs report the prefix observed before the failure) *)
  incomplete : (string * Diag.failure) list;
      (** every spec whose run crashed or blew a budget — and every spec
          the sweep never reached — with its diagnostic; [("profile", f)]
          if the profiling run itself crashed *)
  complete : bool;  (** [incomplete = []]: the §7 guarantee holds; when
      false the sweep is explicitly partial — "no races" only covers what
      actually ran *)
  obs : obs_summary option;
      (** counters, spans and phase timings — [Some] iff [with_obs] *)
}

(** [exhaustive_check program] runs SP+ on [program] under every spec in
    [all_specs] and aggregates. Total: a spec run that crashes or blows
    its budget is recorded in [incomplete] while the sweep continues, and
    the races it proved before failing still count.

    Each spec replay is independent (one engine, one detector, one
    verdict), so the sweep shards across OCaml 5 domains: [jobs] worker
    domains pull specs from a shared queue, each recycling one
    engine+detector pair ([Engine.reset] / [Sp_plus.reset]) across its
    replays, and the per-spec outcomes are merged {e in spec order} — so
    [reports] (order and dedup), [per_spec], [racy_locs] and [complete]
    are identical for every job count, and [jobs = 1] (the default, run
    inline with no domain spawned) reproduces the serial sweep exactly.
    Under a [deadline] with [jobs >= 2], {e which} specs end up charged to
    the deadline depends on timing; everything else stays deterministic.

    @param max_specs attempt at most this many specs; the rest are
    recorded in [incomplete] as [Budget_exceeded (Max_specs _)].
    @param max_events per-run event budget (see [Engine.create]).
    @param deadline wall-clock budget in seconds for the whole sweep
    (shared with each run's engine); once exhausted, remaining specs are
    recorded as [Budget_exceeded (Deadline _)] without running.
    @param jobs worker domains (default 1; [<= 0] means
    [Parallel_sweep.default_jobs ()]).
    @param with_obs enable {!Rader_obs.Obs} counters for the duration of
    the sweep (restoring the previous enabled state afterwards) and return
    an {!obs_summary} in [obs]: each replay's counter delta is captured on
    the worker that ran it and the deltas are summed in spec order, so the
    merged counters are byte-identical to a serial ([jobs = 1]) run's.
    @param prune drop the {e provably redundant} specs (see
    {!spec_relevant}) before sweeping: [racy_locs] and [reports] are
    byte-identical to the unpruned sweep's — enforced by property tests —
    while [n_run] shrinks by [n_pruned]. Pruned specs are {e not} recorded
    in [incomplete] (their verdicts are already covered by the no-steal
    replay). If the profiling run crashed, pruning is disabled for that
    sweep. Default false.
    @param symbolic compute the no-steal verdict symbolically (one extra
    recorded run, see {!symbolic_scan}) and replay {e only} the witness
    specs: the no-steal spec when the scan found (or, truncated, could
    have missed) a race, plus the residual relevant specs. [racy_locs]
    and [reports] stay byte-identical to the enumerated sweep — enforced
    by property tests — while skipped specs count in [n_skipped]. A clean
    scan over an empty residual set replays {e nothing}. Subsumes
    [~prune]. Disabled (full fall-back, [sym = None] or [n_skipped = 0])
    when the profiling or scan run crashes. Default false.
    @param max_pairs per-location pair budget for the [~symbolic] scan.
    @param reach precedence backend for the per-worker SP+ detectors
    (default [Dset]); verdicts are backend-independent, only the cost
    model changes. *)
val exhaustive_check :
  ?max_specs:int ->
  ?max_events:int ->
  ?deadline:float ->
  ?jobs:int ->
  ?with_obs:bool ->
  ?prune:bool ->
  ?symbolic:bool ->
  ?max_pairs:int ->
  ?reach:Rader_reach.Reach.backend ->
  (Rader_runtime.Engine.ctx -> 'a) ->
  result

(** [witness_spec res loc] is a steal specification that elicits a race on
    [loc] (if one was found) — Rader's "repeat the run for regression
    tests" hook (§8): re-run SP+ under exactly this spec to reproduce. *)
val witness_spec : result -> int -> Rader_runtime.Steal_spec.t option
