lib/runtime/engine.mli: Rader_dag Rader_memory Steal_spec Tool
