(** Shadow spaces: location → integer metadata.

    The SP-bags/SP+ algorithms keep two shadow spaces, [reader] and
    [writer], mapping each accessed memory location to the ID of the Cilk
    function instantiation that last read/wrote it; Peer-Set keeps one per
    reducer plus a spawn count. All of these are int-valued maps over dense
    location ids with a distinguished "never accessed" value, which is what
    this module provides. Reads and sets are O(1). *)

type t

(** The value returned for never-written locations. *)
val absent : int

(** [create ()] is an empty shadow space. *)
val create : unit -> t

(** [get t loc] is the stored value, or [absent]. *)
val get : t -> int -> int

(** [set t loc v] stores [v] (which must be >= 0) for [loc]. *)
val set : t -> int -> int -> unit

(** [clear t] forgets everything. *)
val clear : t -> unit
