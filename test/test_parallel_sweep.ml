(* The parallel §7 sweep must be observationally identical to the serial
   one: for every job count the coverage result — verdicts, report order,
   per-spec locs, the [incomplete] set — is the same, including when spec
   runs crash mid-sweep or blow budgets. Plus the substrate (work queue,
   stop hook, poisoning) and the Engine.reset reuse round-trip. *)

open Rader_runtime
open Rader_core
module Reach = Rader_reach.Reach

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Everything observable about a coverage result, rendered to plain data
   so results from different job counts compare with (=). *)
type fingerprint = {
  fp_prof : int * int * int;
  fp_n_specs : int;
  fp_n_run : int;
  fp_racy_locs : int list;
  fp_reports : string list;
  fp_per_spec : (string * int list) list;
  fp_incomplete : (string * string) list;
  fp_complete : bool;
}

let fingerprint (res : Coverage.result) =
  {
    fp_prof = (res.prof.Coverage.k, res.prof.Coverage.d, res.prof.Coverage.n_spawns);
    fp_n_specs = res.n_specs;
    fp_n_run = res.n_run;
    fp_racy_locs = res.racy_locs;
    fp_reports = List.map Report.to_string res.reports;
    fp_per_spec =
      List.map (fun ((s : Steal_spec.t), locs) -> (s.Steal_spec.name, locs)) res.per_spec;
    fp_incomplete = List.map (fun (n, f) -> (n, Diag.class_name f)) res.incomplete;
    fp_complete = res.complete;
  }

let fp_equal what a b = checkb (what ^ ": parallel = serial") true (a = b)

(* The serial dset sweep is the single reference; every other
   (backend, jobs) combination — including depa at jobs=1 — must produce
   the identical fingerprint, which covers both "parallel = serial" and
   "verdicts are precedence-backend-independent" in one sweep. *)
let check_all_jobs ?max_specs ?max_events what program =
  let serial = fingerprint (Coverage.exhaustive_check ?max_specs ?max_events ~jobs:1 program) in
  List.iter
    (fun reach ->
      List.iter
        (fun jobs ->
          if not (reach = Reach.Dset && jobs = 1) then
            let par =
              fingerprint
                (Coverage.exhaustive_check ?max_specs ?max_events ~jobs ~reach
                   program)
            in
            fp_equal
              (Printf.sprintf "%s, jobs=%d, reach=%s" what jobs (Reach.show reach))
              serial par)
        [ 1; 2; 4; 0 (* 0 = one per core *) ])
    Reach.all;
  serial

(* --- workloads ------------------------------------------------------- *)

(* Racy: the reducer's Reduce writes a shared cell read in parallel, so
   only specs that elicit a reduce strand see the race (test_coverage's
   planted race, K=7-ish via the parallel_for). *)
let planted_reduce_race ctx =
  let shared = Cell.make_in ctx ~label:"witness" 0 in
  let monoid =
    {
      Reducer.name = "touchy";
      identity = (fun c -> Cell.make_in c 0);
      reduce =
        (fun c l r ->
          Cell.write c shared 1;
          Cell.write c l (Cell.read c l + Cell.read c r);
          l);
    }
  in
  let red = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  let reader = Cilk.spawn ctx (fun ctx -> Cell.read ctx shared) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:0 ~hi:6 (fun ctx _ ->
          Reducer.update ctx red (fun c v ->
              Cell.write c v (Cell.read c v + 1);
              v)));
  Cilk.sync ctx;
  ignore (Cilk.get ctx reader)

(* Crashy: the reduce callback raises (test_injection's Reduce_raises), so
   every spec that elicits a reduce crashes mid-run and lands in
   [incomplete] as User_program_exn, while no-reduce specs complete. *)
let crashy_reduce ctx =
  let monoid =
    {
      Reducer.name = "sum";
      identity = (fun c -> Cell.make_in c 0);
      reduce = (fun _ _ _ -> failwith "injected reduce crash");
    }
  in
  let sum = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  let watcher = Cilk.spawn ctx (fun _ -> ()) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:1 ~hi:10 (fun ctx i ->
          Reducer.update ctx sum (fun c v ->
              Cell.write c v (Cell.read c v + i);
              v)));
  Cilk.sync ctx;
  ignore (Cilk.get ctx watcher);
  ignore (Reducer.get_value ctx sum)

let clean ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  ignore (Rmonoid.int_cell_value ctx r)

(* --- parallel = serial ------------------------------------------------ *)

let test_racy_program_all_jobs () =
  let fp = check_all_jobs "planted race" planted_reduce_race in
  checkb "race found" true (fp.fp_racy_locs <> []);
  checkb "complete" true fp.fp_complete

let test_crashing_program_all_jobs () =
  let fp = check_all_jobs "crashing reduce" crashy_reduce in
  checkb "some specs crashed" true (fp.fp_incomplete <> []);
  checkb "crashes are contained user exns" true
    (List.for_all (fun (_, c) -> c = "user-program-exn") fp.fp_incomplete);
  checkb "explicitly partial" false fp.fp_complete;
  (* crashed runs were still attempted *)
  check "all specs attempted" fp.fp_n_specs fp.fp_n_run

let test_budgets_all_jobs () =
  (* per-run event budget: deterministic per spec, so identical across job
     counts; max_specs drops a deterministic suffix *)
  let fp = check_all_jobs ~max_events:40 "max_events budget" planted_reduce_race in
  checkb "some spec blew the event budget" true
    (List.exists (fun (_, c) -> c = "budget-exceeded") fp.fp_incomplete);
  let fp = check_all_jobs ~max_specs:5 "max_specs budget" planted_reduce_race in
  check "only 5 run" 5 fp.fp_n_run;
  checkb "rest charged to max_specs" true
    (List.length fp.fp_incomplete = fp.fp_n_specs - 5)

let test_clean_program_all_jobs () =
  let fp = check_all_jobs "clean program" clean in
  check "no races anywhere" 0 (List.length fp.fp_racy_locs);
  checkb "complete" true fp.fp_complete

(* --- the substrate ---------------------------------------------------- *)

let test_map_basics () =
  List.iter
    (fun jobs ->
      let results, stats =
        Parallel_sweep.map ~jobs
          ~init:(fun wid -> wid)
          ~task:(fun _ i -> i * i)
          ~skipped:(fun _ -> -1)
          100
      in
      check "n_tasks" 100 stats.Parallel_sweep.n_tasks;
      check "n_skipped" 0 stats.Parallel_sweep.n_skipped;
      checkb "results in index order" true
        (Array.to_list results = List.init 100 (fun i -> i * i)))
    [ 1; 2; 4 ]

let test_map_stop_skips_everything () =
  List.iter
    (fun jobs ->
      let results, stats =
        Parallel_sweep.map ~jobs
          ~stop:(fun () -> true)
          ~init:(fun _ -> ())
          ~task:(fun () _ -> Alcotest.fail "task ran despite stop")
          ~skipped:(fun i -> -i)
          10
      in
      check "all skipped" 10 stats.Parallel_sweep.n_skipped;
      checkb "skipped results recorded" true
        (Array.to_list results = List.init 10 (fun i -> -i)))
    [ 1; 3 ]

let test_map_task_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Parallel_sweep.map ~jobs
          ~init:(fun _ -> ())
          ~task:(fun () i -> if i = 5 then failwith "boom" else i)
          ~skipped:(fun _ -> -1)
          20
      with
      | _ -> Alcotest.fail "expected the task exception to re-raise"
      | exception Failure msg -> Alcotest.(check string) "poisoned" "boom" msg)
    [ 1; 2; 4 ]

(* RADER_FORCE_DOMAINS pins default_jobs regardless of the probed core
   count, so the jobs<=0 path genuinely spawns domains on single-core CI
   runners. The sweep under the forced default must still match the
   serial reference. *)
let test_force_domains_env () =
  let prior = Sys.getenv_opt "RADER_FORCE_DOMAINS" in
  let restore () =
    Unix.putenv "RADER_FORCE_DOMAINS" (Option.value prior ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "RADER_FORCE_DOMAINS" "3";
      check "default_jobs honors the override" 3 (Parallel_sweep.default_jobs ());
      let results, stats =
        Parallel_sweep.map ~jobs:0
          ~init:(fun wid -> wid)
          ~task:(fun _ i -> i + 1)
          ~skipped:(fun _ -> -1)
          32
      in
      check "forced worker count used" 3 stats.Parallel_sweep.jobs;
      checkb "results in index order under forced domains" true
        (Array.to_list results = List.init 32 (fun i -> i + 1));
      let serial = fingerprint (Coverage.exhaustive_check ~jobs:1 planted_reduce_race) in
      let forced = fingerprint (Coverage.exhaustive_check ~jobs:0 planted_reduce_race) in
      fp_equal "forced-domain sweep" serial forced;
      (* junk values fall back to the probed count instead of exploding *)
      Unix.putenv "RADER_FORCE_DOMAINS" "zero";
      checkb "junk override ignored" true (Parallel_sweep.default_jobs () >= 1);
      Unix.putenv "RADER_FORCE_DOMAINS" "-2";
      checkb "non-positive override ignored" true
        (Parallel_sweep.default_jobs () >= 1))

(* --- Engine.reset reuse round-trip ------------------------------------ *)

let run_stats_and_races eng det program =
  let outcome = Engine.run_result eng program in
  let st = Engine.stats eng in
  ( (match outcome with Ok _ -> "ok" | Error f -> Diag.class_name f),
    (st.Engine.n_spawns, st.Engine.n_steals),
    List.map Report.to_string (Sp_plus.races det) )

let test_reset_round_trip () =
  let spec = Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 2; 4 ] in
  (* reference: fresh engine+detector per run *)
  let fresh program =
    let eng = Engine.create ~spec () in
    let det = Sp_plus.attach eng in
    run_stats_and_races eng det program
  in
  (* one pair recycled through every program, crashes included *)
  let eng = Engine.create () in
  let det = Sp_plus.attach eng in
  let reused program =
    Engine.reset ~spec eng;
    Sp_plus.reset det;
    run_stats_and_races eng det program
  in
  List.iter
    (fun (name, program) ->
      checkb (name ^ ": reset-reuse = fresh") true (fresh program = reused program))
    [
      ("racy", planted_reduce_race);
      ("crashy", crashy_reduce);  (* reset after a crashed run must fully recover *)
      ("clean", clean);
      ("racy again", planted_reduce_race);
    ]

let test_reset_rejects_running_engine () =
  let eng = Engine.create () in
  ignore
    (Engine.run_result eng (fun ctx ->
         ignore (Cilk.spawn ctx (fun _ -> ()));
         Cilk.sync ctx;
         (* mid-run reset must be refused, not corrupt the engine *)
         checkb "reset while running rejected" true
           (match Engine.reset eng with
           | () -> false
           | exception _ -> true)))

let () =
  Alcotest.run "parallel_sweep"
    [
      ( "parallel = serial",
        [
          Alcotest.test_case "planted race" `Quick test_racy_program_all_jobs;
          Alcotest.test_case "crashing reduce" `Quick test_crashing_program_all_jobs;
          Alcotest.test_case "budgets" `Quick test_budgets_all_jobs;
          Alcotest.test_case "clean program" `Quick test_clean_program_all_jobs;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "index-ordered results" `Quick test_map_basics;
          Alcotest.test_case "stop skips" `Quick test_map_stop_skips_everything;
          Alcotest.test_case "exception poisons" `Quick test_map_task_exception_propagates;
          Alcotest.test_case "forced domains env hatch" `Quick test_force_domains_env;
        ] );
      ( "engine reuse",
        [
          Alcotest.test_case "reset round-trip" `Quick test_reset_round_trip;
          Alcotest.test_case "reset rejects running engine" `Quick
            test_reset_rejects_running_engine;
        ] );
    ]
