(** The SP-order algorithm [Bender, Fineman, Gilbert & Leiserson, SPAA'04]
    — serial variant, as a second baseline determinacy-race detector.

    The paper under reproduction remarks (§1, §9) that, to the authors'
    knowledge, no implementation of SP-order exists; this module provides
    one for the serial setting. Instead of disjoint-set bags, SP-order
    maintains two total orders over strands in order-maintenance lists:

    - the {e English} order: the serial depth-first order that visits a
      spawned child before the continuation (identical to execution
      order, so English comparisons against past accesses are implied);
    - the {e Hebrew} order: the depth-first order that visits the
      continuation before the spawned child.

    Two strands satisfy [u ≺ v] iff [u] precedes [v] in {e both} orders;
    they are logically parallel iff the orders disagree. Since the shadow
    entry is always serially (hence English-) earlier than the current
    strand, an access races with the recorded one iff the current strand
    is Hebrew-before it. Shadow update follows the same
    pseudotransitivity discipline as SP-bags.

    Like SP-bags, SP-order is {e not} reducer-aware: run it on
    reducer-free programs (or as the "what existing detectors do"
    comparison on programs with reducers). Checks are O(1); maintaining
    the orders is amortized polylogarithmic per strand.

    {2 Reachability-backend reuse}

    [create ?reach] optionally swaps the order-maintenance lists for the
    shared {!Rader_reach.Reach.Sp} precedence oracle ([Dset] bags or
    [Depa] fingerprints), queried at frame granularity — sufficient
    because a past shadow frame relates uniformly (all-serial or
    all-parallel) to the current strand. The strand-level English/Hebrew
    {e labels} themselves are the one part that cannot reuse [Reach]:
    they totally order strands {e within} a frame, below the oracle's
    granularity. Omitting [reach] (the default) keeps the original
    label machinery — it is the SPAA'04 reproduction this module exists
    for. Verdicts are identical either way (property-tested). *)

type t

val create : ?reach:Rader_reach.Reach.backend -> Rader_runtime.Engine.t -> t
val tool : t -> Rader_runtime.Tool.t
val attach : ?reach:Rader_reach.Reach.backend -> Rader_runtime.Engine.t -> t
val races : t -> Report.t list
val found : t -> bool
