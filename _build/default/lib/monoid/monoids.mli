(** Standard monoid instances, mirroring the reducer library shipped with
    Cilk Plus plus the user-defined monoids of the paper's benchmarks
    (Bag for pbfs, hypervector for collision, best-so-far for knapsack). *)

(** [reducer_opadd]: integer addition, identity 0 (Cilk's [reducer_opadd]). *)
val int_add : int Monoid.t

(** Integer multiplication, identity 1. *)
val int_mul : int Monoid.t

(** Integer minimum, identity [max_int] (Cilk's [reducer_min]). *)
val int_min : int Monoid.t

(** Integer maximum, identity [min_int] (Cilk's [reducer_max]). *)
val int_max : int Monoid.t

(** Float addition, identity 0.0. *)
val float_add : float Monoid.t

(** Bitwise AND, identity all-ones (Cilk's [reducer_opand]). *)
val int_land : int Monoid.t

(** Bitwise OR, identity 0 (Cilk's [reducer_opor]). *)
val int_lor : int Monoid.t

(** Bitwise XOR, identity 0 (Cilk's [reducer_opxor]). *)
val int_lxor : int Monoid.t

(** Boolean conjunction, identity [true]. *)
val bool_and : bool Monoid.t

(** Boolean disjunction, identity [false]. *)
val bool_or : bool Monoid.t

(** [pair a b] is the product monoid: componentwise combine. *)
val pair : 'a Monoid.t -> 'b Monoid.t -> ('a * 'b) Monoid.t

(** [arg_max] combines [(key, payload) option]s keeping the largest key;
    ties keep the earlier (left) element, preserving determinism. *)
val arg_max : unit -> (int * 'a) option Monoid.t

(** [counter ()] multiset of keys with per-key counts; ⊗ merges counts.
    The classic word-count / histogram reducer. *)
val counter : unit -> (string * int) list Monoid.t

(** [counter_entries c] is the sorted (key, count) list. *)
val counter_entries : (string * int) list -> (string * int) list

(** [counter_of_list keys] builds a counter from occurrences. *)
val counter_of_list : string list -> (string * int) list

(** List concatenation, identity []. Order-preserving (non-commutative):
    the canonical test that reducers only need associativity. *)
val list_append : unit -> 'a list Monoid.t

(** String concatenation, identity "". Models Cilk's [reducer_ostream]:
    output fragments concatenated in serial order (non-commutative). *)
val string_concat : string Monoid.t

(** An unordered multiset ("Bag") with cheap union, as used by PBFS
    [Leiserson & Schardl '10]. Represented as a list of chunks so that
    union is O(1); [bag_elements] flattens. *)
type 'a bag

val bag : unit -> 'a bag Monoid.t
val bag_singleton : 'a -> 'a bag
val bag_of_list : 'a list -> 'a bag
val bag_elements : 'a bag -> 'a list
val bag_size : 'a bag -> int

(** A "hypervector": an append-only growable vector with concatenation as
    ⊗, as used by the collision benchmark. *)
type 'a hypervector

val hypervector : unit -> 'a hypervector Monoid.t
val hv_push : 'a hypervector -> 'a -> 'a hypervector
val hv_to_list : 'a hypervector -> 'a list
val hv_length : 'a hypervector -> int
