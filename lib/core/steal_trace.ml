open Rader_runtime
module Dag = Rader_dag.Dag

type entry = { e_path : int list; e_ord : int }

type t = {
  workers : int;
  seed : int;
  density : float;
  entries : entry list;
}

let compare_entry a b =
  match compare a.e_path b.e_path with 0 -> compare a.e_ord b.e_ord | c -> c

let make ~workers ~seed ~density entries =
  { workers; seed; density; entries = List.sort_uniq compare_entry entries }

let n_steals t = List.length t.entries

(* ---------- text format ----------

   Line 1: "steal-trace/1 workers=W seed=S density=D steals=N"
   Then one line per entry: "path.with.dots ord" — a root-frame spawn has
   the empty path, written "-". *)

let path_to_string = function
  | [] -> "-"
  | p -> String.concat "." (List.map string_of_int p)

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "steal-trace/1 workers=%d seed=%d density=%g steals=%d\n"
       t.workers t.seed t.density (List.length t.entries));
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s %d\n" (path_to_string e.e_path) e.e_ord))
    t.entries;
  Buffer.contents b

let of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char '\n' (String.trim s) with
  | [] -> fail "empty trace"
  | header :: lines -> (
      let parse_kv kvs key conv =
        match List.assoc_opt key kvs with
        | None -> Error (Printf.sprintf "missing %s= in trace header" key)
        | Some v -> (
            match conv v with
            | Some x -> Ok x
            | None -> Error (Printf.sprintf "bad %s=%s in trace header" key v))
      in
      match String.split_on_char ' ' (String.trim header) with
      | magic :: kvs when magic = "steal-trace/1" -> (
          let kvs =
            List.filter_map
              (fun tok ->
                match String.index_opt tok '=' with
                | None -> None
                | Some i ->
                    Some
                      ( String.sub tok 0 i,
                        String.sub tok (i + 1) (String.length tok - i - 1) ))
              kvs
          in
          let ( let* ) = Result.bind in
          let* workers = parse_kv kvs "workers" int_of_string_opt in
          let* seed = parse_kv kvs "seed" int_of_string_opt in
          let* density = parse_kv kvs "density" float_of_string_opt in
          let parse_line ln =
            match String.split_on_char ' ' (String.trim ln) with
            | [ p; o ] -> (
                let path =
                  if p = "-" then Some []
                  else
                    let parts = String.split_on_char '.' p in
                    let nums = List.filter_map int_of_string_opt parts in
                    if List.length nums = List.length parts then Some nums
                    else None
                in
                match (path, int_of_string_opt o) with
                | Some path, Some ord -> Ok { e_path = path; e_ord = ord }
                | _ -> Error (Printf.sprintf "bad trace line %S" ln))
            | _ -> Error (Printf.sprintf "bad trace line %S" ln)
          in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | ln :: rest when String.trim ln = "" -> go acc rest
            | ln :: rest ->
                let* e = parse_line ln in
                go (e :: acc) rest
          in
          let* entries = go [] lines in
          Ok (make ~workers ~seed ~density entries))
      | _ -> fail "not a steal-trace/1 file")

(* ---------- trace -> serial steal spec ---------- *)

let to_spec t program =
  let eng = Engine.create ~record:true () in
  match Engine.run_result eng (fun ctx -> ignore (program ctx)) with
  | Error f ->
      Error
        (Printf.sprintf "trace profiling replay failed: %s" (Fault.to_string f))
  | Ok () -> (
      match Engine.dag eng with
      | None -> Error "trace profiling replay recorded no dag"
      | Some dag ->
          (* User path of every user frame, from the creation-ordered
             frame log (a frame's parent always precedes it). *)
          let paths : (int, int list) Hashtbl.t = Hashtbl.create 64 in
          let next_ord : (int, int) Hashtbl.t = Hashtbl.create 64 in
          List.iter
            (fun (fid, parent, _spawned, kind) ->
              if kind = Tool.User_fn then
                if parent = -1 then Hashtbl.replace paths fid []
                else
                  match Hashtbl.find_opt paths parent with
                  | None -> () (* parent is auxiliary: not a user path *)
                  | Some pp ->
                      let ord =
                        Option.value ~default:0 (Hashtbl.find_opt next_ord parent)
                      in
                      Hashtbl.replace next_ord parent (ord + 1);
                      Hashtbl.replace paths fid (pp @ [ ord ]))
            (Engine.frames eng);
          (* Map (spawning frame path, per-frame spawn ordinal) to the
             global spawn index, from the spawn log (already in spawn-index
             order) and the dag's strand->frame attribution. *)
          let spawn_ord : (int, int) Hashtbl.t = Hashtbl.create 64 in
          let index : (int list * int, int) Hashtbl.t = Hashtbl.create 64 in
          List.iter
            (fun (spawn_index, spawn_strand, _cont) ->
              let frame = (Dag.strand dag spawn_strand).Dag.frame in
              let ord =
                Option.value ~default:0 (Hashtbl.find_opt spawn_ord frame)
              in
              Hashtbl.replace spawn_ord frame (ord + 1);
              match Hashtbl.find_opt paths frame with
              | None -> ()
              | Some p -> Hashtbl.replace index (p, ord) spawn_index)
            (Engine.spawn_log eng);
          let rec resolve acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> (
                match Hashtbl.find_opt index (e.e_path, e.e_ord) with
                | Some si -> resolve (si :: acc) rest
                | None ->
                    Error
                      (Printf.sprintf
                         "trace entry (path %s, spawn %d) has no serial \
                          counterpart: trace is not from this program"
                         (path_to_string e.e_path) e.e_ord))
          in
          Result.map
            (fun indices ->
              Steal_spec.with_name
                (Steal_spec.by_spawn_index ~policy:Steal_spec.Reduce_at_sync
                   indices)
                (Printf.sprintf "online-trace(seed=%d,density=%g,steals=%d)"
                   t.seed t.density (List.length indices)))
            (resolve [] t.entries))
