module Dynarr = Rader_support.Dynarr
module Dot = Rader_support.Dot

type strand_kind = User | Update | Reduce | Identity

type strand = {
  id : int;
  frame : int;
  kind : strand_kind;
  view : int;
  label : string;
}

type t = {
  strands : strand Dynarr.t;
  succ : int list Dynarr.t;
  pred : int list Dynarr.t;
}

let create () =
  { strands = Dynarr.create (); succ = Dynarr.create (); pred = Dynarr.create () }

let add_strand t ~frame ~kind ~view ~label =
  let id = Dynarr.length t.strands in
  Dynarr.push t.strands { id; frame; kind; view; label };
  Dynarr.push t.succ [];
  Dynarr.push t.pred [];
  id

let n_strands t = Dynarr.length t.strands

let check_strand t i =
  if i < 0 || i >= n_strands t then invalid_arg "Dag: unknown strand"

let add_edge t u v =
  check_strand t u;
  check_strand t v;
  if u >= v then invalid_arg "Dag.add_edge: edges must follow serial order (u < v)";
  Dynarr.set t.succ u (v :: Dynarr.get t.succ u);
  Dynarr.set t.pred v (u :: Dynarr.get t.pred v)

let strand t i =
  check_strand t i;
  Dynarr.get t.strands i

let succs t i =
  check_strand t i;
  Dynarr.get t.succ i

let preds t i =
  check_strand t i;
  Dynarr.get t.pred i

let is_view_aware = function
  | User -> false
  | Update | Reduce | Identity -> true

let kind_str = function
  | User -> "user"
  | Update -> "update"
  | Reduce -> "reduce"
  | Identity -> "identity"

(* A small palette cycled by view id, for Fig.-5-style rendering. *)
let view_color view =
  if view < 0 then "white"
  else
    let palette =
      [| "lightblue"; "lightsalmon"; "palegreen"; "plum"; "khaki"; "lightcyan"; "mistyrose" |]
    in
    palette.(view mod Array.length palette)

let to_dot t =
  let g = Dot.create "computation" in
  let by_frame = Hashtbl.create 16 in
  for i = 0 to n_strands t - 1 do
    let s = strand t i in
    let id = Printf.sprintf "s%d" i in
    Dot.node g id
      ~label:(Printf.sprintf "%d:%s" i s.label)
      ~attrs:
        [
          ("shape", if is_view_aware s.kind then "box" else "ellipse");
          ("style", "\"filled\"");
          ("fillcolor", Printf.sprintf "\"%s\"" (view_color s.view));
          ("tooltip", Printf.sprintf "\"%s view=%d\"" (kind_str s.kind) s.view);
        ];
    if s.frame >= 0 then begin
      let prev = try Hashtbl.find by_frame s.frame with Not_found -> [] in
      Hashtbl.replace by_frame s.frame (id :: prev)
    end
  done;
  Hashtbl.iter
    (fun frame ids ->
      Dot.subgraph_cluster g (string_of_int frame)
        ~label:(Printf.sprintf "F%d" frame)
        (List.rev ids))
    by_frame;
  for i = 0 to n_strands t - 1 do
    List.iter
      (fun j -> Dot.edge g (Printf.sprintf "s%d" i) (Printf.sprintf "s%d" j) ~attrs:[])
      (succs t i)
  done;
  Dot.render g
