lib/core/report.ml: Hashtbl List Printf
