lib/benchsuite/bench_def.ml: Char Rader_runtime String
