lib/core/trace.mli: Rader_dag Rader_runtime
