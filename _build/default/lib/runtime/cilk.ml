type ctx = Engine.ctx

type 'a future = 'a Engine.future

let spawn = Engine.spawn
let get = Engine.get
let sync = Engine.sync
let call = Engine.call
let parallel_for = Engine.parallel_for

let exec ?tool ?spec ?record main =
  let eng = Engine.create ?tool ?spec ?record () in
  let v = Engine.run eng main in
  (v, eng)
