(** The SP+ detector's hot path, defunctionalized.

    Owns the per-event state of the SP+ algorithm — the precedence core
    ({!Rader_reach.Reach.Sp}, run with [lazy_note]), the reader/writer
    shadow spaces and the frame-kind stack — so the [Tool] variant can
    dispatch into it with a single match and no closures. Everything cold
    (report records, labels, strand ids) lives with the policy wrapper
    ([Rader_core.Sp_plus]), which installs {!set_on_race}; the callback
    carries raw ints/bools only.

    Verdict-identical to the seed's closure-record SP+ detector: the
    classification algebra is unchanged, [lazy_note] only skips set work
    for frames that are never classified, and the two-slot classify memo
    is invalidated at every structural event (the SP relation is constant
    between them). *)

type t

(** Fired once per detected race, in detection order. [pv]/[cur] are the
    recorded and current view ids; they are meaningful only when
    [view_aware] is true (the race is then a cross-view one). *)
type on_race =
  loc:int ->
  first_frame:int ->
  first_is_write:bool ->
  second_frame:int ->
  second_is_write:bool ->
  view_aware:bool ->
  pv:int ->
  cur:int ->
  unit

val create : ?backend:Rader_reach.Reach.backend -> unit -> t
val set_on_race : t -> on_race -> unit
val backend : t -> Rader_reach.Reach.backend

(** Empty every arena but keep grown storage (pairs with [Engine.reset]).
    The installed [on_race] is kept. *)
val reset : t -> unit

val frame_enter : t -> frame:int -> kind:Frame_kind.t -> unit
val frame_return : t -> frame:int -> spawned:bool -> unit
val sync : t -> frame:int -> unit
val steal : t -> frame:int -> region:int -> unit
val reduce : t -> frame:int -> unit
val read : t -> frame:int -> loc:int -> view_aware:bool -> unit
val write : t -> frame:int -> loc:int -> view_aware:bool -> unit

(** [read_span t ~frame ~base ~len ~stride ~view_aware] processes the
    access run [base, base+stride, …] (length [len]) exactly as [len]
    consecutive {!read}s — one tool dispatch, one tight loop, and (via
    the memo) typically one reachability query for the whole span. *)
val read_span :
  t -> frame:int -> base:int -> len:int -> stride:int -> view_aware:bool -> unit

val write_span :
  t -> frame:int -> base:int -> len:int -> stride:int -> view_aware:bool -> unit
