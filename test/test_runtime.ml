(* Tests for the Cilk engine: DSL semantics, Cilk-discipline enforcement,
   region/view management under steal specifications, reducers, dag
   recording, and the instrumented memory primitives. *)

open Rader_runtime
module Dag = Rader_dag.Dag
module Reach = Rader_dag.Reach

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let expect_cilk_error f =
  match f () with
  | _ -> Alcotest.fail "expected Cilk_error"
  | exception Engine.Cilk_error _ -> ()

(* ---------- DSL basics ---------- *)

let test_spawn_sync_get () =
  let v, _ =
    Cilk.exec (fun ctx ->
        let f1 = Cilk.spawn ctx (fun _ -> 20) in
        let f2 = Cilk.spawn ctx (fun _ -> 22) in
        Cilk.sync ctx;
        Cilk.get ctx f1 + Cilk.get ctx f2)
  in
  check "spawn results" 42 v

let test_call_returns_directly () =
  let v, _ = Cilk.exec (fun ctx -> Cilk.call ctx (fun _ -> 7) + 1) in
  check "call" 8 v

let test_nested_spawns () =
  let rec tree ctx depth =
    if depth = 0 then 1
    else begin
      let l = Cilk.spawn ctx (fun ctx -> tree ctx (depth - 1)) in
      let r = Cilk.call ctx (fun ctx -> tree ctx (depth - 1)) in
      Cilk.sync ctx;
      Cilk.get ctx l + r
    end
  in
  let v, eng = Cilk.exec (fun ctx -> tree ctx 5) in
  check "2^5 leaves" 32 v;
  checkb "spawn count" true ((Engine.stats eng).Engine.n_spawns = 31)

let test_get_before_sync_raises () =
  expect_cilk_error (fun () ->
      Cilk.exec (fun ctx ->
          let f = Cilk.spawn ctx (fun _ -> 1) in
          Cilk.get ctx f))

let test_get_wrong_frame_raises () =
  expect_cilk_error (fun () ->
      Cilk.exec (fun ctx ->
          let f = Cilk.spawn ctx (fun _ -> 1) in
          Cilk.sync ctx;
          Cilk.call ctx (fun inner -> Cilk.get inner f)))

let test_get_after_later_sync_ok () =
  let v, _ =
    Cilk.exec (fun ctx ->
        let f = Cilk.spawn ctx (fun _ -> 5) in
        Cilk.sync ctx;
        let g = Cilk.spawn ctx (fun _ -> 6) in
        Cilk.sync ctx;
        Cilk.get ctx f + Cilk.get ctx g)
  in
  check "both futures" 11 v

let test_implicit_sync_at_return () =
  (* A child that spawns without syncing: the implicit sync must still
     make the child's effects complete before the parent continues. *)
  let v, _ =
    Cilk.exec (fun ctx ->
        let eng = Engine.engine ctx in
        let c = Cell.make eng 0 in
        Cilk.call ctx (fun ctx ->
            ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 9)));
        Cell.read ctx c)
  in
  check "implicit sync" 9 v

let test_parallel_for_sum () =
  let v, _ =
    Cilk.exec (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        Cilk.parallel_for ctx ~lo:0 ~hi:100 (fun ctx i -> Rmonoid.add ctx r i);
        Cilk.sync ctx;
        Rmonoid.int_cell_value ctx r)
  in
  check "sum 0..99" 4950 v

let test_parallel_for_empty_and_grain () =
  let v, _ =
    Cilk.exec (fun ctx ->
        Cilk.parallel_for ctx ~lo:5 ~hi:5 (fun _ _ -> Alcotest.fail "ran");
        let r = Rmonoid.new_int_add ctx ~init:0 in
        Cilk.parallel_for ~grain:7 ctx ~lo:0 ~hi:50 (fun ctx i -> Rmonoid.add ctx r i);
        Cilk.sync ctx;
        Rmonoid.int_cell_value ctx r)
  in
  check "grain sum" 1225 v

let test_engine_single_use () =
  let eng = Engine.create () in
  ignore (Engine.run eng (fun _ -> ()));
  expect_cilk_error (fun () -> Engine.run eng (fun _ -> ()))

let test_ctx_escape_detected () =
  expect_cilk_error (fun () ->
      Cilk.exec (fun ctx ->
          let stolen = ref None in
          Cilk.call ctx (fun inner -> stolen := Some inner);
          match !stolen with
          | Some inner -> ignore (Cilk.spawn inner (fun _ -> ()))
          | None -> ()))

(* ---------- Cilk discipline in view-aware code ---------- *)

let test_no_spawn_in_update () =
  expect_cilk_error (fun () ->
      Cilk.exec (fun ctx ->
          let r = Rmonoid.new_int_add ctx ~init:0 in
          Reducer.update ctx r (fun c v ->
              ignore (Cilk.spawn c (fun _ -> ()));
              v)))

let test_no_sync_in_update () =
  expect_cilk_error (fun () ->
      Cilk.exec (fun ctx ->
          let r = Rmonoid.new_int_add ctx ~init:0 in
          Reducer.update ctx r (fun c v ->
              Cilk.sync c;
              v)))

let test_no_reducer_read_in_update () =
  expect_cilk_error (fun () ->
      Cilk.exec (fun ctx ->
          let r = Rmonoid.new_int_add ctx ~init:0 in
          Reducer.update ctx r (fun c v -> ignore (Reducer.get_value c r); v)))

(* ---------- Regions and views under steal specs ---------- *)

let test_regions_no_steals () =
  ignore
    (Cilk.exec (fun ctx ->
         let r0 = Engine.current_region ctx in
         check "root region" 0 r0;
         ignore
           (Cilk.spawn ctx (fun ctx ->
                check "child inherits" 0 (Engine.current_region ctx)));
         check "still 0" 0 (Engine.current_region ctx);
         Cilk.sync ctx;
         check "after sync 0" 0 (Engine.current_region ctx)))

let test_regions_steal_and_restore () =
  ignore
    (Cilk.exec ~spec:(Steal_spec.all ()) (fun ctx ->
         ignore (Cilk.spawn ctx (fun _ -> ()));
         let r1 = Engine.current_region ctx in
         checkb "stolen continuation gets fresh region" true (r1 <> 0);
         ignore
           (Cilk.spawn ctx (fun ctx ->
                check "child inherits stolen region" r1 (Engine.current_region ctx)));
         let r2 = Engine.current_region ctx in
         checkb "second steal fresh" true (r2 <> r1 && r2 <> 0);
         Cilk.sync ctx;
         (* view invariant 3: the sync strand sees the function's initial view *)
         check "sync restores base region" 0 (Engine.current_region ctx)))

let test_steal_counts () =
  let _, eng =
    Cilk.exec ~spec:(Steal_spec.all ()) (fun ctx ->
        Cilk.parallel_for ctx ~lo:0 ~hi:16 (fun _ _ -> ()))
  in
  let s = Engine.stats eng in
  check "every continuation stolen" s.Engine.n_spawns s.Engine.n_steals

let test_reduce_only_when_views_exist () =
  (* Without reducers, merges emit reduce events but run no user Reduce. *)
  let _, eng =
    Cilk.exec ~spec:(Steal_spec.all ()) (fun ctx ->
        ignore (Cilk.spawn ctx (fun _ -> ()));
        ignore (Cilk.spawn ctx (fun _ -> ()));
        Cilk.sync ctx)
  in
  check "no reduce calls" 0 (Engine.stats eng).Engine.n_reduce_calls

let test_identity_created_lazily () =
  let _, eng =
    Cilk.exec ~spec:(Steal_spec.all ()) (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 1));
        (* continuation stolen: this update must create an identity view *)
        Rmonoid.add ctx r 2;
        Cilk.sync ctx;
        check "total" 3 (Rmonoid.int_cell_value ctx r))
  in
  checkb "at least one reduce" true ((Engine.stats eng).Engine.n_reduce_calls >= 1)

let specs_to_try =
  [
    ("none", Steal_spec.none);
    ("all-eager", Steal_spec.all ());
    ("all-at-sync", Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ());
    ("random", Steal_spec.random ~seed:99 ~density:0.5 ());
    ("local13", Steal_spec.at_local_indices [ 1; 3 ]);
    ("depth1", Steal_spec.at_depth 1);
    ( "schedule",
      Steal_spec.at_local_indices
        ~policy:(Steal_spec.Reduce_schedule (fun k -> if k mod 2 = 0 then 1 else 0))
        [ 1; 2; 3; 4 ] );
  ]

let test_reducer_value_deterministic_across_specs () =
  let program ctx =
    let r = Rmonoid.new_int_add ctx ~init:100 in
    let rec go ctx n =
      if n = 0 then Rmonoid.add ctx r 1
      else begin
        ignore (Cilk.spawn ctx (fun ctx -> go ctx (n - 1)));
        ignore (Cilk.spawn ctx (fun ctx -> go ctx (n - 1)));
        Cilk.sync ctx;
        Rmonoid.add ctx r n
      end
    in
    go ctx 4;
    Rmonoid.int_cell_value ctx r
  in
  let expected, _ = Cilk.exec program in
  List.iter
    (fun (name, spec) ->
      let v, _ = Cilk.exec ~spec program in
      Alcotest.(check int) (Printf.sprintf "deterministic under %s" name) expected v)
    specs_to_try

let test_mylist_order_preserved_across_specs () =
  let program ctx =
    let r = Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx) in
    Cilk.parallel_for ctx ~lo:0 ~hi:20 (fun ctx i ->
        Reducer.update ctx r (fun c l ->
            Mylist.insert c l i;
            l));
    Cilk.sync ctx;
    Mylist.to_list ctx (Reducer.get_value ctx r)
  in
  let expected = List.init 20 Fun.id in
  List.iter
    (fun (name, spec) ->
      let v, _ = Cilk.exec ~spec program in
      Alcotest.(check (list int)) (Printf.sprintf "order under %s" name) expected v)
    specs_to_try

let test_single_view_after_sync () =
  List.iter
    (fun (name, spec) ->
      ignore
        (Cilk.exec ~spec (fun ctx ->
             let r = Rmonoid.new_int_add ctx ~init:0 in
             Cilk.parallel_for ctx ~lo:0 ~hi:12 (fun ctx _ -> Rmonoid.add ctx r 1);
             Cilk.sync ctx;
             Alcotest.(check int)
               (Printf.sprintf "one view after sync (%s)" name)
               1 (Reducer.n_views r))))
    specs_to_try

let test_set_value_resets () =
  let v, _ =
    Cilk.exec (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:5 in
        Rmonoid.add ctx r 3;
        Reducer.set_value ctx r (Cell.make_in ctx 100);
        Rmonoid.add ctx r 1;
        Rmonoid.int_cell_value ctx r)
  in
  check "reset" 101 v

(* ---------- Mylist ---------- *)

let test_mylist_ops () =
  ignore
    (Cilk.exec (fun ctx ->
         let l = Mylist.empty ctx in
         Alcotest.(check int) "empty scan" 0 (Mylist.scan ctx l);
         List.iter (Mylist.insert ctx l) [ 1; 2; 3 ];
         Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Mylist.to_list ctx l);
         Alcotest.(check int) "scan" 3 (Mylist.scan ctx l);
         let m = Mylist.empty ctx in
         List.iter (Mylist.insert ctx m) [ 4; 5 ];
         let c = Mylist.concat ctx l m in
         Alcotest.(check (list int)) "concat" [ 1; 2; 3; 4; 5 ] (Mylist.to_list ctx c);
         let deep = Mylist.deep_copy ctx c in
         Mylist.insert ctx deep 6;
         Alcotest.(check int) "deep copy independent" 5 (Mylist.scan ctx c);
         let shallow = Mylist.shallow_copy ctx c in
         Mylist.insert ctx shallow 7;
         (* the shallow copy shares nodes: the original now sees 7 *)
         Alcotest.(check int) "shallow copy shares nodes" 6 (Mylist.scan ctx c);
         Alcotest.(check (list int)) "peek" [ 1; 2; 3; 4; 5; 7 ] (Mylist.peek_list c)))

let test_mylist_concat_empty_cases () =
  ignore
    (Cilk.exec (fun ctx ->
         let a = Mylist.empty ctx in
         let b = Mylist.empty ctx in
         ignore (Mylist.concat ctx a b);
         Alcotest.(check int) "empty++empty" 0 (Mylist.scan ctx a);
         let c = Mylist.empty ctx in
         Mylist.insert ctx c 1;
         ignore (Mylist.concat ctx a c);
         Alcotest.(check (list int)) "empty++[1]" [ 1 ] (Mylist.to_list ctx a);
         let d = Mylist.empty ctx in
         ignore (Mylist.concat ctx a d);
         Alcotest.(check (list int)) "[1]++empty" [ 1 ] (Mylist.to_list ctx a)))

(* ---------- ostream / min / max reducers ---------- *)

let test_ostream_order () =
  List.iter
    (fun (name, spec) ->
      let v, _ =
        Cilk.exec ~spec (fun ctx ->
            let out =
              Reducer.create ctx Rmonoid.ostream
                ~init:(Cell.make_in ctx (Buffer.create 16))
            in
            Cilk.parallel_for ctx ~lo:0 ~hi:10 (fun ctx i ->
                Rmonoid.ostream_emit ctx out (string_of_int i));
            Cilk.sync ctx;
            Buffer.contents (Cell.read ctx (Reducer.get_value ctx out)))
      in
      Alcotest.(check string) (Printf.sprintf "ostream order (%s)" name) "0123456789" v)
    specs_to_try

let test_min_max_reducers () =
  let v, _ =
    Cilk.exec ~spec:(Steal_spec.all ()) (fun ctx ->
        let mx = Rmonoid.new_int_max ctx ~init:min_int in
        let mn =
          Reducer.create ctx Rmonoid.int_min_cell ~init:(Cell.make_in ctx max_int)
        in
        Cilk.parallel_for ctx ~lo:0 ~hi:30 (fun ctx i ->
            Rmonoid.maximize ctx mx ((i * 7) mod 13);
            Reducer.update ctx mn (fun c cell ->
                let v = Cell.read c cell in
                let x = (i * 5) mod 11 in
                if x < v then Cell.write c cell x;
                cell));
        Cilk.sync ctx;
        (Rmonoid.int_cell_value ctx mx * 100) + Rmonoid.int_cell_value ctx mn)
  in
  check "max=12 min=0" 1200 v

(* ---------- Rvec ---------- *)

let test_rvec_basic () =
  ignore
    (Cilk.exec (fun ctx ->
         let v = Rvec.create ctx () in
         Alcotest.(check int) "empty" 0 (Rvec.length ctx v);
         for i = 0 to 99 do
           Rvec.push ctx v (i * 2)
         done;
         Alcotest.(check int) "length" 100 (Rvec.length ctx v);
         Alcotest.(check int) "get" 14 (Rvec.get ctx v 7);
         Rvec.set ctx v 7 (-1);
         Alcotest.(check int) "set" (-1) (Rvec.get ctx v 7);
         Alcotest.check_raises "oob" (Invalid_argument "Rvec: index 100 out of bounds [0,100)")
           (fun () -> ignore (Rvec.get ctx v 100));
         let w = Rvec.create ctx () in
         Rvec.push ctx w 1000;
         Rvec.append_into ctx ~dst:v ~src:w;
         Alcotest.(check int) "appended" 101 (Rvec.length ctx v);
         Alcotest.(check int) "last" 1000 (Rvec.get ctx v 100)))

let test_rvec_reducer_across_specs () =
  let program ctx =
    let r = Reducer.create ctx (Rvec.monoid ()) ~init:(Rvec.create ctx ()) in
    Cilk.parallel_for ctx ~lo:0 ~hi:25 (fun ctx i ->
        Reducer.update ctx r (fun c v ->
            Rvec.push c v i;
            v));
    Cilk.sync ctx;
    Rvec.to_list ctx (Reducer.get_value ctx r)
  in
  let expected = List.init 25 Fun.id in
  List.iter
    (fun (name, spec) ->
      let got, _ = Cilk.exec ~spec program in
      Alcotest.(check (list int)) ("rvec order under " ^ name) expected got)
    specs_to_try

let test_rvec_accesses_instrumented () =
  let _, eng =
    Cilk.exec (fun ctx ->
        let v = Rvec.create ctx () in
        Rvec.push ctx v 1;
        ignore (Rvec.get ctx v 0))
  in
  let s = Engine.stats eng in
  (* push: len read + slot write + len write; get: len read + slot read *)
  check "reads" 3 s.Engine.n_reads;
  check "writes" 2 s.Engine.n_writes

(* ---------- Rhashtbl ---------- *)

let test_rhashtbl_basic () =
  ignore
    (Cilk.exec (fun ctx ->
         let h = Rhashtbl.create ctx ~buckets:7 () in
         Rhashtbl.add ctx h "a" 1 ~combine:( + );
         Rhashtbl.add ctx h "b" 2 ~combine:( + );
         Rhashtbl.add ctx h "a" 10 ~combine:( + );
         Alcotest.(check int) "size counts keys" 2 (Rhashtbl.size ctx h);
         Alcotest.(check (option int)) "combined" (Some 11) (Rhashtbl.find ctx h "a");
         Alcotest.(check (option int)) "other" (Some 2) (Rhashtbl.find ctx h "b");
         Alcotest.(check (option int)) "absent" None (Rhashtbl.find ctx h "z");
         Alcotest.(check (list (pair string int)))
           "bindings sorted" [ ("a", 11); ("b", 2) ] (Rhashtbl.bindings ctx h);
         let g = Rhashtbl.create ctx ~buckets:3 () in
         Rhashtbl.add ctx g "b" 5 ~combine:( + );
         Rhashtbl.add ctx g "c" 7 ~combine:( + );
         Rhashtbl.merge_into ctx ~dst:h ~src:g ~combine:( + );
         Alcotest.(check (list (pair string int)))
           "merged" [ ("a", 11); ("b", 7); ("c", 7) ] (Rhashtbl.bindings ctx h)))

let test_rhashtbl_reducer_across_specs () =
  let words = [| "a"; "b"; "a"; "c"; "b"; "a"; "d"; "a" |] in
  let program ctx =
    let r =
      Reducer.create ctx
        (Rhashtbl.monoid ~buckets:5 ~combine:( + ) ())
        ~init:(Rhashtbl.create ctx ~buckets:5 ())
    in
    Cilk.parallel_for ctx ~lo:0 ~hi:(Array.length words) (fun ctx i ->
        Reducer.update ctx r (fun c h ->
            Rhashtbl.add c h words.(i) 1 ~combine:( + );
            h));
    Cilk.sync ctx;
    Rhashtbl.bindings ctx (Reducer.get_value ctx r)
  in
  let expected = [ ("a", 4); ("b", 2); ("c", 1); ("d", 1) ] in
  List.iter
    (fun (name, spec) ->
      let got, _ = Cilk.exec ~spec program in
      Alcotest.(check (list (pair string int))) ("counts under " ^ name) expected got)
    specs_to_try

(* ---------- Cells, arrays, labels ---------- *)

let test_cell_rarray_basic () =
  let v, eng =
    Cilk.exec (fun ctx ->
        let eng = Engine.engine ctx in
        let c = Cell.make eng ~label:"counter" 10 in
        Cell.write ctx c (Cell.read ctx c + 5);
        let a = Rarray.init eng ~label:"sq" 10 (fun i -> i * i) in
        Rarray.write ctx a 3 (-1);
        Cell.read ctx c + Rarray.read ctx a 3 + Rarray.read ctx a 4)
  in
  check "value" 30 v;
  let s = Engine.stats eng in
  (* read-modify-write of c, then c + a.(3) + a.(4) *)
  check "reads" 4 s.Engine.n_reads;
  check "writes" 2 s.Engine.n_writes

let test_loc_labels () =
  let eng = Engine.create () in
  let _ =
    Engine.run eng (fun ctx ->
        let e = Engine.engine ctx in
        let c = Cell.make e ~label:"mycell" 0 in
        let a = Rarray.make e ~label:"myarr" 5 0 in
        Alcotest.(check string) "cell label" "mycell" (Engine.loc_label e (Cell.loc c));
        Alcotest.(check string) "array label" "myarr[2]" (Engine.loc_label e (Rarray.loc a 2)))
  in
  Alcotest.(check string) "unknown" "?" (Engine.loc_label eng 999)

let test_peek_poke_untracked () =
  let _, eng =
    Cilk.exec (fun ctx ->
        let c = Cell.make_in ctx 1 in
        Cell.poke c 2;
        Alcotest.(check int) "poke/peek" 2 (Cell.peek c))
  in
  check "no instrumented accesses" 0 (Engine.stats eng).Engine.n_reads

(* ---------- Dag recording ---------- *)

let diamond ctx =
  let f = Cilk.spawn ctx (fun _ -> 1) in
  let g = Cilk.spawn ctx (fun _ -> 2) in
  Cilk.sync ctx;
  Cilk.get ctx f + Cilk.get ctx g

let test_dag_recorded_structure () =
  let v, eng = Cilk.exec ~record:true diamond in
  check "result" 3 v;
  let dag = Option.get (Engine.dag eng) in
  check "strand ids = dag size" (Engine.stats eng).Engine.n_strands (Dag.n_strands dag);
  let n = Dag.n_strands dag in
  (* single source, single sink *)
  let sources = ref 0 and sinks = ref 0 in
  for i = 0 to n - 1 do
    if Dag.preds dag i = [] then incr sources;
    if Dag.succs dag i = [] then incr sinks
  done;
  check "one source" 1 !sources;
  check "one sink" 1 !sinks;
  let reach = Reach.compute dag in
  checkb "source precedes all" true
    (List.for_all
       (fun i -> Reach.precedes reach 0 i)
       (List.init (n - 1) (fun i -> i + 1)))

let test_dag_children_parallel () =
  let _, eng = Cilk.exec ~record:true diamond in
  let dag = Option.get (Engine.dag eng) in
  let reach = Reach.compute dag in
  (* find the two children's first strands by frame id *)
  let first_of_frame f =
    let rec go i = if (Dag.strand dag i).Dag.frame = f then i else go (i + 1) in
    go 0
  in
  let c1 = first_of_frame 1 and c2 = first_of_frame 2 in
  checkb "children parallel" true (Reach.parallel reach c1 c2)

let test_performance_dag_reduce_strands () =
  let program ctx =
    let r = Rmonoid.new_int_add ctx ~init:0 in
    Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx _ -> Rmonoid.add ctx r 1);
    Cilk.sync ctx;
    Rmonoid.int_cell_value ctx r
  in
  let _, eng = Cilk.exec ~spec:(Steal_spec.all ()) ~record:true program in
  let dag = Option.get (Engine.dag eng) in
  let kinds = Hashtbl.create 4 in
  for i = 0 to Dag.n_strands dag - 1 do
    let k = (Dag.strand dag i).Dag.kind in
    Hashtbl.replace kinds k (1 + try Hashtbl.find kinds k with Not_found -> 0)
  done;
  checkb "has reduce strands" true (Hashtbl.mem kinds Dag.Reduce);
  checkb "has update strands" true (Hashtbl.mem kinds Dag.Update);
  checkb "has identity strands" true (Hashtbl.mem kinds Dag.Identity);
  check "reduce strands = reduce calls"
    (Engine.stats eng).Engine.n_reduce_calls
    (Hashtbl.find kinds Dag.Reduce);
  (* merges recorded, timestamps nondecreasing *)
  let merges = Engine.merges eng in
  checkb "merges logged" true (List.length merges > 0);
  let rec sorted = function
    | a :: (b :: _ as tl) -> a.Engine.m_at <= b.Engine.m_at && sorted tl
    | _ -> true
  in
  checkb "merge log ordered" true (sorted merges)

let test_spawn_log () =
  let _, eng = Cilk.exec ~record:true diamond in
  let log = Engine.spawn_log eng in
  check "two spawns logged" 2 (List.length log);
  let dag = Option.get (Engine.dag eng) in
  let reach = Reach.compute dag in
  List.iter
    (fun (_, spawn_strand, cont_strand) ->
      checkb "spawn precedes continuation" true
        (Reach.precedes reach spawn_strand cont_strand))
    log

let test_access_log () =
  let _, eng =
    Cilk.exec ~record:true (fun ctx ->
        let c = Cell.make_in ctx 0 in
        Cell.write ctx c 1;
        ignore (Cell.read ctx c))
  in
  match Engine.accesses eng with
  | [ w; r ] ->
      checkb "write first" true w.Engine.a_is_write;
      checkb "read second" false r.Engine.a_is_write;
      check "same loc" w.Engine.a_loc r.Engine.a_loc;
      checkb "view oblivious" false (w.Engine.a_view_aware || r.Engine.a_view_aware)
  | l -> Alcotest.failf "expected 2 accesses, got %d" (List.length l)

let test_view_aware_accesses_flagged () =
  let _, eng =
    Cilk.exec ~record:true (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        Rmonoid.add ctx r 1)
  in
  checkb "update accesses are view-aware" true
    (List.exists (fun a -> a.Engine.a_view_aware) (Engine.accesses eng))

(* ---------- Steal_spec unit behaviour ---------- *)

let test_spec_merge_clamping () =
  let spec =
    Steal_spec.at_local_indices ~policy:(Steal_spec.Reduce_schedule (fun _ -> 99)) [ 1 ]
  in
  check "clamped" 2 (Steal_spec.merges_before_steal spec ~steal_ordinal:1 ~n_open:3);
  check "zero floor" 0
    (Steal_spec.merges_before_steal
       (Steal_spec.at_local_indices
          ~policy:(Steal_spec.Reduce_schedule (fun _ -> -5))
          [ 1 ])
       ~steal_ordinal:1 ~n_open:3);
  check "eager merges all" 3
    (Steal_spec.merges_before_steal (Steal_spec.all ()) ~steal_ordinal:2 ~n_open:4);
  check "at-sync holds" 0
    (Steal_spec.merges_before_steal
       (Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ())
       ~steal_ordinal:2 ~n_open:4)

let test_spec_random_stable () =
  let spec = Steal_spec.random ~seed:3 ~density:0.5 () in
  let info i =
    { Steal_spec.spawn_index = i; frame = 0; depth = 0; local_index = 1; sync_block = 0 }
  in
  let a = List.init 50 (fun i -> spec.Steal_spec.steal (info i)) in
  let b = List.init 50 (fun i -> spec.Steal_spec.steal (info i)) in
  checkb "stateless decisions" true (a = b);
  checkb "mixed decisions" true (List.mem true a && List.mem false a)

(* ---------- Tool.chain identity ---------- *)

(* [Tool.chain] with [null] must return the other tool physically — no
   [Both] wrapper node, no wrapper closures — so hot-path dispatch never
   pays for an inert arm. *)
let test_chain_null_physical_identity () =
  let ext = Tool.extern Tool.hooks_null in
  let sp = Tool.sp_plus (Sp_hot.create ()) in
  let peer = Tool.peer_set (Peer_hot.create ()) in
  List.iter
    (fun t ->
      checkb "chain t null == t" true (Tool.chain t Tool.null == t);
      checkb "chain null t == t" true (Tool.chain Tool.null t == t))
    [ ext; sp; peer; Tool.chain ext sp ];
  checkb "chain null null == null" true
    (Tool.chain Tool.null Tool.null == Tool.null);
  (* the non-degenerate case still builds a real pair *)
  (match Tool.chain ext sp with
  | Tool.Both (a, b) -> checkb "both arms kept" true (a == ext && b == sp)
  | _ -> Alcotest.fail "chain of two live tools must be Both")

let recording_hooks push =
  {
    Tool.on_frame_enter =
      (fun ~frame ~parent ~spawned ~kind ->
        push
          (Printf.sprintf "enter %d %d %b %s" frame parent spawned
             (Tool.frame_kind_name kind)));
    on_frame_return =
      (fun ~frame ~parent ~spawned ~kind ->
        push
          (Printf.sprintf "return %d %d %b %s" frame parent spawned
             (Tool.frame_kind_name kind)));
    on_sync = (fun ~frame -> push (Printf.sprintf "sync %d" frame));
    on_steal =
      (fun ~frame ~region -> push (Printf.sprintf "steal %d %d" frame region));
    on_reduce =
      (fun ~frame ~into_region ~from_region ->
        push (Printf.sprintf "reduce %d %d %d" frame into_region from_region));
    on_read =
      (fun ~frame ~loc ~view_aware ->
        push (Printf.sprintf "read %d %d %b" frame loc view_aware));
    on_write =
      (fun ~frame ~loc ~view_aware ->
        push (Printf.sprintf "write %d %d %b" frame loc view_aware));
    on_reducer_read =
      (fun ~frame ~reducer -> push (Printf.sprintf "rread %d %d" frame reducer));
  }

(* A small program exercising every event class: spawns, syncs, cell
   accesses, reducer updates, and (under the spec below) steals with
   eager reduces — so identity/reduce frames fire too. *)
let chain_stream_prog ctx =
  let eng = Engine.engine ctx in
  let r = Rmonoid.new_int_add ctx ~init:0 in
  let c = Cell.make eng ~label:"c" 0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx i ->
      Rmonoid.add ctx r i;
      Cell.write ctx c (Cell.read ctx c + 1));
  Cilk.sync ctx;
  Rmonoid.int_cell_value ctx r + Cell.read ctx c

let chain_event_stream mk_tool =
  let log = ref [] in
  let push s = log := s :: !log in
  let tool = mk_tool (Tool.extern (recording_hooks push)) in
  let spec =
    Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 1 ]
  in
  let eng = Engine.create ~tool ~spec () in
  let v = Engine.run eng chain_stream_prog in
  (v, List.rev !log)

(* Chaining with [null] must not change what an observer sees: the event
   stream through [chain recorder null] (either side) is the same list of
   events, in the same order, as through the bare recorder. *)
let test_chain_null_event_stream () =
  let v0, base = chain_event_stream (fun t -> t) in
  checkb "stream covers steals" true
    (List.exists (fun s -> String.length s >= 5 && String.sub s 0 5 = "steal") base);
  let v1, right = chain_event_stream (fun t -> Tool.chain t Tool.null) in
  let v2, left = chain_event_stream (fun t -> Tool.chain Tool.null t) in
  check "value (right)" v0 v1;
  check "value (left)" v0 v2;
  Alcotest.(check (list string)) "chain recorder null stream" base right;
  Alcotest.(check (list string)) "chain null recorder stream" base left

let () =
  Alcotest.run "runtime"
    [
      ( "dsl",
        [
          Alcotest.test_case "spawn/sync/get" `Quick test_spawn_sync_get;
          Alcotest.test_case "call" `Quick test_call_returns_directly;
          Alcotest.test_case "nested" `Quick test_nested_spawns;
          Alcotest.test_case "get before sync" `Quick test_get_before_sync_raises;
          Alcotest.test_case "get wrong frame" `Quick test_get_wrong_frame_raises;
          Alcotest.test_case "get after later sync" `Quick test_get_after_later_sync_ok;
          Alcotest.test_case "implicit sync" `Quick test_implicit_sync_at_return;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for_sum;
          Alcotest.test_case "parallel_for edge" `Quick test_parallel_for_empty_and_grain;
          Alcotest.test_case "single use" `Quick test_engine_single_use;
          Alcotest.test_case "ctx escape" `Quick test_ctx_escape_detected;
        ] );
      ( "view-aware discipline",
        [
          Alcotest.test_case "no spawn in update" `Quick test_no_spawn_in_update;
          Alcotest.test_case "no sync in update" `Quick test_no_sync_in_update;
          Alcotest.test_case "no reducer read in update" `Quick
            test_no_reducer_read_in_update;
        ] );
      ( "regions",
        [
          Alcotest.test_case "no steals" `Quick test_regions_no_steals;
          Alcotest.test_case "steal and restore" `Quick test_regions_steal_and_restore;
          Alcotest.test_case "steal counts" `Quick test_steal_counts;
          Alcotest.test_case "no spurious reduces" `Quick test_reduce_only_when_views_exist;
          Alcotest.test_case "lazy identity" `Quick test_identity_created_lazily;
        ] );
      ( "reducers",
        [
          Alcotest.test_case "deterministic across specs" `Quick
            test_reducer_value_deterministic_across_specs;
          Alcotest.test_case "mylist order across specs" `Quick
            test_mylist_order_preserved_across_specs;
          Alcotest.test_case "single view after sync" `Quick test_single_view_after_sync;
          Alcotest.test_case "set_value" `Quick test_set_value_resets;
          Alcotest.test_case "ostream order" `Quick test_ostream_order;
          Alcotest.test_case "min/max" `Quick test_min_max_reducers;
        ] );
      ( "mylist",
        [
          Alcotest.test_case "ops" `Quick test_mylist_ops;
          Alcotest.test_case "concat empties" `Quick test_mylist_concat_empty_cases;
        ] );
      ( "rvec",
        [
          Alcotest.test_case "basic" `Quick test_rvec_basic;
          Alcotest.test_case "reducer across specs" `Quick test_rvec_reducer_across_specs;
          Alcotest.test_case "instrumented" `Quick test_rvec_accesses_instrumented;
        ] );
      ( "rhashtbl",
        [
          Alcotest.test_case "basic" `Quick test_rhashtbl_basic;
          Alcotest.test_case "reducer across specs" `Quick
            test_rhashtbl_reducer_across_specs;
        ] );
      ( "memory",
        [
          Alcotest.test_case "cell/rarray" `Quick test_cell_rarray_basic;
          Alcotest.test_case "labels" `Quick test_loc_labels;
          Alcotest.test_case "peek/poke untracked" `Quick test_peek_poke_untracked;
        ] );
      ( "recording",
        [
          Alcotest.test_case "dag structure" `Quick test_dag_recorded_structure;
          Alcotest.test_case "children parallel" `Quick test_dag_children_parallel;
          Alcotest.test_case "performance dag" `Quick test_performance_dag_reduce_strands;
          Alcotest.test_case "spawn log" `Quick test_spawn_log;
          Alcotest.test_case "access log" `Quick test_access_log;
          Alcotest.test_case "view-aware flags" `Quick test_view_aware_accesses_flagged;
        ] );
      ( "steal_spec",
        [
          Alcotest.test_case "merge clamping" `Quick test_spec_merge_clamping;
          Alcotest.test_case "random stable" `Quick test_spec_random_stable;
        ] );
      ( "tool",
        [
          Alcotest.test_case "chain-null physical identity" `Quick
            test_chain_null_physical_identity;
          Alcotest.test_case "chain-null event stream" `Quick
            test_chain_null_event_stream;
        ] );
    ]
