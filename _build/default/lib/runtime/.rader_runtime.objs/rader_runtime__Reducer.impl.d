lib/runtime/reducer.ml: Engine Hashtbl Tool
