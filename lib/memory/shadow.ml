module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type t = int Dynarr.t

let absent = -1

let create () = Dynarr.create ()

let get t loc =
  if Obs.enabled () then Obs.bump_shadow_lookup ();
  if loc < Dynarr.length t then Dynarr.get t loc else absent

let set t loc v =
  if v < 0 then invalid_arg "Shadow.set: negative value";
  if Obs.enabled () then Obs.bump_shadow_update ();
  Dynarr.ensure t (loc + 1) absent;
  Dynarr.set t loc v

let clear t = Dynarr.clear t
