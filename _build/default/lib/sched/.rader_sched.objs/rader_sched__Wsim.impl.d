lib/sched/wsim.ml: Array List Printf Rader_dag Rader_runtime Rader_support
