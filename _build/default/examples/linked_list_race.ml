(* The paper's Figure 1, end to end.

   update_list wraps a user-defined linked list (MyList) in a reducer so
   that a parallel loop can insert elements concurrently with a spawned
   computation. race() snapshots the list before scanning it in parallel
   with update_list — but the copy constructor only performs a SHALLOW
   copy, so both lists share their nodes, and a Reduce operation that
   appends to the original view writes a next pointer that scan_list reads
   in parallel: a determinacy race on a view-aware strand, invisible to a
   tool that is not reducer-aware.

   Run with: dune exec examples/linked_list_race.exe *)

open Rader_runtime
open Rader_core

(* void update_list(int n, MyList<int>& list) — Figure 1, lines 1-10 *)
let update_list ctx n list =
  Cilk.call ctx (fun ctx ->
      let list_reducer =
        Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx)
      in
      Reducer.set_value ctx list_reducer list;
      let _x = Cilk.spawn ctx (fun ctx -> ignore ctx (* foo(n, list_reducer) *)) in
      Cilk.parallel_for ctx ~lo:0 ~hi:n (fun ctx i ->
          Reducer.update ctx list_reducer (fun c l ->
              Mylist.insert c l i;
              l));
      Cilk.sync ctx;
      Reducer.get_value ctx list_reducer)

(* void race(int n, MyList<int>& list) — Figure 1, lines 12-19 *)
let race ~shallow n ctx =
  let list = Mylist.empty ctx in
  List.iter (Mylist.insert ctx list) [ 10; 20; 30 ];
  let copy = (if shallow then Mylist.shallow_copy else Mylist.deep_copy) ctx list in
  let length = Cilk.spawn ctx (fun ctx -> Mylist.scan ctx list) in
  let _updated = update_list ctx n copy in
  Cilk.sync ctx;
  Cilk.get ctx length

let detect name ~shallow spec =
  let eng = Engine.create ~spec () in
  let detector = Sp_plus.attach eng in
  let scanned = Engine.run eng (race ~shallow 8) in
  Printf.printf "%-34s scan_list saw %d nodes; " name scanned;
  match Sp_plus.races detector with
  | [] -> print_endline "no determinacy races"
  | races ->
      Printf.printf "%d race(s)\n" (List.length races);
      List.iter (fun r -> Printf.printf "    %s\n" (Report.to_string r)) races

let () =
  print_endline "== Figure 1: a determinacy race inside a Reduce ==";
  (* A single serial run elicits no Reduce at all: SP+ needs a steal
     specification to simulate the runtime's view management (§5). *)
  detect "buggy, no steals (not elicited)" ~shallow:true Steal_spec.none;
  (* Steal three continuations per sync block, as Rader does (§8). *)
  detect "buggy, steals {1,2,3}" ~shallow:true
    (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 1; 2; 3 ]);
  detect "fixed (deep copy), same steals" ~shallow:false
    (Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 1; 2; 3 ]);
  (* SP-bags (Cilk-Screen-style, not reducer-aware) cannot be trusted here:
     on the FIXED program it reports races that are not races. *)
  let eng = Engine.create ~spec:(Steal_spec.all ()) () in
  let spbags = Sp_bags.attach eng in
  ignore (Engine.run eng (race ~shallow:false 8));
  Printf.printf
    "SP-bags on the fixed program:      %d false positive(s) — it takes reduce\n\
     strands to be ordinary parallel code; SP+ reports none.\n"
    (List.length (Sp_bags.races spbags))
