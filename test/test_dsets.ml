(* Unit and property tests for the disjoint-set forests and SP-style bags. *)

open Rader_dsets

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- Dset ---------- *)

let test_dset_basic () =
  let t = Dset.create () in
  List.iter (Dset.add t) [ 0; 1; 2; 3; 4 ];
  check "cardinal" 5 (Dset.cardinal t);
  checkb "singletons distinct" false (Dset.same_set t 0 1);
  ignore (Dset.union t 0 1);
  checkb "united" true (Dset.same_set t 0 1);
  ignore (Dset.union t 2 3);
  ignore (Dset.union t 1 2);
  checkb "transitive" true (Dset.same_set t 0 3);
  checkb "separate" false (Dset.same_set t 0 4)

let test_dset_errors () =
  let t = Dset.create () in
  Dset.add t 3;
  Alcotest.check_raises "double add" (Invalid_argument "Dset.add: element already present")
    (fun () -> Dset.add t 3);
  Alcotest.check_raises "negative" (Invalid_argument "Dset.add: negative element")
    (fun () -> Dset.add t (-1));
  Alcotest.check_raises "unknown find" (Invalid_argument "Dset.find: unknown element")
    (fun () -> ignore (Dset.find t 99))

let test_dset_sparse_ids () =
  let t = Dset.create () in
  Dset.add t 100;
  Dset.add t 5;
  checkb "mem 100" true (Dset.mem t 100);
  checkb "not mem 50" false (Dset.mem t 50);
  ignore (Dset.union t 100 5);
  checkb "united sparse" true (Dset.same_set t 5 100)

let test_dset_stress_and_clear () =
  (* volume test for the iterative two-pass find: 100k elements, dense
     random unions, then one sweep stitching everything into a single
     component — every find must terminate and compress without recursion *)
  let n = 100_000 in
  let t = Dset.create () in
  for i = 0 to n - 1 do
    Dset.add t i
  done;
  let seed = ref 123456789 in
  let rand m =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed mod m
  in
  for _ = 1 to n do
    ignore (Dset.union t (rand n) (rand n))
  done;
  for i = 1 to n - 1 do
    ignore (Dset.union t (i - 1) i)
  done;
  let root = Dset.find t 0 in
  for i = 0 to n - 1 do
    if Dset.find t i <> root then Alcotest.failf "element %d not in the component" i
  done;
  check "cardinal" n (Dset.cardinal t);
  Dset.clear t;
  check "cleared" 0 (Dset.cardinal t);
  checkb "elements forgotten" false (Dset.mem t 0);
  Dset.add t 0;
  Dset.add t 1;
  ignore (Dset.union t 0 1);
  checkb "reusable after clear" true (Dset.same_set t 0 1)

let prop_dset_matches_model =
  (* union-find vs naive partition refinement *)
  QCheck2.Test.make ~name:"dset matches naive partition" ~count:200
    QCheck2.Gen.(list (pair (int_bound 19) (int_bound 19)))
    (fun unions ->
      let t = Dset.create () in
      for i = 0 to 19 do
        Dset.add t i
      done;
      let label = Array.init 20 Fun.id in
      let relabel a b =
        let la = label.(a) and lb = label.(b) in
        if la <> lb then
          Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
      in
      List.iter
        (fun (a, b) ->
          ignore (Dset.union t a b);
          relabel a b)
        unions;
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          if Dset.same_set t a b <> (label.(a) = label.(b)) then ok := false
        done
      done;
      !ok)

(* ---------- Bag ---------- *)

let test_bag_make_find () =
  let store = Bag.create_store () in
  let b1 = Bag.make store "one" [ 1; 2 ] in
  let b2 = Bag.make store "two" [ 3 ] in
  let empty = Bag.make store "empty" [] in
  checkb "empty is empty" true (Bag.is_empty empty);
  checkb "b1 not empty" false (Bag.is_empty b1);
  Alcotest.(check string) "payload" "one" (Bag.payload b1);
  (match Bag.find store 2 with
  | Some b -> checkb "find 2 -> b1" true (Bag.same_bag b b1)
  | None -> Alcotest.fail "2 not found");
  (match Bag.find store 3 with
  | Some b -> checkb "find 3 -> b2" true (Bag.same_bag b b2)
  | None -> Alcotest.fail "3 not found");
  Alcotest.(check bool) "unknown" true (Bag.find store 42 = None)

let test_bag_union_preserves_dst_payload () =
  (* The SP+ invariant: union preserves the destination's payload (vid). *)
  let store = Bag.create_store () in
  let dst = Bag.make store 10 [ 1 ] in
  let src = Bag.make store 20 [ 2; 3 ] in
  Bag.union_into store ~dst ~src;
  Alcotest.(check int) "payload kept" 10 (Bag.payload dst);
  checkb "src emptied" true (Bag.is_empty src);
  List.iter
    (fun x ->
      match Bag.find store x with
      | Some b -> checkb (Printf.sprintf "%d in dst" x) true (Bag.same_bag b dst)
      | None -> Alcotest.fail "lost element")
    [ 1; 2; 3 ]

let test_bag_union_into_empty_dst () =
  let store = Bag.create_store () in
  let dst = Bag.make store "d" [] in
  let src = Bag.make store "s" [ 7 ] in
  Bag.union_into store ~dst ~src;
  checkb "dst has 7" true (Bag.mem store dst 7);
  checkb "src empty" true (Bag.is_empty src);
  Alcotest.(check string) "payload kept" "d" (Bag.payload dst)

let test_bag_union_empty_src_noop () =
  let store = Bag.create_store () in
  let dst = Bag.make store "d" [ 1 ] in
  let src = Bag.make store "s" [] in
  Bag.union_into store ~dst ~src;
  checkb "dst unchanged" true (Bag.mem store dst 1);
  checkb "still empty" true (Bag.is_empty src)

let test_bag_reuse_after_empty () =
  (* SP pseudocode constantly does "A ∪= B; B = ∅" then refills B. *)
  let store = Bag.create_store () in
  let a = Bag.make store "a" [ 1 ] in
  let b = Bag.make store "b" [ 2 ] in
  Bag.union_into store ~dst:a ~src:b;
  Bag.add store b 3;
  checkb "b reusable" true (Bag.mem store b 3);
  checkb "3 not in a" false (Bag.mem store a 3);
  checkb "2 in a" true (Bag.mem store a 2)

let test_bag_same_bag_identity () =
  let store = Bag.create_store () in
  let a = Bag.make store 0 [ 1 ] in
  let b = Bag.make store 0 [ 2 ] in
  checkb "same" true (Bag.same_bag a a);
  checkb "different despite equal payload" false (Bag.same_bag a b);
  Alcotest.check_raises "self union" (Invalid_argument "Bag.union_into: dst and src are the same bag")
    (fun () -> Bag.union_into store ~dst:a ~src:a)

let test_bag_set_payload () =
  let store = Bag.create_store () in
  let a = Bag.make store 1 [ 5 ] in
  Bag.set_payload a 9;
  check "updated" 9 (Bag.payload a);
  ignore store

let prop_bag_find_total =
  (* After arbitrary unions, every added element is found in exactly the
     bag it was last moved into, and payloads follow destinations. *)
  QCheck2.Test.make ~name:"bag find total and consistent" ~count:200
    QCheck2.Gen.(list (pair (int_bound 9) (int_bound 9)))
    (fun unions ->
      let store = Bag.create_store () in
      let bags = Array.init 10 (fun i -> Bag.make store i [ i * 2; (i * 2) + 1 ]) in
      (* model: element -> bag index *)
      let owner = Array.init 20 (fun e -> e / 2) in
      List.iter
        (fun (d, s) ->
          if d <> s then begin
            Bag.union_into store ~dst:bags.(d) ~src:bags.(s);
            Array.iteri (fun e o -> if o = s then owner.(e) <- d) owner
          end)
        unions;
      let ok = ref true in
      for e = 0 to 19 do
        match Bag.find store e with
        | Some b -> if not (Bag.same_bag b bags.(owner.(e))) then ok := false
        | None -> ok := false
      done;
      !ok)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "dsets"
    [
      ( "dset",
        [
          Alcotest.test_case "basic" `Quick test_dset_basic;
          Alcotest.test_case "errors" `Quick test_dset_errors;
          Alcotest.test_case "sparse ids" `Quick test_dset_sparse_ids;
          Alcotest.test_case "stress + clear" `Quick test_dset_stress_and_clear;
        ] );
      ( "bag",
        [
          Alcotest.test_case "make/find" `Quick test_bag_make_find;
          Alcotest.test_case "union keeps dst payload" `Quick
            test_bag_union_preserves_dst_payload;
          Alcotest.test_case "union into empty" `Quick test_bag_union_into_empty_dst;
          Alcotest.test_case "union empty src" `Quick test_bag_union_empty_src_noop;
          Alcotest.test_case "reuse after empty" `Quick test_bag_reuse_after_empty;
          Alcotest.test_case "identity" `Quick test_bag_same_bag_identity;
          Alcotest.test_case "set payload" `Quick test_bag_set_payload;
        ] );
      qsuite "properties" [ prop_dset_matches_model; prop_bag_find_total ];
    ]
