(* Tests for §7 coverage: spec-family sizes, profiling, and the guarantee
   that the enumeration elicits schedule-dependent races that single runs
   miss. *)

open Rader_runtime
open Rader_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_profile () =
  let program ctx =
    (* root sync block: 3 spawns; child blocks smaller; depth 2 *)
    ignore (Cilk.spawn ctx (fun ctx -> ignore (Cilk.spawn ctx (fun _ -> ()))));
    ignore (Cilk.spawn ctx (fun _ -> ()));
    ignore (Cilk.spawn ctx (fun _ -> ()));
    Cilk.sync ctx;
    ignore (Cilk.spawn ctx (fun _ -> ()));
    Cilk.sync ctx
  in
  let p = Coverage.profile program in
  check "k = max continuations per block" 3 p.Coverage.k;
  check "d = max spawn depth" 2 p.Coverage.d;
  check "total spawns" 5 p.Coverage.n_spawns

let test_profile_parallel_for () =
  let p = Coverage.profile (fun ctx -> Cilk.parallel_for ctx ~lo:0 ~hi:64 (fun _ _ -> ())) in
  checkb "k small (spawn chain per block)" true (p.Coverage.k >= 1);
  check "spawns = segments - 1" 63 p.Coverage.n_spawns

let count_triples k = k * (k - 1) * (k - 2) / 6

let test_spec_family_sizes () =
  List.iter
    (fun k ->
      let n = List.length (Coverage.specs_for_reductions ~k) in
      (* singles + 2·pairs + triples *)
      let expected = k + (k * (k - 1)) + count_triples k in
      check (Printf.sprintf "reduction specs for k=%d" k) expected n)
    [ 1; 2; 3; 5; 8; 16 ];
  List.iter
    (fun (k, d) ->
      check
        (Printf.sprintf "update specs k=%d d=%d" k d)
        (k + d + 1)
        (List.length (Coverage.specs_for_updates ~k ~d)))
    [ (1, 0); (3, 2); (8, 4) ]

let test_spec_family_cubic_growth () =
  (* Theorem 7: the reduce-eliciting family grows as Θ(k³). *)
  let n k = List.length (Coverage.specs_for_reductions ~k) in
  let n8 = n 8 and n16 = n 16 in
  let ratio = float_of_int n16 /. float_of_int n8 in
  checkb "≈8x from k=8 to k=16" true (ratio > 5.0 && ratio < 9.0)

(* A program with a race that only a specific reduce elicits: the reducer's
   Reduce writes a shared cell read in parallel; with no steals there is no
   reduce at all. *)
let planted_reduce_race ctx =
  let shared = Cell.make_in ctx ~label:"witness" 0 in
  let monoid =
    {
      Reducer.name = "touchy";
      identity = (fun c -> Cell.make_in c 0);
      reduce =
        (fun c l r ->
          Cell.write c shared 1;
          Cell.write c l (Cell.read c l + Cell.read c r);
          l);
    }
  in
  let red = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  let reader = Cilk.spawn ctx (fun ctx -> Cell.read ctx shared) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:0 ~hi:6 (fun ctx _ ->
          Reducer.update ctx red (fun c v ->
              Cell.write c v (Cell.read c v + 1);
              v)));
  Cilk.sync ctx;
  ignore (Cilk.get ctx reader)

let test_no_steal_run_misses_planted_race () =
  let eng = Engine.create () in
  let d = Sp_plus.attach eng in
  ignore (Engine.run eng planted_reduce_race);
  checkb "single serial run misses it" false (Sp_plus.found d)

let test_exhaustive_check_finds_planted_race () =
  let res = Coverage.exhaustive_check planted_reduce_race in
  checkb "coverage finds it" true (List.length res.Coverage.racy_locs > 0);
  checkb "spec family nonempty" true (res.Coverage.n_specs > 1);
  (* some specs found it, the no-steal spec did not *)
  let none_found =
    List.find_map
      (fun ((spec : Steal_spec.t), locs) ->
        if spec.Steal_spec.name = "none" then Some locs else None)
      res.Coverage.per_spec
    |> Option.value ~default:[]
  in
  check "no-steal spec finds nothing" 0 (List.length none_found);
  checkb "some spec finds it" true
    (List.exists (fun (_, locs) -> locs <> []) res.Coverage.per_spec);
  (* the witness spec reproduces the race in a single targeted run *)
  match res.Coverage.racy_locs with
  | loc :: _ -> (
      match Coverage.witness_spec res loc with
      | None -> Alcotest.fail "no witness spec"
      | Some spec ->
          let eng = Engine.create ~spec () in
          let d = Sp_plus.attach eng in
          ignore (Engine.run eng planted_reduce_race);
          checkb "witness reproduces" true (List.mem loc (Sp_plus.racy_locs d)))
  | [] -> Alcotest.fail "expected a racy loc"

let test_exhaustive_check_clean_program () =
  let clean ctx =
    let r = Rmonoid.new_int_add ctx ~init:0 in
    Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx i -> Rmonoid.add ctx r i);
    Cilk.sync ctx;
    ignore (Rmonoid.int_cell_value ctx r)
  in
  let res = Coverage.exhaustive_check clean in
  check "no races anywhere" 0 (List.length res.Coverage.racy_locs)

let test_update_depth_specs_elicit_identities () =
  (* stealing at each continuation position makes updates run on fresh
     views at each position at least once *)
  let program ctx =
    let r = Rmonoid.new_int_add ctx ~init:0 in
    Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx _ -> Rmonoid.add ctx r 1);
    Cilk.sync ctx;
    ignore (Rmonoid.int_cell_value ctx r)
  in
  let prof = Coverage.profile program in
  let specs = Coverage.specs_for_updates ~k:prof.Coverage.k ~d:prof.Coverage.d in
  let identity_seen = ref false in
  List.iter
    (fun spec ->
      let eng = Engine.create ~spec ~record:true () in
      ignore (Engine.run eng program);
      let dag = Option.get (Engine.dag eng) in
      for i = 0 to Rader_dag.Dag.n_strands dag - 1 do
        if (Rader_dag.Dag.strand dag i).Rader_dag.Dag.kind = Rader_dag.Dag.Identity then
          identity_seen := true
      done)
    specs;
  checkb "identity strands elicited" true !identity_seen

(* Regression: deadline consistency (serve daemon prerequisite).

   An expired deadline must cancel an engine run at its very first event —
   not after the first 256-event poll window — so a spec dispatched after
   the sweep deadline passed cannot quietly run to completion and inflate
   the obs summary relative to the serial sweep. *)
let busy_program ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:64 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  ignore (Rmonoid.int_cell_value ctx r)

let test_expired_deadline_stops_at_first_event () =
  (* virtual clock pinned past the deadline: no wall-clock coupling *)
  let eng = Engine.create ~deadline:1.0 ~clock:(fun () -> 2.0) () in
  (match Engine.run_result eng busy_program with
  | Error (Diag.Budget_exceeded (Diag.Deadline _)) -> ()
  | Ok _ -> Alcotest.fail "expired deadline did not cancel the run"
  | Error f -> Alcotest.failf "wrong diagnostic: %s" (Diag.to_string f));
  let s = Engine.stats eng in
  check "no instrumented accesses ran" 0 (s.Engine.n_reads + s.Engine.n_writes);
  checkb "at most the root frame entered" true (s.Engine.n_frames <= 1)

let test_expired_sweep_deadline_consistent_across_jobs () =
  let run jobs =
    Coverage.exhaustive_check ~deadline:(-1.0) ~jobs ~with_obs:true
      busy_program
  in
  let check_one jobs (res : Coverage.result) =
    let tag = Printf.sprintf "jobs=%d: " jobs in
    check (tag ^ "no spec ran") 0 res.Coverage.n_run;
    check
      (tag ^ "every spec charged to the deadline")
      res.Coverage.n_specs
      (List.length res.Coverage.incomplete);
    checkb (tag ^ "all incomplete entries are Deadline") true
      (List.for_all
         (fun (_, f) ->
           match f with
           | Diag.Budget_exceeded (Diag.Deadline _) -> true
           | _ -> false)
         res.Coverage.incomplete);
    let o = Option.get res.Coverage.obs in
    (* conservation: merged engine_runs = replays + the profiling run *)
    check
      (tag ^ "obs engine_runs = n_run + 1")
      (res.Coverage.n_run + 1)
      o.Coverage.obs_counters.Rader_obs.Obs.engine_runs
  in
  let r1 = run 1 and r2 = run 2 in
  check_one 1 r1;
  check_one 2 r2;
  (* nothing ran in either sweep, so the merged counters are identical *)
  let o1 = Option.get r1.Coverage.obs and o2 = Option.get r2.Coverage.obs in
  checkb "merged counters byte-identical across job counts" true
    (Rader_obs.Obs.equal o1.Coverage.obs_counters o2.Coverage.obs_counters)

(* Mid-sweep deadline expiry at jobs >= 2: whichever specs end up charged
   to the deadline, the conservation invariant engine_runs = n_run + 1 and
   the n_run + |incomplete| = n_specs partition must hold — the dispatch
   re-check keeps a post-expiry spec from running outside the books. *)
let test_midsweep_deadline_conserves_obs () =
  for trial = 0 to 9 do
    let deadline = 0.0005 *. float_of_int (trial + 1) in
    let res =
      Coverage.exhaustive_check ~deadline ~jobs:2 ~with_obs:true busy_program
    in
    let tag = Printf.sprintf "trial %d: " trial in
    (* every spec is accounted for: attempted (n_run, one per_spec entry
       each) or recorded in incomplete — an attempted spec that blew its
       own engine deadline appears in both, so this is a covering, not a
       partition *)
    check (tag ^ "per_spec matches n_run") res.Coverage.n_run
      (List.length res.Coverage.per_spec);
    checkb (tag ^ "attempted + incomplete covers the family") true
      (res.Coverage.n_run + List.length res.Coverage.incomplete
      >= res.Coverage.n_specs);
    let o = Option.get res.Coverage.obs in
    check
      (tag ^ "obs engine_runs = n_run + 1")
      (res.Coverage.n_run + 1)
      o.Coverage.obs_counters.Rader_obs.Obs.engine_runs
  done

let () =
  Alcotest.run "coverage"
    [
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile;
          Alcotest.test_case "parallel_for" `Quick test_profile_parallel_for;
        ] );
      ( "spec families",
        [
          Alcotest.test_case "sizes" `Quick test_spec_family_sizes;
          Alcotest.test_case "cubic growth" `Quick test_spec_family_cubic_growth;
        ] );
      ( "exhaustive check",
        [
          Alcotest.test_case "serial run misses" `Quick test_no_steal_run_misses_planted_race;
          Alcotest.test_case "coverage finds planted race" `Quick
            test_exhaustive_check_finds_planted_race;
          Alcotest.test_case "clean program" `Quick test_exhaustive_check_clean_program;
          Alcotest.test_case "update specs elicit identities" `Quick
            test_update_depth_specs_elicit_identities;
        ] );
      ( "deadline consistency",
        [
          Alcotest.test_case "expired deadline stops at first event" `Quick
            test_expired_deadline_stops_at_first_event;
          Alcotest.test_case "expired sweep deadline consistent across jobs"
            `Quick test_expired_sweep_deadline_consistent_across_jobs;
          Alcotest.test_case "mid-sweep deadline conserves obs" `Quick
            test_midsweep_deadline_conserves_obs;
        ] );
    ]
