lib/runtime/mylist.ml: Cell List Reducer
