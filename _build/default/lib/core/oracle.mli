(** Brute-force ground-truth race detection from a recorded execution.

    These oracles re-derive races directly from the definitions in the
    paper, using the recorded performance dag, access trace, region-merge
    log and reducer-read log of an engine run with [~record:true]. They are
    asymptotically expensive (reachability matrices, all access pairs) and
    exist to property-test the real detectors, whose outputs must agree
    with them exactly.

    - A {e view-read race} exists iff two reducer-reads of the same reducer
      occur at strands with different peer sets (Definition 1 / §3),
      evaluated on the user dag of the serial execution (run the program
      under [Steal_spec.none]).
    - A {e determinacy race} exists between accesses [e1] (earlier in the
      serial order) and [e2] to the same location, one of them a write,
      iff they are logically parallel in the performance dag and — when
      [e2] is view-aware — they operate on {e parallel views}: the view
      IDs of their strands, canonicalized through all region merges that
      happened before [e2] executed, differ (§5). This canonicalization is
      the semantic counterpart of SP+ preserving the destination bag's vid
      on every union. *)

(** [view_read_races eng] is the sorted list of reducer ids with a
    view-read race. Requires a recorded run; meaningful under
    [Steal_spec.none]. @raise Invalid_argument if the run was not
    recorded. *)
val view_read_races : Rader_runtime.Engine.t -> int list

(** [view_read_pairs eng] is every racing pair of reducer-read strands,
    as [(reducer, strand1, strand2)] — for debugging test failures. *)
val view_read_pairs : Rader_runtime.Engine.t -> (int * int * int) list

(** [determinacy_races eng] is the sorted list of location ids involved in
    at least one determinacy race in the recorded execution. *)
val determinacy_races : Rader_runtime.Engine.t -> int list

(** [determinacy_pairs eng] is every racing access pair as
    [(loc, strand1, strand2)] — for debugging. *)
val determinacy_pairs : Rader_runtime.Engine.t -> (int * int * int) list

(** {1 Offline variants} operating on saved {!Trace.t} values — the
    Engine entry points above are [_t ∘ Trace.of_engine]. *)

val view_read_races_t : Trace.t -> int list
val view_read_pairs_t : Trace.t -> (int * int * int) list
val determinacy_races_t : Trace.t -> int list
val determinacy_pairs_t : Trace.t -> (int * int * int) list
