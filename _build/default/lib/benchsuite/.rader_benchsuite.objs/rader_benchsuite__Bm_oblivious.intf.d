lib/benchsuite/bm_oblivious.mli: Bench_def
