examples/wordcount.ml: Array Cilk Engine List Peer_set Printf Rader_core Rader_monoid Rader_runtime Rader_support Reducer Rmonoid Steal_spec String
