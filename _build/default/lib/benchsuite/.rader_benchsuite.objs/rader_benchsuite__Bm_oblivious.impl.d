lib/benchsuite/bm_oblivious.ml: Array Bench_def Cilk Engine Printf Rader_runtime Rader_support Rarray
