lib/support/dot.ml: Buffer List Printf String
