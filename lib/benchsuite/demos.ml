open Rader_runtime

let update_list ctx n list =
  Cilk.call ctx (fun ctx ->
      let red = Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx) in
      Reducer.set_value ctx red list;
      let _ = Cilk.spawn ctx (fun ctx -> ignore ctx) in
      Cilk.parallel_for ctx ~lo:0 ~hi:n (fun ctx i ->
          Reducer.update ctx red (fun c l ->
              Mylist.insert c l i;
              l));
      Cilk.sync ctx;
      Reducer.get_value ctx red)

let fig1 ~buggy ctx =
  let list = Mylist.empty ctx in
  List.iter (Mylist.insert ctx list) [ 10; 20; 30 ];
  let copy = (if buggy then Mylist.shallow_copy else Mylist.deep_copy) ctx list in
  let len = Cilk.spawn ctx (fun ctx -> Mylist.scan ctx list) in
  let _ = update_list ctx 6 copy in
  Cilk.sync ctx;
  Cilk.get ctx len

let racy_read ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  ignore
    (Cilk.spawn ctx (fun ctx ->
         Cilk.parallel_for ctx ~lo:1 ~hi:33 (fun ctx i -> Rmonoid.add ctx r i)));
  let v = Rmonoid.int_cell_value ctx r in
  Cilk.sync ctx;
  v

(* A fib spawn tree whose leaves all bump one shared cell: every pair of
   leaves in sibling subtrees is a structural determinacy race, so any
   detector — serial, simulated or online — must flag it on every
   schedule, while the returned value (plain fib) stays deterministic.
   The online CI smoke keys on this program. *)
let fib_racy ~scale ctx =
  let n = 8 + int_of_float (scale *. 4.) in
  let hits = Cell.make_in ctx ~label:"fib.hits" 0 in
  let rec go ctx k =
    if k < 2 then begin
      Cell.write ctx hits (Cell.read ctx hits + 1);
      k
    end
    else begin
      let a = Cilk.spawn ctx (fun ctx -> go ctx (k - 1)) in
      let b = go ctx (k - 2) in
      Cilk.sync ctx;
      Cilk.get ctx a + b
    end
  in
  Cilk.call ctx (fun ctx -> go ctx n)

(* Word count with a dictionary reducer (examples/wordcount.ml as an
   addressable program): associative monoid over count maps, clean under
   every schedule. *)
let wordcount ~scale ctx =
  let vocab = [| "the"; "reducer"; "view"; "steal"; "race"; "cilk" |] in
  let n = max 64 (int_of_float (scale *. 4000.)) in
  let m = Rader_monoid.Monoids.counter () in
  Cilk.call ctx (fun ctx ->
      let counts = Reducer.create ctx (Rmonoid.of_pure m) ~init:[] in
      Cilk.parallel_for ~grain:16 ctx ~lo:0 ~hi:n (fun ctx i ->
          Reducer.update ctx counts (fun _ c ->
              m.Rader_monoid.Monoid.combine c
                [ (vocab.((i * 7) mod Array.length vocab), 1) ]));
      Cilk.sync ctx;
      List.fold_left (fun acc (_, c) -> acc + c) 0 (Reducer.get_value ctx counts))

(* Parallel game-tree search with an arg-max reducer (examples/minimax.ml
   as an addressable program): deterministic best move under every
   schedule thanks to the reducer's serial-order guarantee. *)
let minimax ~scale ctx =
  let branching = 4 in
  let depth = 4 + int_of_float (scale *. 4.) in
  let leaf_value path =
    let h = List.fold_left (fun acc m -> (acc * 31) + m + 17) 1 path in
    (h * 2654435761) land 1023
  in
  let rec minimax path d maximizing =
    if d = 0 then leaf_value path
    else begin
      let best = ref (if maximizing then min_int else max_int) in
      for m = 0 to branching - 1 do
        let v = minimax (m :: path) (d - 1) (not maximizing) in
        if maximizing then best := max !best v else best := min !best v
      done;
      !best
    end
  in
  Cilk.call ctx (fun ctx ->
      let am = Rader_monoid.Monoids.arg_max () in
      let best = Reducer.create ctx (Rmonoid.of_pure am) ~init:None in
      Cilk.parallel_for ctx ~lo:0 ~hi:branching (fun ctx mv ->
          let score = minimax [ mv ] (depth - 1) false in
          Reducer.update ctx best (fun _ b ->
              am.Rader_monoid.Monoid.combine b (Some (score, mv))));
      Cilk.sync ctx;
      match Reducer.get_value ctx best with
      | Some (score, mv) -> (score * 10) + mv
      | None -> -1)

let demo_names =
  [
    "fig1-buggy";
    "fig1-fixed";
    "racy-read";
    "fib-racy";
    "nqueens";
    "wordcount";
    "minimax";
  ]

let names () = demo_names @ Suite.names

let resolve ?seed ~scale name : (Engine.ctx -> int, string) result =
  match name with
  | "fig1-buggy" -> Ok (fig1 ~buggy:true)
  | "fig1-fixed" -> Ok (fig1 ~buggy:false)
  | "racy-read" -> Ok racy_read
  | "fib-racy" -> Ok (fib_racy ~scale)
  | "wordcount" -> Ok (wordcount ~scale)
  | "minimax" -> Ok (minimax ~scale)
  | "nqueens" ->
      Ok
        (Bm_nqueens.bench ~n:(7 + int_of_float scale) ~spawn_depth:3)
          .Bench_def.cilk
  | name -> (
      match Suite.find ?seed ~scale name with
      | b -> Ok b.Bench_def.cilk
      | exception Not_found ->
          Error
            (Printf.sprintf "unknown program %S; try one of: %s" name
               (String.concat ", " (names ()))))
