test/test_coverage.ml: Alcotest Cell Cilk Coverage Engine List Option Printf Rader_core Rader_dag Rader_runtime Reducer Rmonoid Sp_plus Steal_spec
