lib/benchsuite/bm_nqueens.ml: Bench_def Cilk Printf Rader_runtime Rmonoid
