lib/runtime/engine.ml: List Printf Rader_dag Rader_memory Rader_support Steal_spec Tool
