open Rader_runtime

(* Board state as three attack masks (columns, diagonals); a queen may be
   placed where no mask bit is set. Pure helper shared by both versions. *)
let safe_slots n cols diag1 diag2 = lnot (cols lor diag1 lor diag2) land ((1 lsl n) - 1)

let rec count_serial n row cols diag1 diag2 =
  if row = n then 1
  else begin
    let slots = ref (safe_slots n cols diag1 diag2) in
    let total = ref 0 in
    while !slots <> 0 do
      let bit = !slots land - !slots in
      slots := !slots lxor bit;
      total :=
        !total
        + count_serial n (row + 1) (cols lor bit)
            ((diag1 lor bit) lsl 1)
            ((diag2 lor bit) lsr 1)
    done;
    !total
  end

let plain n () = count_serial n 0 0 0 0

let cilk n spawn_depth ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  let rec go ctx row cols diag1 diag2 =
    if row >= spawn_depth then
      Rmonoid.add ctx r (count_serial n row cols diag1 diag2)
    else begin
      let slots = ref (safe_slots n cols diag1 diag2) in
      while !slots <> 0 do
        let bit = !slots land - !slots in
        slots := !slots lxor bit;
        let c = cols lor bit
        and d1 = (diag1 lor bit) lsl 1
        and d2 = (diag2 lor bit) lsr 1 in
        ignore (Cilk.spawn ctx (fun ctx -> go ctx (row + 1) c d1 d2))
      done;
      Cilk.sync ctx
    end
  in
  Cilk.call ctx (fun ctx -> go ctx 0 0 0 0);
  Rmonoid.int_cell_value ctx r

let bench ~n ~spawn_depth =
  {
    Bench_def.name = "nqueens";
    descr = "N-queens solution counting";
    input = Printf.sprintf "n=%d" n;
    plain = plain n;
    cilk = cilk n spawn_depth;
  }
