let now () = Unix.gettimeofday ()

let time_it f =
  let t0 = now () in
  let r = f () in
  let t1 = now () in
  (r, t1 -. t0)

let best_of n f =
  if n <= 0 then invalid_arg "Stats.best_of";
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to n do
    let r, dt = time_it f in
    result := Some r;
    if dt < !best then best := dt
  done;
  match !result with
  | Some r -> (r, !best)
  | None -> assert false

let nonempty = function
  | [] -> invalid_arg "Stats: empty list"
  | xs -> xs

let mean xs =
  let xs = nonempty xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = nonempty xs in
  List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive") xs;
  let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
  exp (log_sum /. float_of_int (List.length xs))

let median xs =
  let xs = nonempty xs in
  let arr = Array.of_list xs in
  Array.sort compare arr;
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let stddev xs =
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let min_max xs =
  let xs = nonempty xs in
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (infinity, neg_infinity) xs
