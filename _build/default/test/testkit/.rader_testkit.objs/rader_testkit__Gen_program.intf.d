test/testkit/gen_program.mli: QCheck2 Rader_runtime
