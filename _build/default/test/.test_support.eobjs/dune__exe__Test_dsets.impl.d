test/test_dsets.ml: Alcotest Array Bag Dset Fun List Printf QCheck2 QCheck_alcotest Rader_dsets
