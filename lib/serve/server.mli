(** The [rader serve] daemon: a supervised, fault-isolated race-checking
    service.

    Architecture (no async runtime — Unix sockets, threads, domains):
    an accept thread spawns a thread per connection; connection threads
    answer [Health] inline, serve verdict-cache hits, and push [Submit]
    jobs onto a bounded admission queue — a full queue, a draining server
    or a degraded pool answers [Retry_after] instead of blocking; a pool
    of supervised worker {e domains} drains the queue, each recycling one
    engine + SP+ detector arena pair per request.

    Failure model: [Engine.run_result] is total over the [Fault] taxonomy,
    so any exception escaping a worker is detector-infrastructure failure
    (or injected chaos). The in-flight request is answered with
    [Internal_fault], the worker domain exits, and the supervisor
    respawns it with a fresh arena — at most [restart_budget] respawns
    per [restart_window_s] rolling window, after which the pool degrades
    and sheds instead of looping on a hot fault. Every admitted request
    is answered: verdict, partial verdict, structured fault, or
    [Retry_after] — never silence.

    See DESIGN.md §11 for the full supervision and shed policy. *)

type addr = Unix_path of string | Tcp of string * int

(** [parse_addr "unix:PATH"] / [parse_addr "tcp:HOST:PORT"]. *)
val parse_addr : string -> (addr, string) result

val addr_to_string : addr -> string

type chaos = {
  crash_rate : float;  (** P(worker raises) per request *)
  stall_rate : float;  (** P(worker sleeps past the deadline) per request *)
  chaos_seed : int;  (** per-request fates are a pure function of this *)
}

type config = {
  addr : addr;
  workers : int;  (** worker-domain pool size *)
  queue_depth : int;  (** admission queue bound; beyond it, shed *)
  max_deadline_s : float;  (** server-side cap on requested deadlines *)
  default_deadline_s : float;  (** applied when the request names none *)
  max_events_cap : int;  (** server-side cap on requested event budgets *)
  restart_budget : int;  (** respawns allowed per rolling window *)
  restart_window_s : float;
  cache_cap : int;  (** LRU verdict-cache bound *)
  retry_after_ms : int;  (** backoff hint carried by [Retry_after] *)
  drain_grace_s : float;  (** drain wait before shedding leftovers *)
  chaos_cfg : chaos option;  (** fault injection; [None] in production *)
  reach : Rader_reach.Reach.backend;
      (** precedence backend for every worker's SP+ detector and for
          coverage sweeps (default [Dset]). Verdicts are
          backend-independent; the backend id is still part of the
          verdict-cache key and reported by {!health_json}. *)
}

val default_config : addr:addr -> config

type t

(** [start cfg] binds, spawns the pool, the supervisor and the accept
    thread, and returns immediately. Enables [Rader_obs] counters for the
    server's lifetime (restored on {!wait}). Ignores [SIGPIPE].
    @raise Invalid_argument on a nonsensical config;
    [Unix.Unix_error] if the address cannot be bound. *)
val start : config -> t

(** The actually-bound address — resolves [Tcp (_, 0)] to the real port. *)
val bound_addr : t -> addr

(** Route SIGTERM and SIGINT to {!request_stop} (graceful drain). *)
val install_sigterm : t -> unit

(** Begin a graceful drain: stop admission (new submits shed with
    [Retry_after]) and release the pool once the queue empties.
    Non-blocking; also triggered by a [Shutdown] request or SIGTERM. *)
val request_stop : t -> unit

(** Block until a stop is requested, then drain: finish or deadline-cancel
    queued and in-flight work within [drain_grace_s] (leftovers are shed,
    never dropped), join the pool and the supervisor, close the listener
    and connections, restore the obs-enabled state, and return the final
    flush — the cumulative health/obs JSON. *)
val wait : t -> string

(** [stop t] is {!request_stop} followed by {!wait}. *)
val stop : t -> string

(** Current health/readiness JSON: pool state, queue depth, restart
    counters, request counters, cache stats, cumulative obs counters. *)
val health_json : t -> string
