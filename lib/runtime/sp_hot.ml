module Reach = Rader_reach.Reach
module Shadow = Rader_memory.Shadow

(* The SP+ detector's hot path, defunctionalized. This module owns
   everything touched per event — the precedence core, the reader/writer
   shadow spaces and the frame-kind stack — as flat state the [Tool]
   variant dispatches into with a single match. Report construction is
   cold and stays with the policy wrapper ([Rader_core.Sp_plus]), which
   installs [on_race]; the callback carries only raw ints/bools so this
   module needs no dependency on the report machinery.

   Two hot-path savings over the seed's closure-record detector:

   - the precedence core runs with [lazy_note]: frames enter the
     disjoint-set forest only when their id is first recorded in a shadow
     space, so programs whose frames never touch instrumented memory do
     no set work at all;
   - a two-slot classification memo keyed by a structural generation
     counter, bumped only when the backend reports that an event actually
     rewrote reachability state (a payload-carrying union; empty-bag
     returns and syncs are no-ops): within one strand the SP relation is
     constant, so a span of accesses over the same recorded frame costs
     one reachability query, and pure-control frame churn between spans
     costs none. *)

type on_race =
  loc:int ->
  first_frame:int ->
  first_is_write:bool ->
  second_frame:int ->
  second_is_write:bool ->
  view_aware:bool ->
  pv:int ->
  cur:int ->
  unit

type t = {
  reach : Reach.Sp.t;
  reader : Shadow.t;
  writer : Shadow.t;
  (* frame stack: ids plus kind codes (Frame_kind order: user 0, update 1,
     reduce 2, identity 3) *)
  mutable fids : int array;
  mutable kinds : int array;
  mutable depth : int;
  (* structural generation: bumps invalidate the classify memo *)
  mutable gen : int;
  (* two-slot memo: (gen, frame) -> -1 = Serial, vid >= 0 = Parallel vid *)
  mutable m0_gen : int;
  mutable m0_u : int;
  mutable m0_res : int;
  mutable m1_gen : int;
  mutable m1_u : int;
  mutable m1_res : int;
  mutable on_race : on_race;
}

let no_race ~loc:_ ~first_frame:_ ~first_is_write:_ ~second_frame:_
    ~second_is_write:_ ~view_aware:_ ~pv:_ ~cur:_ =
  ()

let kind_code = function
  | Frame_kind.User_fn -> 0
  | Frame_kind.Update_fn -> 1
  | Frame_kind.Reduce_fn -> 2
  | Frame_kind.Identity_fn -> 3

let reduce_code = 2

let create ?(backend = Reach.Dset) () =
  {
    reach = Reach.Sp.create ~lazy_note:true backend;
    reader = Shadow.create ();
    writer = Shadow.create ();
    fids = Array.make 64 0;
    kinds = Array.make 64 0;
    depth = 0;
    gen = 0;
    m0_gen = -1;
    m0_u = -1;
    m0_res = -1;
    m1_gen = -1;
    m1_u = -1;
    m1_res = -1;
    on_race = no_race;
  }

let set_on_race t f = t.on_race <- f

let backend t = Reach.Sp.backend t.reach

let reset t =
  Reach.Sp.reset t.reach;
  Shadow.clear t.reader;
  Shadow.clear t.writer;
  t.depth <- 0;
  t.gen <- t.gen + 1

(* -------- structural events -------- *)

(* No memo invalidation here: entering a frame pushes fresh empty bags
   (dset) or extends the current path strictly below any recorded frame's
   LCA (depa) — no existing frame changes set membership, no root payload
   is rewritten, so every cached classification recomputes identically. *)
let frame_enter t ~frame ~kind =
  Reach.Sp.on_frame_enter t.reach ~frame;
  if t.depth >= Array.length t.fids then begin
    let cap = 2 * Array.length t.fids in
    let fids = Array.make cap 0 and kinds = Array.make cap 0 in
    Array.blit t.fids 0 fids 0 t.depth;
    Array.blit t.kinds 0 kinds 0 t.depth;
    t.fids <- fids;
    t.kinds <- kinds
  end;
  t.fids.(t.depth) <- frame;
  t.kinds.(t.depth) <- kind_code kind;
  t.depth <- t.depth + 1

(* Returns, syncs and reduces invalidate the classify memo only when the
   backend reports a real structural change (a payload-rewriting union in
   the dset forest): a pure-control frame returning with empty bags
   rewrites nothing, so every cached classification recomputes
   identically and the memo survives. *)
let frame_return t ~frame ~spawned =
  let i = t.depth - 1 in
  t.depth <- i;
  assert (t.fids.(i) = frame);
  (* A returning Reduce invocation joins the P bag whose views it just
     merged; spawned children join the top P bag; called children are
     serial with the parent (paper §6). *)
  if
    Reach.Sp.on_frame_return t.reach ~frame
      ~parallel:(t.kinds.(i) = reduce_code || spawned)
  then t.gen <- t.gen + 1

let sync t ~frame =
  assert (t.fids.(t.depth - 1) = frame);
  if Reach.Sp.on_sync t.reach ~frame then t.gen <- t.gen + 1

(* A steal pushes a fresh empty P bag (dset) / a strictly newer epoch
   (depa): recorded frames keep their sets, roots keep their payloads, and
   epoch lookups for already-recorded epochs are unaffected — the memo
   stays valid. (The current view does change, but it is read directly,
   never memoized.) *)
let steal t ~frame ~region =
  Reach.Sp.on_steal t.reach ~frame ~region

let reduce t ~frame =
  if Reach.Sp.on_reduce t.reach ~frame then t.gen <- t.gen + 1

(* -------- accesses -------- *)

(* Shadow-entry classification, memoized within the current structural
   generation: -1 = Serial, otherwise the P bag's view id. *)
let classify t u =
  if u = Shadow.absent then -1
  else if t.m0_gen = t.gen && t.m0_u = u then t.m0_res
  else if t.m1_gen = t.gen && t.m1_u = u then t.m1_res
  else begin
    let res =
      match Reach.Sp.classify t.reach u with
      | Reach.Sp.Serial -> -1
      | Reach.Sp.Parallel vid -> vid
    in
    t.m1_gen <- t.m0_gen;
    t.m1_u <- t.m0_u;
    t.m1_res <- t.m0_res;
    t.m0_gen <- t.gen;
    t.m0_u <- u;
    t.m0_res <- res;
    res
  end

let check t ~loc ~frame ~view_aware ~first_frame ~first_is_write
    ~second_is_write =
  let pv = classify t first_frame in
  if pv >= 0 then
    if not view_aware then
      t.on_race ~loc ~first_frame ~first_is_write ~second_frame:frame
        ~second_is_write ~view_aware ~pv ~cur:0
    else begin
      let cur = Reach.Sp.cur_view t.reach in
      if pv <> cur then
        t.on_race ~loc ~first_frame ~first_is_write ~second_frame:frame
          ~second_is_write ~view_aware ~pv ~cur
    end

(* Shadow update: keep the recorded access unless it is serial with the
   current strand, or this is a reduce strand overwriting an entry of its
   own view (which the reduce serializes with). *)
let may_update t ~view_aware recorded =
  let pv = classify t recorded in
  pv < 0
  || view_aware
     && t.kinds.(t.depth - 1) = reduce_code
     && pv = Reach.Sp.cur_view t.reach

let read t ~frame ~loc ~view_aware =
  check t ~loc ~frame ~view_aware
    ~first_frame:(Shadow.get t.writer loc)
    ~first_is_write:true ~second_is_write:false;
  let r = Shadow.get t.reader loc in
  if may_update t ~view_aware r then begin
    Reach.Sp.note t.reach ~frame;
    Shadow.set t.reader loc frame
  end

let write t ~frame ~loc ~view_aware =
  check t ~loc ~frame ~view_aware
    ~first_frame:(Shadow.get t.reader loc)
    ~first_is_write:false ~second_is_write:true;
  let w = Shadow.get t.writer loc in
  check t ~loc ~frame ~view_aware ~first_frame:w ~first_is_write:true
    ~second_is_write:true;
  if may_update t ~view_aware w then begin
    Reach.Sp.note t.reach ~frame;
    Shadow.set t.writer loc frame
  end

let read_span t ~frame ~base ~len ~stride ~view_aware =
  let loc = ref base in
  for _ = 1 to len do
    read t ~frame ~loc:!loc ~view_aware;
    loc := !loc + stride
  done

let write_span t ~frame ~base ~len ~stride ~view_aware =
  let loc = ref base in
  for _ = 1 to len do
    write t ~frame ~loc:!loc ~view_aware;
    loc := !loc + stride
  done
