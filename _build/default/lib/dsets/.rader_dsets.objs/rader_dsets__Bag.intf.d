lib/dsets/bag.mli:
