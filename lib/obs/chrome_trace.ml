module Dynarr = Rader_support.Dynarr

(* Chrome trace_event JSON emitter (the subset Perfetto and
   chrome://tracing load): complete spans ("X"), instants ("i"), counter
   samples ("C") and thread-name metadata ("M"), all under one pid.

   Two invariants are enforced at insertion so any emitted file renders
   sanely:
   - per-tid timestamps are monotone: a span starting before the previous
     event on its thread is clamped forward (the shared clock is
     [Obs.now_us], wall time — a rare backwards step must not corrupt the
     trace);
   - spans nest: [begin_span]/[end_span] maintain a per-tid stack and
     refuse mismatched ends, so the "X" events of one thread always form
     a forest. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : char;
  ev_tid : int;
  ev_ts : float; (* microseconds *)
  ev_dur : float; (* microseconds; complete spans only *)
  ev_args : (string * string) list;
}

type open_span = { os_name : string; os_cat : string; os_ts : float }

type t = {
  events : event Dynarr.t;
  stacks : (int, open_span list ref) Hashtbl.t;
  last_ts : (int, float ref) Hashtbl.t; (* per-tid monotonicity clamp *)
  thread_names : (int, string) Hashtbl.t;
  mutable process_name : string option;
}

let create () =
  {
    events = Dynarr.create ();
    stacks = Hashtbl.create 8;
    last_ts = Hashtbl.create 8;
    thread_names = Hashtbl.create 8;
    process_name = None;
  }

let clamp t ~tid ts =
  match Hashtbl.find_opt t.last_ts tid with
  | Some last ->
      let ts = Float.max ts !last in
      last := ts;
      ts
  | None ->
      Hashtbl.replace t.last_ts tid (ref ts);
      ts

let set_process_name t name = t.process_name <- Some name

let set_thread_name t ~tid name = Hashtbl.replace t.thread_names tid name

let add_complete ?(cat = "rader") ?(args = []) t ~name ~tid ~ts_us ~dur_us () =
  let dur_us = Float.max dur_us 0.0 in
  let ts = clamp t ~tid ts_us in
  ignore (clamp t ~tid (ts +. dur_us));
  Dynarr.push t.events
    { ev_name = name; ev_cat = cat; ev_ph = 'X'; ev_tid = tid; ev_ts = ts;
      ev_dur = dur_us; ev_args = args }

let add_instant ?(cat = "rader") ?(args = []) t ~name ~tid ~ts_us () =
  let ts = clamp t ~tid ts_us in
  Dynarr.push t.events
    { ev_name = name; ev_cat = cat; ev_ph = 'i'; ev_tid = tid; ev_ts = ts;
      ev_dur = 0.0; ev_args = args }

let add_counter ?(cat = "rader") t ~name ~tid ~ts_us values =
  let ts = clamp t ~tid ts_us in
  Dynarr.push t.events
    { ev_name = name; ev_cat = cat; ev_ph = 'C'; ev_tid = tid; ev_ts = ts;
      ev_dur = 0.0;
      ev_args = List.map (fun (k, v) -> (k, string_of_int v)) values }

let stack_of t tid =
  match Hashtbl.find_opt t.stacks tid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.replace t.stacks tid s;
      s

let begin_span ?(cat = "rader") t ~name ~tid ~ts_us =
  let ts = clamp t ~tid ts_us in
  let s = stack_of t tid in
  s := { os_name = name; os_cat = cat; os_ts = ts } :: !s

let end_span ?(args = []) t ~tid ~ts_us =
  let s = stack_of t tid in
  match !s with
  | [] -> invalid_arg "Chrome_trace.end_span: no open span on this thread"
  | os :: rest ->
      let ts = clamp t ~tid ts_us in
      s := rest;
      Dynarr.push t.events
        { ev_name = os.os_name; ev_cat = os.os_cat; ev_ph = 'X'; ev_tid = tid;
          ev_ts = os.os_ts; ev_dur = ts -. os.os_ts; ev_args = args }

let with_span ?cat ?args t ~name ~tid f =
  begin_span ?cat t ~name ~tid ~ts_us:(Obs.now_us ());
  Fun.protect
    ~finally:(fun () -> end_span ?args t ~tid ~ts_us:(Obs.now_us ()))
    f

let open_spans t tid = match Hashtbl.find_opt t.stacks tid with
  | Some s -> List.length !s
  | None -> 0

let n_events t = Dynarr.length t.events

(* ---------- JSON ---------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  (* trace_event timestamps are float microseconds; emit with sub-us
     precision but no exponent (Perfetto accepts both, plain is smaller) *)
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

(* counter samples ("C") carry numeric values — Perfetto only builds
   tracks from JSON numbers, so their args are emitted unquoted *)
let add_args buf ~raw args =
  Buffer.add_string buf "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      if raw then Buffer.add_string buf v else add_json_string buf v)
    args;
  Buffer.add_char buf '}'

let add_event buf ev =
  Buffer.add_string buf "{\"name\":";
  add_json_string buf ev.ev_name;
  Buffer.add_string buf ",\"cat\":";
  add_json_string buf ev.ev_cat;
  Buffer.add_string buf ",\"ph\":";
  add_json_string buf (String.make 1 ev.ev_ph);
  Buffer.add_string buf ",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int ev.ev_tid);
  Buffer.add_string buf ",\"ts\":";
  add_num buf ev.ev_ts;
  if ev.ev_ph = 'X' then begin
    Buffer.add_string buf ",\"dur\":";
    add_num buf ev.ev_dur
  end;
  if ev.ev_ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  if ev.ev_args <> [] || ev.ev_ph = 'C' then begin
    Buffer.add_char buf ',';
    add_args buf ~raw:(ev.ev_ph = 'C') ev.ev_args
  end;
  Buffer.add_char buf '}'

let add_metadata buf ~name ~tid ~key ~value first =
  if not first then Buffer.add_char buf ',';
  Buffer.add_string buf "{\"name\":";
  add_json_string buf name;
  Buffer.add_string buf ",\"ph\":\"M\",\"pid\":1,\"tid\":";
  Buffer.add_string buf (string_of_int tid);
  Buffer.add_string buf ",\"args\":{";
  add_json_string buf key;
  Buffer.add_char buf ':';
  add_json_string buf value;
  Buffer.add_string buf "}}"

let to_string t =
  let buf = Buffer.create (256 + (Dynarr.length t.events * 96)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  (match t.process_name with
  | Some name ->
      add_metadata buf ~name:"process_name" ~tid:0 ~key:"name" ~value:name !first;
      first := false
  | None -> ());
  Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) t.thread_names []
  |> List.sort compare
  |> List.iter (fun (tid, name) ->
         add_metadata buf ~name:"thread_name" ~tid ~key:"name" ~value:name !first;
         first := false);
  Dynarr.iter
    (fun ev ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      add_event buf ev)
    t.events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
