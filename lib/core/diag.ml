include Rader_runtime.Fault
