(* Unit and property tests for the support substrates. *)

open Rader_support

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- Dynarr ---------- *)

let test_dynarr_basic () =
  let t = Dynarr.create () in
  checkb "fresh empty" true (Dynarr.is_empty t);
  for i = 0 to 99 do
    Dynarr.push t (i * i)
  done;
  check "length" 100 (Dynarr.length t);
  check "get 7" 49 (Dynarr.get t 7);
  Dynarr.set t 7 (-1);
  check "set/get" (-1) (Dynarr.get t 7);
  check "top" (99 * 99) (Dynarr.top t);
  check "pop" (99 * 99) (Dynarr.pop t);
  check "length after pop" 99 (Dynarr.length t)

let test_dynarr_bounds () =
  let t = Dynarr.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dynarr: index 3 out of bounds [0,3)")
    (fun () -> ignore (Dynarr.get t 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Dynarr.pop: empty") (fun () ->
      ignore (Dynarr.pop (Dynarr.create ())))

let test_dynarr_ensure () =
  let t = Dynarr.of_list [ 5 ] in
  Dynarr.ensure t 4 0;
  check "grown" 4 (Dynarr.length t);
  check "old kept" 5 (Dynarr.get t 0);
  check "fill" 0 (Dynarr.get t 3);
  Dynarr.ensure t 2 9;
  check "no shrink" 4 (Dynarr.length t)

let test_dynarr_iterators () =
  let t = Dynarr.of_list [ 1; 2; 3; 4 ] in
  check "fold" 10 (Dynarr.fold_left ( + ) 0 t);
  let acc = ref [] in
  Dynarr.iteri (fun i x -> acc := (i, x) :: !acc) t;
  Alcotest.(check (list (pair int int)))
    "iteri" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (List.rev !acc);
  checkb "exists" true (Dynarr.exists (fun x -> x = 3) t);
  checkb "not exists" false (Dynarr.exists (fun x -> x = 7) t);
  Alcotest.(check (option int)) "find" (Some 2) (Dynarr.find_opt (fun x -> x mod 2 = 0) t);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Dynarr.to_list t)

let prop_dynarr_model =
  (* compare against a list model under a random op sequence *)
  QCheck2.Test.make ~name:"dynarr matches list model" ~count:300
    QCheck2.Gen.(list (pair (int_bound 2) small_int))
    (fun ops ->
      let t = Dynarr.create () in
      let model = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              Dynarr.push t v;
              model := !model @ [ v ]
          | 1 ->
              if !model <> [] then begin
                let x = Dynarr.pop t in
                let rec split_last acc = function
                  | [ y ] -> (List.rev acc, y)
                  | y :: tl -> split_last (y :: acc) tl
                  | [] -> assert false
                in
                let rest, y = split_last [] !model in
                model := rest;
                if x <> y then failwith "pop mismatch"
              end
          | _ ->
              if !model <> [] && Dynarr.top t <> List.nth !model (List.length !model - 1)
              then failwith "top mismatch")
        ops;
      Dynarr.to_list t = !model)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    checkb "in range" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 1_000 do
    let x = Rng.int_in rng (-5) 5 in
    checkb "int_in range" true (x >= -5 && x <= 5);
    let f = Rng.float rng 2.5 in
    checkb "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Rng.bits64 b) in
  checkb "streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_bernoulli_fair () =
  let rng = Rng.create 11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.25 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  checkb "bernoulli ~0.25" true (p > 0.22 && p < 0.28)

(* ---------- Bitset ---------- *)

let test_bitset_basic () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  checkb "mem 0" true (Bitset.mem s 0);
  checkb "mem 63" true (Bitset.mem s 63);
  checkb "mem 64" true (Bitset.mem s 64);
  checkb "not mem 100" false (Bitset.mem s 100);
  check "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  checkb "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list" [ 0; 64; 199 ] (Bitset.to_list s)

let test_bitset_union_equal () =
  let a = Bitset.create 100 and b = Bitset.create 100 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 3; 4 ];
  Bitset.union_into a b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list a);
  let c = Bitset.copy a in
  checkb "copy equal" true (Bitset.equal a c);
  Bitset.remove c 4;
  checkb "copy independent" false (Bitset.equal a c);
  checkb "inter nonempty" true (Bitset.inter_nonempty a b);
  let d = Bitset.create 100 in
  Bitset.add d 99;
  checkb "inter empty" false (Bitset.inter_nonempty a d)

let prop_bitset_model =
  QCheck2.Test.make ~name:"bitset matches IntSet model" ~count:300
    QCheck2.Gen.(list (pair bool (int_bound 99)))
    (fun ops ->
      let module S = Set.Make (Int) in
      let s = Bitset.create 100 in
      let model = ref S.empty in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            model := S.add i !model
          end
          else begin
            Bitset.remove s i;
            model := S.remove i !model
          end)
        ops;
      Bitset.to_list s = S.elements !model
      && Bitset.cardinal s = S.cardinal !model)

(* ---------- Deque ---------- *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3; 4 ];
  check "pop bottom = LIFO" 4 (Deque.pop_bottom d);
  check "steal top = FIFO" 1 (Deque.steal_top d);
  check "len" 2 (Deque.length d);
  check "pop" 3 (Deque.pop_bottom d);
  check "steal" 2 (Deque.steal_top d);
  checkb "empty" true (Deque.is_empty d)

let test_deque_growth_wraparound () =
  let d = Deque.create () in
  (* force head to move, then growth with wrapped contents *)
  for i = 0 to 5 do
    Deque.push_bottom d i
  done;
  for _ = 0 to 3 do
    ignore (Deque.steal_top d)
  done;
  for i = 6 to 30 do
    Deque.push_bottom d i
  done;
  let out = ref [] in
  while not (Deque.is_empty d) do
    out := Deque.steal_top d :: !out
  done;
  Alcotest.(check (list int)) "order preserved" (List.init 27 (fun i -> i + 4))
    (List.rev !out)

let prop_deque_model =
  QCheck2.Test.make ~name:"deque matches list model" ~count:300
    QCheck2.Gen.(list (pair (int_bound 2) small_int))
    (fun ops ->
      let d = Deque.create () in
      let model = ref [] in
      (* model: list with head = top, tail end = bottom *)
      let ok = ref true in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
              Deque.push_bottom d v;
              model := !model @ [ v ]
          | 1 -> (
              match !model with
              | [] -> ()
              | _ ->
                  let x = Deque.pop_bottom d in
                  let rec last acc = function
                    | [ y ] -> (List.rev acc, y)
                    | y :: tl -> last (y :: acc) tl
                    | [] -> assert false
                  in
                  let rest, y = last [] !model in
                  model := rest;
                  if x <> y then ok := false)
          | _ -> (
              match !model with
              | [] -> ()
              | y :: rest ->
                  let x = Deque.steal_top d in
                  model := rest;
                  if x <> y then ok := false))
        ops;
      !ok && Deque.length d = List.length !model)

(* ---------- Om (order maintenance) ---------- *)

let test_om_basic () =
  let l = Om.create () in
  let b = Om.base l in
  let x = Om.insert_after l b in
  let y = Om.insert_after l b in
  (* order: b, y, x *)
  checkb "b < y" true (Om.precedes l b y);
  checkb "y < x" true (Om.precedes l y x);
  checkb "b < x" true (Om.precedes l b x);
  checkb "not x < y" false (Om.precedes l x y);
  checkb "irreflexive" false (Om.precedes l x x);
  check "length" 3 (Om.length l);
  Alcotest.(check (list int)) "list order" [ b; y; x ] (Om.to_list l)

let test_om_dense_insertions_trigger_relabel () =
  (* hammer one insertion point so tags run out of gaps *)
  let l = Om.create () in
  let b = Om.base l in
  let elems = ref [ b ] in
  for _ = 1 to 2000 do
    elems := Om.insert_after l b :: !elems
  done;
  checkb "relabeled at least once" true (Om.relabel_count l > 0);
  (* order must equal: b, then insertions in reverse creation order *)
  let expected = b :: List.filter (fun e -> e <> b) !elems in
  Alcotest.(check (list int)) "order preserved" expected (Om.to_list l)

let test_om_append_chain () =
  let l = Om.create () in
  let cur = ref (Om.base l) in
  let chain = ref [ !cur ] in
  for _ = 1 to 5000 do
    cur := Om.insert_after l !cur;
    chain := !cur :: !chain
  done;
  let chain = List.rev !chain in
  Alcotest.(check (list int)) "chain order" chain (Om.to_list l);
  checkb "first < last" true (Om.precedes l (List.hd chain) !cur)

let prop_om_matches_list_model =
  QCheck2.Test.make ~name:"om matches list model" ~count:200
    QCheck2.Gen.(list (int_bound 1000))
    (fun picks ->
      let l = Om.create () in
      let model = ref [ Om.base l ] in
      List.iter
        (fun k ->
          let pos = k mod List.length !model in
          let x = List.nth !model pos in
          let y = Om.insert_after l x in
          let rec ins = function
            | [] -> assert false
            | z :: tl when z = x -> z :: y :: tl
            | z :: tl -> z :: ins tl
          in
          model := ins !model)
        picks;
      Om.to_list l = !model
      &&
      let arr = Array.of_list !model in
      let n = Array.length arr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Om.precedes l arr.(i) arr.(j) <> (i < j) then ok := false
        done
      done;
      !ok)

(* ---------- Stats ---------- *)

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  let lo, hi = Stats.min_max [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 3.0 hi

let test_stats_errors () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats: empty list") (fun () ->
      ignore (Stats.mean []));
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geomean: nonpositive") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_time () =
  let r, dt = Stats.time_it (fun () -> 42) in
  check "result" 42 r;
  checkb "time nonnegative" true (dt >= 0.0);
  let r, dt = Stats.best_of 3 (fun () -> 7) in
  check "best_of result" 7 r;
  checkb "best_of time" true (dt >= 0.0)

(* ---------- Tablefmt ---------- *)

let test_table_render () =
  let t = Tablefmt.create [ "name"; "value" ] in
  Tablefmt.add_row t [ "alpha"; "1.00" ];
  Tablefmt.add_rule t;
  Tablefmt.add_row t [ "b" ];
  let s = Tablefmt.render t in
  checkb "has header" true (String.length s > 0);
  (* header, automatic header rule, row, explicit rule, padded row *)
  let lines = String.split_on_char '\n' (String.trim s) in
  check "line count" 5 (List.length lines);
  (* the column separator sits at the same offset in every cell row *)
  let pipe_pos l = String.index_opt l '|' in
  let cell_rows = List.filter (fun l -> pipe_pos l <> None) lines in
  check "cell rows" 3 (List.length cell_rows);
  let positions = List.map pipe_pos cell_rows in
  checkb "aligned" true (List.for_all (fun p -> p = List.hd positions) positions)

let test_table_too_many_cells () =
  let t = Tablefmt.create [ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Tablefmt.add_row: too many cells")
    (fun () -> Tablefmt.add_row t [ "x"; "y" ])

(* ---------- Dot ---------- *)

let test_dot_render () =
  let g = Dot.create "g" in
  Dot.node g "a" ~label:"A \"x\"" ~attrs:[ ("shape", "box") ];
  Dot.node g "b" ~label:"B" ~attrs:[];
  Dot.edge g "a" "b" ~attrs:[ ("style", "dashed") ];
  Dot.subgraph_cluster g "c0" ~label:"F" [ "a"; "b" ];
  let s = Dot.render g in
  checkb "digraph" true (String.length s > 0);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "escaped quote" true (contains s "\\\"x\\\"");
  checkb "cluster" true (contains s "subgraph cluster_c0");
  checkb "edge" true (contains s "a -> b")

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "support"
    [
      ( "dynarr",
        [
          Alcotest.test_case "basic" `Quick test_dynarr_basic;
          Alcotest.test_case "bounds" `Quick test_dynarr_bounds;
          Alcotest.test_case "ensure" `Quick test_dynarr_ensure;
          Alcotest.test_case "iterators" `Quick test_dynarr_iterators;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli_fair;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "union/equal" `Quick test_bitset_union_equal;
        ] );
      ( "deque",
        [
          Alcotest.test_case "lifo/fifo" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "growth+wraparound" `Quick test_deque_growth_wraparound;
        ] );
      ( "om",
        [
          Alcotest.test_case "basic" `Quick test_om_basic;
          Alcotest.test_case "dense insertions" `Quick test_om_dense_insertions_trigger_relabel;
          Alcotest.test_case "append chain" `Quick test_om_append_chain;
        ] );
      ( "stats",
        [
          Alcotest.test_case "aggregates" `Quick test_stats_geomean;
          Alcotest.test_case "errors" `Quick test_stats_errors;
          Alcotest.test_case "timing" `Quick test_stats_time;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "overflow" `Quick test_table_too_many_cells;
        ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_dot_render ]);
      qsuite "properties"
        [ prop_dynarr_model; prop_bitset_model; prop_deque_model; prop_om_matches_list_model ];
    ]
