lib/runtime/cilk.mli: Engine Steal_spec Tool
