(** Transitive reachability and logical series/parallel queries over a
    computation dag — the brute-force ground truth that the detector
    algorithms are property-tested against.

    For strands [u], [v]: [u ≺ v] iff a path exists from [u] to [v]; [u ‖ v]
    iff neither precedes the other (paper §3). Computed as an [n × n] bit
    matrix by a single reverse-serial-order sweep, O(V·E/64) time and
    O(V²/8) space — fine for the test-scale programs it is used on. *)

type t

(** [compute dag] builds the reachability closure. *)
val compute : Dag.t -> t

(** [precedes t u v] is [u ≺ v] (strictly: [precedes t u u = false]). *)
val precedes : t -> int -> int -> bool

(** [parallel t u v] is [u ‖ v]; false when [u = v]. *)
val parallel : t -> int -> int -> bool

(** [descendants t u] is the bitset of strands [v] with [u ≺ v]
    (not including [u]). The returned bitset must not be mutated. *)
val descendants : t -> int -> Rader_support.Bitset.t

(** [ancestors t u] is the bitset of strands [v] with [v ≺ u]. The returned
    bitset must not be mutated. *)
val ancestors : t -> int -> Rader_support.Bitset.t
