test/test_detectors.ml: Alcotest Cell Cilk Engine List Mylist Offset_span Oracle Peer_set Printf Rader_core Rader_runtime Reducer Report Rmonoid Sp_bags Sp_order Sp_plus Steal_spec String
