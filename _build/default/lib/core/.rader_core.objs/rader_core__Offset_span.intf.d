lib/core/offset_span.mli: Rader_runtime Report
