(** The SP+ algorithm (paper §5–§6, Fig. 6).

    Detects determinacy races in Cilk computations {e that use reducers},
    executed serially under a steal specification that fixes which
    continuations are stolen and which reduce operations run when. SP+
    extends SP-bags in two ways:

    - Each function instantiation [F] keeps, instead of one P bag, a
      {e stack} of P bags, each tagged with a view ID ([vid]): executing a
      stolen continuation pushes a fresh P bag with the new view's id, and
      every runtime [Reduce] pops the top P bag and unions it into the one
      below (the destination's vid survives) — imitating how the runtime
      creates views at steals and destroys dominated views at reduces.

    - Accesses by {e view-aware} strands (update / reduce /
      create-identity code) only race with parallel accesses whose
      recorded P bag carries a {e different} vid — logically parallel
      strands operating on the same view are in series through the reduce
      tree. A reduce strand may also overwrite a shadow entry whose bag
      shares its vid, since the reduce serializes with those strands.

    Correct for the execution named by the steal specification
    (paper §6); cost O((T + Mτ) α(v, v)) for M steals and reduce cost τ
    (Theorem 5). Combine with {!Coverage} for the §7 guarantee. *)

type t

val create : Rader_runtime.Engine.t -> t
val tool : t -> Rader_runtime.Tool.t
val attach : Rader_runtime.Engine.t -> t

(** [reset d] empties all detector state (bag store, frame stack, shadow
    spaces, collected reports) while keeping the grown arenas, and
    re-installs [d] as its engine's tool. Call right after
    [Engine.reset] on the same engine to replay another steal
    specification without reallocating — one [attach]+[reset] pair per
    spec is observationally identical to a fresh engine+detector pair. *)
val reset : t -> unit
val races : t -> Report.t list
val found : t -> bool

(** [racy_locs d] is the sorted list of distinct racy location ids. *)
val racy_locs : t -> int list
