lib/benchsuite/workloads.ml: Array Bytes Char Rader_support
