lib/monoid/monoids.mli: Monoid
