(** Reducer-misuse lint over the {!Ir} — rules with stable IDs.

    Each rule inspects the canonical SP parse tree and the recorded
    provenance of one serial run; no detector shadow state is involved.
    Findings carry the witness strands, so they can be rendered onto the
    parse tree ({!to_dot}).

    {2 Rule catalog}

    - {b R001} (error) — {e view-read race}: two reads of the same reducer
      at strands with different peer sets ({!Verdict.view_read}); the
      observed value depends on scheduling (paper §3). Certain from
      structure.
    - {b R002} (error) — {e raw shared access}: a view-oblivious
      [Cell]/[Rarray] access logically parallel ([lca_kind = `P], Feng &
      Leiserson Lemma 4) with a view-oblivious write to the same location
      — a determinacy race no reducer protects.
    - {b R003} (info) — {e dead reducer}: a reducer created but never read
      or updated after creation; delete it or use it.
    - {b R004} (warning) — {e schedule-sensitive reduction}: the program's
      result differs between eager and at-sync reduction under the
      all-steals schedule, i.e. the reduction order is observable — the
      monoid is not associative/commutative enough for this use. Found
      differentially (two replays), skipped if either replay crashes.
    - {b R005} (warning) — {e view escape}: a location written through a
      view-aware frame (update body) is also accessed view-obliviously on
      a logically parallel strand, with a write on at least one side — a
      view's guts leaked out of its strand (the Fig.-1 shallow-copy bug).
    - {b R006} (error) — {e spec-independent race}: the symbolic verifier
      proved the location races under {e every} steal spec of the §7
      family (both witness endpoints view-oblivious), cross-checked
      against the residual replays — the strongest diagnostic the tool
      can issue. Only emitted when a {!Witness.t} is supplied (it needs
      the witness replays).

    Exit-code mapping in the CLI: any finding → 1, none → 0, usage → 2. *)

type severity = Error | Warning | Info

type finding = {
  rule : string;  (** stable id, ["R001"] .. ["R006"] *)
  severity : severity;
  subject : string;
      (** compact, space-free subject key, e.g. ["reducer:0"] or
          ["loc:12(list)"] — stable across runs of the same workload *)
  message : string;  (** human-readable one-liner *)
  strands : int list;  (** witness strands (leaves of the parse tree) *)
}

val severity_to_string : severity -> string

(** [(id, severity, synopsis)] for every rule, in id order. *)
val rules : (string * severity * string) list

(** [run ir] evaluates every rule and returns the findings sorted by rule
    id then subject. [program] enables the differential rule R004 (it
    needs two extra replays); without it R004 is skipped. [verify]
    enables R006, fed by the symbolic verification result.
    Location-pair rules (R002/R005) examine at most [max_pairs] strand
    pairs per location (default [100_000]) and stop at the first witness
    per (rule, location). *)
val run :
  ?program:(Rader_runtime.Engine.ctx -> int) ->
  ?verify:Witness.t ->
  ?max_pairs:int ->
  Ir.t ->
  finding list

(** [to_table findings] is an aligned human-readable table (one line per
    finding, header included); ["no findings\n"] when clean. *)
val to_table : finding list -> string

(** [to_json ~program findings] is one JSON object:
    [{"program": ..., "findings": [{rule, severity, subject, message,
    strands}, ...]}]. *)
val to_json : program:string -> finding list -> string

(** [to_dot ir findings] renders the parse tree with finding-bearing
    leaves filled: red for errors, orange for warnings, grey for info
    (the worst severity wins per strand). *)
val to_dot : Ir.t -> finding list -> string

(** [baseline_lines ~program findings] is one stable line per finding —
    ["PROGRAM RULE SUBJECT"] — for checked-in expected-findings baselines
    (see the CI lint gate). Sorted. *)
val baseline_lines : program:string -> finding list -> string list
