(* §7 coverage in action: a determinacy race hiding inside a Reduce
   operation is invisible to any single serial run; enumerating the
   O(KD + K³) steal specifications elicits every possible view-aware
   strand and finds it.

   Run with: dune exec examples/coverage_demo.exe *)

open Rader_runtime
open Rader_core

(* A "statistics" reducer whose Reduce carelessly logs into a shared cell.
   The bug only executes when the runtime actually reduces two views. *)
let program ctx =
  let log_slot = Cell.make_in ctx ~label:"stats.log" 0 in
  let monoid =
    {
      Reducer.name = "sum-with-logging";
      identity = (fun c -> Cell.make_in c 0);
      reduce =
        (fun c left right ->
          (* BUG: unsynchronized logging from view-aware code *)
          Cell.write c log_slot (Cell.read c log_slot + 1);
          Cell.write c left (Cell.read c left + Cell.read c right);
          left);
    }
  in
  let sum = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  (* a monitor runs in parallel, polling the log slot *)
  let monitor = Cilk.spawn ctx (fun ctx -> Cell.read ctx log_slot) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:0 ~hi:10 (fun ctx i ->
          Reducer.update ctx sum (fun c v ->
              Cell.write c v (Cell.read c v + i);
              v)));
  Cilk.sync ctx;
  ignore (Cilk.get ctx monitor)

let () =
  print_endline "== Exhaustive coverage (paper §7) ==";
  (* one serial SP+ run: nothing *)
  let eng = Engine.create () in
  let d = Sp_plus.attach eng in
  ignore (Engine.run eng program);
  Printf.printf "single serial SP+ run:   %d races (reduce never executed)\n"
    (List.length (Sp_plus.races d));

  let res = Coverage.exhaustive_check program in
  Printf.printf
    "profile: K=%d continuations per sync block, depth D=%d, %d spawns\n"
    res.Coverage.prof.Coverage.k res.Coverage.prof.Coverage.d
    res.Coverage.prof.Coverage.n_spawns;
  Printf.printf "enumerated %d steal specifications (O(K + D + K^3))\n"
    res.Coverage.n_specs;
  Printf.printf "races found on %d location(s):\n" (List.length res.Coverage.racy_locs);
  List.iter (fun r -> Printf.printf "  %s\n" (Report.to_string r)) res.Coverage.reports;
  let finders = List.filter (fun (_, locs) -> locs <> []) res.Coverage.per_spec in
  Printf.printf "%d of %d specifications elicited the race; e.g. %s\n"
    (List.length finders) res.Coverage.n_specs
    (match finders with
    | (spec, _) :: _ -> spec.Rader_runtime.Steal_spec.name
    | [] -> "-")
