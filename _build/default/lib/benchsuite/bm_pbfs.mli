(** Parallel breadth-first search with a Bag reducer, after Leiserson &
    Schardl's PBFS (the paper's [pbfs] benchmark). Each BFS layer is
    processed by a parallel loop whose iterations toss newly discovered
    vertices into a bag reducer; between layers the bag is emptied
    serially, deduplicated against the distance array, and becomes the
    next frontier. The checksum is the FNV hash of the distance array. *)

val bench : seed:int -> n:int -> m:int -> grain:int -> Bench_def.t
