open Rader_runtime
open Rader_core

type witness = { w_reducer : int; w_first : int; w_second : int }
type t = witness list

let view_read (ir : Ir.t) =
  List.filter_map
    (fun rid ->
      let rec scan = function
        | a :: (b :: _ as rest) ->
            if a <> b && not (Rader_dag.Sp_tree.all_s_path ir.Ir.ix a b) then
              Some { w_reducer = rid; w_first = a; w_second = b }
            else scan rest
        | [] | [ _ ] -> None
      in
      scan (Ir.reads ir rid))
    (Ir.reducer_ids ir)

let racy_reducers v = List.map (fun w -> w.w_reducer) v

let cross_check ?reach program (ir : Ir.t) =
  let eng = Engine.create () in
  let d = Peer_set.attach ?reach eng in
  match Engine.run_result eng program with
  | Error f -> Error ("cross-check replay failed: " ^ Diag.to_string f)
  | Ok _ ->
      let dynamic =
        List.sort_uniq compare
          (List.filter_map
             (fun (r : Report.t) ->
               if r.Report.kind = Report.View_read_race then
                 Some r.Report.subject
               else None)
             (Peer_set.races d))
      in
      let static_ = racy_reducers (view_read ir) in
      if dynamic = static_ then Ok ()
      else
        let show l = String.concat "," (List.map string_of_int l) in
        Error
          (Printf.sprintf
             "static/dynamic view-read disagreement: static racy reducers \
              [%s] vs Peer-Set [%s]"
             (show static_) (show dynamic))
