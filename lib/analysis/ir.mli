(** The analyzable intermediate representation of one profiling run.

    [of_program] executes a program once, instrumented and recorded, under
    [Steal_spec.none] — the canonical serial execution every offline
    analysis in the paper is defined against — and lifts the recorded
    trace into an IR: the canonical SP parse tree (paper §4, Fig. 4) with
    its O(depth) path index, plus strand↔reducer provenance joining the
    tree's leaves back to the reducer operations and view-aware auxiliary
    frames that executed them. The static passes ({!Verdict}, {!Lint})
    answer their questions with tree queries alone — no replay, no
    detector shadow state.

    Under [Steal_spec.none] no continuation is stolen, so no identity or
    reduce frame ever runs and the trace's dag is the pure user
    computation ({!Rader_core.Trace.sp_tree}'s precondition); update
    frames do run (serially, as called children) and their strands appear
    as ordinary leaves. *)

type t = {
  trace : Rader_core.Trace.t;  (** the recorded serial execution *)
  tree : Rader_dag.Sp_tree.t;  (** canonical SP parse tree of [trace] *)
  ix : Rader_dag.Sp_tree.indexed;  (** path index over [tree] *)
  result : int;  (** the program's result (ostensibly deterministic) *)
  aux : (Rader_runtime.Tool.frame_kind * int * int) list;
      (** every view-aware auxiliary frame, serial order:
          [(kind, reducer, first strand)]; [reducer = -1] if unattributed *)
  reads_by_reducer : (int, int list) Hashtbl.t;
      (** reducer id → strands of its reducer-reads (create / get / set),
          serial order — the peers the Peer-Set algorithm compares *)
  updates_by_reducer : (int, int list) Hashtbl.t;
      (** reducer id → first strands of its update frames, serial order *)
  n_reducers : int;  (** reducer ids are [0 .. n_reducers - 1] *)
}

(** [of_program program] runs [program] once (recorded, no steals) and
    builds the IR. Total: a contained crash of the program under test
    yields [Error] with the structured diagnostic instead of a partial —
    hence structurally unsound — tree.
    @param max_events event budget for the profiling run (see
    [Engine.create]). *)
val of_program :
  ?max_events:int ->
  (Rader_runtime.Engine.ctx -> int) ->
  (t, Rader_core.Diag.failure) result

(** [reducer_ids ir] is the ids of every reducer the run created,
    ascending. *)
val reducer_ids : t -> int list

(** [reads ir rid] is the reducer-read strands of reducer [rid] in serial
    order ([[]] for an unknown id). The first entry is the creation read. *)
val reads : t -> int -> int list

(** [updates ir rid] is the update-frame strands of reducer [rid] in
    serial order. *)
val updates : t -> int -> int list

(** [loc_label ir loc] is the source label of an instrumented location. *)
val loc_label : t -> int -> string

(** [accesses ir] is the instrumented access log in serial order. *)
val accesses : t -> Rader_runtime.Engine.access list
