(* Property-based testing: on randomly generated Cilk programs, the
   detectors must agree exactly with the brute-force dag oracles —
   Theorem 4 for Peer-Set and the §6 correctness claim for SP+ — and the
   runtime must keep reducer results schedule-independent for ostensibly
   deterministic programs. *)

open Rader_runtime
open Rader_core
module G = Rader_testkit.Gen_program

let qtest ?(count = 150) name gen prop =
  QCheck2.Test.make ~name ~count ~print:G.print gen prop

(* Steal specs derived deterministically from a program-independent list,
   so failures reproduce. *)
let specs_for_sp_plus =
  [
    Steal_spec.none;
    Steal_spec.all ();
    Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ();
    Steal_spec.random ~seed:11 ~density:0.4 ();
    Steal_spec.random ~seed:77 ~density:0.8 ();
    Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 1; 2 ];
    Steal_spec.at_local_indices
      ~policy:(Steal_spec.Reduce_schedule (fun k -> if k = 3 then 1 else 0))
      [ 1; 2; 3 ];
  ]

(* ... plus a generated spec per program, widening schedule coverage: a
   random Bernoulli seed/density with a random reduce policy. *)
let gen_spec =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  let* density = float_bound_inclusive 1.0 in
  let* policy =
    oneof
      [
        return Steal_spec.Reduce_eagerly;
        return Steal_spec.Reduce_at_sync;
        (let* modulus = int_range 1 3 in
         let* amount = int_range 1 2 in
         return
           (Steal_spec.Reduce_schedule (fun k -> if k mod modulus = 0 then amount else 0)));
      ]
  in
  return (Steal_spec.random ~policy ~seed ~density ())

(* Peer-Set reports exactly the oracle's racy reducers (Theorem 4),
   evaluated on the serial execution. *)
let prop_peer_set_iff_oracle =
  qtest ~count:500 "Peer-Set = oracle (view-read races)"
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      let eng = Engine.create ~record:true () in
      let d = Peer_set.attach eng in
      ignore (Engine.run eng (G.interpret p));
      let detected =
        List.sort_uniq compare
          (List.map (fun r -> r.Report.subject) (Peer_set.races d))
      in
      let truth = Oracle.view_read_races eng in
      if detected <> truth then
        QCheck2.Test.fail_reportf "peer-set %s vs oracle %s"
          (String.concat "," (List.map string_of_int detected))
          (String.concat "," (List.map string_of_int truth))
      else true)

(* SP-bags agrees with the oracle on reducer-free programs under the
   serial schedule (Feng & Leiserson's guarantee). *)
let prop_sp_bags_iff_oracle_no_reducers =
  qtest ~count:300 "SP-bags = oracle (no reducers)"
    (G.gen ~with_reducers:false ~racy:false)
    (fun p ->
      let eng = Engine.create ~record:true () in
      let d = Sp_bags.attach eng in
      ignore (Engine.run eng (G.interpret p));
      let detected =
        List.sort_uniq compare (List.map (fun r -> r.Report.subject) (Sp_bags.races d))
      in
      detected = Oracle.determinacy_races eng)

(* SP-order and offset-span (the related-work baselines) also agree with
   the oracle on reducer-free programs under the serial schedule. *)
let prop_sp_order_iff_oracle_no_reducers =
  qtest ~count:400 "SP-order = oracle (no reducers)"
    (G.gen ~with_reducers:false ~racy:false)
    (fun p ->
      let eng = Engine.create ~record:true () in
      let d = Sp_order.attach eng in
      ignore (Engine.run eng (G.interpret p));
      let detected =
        List.sort_uniq compare (List.map (fun r -> r.Report.subject) (Sp_order.races d))
      in
      let truth = Oracle.determinacy_races eng in
      if detected <> truth then
        QCheck2.Test.fail_reportf "sp-order {%s} vs oracle {%s}"
          (String.concat "," (List.map string_of_int detected))
          (String.concat "," (List.map string_of_int truth))
      else true)

let prop_offset_span_iff_oracle_no_reducers =
  qtest ~count:400 "offset-span = oracle (no reducers)"
    (G.gen ~with_reducers:false ~racy:false)
    (fun p ->
      let eng = Engine.create ~record:true () in
      let d = Offset_span.attach eng in
      ignore (Engine.run eng (G.interpret p));
      let detected =
        List.sort_uniq compare
          (List.map (fun r -> r.Report.subject) (Offset_span.races d))
      in
      let truth = Oracle.determinacy_races eng in
      if detected <> truth then
        QCheck2.Test.fail_reportf "offset-span {%s} vs oracle {%s}"
          (String.concat "," (List.map string_of_int detected))
          (String.concat "," (List.map string_of_int truth))
      else true)

(* On reducer-free programs SP+ and SP-bags are the same algorithm. *)
let prop_sp_plus_equals_sp_bags_no_reducers =
  qtest ~count:200 "SP+ = SP-bags (no reducers)"
    (G.gen ~with_reducers:false ~racy:false)
    (fun p ->
      let run mk =
        let eng = Engine.create () in
        let races = mk eng in
        ignore (Engine.run eng (G.interpret p));
        races ()
      in
      let a =
        run (fun eng ->
            let d = Sp_bags.attach eng in
            fun () -> List.map (fun r -> r.Report.subject) (Sp_bags.races d))
      in
      let b =
        run (fun eng ->
            let d = Sp_plus.attach eng in
            fun () -> List.map (fun r -> r.Report.subject) (Sp_plus.races d))
      in
      List.sort_uniq compare a = List.sort_uniq compare b)

(* The central theorem: for every steal specification, SP+ detects a
   determinacy race on exactly the locations the performance-dag oracle
   says are racy — including races on view-aware strands. *)
let prop_sp_plus_iff_oracle =
  QCheck2.Test.make ~name:"SP+ = oracle under every steal spec" ~count:400
    ~print:(fun (p, _) -> G.print p)
    QCheck2.Gen.(pair (G.gen ~with_reducers:true ~racy:true) gen_spec)
    (fun (p, extra_spec) ->
      List.for_all
        (fun spec ->
          let eng = Engine.create ~spec ~record:true () in
          let d = Sp_plus.attach eng in
          ignore (Engine.run eng (G.interpret p));
          let detected = Sp_plus.racy_locs d in
          let truth = Oracle.determinacy_races eng in
          if detected <> truth then
            QCheck2.Test.fail_reportf "spec %s: sp+ {%s} vs oracle {%s}"
              spec.Steal_spec.name
              (String.concat "," (List.map string_of_int detected))
              (String.concat "," (List.map string_of_int truth))
          else true)
        (extra_spec :: specs_for_sp_plus))

(* Peer-Set verdicts are a property of the user dag, so they must not
   depend on the steal specification (auxiliary view-management frames are
   transparent to the algorithm). *)
let prop_peer_set_spec_independent =
  qtest ~count:150 "Peer-Set verdicts independent of the schedule"
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      let verdict spec =
        let eng = Engine.create ~spec () in
        let d = Peer_set.attach eng in
        ignore (Engine.run eng (G.interpret p));
        List.sort_uniq compare (List.map (fun r -> r.Report.subject) (Peer_set.races d))
      in
      let serial = verdict Steal_spec.none in
      List.for_all (fun spec -> verdict spec = serial) specs_for_sp_plus)

(* Lemma 2 / Lemma 4 on real executions: the canonical SP parse tree
   reconstructed from a serial trace must agree with the dag oracles —
   tree all-S paths ⟺ equal peer sets, P-node LCAs ⟺ logical
   parallelism. *)
let prop_sp_tree_of_trace_matches_dag =
  qtest ~count:150 "canonical SP tree of trace = dag oracles"
    (G.gen ~with_reducers:true ~racy:false)
    (fun p ->
      let eng = Engine.create ~record:true () in
      ignore (Engine.run eng (G.interpret p));
      let tr = Trace.of_engine eng in
      let tree = Trace.sp_tree tr in
      let n = Rader_dag.Dag.n_strands tr.Trace.dag in
      let leaves = List.sort compare (Rader_dag.Sp_tree.leaves tree) in
      if leaves <> List.init n Fun.id then
        QCheck2.Test.fail_reportf "leaves are not exactly the %d strands" n
      else begin
        let ix = Rader_dag.Sp_tree.index tree in
        let reach = Rader_dag.Reach.compute tr.Trace.dag in
        let peers = Rader_dag.Peers.compute tr.Trace.dag in
        let ok = ref true in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if u <> v then begin
              if Rader_dag.Sp_tree.parallel ix u v <> Rader_dag.Reach.parallel reach u v
              then ok := false;
              if
                Rader_dag.Sp_tree.all_s_path ix u v
                <> Rader_dag.Peers.equal_peers peers u v
              then ok := false
            end
          done
        done;
        !ok
      end)

(* Trace round-trips preserve the oracle verdicts on random programs. *)
let prop_trace_roundtrip =
  qtest ~count:100 "trace save/load round-trips"
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      let eng = Engine.create ~spec:(Steal_spec.all ()) ~record:true () in
      ignore (Engine.run eng (G.interpret p));
      let tr = Trace.of_engine eng in
      let path = Filename.temp_file "rader" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace.save tr path;
          let tr' = Trace.load path in
          Trace.equal tr tr'
          && Oracle.determinacy_races_t tr' = Oracle.determinacy_races eng))

(* Ostensibly deterministic programs (pure reducers, no mid-computation
   reducer reads) produce identical results under every schedule. *)
let prop_deterministic_across_specs =
  qtest ~count:300 "results schedule-independent (ostensibly deterministic)"
    (G.gen ~with_reducers:true ~racy:false)
    (fun p ->
      let expected, _ = Cilk.exec (G.interpret p) in
      List.for_all
        (fun spec ->
          let v, _ = Cilk.exec ~spec (G.interpret p) in
          v = expected)
        specs_for_sp_plus)

(* The engine's bookkeeping is internally consistent on arbitrary
   programs and schedules. *)
let prop_engine_invariants =
  qtest ~count:200 "engine invariants hold under every spec"
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      List.for_all
        (fun spec ->
          let eng = Engine.create ~spec ~record:true () in
          ignore (Engine.run eng (G.interpret p));
          let s = Engine.stats eng in
          let dag = Option.get (Engine.dag eng) in
          let ok_counts =
            Rader_dag.Dag.n_strands dag = s.Engine.n_strands
            && s.Engine.n_steals <= s.Engine.n_spawns
            && List.length (Engine.spawn_log eng) = s.Engine.n_spawns
          in
          (* single sink: the root's final sync strand *)
          let sinks = ref 0 in
          for i = 0 to Rader_dag.Dag.n_strands dag - 1 do
            if Rader_dag.Dag.succs dag i = [] then incr sinks
          done;
          ok_counts && !sinks = 1)
        specs_for_sp_plus)

(* Peer-Set never reports on programs whose reducer-reads all happen at
   quiescent points: wrap every generated body so reads occur only before
   any spawn and after a final sync. *)
let prop_peer_set_quiescent_reads_clean =
  qtest ~count:150 "Peer-Set accepts quiescent reducer usage"
    (G.gen ~with_reducers:true ~racy:false)
    (fun p ->
      let eng = Engine.create () in
      let d = Peer_set.attach eng in
      ignore (Engine.run eng (G.interpret p));
      (* racy:false bodies contain no mid-body reducer reads; the only
         reducer-reads are creation and the final post-sync reads. *)
      not (Peer_set.found d))

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_peer_set_iff_oracle;
        prop_sp_bags_iff_oracle_no_reducers;
        prop_sp_order_iff_oracle_no_reducers;
        prop_offset_span_iff_oracle_no_reducers;
        prop_sp_plus_equals_sp_bags_no_reducers;
        prop_sp_plus_iff_oracle;
        prop_peer_set_spec_independent;
        prop_sp_tree_of_trace_matches_dag;
        prop_trace_roundtrip;
        prop_deterministic_across_specs;
        prop_engine_invariants;
        prop_peer_set_quiescent_reads_clean;
      ]
  in
  Alcotest.run "property" [ ("detectors-vs-oracles", suite) ]
