(** Deterministic parallel fan-out over an indexed work queue (OCaml 5
    domains) — the sharding substrate of the parallel §7 coverage sweep.

    Tasks are numbered [0 .. n-1] and handed out through a single atomic
    counter; each worker domain builds its own state once ([init], e.g. a
    reusable engine + detector pair) and then replays tasks against it.
    Results land in per-index slots, so the caller can merge them {e in
    index order} and obtain output independent of how tasks were
    interleaved across domains. With [jobs = 1] everything runs inline in
    the calling domain — no domain is spawned — which is the reference
    serial order the deterministic merge reproduces. *)

type stats = {
  jobs : int;  (** worker count actually used *)
  n_tasks : int;
  n_skipped : int;  (** tasks given to [skipped] because [stop] was true *)
}

(** [default_jobs ()] is [Domain.recommended_domain_count ()], unless the
    [RADER_FORCE_DOMAINS] environment variable holds a positive integer
    [N], in which case it is [N] — the escape hatch that keeps the
    cross-domain paths exercised on single-core CI runners, where the
    probed count would collapse every default-jobs sweep to the inline
    path. *)
val default_jobs : unit -> int

(** [map ~init ~task ~skipped n] runs [task st i] for every
    [i in 0 .. n-1] and returns the results indexed by [i], plus sweep
    statistics.

    @param jobs worker domains (default 1 = run inline; [<= 0] means
    {!default_jobs}). At most [n] domains are used.
    @param stop polled before each task; once it returns true the
    remaining tasks are produced by [skipped] instead of [task] (the
    sweep-wide deadline hook). Which indices get skipped depends on timing
    when [jobs >= 2].
    @param init builds one worker's private state from its worker id;
    called once per domain.
    @param task must not share mutable state across calls on different
    workers; an exception poisons the sweep and is re-raised after all
    domains are joined. *)
val map :
  ?jobs:int ->
  ?stop:(unit -> bool) ->
  init:(int -> 'w) ->
  task:('w -> int -> 'a) ->
  skipped:(int -> 'a) ->
  int ->
  'a array * stats
