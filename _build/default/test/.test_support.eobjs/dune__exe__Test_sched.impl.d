test/test_sched.ml: Alcotest Array Cilk Engine List Option Printf Rader_dag Rader_runtime Rader_sched Rmonoid Schedule_gen Steal_spec Wsim
