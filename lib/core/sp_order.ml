module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Om = Rader_support.Om
module Reach = Rader_reach.Reach
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr

type fstate = {
  fid : int;
  mutable cur_e : Om.elt; (* English label of the current strand *)
  mutable cur_h : Om.elt; (* Hebrew label of the current strand *)
  mutable pending_cont_h : Om.elt; (* Hebrew label reserved for the
                                      continuation of the ongoing spawn *)
  mutable first_child_last_h : Om.elt; (* Hebrew label of the last strand of
                                          the current sync block's first
                                          spawned child; -1 if none *)
}

(* Two ways to answer "is the recorded access parallel with the current
   strand?":

   - [Labels]: the SPAA'04 English/Hebrew order-maintenance lists this
     module exists to reproduce (the default).
   - [Fingerprints]: the shared [Reach.Sp] precedence oracle, queried at
     frame granularity. Frame granularity suffices here: SP-order's
     shadow entries are always serially earlier than the current strand,
     and a past frame relates uniformly to the current point — live
     ancestors are serial with it, completed frames are serial or
     parallel as a whole (their strands all sit in the same S/P bag).
     What does NOT transfer is the per-strand label pair itself — the
     Hebrew order totally orders strands within one frame, which the
     frame-level oracle cannot see — so the [Labels] oracle stays both
     the default and the reference implementation, and the strand-level
     order queries are exactly the part that cannot reuse [Reach].
     SP-order is reducer-unaware, so the oracle runs with
     [parallel = spawned] at returns and never sees steal/reduce events
     (KS/KP classification is steal- and reduce-invariant). *)
type oracle = Labels | Fingerprints of Reach.Sp.t

type t = {
  eng : Engine.t;
  english : Om.t;
  hebrew : Om.t;
  oracle : oracle;
  stack : fstate Dynarr.t;
  reader_h : Shadow.t; (* loc -> Hebrew label of last recorded reader *)
  writer_h : Shadow.t;
  collector : Report.collector;
  reader_frame : Shadow.t; (* loc -> frame of recorded reader, for reports *)
  writer_frame : Shadow.t;
}

let create ?reach eng =
  {
    eng;
    english = Om.create ();
    hebrew = Om.create ();
    oracle =
      (match reach with
      | None -> Labels
      | Some b -> Fingerprints (Reach.Sp.create b));
    stack = Dynarr.create ();
    reader_h = Shadow.create ();
    writer_h = Shadow.create ();
    collector = Report.collector ();
    reader_frame = Shadow.create ();
    writer_frame = Shadow.create ();
  }

let top d = Dynarr.top d.stack

let labels_enter d ~frame ~spawned =
  if Dynarr.is_empty d.stack then
    Dynarr.push d.stack
      {
        fid = frame;
        cur_e = Om.base d.english;
        cur_h = Om.base d.hebrew;
        pending_cont_h = -1;
        first_child_last_h = -1;
      }
  else begin
    let f = top d in
    let child_e = Om.insert_after d.english f.cur_e in
    let child_h =
      if spawned then begin
        (* Hebrew: continuation first, then the child; reserve the
           continuation's label now so the child's strands land after it. *)
        let cont_h = Om.insert_after d.hebrew f.cur_h in
        f.pending_cont_h <- cont_h;
        Om.insert_after d.hebrew cont_h
      end
      else Om.insert_after d.hebrew f.cur_h
    in
    Dynarr.push d.stack
      {
        fid = frame;
        cur_e = child_e;
        cur_h = child_h;
        pending_cont_h = -1;
        first_child_last_h = -1;
      }
  end

let labels_return d ~frame ~spawned =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  if not (Dynarr.is_empty d.stack) then begin
    let f = top d in
    (* English order = serial order: the continuation strand follows the
       child's last strand. *)
    f.cur_e <- Om.insert_after d.english g.cur_e;
    if spawned then begin
      if f.first_child_last_h = -1 then f.first_child_last_h <- g.cur_h;
      f.cur_h <- f.pending_cont_h
    end
    else f.cur_h <- Om.insert_after d.hebrew g.cur_h
  end

let labels_sync d ~frame =
  let f = top d in
  assert (f.fid = frame);
  (* The post-sync strand is in series with everything in the block. In
     Hebrew order the block's maximum is the last strand of the FIRST
     spawned child (spawned children's chains stack in reverse). *)
  f.cur_e <- Om.insert_after d.english f.cur_e;
  f.cur_h <-
    Om.insert_after d.hebrew
      (if f.first_child_last_h = -1 then f.cur_h else f.first_child_last_h);
  f.first_child_last_h <- -1

let on_frame_enter d ~frame ~spawned =
  match d.oracle with
  | Labels -> labels_enter d ~frame ~spawned
  | Fingerprints r -> Reach.Sp.on_frame_enter r ~frame

let on_frame_return d ~frame ~spawned =
  match d.oracle with
  | Labels -> labels_return d ~frame ~spawned
  | Fingerprints r -> ignore (Reach.Sp.on_frame_return r ~frame ~parallel:spawned)

let on_sync d ~frame =
  match d.oracle with
  | Labels -> labels_sync d ~frame
  | Fingerprints r -> ignore (Reach.Sp.on_sync r ~frame)

(* The recorded access is serially — hence English- — before the current
   strand, so it is logically parallel iff the current strand is
   Hebrew-before it (Labels), or iff its frame classifies as parallel
   with the current point (Fingerprints). False when nothing is
   recorded. *)
let recorded_parallel d sh_h sh_f loc =
  match d.oracle with
  | Labels ->
      let h = Shadow.get sh_h loc in
      h <> Shadow.absent && Om.precedes d.hebrew (top d).cur_h h
  | Fingerprints r ->
      let pf = Shadow.get sh_f loc in
      pf <> Shadow.absent && Reach.Sp.classify r pf <> Reach.Sp.Serial

(* Shadow update follows the pseudotransitivity discipline: keep the
   recorded access unless it is serial with (or absent for) the current
   strand. *)
let record d sh_h sh_f loc ~frame =
  (match d.oracle with
  | Labels -> Shadow.set sh_h loc (top d).cur_h
  | Fingerprints _ -> ());
  Shadow.set sh_f loc frame

let report d ~loc ~first_frame ~first_access ~second_access ~frame =
  Report.report d.collector
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label d.eng loc;
      first_frame;
      first_access;
      second_frame = frame;
      second_access;
      second_strand = Engine.current_strand d.eng;
      second_view_aware = false;
      detail = "(SP-order)";
    }

let on_read d ~frame ~loc =
  if recorded_parallel d d.writer_h d.writer_frame loc then
    report d ~loc
      ~first_frame:(Shadow.get d.writer_frame loc)
      ~first_access:Report.Write ~second_access:Report.Read ~frame;
  if not (recorded_parallel d d.reader_h d.reader_frame loc) then
    record d d.reader_h d.reader_frame loc ~frame

let on_write d ~frame ~loc =
  if recorded_parallel d d.reader_h d.reader_frame loc then
    report d ~loc
      ~first_frame:(Shadow.get d.reader_frame loc)
      ~first_access:Report.Read ~second_access:Report.Write ~frame;
  let wpar = recorded_parallel d d.writer_h d.writer_frame loc in
  if wpar then
    report d ~loc
      ~first_frame:(Shadow.get d.writer_frame loc)
      ~first_access:Report.Write ~second_access:Report.Write ~frame;
  if not wpar then record d d.writer_h d.writer_frame loc ~frame

let tool d =
  Tool.extern
    {
      Tool.hooks_null with
      Tool.on_frame_enter =
        (fun ~frame ~parent:_ ~spawned ~kind:_ ->
          on_frame_enter d ~frame ~spawned);
      on_frame_return =
        (fun ~frame ~parent:_ ~spawned ~kind:_ ->
          on_frame_return d ~frame ~spawned);
      on_sync = (fun ~frame -> on_sync d ~frame);
      on_read = (fun ~frame ~loc ~view_aware:_ -> on_read d ~frame ~loc);
      on_write = (fun ~frame ~loc ~view_aware:_ -> on_write d ~frame ~loc);
    }

let attach ?reach eng =
  let d = create ?reach eng in
  Engine.set_tool eng (tool d);
  d

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
