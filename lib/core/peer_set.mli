(** The Peer-Set algorithm (paper §3, Fig. 3).

    Detects {e view-read races}: two reducer-reads (create / set-value /
    get-value) of the same reducer executed at strands with different peer
    sets, which makes the value observed dependent on scheduling. The
    algorithm follows the serial execution, maintaining for every function
    instantiation [F] on the call stack the ancestor-spawn count [F.as],
    the local-spawn count [F.ls], and three bags of completed-descendant
    ids in a fast disjoint-set structure:

    - [F.SS]: descendants with the same peer set as [F]'s first strand;
    - [F.SP]: descendants with the same peer set as the last continuation
      strand [F] executed (empty if [F] has not spawned since its last
      sync);
    - [F.P]: all other completed descendants.

    A shadow map [reader(h)] keeps the last reader of reducer [h] and its
    spawn count. A reducer-read races with the previous one iff the
    previous reader sits in a P bag or the spawn counts differ
    (paper Lemma 3 / Theorem 4).

    The bag bookkeeping lives behind the pluggable
    {!Rader_reach.Reach.Peer} precedence backend: [Dset] (the default) is
    the disjoint-set machinery above, [Depa] answers the same P-bag
    membership question from the live stack and per-frame SP generations
    in worst-case O(1). Verdicts are identical.

    The detector is correct for the serial execution ([Steal_spec.none]);
    run it without steals, as Rader does for the Check-view-read-race
    configuration. Cost: O(T α(x, x)) for x reducers (Theorem 1) under
    [Dset], O(T) under [Depa]. *)

type t

(** [create eng] makes a detector bound to [eng] (for strand ids and
    labels in reports). Install with [Engine.set_tool eng (tool d)] or use
    {!attach}. *)
val create : ?reach:Rader_reach.Reach.backend -> Rader_runtime.Engine.t -> t

(** [tool d] is the detector's event interface. *)
val tool : t -> Rader_runtime.Tool.t

(** [attach eng] creates a detector and installs it on [eng]. *)
val attach : ?reach:Rader_reach.Reach.backend -> Rader_runtime.Engine.t -> t

(** [backend d] is the precedence backend [d] was created with. *)
val backend : t -> Rader_reach.Reach.backend

(** [reset d] empties all detector state while keeping grown arenas and
    re-installs [d] as its engine's tool (mirrors {!Sp_plus.reset}). *)
val reset : t -> unit

(** [races d] is the view-read races found so far, one per reducer. *)
val races : t -> Report.t list

(** [found d] is true iff any race was detected. *)
val found : t -> bool
