module Bag = Rader_dsets.Bag
module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type backend = Dset | Depa

let all = [ Dset; Depa ]

let show = function Dset -> "dset" | Depa -> "depa"

let parse = function
  | "dset" -> Ok Dset
  | "depa" -> Ok Depa
  | s -> Error (Printf.sprintf "unknown reachability backend %S (expected dset|depa)" s)

let doc_alts = "dset|depa"

(* ---------------------------------------------------------------------- *)
(* Fork-path fingerprints (shared by the depa backends).

   A frame's fingerprint is the sequence of child ordinals along its path
   from the root, each ordinal [i] encoded as the Elias-gamma code of
   [i+1] and packed MSB-first into 62-bit words. Gamma codes are
   prefix-free, so one fingerprint's bit string is a prefix of another's
   iff its path is an ancestor path — and the first differing bit sits
   inside the gamma code of the first diverging child, which a word XOR
   plus an in-word decode recovers in O(1) per word.

   Codes never straddle words: a code that does not fit the current
   word's remaining bits starts at bit 0 of a fresh word (the tail of the
   old word is zero padding), and [word_lvl.(j)] records the path level
   of the first code starting in word [j], so any word can be decoded
   from its own bit 0 without touching earlier words. Fingerprints are
   immutable; extension copies the word array (one or two words for every
   benchmark in the suite) — which is also what makes concurrent readers
   safe: a query never mutates, and never observes a half-built code. *)

let word_bits = 62

type fp = {
  words : int array;
  word_lvl : int array; (* word -> level of the first code starting there *)
  nbits : int; (* position where the next code would start *)
  ncodes : int; (* path depth *)
}

let fp_root = { words = [||]; word_lvl = [||]; nbits = 0; ncodes = 0 }

let bits_len v =
  let n = ref 0 and v = ref v in
  while !v <> 0 do
    incr n;
    v := !v lsr 1
  done;
  !n

let fp_extend fp ~ord =
  let v = ord + 1 in
  let l = bits_len v in
  let clen = (2 * l) - 1 in
  if clen > word_bits then invalid_arg "Reach: child ordinal out of range";
  let nw = Array.length fp.words in
  let j = fp.nbits / word_bits and off = fp.nbits mod word_bits in
  if j < nw && off + clen <= word_bits then begin
    let words = Array.copy fp.words in
    words.(j) <- words.(j) lor (v lsl (word_bits - off - clen));
    (* word_lvl is immutable and unchanged: share it *)
    { words; word_lvl = fp.word_lvl; nbits = fp.nbits + clen; ncodes = fp.ncodes + 1 }
  end
  else begin
    let words = Array.make (nw + 1) 0 in
    Array.blit fp.words 0 words 0 nw;
    words.(nw) <- v lsl (word_bits - clen);
    let word_lvl = Array.make (nw + 1) 0 in
    Array.blit fp.word_lvl 0 word_lvl 0 nw;
    word_lvl.(nw) <- fp.ncodes;
    { words; word_lvl; nbits = (nw * word_bits) + clen; ncodes = fp.ncodes + 1 }
  end

(* Ordinal encoded by code [idx] of [fp]. Requires [idx < fp.ncodes]. *)
let code_at fp idx =
  let wl = fp.word_lvl in
  let lo = ref 0 and hi = ref (Array.length wl - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if wl.(mid) <= idx then lo := mid else hi := mid - 1
  done;
  let w = fp.words.(!lo) in
  let t = ref wl.(!lo) and off = ref 0 in
  let res = ref 0 in
  (try
     while true do
       let z = ref 0 in
       while (w lsr (word_bits - 1 - (!off + !z))) land 1 = 0 do
         incr z
       done;
       let l = !z + 1 in
       let e = !off + (2 * l) - 1 in
       if !t = idx then begin
         res := (w lsr (word_bits - e)) land ((1 lsl l) - 1);
         raise Exit
       end;
       off := e;
       incr t
     done
   with Exit -> ());
  !res - 1

type div = Prefix | Diverge of { level : int; uord : int }

(* [divergence u v] relates recorded path [u] to current path [v]:
   [Prefix] iff [u]'s codes are a prefix of [v]'s (ancestor-or-self), else
   the first diverging level plus [u]'s child ordinal there. Also returns
   the number of words examined, for the cost counters. *)
let divergence u v =
  let nu = Array.length u.words and nv = Array.length v.words in
  let n = if nu < nv then nu else nv in
  let j = ref 0 in
  while !j < n && u.words.(!j) = v.words.(!j) do
    incr j
  done;
  let touched = if !j < n then !j + 1 else max 1 !j in
  if !j = n then
    if u.ncodes <= v.ncodes then (Prefix, touched)
    else (Diverge { level = v.ncodes; uord = code_at u v.ncodes }, touched)
  else begin
    let j = !j in
    (* offset (MSB-first) of the first differing bit *)
    let db =
      let b = ref (-1) and x = ref (u.words.(j) lxor v.words.(j)) in
      while !x <> 0 do
        incr b;
        x := !x lsr 1
      done;
      word_bits - 1 - !b
    in
    let w = u.words.(j) in
    let t = ref u.word_lvl.(j) and off = ref 0 in
    let res = ref Prefix in
    (try
       while true do
         if !t >= u.ncodes then raise Exit (* all of [u] matched: prefix *)
         else if j + 1 < Array.length u.word_lvl && u.word_lvl.(j + 1) = !t then begin
           (* [u]'s code [t] spilled to the next word while [v]'s fit
              here, so the two codes differ in length, hence in value *)
           res := Diverge { level = !t; uord = code_at u !t };
           raise Exit
         end;
         let z = ref 0 in
         while (w lsr (word_bits - 1 - (!off + !z))) land 1 = 0 do
           incr z
         done;
         let l = !z + 1 in
         let e = !off + (2 * l) - 1 in
         if e > db then begin
           res :=
             Diverge
               { level = !t; uord = ((w lsr (word_bits - e)) land ((1 lsl l) - 1)) - 1 };
           raise Exit
         end;
         off := e;
         incr t
       done
     with Exit -> ());
    (!res, touched)
  end

(* ---------------------------------------------------------------------- *)

(* Pairwise structural precedence for the online runtime.

   The serially-anchored backends below ([Sp], [Peer]) classify a
   recorded frame against "the current strand" of one depth-first serial
   execution — a notion that does not exist when many workers execute the
   SP tree at once. [Fp] instead relates two arbitrary {e points} of the
   computation from immutable per-frame records: each frame stores its
   fork-path fingerprint plus the coordinates of its creation edge
   (ordinal, spawned?, parent's sync block and in-frame sequence number),
   and every access captures its frame, block, sequence number, view
   region and chain-spawn stamp. Records are written once, by the frame's
   creator, before any other worker can see them, so queries from
   concurrent domains race with nothing — the same immutability argument
   that makes the [depa] backend's fingerprints safe under concurrent
   SP-tree extension, and the reason the mutating [dset] machinery is
   unusable online.

   For a fully strict program, two points [a] (serially earlier) and [b]
   are logically parallel iff, at their least common ancestor frame [L],
   [a] lies strictly inside a {e spawned} child subtree of [L] whose
   creation edge belongs to the same sync block of [L] as [b]'s side —
   i.e. [L] has not yet passed the sync that joins [a]'s subtree when [b]
   runs. The fingerprint divergence locates [L] in O(⌈depth/62⌉) word
   compares; two bounded parent walks then fetch the edge records. *)

module Fp = struct
  type frame = {
    f_fp : fp;
    f_parent : frame option;
    f_depth : int;
    f_spawned : bool;  (* creation edge: spawned (vs called) child *)
    f_block : int;  (* parent's sync block at creation *)
    f_seq : int;  (* parent's in-frame sequence number at creation *)
    f_rid_entry : int;  (* view region the child starts in *)
    f_cum_entry : int;
        (* chain-spawn stamp just after this edge: parent's stamp plus
           every spawn the parent had performed, including this edge's own
           spawn when [f_spawned] *)
  }

  let root () =
    {
      f_fp = fp_root;
      f_parent = None;
      f_depth = 0;
      f_spawned = false;
      f_block = 0;
      f_seq = 0;
      f_rid_entry = 0;
      f_cum_entry = 0;
    }

  let child parent ~ord ~spawned ~block ~seq ~rid_entry ~cum_entry =
    {
      f_fp = fp_extend parent.f_fp ~ord;
      f_parent = Some parent;
      f_depth = parent.f_depth + 1;
      f_spawned = spawned;
      f_block = block;
      f_seq = seq;
      f_rid_entry = rid_entry;
      f_cum_entry = cum_entry;
    }

  let depth f = f.f_depth

  type point = {
    p_frame : frame;
    p_block : int;  (* frame's sync block at the access *)
    p_seq : int;  (* frame's sequence number at the access *)
    p_rid : int;  (* view region at the access *)
    p_cum : int;  (* chain-spawn stamp at the access *)
  }

  type verdict =
    | Parallel of { a_before_b : bool; earlier_entry_rid : int }
        (* [earlier_entry_rid]: entry region of the serially-earlier
           point's child edge at the LCA — the region its whole subtree
           has been folded back into by the time the later point runs
           under the at-sync reduce policy, i.e. the surviving view id
           the serial SP+ comparison sees. *)
    | Serial of { a_before_b : bool; spawns_between_lb : int }
        (* [spawns_between_lb]: a sound lower bound on the number of
           spawns serially between the two points (chain spawns only —
           spawns inside the earlier point's completed subtree are not
           counted), used for the Peer-Set Lemma-3 spawn-count test. *)

  let rec ancestor_at fr d =
    if fr.f_depth = d then fr
    else
      match fr.f_parent with
      | Some p -> ancestor_at p d
      | None -> invalid_arg "Reach.Fp.ancestor_at: depth below root"

  (* Relate an in-frame point of the LCA to a point below it through edge
     [e]. In-frame coordinates at equal [f_seq] precede the edge: the
     sequence number is bumped when the child is created, so an access
     observing [seq = s] happened before the child whose edge records
     [f_seq = s]. An in-frame point that precedes the edge is never
     parallel to the subtree (the subtree is spawned after it). *)
  let relate_inframe ~inframe_first pt e other_pt =
    if pt.p_seq <= e.f_seq then
      Serial
        {
          a_before_b = inframe_first;
          spawns_between_lb = other_pt.p_cum - pt.p_cum;
        }
    else if e.f_spawned && e.f_block = pt.p_block then
      Parallel
        { a_before_b = not inframe_first; earlier_entry_rid = e.f_rid_entry }
    else
      Serial
        {
          a_before_b = not inframe_first;
          spawns_between_lb = pt.p_cum - e.f_cum_entry;
        }

  let relate a b =
    let fa = a.p_frame and fb = b.p_frame in
    if fa == fb then
      (* One frame executes its own statements serially. Equal sequence
         numbers mean no child creation separated the two accesses; the
         order is then immaterial to every client (identical coordinates),
         so break the tie arbitrarily. *)
      let a_first =
        a.p_seq < b.p_seq || (a.p_seq = b.p_seq && a.p_cum <= b.p_cum)
      in
      let lo, hi = if a_first then (a, b) else (b, a) in
      Serial { a_before_b = a_first; spawns_between_lb = hi.p_cum - lo.p_cum }
    else begin
      let d, words = divergence fa.f_fp fb.f_fp in
      if Obs.enabled () then Obs.bump_reach_query ~words;
      match d with
      | Prefix when fa.f_depth <= fb.f_depth ->
          (* [fa] is an ancestor of [fb]: the LCA is [fa] itself. *)
          let e = ancestor_at fb (fa.f_depth + 1) in
          relate_inframe ~inframe_first:true a e b
      | Prefix ->
          (* Equal-length distinct paths cannot happen (one frame record
             per path); [fb] is an ancestor of [fa]. *)
          let e = ancestor_at fa (fb.f_depth + 1) in
          relate_inframe ~inframe_first:false b e a
      | Diverge { level; uord = _ } when level >= fb.f_depth ->
          (* [divergence] is asymmetric: [fb] a strict ancestor of [fa]
             comes back as a divergence at [fb]'s own depth, not as
             [Prefix]. *)
          let e = ancestor_at fa (fb.f_depth + 1) in
          relate_inframe ~inframe_first:false b e a
      | Diverge { level; uord = _ } ->
          let ea = ancestor_at fa (level + 1) in
          let eb = ancestor_at fb (level + 1) in
          (* Distinct children of one parent have distinct sequence
             numbers. *)
          let a_first = ea.f_seq < eb.f_seq in
          let e_early, e_late, pt_late =
            if a_first then (ea, eb, b) else (eb, ea, a)
          in
          if e_early.f_spawned && e_early.f_block = e_late.f_block then
            Parallel
              { a_before_b = a_first; earlier_entry_rid = e_early.f_rid_entry }
          else
            Serial
              {
                a_before_b = a_first;
                spawns_between_lb = pt_late.p_cum - e_early.f_cum_entry;
              }
    end

  (* [serial_before a b]: [a] strictly precedes [b] in the depth-first
     serial order. Parallel points are ordered by their LCA edges — the
     left subtree's strands all precede the right's serially. *)
  let serial_before a b =
    match relate a b with
    | Serial { a_before_b; _ } | Parallel { a_before_b; _ } -> a_before_b
end

module Sp = struct
  type cls = Serial | Parallel of int

  (* -------- dset backend: the seed's bag machinery, verbatim -------- *)

  type bag_kind = KS | KP

  type payload = { bkind : bag_kind; vid : int }

  type dframe = { dfid : int; s : payload Bag.t; dpstack : payload Bag.t Dynarr.t }

  type dstate = { store : payload Bag.store; dstack : dframe Dynarr.t }

  let d_top_vid f = (Bag.payload (Dynarr.top f.dpstack)).vid

  let d_enter st ~frame =
    let vid =
      if Dynarr.is_empty st.dstack then 0 else d_top_vid (Dynarr.top st.dstack)
    in
    let s = Bag.make st.store { bkind = KS; vid } [ frame ] in
    let dpstack = Dynarr.create () in
    Dynarr.push dpstack (Bag.make st.store { bkind = KP; vid } []);
    Dynarr.push st.dstack { dfid = frame; s; dpstack }

  let d_return st ~frame ~parallel =
    let g = Dynarr.pop st.dstack in
    assert (g.dfid = frame);
    if not (Dynarr.is_empty st.dstack) then begin
      let f = Dynarr.top st.dstack in
      if parallel then Bag.union_into st.store ~dst:(Dynarr.top f.dpstack) ~src:g.s
      else Bag.union_into st.store ~dst:f.s ~src:g.s
    end

  let d_sync st ~frame =
    let f = Dynarr.top st.dstack in
    assert (f.dfid = frame);
    assert (Dynarr.length f.dpstack = 1);
    let p = Dynarr.pop f.dpstack in
    Bag.union_into st.store ~dst:f.s ~src:p;
    let svid = (Bag.payload f.s).vid in
    Dynarr.push f.dpstack (Bag.make st.store { bkind = KP; vid = svid } [])

  let d_steal st ~frame ~region =
    let f = Dynarr.top st.dstack in
    assert (f.dfid = frame);
    Dynarr.push f.dpstack (Bag.make st.store { bkind = KP; vid = region } [])

  let d_reduce st ~frame =
    let f = Dynarr.top st.dstack in
    assert (f.dfid = frame);
    let p = Dynarr.pop f.dpstack in
    Bag.union_into st.store ~dst:(Dynarr.top f.dpstack) ~src:p

  let d_classify st u =
    match Bag.find st.store u with
    | None -> Serial
    | Some bag ->
        let p = Bag.payload bag in
        if p.bkind = KP then Parallel p.vid else Serial

  (* -------- depa backend: fingerprints + view epochs -------- *)

  type zframe = {
    mutable zfid : int;
    mutable zfp : fp;
    mutable entry_vid : int;
    mutable ord : int; (* child ordinal in the parent; -1 for the root *)
    mutable nchildren : int; (* next child ordinal *)
    mutable base_ord : int; (* [nchildren] at the last sync *)
    child_ep : int Dynarr.t; (* ordinal - base_ord -> epoch, -1 if serial *)
    ep : int Dynarr.t; (* live view epochs, increasing bottom to top *)
    vd : int Dynarr.t; (* view ids, parallel to [ep] *)
  }

  type zstate = {
    mutable next_epoch : int;
    zstack : zframe Dynarr.t;
    zpool : zframe Dynarr.t; (* recycled records: frames are LIFO *)
    ftab : fp option Dynarr.t; (* frame id -> fingerprint *)
  }

  let fresh_epoch st =
    let e = st.next_epoch in
    st.next_epoch <- e + 1;
    e

  let z_alloc st =
    if Dynarr.is_empty st.zpool then
      {
        zfid = -1;
        zfp = fp_root;
        entry_vid = 0;
        ord = -1;
        nchildren = 0;
        base_ord = 0;
        child_ep = Dynarr.create ();
        ep = Dynarr.create ();
        vd = Dynarr.create ();
      }
    else begin
      let g = Dynarr.pop st.zpool in
      Dynarr.clear g.child_ep;
      Dynarr.clear g.ep;
      Dynarr.clear g.vd;
      g
    end

  let z_enter st ~frame =
    let zfp, vid, ord =
      if Dynarr.is_empty st.zstack then (fp_root, 0, -1)
      else begin
        let f = Dynarr.top st.zstack in
        let ord = f.nchildren in
        f.nchildren <- ord + 1;
        (fp_extend f.zfp ~ord, Dynarr.top f.vd, ord)
      end
    in
    let g = z_alloc st in
    g.zfid <- frame;
    g.zfp <- zfp;
    g.entry_vid <- vid;
    g.ord <- ord;
    g.nchildren <- 0;
    g.base_ord <- 0;
    Dynarr.push g.ep (fresh_epoch st);
    Dynarr.push g.vd vid;
    Dynarr.push st.zstack g;
    Dynarr.ensure st.ftab (frame + 1) None;
    Dynarr.set st.ftab frame (Some zfp)

  let z_return st ~frame ~parallel =
    let g = Dynarr.pop st.zstack in
    assert (g.zfid = frame);
    if not (Dynarr.is_empty st.zstack) then begin
      let f = Dynarr.top st.zstack in
      (* Children run one at a time and in ordinal order, so the record
         for ordinal [g.ord] lands exactly at the end of [child_ep]. *)
      assert (g.ord - f.base_ord = Dynarr.length f.child_ep);
      Dynarr.push f.child_ep (if parallel then Dynarr.top f.ep else -1);
      if Obs.enabled () then Obs.bump_reach_epoch ~steps:1
    end;
    Dynarr.push st.zpool g

  let z_sync st ~frame =
    let f = Dynarr.top st.zstack in
    assert (f.zfid = frame);
    assert (Dynarr.length f.ep = 1);
    f.base_ord <- f.nchildren;
    Dynarr.clear f.child_ep;
    Dynarr.clear f.ep;
    Dynarr.clear f.vd;
    (* like the seed's post-sync refresh: the S bag's vid is always the
       frame's entry vid (union keeps the destination payload) *)
    Dynarr.push f.ep (fresh_epoch st);
    Dynarr.push f.vd f.entry_vid;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1

  let z_steal st ~frame ~region =
    let f = Dynarr.top st.zstack in
    assert (f.zfid = frame);
    Dynarr.push f.ep (fresh_epoch st);
    Dynarr.push f.vd region;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1

  let z_reduce st ~frame =
    let f = Dynarr.top st.zstack in
    assert (f.zfid = frame);
    assert (Dynarr.length f.ep >= 2);
    ignore (Dynarr.pop f.ep);
    ignore (Dynarr.pop f.vd);
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1

  (* View id surviving for recorded epoch [e] in frame [a]: the largest
     still-live epoch <= e (reduce pops epochs from the top, so the views
     a popped epoch's members merged into is exactly the one below). *)
  let z_survivor a e =
    let lo = ref 0 and hi = ref (Dynarr.length a.ep - 1) and steps = ref 1 in
    while !lo < !hi do
      incr steps;
      let mid = (!lo + !hi + 1) / 2 in
      if Dynarr.get a.ep mid <= e then lo := mid else hi := mid - 1
    done;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:!steps;
    Dynarr.get a.vd !lo

  let z_classify st u =
    if u >= Dynarr.length st.ftab then Serial
    else
      match Dynarr.get st.ftab u with
      | None -> Serial
      | Some ufp -> (
          let v = Dynarr.top st.zstack in
          let d, words = divergence ufp v.zfp in
          if Obs.enabled () then Obs.bump_reach_query ~words;
          match d with
          | Prefix -> Serial (* ancestor-or-self of the current frame *)
          | Diverge { level; uord } ->
              (* lowest common ancestor of [u] and the current point: it is
                 on the live stack at depth [level] *)
              let a = Dynarr.get st.zstack level in
              if uord < a.base_ord then Serial (* joined before [a]'s last sync *)
              else begin
                let idx = uord - a.base_ord in
                (* the diverging child cannot be [a]'s running child (that
                   one is on the current path), so its return is recorded *)
                assert (idx < Dynarr.length a.child_ep);
                match Dynarr.get a.child_ep idx with
                | -1 -> Serial (* called child: its subtree joined a.S *)
                | e -> Parallel (z_survivor a e)
              end)

  (* -------- dispatch -------- *)

  type t = Sp_dset of dstate | Sp_depa of zstate

  let create = function
    | Dset -> Sp_dset { store = Bag.create_store (); dstack = Dynarr.create () }
    | Depa ->
        Sp_depa
          {
            next_epoch = 0;
            zstack = Dynarr.create ();
            zpool = Dynarr.create ();
            ftab = Dynarr.create ();
          }

  let backend = function Sp_dset _ -> Dset | Sp_depa _ -> Depa

  let reset = function
    | Sp_dset st ->
        Bag.clear_store st.store;
        Dynarr.clear st.dstack
    | Sp_depa st ->
        st.next_epoch <- 0;
        Dynarr.iter (fun g -> Dynarr.push st.zpool g) st.zstack;
        Dynarr.clear st.zstack;
        Dynarr.clear st.ftab

  let on_frame_enter t ~frame =
    match t with Sp_dset st -> d_enter st ~frame | Sp_depa st -> z_enter st ~frame

  let on_frame_return t ~frame ~parallel =
    match t with
    | Sp_dset st -> d_return st ~frame ~parallel
    | Sp_depa st -> z_return st ~frame ~parallel

  let on_sync t ~frame =
    match t with Sp_dset st -> d_sync st ~frame | Sp_depa st -> z_sync st ~frame

  let on_steal t ~frame ~region =
    match t with
    | Sp_dset st -> d_steal st ~frame ~region
    | Sp_depa st -> z_steal st ~frame ~region

  let on_reduce t ~frame =
    match t with Sp_dset st -> d_reduce st ~frame | Sp_depa st -> z_reduce st ~frame

  let classify t u =
    match t with Sp_dset st -> d_classify st u | Sp_depa st -> z_classify st u

  let cur_view = function
    | Sp_dset st -> d_top_vid (Dynarr.top st.dstack)
    | Sp_depa st -> Dynarr.top (Dynarr.top st.zstack).vd
end

(* ---------------------------------------------------------------------- *)

module Peer = struct
  (* -------- dset backend: the seed's three bags, verbatim -------- *)

  type bag_kind = KSS | KSP | KP

  type dframe = {
    dfid : int;
    danc : int;
    mutable dls : int;
    ss : bag_kind Bag.t;
    sp : bag_kind Bag.t;
    p : bag_kind Bag.t;
  }

  type dstate = { store : bag_kind Bag.store; dstack : dframe Dynarr.t }

  let d_enter st ~frame ~spawned =
    let anc =
      if Dynarr.is_empty st.dstack then 0
      else begin
        let f = Dynarr.top st.dstack in
        if spawned then begin
          f.dls <- f.dls + 1;
          Bag.union_into st.store ~dst:f.p ~src:f.sp
        end;
        f.danc + f.dls
      end
    in
    Dynarr.push st.dstack
      {
        dfid = frame;
        danc = anc;
        dls = 0;
        ss = Bag.make st.store KSS [ frame ];
        sp = Bag.make st.store KSP [];
        p = Bag.make st.store KP [];
      }

  let d_return st ~frame ~spawned =
    let g = Dynarr.pop st.dstack in
    assert (g.dfid = frame);
    if not (Dynarr.is_empty st.dstack) then begin
      let f = Dynarr.top st.dstack in
      Bag.union_into st.store ~dst:f.p ~src:g.p;
      if spawned then Bag.union_into st.store ~dst:f.p ~src:g.ss
      else if f.dls = 0 then Bag.union_into st.store ~dst:f.ss ~src:g.ss
      else Bag.union_into st.store ~dst:f.sp ~src:g.ss
    end

  let d_sync st ~frame =
    let f = Dynarr.top st.dstack in
    assert (f.dfid = frame);
    f.dls <- 0;
    Bag.union_into st.store ~dst:f.p ~src:f.sp

  let d_parallel st ~frame =
    match Bag.find st.store frame with
    | Some bag -> Bag.payload bag = KP
    | None -> assert false

  (* -------- depa backend: no bags at all --------

     Replay is depth-first, so a frame's [ls] and its SP generation are
     frozen for the whole lifetime of any one child: whether a returning
     child's SS folds into the parent's SS (pure: called with ls = 0), SP
     (called with ls > 0) or P (spawned) is already determined at the
     child's entry. Each frame therefore knows, at entry, the top [root]
     of its maximal pure chain; a recorded read is

     - KSS while that root is still on the live stack,
     - KP as soon as a spawned root has returned (its SS went straight to
       the grandparent's P),
     - KSP while a called-impure root is dead but its parent Q is live and
       has not retired its SP bag since — which we detect with a per-frame
       SP-generation counter [spe], bumped exactly when the seed unions
       SP into P (every spawned-child entry and every sync),
     - KP otherwise (Q retired SP, or Q itself returned — the implicit
       pre-return sync retires it). *)

  type pframe = {
    mutable pfid : int;
    mutable panc : int;
    mutable pls : int;
    mutable pspawned : bool;
    mutable root_id : int; (* top of this frame's maximal pure chain *)
    mutable root_depth : int;
    mutable par_spe : int; (* parent's [spe] at entry *)
    mutable spe : int; (* SP-bag generation *)
  }

  type pread = {
    mutable read_frame : int;
    mutable r_id : int; (* pure-chain root of the reading frame *)
    mutable r_depth : int;
    mutable r_spawned : bool;
    mutable q_id : int; (* the root's parent, -1 at the root frame *)
    mutable q_spe : int; (* Q's SP generation at the root's entry *)
  }

  type pstate = {
    pstack : pframe Dynarr.t;
    ppool : pframe Dynarr.t;
    rtab : pread option Dynarr.t; (* reducer id -> last-read classification *)
  }

  let p_alloc st =
    if Dynarr.is_empty st.ppool then
      {
        pfid = -1;
        panc = 0;
        pls = 0;
        pspawned = false;
        root_id = -1;
        root_depth = 0;
        par_spe = 0;
        spe = 0;
      }
    else Dynarr.pop st.ppool

  let p_enter st ~frame ~spawned =
    let depth = Dynarr.length st.pstack in
    let anc, root_id, root_depth, par_spe =
      if depth = 0 then (0, frame, 0, 0)
      else begin
        let f = Dynarr.top st.pstack in
        if spawned then begin
          f.pls <- f.pls + 1;
          f.spe <- f.spe + 1 (* seed: SP retires into P here *)
        end;
        let pure = (not spawned) && f.pls = 0 in
        ( f.panc + f.pls,
          (if pure then f.root_id else frame),
          (if pure then f.root_depth else depth),
          f.spe )
      end
    in
    let g = p_alloc st in
    g.pfid <- frame;
    g.panc <- anc;
    g.pls <- 0;
    g.pspawned <- spawned;
    g.root_id <- root_id;
    g.root_depth <- root_depth;
    g.par_spe <- par_spe;
    g.spe <- 0;
    Dynarr.push st.pstack g

  let p_return st ~frame ~spawned:_ =
    let g = Dynarr.pop st.pstack in
    assert (g.pfid = frame);
    Dynarr.push st.ppool g

  let p_sync st ~frame =
    let f = Dynarr.top st.pstack in
    assert (f.pfid = frame);
    f.pls <- 0;
    f.spe <- f.spe + 1

  let p_note_read st ~reducer ~frame =
    let u = Dynarr.top st.pstack in
    assert (u.pfid = frame);
    Dynarr.ensure st.rtab (reducer + 1) None;
    let r =
      match Dynarr.get st.rtab reducer with
      | Some r -> r
      | None ->
          let r =
            {
              read_frame = -1;
              r_id = -1;
              r_depth = 0;
              r_spawned = false;
              q_id = -1;
              q_spe = 0;
            }
          in
          Dynarr.set st.rtab reducer (Some r);
          r
    in
    let root = Dynarr.get st.pstack u.root_depth in
    assert (root.pfid = u.root_id);
    r.read_frame <- frame;
    r.r_id <- u.root_id;
    r.r_depth <- u.root_depth;
    r.r_spawned <- root.pspawned;
    r.q_id <-
      (if u.root_depth > 0 then (Dynarr.get st.pstack (u.root_depth - 1)).pfid else -1);
    r.q_spe <- root.par_spe;
    if Obs.enabled () then Obs.bump_reach_epoch ~steps:1

  let p_parallel st ~reducer ~frame =
    let r =
      match
        (if reducer < Dynarr.length st.rtab then Dynarr.get st.rtab reducer else None)
      with
      | Some r -> r
      | None -> assert false
    in
    assert (r.read_frame = frame);
    if Obs.enabled () then Obs.bump_reach_query ~words:1;
    let n = Dynarr.length st.pstack in
    if r.r_depth < n && (Dynarr.get st.pstack r.r_depth).pfid = r.r_id then
      false (* root still live: the read is in a live SS chain *)
    else if r.r_spawned then true (* spawned root returned: SS went to P *)
    else begin
      (* called-impure root returned into Q's SP bag: parallel once Q has
         retired that SP generation (spawn or sync) or returned itself *)
      let qd = r.r_depth - 1 in
      not
        (qd >= 0 && qd < n
        &&
        let q = Dynarr.get st.pstack qd in
        q.pfid = r.q_id && q.spe = r.q_spe)
    end

  (* -------- dispatch -------- *)

  type t = Peer_dset of dstate | Peer_depa of pstate

  let create = function
    | Dset -> Peer_dset { store = Bag.create_store (); dstack = Dynarr.create () }
    | Depa ->
        Peer_depa
          { pstack = Dynarr.create (); ppool = Dynarr.create (); rtab = Dynarr.create () }

  let backend = function Peer_dset _ -> Dset | Peer_depa _ -> Depa

  let reset = function
    | Peer_dset st ->
        Bag.clear_store st.store;
        Dynarr.clear st.dstack
    | Peer_depa st ->
        Dynarr.iter (fun g -> Dynarr.push st.ppool g) st.pstack;
        Dynarr.clear st.pstack;
        Dynarr.clear st.rtab

  let on_frame_enter t ~frame ~spawned =
    match t with
    | Peer_dset st -> d_enter st ~frame ~spawned
    | Peer_depa st -> p_enter st ~frame ~spawned

  let on_frame_return t ~frame ~spawned =
    match t with
    | Peer_dset st -> d_return st ~frame ~spawned
    | Peer_depa st -> p_return st ~frame ~spawned

  let on_sync t ~frame =
    match t with Peer_dset st -> d_sync st ~frame | Peer_depa st -> p_sync st ~frame

  let spawn_count = function
    | Peer_dset st ->
        let f = Dynarr.top st.dstack in
        f.danc + f.dls
    | Peer_depa st ->
        let f = Dynarr.top st.pstack in
        f.panc + f.pls

  let note_read t ~reducer ~frame =
    match t with
    | Peer_dset _ -> ignore (reducer, frame)
    | Peer_depa st -> p_note_read st ~reducer ~frame

  let parallel_read t ~reducer ~frame =
    match t with
    | Peer_dset st ->
        ignore reducer;
        d_parallel st ~frame
    | Peer_depa st -> p_parallel st ~reducer ~frame
end
