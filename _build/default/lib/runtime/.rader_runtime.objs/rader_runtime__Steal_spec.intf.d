lib/runtime/steal_spec.mli:
