module Dynarr = Rader_support.Dynarr

type 'a t = {
  len : int Cell.t;
  mutable data : 'a option array;
  locs : int Dynarr.t; (* shadow location per slot, allocated on growth *)
}

let create ctx () =
  {
    len = Cell.make_in ctx ~label:"rvec.len" 0;
    data = Array.make 8 None;
    locs = Dynarr.create ();
  }

let length ctx v = Cell.read ctx v.len

let ensure_capacity ctx v n =
  let eng = Engine.engine ctx in
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap None in
    Array.blit v.data 0 data 0 (Array.length v.data);
    v.data <- data
  end;
  while Dynarr.length v.locs < n do
    (* allocate shadow ids in chunks to keep allocation cheap *)
    let chunk = max 8 (Dynarr.length v.locs) in
    let base = Engine.alloc_locs eng ~label:"rvec.slot" chunk in
    for k = 0 to chunk - 1 do
      Dynarr.push v.locs (base + k)
    done
  done

let check v i n =
  if i < 0 || i >= n then
    invalid_arg (Printf.sprintf "Rvec: index %d out of bounds [0,%d)" i n);
  ignore v

let unsafe_read ctx v i =
  Engine.emit_read ctx (Dynarr.get v.locs i);
  match v.data.(i) with Some x -> x | None -> assert false

let unsafe_write ctx v i x =
  Engine.emit_write ctx (Dynarr.get v.locs i);
  v.data.(i) <- Some x

let push ctx v x =
  let n = Cell.read ctx v.len in
  ensure_capacity ctx v (n + 1);
  unsafe_write ctx v n x;
  Cell.write ctx v.len (n + 1)

let get ctx v i =
  let n = Cell.read ctx v.len in
  check v i n;
  unsafe_read ctx v i

let set ctx v i x =
  let n = Cell.read ctx v.len in
  check v i n;
  unsafe_write ctx v i x

let append_into ctx ~dst ~src =
  let n_src = Cell.read ctx src.len in
  let n_dst = Cell.read ctx dst.len in
  ensure_capacity ctx dst (n_dst + n_src);
  for i = 0 to n_src - 1 do
    unsafe_write ctx dst (n_dst + i) (unsafe_read ctx src i)
  done;
  Cell.write ctx dst.len (n_dst + n_src)

let to_list ctx v =
  let n = Cell.read ctx v.len in
  List.init n (fun i -> unsafe_read ctx v i)

let peek_list v =
  let n = Cell.peek v.len in
  List.init n (fun i -> match v.data.(i) with Some x -> x | None -> assert false)

let monoid () =
  {
    Reducer.name = "rvec";
    identity = (fun c -> create c ());
    reduce =
      (fun c l r ->
        append_into c ~dst:l ~src:r;
        l);
  }
