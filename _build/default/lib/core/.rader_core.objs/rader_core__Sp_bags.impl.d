lib/core/sp_bags.ml: Rader_dsets Rader_memory Rader_runtime Rader_support Report
