open Rader_runtime

(* Exhaustive search with a capacity cut and a suffix-value bound (both
   functions of local state only, so the Cilk version stays race-free). *)

let suffix_values items =
  let n = Array.length items in
  let s = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    s.(i) <- s.(i + 1) + snd items.(i)
  done;
  s

let plain items capacity =
  let n = Array.length items in
  let suffix = suffix_values items in
  let best = ref 0 in
  let rec go i cap value =
    if value > !best then best := value;
    if i < n && value + suffix.(i) > !best then begin
      let w, v = items.(i) in
      if w <= cap then go (i + 1) (cap - w) (value + v);
      go (i + 1) cap value
    end
  in
  go 0 capacity 0;
  !best

(* Serial subtree without pruning against the shared best (reading the
   reducer mid-computation would be a view-read race); suffix bound only. *)
let serial_best items suffix i0 cap0 value0 =
  let n = Array.length items in
  let best = ref value0 in
  let rec go i cap value =
    if value > !best then best := value;
    if i < n && value + suffix.(i) > !best then begin
      let w, v = items.(i) in
      if w <= cap then go (i + 1) (cap - w) (value + v);
      go (i + 1) cap value
    end
  in
  go i0 cap0 value0;
  !best

let cilk items capacity spawn_depth ctx =
  let n = Array.length items in
  let suffix = suffix_values items in
  let r = Rmonoid.new_int_max ctx ~init:0 in
  let rec go ctx i cap value =
    if i >= min spawn_depth n then
      Rmonoid.maximize ctx r (serial_best items suffix i cap value)
    else begin
      let w, v = items.(i) in
      if w <= cap then
        ignore (Cilk.spawn ctx (fun ctx -> go ctx (i + 1) (cap - w) (value + v)));
      Cilk.call ctx (fun ctx -> go ctx (i + 1) cap value);
      Cilk.sync ctx
    end
  in
  Cilk.call ctx (fun ctx -> go ctx 0 capacity 0);
  Rmonoid.int_cell_value ctx r

let bench ~seed ~n_items ~capacity ~spawn_depth =
  let items =
    Workloads.knapsack_items ~seed ~n:n_items ~max_weight:10 ~max_value:20
  in
  {
    Bench_def.name = "knapsack";
    descr = "Recursive knapsack";
    input = Printf.sprintf "%d items, cap %d" n_items capacity;
    plain = (fun () -> plain items capacity);
    cilk = cilk items capacity spawn_depth;
  }
