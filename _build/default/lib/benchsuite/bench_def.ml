type t = {
  name : string;
  descr : string;
  input : string;
  plain : unit -> int;
  cilk : Rader_runtime.Engine.ctx -> int;
}

let fnv_prime = 0x100000001b3
let fnv_basis = 0x3bf29ce484222325

let fnv_int acc x =
  (* fold the int byte by byte *)
  let acc = ref acc in
  for shift = 0 to 7 do
    let byte = (x lsr (8 * shift)) land 0xff in
    acc := (!acc lxor byte) * fnv_prime
  done;
  !acc

let fnv_string s =
  let acc = ref fnv_basis in
  String.iter (fun c -> acc := (!acc lxor Char.code c) * fnv_prime) s;
  !acc
