lib/benchsuite/bm_pbfs.ml: Array Bench_def Cilk Engine List Printf Rader_monoid Rader_runtime Rarray Reducer Rmonoid Workloads
