lib/runtime/cell.ml: Engine
