lib/core/oracle.mli: Rader_runtime Trace
