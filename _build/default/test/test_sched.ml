(* Tests for the work-stealing simulator and schedule fuzzing. *)

open Rader_runtime
open Rader_sched

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let fanout_program ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:32 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  Rmonoid.int_cell_value ctx r

let recorded program =
  let eng = Engine.create ~record:true () in
  let v = Engine.run eng program in
  (v, eng)

let test_sim_executes_everything () =
  let _, eng = recorded fanout_program in
  let res = Wsim.simulate ~workers:4 ~seed:1 eng in
  check "work = strands" (Engine.stats eng).Engine.n_strands res.Wsim.work;
  checkb "makespan <= work" true (res.Wsim.makespan <= res.Wsim.work);
  checkb "makespan >= work / p" true (res.Wsim.makespan * 4 >= res.Wsim.work)

let test_sim_one_worker_serial () =
  let _, eng = recorded fanout_program in
  let res = Wsim.simulate ~workers:1 ~seed:5 eng in
  check "serial makespan = work" res.Wsim.work res.Wsim.makespan;
  check "no steals" 0 res.Wsim.n_steals;
  check "no stolen continuations" 0 (List.length res.Wsim.stolen_continuations)

let test_sim_speedup_with_workers () =
  let _, eng = recorded fanout_program in
  let t1 = (Wsim.simulate ~workers:1 ~seed:2 eng).Wsim.makespan in
  let t8 = (Wsim.simulate ~workers:8 ~seed:2 eng).Wsim.makespan in
  checkb "parallel is faster" true (t8 < t1)

let test_sim_steals_reported () =
  let _, eng = recorded fanout_program in
  let res = Wsim.simulate ~workers:8 ~seed:3 eng in
  checkb "some continuations stolen" true (res.Wsim.stolen_continuations <> []);
  let n_spawns = (Engine.stats eng).Engine.n_spawns in
  checkb "stolen set within spawn indices" true
    (List.for_all (fun i -> i >= 0 && i < n_spawns) res.Wsim.stolen_continuations)

let test_sim_deterministic_given_seed () =
  let _, eng = recorded fanout_program in
  let a = Wsim.simulate ~workers:4 ~seed:9 eng in
  let b = Wsim.simulate ~workers:4 ~seed:9 eng in
  checkb "same seed, same schedule" true
    (a.Wsim.stolen_continuations = b.Wsim.stolen_continuations
    && a.Wsim.makespan = b.Wsim.makespan)

let test_sim_blumofe_leiserson_bound () =
  (* T_p <= T1/p + c·T∞ for work-stealing-style schedulers. Our simulator
     allows one steal attempt per idle worker per step, so allow a
     generous constant. *)
  let _, eng = recorded fanout_program in
  let dag = Option.get (Engine.dag eng) in
  let reach = Rader_dag.Reach.compute dag in
  let n = Rader_dag.Dag.n_strands dag in
  (* critical path = longest path, via DP over the topological id order *)
  let depth = Array.make n 1 in
  for v = 0 to n - 1 do
    List.iter
      (fun u -> if depth.(u) + 1 > depth.(v) then depth.(v) <- depth.(u) + 1)
      (Rader_dag.Dag.preds dag v)
  done;
  ignore reach;
  let t_inf = Array.fold_left max 1 depth in
  List.iter
    (fun p ->
      let res = Wsim.simulate ~workers:p ~seed:4 eng in
      let bound = (res.Wsim.work / p) + (10 * t_inf) + 10 in
      checkb
        (Printf.sprintf "T_%d=%d <= T1/p + 10 T_inf = %d" p res.Wsim.makespan bound)
        true
        (res.Wsim.makespan <= bound))
    [ 2; 4; 8 ]

let test_sim_requires_recording () =
  let eng = Engine.create () in
  ignore (Engine.run eng (fun _ -> ()));
  Alcotest.check_raises "unrecorded"
    (Invalid_argument "Wsim.simulate: engine run was not recorded") (fun () ->
      ignore (Wsim.simulate ~workers:2 ~seed:0 eng))

let test_replay_under_simulated_schedule () =
  (* the steal spec derived from the simulation must replay to the same
     result for a correct program *)
  let v0, eng = recorded fanout_program in
  let res = Wsim.simulate ~workers:4 ~seed:13 eng in
  let spec = Wsim.steal_spec res in
  let v1, eng1 = Cilk.exec ~spec fanout_program in
  Alcotest.(check int) "same result" v0 v1;
  check "steals replayed" (List.length res.Wsim.stolen_continuations)
    (Engine.stats eng1).Engine.n_steals

let test_fuzz_clean_program_deterministic () =
  let outs = Schedule_gen.fuzz fanout_program ~workers:4 ~seeds:[ 1; 2; 3; 4; 5 ] in
  check "six runs" 6 (List.length outs);
  checkb "all equal" true (Schedule_gen.deterministic ~equal:( = ) outs)

(* A view-read race makes the observed value schedule-dependent: the value
   read mid-flight differs between the serial schedule (sees all updates so
   far) and schedules that steal the continuations (fresh views). *)
let racy_observer ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  let obs = ref 0 in
  Cilk.call ctx (fun ctx ->
      ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 100));
      ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 10));
      (* racy read before sync *)
      obs := Rmonoid.int_cell_value ctx r;
      Cilk.sync ctx);
  !obs

let test_fuzz_racy_program_nondeterministic () =
  let serial, _ = Cilk.exec racy_observer in
  Alcotest.(check int) "serial sees both updates" 110 serial;
  let stolen, _ = Cilk.exec ~spec:(Steal_spec.all ()) racy_observer in
  checkb "stolen schedule sees a fresh view" true (stolen <> serial);
  Alcotest.(check int) "fresh view is empty" 0 stolen

let test_fuzz_exposes_nondeterminism_via_simulation () =
  let outs =
    Schedule_gen.fuzz racy_observer ~workers:8 ~seeds:(List.init 20 (fun i -> i))
  in
  let values = List.sort_uniq compare (List.map snd outs) in
  (* with 20 random 8-worker schedules, at least one steals one of the two
     continuations before the racy read *)
  checkb "schedule-dependent output observed" true (List.length values > 1)

let () =
  Alcotest.run "sched"
    [
      ( "wsim",
        [
          Alcotest.test_case "executes everything" `Quick test_sim_executes_everything;
          Alcotest.test_case "one worker serial" `Quick test_sim_one_worker_serial;
          Alcotest.test_case "speedup" `Quick test_sim_speedup_with_workers;
          Alcotest.test_case "steals reported" `Quick test_sim_steals_reported;
          Alcotest.test_case "seed-deterministic" `Quick test_sim_deterministic_given_seed;
          Alcotest.test_case "Blumofe-Leiserson bound" `Quick
            test_sim_blumofe_leiserson_bound;
          Alcotest.test_case "requires recording" `Quick test_sim_requires_recording;
          Alcotest.test_case "replay" `Quick test_replay_under_simulated_schedule;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean deterministic" `Quick
            test_fuzz_clean_program_deterministic;
          Alcotest.test_case "racy read schedule-dependent" `Quick
            test_fuzz_racy_program_nondeterministic;
          Alcotest.test_case "simulation exposes nondeterminism" `Quick
            test_fuzz_exposes_nondeterminism_via_simulation;
        ] );
    ]
