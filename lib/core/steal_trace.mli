(** Structural steal traces of online work-stealing runs, and their
    conversion to serial {!Rader_runtime.Steal_spec} values.

    The online runtime ([Rader_sched.Online]) decides which spawned
    continuations count as stolen {e structurally} — a seeded hash of the
    spawning frame's fork path and the spawn's per-frame ordinal — so the
    steal {e set} is a pure function of (program, seed, density) even
    though task placement across workers is timing-dependent. This module
    names each such steal by coordinates that survive the translation to
    a serial replay:

    - the spawning frame's {e user path}: the list of user-child ordinals
      (spawned and called children both count, auxiliary view-aware
      frames do not) from the root to the frame;
    - the spawn's {e per-frame ordinal}: how many spawns the frame had
      performed before this one, across all its sync blocks.

    [to_spec] replays the program serially once (recorded, no steals),
    rebuilds every frame's user path from the frame log, maps each trace
    entry to its global spawn index, and returns the equivalent
    [Steal_spec.by_spawn_index] specification under the at-sync reduce
    policy (the online runtime merges regions only at syncs) — so every
    online run can be re-checked deterministically by the serial SP+
    detector under exactly the schedule the runtime realized. *)

type entry = {
  e_path : int list;  (** user-child ordinals, root → spawning frame *)
  e_ord : int;  (** per-frame spawn ordinal (0-based, across blocks) *)
}

type t = {
  workers : int;
  seed : int;
  density : float;
  entries : entry list;  (** canonically sorted, duplicates impossible *)
}

(** [make ~workers ~seed ~density entries] sorts [entries] canonically
    (lexicographic path, then ordinal). *)
val make : workers:int -> seed:int -> density:float -> entry list -> t

val n_steals : t -> int

(** One line per entry, plus a header — stable across runs of the same
    (program, seed, density), so traces can be diffed and archived as CI
    artifacts. *)
val to_string : t -> string

(** Parses {!to_string}'s format. *)
val of_string : string -> (t, string) result

(** [to_spec trace program] is the serial steal specification stealing
    exactly [trace]'s continuations, with [`Reduce_at_sync`] policy, or
    [Error] if an entry names a frame or spawn the serial execution does
    not have (a trace from a different program), or if the profiling
    replay itself fails. *)
val to_spec :
  t ->
  (Rader_runtime.Engine.ctx -> 'a) ->
  (Rader_runtime.Steal_spec.t, string) result
