(* Deterministic parallel fan-out over an indexed work queue, built on
   OCaml 5 domains.

   The §7 coverage sweep replays one program under Θ(max{KD, K³}) steal
   specifications; each replay is independent by construction (one engine,
   one detector, one verdict), so the sweep is embarrassingly parallel.
   Workers pull task indices from a single atomic counter and write each
   result into its own slot of a shared array — every slot is written by
   exactly one domain and read only after [Domain.join], so no locks are
   needed and the OCaml memory model makes the reads well-defined. The
   caller then folds the slots in index order, which is what makes the
   merged output independent of scheduling. *)

type stats = { jobs : int; n_tasks : int; n_skipped : int }

(* RADER_FORCE_DOMAINS overrides the probed core count: CI runners are
   often single-core, which would silently collapse every default-jobs
   sweep to the inline path and leave the cross-domain code untested.
   Setting it to N makes jobs<=0 callers spawn N workers regardless. *)
let default_jobs () =
  match Sys.getenv_opt "RADER_FORCE_DOMAINS" with
  | Some s when (match int_of_string_opt (String.trim s) with
                | Some n -> n >= 1
                | None -> false) ->
      int_of_string (String.trim s)
  | _ -> Domain.recommended_domain_count ()

let map ?(jobs = 1) ?(stop = fun () -> false) ~init ~task ~skipped n =
  if n < 0 then invalid_arg "Parallel_sweep.map: negative task count";
  let jobs = if jobs <= 0 then default_jobs () else jobs in
  let results = Array.make (max n 1) None in
  let next = Atomic.make 0 in
  let skips = Atomic.make 0 in
  (* A task that raises poisons the whole sweep: every worker drains out,
     and the first exception is re-raised in the calling domain after all
     domains are joined (so no domain is leaked). Coverage tasks are total
     ([Engine.run_result]) and never take this path. *)
  let poison = Atomic.make None in
  let worker wid () =
    match
      let st = init wid in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get poison <> None then continue := false
        else if stop () then begin
          Atomic.incr skips;
          results.(i) <- Some (skipped i)
        end
        else results.(i) <- Some (task st i)
      done
    with
    | () -> ()
    | exception e ->
        ignore (Atomic.compare_and_set poison None (Some (e, Printexc.get_raw_backtrace ())))
  in
  if n > 0 then
    if jobs = 1 then worker 0 ()
    else begin
      let spawned = Array.init (min jobs n - 1) (fun w -> Domain.spawn (worker (w + 1))) in
      worker 0 ();
      Array.iter Domain.join spawned
    end;
  (match Atomic.get poison with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let out =
    Array.init n (fun i ->
        match results.(i) with Some r -> r | None -> assert false)
  in
  (out, { jobs; n_tasks = n; n_skipped = Atomic.get skips })
