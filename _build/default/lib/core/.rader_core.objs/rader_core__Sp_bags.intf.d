lib/core/sp_bags.mli: Rader_runtime Report
