(** Static view-read verdict — Peer-Set's answer from the parse tree.

    Paper Lemma 2: two strands have equal peer sets iff the path between
    their leaves in the canonical SP parse tree consists entirely of S
    nodes. A reducer suffers a {e view-read race} exactly when two of its
    reducer-reads execute at strands with different peer sets (§3,
    Theorem 4) — so the dynamic Peer-Set verdict can be recomputed
    statically, on the recorded tree, with all-S-path queries alone.

    Because peer-set equality is an equivalence relation, all reads of a
    reducer share one peer set iff every {e consecutive} pair (in serial
    order) does — checking adjacent pairs is both sufficient and gives
    the earliest witness, at O(R · depth) total query cost.

    This is an independent second implementation of Peer-Set's answer;
    {!cross_check} replays the program under the real detector and
    compares, which the property tests run on hundreds of generated
    programs. *)

type witness = {
  w_reducer : int;  (** the racy reducer *)
  w_first : int;  (** earlier reducer-read strand *)
  w_second : int;
      (** the first subsequent read whose peer set differs — the pair
          fails [Sp_tree.all_s_path] *)
}

type t = witness list
(** One witness per racy reducer, ascending reducer id; [[]] = clean. *)

(** [view_read ir] is the static verdict. *)
val view_read : Ir.t -> t

(** [racy_reducers v] is the racy reducer ids, ascending. *)
val racy_reducers : t -> int list

(** [cross_check program ir] replays [program] under the dynamic
    {!Rader_core.Peer_set} detector (fresh engine, [Steal_spec.none],
    precedence backend [reach] — default [Dset]) and compares racy-reducer
    sets with [view_read ir]. [Error] describes any disagreement — a bug
    in one of the two implementations — or a crash of the replay. *)
val cross_check :
  ?reach:Rader_reach.Reach.backend ->
  (Rader_runtime.Engine.ctx -> int) ->
  Ir.t ->
  (unit, string) result
