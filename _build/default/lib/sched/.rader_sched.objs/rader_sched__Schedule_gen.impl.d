lib/sched/schedule_gen.ml: List Rader_runtime Wsim
