(** The Cilk execution engine.

    Executes a fork-join program written against the DSL ({!spawn}, {!sync},
    {!call}, {!parallel_for}) {e serially in its depth-first serial order} —
    exactly the execution the Peer-Set, SP-bags and SP+ algorithms analyze —
    while:

    - dispatching every parallel-control construct and instrumented memory
      access to the installed {!Tool.t} (the detector);
    - simulating the Cilk runtime's reducer-view management according to a
      {!Steal_spec.t}: a fresh view {e region} is opened at every stolen
      continuation, regions are merged by [Reduce] operations scheduled per
      the spec's reduce policy, and all regions of a sync block are merged
      back to the block's base region before the sync completes (view
      invariants 1–3 of paper §5);
    - optionally recording the full {e performance dag} (user strands plus
      reduce strands and reduce-tree dependencies, paper §5) and the access
      trace, for the testing oracles and for visualization.

    An engine value is single-use: create, configure, {!run} once, then
    query results.

    {2 Strand accounting}

    Strand ids count up from 0 (the root frame's first strand) in serial
    execution order. A new strand begins: when a frame is entered; when a
    frame returns (the parent's continuation strand); at every sync
    (explicit or the implicit one before each frame return); and at each
    runtime-invoked [Reduce] operation. When dag recording is on, strand
    ids coincide with dag vertex ids. *)

exception Cilk_error of string
(** Raised on violations of Cilk discipline: spawning/syncing inside
    view-aware code, reading a spawn's result before the sync, using a
    context outside its dynamic extent, or re-running an engine. *)

type t
type ctx
type 'a future

(** {1 Setup} *)

(** [create ()] makes a fresh engine.
    @param tool the detector callbacks; default {!Tool.null}.
    @param spec the steal specification; default [Steal_spec.none].
    @param record if true (default false), record the performance dag,
    access trace, merge log and reducer-read log for later inspection.
    @param max_events abort the run (as [Fault.Budget_exceeded]) once this
    many events — strand starts plus instrumented accesses — have
    happened. Budget interrupts are contained by {!run_result}; under the
    raising {!run} they escape as [Fault.Stop].
    @param deadline absolute time (per [clock]) after which the run is
    aborted — checked at the very first event (an already-expired deadline
    cancels the run before it does any work) and every 16 events
    thereafter.
    @param clock the deadline's timebase, default [Unix.gettimeofday].
    Overridable so tests can drive quota cancellation with a virtual clock
    (see [Rader_chaos.Chaos.Vclock]) instead of wall-clock sleeps. *)
val create :
  ?tool:Tool.t ->
  ?spec:Steal_spec.t ->
  ?record:bool ->
  ?max_events:int ->
  ?deadline:float ->
  ?clock:(unit -> float) ->
  unit ->
  t

(** [set_tool t tool] replaces the tool; only allowed before [run]. *)
val set_tool : t -> Tool.t -> unit

(** [reset t] recycles the engine for another run: observationally
    equivalent to {!create} with the same arguments (all counters, logs
    and the location registry go back to their initial values; the engine
    returns to the runnable state), but the grown arenas behind the
    internal logs and the registry are kept, skipping per-run reallocation
    — the batching primitive behind the parallel coverage sweep, where one
    engine per worker domain replays hundreds of steal specifications.
    Contexts, futures, location ids and recorded traces obtained before
    the reset are dangling and must not be used.
    @raise Cilk_error if called while the engine is running. *)
val reset :
  ?tool:Tool.t ->
  ?spec:Steal_spec.t ->
  ?record:bool ->
  ?max_events:int ->
  ?deadline:float ->
  ?clock:(unit -> float) ->
  t ->
  unit

(** {1 Running} *)

(** [run t main] executes [main] as the root Cilk function and returns its
    result. @raise Cilk_error if the engine was already run. *)
val run : t -> (ctx -> 'a) -> 'a

(** [run_result t main] is the total variant of {!run}: the detection
    pipeline outlives the program under test. Any exception raised in a
    user strand or a view-aware (update / reduce / identity) auxiliary
    frame is caught, the frame and region stacks are unwound (every
    pending frame is killed so captured contexts cannot be reused), and
    the corresponding {!Fault.failure} is returned with frame / strand /
    spec context. Attached detectors stop receiving events at the failure
    point and remain queryable: the races they found over the completed
    prefix are still available from their handles alongside the returned
    diagnostic.

    Classification: budget interrupts ([max_events] / [deadline]) become
    [Budget_exceeded]; {!Cilk_error} discipline violations become
    [Engine_invariant]; sampled reducer self-check violations (recorded
    during the run) become [Monoid_contract]; a steal specification whose
    shape provably cannot fire on this program (and indeed never fired)
    becomes [Invalid_steal_spec]; everything else becomes
    [User_program_exn]. A successful, violation-free run returns [Ok].

    Never raises. *)
val run_result : t -> (ctx -> 'a) -> ('a, Fault.failure) result

(** {1 The DSL} *)

(** [spawn ctx f] spawns [f] as a child Cilk function: [f] may execute in
    parallel with the continuation. Its result is available through the
    future {e after the next sync}. *)
val spawn : ctx -> (ctx -> 'a) -> 'a future

(** [get ctx fut] is the spawned child's result.
    @raise Cilk_error if called before a sync in the spawning frame, or
    from a different frame. *)
val get : ctx -> 'a future -> 'a

(** [sync ctx] joins all children spawned by the current frame since its
    last sync. *)
val sync : ctx -> unit

(** [call ctx f] invokes [f] as a called (non-spawned) Cilk function and
    returns its result directly. *)
val call : ctx -> (ctx -> 'a) -> 'a

(** [parallel_for ctx ~lo ~hi body] runs [body i] for [lo <= i < hi] with
    all iterations logically parallel (divide-and-conquer, like
    [cilk_for]). [grain] (default 1) is the serial chunk size. *)
val parallel_for : ?grain:int -> ctx -> lo:int -> hi:int -> (ctx -> int -> unit) -> unit

(** {1 Introspection} *)

type stats = {
  n_frames : int;
  n_strands : int;
  n_spawns : int;
  n_syncs : int;
  n_steals : int;
  n_reduce_calls : int;  (** user [Reduce] invocations actually run *)
  n_reads : int;
  n_writes : int;
  n_reducer_reads : int;  (** reducer-reads (create / get / set value) *)
}

val engine : ctx -> t
val current_frame : ctx -> int
val current_strand : t -> int

(** [current_region ctx] is the view region the current strand operates on
    (SP+'s view ID). *)
val current_region : ctx -> int

val stats : t -> stats
val loc_registry : t -> Rader_memory.Loc.registry
val loc_label : t -> int -> string

(** [contract_violations t] is every monoid-contract violation recorded by
    reducer self-checks during the run, in detection order. *)
val contract_violations : t -> Fault.contract_violation list

(** {1 Recorded trace} (only when [~record:true]) *)

type access = {
  a_loc : int;
  a_strand : int;
  a_frame : int;
  a_is_write : bool;
  a_view_aware : bool;
}

type merge_rec = {
  m_from : int;  (** region merged away (the dominated view) *)
  m_into : int;  (** surviving region *)
  m_at : int;  (** strand counter value when the merge happened *)
}

(** [dag t] is the recorded performance dag. [None] unless recording. *)
val dag : t -> Rader_dag.Dag.t option

(** [accesses t] is the instrumented access trace in serial order. *)
val accesses : t -> access list

(** [merges t] is the region-merge log in serial order. *)
val merges : t -> merge_rec list

(** [reducer_reads t] is the list of (reducer id, strand id) for every
    reducer-read, in serial order. *)
val reducer_reads : t -> (int * int) list

(** [aux_frames t] is, for every view-aware auxiliary frame in serial
    order, [(kind, reducer, strand)]: the frame's kind (update / reduce /
    identity), the id of the reducer it belongs to ([-1] when the caller
    of {!run_aux_frame} did not say), and the frame's first strand — the
    strand↔reducer provenance the static analyzer keys off. *)
val aux_frames : t -> (Tool.frame_kind * int * int) list

(** [spawn_log t] is, for every spawn in serial order,
    [(spawn_index, spawn_strand, continuation_strand)] — the coordinates
    the work-stealing simulator needs to translate simulated steals back
    into a {!Steal_spec.t}. *)
val spawn_log : t -> (int * int * int) list

(** [spawn_conts t] is the same log with the full steal coordinates: for
    every spawn in serial order,
    [(cont_info, spawn_strand, continuation_strand)]. The [cont_info]
    carries the (frame, depth, local_index, sync_block) coordinates a
    steal-spec shape matches on — what the symbolic verifier needs to
    name the witness spec that steals exactly this continuation. *)
val spawn_conts : t -> (Steal_spec.cont_info * int * int) list

(** [frames t] is, for every frame in creation order,
    [(frame, parent, spawned, kind)] ([parent = -1] for the root). *)
val frames : t -> (int * int * bool * Tool.frame_kind) list

(** {1 Low-level hooks} — used by {!Cell}, {!Rarray} and {!Reducer}; not
    intended for end users. *)

val alloc_locs : t -> label:string -> int -> int
val emit_read : ctx -> int -> unit
val emit_write : ctx -> int -> unit
val emit_reducer_read : ctx -> int -> unit

(** [run_aux_frame ctx kind f] runs [f] as a view-aware auxiliary frame
    ([Update_fn], [Identity_fn] or [Reduce_fn]) in the current context.
    [reducer] attributes the frame to a reducer id in the recorded
    {!aux_frames} log (default [-1], unattributed). *)
val run_aux_frame : ?reducer:int -> ctx -> Tool.frame_kind -> (ctx -> 'a) -> 'a

(** [report_contract_violation t cv] records a monoid-law violation found
    by a reducer self-check; surfaced by {!run_result} as
    [Fault.Monoid_contract] (never raises — the run continues). *)
val report_contract_violation : t -> Fault.contract_violation -> unit

(** [failure_origin t] is the current failure context (innermost live
    frame, last strand, spec name) — for diagnostics built outside the
    engine, e.g. reducer self-checks. *)
val failure_origin : t -> Fault.origin

(** [register_reducer t ~merge] registers a reducer's region-merge callback
    and returns the reducer's dense id. [merge] is invoked for every region
    merge with the surviving ([into_region]) and dying ([from_region])
    region ids; it must fold the reducer's [from] view (if any) into its
    [into] view, calling {!run_aux_frame} for any user code it runs. *)
val register_reducer :
  t -> merge:(ctx -> from_region:int -> into_region:int -> unit) -> int

(** {1 Online mode} — the hook surface behind [Rader_sched.Online].

    A genuinely parallel work-stealing runtime cannot reuse the serial
    interpreter's bodies (one frame stack, one strand counter, serial
    region stacks), but user programs and the reducer library are written
    against {e this} module's DSL. [set_online] therefore installs an
    {!online_ops} record on an engine value and every DSL entry point —
    [spawn]/[sync]/[call]/[get]/[parallel_for], the emit hooks,
    [run_aux_frame], [alloc_locs], [register_reducer], [current_region] /
    [current_frame] — dispatches to it, so the same [(ctx -> 'a)] program
    runs unchanged on OCaml 5 domains. The engine value then acts only as
    the run's shell (location registry and labels, contract log); it never
    enters the [Running] state. *)

type online_ops = {
  oo_spawn : 'a. ctx -> (ctx -> 'a) -> 'a future;
  oo_get : 'a. ctx -> 'a future -> 'a;
  oo_sync : ctx -> unit;
  oo_call : 'a. ctx -> (ctx -> 'a) -> 'a;
  oo_run_aux : 'a. reducer:int -> ctx -> Tool.frame_kind -> (ctx -> 'a) -> 'a;
  oo_emit_read : ctx -> int -> unit;
  oo_emit_write : ctx -> int -> unit;
  oo_emit_reducer_read : ctx -> int -> unit;
  oo_register_reducer :
    merge:(ctx -> from_region:int -> into_region:int -> unit) -> int;
  oo_alloc_locs : label:string -> int -> int;
  oo_current_region : ctx -> int;
  oo_current_frame : ctx -> int;
  oo_view_find : ctx -> region:int -> reducer:int -> Obj.t option;
  oo_view_set : ctx -> region:int -> reducer:int -> Obj.t -> unit;
}

(** [set_online t ops] turns [t] into an online shell. Only before any
    run. @raise Cilk_error otherwise. *)
val set_online : t -> online_ops -> unit

(** [clear_online t] uninstalls the ops (end of the online run). *)
val clear_online : t -> unit

(** [is_online ctx] — does this context dispatch to an online runtime?
    The reducer library branches on this to route view storage through
    {!online_view_find}/{!online_view_set} instead of its serial
    per-reducer hash table. *)
val is_online : ctx -> bool

(** [online_ctx t ost] is a context carrying the runtime's opaque
    per-segment state [ost]; retrieve it with {!ctx_ost}. *)
val online_ctx : t -> Obj.t -> ctx

val ctx_ost : ctx -> Obj.t

(** Per-region reducer-view storage, dispatched to the runtime (regions
    own their view tables online; the serial engine keeps views inside
    each reducer instead). Values are [Obj.t]-erased: each reducer id's
    entries are written and read only by that reducer's typed closures. *)
val online_view_find : ctx -> region:int -> reducer:int -> Obj.t option

val online_view_set : ctx -> region:int -> reducer:int -> Obj.t -> unit

(** Future plumbing for the online runtime: the runtime allocates the
    future at spawn, the child's executor fills it, and [oo_get] reads it
    back after validating the owner-frame / post-sync discipline. *)
val online_future_make : owner:int -> born_block:int -> 'a future

val online_future_fill : 'a future -> 'a -> unit
val online_future_peek : 'a future -> 'a option
val future_owner : 'a future -> int
val future_born_block : 'a future -> int

(** [raw_alloc_locs t ~label n] allocates from the registry directly,
    bypassing online dispatch — how the online ops implement
    [oo_alloc_locs] under their own lock. *)
val raw_alloc_locs : t -> label:string -> int -> int
