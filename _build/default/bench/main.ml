(* Benchmark harness reproducing the paper's evaluation (§8).

   Regenerates:
   - Figure 7: Rader's multiplicative overhead over running each benchmark
     WITHOUT instrumentation, for the four detector configurations
     (Check view-read race / No steals / Check updates / Check reductions);
   - Figure 8: the same runs normalized to the EMPTY TOOL (instrumentation
     dispatching to no-op callbacks);
   - S1: the §7 steal-specification family sizes (Theorems 6 & 7 shapes);
   - S2: SP+ running time as the number of simulated steals M grows
     (the O((T + Mτ) α) cost model of Theorem 5);
   - S3: work-stealing simulator speedup sanity (T₁/T_p);
   plus a bechamel micro-benchmark group per figure table.

   Environment knobs:
     RADER_BENCH_SCALE      workload multiplier (default 4.0)
     RADER_BENCH_FAST=1     scale 1.0 and skip bechamel (CI smoke)
     RADER_BENCH_SKIP_BECHAMEL=1 *)

open Rader_runtime
open Rader_core
open Rader_benchsuite
module Stats = Rader_support.Stats
module Tablefmt = Rader_support.Tablefmt
module Rng = Rader_support.Rng

let fast = Sys.getenv_opt "RADER_BENCH_FAST" = Some "1"

let scale =
  if fast then 1.0
  else
    match Sys.getenv_opt "RADER_BENCH_SCALE" with
    | Some s -> float_of_string s
    | None -> 4.0

let skip_bechamel = fast || Sys.getenv_opt "RADER_BENCH_SKIP_BECHAMEL" = Some "1"

(* Adaptive min-of-n timing: repeat until enough total time or reps. *)
let measure f =
  let min_total = if fast then 0.05 else 0.4 in
  let max_reps = if fast then 3 else 9 in
  let best = ref infinity in
  let total = ref 0.0 in
  let reps = ref 0 in
  while !reps < 3 || (!total < min_total && !reps < max_reps) do
    let _, dt = Stats.time_it f in
    if dt < !best then best := dt;
    total := !total +. dt;
    incr reps
  done;
  !best

(* ---------- detector configurations (paper Fig. 7 columns) ---------- *)

type mode = {
  mode_name : string;
  run : Bench_def.t -> k:int -> int;
      (** executes the benchmark once under this configuration *)
}

let with_detector attach ?(spec = Steal_spec.none) b =
  let eng = Engine.create ~spec () in
  attach eng;
  Engine.run eng b.Bench_def.cilk

let spec_updates ~k =
  (* "steals at continuation depth that's half of the maximum sync block
     size" (§8) *)
  Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ max 1 (k / 2) ]

let spec_reductions ~k ~seed =
  (* three random continuation positions per sync block, middle pair
     reduced first (§8's random steal points) *)
  let rng = Rng.create seed in
  let pick () = 1 + Rng.int rng (max 1 k) in
  let rec distinct3 () =
    let a = pick () and b = pick () and c = pick () in
    if a <> b && b <> c && a <> c then List.sort compare [ a; b; c ]
    else if k < 3 then [ 1; 2; 3 ]
    else distinct3 ()
  in
  Steal_spec.at_local_indices
    ~policy:(Steal_spec.Reduce_schedule (fun ord -> if ord = 3 then 1 else 0))
    (distinct3 ())

let modes =
  [
    { mode_name = "plain"; run = (fun b ~k:_ -> b.Bench_def.plain ()) };
    {
      mode_name = "empty tool";
      run = (fun b ~k:_ -> with_detector (fun _ -> ()) b);
    };
    {
      mode_name = "Check view-read race";
      run = (fun b ~k:_ -> with_detector (fun eng -> ignore (Peer_set.attach eng)) b);
    };
    {
      mode_name = "No steals";
      run = (fun b ~k:_ -> with_detector (fun eng -> ignore (Sp_plus.attach eng)) b);
    };
    {
      mode_name = "Check updates";
      run =
        (fun b ~k ->
          with_detector (fun eng -> ignore (Sp_plus.attach eng)) ~spec:(spec_updates ~k) b);
    };
    {
      mode_name = "Check reductions";
      run =
        (fun b ~k ->
          with_detector
            (fun eng -> ignore (Sp_plus.attach eng))
            ~spec:(spec_reductions ~k ~seed:20150613)
            b);
    };
  ]

type row = {
  bench : Bench_def.t;
  k : int;
  d : int;
  times : (string * float) list; (* mode -> best seconds *)
}

let time_suite () =
  let suite = Suite.all ~scale () in
  List.map
    (fun b ->
      Printf.printf "timing %-10s ...%!" b.Bench_def.name;
      let prof = Coverage.profile b.Bench_def.cilk in
      let k = prof.Coverage.k in
      (* correctness check: every mode must return the plain checksum *)
      let expected = b.Bench_def.plain () in
      List.iter
        (fun m ->
          let got = m.run b ~k in
          if got <> expected then
            failwith
              (Printf.sprintf "%s/%s: checksum mismatch" b.Bench_def.name m.mode_name))
        modes;
      let times = List.map (fun m -> (m.mode_name, measure (fun () -> m.run b ~k))) modes in
      Printf.printf " done\n%!";
      { bench = b; k; d = prof.Coverage.d; times })
    suite

let ratio row m base = List.assoc m row.times /. List.assoc base row.times

let overhead_table ~title ~base rows =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  let cols = [ "Check view-read race"; "No steals"; "Check updates"; "Check reductions" ] in
  let t = Tablefmt.create ([ "Benchmark"; "Input size"; "Description" ] @ cols) in
  List.iter
    (fun row ->
      Tablefmt.add_row t
        ([
           row.bench.Bench_def.name;
           row.bench.Bench_def.input;
           row.bench.Bench_def.descr;
         ]
        @ List.map (fun c -> Tablefmt.cell_f (ratio row c base)) cols))
    rows;
  Tablefmt.add_rule t;
  let geo c = Stats.geomean (List.map (fun r -> ratio r c base) rows) in
  Tablefmt.add_row t
    ([ "geometric mean"; ""; "" ] @ List.map (fun c -> Tablefmt.cell_f (geo c)) cols);
  let lo, hi =
    Stats.min_max (List.concat_map (fun r -> List.map (fun c -> ratio r c base) cols) rows)
  in
  Tablefmt.add_row t
    [ "range"; ""; ""; Printf.sprintf "%.2f - %.2f" lo hi ];
  Tablefmt.print t

let base_times_table rows =
  Printf.printf "\nAbsolute base times (best of n)\n-------------------------------\n";
  let t = Tablefmt.create [ "Benchmark"; "K"; "D"; "plain (s)"; "empty tool (s)" ] in
  List.iter
    (fun row ->
      Tablefmt.add_row t
        [
          row.bench.Bench_def.name;
          string_of_int row.k;
          string_of_int row.d;
          Printf.sprintf "%.5f" (List.assoc "plain" row.times);
          Printf.sprintf "%.5f" (List.assoc "empty tool" row.times);
        ])
    rows;
  Tablefmt.print t

(* ---------- S1: §7 steal-specification family sizes ---------- *)

let s1_spec_families rows =
  Printf.printf
    "\nS1: coverage steal-specification family sizes (Theorems 6 & 7)\n\
     ---------------------------------------------------------------\n";
  let t =
    Tablefmt.create [ "K"; "update specs (K+D+1, D=4)"; "reduction specs"; "K^3/6" ]
  in
  List.iter
    (fun k ->
      Tablefmt.add_row t
        [
          string_of_int k;
          string_of_int (List.length (Coverage.specs_for_updates ~k ~d:4));
          string_of_int (List.length (Coverage.specs_for_reductions ~k));
          string_of_int (k * k * k / 6);
        ])
    [ 2; 4; 8; 12; 16; 24; 32 ];
  Tablefmt.print t;
  Printf.printf "\nPer-benchmark profile (K = max continuations per sync block):\n";
  let t = Tablefmt.create [ "Benchmark"; "K"; "D"; "specs for full coverage" ] in
  List.iter
    (fun row ->
      Tablefmt.add_row t
        [
          row.bench.Bench_def.name;
          string_of_int row.k;
          string_of_int row.d;
          string_of_int (List.length (Coverage.all_specs ~k:row.k ~d:row.d));
        ])
    rows;
  Tablefmt.print t

(* ---------- S2: SP+ cost vs number of steals (Theorem 5) ---------- *)

let s2_steal_sweep () =
  Printf.printf
    "\nS2: SP+ running time vs simulated steals M (fib workload)\n\
     ---------------------------------------------------------\n";
  let b = Suite.find ~scale:(Float.min scale 2.0) "fib" in
  let t = Tablefmt.create [ "steal density"; "steals M"; "reduce calls"; "time (s)"; "vs M=0" ] in
  let base = ref None in
  List.iter
    (fun density ->
      let spec =
        if density = 0.0 then Steal_spec.none
        else Steal_spec.random ~seed:7 ~density ()
      in
      let run () =
        let eng = Engine.create ~spec () in
        ignore (Sp_plus.attach eng);
        ignore (Engine.run eng b.Bench_def.cilk);
        Engine.stats eng
      in
      let stats = run () in
      let dt = measure (fun () -> ignore (run ())) in
      let b0 = match !base with None -> base := Some dt; dt | Some b0 -> b0 in
      Tablefmt.add_row t
        [
          Printf.sprintf "%.2f" density;
          string_of_int stats.Engine.n_steals;
          string_of_int stats.Engine.n_reduce_calls;
          Printf.sprintf "%.4f" dt;
          Tablefmt.cell_f (dt /. b0);
        ])
    [ 0.0; 0.05; 0.1; 0.25; 0.5; 0.75; 1.0 ];
  Tablefmt.print t

(* ---------- S3: work-stealing simulator speedup ---------- *)

let s3_wsim () =
  Printf.printf
    "\nS3: simulated work-stealing speedup (pbfs dag, unit-cost strands)\n\
     -----------------------------------------------------------------\n";
  let b = Suite.find ~scale:(Float.min scale 1.0) "pbfs" in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng b.Bench_def.cilk);
  let t = Tablefmt.create [ "workers"; "makespan T_p"; "speedup T1/T_p"; "steals" ] in
  let t1 = ref 0 in
  List.iter
    (fun p ->
      let res = Rader_sched.Wsim.simulate ~workers:p ~seed:42 eng in
      if p = 1 then t1 := res.Rader_sched.Wsim.makespan;
      Tablefmt.add_row t
        [
          string_of_int p;
          string_of_int res.Rader_sched.Wsim.makespan;
          Printf.sprintf "%.2f"
            (float_of_int !t1 /. float_of_int res.Rader_sched.Wsim.makespan);
          string_of_int res.Rader_sched.Wsim.n_steals;
        ])
    [ 1; 2; 4; 8; 16 ];
  Tablefmt.print t

(* ---------- S4: detector comparison on view-oblivious workloads ---------- *)

let s4_detector_comparison () =
  Printf.printf
    "\nS4: serial detector comparison on reducer-free workloads\n\
     (overhead over the empty tool; SP-bags/SP-order/offset-span are the\n\
     related-work baselines of §9, SP+ degenerates to SP-bags here)\n\
     --------------------------------------------------------------\n";
  let workloads =
    [
      Bm_oblivious.fib_futures ~n:(if fast then 18 else 21);
      Bm_oblivious.stencil ~seed:1
        ~n:(if fast then 4096 else 16384)
        ~rounds:(if fast then 4 else 8)
        ~grain:32;
    ]
  in
  let detectors =
    [
      ("empty", fun _ -> ());
      ("SP-bags", fun eng -> ignore (Sp_bags.attach eng));
      ("SP-order", fun eng -> ignore (Sp_order.attach eng));
      ("offset-span", fun eng -> ignore (Offset_span.attach eng));
      ("SP+", fun eng -> ignore (Sp_plus.attach eng));
    ]
  in
  let t =
    Tablefmt.create
      ("Workload" :: "Input" :: List.map fst (List.tl detectors))
  in
  List.iter
    (fun b ->
      let time_of attach =
        measure (fun () ->
            let eng = Engine.create () in
            attach eng;
            ignore (Engine.run eng b.Bench_def.cilk))
      in
      let base = time_of (fun _ -> ()) in
      Tablefmt.add_row t
        (b.Bench_def.name :: b.Bench_def.input
        :: List.filter_map
             (fun (name, attach) ->
               if name = "empty" then None
               else Some (Tablefmt.cell_f (time_of attach /. base)))
             detectors))
    workloads;
  Tablefmt.print t

(* ---------- bechamel micro-benchmarks: one Test.make per table ---------- *)

let bechamel_tables () =
  let open Bechamel in
  let tiny = Suite.all ~scale:0.25 () in
  let mk_fig7 b =
    Test.make ~name:b.Bench_def.name
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           ignore (Sp_plus.attach eng);
           ignore (Engine.run eng b.Bench_def.cilk)))
  in
  let mk_fig8 b =
    Test.make ~name:b.Bench_def.name
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           ignore (Engine.run eng b.Bench_def.cilk)))
  in
  let grouped =
    Test.make_grouped ~name:"bechamel"
      [
        Test.make_grouped ~name:"fig7-sp+" (List.map mk_fig7 tiny);
        Test.make_grouped ~name:"fig8-empty-tool" (List.map mk_fig8 tiny);
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:false () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf
    "\nBechamel micro-benchmarks (ns per whole-benchmark run, tiny inputs)\n\
     -------------------------------------------------------------------\n";
  let t = Tablefmt.create [ "test"; "ns/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Tablefmt.add_row t
        [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Tablefmt.print t

let () =
  Printf.printf
    "Rader/OCaml benchmark harness — reproducing Lee & Schardl, SPAA'15 §8\n\
     scale=%.2f fast=%b\n\n%!"
    scale fast;
  let rows = time_suite () in
  overhead_table ~title:"Figure 7: overhead over no instrumentation" ~base:"plain" rows;
  overhead_table ~title:"Figure 8: overhead over an empty tool" ~base:"empty tool" rows;
  base_times_table rows;
  s1_spec_families rows;
  s2_steal_sweep ();
  s3_wsim ();
  s4_detector_comparison ();
  if not skip_bechamel then bechamel_tables ();
  Printf.printf "\ndone.\n"
