type cont_info = {
  spawn_index : int;
  frame : int;
  depth : int;
  local_index : int;
  sync_block : int;
}

type reduce_policy =
  | Reduce_at_sync
  | Reduce_eagerly
  | Reduce_schedule of (int -> int)

type shape =
  | Never
  | Always
  | Probabilistic
  | Local_indices of int list
  | At_depth of int
  | Spawn_indices of int list
  | Opaque

type t = {
  name : string;
  steal : cont_info -> bool;
  policy : reduce_policy;
  shape : shape;
}

let none =
  { name = "none"; steal = (fun _ -> false); policy = Reduce_at_sync; shape = Never }

let all ?(policy = Reduce_eagerly) () =
  { name = "all"; steal = (fun _ -> true); policy; shape = Always }

(* Stateless hash so that the same (seed, spawn_index) always decides the
   same way, independent of evaluation order. splitmix64 finalizer. *)
let hash64 seed x =
  let open Int64 in
  let z = add (of_int seed) (mul (of_int (x + 1)) 0x9E3779B97F4A7C15L) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let random ?(policy = Reduce_eagerly) ~seed ~density () =
  if density < 0.0 || density > 1.0 then invalid_arg "Steal_spec.random: density";
  let steal info =
    let h = hash64 seed info.spawn_index in
    let u = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
    u < density
  in
  {
    name = Printf.sprintf "random(seed=%d,p=%.2f)" seed density;
    steal;
    policy;
    shape = Probabilistic;
  }

let at_local_indices ?(policy = Reduce_at_sync) idxs =
  let steal info = List.mem info.local_index idxs in
  {
    name =
      Printf.sprintf "local{%s}" (String.concat "," (List.map string_of_int idxs));
    steal;
    policy;
    shape = Local_indices idxs;
  }

let at_depth ?(policy = Reduce_eagerly) d =
  {
    name = Printf.sprintf "depth=%d" d;
    steal = (fun info -> info.depth = d);
    policy;
    shape = At_depth d;
  }

let by_spawn_index ?(policy = Reduce_at_sync) ?name idxs =
  let module IS = Set.Make (Int) in
  let set = IS.of_list idxs in
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "spawns{%s}" (String.concat "," (List.map string_of_int idxs))
  in
  { name; steal = (fun info -> IS.mem info.spawn_index set); policy;
    shape = Spawn_indices idxs }

let with_name t name = { t with name }

let opaque ?(policy = Reduce_at_sync) ~name steal = { name; steal; policy; shape = Opaque }

let validate t ~k ~d ~n_spawns =
  let out_of_range lo hi xs = List.filter (fun x -> x < lo || x > hi) xs in
  let render xs = String.concat "," (List.map string_of_int xs) in
  match t.shape with
  | Never | Always | Probabilistic | Opaque -> Ok ()
  | Local_indices idxs -> (
      match out_of_range 1 k idxs with
      | [] -> Ok ()
      | bad ->
          Error
            (Printf.sprintf
               "continuation indices {%s} outside 1..K for profile K=%d"
               (render bad) k))
  | At_depth dd ->
      if dd >= 0 && dd <= d then Ok ()
      else Error (Printf.sprintf "depth %d outside 0..D for profile D=%d" dd d)
  | Spawn_indices idxs -> (
      match out_of_range 0 (n_spawns - 1) idxs with
      | [] -> Ok ()
      | bad ->
          Error
            (Printf.sprintf "spawn ordinals {%s} outside the program's %d spawns"
               (render bad) n_spawns))

let merges_before_steal t ~steal_ordinal ~n_open =
  let max_merges = max 0 (n_open - 1) in
  match t.policy with
  | Reduce_at_sync -> 0
  | Reduce_eagerly -> max_merges
  | Reduce_schedule f -> min (max 0 (f steal_ordinal)) max_merges

(* The CLI / wire syntax for specs: keep this total — the serve daemon
   parses untrusted spec strings out of request frames. *)
let parse ~seed ~density s =
  match s with
  | "none" -> Ok none
  | "all" -> Ok (all ())
  | "random" -> Ok (random ~seed ~density ())
  | s -> (
      match List.map int_of_string (String.split_on_char ',' s) with
      | idxs when List.for_all (fun i -> i >= 1) idxs ->
          Ok (at_local_indices ~policy:Reduce_eagerly idxs)
      | _ -> Error (Printf.sprintf "continuation indices in %S must be >= 1" s)
      | exception _ ->
          Error
            (Printf.sprintf
               "cannot parse steal spec %S (want none, all, random, or a \
                comma-separated index list)"
               s))
