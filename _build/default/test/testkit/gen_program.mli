(** Random Cilk-program generation for property-based testing.

    Programs are small ASTs over shared cells and reducers, interpreted in
    the DSL. Reducers are cell-backed integer-add reducers whose update and
    reduce operations can additionally be configured to write designated
    {e shared} cells — which is exactly how Figure-1-style determinacy
    races between view-oblivious code and view-aware code arise. The
    detectors are required to agree with the brute-force oracles on every
    generated program (and, for SP+, every steal specification). *)

type stmt =
  | Spawn of stmt list
  | Call of stmt list
  | Pfor of int * stmt list  (** parallel_for with the given trip count *)
  | Sync
  | Read of int  (** shared cell index *)
  | Write of int
  | Update of int  (** reducer index *)
  | Get_reducer of int
  | Set_reducer of int

(** Per-reducer behaviour of the view-aware code. *)
type reducer_cfg = {
  update_touches : int option;  (** shared cell written by every [Update] *)
  reduce_touches : int option;  (** shared cell written by every [Reduce] *)
}

type program = {
  body : stmt list;
  n_cells : int;
  reducers : reducer_cfg array;
}

(** [interpret p ctx] runs [p]; the result is the sum of all reducer
    values plus a hash of the shared cells (so schedule-dependence of any
    part is observable). *)
val interpret : program -> Rader_runtime.Engine.ctx -> int

(** [gen ~with_reducers ~racy] is a QCheck generator.
    [with_reducers = false] generates pure fork-join memory programs (for
    SP-bags properties). [racy] controls whether view-aware code may touch
    shared cells and whether reducer-reads may appear in spawned regions —
    with [racy = false] the program is ostensibly deterministic by
    construction. *)
val gen : with_reducers:bool -> racy:bool -> program QCheck2.Gen.t

(** [print p] is a compact textual rendering for failure reports. *)
val print : program -> string

(** [max_local_spawns p] is the max number of spawns in any sync block —
    used to bound coverage enumeration in tests. *)
val max_local_spawns : program -> int
