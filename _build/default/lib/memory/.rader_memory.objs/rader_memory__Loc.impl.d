lib/memory/loc.ml: Printf Rader_support
