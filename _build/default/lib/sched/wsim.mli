(** Discrete-event randomized work-stealing simulator.

    Replays a recorded computation dag on [p] virtual workers under the
    classic Cilk discipline [Blumofe & Leiserson '99]: each worker owns a
    deque, executes strands depth-first in serial order (newly enabled
    successors are pushed so that the serially-first one is taken next),
    and an idle worker steals the {e oldest} ready strand from a uniformly
    random victim. Strand costs are one time unit.

    The simulator serves two purposes:

    - it derives {e realistic steal sets}: a continuation counts as stolen
      iff the simulation executes it on a different worker than its spawn
      strand — {!steal_spec} turns that into a [Steal_spec.t], so SP+ can
      be pointed at schedules an actual work-stealing runtime would
      produce, and the schedule-fuzzing example can demonstrate the
      nondeterministic outputs of racy programs;
    - it measures the simulated makespan [T_p], from which speedup and
      steal-frequency experiments are built. *)

type result = {
  makespan : int;  (** simulated parallel time, unit-cost strands *)
  work : int;  (** number of strands executed (= T₁) *)
  n_steals : int;  (** successful steals during the simulation *)
  stolen_continuations : int list;  (** spawn indices whose continuation ran on another worker *)
}

(** [simulate ~workers ~seed eng] simulates the recorded dag of [eng]
    (which must have been run with [~record:true]).
    @raise Invalid_argument if nothing was recorded or [workers < 1]. *)
val simulate : workers:int -> seed:int -> Rader_runtime.Engine.t -> result

(** [steal_spec ?policy res] is the steal specification naming exactly the
    continuations the simulation stole (default policy
    [Reduce_eagerly], matching how a real runtime reduces opportunistically). *)
val steal_spec :
  ?policy:Rader_runtime.Steal_spec.reduce_policy -> result -> Rader_runtime.Steal_spec.t
