lib/support/om.ml: Dynarr List
