test/test_dsets.mli:
