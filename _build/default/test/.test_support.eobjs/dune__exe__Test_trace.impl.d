test/test_trace.ml: Alcotest Cell Cilk Engine Filename Fun List Mylist Oracle Rader_core Rader_dag Rader_runtime Reducer Steal_spec Sys Trace
