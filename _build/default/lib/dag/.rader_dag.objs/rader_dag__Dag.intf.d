lib/dag/dag.mli:
