(* Tests for Rader_analysis — the zero-replay static analyzer.

   - the static view-read verdict must agree with the dynamic Peer-Set
     detector on every generated program (Lemma 2 made executable, checked
     by Verdict.cross_check on 240 programs);
   - Coverage.exhaustive_check ~prune must return byte-identical verdicts
     (racy_locs and reports) to the unpruned sweep on racy and clean
     generated programs (the DESIGN.md §10 soundness claim);
   - each lint rule R001-R005 must fire on a program built to violate it
     and stay silent on a clean one;
   - lint table/JSON reports for one clean and one racy program are pinned
     as golden fixtures (regen: RADER_GOLDEN_REGEN=$PWD/test/golden dune
     runtest). *)

open Rader_runtime
open Rader_core
open Rader_analysis
module G = Rader_testkit.Gen_program

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ir_of program =
  match Ir.of_program program with
  | Ok ir -> ir
  | Error f -> Alcotest.fail ("IR build failed: " ^ Diag.to_string f)

(* ---------- corpus programs ---------- *)

let rec fib ctx n =
  if n < 2 then n
  else begin
    let a = Cilk.spawn ctx (fun ctx -> fib ctx (n - 1)) in
    let b = Cilk.call ctx (fun ctx -> fib ctx (n - 2)) in
    Cilk.sync ctx;
    Cilk.get ctx a + b
  end

let reducer_free ctx = fib ctx 8

(* clean reducer sum: all reads at one peer set *)
let clean_sum ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  Rmonoid.int_cell_value ctx r

(* view-read race: the get-value races with the spawned updates *)
let racy_get ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  ignore
    (Cilk.spawn ctx (fun ctx ->
         Cilk.parallel_for ctx ~lo:1 ~hi:9 (fun ctx i -> Rmonoid.add ctx r i)));
  let v = Rmonoid.int_cell_value ctx r in
  Cilk.sync ctx;
  v

(* raw determinacy race: two parallel writes, no reducer involved *)
let raw_race ctx =
  let c = Cell.make_in ctx ~label:"shared" 0 in
  ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
  ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 2));
  Cilk.sync ctx;
  Cell.read ctx c

(* dead reducer: created, then never read or updated again *)
let dead_reducer ctx =
  let _r = Rmonoid.new_int_add ctx ~init:0 in
  let a = Cilk.spawn ctx (fun _ -> 3) in
  Cilk.sync ctx;
  Cilk.get ctx a

(* non-associative monoid: the reduction tree's shape is observable *)
let schedule_sensitive ctx =
  let monoid =
    { Reducer.name = "sub"; identity = (fun _ -> 0); reduce = (fun _ a b -> a - b) }
  in
  let r = Reducer.create ctx monoid ~init:100 in
  Cilk.parallel_for ctx ~lo:1 ~hi:6 (fun ctx i ->
      Reducer.update ctx r (fun _ v -> v + i));
  Cilk.sync ctx;
  Reducer.get_value ctx r

(* view escape: the update body writes a cell that raw parallel code
   reads (the Fig.-1 shallow-copy shape, distilled) *)
let view_escape ctx =
  let shared = Cell.make_in ctx ~label:"leaked" 0 in
  let r =
    Reducer.create ctx
      {
        Reducer.name = "leaky";
        identity = (fun _ -> 0);
        reduce = (fun _ a b -> a + b);
      }
      ~init:0
  in
  let reader = Cilk.spawn ctx (fun ctx -> Cell.read ctx shared) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:0 ~hi:4 (fun ctx i ->
          Reducer.update ctx r (fun c v ->
              Cell.write c shared i;
              v + i)));
  Cilk.sync ctx;
  Cilk.get ctx reader

(* ---------- IR ---------- *)

let test_ir_reducer_free () =
  let ir = ir_of reducer_free in
  check "no reducers" 0 ir.Ir.n_reducers;
  checkb "no reducer ids" true (Ir.reducer_ids ir = []);
  check "result" 21 ir.Ir.result;
  (* every access strand is a leaf of the indexed tree *)
  List.iter
    (fun (a : Engine.access) ->
      checkb "access strand is a leaf" true
        (Rader_dag.Sp_tree.all_s_path ir.Ir.ix a.Engine.a_strand
           a.Engine.a_strand))
    (Ir.accesses ir)

let test_ir_provenance () =
  let ir = ir_of clean_sum in
  checkb "one reducer" true (Ir.reducer_ids ir = [ 0 ]);
  checkb "creation read recorded" true (List.length (Ir.reads ir 0) >= 2);
  check "eight updates" 8 (List.length (Ir.updates ir 0));
  (* update frames appear in the aux log as Update_fn *)
  checkb "aux kinds are updates" true
    (List.for_all (fun (k, _, _) -> k = Tool.Update_fn) ir.Ir.aux)

let test_ir_contains_failure () =
  match Ir.of_program (fun _ -> failwith "boom") with
  | Ok _ -> Alcotest.fail "expected a contained failure"
  | Error f -> checkb "diagnostic" true (Diag.to_string f <> "")

(* ---------- static verdict ---------- *)

let test_verdict_clean () =
  checkb "clean sum" true (Verdict.view_read (ir_of clean_sum) = []);
  checkb "reducer-free" true (Verdict.view_read (ir_of reducer_free) = [])

let test_verdict_racy () =
  match Verdict.view_read (ir_of racy_get) with
  | [ w ] ->
      check "reducer 0" 0 w.Verdict.w_reducer;
      checkb "witness strands differ" true (w.Verdict.w_first <> w.Verdict.w_second)
  | ws -> Alcotest.fail (Printf.sprintf "expected 1 witness, got %d" (List.length ws))

let test_cross_check_agrees () =
  List.iter
    (fun (name, p) ->
      match Verdict.cross_check p (ir_of p) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
    [
      ("clean_sum", clean_sum);
      ("racy_get", racy_get);
      ("reducer_free", reducer_free);
      ("view_escape", view_escape);
    ]

(* ---------- lint rules ---------- *)

let rules_of findings = List.sort_uniq compare (List.map (fun f -> f.Lint.rule) findings)
let has rule findings = List.mem rule (rules_of findings)

let test_lint_clean () =
  checkb "clean sum lints clean" true (Lint.run ~program:clean_sum (ir_of clean_sum) = []);
  checkb "fib lints clean" true (Lint.run ~program:reducer_free (ir_of reducer_free) = [])

let test_lint_r001 () =
  let fs = Lint.run (ir_of racy_get) in
  checkb "R001 fires" true (has "R001" fs);
  List.iter
    (fun f -> if f.Lint.rule = "R001" then checkb "severity" true (f.Lint.severity = Lint.Error))
    fs

let test_lint_r002 () =
  let fs = Lint.run (ir_of raw_race) in
  checkb "R002 fires" true (has "R002" fs);
  checkb "R001 silent (no reducer misuse)" true (not (has "R001" fs))

let test_lint_r003 () =
  let fs = Lint.run (ir_of dead_reducer) in
  checkb "R003 fires" true (has "R003" fs);
  checkb "R003 silent when used" true
    (not (has "R003" (Lint.run (ir_of clean_sum))))

let test_lint_r004 () =
  let fs = Lint.run ~program:schedule_sensitive (ir_of schedule_sensitive) in
  checkb "R004 fires on non-associative monoid" true (has "R004" fs);
  (* without the program the differential rule is skipped *)
  checkb "R004 needs the program" true
    (not (has "R004" (Lint.run (ir_of schedule_sensitive))));
  checkb "R004 silent on associative sum" true
    (not (has "R004" (Lint.run ~program:clean_sum (ir_of clean_sum))))

let test_lint_r005 () =
  let fs = Lint.run (ir_of view_escape) in
  checkb "R005 fires" true (has "R005" fs);
  (match List.find_opt (fun f -> f.Lint.rule = "R005") fs with
  | Some f -> checkb "subject names the leaked loc" true
      (String.length f.Lint.subject > 0
      && String.sub f.Lint.subject 0 4 = "loc:")
  | None -> Alcotest.fail "missing R005 finding")

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_lint_renderers () =
  let ir = ir_of view_escape in
  let fs = Lint.run ir in
  let table = Lint.to_table fs in
  checkb "table mentions rule" true
    (String.length table > 0 && has "R005" fs && contains_sub table "R005");
  let json = Lint.to_json ~program:"view_escape" fs in
  checkb "json has program key" true (contains_sub json "\"program\":\"view_escape\"");
  let dot = Lint.to_dot ir fs in
  checkb "dot colors a leaf" true (contains_sub dot "fillcolor");
  checkb "baseline lines sorted" true
    (let ls = Lint.baseline_lines ~program:"p" fs in
     ls = List.sort compare ls)

(* ---------- prune decisions ---------- *)

let test_profile_relevance () =
  let prof = Coverage.profile reducer_free in
  check "reducer-free k_rel" 0 prof.Coverage.k_rel;
  checkb "reducer-free rel_depths" true (prof.Coverage.rel_depths = []);
  let prof2 = Coverage.profile clean_sum in
  checkb "reducer program has relevant positions" true (prof2.Coverage.k_rel >= 1)

let test_prune_family_reducer_free () =
  let prof = Coverage.profile reducer_free in
  let total, kept = Prune.summary (Prune.family prof) in
  checkb "family bigger than baseline" true (total > 1);
  check "only the no-steal spec kept" 1 kept

let test_spec_relevant () =
  let prof = Coverage.profile clean_sum in
  let k_rel = prof.Coverage.k_rel in
  checkb "index beyond k_rel pruned" false
    (Coverage.spec_relevant prof (Steal_spec.at_local_indices [ k_rel + 1 ]));
  checkb "index at k_rel kept" true
    (Coverage.spec_relevant prof (Steal_spec.at_local_indices [ k_rel ]));
  checkb "mixed indices kept" true
    (Coverage.spec_relevant prof (Steal_spec.at_local_indices [ k_rel; k_rel + 5 ]));
  checkb "unlocalizable shapes kept" true
    (Coverage.spec_relevant prof (Steal_spec.all ())
    && Coverage.spec_relevant prof (Steal_spec.random ~seed:1 ~density:0.5 ())
    && Coverage.spec_relevant prof Steal_spec.none)

let test_pruned_sweep_identical_on_corpus () =
  List.iter
    (fun (name, p) ->
      let a = Coverage.exhaustive_check p in
      let b = Coverage.exhaustive_check ~prune:true p in
      checkb (name ^ ": racy_locs identical") true
        (a.Coverage.racy_locs = b.Coverage.racy_locs);
      checkb (name ^ ": reports identical") true
        (a.Coverage.reports = b.Coverage.reports);
      checkb (name ^ ": pruning accounted") true
        (b.Coverage.n_run = b.Coverage.n_specs - b.Coverage.n_pruned))
    [
      ("clean_sum", clean_sum);
      ("racy_get", racy_get);
      ("raw_race", raw_race);
      ("view_escape", view_escape);
      ("reducer_free", reducer_free);
    ]

(* ---------- properties ---------- *)

let qtest ?(count = 150) name gen prop =
  QCheck2.Test.make ~name ~count ~print:G.print gen prop

(* 240 generated programs: the static verdict equals Peer-Set's. *)
let prop_static_matches_dynamic ~racy ~count =
  qtest ~count
    (Printf.sprintf "static view-read verdict = Peer-Set (racy=%b)" racy)
    (G.gen ~with_reducers:true ~racy)
    (fun p ->
      match Ir.of_program (G.interpret p) with
      | Error f ->
          QCheck2.Test.fail_reportf "profiling run crashed: %s" (Diag.to_string f)
      | Ok ir -> (
          match Verdict.cross_check (G.interpret p) ir with
          | Ok () -> true
          | Error msg -> QCheck2.Test.fail_reportf "%s" msg))

(* Pruned coverage sweeps return byte-identical verdicts. K is bounded to
   keep the Θ(K³) family small enough for an exhaustive sweep per case. *)
let prop_prune_equivalent ~racy ~count =
  qtest ~count
    (Printf.sprintf "exhaustive_check ~prune verdict-identical (racy=%b)" racy)
    (G.gen ~with_reducers:true ~racy)
    (fun p ->
      QCheck2.assume (G.max_local_spawns p <= 4);
      let a = Coverage.exhaustive_check ~max_events:200_000 (G.interpret p) in
      let b =
        Coverage.exhaustive_check ~max_events:200_000 ~prune:true (G.interpret p)
      in
      if a.Coverage.racy_locs <> b.Coverage.racy_locs then
        QCheck2.Test.fail_reportf "racy_locs differ: [%s] vs pruned [%s]"
          (String.concat "," (List.map string_of_int a.Coverage.racy_locs))
          (String.concat "," (List.map string_of_int b.Coverage.racy_locs))
      else if a.Coverage.reports <> b.Coverage.reports then
        QCheck2.Test.fail_reportf "reports differ (%d vs %d)"
          (List.length a.Coverage.reports)
          (List.length b.Coverage.reports)
      else true)

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_static_matches_dynamic ~racy:true ~count:120;
      prop_static_matches_dynamic ~racy:false ~count:120;
      prop_prune_equivalent ~racy:true ~count:80;
      prop_prune_equivalent ~racy:false ~count:80;
    ]

(* ---------- golden lint reports ---------- *)

let golden_cases =
  [
    ("lint_clean", clean_sum);
    ("lint_racy", racy_get);
  ]

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let golden_lint_case (name, program) fmt () =
  let ir = ir_of program in
  let findings = Lint.run ~program ir in
  let rendered =
    match fmt with
    | `Table -> Lint.to_table findings
    | `Json -> Lint.to_json ~program:name findings ^ "\n"
  in
  let file =
    Printf.sprintf "%s__%s.golden" name
      (match fmt with `Table -> "table" | `Json -> "json")
  in
  match Sys.getenv_opt "RADER_GOLDEN_REGEN" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir file) in
      output_string oc rendered;
      close_out oc
  | None ->
      let path = Filename.concat "golden" file in
      if not (Sys.file_exists path) then
        Alcotest.fail
          (Printf.sprintf
             "missing golden file %s — generate with \
              RADER_GOLDEN_REGEN=$PWD/test/golden dune runtest"
             file);
      let expected = read_file path in
      if expected <> rendered then begin
        Printf.printf "--- expected (%s)\n%s--- got\n%s" file expected rendered;
        checkb
          (Printf.sprintf
             "%s: lint report drifted — if intentional, re-baseline with \
              RADER_GOLDEN_REGEN"
             file)
          true false
      end

let golden_tests =
  List.concat_map
    (fun case ->
      List.map
        (fun fmt ->
          Alcotest.test_case
            (Printf.sprintf "%s (%s)" (fst case)
               (match fmt with `Table -> "table" | `Json -> "json"))
            `Quick
            (golden_lint_case case fmt))
        [ `Table; `Json ])
    golden_cases

let () =
  Alcotest.run "analysis"
    [
      ( "ir",
        [
          Alcotest.test_case "reducer-free" `Quick test_ir_reducer_free;
          Alcotest.test_case "provenance" `Quick test_ir_provenance;
          Alcotest.test_case "contained failure" `Quick test_ir_contains_failure;
        ] );
      ( "verdict",
        [
          Alcotest.test_case "clean" `Quick test_verdict_clean;
          Alcotest.test_case "racy" `Quick test_verdict_racy;
          Alcotest.test_case "cross-check" `Quick test_cross_check_agrees;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean programs" `Quick test_lint_clean;
          Alcotest.test_case "R001 view-read race" `Quick test_lint_r001;
          Alcotest.test_case "R002 raw race" `Quick test_lint_r002;
          Alcotest.test_case "R003 dead reducer" `Quick test_lint_r003;
          Alcotest.test_case "R004 schedule-sensitive" `Quick test_lint_r004;
          Alcotest.test_case "R005 view escape" `Quick test_lint_r005;
          Alcotest.test_case "renderers" `Quick test_lint_renderers;
        ] );
      ( "prune",
        [
          Alcotest.test_case "relevance profile" `Quick test_profile_relevance;
          Alcotest.test_case "reducer-free family" `Quick test_prune_family_reducer_free;
          Alcotest.test_case "spec_relevant" `Quick test_spec_relevant;
          Alcotest.test_case "pruned sweep identical" `Quick
            test_pruned_sweep_identical_on_corpus;
        ] );
      ("properties", properties);
      ("golden lint reports", golden_tests);
    ]
