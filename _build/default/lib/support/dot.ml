type t = {
  name : string;
  mutable lines : string list; (* reversed *)
}

let create name = { name; lines = [] }

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attrs_str label attrs =
  let parts =
    Printf.sprintf "label=\"%s\"" (escape label)
    :: List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs
  in
  String.concat ", " parts

let node t id ~label ~attrs =
  t.lines <- Printf.sprintf "  %s [%s];" id (attrs_str label attrs) :: t.lines

let edge t a b ~attrs =
  let suffix =
    match attrs with
    | [] -> ""
    | attrs ->
        " ["
        ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)
        ^ "]"
  in
  t.lines <- Printf.sprintf "  %s -> %s%s;" a b suffix :: t.lines

let subgraph_cluster t name ~label ids =
  let body = String.concat "; " ids in
  t.lines <-
    Printf.sprintf "  subgraph cluster_%s { label=\"%s\"; %s; }" name (escape label) body
    :: t.lines

let render t =
  Printf.sprintf "digraph %s {\n%s\n}\n" t.name
    (String.concat "\n" (List.rev t.lines))
