lib/benchsuite/bm_nqueens.mli: Bench_def
