examples/pbfs_demo.mli:
