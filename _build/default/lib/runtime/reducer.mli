(** Reducer hyperobjects (paper §2).

    A reducer is declared over a monoid [(T, ⊗, e)] given as an
    {!monoid} record whose operations run {e instrumented}: [identity]
    implements [Create-Identity] and [reduce] implements [Reduce], and both
    receive a context so that any memory they touch goes through {!Cell} /
    {!Rarray} and is visible to the detectors. Updates are applied through
    {!update}, which runs as a view-aware [Update] frame.

    View management follows the Cilk runtime (paper §5): each strand sees
    the view of its current region; the first update (or value access) in a
    freshly stolen region materializes an identity view via a
    [Create-Identity] frame; when the engine merges two adjacent regions,
    the reducer's dominated view is folded into the surviving one by a
    [Reduce] frame (or simply transferred when the surviving region never
    materialized a view, mirroring lazy view creation).

    {!create}, {!get_value} and {!set_value} are {e reducer-reads} in the
    sense of the Peer-Set algorithm (paper §3) and are reported to the tool
    as such; [update] is not. *)

type 'v monoid = {
  name : string;
  identity : Engine.ctx -> 'v;  (** [Create-Identity] *)
  reduce : Engine.ctx -> 'v -> 'v -> 'v;
      (** [reduce c left right] folds [right] (the dominated, serially later
          view) into [left] and returns the surviving view; it may mutate
          [left] in place. Must be semantically associative. *)
}

type 'v t

(** [create ctx m ~init] declares a reducer with initial (leftmost) view
    [init]. A reducer-read. *)
val create : Engine.ctx -> 'v monoid -> init:'v -> 'v t

(** [get_value ctx r] is the current view's value (materializing an
    identity view if the current region has none, like Cilk's [view()]).
    A reducer-read. *)
val get_value : Engine.ctx -> 'v t -> 'v

(** [set_value ctx r v] replaces the current view's value. A
    reducer-read. *)
val set_value : Engine.ctx -> 'v t -> 'v -> unit

(** [update ctx r f] applies [f] to the current view inside an [Update]
    frame and stores the result. [f] must be serial Cilk code (no spawn /
    sync / reducer-reads) whose shared accesses go through cells. *)
val update : Engine.ctx -> 'v t -> (Engine.ctx -> 'v -> 'v) -> unit

(** [id r] is the reducer's dense id (as reported in tool events). *)
val id : 'v t -> int

(** [name r] is the monoid name. *)
val name : 'v t -> string

(** [peek r] is the value of the view living in the reducer's creation
    region, uninstrumented — for post-run verification in tests only. *)
val peek : 'v t -> 'v option

(** [n_views r] is the number of views currently materialized —
    1 after all regions of the creating sync block are merged. *)
val n_views : 'v t -> int
