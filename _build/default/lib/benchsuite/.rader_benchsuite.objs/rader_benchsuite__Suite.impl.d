lib/benchsuite/suite.ml: Bench_def Bm_collision Bm_dedup Bm_ferret Bm_fib Bm_knapsack Bm_pbfs Float List
