(* Golden-trace conformance: the exact tool-event sequence the engine
   emits for a corpus of seed programs × steal specs is pinned by
   fingerprint files in test/golden/. The engine is deterministic, so any
   drift in event order, frame numbering, region numbering or location
   numbering — the coordinates every detector and the obs layer key off —
   shows up as a digest mismatch here before it silently re-baselines the
   detectors.

   To re-baseline intentionally:
     RADER_GOLDEN_REGEN=$PWD/test/golden dune runtest   (from the repo root)
   then review the diff like any other code change. *)

open Rader_runtime

let checkb = Alcotest.(check bool)

(* --- the recorder ------------------------------------------------------ *)

let record_lines spec program =
  let buf = Buffer.create 4096 in
  let addf fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let tool =
    Tool.extern
    {
      Tool.on_frame_enter =
        (fun ~frame ~parent ~spawned ~kind ->
          addf "enter %d parent=%d spawned=%b kind=%s" frame parent spawned
            (Tool.frame_kind_name kind));
      on_frame_return =
        (fun ~frame ~parent ~spawned ~kind ->
          addf "return %d parent=%d spawned=%b kind=%s" frame parent spawned
            (Tool.frame_kind_name kind));
      on_sync = (fun ~frame -> addf "sync %d" frame);
      on_steal = (fun ~frame ~region -> addf "steal %d region=%d" frame region);
      on_reduce =
        (fun ~frame ~into_region ~from_region ->
          addf "reduce %d into=%d from=%d" frame into_region from_region);
      on_read =
        (fun ~frame ~loc ~view_aware ->
          addf "read %d loc=%d va=%b" frame loc view_aware);
      on_write =
        (fun ~frame ~loc ~view_aware ->
          addf "write %d loc=%d va=%b" frame loc view_aware);
      on_reducer_read =
        (fun ~frame ~reducer -> addf "rread %d reducer=%d" frame reducer);
    }
  in
  let eng = Engine.create ~tool ~spec () in
  (match Engine.run_result eng program with
  | Ok _ -> addf "end ok"
  | Error f -> addf "end %s" (Rader_core.Diag.class_name f));
  Buffer.contents buf

(* --- the corpus -------------------------------------------------------- *)

let rec fib ctx n =
  if n < 2 then n
  else begin
    let a = Cilk.spawn ctx (fun ctx -> fib ctx (n - 1)) in
    let b = Cilk.call ctx (fun ctx -> fib ctx (n - 2)) in
    Cilk.sync ctx;
    Cilk.get ctx a + b
  end

let fib8 ctx = fib ctx 8

let sum_loop ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  ignore (Rmonoid.int_cell_value ctx r)

let list_builder ctx =
  let red = Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx) in
  Cilk.parallel_for ctx ~lo:0 ~hi:6 (fun ctx i ->
      Reducer.update ctx red (fun c l ->
          Mylist.insert c l i;
          l));
  Cilk.sync ctx;
  ignore (Mylist.scan ctx (Reducer.get_value ctx red))

let specs =
  [
    ("none", Steal_spec.none);
    ("all", Steal_spec.all ());
    ( "local_2_4",
      Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_at_sync [ 2; 4 ] );
  ]

let corpus =
  [
    ("fib8", (fib8 : Engine.ctx -> int), [ "none"; "all" ]);
    ("sum_loop", (fun ctx -> sum_loop ctx; 0), [ "none"; "all"; "local_2_4" ]);
    ("list_builder", (fun ctx -> list_builder ctx; 0), [ "none"; "all"; "local_2_4" ]);
  ]

(* --- golden file format ------------------------------------------------ *)

let head_lines = 20

let render ~program ~spec_name text =
  let lines = String.split_on_char '\n' text in
  let n_events = List.length lines - 1 (* trailing newline *) in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "program %s\n" program;
  Printf.bprintf buf "spec %s\n" spec_name;
  Printf.bprintf buf "events %d\n" n_events;
  Printf.bprintf buf "digest %s\n" (Digest.to_hex (Digest.string text));
  Printf.bprintf buf "--\n";
  List.iteri
    (fun i l -> if i < head_lines && l <> "" then Printf.bprintf buf "%s\n" l)
    lines;
  Buffer.contents buf

let golden_name program spec_name = Printf.sprintf "%s__%s.golden" program spec_name

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  body

let test_case_for program prog spec_name () =
  let spec = List.assoc spec_name specs in
  let rendered =
    render ~program ~spec_name (record_lines spec (fun ctx -> ignore (prog ctx)))
  in
  let name = golden_name program spec_name in
  match Sys.getenv_opt "RADER_GOLDEN_REGEN" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc rendered;
      close_out oc
  | None ->
      let path = Filename.concat "golden" name in
      if not (Sys.file_exists path) then
        Alcotest.fail
          (Printf.sprintf
             "missing golden file %s — generate with \
              RADER_GOLDEN_REGEN=$PWD/test/golden dune runtest"
             name);
      let expected = read_file path in
      if expected <> rendered then begin
        Printf.printf "--- expected (%s)\n%s--- got\n%s" name expected rendered;
        checkb
          (Printf.sprintf
             "%s: event sequence drifted — if intentional, re-baseline with \
              RADER_GOLDEN_REGEN (see test_golden.ml)"
             name)
          true false
      end

(* --- backend verdict parity over the same corpus ----------------------- *)

(* The goldens pin the raw event stream, which no precedence backend can
   perturb (backends are pure observers). What a backend COULD perturb is
   the verdict computed from that stream — so the same corpus also pins
   "dset and depa produce byte-identical race reports". *)

module Core = Rader_core

let sp_plus_verdict ~reach spec program =
  let eng = Engine.create ~spec () in
  let d = Core.Sp_plus.attach ~reach eng in
  ignore (Engine.run_result eng program);
  List.map Core.Report.to_string (Core.Sp_plus.races d)

let peer_set_verdict ~reach program =
  let eng = Engine.create () in
  let d = Core.Peer_set.attach ~reach eng in
  ignore (Engine.run_result eng program);
  List.map Core.Report.to_string (Core.Peer_set.races d)

let parity_case_for name prog spec_name () =
  let spec = List.assoc spec_name specs in
  let program ctx = ignore (prog ctx) in
  Alcotest.(check (list string))
    (Printf.sprintf "%s under %s: SP+ dset vs depa" name spec_name)
    (sp_plus_verdict ~reach:Rader_reach.Reach.Dset spec program)
    (sp_plus_verdict ~reach:Rader_reach.Reach.Depa spec program);
  Alcotest.(check (list string))
    "Peer-Set dset vs depa"
    (peer_set_verdict ~reach:Rader_reach.Reach.Dset program)
    (peer_set_verdict ~reach:Rader_reach.Reach.Depa program)

(* --- dispatch-shape verdict parity over the same corpus ---------------- *)

(* The third thing that could drift: the dispatch SHAPE. The same corpus
   pins "the defunctionalized variant dispatch (direct match + span
   batching) and the seed's closure-record dispatch ([Tool.extern] over
   [Tool.hooks_of], per-access events) produce byte-identical reports" —
   the deterministic anchor for the randomized test_dispatch suite. *)

let sp_plus_verdict_extern spec program =
  let eng = Engine.create ~spec () in
  let d = Core.Sp_plus.create eng in
  Engine.set_tool eng (Tool.extern (Tool.hooks_of (Core.Sp_plus.tool d)));
  ignore (Engine.run_result eng program);
  List.map Core.Report.to_string (Core.Sp_plus.races d)

let peer_set_verdict_extern program =
  let eng = Engine.create () in
  let d = Core.Peer_set.create eng in
  Engine.set_tool eng (Tool.extern (Tool.hooks_of (Core.Peer_set.tool d)));
  ignore (Engine.run_result eng program);
  List.map Core.Report.to_string (Core.Peer_set.races d)

let dispatch_case_for name prog spec_name () =
  let spec = List.assoc spec_name specs in
  let program ctx = ignore (prog ctx) in
  Alcotest.(check (list string))
    (Printf.sprintf "%s under %s: SP+ variant vs extern dispatch" name spec_name)
    (sp_plus_verdict ~reach:Rader_reach.Reach.Dset spec program)
    (sp_plus_verdict_extern spec program);
  Alcotest.(check (list string))
    "Peer-Set variant vs extern dispatch"
    (peer_set_verdict ~reach:Rader_reach.Reach.Dset program)
    (peer_set_verdict_extern program)

let () =
  let cases =
    List.concat_map
      (fun (program, prog, specs_used) ->
        List.map
          (fun spec_name ->
            Alcotest.test_case
              (Printf.sprintf "%s under %s" program spec_name)
              `Quick
              (test_case_for program prog spec_name))
          specs_used)
      corpus
  in
  let parity_cases =
    List.concat_map
      (fun (program, prog, specs_used) ->
        List.map
          (fun spec_name ->
            Alcotest.test_case
              (Printf.sprintf "%s under %s" program spec_name)
              `Quick
              (parity_case_for program prog spec_name))
          specs_used)
      corpus
  in
  let dispatch_cases =
    List.concat_map
      (fun (program, prog, specs_used) ->
        List.map
          (fun spec_name ->
            Alcotest.test_case
              (Printf.sprintf "%s under %s" program spec_name)
              `Quick
              (dispatch_case_for program prog spec_name))
          specs_used)
      corpus
  in
  Alcotest.run "golden"
    [
      ("event-sequence fingerprints", cases);
      ("reach-backend verdict parity", parity_cases);
      ("dispatch-shape verdict parity", dispatch_cases);
    ]
