lib/support/deque.ml: Array
