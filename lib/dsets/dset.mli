(** Disjoint-set forest over dense integer elements.

    The classic union-find structure [CLRS Ch. 21] with union by rank and
    path compression, giving amortized O(α(n)) per operation — the data
    structure underlying the SP-bags, SP+ and Peer-Set "bags". Elements are
    nonnegative integers allocated densely by the caller (frame ids). *)

type t

(** [create ()] is an empty forest. *)
val create : unit -> t

(** [add t x] makes [x] a fresh singleton set. [x] must not already be
    present; elements may be added in any order but are stored densely, so
    keep ids small. @raise Invalid_argument if [x] is negative or present. *)
val add : t -> int -> unit

(** [mem t x] is true iff [x] has been added. *)
val mem : t -> int -> bool

(** [find t x] is the canonical representative of [x]'s set, with path
    compression. @raise Invalid_argument if [x] was never added. *)
val find : t -> int -> int

(** [union t a b] merges the sets of [a] and [b] (by rank) and returns the
    representative of the merged set. *)
val union : t -> int -> int -> int

(** [same_set t a b] is true iff [a] and [b] are in one set. *)
val same_set : t -> int -> int -> bool

(** [cardinal t] is the number of elements added so far. *)
val cardinal : t -> int

(** [clear t] forgets every element, returning [t] to the state of
    {!create} while keeping the backing arrays allocated — the arena-reuse
    primitive for running many detector passes on one forest. *)
val clear : t -> unit
