(* The observability layer must never change what it observes: counters
   merged from a sharded sweep are byte-identical to the serial sweep's
   for every job count (racy, crashing and budget-limited programs
   included), enabling obs does not change verdicts, engine reuse via
   [Engine.reset] yields identical per-run deltas, and the counter
   arithmetic (snapshot/since/diff/add) is conservative. *)

open Rader_runtime
open Rader_core
module Obs = Rader_obs.Obs

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- workloads (mirror test_parallel_sweep's) ------------------------- *)

let planted_reduce_race ctx =
  let shared = Cell.make_in ctx ~label:"witness" 0 in
  let monoid =
    {
      Reducer.name = "touchy";
      identity = (fun c -> Cell.make_in c 0);
      reduce =
        (fun c l r ->
          Cell.write c shared 1;
          Cell.write c l (Cell.read c l + Cell.read c r);
          l);
    }
  in
  let red = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  let reader = Cilk.spawn ctx (fun ctx -> Cell.read ctx shared) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:0 ~hi:6 (fun ctx _ ->
          Reducer.update ctx red (fun c v ->
              Cell.write c v (Cell.read c v + 1);
              v)));
  Cilk.sync ctx;
  ignore (Cilk.get ctx reader)

let crashy_reduce ctx =
  let monoid =
    {
      Reducer.name = "sum";
      identity = (fun c -> Cell.make_in c 0);
      reduce = (fun _ _ _ -> failwith "injected reduce crash");
    }
  in
  let sum = Reducer.create ctx monoid ~init:(Cell.make_in ctx 0) in
  let watcher = Cilk.spawn ctx (fun _ -> ()) in
  Cilk.call ctx (fun ctx ->
      Cilk.parallel_for ctx ~lo:1 ~hi:10 (fun ctx i ->
          Reducer.update ctx sum (fun c v ->
              Cell.write c v (Cell.read c v + i);
              v)));
  Cilk.sync ctx;
  ignore (Cilk.get ctx watcher);
  ignore (Reducer.get_value ctx sum)

let clean ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:0 ~hi:8 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  ignore (Rmonoid.int_cell_value ctx r)

(* --- merged counters: parallel = serial, byte for byte ---------------- *)

let obs_of res =
  match res.Coverage.obs with
  | Some o -> o
  | None -> Alcotest.fail "with_obs:true returned no obs summary"

let counters_conserved ?max_specs ?max_events what program =
  let serial =
    Coverage.exhaustive_check ?max_specs ?max_events ~jobs:1 ~with_obs:true
      program
  in
  let so = obs_of serial in
  checkb (what ^ ": serial counters nonzero") false (Obs.is_zero so.Coverage.obs_counters);
  List.iter
    (fun jobs ->
      let par =
        Coverage.exhaustive_check ?max_specs ?max_events ~jobs ~with_obs:true
          program
      in
      let po = obs_of par in
      checkb
        (Printf.sprintf "%s: merged counters jobs=%d = serial" what jobs)
        true
        (Obs.to_assoc po.Coverage.obs_counters = Obs.to_assoc so.Coverage.obs_counters);
      (* one span per replay that ran, in spec order, regardless of sharding *)
      check
        (Printf.sprintf "%s: one span per replay, jobs=%d" what jobs)
        par.Coverage.n_run
        (List.length po.Coverage.obs_spans);
      checkb
        (Printf.sprintf "%s: span spec order fixed, jobs=%d" what jobs)
        true
        (List.map (fun s -> s.Coverage.span_spec) po.Coverage.obs_spans
        = List.map (fun s -> s.Coverage.span_spec) so.Coverage.obs_spans))
    [ 2; 4; 0 ];
  serial

let test_conservation_racy () =
  let res = counters_conserved "planted race" planted_reduce_race in
  let o = obs_of res in
  (* every replay plus the profiling run flushed exactly once *)
  check "engine runs = replays + profile" (res.Coverage.n_run + 1)
    o.Coverage.obs_counters.Obs.engine_runs

let test_conservation_crashing () =
  let res = counters_conserved "crashing reduce" crashy_reduce in
  let o = obs_of res in
  checkb "sweep explicitly partial" false res.Coverage.complete;
  (* contained unwinds flush too: still exactly one flush per attempt *)
  check "engine runs = replays + profile" (res.Coverage.n_run + 1)
    o.Coverage.obs_counters.Obs.engine_runs

let test_conservation_budgeted () =
  (* per-run event budgets abort replays deterministically, so the merged
     counters still agree across job counts *)
  ignore (counters_conserved ~max_events:40 "event budget" planted_reduce_race);
  ignore (counters_conserved ~max_specs:5 "spec budget" planted_reduce_race)

let test_phases_reported () =
  let res = Coverage.exhaustive_check ~jobs:1 ~with_obs:true clean in
  let o = obs_of res in
  Alcotest.(check (list string))
    "phase names" [ "profile"; "replay"; "merge" ]
    (List.map fst o.Coverage.obs_phases);
  checkb "phase times nonnegative" true
    (List.for_all (fun (_, s) -> s >= 0.0) o.Coverage.obs_phases)

(* --- counters under forced domains ------------------------------------ *)

(* The RADER_FORCE_DOMAINS hatch makes the default-jobs sweep spawn
   domains even on a single-core runner; the merged counters must still
   be byte-identical to the serial reference (per-domain DLS deltas
   folded in spec order). *)
let test_conservation_forced_domains () =
  let prior = Sys.getenv_opt "RADER_FORCE_DOMAINS" in
  let restore () =
    Unix.putenv "RADER_FORCE_DOMAINS" (Option.value prior ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "RADER_FORCE_DOMAINS" "2";
      let serial =
        Coverage.exhaustive_check ~jobs:1 ~with_obs:true planted_reduce_race
      in
      let forced =
        Coverage.exhaustive_check ~jobs:0 ~with_obs:true planted_reduce_race
      in
      checkb "forced-domain merged counters = serial" true
        (Obs.to_assoc (obs_of forced).Coverage.obs_counters
        = Obs.to_assoc (obs_of serial).Coverage.obs_counters))

(* --- enabling obs does not change verdicts ---------------------------- *)

let test_obs_does_not_change_verdicts () =
  let fp res =
    ( res.Coverage.racy_locs,
      List.map Report.to_string res.Coverage.reports,
      List.map fst res.Coverage.incomplete,
      res.Coverage.complete )
  in
  List.iter
    (fun (what, program) ->
      let plain = Coverage.exhaustive_check ~jobs:1 program in
      checkb (what ^ ": no obs unless asked") true (plain.Coverage.obs = None);
      let obs = Coverage.exhaustive_check ~jobs:1 ~with_obs:true program in
      checkb (what ^ ": verdicts unchanged under obs") true (fp plain = fp obs))
    [ ("racy", planted_reduce_race); ("crashy", crashy_reduce); ("clean", clean) ]

(* --- off means off ----------------------------------------------------- *)

let test_disabled_counts_nothing () =
  checkb "obs off by default" false (Obs.enabled ());
  let snap = Obs.snapshot () in
  let eng = Engine.create () in
  let det = Sp_plus.attach eng in
  ignore (Engine.run_result eng planted_reduce_race);
  ignore (Sp_plus.races det);
  checkb "nothing counted while disabled" true (Obs.is_zero (Obs.since snap))

let test_with_enabled_restores_flag () =
  checkb "off before" false (Obs.enabled ());
  let (), delta = Obs.with_enabled (fun () ->
      checkb "on inside" true (Obs.enabled ());
      let eng = Engine.create () in
      ignore (Engine.run_result eng clean))
  in
  checkb "off after" false (Obs.enabled ());
  checkb "delta saw the run" false (Obs.is_zero delta);
  check "one engine run" 1 delta.Obs.engine_runs;
  (* exceptions restore the flag too *)
  (match Obs.with_enabled (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the exception to escape"
  | exception Failure _ -> ());
  checkb "off after exception" false (Obs.enabled ())

(* --- Engine.reset: recycled runs count exactly like fresh ones --------- *)

let test_reset_same_delta () =
  let spec = Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 2; 4 ] in
  let delta_fresh program =
    snd
      (Obs.with_enabled (fun () ->
           let eng = Engine.create ~spec () in
           let det = Sp_plus.attach eng in
           ignore (Engine.run_result eng program);
           ignore (Sp_plus.races det)))
  in
  let eng = Engine.create () in
  let det = Sp_plus.attach eng in
  let delta_reused program =
    snd
      (Obs.with_enabled (fun () ->
           Engine.reset ~spec eng;
           Sp_plus.reset det;
           ignore (Engine.run_result eng program);
           ignore (Sp_plus.races det)))
  in
  List.iter
    (fun (what, program) ->
      checkb (what ^ ": reset delta = fresh delta") true
        (Obs.to_assoc (delta_fresh program) = Obs.to_assoc (delta_reused program)))
    [
      ("racy", planted_reduce_race);
      ("crashy", crashy_reduce);
      ("clean", clean);
      ("racy again", planted_reduce_race);
    ]

(* --- counter arithmetic ------------------------------------------------ *)

let test_arithmetic () =
  let z = Obs.zero () in
  checkb "zero is zero" true (Obs.is_zero z);
  let _, a = Obs.with_enabled (fun () ->
      let eng = Engine.create () in
      ignore (Engine.run_result eng clean))
  in
  let _, b = Obs.with_enabled (fun () ->
      let eng = Engine.create ~spec:(Steal_spec.all ()) () in
      ignore (Engine.run_result eng planted_reduce_race))
  in
  let sum = Obs.copy a in
  Obs.add ~into:sum b;
  checkb "add then diff round-trips" true (Obs.equal (Obs.diff sum b) a);
  checkb "diff self is zero" true (Obs.is_zero (Obs.diff a a));
  checkb "copy is equal" true (Obs.equal (Obs.copy a) a);
  checkb "distinct runs differ" false (Obs.equal a b);
  (* to_assoc is the schema: one entry per field, stable order *)
  let keys = List.map fst (Obs.to_assoc a) in
  checkb "keys stable across records" true (keys = List.map fst (Obs.to_assoc b));
  checkb "keys unique" true
    (List.length keys = List.length (List.sort_uniq compare keys));
  check "assoc sums field-wise"
    (List.fold_left (fun t (_, v) -> t + v) 0 (Obs.to_assoc a)
    + List.fold_left (fun t (_, v) -> t + v) 0 (Obs.to_assoc b))
    (List.fold_left (fun t (_, v) -> t + v) 0 (Obs.to_assoc sum))

let test_json_rendering () =
  let _, c = Obs.with_enabled (fun () ->
      let eng = Engine.create () in
      ignore (Engine.run_result eng clean))
  in
  let s = Obs.to_json_string c in
  List.iter
    (fun (k, v) ->
      let needle = Printf.sprintf "\"%s\":%d" k v in
      let found =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      checkb (Printf.sprintf "json contains %s" needle) true found)
    (Obs.to_assoc c)

let () =
  Alcotest.run "obs"
    [
      ( "conservation",
        [
          Alcotest.test_case "racy program" `Quick test_conservation_racy;
          Alcotest.test_case "crashing program" `Quick test_conservation_crashing;
          Alcotest.test_case "budgeted sweeps" `Quick test_conservation_budgeted;
          Alcotest.test_case "phases reported" `Quick test_phases_reported;
          Alcotest.test_case "forced domains" `Quick
            test_conservation_forced_domains;
          Alcotest.test_case "verdicts unchanged" `Quick
            test_obs_does_not_change_verdicts;
        ] );
      ( "gating",
        [
          Alcotest.test_case "disabled counts nothing" `Quick
            test_disabled_counts_nothing;
          Alcotest.test_case "with_enabled restores" `Quick
            test_with_enabled_restores_flag;
        ] );
      ( "engine reuse",
        [ Alcotest.test_case "reset delta = fresh" `Quick test_reset_same_delta ] );
      ( "arithmetic",
        [
          Alcotest.test_case "add/diff/zero/equal" `Quick test_arithmetic;
          Alcotest.test_case "json rendering" `Quick test_json_rendering;
        ] );
    ]
