(** Timing and summary statistics for the benchmark harness. *)

(** [time_it f] runs [f ()] and returns [(result, elapsed_seconds)] using the
    monotonic clock. *)
val time_it : (unit -> 'a) -> 'a * float

(** [best_of n f] runs [f] [n] times and returns the minimum elapsed seconds
    together with the last result. Minimum-of-n is the standard way to strip
    scheduling noise from serial overhead measurements. *)
val best_of : int -> (unit -> 'a) -> 'a * float

(** [mean xs] is the arithmetic mean. @raise Invalid_argument on []. *)
val mean : float list -> float

(** [geomean xs] is the geometric mean; every element must be positive.
    The paper reports geometric-mean multiplicative overheads. *)
val geomean : float list -> float

(** [median xs] is the median (average of middle two for even lengths). *)
val median : float list -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float list -> float

(** [min_max xs] is [(min, max)]. @raise Invalid_argument on []. *)
val min_max : float list -> float * float
