(** ASCII table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables in the style of the paper's
    Figures 7 and 8 so that `bench/main.exe` output can be compared to the
    paper side by side. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row. Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)
val add_row : t -> string list -> unit

(** [add_rule t] appends a horizontal separator line. *)
val add_rule : t -> unit

(** [render t] is the finished table as a string (trailing newline). *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit

(** [cell_f v] formats a float with 2 decimals, the paper's table style. *)
val cell_f : float -> string
