type origin = {
  o_frame : int;
  o_kind : Tool.frame_kind;
  o_depth : int;
  o_strand : int;
  o_spec : string;
}

type law = Associativity | Left_identity | Right_identity

type contract_violation = {
  cv_monoid : string;
  cv_law : law;
  cv_region : int;
  cv_origin : origin;
  cv_detail : string;
}

type budget_kind = Max_specs of int | Max_events of int | Deadline of float

type failure =
  | User_program_exn of { exn : string; backtrace : string; origin : origin }
  | Monoid_contract of contract_violation
  | Invalid_steal_spec of { spec : string; reason : string }
  | Budget_exceeded of budget_kind
  | Engine_invariant of { what : string; origin : origin }

exception Stop of budget_kind

let law_name = function
  | Associativity -> "associativity"
  | Left_identity -> "left identity"
  | Right_identity -> "right identity"

let class_name = function
  | User_program_exn _ -> "user-program-exn"
  | Monoid_contract _ -> "monoid-contract"
  | Invalid_steal_spec _ -> "invalid-steal-spec"
  | Budget_exceeded _ -> "budget-exceeded"
  | Engine_invariant _ -> "engine-invariant"

let origin_to_string o =
  Printf.sprintf "frame %d (%s, depth %d), strand %d, spec %s" o.o_frame
    (Tool.frame_kind_name o.o_kind)
    o.o_depth o.o_strand o.o_spec

let budget_to_string = function
  | Max_specs n -> Printf.sprintf "spec budget (max %d specifications)" n
  | Max_events n -> Printf.sprintf "event budget (max %d events)" n
  | Deadline t -> Printf.sprintf "deadline (%.3f, unix time)" t

let to_string = function
  | User_program_exn { exn; backtrace; origin } ->
      Printf.sprintf "program under test raised %s at %s%s" exn
        (origin_to_string origin)
        (if backtrace = "" then ""
         else "\n" ^ String.trim backtrace)
  | Monoid_contract cv ->
      Printf.sprintf
        "monoid %S violates %s (region %d, at %s): %s" cv.cv_monoid
        (law_name cv.cv_law) cv.cv_region
        (origin_to_string cv.cv_origin)
        cv.cv_detail
  | Invalid_steal_spec { spec; reason } ->
      Printf.sprintf "steal specification %s cannot fire on this program: %s"
        spec reason
  | Budget_exceeded kind -> "exceeded " ^ budget_to_string kind
  | Engine_invariant { what; origin } ->
      Printf.sprintf "Cilk discipline violation at %s: %s"
        (origin_to_string origin) what
