lib/dag/sp_tree.ml: Array Dag Hashtbl List Printf Rader_support
