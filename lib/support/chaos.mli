(** Chaos harness: systematic perturbation of the detection pipeline.

    Rader's survival contract — the detector outlives the program under
    test and reports what it proved up to the failure point — is only
    worth anything if it holds under every failure mode a buggy program
    can throw at it. This harness takes an arbitrary benchmark and wraps
    it in each perturbation of {!all}: an exception thrown mid-strand, a
    raising [Reduce] or [Create-Identity] callback, a non-associative
    monoid, an identity that mutates shared state, a steal specification
    that cannot fire, and event/deadline budget blowouts. For every
    perturbation it asserts, via {!ok}, that

    - no OCaml exception escapes the contained entry points
      ([Engine.run_result], [Coverage.exhaustive_check]), and
    - the run yields the structured diagnostic class (or race evidence)
      the perturbation calls for.

    Used by [test/test_chaos.ml] across the benchsuite and exposed on the
    CLI as [rader chaos PROGRAM]. *)

(** A virtualized clock for deadline tests. Pass [Vclock.clock vc] as
    [Engine.create ?clock] and drive quota cancellation by {!Vclock.advance}
    instead of wall-clock sleeps — stalls become deterministic and instant.
    Used by the {!Stall} perturbation and the serve daemon's stall
    injection. *)
module Vclock : sig
  type t

  val make : start:float -> t
  val now : t -> float
  val advance : t -> float -> unit

  (** [clock t] is the [unit -> float] timebase to hand the engine. *)
  val clock : t -> unit -> float
end

type perturbation =
  | Raise_in_strand of int
      (** raise out of instrumented code after the n-th event; expects
          containment as [User_program_exn] *)
  | Raise_in_reduce
      (** wrap the program with a reducer whose [Reduce] raises, under a
          schedule that forces merges; expects [User_program_exn] from a
          reduce frame *)
  | Raise_in_identity
      (** reducer whose [Create-Identity] raises on lazy view creation in
          a stolen region; expects [User_program_exn] from an identity
          frame *)
  | Non_associative_monoid
      (** law-abiding identity but non-associative reduce, with the
          sampled self-check on; expects [Monoid_contract] *)
  | Mutating_identity
      (** identity writes a shared cell read in parallel; expects the
          determinacy race to be {e reported}, not crash anything *)
  | Invalid_spec
      (** steal spec naming a continuation index the program cannot
          reach; expects [Invalid_steal_spec] *)
  | Event_budget of int
      (** engine event budget far below the program's needs; expects
          [Budget_exceeded (Max_events _)] *)
  | Stall of int
      (** the worker "sleeps" past its deadline: a {!Vclock} jumps far
          beyond the engine deadline at the n-th event; expects
          [Budget_exceeded (Deadline _)] without any wall-clock delay *)
  | Sweep_deadline
      (** coverage sweep with an already-expired deadline; expects a
          partial result whose [incomplete] entries carry
          [Budget_exceeded (Deadline _)] *)

(** The default battery, one of each (with default parameters). *)
val all : perturbation list

val name : perturbation -> string

type outcome = {
  perturbation : perturbation;
  diag : Rader_core.Diag.failure option;
      (** the structured diagnostic the pipeline yielded, if any *)
  races : Rader_core.Report.t list;
      (** races reported over the completed prefix *)
  escaped : string option;
      (** an exception that escaped a contained entry point — always a
          pipeline bug *)
}

(** A [law_check] for int views: structural equality, identity copy,
    4 sampled merges. *)
val int_check : int Rader_runtime.Reducer.law_check

(** Two-sided identity 0 but a non-associative reduce — trips the
    sampled associativity self-check while passing the identity laws. *)
val non_associative_monoid : int Rader_runtime.Reducer.monoid

(** [ok o] holds iff nothing escaped and the outcome carries the evidence
    its perturbation expects (see the constructor docs above). *)
val ok : outcome -> bool

val outcome_to_string : outcome -> string

(** [run_one p program] applies perturbation [p] to [program] and runs the
    pipeline under containment. Never raises. *)
val run_one : perturbation -> (Rader_runtime.Engine.ctx -> int) -> outcome

(** [run_all program] is [run_one] over {!all}. *)
val run_all : (Rader_runtime.Engine.ctx -> int) -> outcome list
