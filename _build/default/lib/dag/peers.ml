module Bitset = Rader_support.Bitset

type t = { n : int; peer : Bitset.t array }

let compute dag =
  let reach = Reach.compute dag in
  let n = Dag.n_strands dag in
  let peer =
    Array.init n (fun u ->
        let p = Bitset.create n in
        for v = 0 to n - 1 do
          if Reach.parallel reach u v then Bitset.add p v
        done;
        p)
  in
  { n; peer }

let check t u = if u < 0 || u >= t.n then invalid_arg "Peers: unknown strand"

let peers t u =
  check t u;
  t.peer.(u)

let equal_peers t u v =
  check t u;
  check t v;
  Bitset.equal t.peer.(u) t.peer.(v)

let n_peers t u =
  check t u;
  Bitset.cardinal t.peer.(u)
