let int_add = Monoid.make ~name:"int_add" ~identity:(fun () -> 0) ~combine:( + )
let int_mul = Monoid.make ~name:"int_mul" ~identity:(fun () -> 1) ~combine:( * )
let int_min = Monoid.make ~name:"int_min" ~identity:(fun () -> max_int) ~combine:min
let int_max = Monoid.make ~name:"int_max" ~identity:(fun () -> min_int) ~combine:max
let float_add = Monoid.make ~name:"float_add" ~identity:(fun () -> 0.0) ~combine:( +. )

let int_land = Monoid.make ~name:"int_land" ~identity:(fun () -> -1) ~combine:( land )
let int_lor = Monoid.make ~name:"int_lor" ~identity:(fun () -> 0) ~combine:( lor )
let int_lxor = Monoid.make ~name:"int_lxor" ~identity:(fun () -> 0) ~combine:( lxor )
let bool_and = Monoid.make ~name:"bool_and" ~identity:(fun () -> true) ~combine:( && )
let bool_or = Monoid.make ~name:"bool_or" ~identity:(fun () -> false) ~combine:( || )

let pair a b =
  Monoid.make
    ~name:(Printf.sprintf "pair(%s,%s)" a.Monoid.name b.Monoid.name)
    ~identity:(fun () -> (a.Monoid.identity (), b.Monoid.identity ()))
    ~combine:(fun (xa, xb) (ya, yb) -> (a.Monoid.combine xa ya, b.Monoid.combine xb yb))

let arg_max () =
  Monoid.make ~name:"arg_max"
    ~identity:(fun () -> None)
    ~combine:(fun l r ->
      match (l, r) with
      | None, x | x, None -> x
      | Some (kl, _), Some (kr, _) ->
          (* ties keep the serially-earlier element for determinism *)
          if kr > kl then r else l)

(* Counters: sorted association lists merged pairwise, so ⊗ is O(n + m)
   and canonical forms compare with (=). *)
let rec merge_counts l r =
  match (l, r) with
  | [], x | x, [] -> x
  | (ka, ca) :: tla, (kb, cb) :: tlb ->
      if ka < kb then (ka, ca) :: merge_counts tla r
      else if kb < ka then (kb, cb) :: merge_counts l tlb
      else (ka, ca + cb) :: merge_counts tla tlb

let counter () =
  Monoid.make ~name:"counter" ~identity:(fun () -> []) ~combine:merge_counts

let counter_entries c = c

let counter_of_list keys =
  List.fold_left (fun acc k -> merge_counts acc [ (k, 1) ]) [] keys

let list_append () =
  Monoid.make ~name:"list_append" ~identity:(fun () -> []) ~combine:( @ )

let string_concat =
  Monoid.make ~name:"string_concat" ~identity:(fun () -> "") ~combine:( ^ )

(* Bags: a list of element-chunks. Union is O(1) chunk concatenation via a
   binary-tree representation to avoid O(n) appends. *)
type 'a bag = Empty | Leaf of 'a | Node of 'a bag * 'a bag * int

let bag_size = function Empty -> 0 | Leaf _ -> 1 | Node (_, _, n) -> n

let bag_union a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | a, b -> Node (a, b, bag_size a + bag_size b)

let bag () = Monoid.make ~name:"bag" ~identity:(fun () -> Empty) ~combine:bag_union
let bag_singleton x = Leaf x

let bag_of_list xs =
  List.fold_left (fun acc x -> bag_union acc (Leaf x)) Empty xs

let bag_elements b =
  let rec go b acc =
    match b with
    | Empty -> acc
    | Leaf x -> x :: acc
    | Node (l, r, _) -> go l (go r acc)
  in
  go b []

(* Hypervector: a persistent append/concat sequence; same tree trick with
   left-to-right element order preserved. *)
type 'a hypervector = 'a bag

let hypervector () =
  Monoid.make ~name:"hypervector" ~identity:(fun () -> Empty) ~combine:bag_union

let hv_push hv x = bag_union hv (Leaf x)
let hv_to_list = bag_elements
let hv_length = bag_size
