module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Peer_hot = Rader_runtime.Peer_hot
module Reach = Rader_reach.Reach

(* Bags, spawn counts, the reader shadows and the Lemma-3 comparison live
   in [Rader_runtime.Peer_hot] (single-match dispatch from the [Tool]
   variant); this module is the cold-path wrapper building [Report]
   records in the race callback. *)

type t = {
  eng : Engine.t;
  hot : Peer_hot.t;
  collector : Report.collector;
}

let create ?(reach = Reach.Dset) eng =
  let hot = Peer_hot.create ~backend:reach () in
  let d = { eng; hot; collector = Report.collector () } in
  Peer_hot.set_on_race hot (fun ~reducer ~first_frame ~second_frame ->
      Report.report d.collector
        {
          Report.kind = Report.View_read_race;
          subject = reducer;
          subject_label = Printf.sprintf "reducer #%d" reducer;
          first_frame;
          first_access = Report.Reducer_read;
          second_frame;
          second_access = Report.Reducer_read;
          second_strand = Engine.current_strand d.eng;
          second_view_aware = false;
          detail = "reducer-reads have different peer sets";
        });
  d

let backend d = Peer_hot.backend d.hot

let tool d = Tool.peer_set d.hot

let attach ?reach eng =
  let d = create ?reach eng in
  Engine.set_tool eng (tool d);
  d

let reset d =
  Peer_hot.reset d.hot;
  Report.clear d.collector;
  Engine.set_tool d.eng (tool d)

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
