lib/monoid/monoid.ml: List
