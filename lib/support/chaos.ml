module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Steal_spec = Rader_runtime.Steal_spec
module Reducer = Rader_runtime.Reducer
module Cilk = Rader_runtime.Cilk
module Cell = Rader_runtime.Cell
module Diag = Rader_core.Diag
module Report = Rader_core.Report
module Sp_plus = Rader_core.Sp_plus
module Coverage = Rader_core.Coverage

(* A virtualized clock: engine deadlines read it through [Engine.create
   ?clock], so a "worker stalls past its deadline" scenario is a pure
   state change (advance the clock) instead of a wall-clock sleep — the
   Stall perturbation and the serve daemon's stall tests stay
   deterministic and instant. *)
module Vclock = struct
  type t = { mutable now : float }

  let make ~start = { now = start }
  let now t = t.now
  let advance t dt = t.now <- t.now +. dt
  let clock t () = t.now
end

type perturbation =
  | Raise_in_strand of int
  | Raise_in_reduce
  | Raise_in_identity
  | Non_associative_monoid
  | Mutating_identity
  | Invalid_spec
  | Event_budget of int
  | Stall of int
  | Sweep_deadline

let all =
  [
    Raise_in_strand 25;
    Raise_in_reduce;
    Raise_in_identity;
    Non_associative_monoid;
    Mutating_identity;
    Invalid_spec;
    (* low enough that even a tiny program blows it, high enough that the
       engine is mid-run with live frames when it does *)
    Event_budget 10;
    (* stall early enough that every battery program still has events (and
       hence deadline checks) left after the virtual clock jumps *)
    Stall 8;
    Sweep_deadline;
  ]

let name = function
  | Raise_in_strand n -> Printf.sprintf "raise-in-strand(%d)" n
  | Raise_in_reduce -> "raise-in-reduce"
  | Raise_in_identity -> "raise-in-identity"
  | Non_associative_monoid -> "non-associative-monoid"
  | Mutating_identity -> "mutating-identity"
  | Invalid_spec -> "invalid-spec"
  | Event_budget n -> Printf.sprintf "event-budget(%d)" n
  | Stall n -> Printf.sprintf "stall(%d)" n
  | Sweep_deadline -> "sweep-deadline"

type outcome = {
  perturbation : perturbation;
  diag : Diag.failure option;
  races : Report.t list;
  escaped : string option;
}

exception Chaos_injected

(* Run [program] under SP+ with an optional extra (chaos) tool, through
   the contained entry point. The detector is first in the composition so
   it records each event before the chaos tool gets a chance to raise. *)
let contained_run ?extra_tool ?max_events ?deadline ?clock ~spec program =
  let eng = Engine.create ~spec ?max_events ?deadline ?clock () in
  let d = Sp_plus.create eng in
  let tool =
    match extra_tool with
    | None -> Sp_plus.tool d
    | Some t -> Tool.both (Sp_plus.tool d) t
  in
  Engine.set_tool eng tool;
  let verdict = Engine.run_result eng program in
  ((match verdict with Ok _ -> None | Error f -> Some f), Sp_plus.races d)

(* A tool that raises once the event counter reaches [n] — the moral
   equivalent of the program under test dying at its n-th strand/access. *)
let raising_tool n =
  let count = ref 0 in
  let tick () =
    incr count;
    if !count >= n then raise Chaos_injected
  in
  Tool.extern
    {
      Tool.hooks_null with
      Tool.on_frame_enter =
        (fun ~frame:_ ~parent:_ ~spawned:_ ~kind:_ -> tick ());
      on_read = (fun ~frame:_ ~loc:_ ~view_aware:_ -> tick ());
      on_write = (fun ~frame:_ ~loc:_ ~view_aware:_ -> tick ());
    }

(* Prefix [program] with two spawned updates of a reducer over [monoid]
   under the all-steals schedule, so the second update runs in a freshly
   stolen region (forcing Create-Identity) and the sync merges two
   materialized views (forcing Reduce). *)
let with_reducer_prologue ?self_check ~monoid ~init program ctx =
  let r = Reducer.create ctx ?self_check monoid ~init in
  ignore (Cilk.spawn ctx (fun ctx -> Reducer.update ctx r (fun _ v -> v + 3)));
  ignore (Cilk.spawn ctx (fun ctx -> Reducer.update ctx r (fun _ v -> v + 5)));
  Cilk.sync ctx;
  program ctx

let int_check = { Reducer.lc_equal = ( = ); lc_copy = Fun.id; lc_samples = 4 }

(* Two-sided identity 0, but non-associative: a ⊗ b = a + b - ab(a-1)(b-1). *)
let non_associative_monoid =
  {
    Reducer.name = "chaos-non-associative";
    identity = (fun _ -> 0);
    reduce = (fun _ a b -> a + b - (a * b * (a - 1) * (b - 1)));
  }

let run_perturbed p program =
  match p with
  | Raise_in_strand n ->
      let diag, races =
        contained_run ~extra_tool:(raising_tool n) ~spec:(Steal_spec.all ())
          program
      in
      (diag, races)
  | Raise_in_reduce ->
      let monoid =
        {
          Reducer.name = "chaos-raising-reduce";
          identity = (fun _ -> 0);
          reduce = (fun _ _ _ -> raise Chaos_injected);
        }
      in
      contained_run ~spec:(Steal_spec.all ())
        (with_reducer_prologue ~monoid ~init:1 program)
  | Raise_in_identity ->
      let monoid =
        {
          Reducer.name = "chaos-raising-identity";
          identity = (fun _ -> raise Chaos_injected);
          reduce = (fun _ a b -> a + b);
        }
      in
      contained_run ~spec:(Steal_spec.all ())
        (with_reducer_prologue ~monoid ~init:1 program)
  | Non_associative_monoid ->
      contained_run ~spec:(Steal_spec.all ())
        (with_reducer_prologue ~self_check:int_check
           ~monoid:non_associative_monoid ~init:2 program)
  | Mutating_identity ->
      contained_run ~spec:(Steal_spec.all ()) (fun ctx ->
          let shared = Cell.make_in ctx ~label:"chaos-shared" 0 in
          let monoid =
            {
              Reducer.name = "chaos-mutating-identity";
              identity =
                (fun c ->
                  Cell.write c shared 1;
                  0);
              reduce = (fun _ a b -> a + b);
            }
          in
          let r = Reducer.create ctx monoid ~init:0 in
          let watcher = Cilk.spawn ctx (fun ctx -> Cell.read ctx shared) in
          ignore
            (Cilk.spawn ctx (fun ctx ->
                 Reducer.update ctx r (fun _ v -> v + 1)));
          Cilk.sync ctx;
          ignore (Cilk.get ctx watcher);
          program ctx)
  | Invalid_spec ->
      contained_run
        ~spec:(Steal_spec.at_local_indices [ 1_000_003 ])
        program
  | Event_budget n -> contained_run ~max_events:n ~spec:Steal_spec.none program
  | Stall n ->
      (* the worker "sleeps" past its deadline: a virtual clock jumps a
         minute forward at the n-th event, and the engine's quota check
         cancels the run at its next deadline poll — no wall-clock sleep,
         no flakiness *)
      let vc = Vclock.make ~start:1.0e9 in
      let count = ref 0 in
      let stall_tool =
        let tick () =
          incr count;
          if !count = n then Vclock.advance vc 60.0
        in
        Tool.extern
          {
            Tool.hooks_null with
            Tool.on_frame_enter =
              (fun ~frame:_ ~parent:_ ~spawned:_ ~kind:_ -> tick ());
            on_read = (fun ~frame:_ ~loc:_ ~view_aware:_ -> tick ());
            on_write = (fun ~frame:_ ~loc:_ ~view_aware:_ -> tick ());
          }
      in
      contained_run ~extra_tool:stall_tool ~deadline:(1.0e9 +. 30.0)
        ~clock:(Vclock.clock vc) ~spec:Steal_spec.none program
  | Sweep_deadline ->
      (* a deadline already in the past: the sweep must stop before its
         first spec and charge every spec to the deadline *)
      let res = Coverage.exhaustive_check ~deadline:(-1.0) program in
      let diag =
        List.find_map
          (fun (_, f) ->
            match f with Diag.Budget_exceeded _ -> Some f | _ -> None)
          res.Coverage.incomplete
      in
      (diag, res.Coverage.reports)

let run_one p program =
  match run_perturbed p program with
  | diag, races -> { perturbation = p; diag; races; escaped = None }
  | exception e ->
      {
        perturbation = p;
        diag = None;
        races = [];
        escaped = Some (Printexc.to_string e);
      }

let run_all program = List.map (fun p -> run_one p program) all

let ok o =
  o.escaped = None
  &&
  match (o.perturbation, o.diag) with
  | Raise_in_strand _, Some (Diag.User_program_exn _) -> true
  | Raise_in_reduce, Some (Diag.User_program_exn { origin; _ }) ->
      origin.Diag.o_kind = Tool.Reduce_fn
  | Raise_in_identity, Some (Diag.User_program_exn { origin; _ }) ->
      origin.Diag.o_kind = Tool.Identity_fn
  | Non_associative_monoid, Some (Diag.Monoid_contract _) -> true
  | Mutating_identity, None -> o.races <> []
  | Invalid_spec, Some (Diag.Invalid_steal_spec _) -> true
  | Event_budget _, Some (Diag.Budget_exceeded (Diag.Max_events _)) -> true
  | Stall _, Some (Diag.Budget_exceeded (Diag.Deadline _)) -> true
  | Sweep_deadline, Some (Diag.Budget_exceeded (Diag.Deadline _)) -> true
  | _ -> false

let outcome_to_string o =
  let verdict = if ok o then "contained" else "NOT CONTAINED" in
  let detail =
    match (o.escaped, o.diag) with
    | Some e, _ -> "escaped exception: " ^ e
    | None, Some f -> Diag.to_string f
    | None, None ->
        if o.races = [] then "run completed with no diagnostic"
        else Printf.sprintf "%d race(s) reported" (List.length o.races)
  in
  Printf.sprintf "%-24s %-14s %s" (name o.perturbation) verdict detail
