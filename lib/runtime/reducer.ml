type 'v monoid = {
  name : string;
  identity : Engine.ctx -> 'v;
  reduce : Engine.ctx -> 'v -> 'v -> 'v;
}

type 'v law_check = {
  lc_equal : 'v -> 'v -> bool;
  lc_copy : 'v -> 'v;
  lc_samples : int;
}

(* Serial view storage: region ids are small dense ints (the engine hands
   them out from a counter), so a flat ['v option array] indexed by region
   replaces the seed's hashtable — a view lookup on the serial hot path is
   one bounds check and one array load of the stored option (no hashing,
   no allocation). [vcount] tracks the live views for [n_views]. *)
type 'v store = {
  mutable slots : 'v option array;
  mutable vcount : int;
}

let store_find s region =
  if region < Array.length s.slots then s.slots.(region) else None

let store_set s region v =
  if region >= Array.length s.slots then begin
    let cap = max (region + 1) (2 * Array.length s.slots) in
    let slots = Array.make cap None in
    Array.blit s.slots 0 slots 0 (Array.length s.slots);
    s.slots <- slots
  end;
  (match s.slots.(region) with
  | None -> s.vcount <- s.vcount + 1
  | Some _ -> ());
  s.slots.(region) <- Some v

let store_remove s region =
  if region < Array.length s.slots then
    match s.slots.(region) with
    | None -> ()
    | Some _ ->
        s.slots.(region) <- None;
        s.vcount <- s.vcount - 1

type 'v t = {
  rid : int;
  monoid : 'v monoid;
  views : 'v store; (* region id -> view *)
  creation_region : int;
}

(* Sampled monoid-contract self-check. The monoid operations are invoked
   directly (no view-aware aux frame) on [lc_copy]-copies, so the check
   neither perturbs the strand/dag structure the detectors analyze nor
   mutates live views; monoids whose operations touch instrumented memory
   should only enable it with a copy that allocates fresh cells.
   Violations are recorded on the engine — never raised — and surface
   through [Engine.run_result] as [Fault.Monoid_contract]. *)
let report_violation ctx monoid law detail =
  let eng = Engine.engine ctx in
  Engine.report_contract_violation eng
    {
      Fault.cv_monoid = monoid.name;
      cv_law = law;
      cv_region = Engine.current_region ctx;
      cv_origin = Engine.failure_origin eng;
      cv_detail = detail;
    }

let check_identity_laws ctx monoid lc v =
  let identity () = monoid.identity ctx in
  let reduce a b = monoid.reduce ctx a b in
  if not (lc.lc_equal (reduce (identity ()) (lc.lc_copy v)) (lc.lc_copy v)) then
    report_violation ctx monoid Fault.Left_identity
      "reduce(identity, v) differs from v on an observed view";
  if not (lc.lc_equal (reduce (lc.lc_copy v) (identity ())) (lc.lc_copy v)) then
    report_violation ctx monoid Fault.Right_identity
      "reduce(v, identity) differs from v on an observed view"

(* Associativity on the two observed views [a] (surviving) and [b]
   (dominated), with a ⊗ b itself as the third sample: compare
   ((a ⊗ b) ⊗ c) with (a ⊗ (b ⊗ c)) where c = a ⊗ b. *)
let check_associativity ctx monoid lc a b =
  let reduce x y = monoid.reduce ctx x y in
  let c () = reduce (lc.lc_copy a) (lc.lc_copy b) in
  let lhs = reduce (reduce (lc.lc_copy a) (lc.lc_copy b)) (c ()) in
  let rhs = reduce (lc.lc_copy a) (reduce (lc.lc_copy b) (c ())) in
  if not (lc.lc_equal lhs rhs) then
    report_violation ctx monoid Fault.Associativity
      "((a ⊗ b) ⊗ c) differs from (a ⊗ (b ⊗ c)) on observed views \
       (c = a ⊗ b)"

(* View storage dispatch. Serially each reducer owns its region->view
   table. Online the regions themselves own the view tables (they are
   created/merged/discarded by the work-stealing runtime, which also
   guarantees single-owner access), so reads and writes route through the
   engine's online hooks with an [Obj.t]-erased payload: every entry under
   this reducer's id is written and read back only by this function's own
   closures, at the one type ['v]. *)
let view_find ctx ~rid ~views region =
  if Engine.is_online ctx then
    match Engine.online_view_find ctx ~region ~reducer:rid with
    | None -> None
    | Some o -> Some (Obj.obj o)
  else store_find views region

let view_set ctx ~rid ~views region v =
  if Engine.is_online ctx then
    Engine.online_view_set ctx ~region ~reducer:rid (Obj.repr v)
  else store_set views region v

let create ctx ?self_check monoid ~init =
  let eng = Engine.engine ctx in
  let views = { slots = Array.make 8 None; vcount = 0 } in
  let samples_left =
    ref (match self_check with None -> 0 | Some lc -> max 0 lc.lc_samples)
  in
  (* The merge closure needs the reducer's id for aux-frame provenance, but
     the id is only assigned by [register_reducer] below; merges run only
     during the computation, long after the slot is filled. *)
  let rid_slot = ref (-1) in
  let merge mctx ~from_region ~into_region =
    match view_find mctx ~rid:!rid_slot ~views from_region with
    | None -> ()
    | Some v_from -> (
        (* Online the dying region's whole view table is discarded by the
           runtime after its merges, so only the serial table needs the
           explicit removal. *)
        if not (Engine.is_online mctx) then store_remove views from_region;
        match view_find mctx ~rid:!rid_slot ~views into_region with
        | None ->
            (* The surviving region never materialized a view: its lazy
               identity absorbs [v_from] without running user code. *)
            view_set mctx ~rid:!rid_slot ~views into_region v_from
        | Some v_into ->
            (match self_check with
            | Some lc when !samples_left > 0 ->
                decr samples_left;
                check_identity_laws mctx monoid lc v_from;
                check_associativity mctx monoid lc v_into v_from
            | _ -> ());
            let combined =
              Engine.run_aux_frame ~reducer:!rid_slot mctx Tool.Reduce_fn
                (fun c -> monoid.reduce c v_into v_from)
            in
            view_set mctx ~rid:!rid_slot ~views into_region combined)
  in
  let rid = Engine.register_reducer eng ~merge in
  rid_slot := rid;
  Engine.emit_reducer_read ctx rid;
  (match self_check with
  | Some lc when lc.lc_samples > 0 -> check_identity_laws ctx monoid lc init
  | _ -> ());
  let creation_region = Engine.current_region ctx in
  view_set ctx ~rid ~views creation_region init;
  { rid; monoid; views; creation_region }

(* The view of the current region, materializing an identity view on
   demand (Cilk creates views lazily at the first access after a steal). *)
let current_view ctx r =
  let region = Engine.current_region ctx in
  match view_find ctx ~rid:r.rid ~views:r.views region with
  | Some v -> v
  | None ->
      let v =
        Engine.run_aux_frame ~reducer:r.rid ctx Tool.Identity_fn (fun c ->
            r.monoid.identity c)
      in
      view_set ctx ~rid:r.rid ~views:r.views region v;
      v

let get_value ctx r =
  Engine.emit_reducer_read ctx r.rid;
  current_view ctx r

let set_value ctx r v =
  Engine.emit_reducer_read ctx r.rid;
  view_set ctx ~rid:r.rid ~views:r.views (Engine.current_region ctx) v

let update ctx r f =
  let v = current_view ctx r in
  let v' = Engine.run_aux_frame ~reducer:r.rid ctx Tool.Update_fn (fun c -> f c v) in
  view_set ctx ~rid:r.rid ~views:r.views (Engine.current_region ctx) v'

let id r = r.rid
let name r = r.monoid.name
let peek r = store_find r.views r.creation_region
let n_views r = r.views.vcount
