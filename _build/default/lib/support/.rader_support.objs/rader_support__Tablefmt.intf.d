lib/support/tablefmt.mli:
