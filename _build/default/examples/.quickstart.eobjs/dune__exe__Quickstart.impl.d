examples/quickstart.ml: Cilk Engine List Peer_set Printf Rader_core Rader_runtime Report Rmonoid Steal_spec
