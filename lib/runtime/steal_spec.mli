(** Steal specifications (paper §5, §8).

    The SP+ algorithm takes a {e steal specification} that removes the
    nondeterminism in the Cilk runtime's reducer management: it fixes which
    continuations are stolen (each steal starts a fresh view/region) and
    which [Reduce] operations execute when (the shape and timing of the
    reduce tree in every sync block). The engine executes the computation
    serially, consulting the specification at every spawn continuation.

    {2 Continuation identity}

    A continuation is the program point just after a [spawn]. Because
    view-aware code (update/reduce/identity bodies) is required to be serial
    (paper §5), the view-oblivious control flow — and hence the sequence of
    spawns — of an ostensibly deterministic program is identical in every
    execution, so continuations are identified stably by their global spawn
    ordinal together with structural coordinates. *)

type cont_info = {
  spawn_index : int;  (** global ordinal of the spawn, in serial order *)
  frame : int;  (** id of the function instantiation performing the spawn *)
  depth : int;  (** spawn depth of that frame (root = 0) *)
  local_index : int;
      (** 1-based index of this continuation within the frame's current sync
          block (resets at each sync) — the paper's "continuation in a sync
          block" coordinate *)
  sync_block : int;  (** 0-based index of the frame's current sync block *)
}

(** When the reduce operations of a sync block execute, expressed in
    "merge the two most recently opened regions" steps (see DESIGN.md: any
    binary reduce tree over the region sequence of a sync block can be
    realized this way by choosing when each merge runs). *)
type reduce_policy =
  | Reduce_at_sync
      (** no merges until the sync, then fold the open regions right-to-left:
          the right-leaning tree [r0 ⊗ (r1 ⊗ (... ⊗ rm))] *)
  | Reduce_eagerly
      (** collapse all open regions at every steal boundary: the left-leaning
          tree [((r0 ⊗ r1) ⊗ r2) ⊗ ...] with reduces as early as possible —
          how an actual Cilk runtime reduces when every stolen child returns
          before the next steal *)
  | Reduce_schedule of (int -> int)
      (** [f k] = number of merges to run just before steal number [k]
          (1-based within the sync block) pushes its region; remaining merges
          run at the sync. Lets coverage elicit any particular reduce strand. *)

(** Structural summary of which continuations a specification steals —
    what {!validate} checks against a program profile. Constructors of
    this module fill it in; a hand-rolled spec is {!Opaque} (never
    rejected). *)
type shape =
  | Never  (** steals nothing *)
  | Always  (** steals everything *)
  | Probabilistic  (** {!random} — any continuation may or may not fire *)
  | Local_indices of int list  (** {!at_local_indices} *)
  | At_depth of int  (** {!at_depth} *)
  | Spawn_indices of int list  (** {!by_spawn_index} *)
  | Opaque  (** unknown predicate; not validatable *)

type t = {
  name : string;  (** for reports and bench tables *)
  steal : cont_info -> bool;  (** is this continuation stolen? *)
  policy : reduce_policy;
  shape : shape;  (** structural summary for validation *)
}

(** [none] steals nothing: the pure serial execution (the "No steals"
    configuration of paper Fig. 7). Reduce never runs. *)
val none : t

(** [all ?policy ()] steals every continuation — the maximal-views schedule
    (every spawn behaves as if its parent were stolen). *)
val all : ?policy:reduce_policy -> unit -> t

(** [random ?policy ~seed ~density ()] steals each continuation
    independently with probability [density], deterministically derived
    from [seed] and the continuation's spawn ordinal (so the same spec
    value always names the same schedule) — the paper's "a random seed …
    points are chosen randomly" mode. *)
val random : ?policy:reduce_policy -> seed:int -> density:float -> unit -> t

(** [at_local_indices ?policy idxs] steals exactly the continuations whose
    1-based index within their sync block is in [idxs] — the paper's
    "specifying which three continuations to steal in a sync block". *)
val at_local_indices : ?policy:reduce_policy -> int list -> t

(** [at_depth ?policy d] steals every continuation executed by frames at
    spawn depth [d] — the "steals at continuation depth" mode used for the
    Check-updates configuration in §8. *)
val at_depth : ?policy:reduce_policy -> int -> t

(** [by_spawn_index ?policy ?name idxs] steals the continuations with the
    given global spawn ordinals. *)
val by_spawn_index : ?policy:reduce_policy -> ?name:string -> int list -> t

(** [with_name t name] relabels a spec. *)
val with_name : t -> string -> t

(** [opaque ~name steal] wraps an arbitrary predicate ({!Opaque} shape,
    exempt from validation). *)
val opaque : ?policy:reduce_policy -> name:string -> (cont_info -> bool) -> t

(** [validate t ~k ~d ~n_spawns] checks the spec's {!shape} against a
    program profile (max continuations per sync block [k], max spawn
    depth [d], total spawns): [Error reason] if the spec names
    continuation indices beyond [K], a depth beyond [D], or spawn
    ordinals the program never reaches — i.e. the spec can never fire and
    the run silently degenerates to the serial schedule.
    [Never]/[Always]/[Probabilistic]/[Opaque] shapes always validate. *)
val validate : t -> k:int -> d:int -> n_spawns:int -> (unit, string) result

(** [merges_before_steal t ~steal_ordinal ~n_open] is how many top-two
    region merges the engine must perform immediately before pushing the
    region of steal [steal_ordinal] (1-based in its sync block) when
    [n_open] regions are currently open. Always within [0, n_open - 1]. *)
val merges_before_steal : t -> steal_ordinal:int -> n_open:int -> int

(** [parse ~seed ~density s] is the CLI / wire syntax for specs:
    ["none"], ["all"], ["random"] (derived from [seed] and [density]), or
    a comma-separated list of 1-based sync-block continuation indices
    (parsed as {!at_local_indices} with [Reduce_eagerly]). Total — the
    serve daemon feeds it untrusted request fields. *)
val parse : seed:int -> density:float -> string -> (t, string) result
