(** Pluggable precedence ("reachability") backends for the detectors.

    Both SP+ (paper §5–6) and Peer-Set (§3) reduce race checking to one
    oracle question, always anchored at the current strand: {e is the
    recorded access logically in series with the point of execution the
    replay is at right now?} — plus, for SP+, {e which reducer view does
    the recorded access belong to today?} The seed answers with S/P bags
    over a disjoint-set forest: O(α(v,v)) amortized per query, and the
    α-term (path compression) is the detector's hot path (S6 counters).

    This module exposes that oracle behind two interchangeable backends:

    - {!Dset} — the original bag/disjoint-set machinery, moved here
      verbatim (same operations in the same order, so Obs counters and
      verdicts are byte-identical to the seed);
    - {!Depa} — DePa-style fingerprint order maintenance (Westrick, Wang
      & Acar, 2022). Every frame gets an immutable {e fork-path
      fingerprint} at entry: the γ-coded sequence of child ordinals from
      the root, packed MSB-first into 62-bit words. A precedence query
      compares the recorded frame's fingerprint with the current frame's
      word by word, finds the diverging level, and reads the answer from
      the lowest common live ancestor's O(1) per-block state — worst case
      O(⌈depth/w⌉) with {e no} amortized rebalancing, no path
      compression, and no mutation at query time (which is what makes the
      queries safe to run concurrently; see DESIGN.md §12). The P-bag
      vid discipline is re-expressed as {e view epochs}: every P-bag
      instance (frame entry, steal push, post-sync refresh) gets a fresh
      epoch; a frame records, per returned child, the top epoch its
      subtree merged into; reduce pops the top epoch, so a recorded
      epoch's surviving view is the largest still-live epoch below it
      (one short binary search over the outstanding-steal stack).

    Verdict equivalence between the backends is enforced by the golden
    fingerprints, the generated-program cross-checks and a dedicated
    QCheck agreement property over raw event sequences. *)

type backend = Dset | Depa

val all : backend list
val show : backend -> string
val parse : string -> (backend, string) result

(** Cmdliner-friendly doc string: ["dset|depa"]. *)
val doc_alts : string

(** {2 Pairwise structural precedence (online runtime)}

    The [Sp]/[Peer] cores below are {e serially anchored}: they classify a
    recorded frame against "the current strand" of one depth-first replay,
    mutating bags as execution advances — meaningless (and unsafe) when
    several domains execute the SP tree at once. [Fp] relates {e two
    arbitrary points} instead, entirely from immutable per-frame records
    built on the [Depa] fork-path fingerprints: each record is written
    once by the frame's creator before any other worker can reach it, so
    concurrent queries race with nothing. This is the precedence oracle of
    the online detector ([Rader_sched.Online]); the [dset] machinery stays
    replay-only by construction. *)
module Fp : sig
  type frame
  (** Immutable structural record of one user frame: fork-path
      fingerprint, parent link, and creation-edge coordinates. *)

  val root : unit -> frame

  (** [child parent ~ord ~spawned ~block ~seq ~rid_entry ~cum_entry] is
      the record of [parent]'s [ord]-th user child ([ord] counts both
      spawned and called children), created while [parent] was in sync
      block [block] at in-frame sequence number [seq] (the per-frame
      counter bumped at every child creation), starting in view region
      [rid_entry], with chain-spawn stamp [cum_entry] = parent's stamp +
      parent's spawns so far {e including} this edge's own spawn when
      [spawned]. Must be called by [parent]'s current executor (frame
      bodies execute as one logical thread, so creation is race-free). *)
  val child :
    frame ->
    ord:int ->
    spawned:bool ->
    block:int ->
    seq:int ->
    rid_entry:int ->
    cum_entry:int ->
    frame

  val depth : frame -> int

  type point = {
    p_frame : frame;
    p_block : int;  (** frame's sync block at the access *)
    p_seq : int;  (** frame's sequence number at the access *)
    p_rid : int;  (** view region at the access *)
    p_cum : int;  (** chain-spawn stamp at the access *)
  }
  (** One access, as a structural coordinate. Capture is a few loads from
      the current frame's counters; the captured value is immutable. *)

  type verdict =
    | Parallel of { a_before_b : bool; earlier_entry_rid : int }
        (** Logically parallel. [a_before_b] is the serial (left-to-right)
            order; [earlier_entry_rid] is the entry region of the earlier
            point's child edge at the LCA — under the at-sync reduce
            policy, exactly the surviving view the serial SP+ detector
            compares against the later point's current region. *)
    | Serial of { a_before_b : bool; spawns_between_lb : int }
        (** In series. [spawns_between_lb] is a sound lower bound on the
            spawns serially between the points (an under-approximation:
            spawns inside the earlier point's completed subtree are not
            visible from the coordinates) — the online stand-in for
            Peer-Set's Lemma-3 spawn-count comparison. *)

  (** [relate a b] classifies the pair from fingerprint divergence
      (O(⌈depth/62⌉) word compares) plus two bounded parent walks to the
      diverging edges. Symmetric: [relate b a] gives the mirrored
      verdict. *)
  val relate : point -> point -> verdict

  (** [serial_before a b]: [a] strictly precedes [b] in depth-first serial
      order (parallel pairs ordered by their LCA edges). A total order for
      points with distinct coordinates. *)
  val serial_before : point -> point -> bool
end

(** {2 SP+ precedence core}

    Owns the per-frame S/P classification state of the SP+ detector: the
    caller (Sp_plus, Sp_order) keeps shadow spaces, frame kinds and report
    collection, and forwards the engine's frame/sync/steal/reduce events
    verbatim. Queries are anchored at the current (top) frame. *)
module Sp : sig
  type t

  (** Verdict for a recorded frame against the current point:
      [Serial], or [Parallel vid] where [vid] is the view id of the P bag
      holding the recorded frame {e today} (region id of the steal that
      opened it, or the enclosing frame's entry view). *)
  type cls = Serial | Parallel of int

  (** [lazy_note] (default false) defers inserting each frame into its
      own S set until {!note} — classification of noted frames is
      unchanged, but callers must then {!note} every frame id they later
      pass to {!classify} while that frame is the current one. The hot
      detector cores use this: only shadow-recorded frames are ever
      classified, so spawn-heavy programs that never touch instrumented
      memory do no disjoint-set work at all. No effect on [Depa]. *)
  val create : ?lazy_note:bool -> backend -> t

  val backend : t -> backend

  (** Empty every arena but keep grown storage — pairs with
      [Engine.reset] for spec-sweep reuse. *)
  val reset : t -> unit

  val on_frame_enter : t -> frame:int -> unit

  (** [parallel] is [spawned || kind = Reduce_fn]: whether the returning
      frame's subtree joins the parent's top P bag (stays parallel until
      the enclosing sync) or the parent's S bag.

      [on_frame_return], [on_sync] and [on_reduce] return [true] when the
      event may have changed the classification of some recorded frame
      (for the dset backend: a payload-rewriting union actually happened;
      empty-source unions are pure no-ops and return [false]). Callers
      memoizing [classify] results need to invalidate exactly when one of
      these returns [true] — see [Sp_hot]'s generation counter. *)
  val on_frame_return : t -> frame:int -> parallel:bool -> bool

  val on_sync : t -> frame:int -> bool
  val on_steal : t -> frame:int -> region:int -> unit
  val on_reduce : t -> frame:int -> bool

  (** [classify t u] classifies recorded frame [u] against the current
      point. Never-entered frames classify [Serial] (callers guard
      [Shadow.absent] themselves, as the seed did). *)
  val classify : t -> int -> cls

  (** Under [lazy_note], record that the current (top) frame's id is
      about to be stored in a shadow space: inserts it into its own S
      set. Idempotent; a no-op under the eager default and on [Depa]. *)
  val note : t -> frame:int -> unit

  (** View id of the current strand (the top P bag of the top frame). *)
  val cur_view : t -> int
end

(** {2 Peer-Set precedence core}

    Owns Peer-Set's SS/SP/P bags and spawn counts (Fig. 3). User-function
    frames only — the caller filters, and keeps its reader shadows and
    reports. *)
module Peer : sig
  type t

  (** [lazy_note] (default false): defer inserting frames into their own
      SS sets until their first {!note_read}. Only shadow-recorded reader
      frames are ever queried by {!parallel_read}, so verdicts are
      unchanged. No effect on [Depa]. *)
  val create : ?lazy_note:bool -> backend -> t

  val backend : t -> backend
  val reset : t -> unit
  val on_frame_enter : t -> frame:int -> spawned:bool -> unit
  val on_frame_return : t -> frame:int -> spawned:bool -> unit
  val on_sync : t -> frame:int -> unit

  (** [anc + ls] of the current frame: the spawn count Peer-Set stores
      with each reducer-read. *)
  val spawn_count : t -> int

  (** Record that the current frame performed a reducer-read of
      [reducer]; must be called after {!parallel_read} of the previous
      read, mirroring Fig. 3's order. *)
  val note_read : t -> reducer:int -> frame:int -> unit

  (** [parallel_read t ~reducer ~frame] — is the previously recorded read
      [frame] of [reducer] in a P bag (different peer set regardless of
      spawn counts)? *)
  val parallel_read : t -> reducer:int -> frame:int -> bool
end
