(** Pluggable precedence ("reachability") backends for the detectors.

    Both SP+ (paper §5–6) and Peer-Set (§3) reduce race checking to one
    oracle question, always anchored at the current strand: {e is the
    recorded access logically in series with the point of execution the
    replay is at right now?} — plus, for SP+, {e which reducer view does
    the recorded access belong to today?} The seed answers with S/P bags
    over a disjoint-set forest: O(α(v,v)) amortized per query, and the
    α-term (path compression) is the detector's hot path (S6 counters).

    This module exposes that oracle behind two interchangeable backends:

    - {!Dset} — the original bag/disjoint-set machinery, moved here
      verbatim (same operations in the same order, so Obs counters and
      verdicts are byte-identical to the seed);
    - {!Depa} — DePa-style fingerprint order maintenance (Westrick, Wang
      & Acar, 2022). Every frame gets an immutable {e fork-path
      fingerprint} at entry: the γ-coded sequence of child ordinals from
      the root, packed MSB-first into 62-bit words. A precedence query
      compares the recorded frame's fingerprint with the current frame's
      word by word, finds the diverging level, and reads the answer from
      the lowest common live ancestor's O(1) per-block state — worst case
      O(⌈depth/w⌉) with {e no} amortized rebalancing, no path
      compression, and no mutation at query time (which is what makes the
      queries safe to run concurrently; see DESIGN.md §12). The P-bag
      vid discipline is re-expressed as {e view epochs}: every P-bag
      instance (frame entry, steal push, post-sync refresh) gets a fresh
      epoch; a frame records, per returned child, the top epoch its
      subtree merged into; reduce pops the top epoch, so a recorded
      epoch's surviving view is the largest still-live epoch below it
      (one short binary search over the outstanding-steal stack).

    Verdict equivalence between the backends is enforced by the golden
    fingerprints, the generated-program cross-checks and a dedicated
    QCheck agreement property over raw event sequences. *)

type backend = Dset | Depa

val all : backend list
val show : backend -> string
val parse : string -> (backend, string) result

(** Cmdliner-friendly doc string: ["dset|depa"]. *)
val doc_alts : string

(** {2 SP+ precedence core}

    Owns the per-frame S/P classification state of the SP+ detector: the
    caller (Sp_plus, Sp_order) keeps shadow spaces, frame kinds and report
    collection, and forwards the engine's frame/sync/steal/reduce events
    verbatim. Queries are anchored at the current (top) frame. *)
module Sp : sig
  type t

  (** Verdict for a recorded frame against the current point:
      [Serial], or [Parallel vid] where [vid] is the view id of the P bag
      holding the recorded frame {e today} (region id of the steal that
      opened it, or the enclosing frame's entry view). *)
  type cls = Serial | Parallel of int

  val create : backend -> t
  val backend : t -> backend

  (** Empty every arena but keep grown storage — pairs with
      [Engine.reset] for spec-sweep reuse. *)
  val reset : t -> unit

  val on_frame_enter : t -> frame:int -> unit

  (** [parallel] is [spawned || kind = Reduce_fn]: whether the returning
      frame's subtree joins the parent's top P bag (stays parallel until
      the enclosing sync) or the parent's S bag. *)
  val on_frame_return : t -> frame:int -> parallel:bool -> unit

  val on_sync : t -> frame:int -> unit
  val on_steal : t -> frame:int -> region:int -> unit
  val on_reduce : t -> frame:int -> unit

  (** [classify t u] classifies recorded frame [u] against the current
      point. Never-entered frames classify [Serial] (callers guard
      [Shadow.absent] themselves, as the seed did). *)
  val classify : t -> int -> cls

  (** View id of the current strand (the top P bag of the top frame). *)
  val cur_view : t -> int
end

(** {2 Peer-Set precedence core}

    Owns Peer-Set's SS/SP/P bags and spawn counts (Fig. 3). User-function
    frames only — the caller filters, and keeps its reader shadows and
    reports. *)
module Peer : sig
  type t

  val create : backend -> t
  val backend : t -> backend
  val reset : t -> unit
  val on_frame_enter : t -> frame:int -> spawned:bool -> unit
  val on_frame_return : t -> frame:int -> spawned:bool -> unit
  val on_sync : t -> frame:int -> unit

  (** [anc + ls] of the current frame: the spawn count Peer-Set stores
      with each reducer-read. *)
  val spawn_count : t -> int

  (** Record that the current frame performed a reducer-read of
      [reducer]; must be called after {!parallel_read} of the previous
      read, mirroring Fig. 3's order. *)
  val note_read : t -> reducer:int -> frame:int -> unit

  (** [parallel_read t ~reducer ~frame] — is the previously recorded read
      [frame] of [reducer] in a P bag (different peer set regardless of
      spawn counts)? *)
  val parallel_read : t -> reducer:int -> frame:int -> bool
end
