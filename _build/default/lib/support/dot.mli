(** Minimal Graphviz (dot) emission, used to visualize computation dags and
    SP parse trees (paper Figures 2, 4, 5). *)

type t

(** [create name] starts a digraph called [name]. *)
val create : string -> t

(** [node t id ~label ~attrs] declares a node. [attrs] are raw dot
    [key=value] strings (values are quoted by the caller if needed). *)
val node : t -> string -> label:string -> attrs:(string * string) list -> unit

(** [edge t a b ~attrs] declares an edge [a -> b]. *)
val edge : t -> string -> string -> attrs:(string * string) list -> unit

(** [subgraph_cluster t name ~label ids] wraps the given node ids in a
    cluster (used to box function instantiations like the paper's light
    rectangles). *)
val subgraph_cluster : t -> string -> label:string -> string list -> unit

(** [render t] is the dot source. *)
val render : t -> string
