lib/benchsuite/bm_dedup.ml: Bench_def Buffer Bytes Cell Char Cilk Hashtbl List Printf Rader_runtime Reducer Rmonoid String Workloads
