(* Wire-protocol robustness: the serve codec must round-trip every
   request/response exactly, and its decoders must be total — any
   mutated, truncated or hostile body decodes to a structured [err],
   never an exception. Plus unit tests for the LRU verdict cache. *)

module Proto = Rader_serve.Proto
module Cache = Rader_serve.Cache

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_small_string =
  QCheck2.Gen.(string_size ~gen:printable (int_bound 24))

(* Floats that survive Int64.bits_of_float round-trips bit-exactly and
   still exercise negatives, zero and fractions. (NaN would round-trip
   as bits but break structural equality, so keep it out.) *)
let gen_float =
  QCheck2.Gen.(
    oneof
      [
        return 0.0;
        return (-1.5);
        return 1e-9;
        return 1e12;
        float_bound_inclusive 1000.0;
      ])

let gen_submit =
  let open QCheck2.Gen in
  let* kind = oneofl [ Proto.Check; Proto.Coverage; Proto.Lint; Proto.Verify ] in
  let* program = gen_small_string in
  let* scale = gen_float in
  let* seed = int_bound 1_000_000 in
  let* spec = gen_small_string in
  let* density = gen_float in
  let* max_events = option (int_bound 1_000_000_000) in
  let* deadline_s = option gen_float in
  let* prune = bool in
  return
    {
      Proto.kind;
      program;
      scale;
      seed;
      spec;
      density;
      max_events;
      deadline_s;
      prune;
    }

let gen_request =
  let open QCheck2.Gen in
  oneof
    [
      (let* s = gen_submit in
       return (Proto.Submit s));
      return Proto.Health;
      return Proto.Shutdown;
    ]

let gen_verdict =
  let open QCheck2.Gen in
  let* status = oneofl [ Proto.Clean; Proto.Races; Proto.Partial ] in
  let* cached = bool in
  let* v_result = option (int_bound 1_000_000) in
  let* n_run = int_bound 500 in
  let* n_specs = int_bound 500 in
  let* races = list_size (int_bound 5) gen_small_string in
  let* failures =
    list_size (int_bound 3) (pair gen_small_string gen_small_string)
  in
  return { Proto.status; cached; v_result; n_run; n_specs; races; failures }

let gen_response =
  let open QCheck2.Gen in
  oneof
    [
      (let* v = gen_verdict in
       return (Proto.Verdict v));
      (let* ms = int_bound 10_000 in
       return (Proto.Retry_after ms));
      (let* msg = gen_small_string in
       return (Proto.Internal_fault msg));
      (let* json = gen_small_string in
       return (Proto.Health_report json));
      (let* code = int_bound 20 in
       let* msg = gen_small_string in
       return (Proto.Proto_error { Proto.code; msg }));
      return Proto.Bye;
    ]

let gen_id = QCheck2.Gen.int_bound 0xFFFF_FFFF

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)
(* ------------------------------------------------------------------ *)

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request encode/decode round-trips" ~count:500
    QCheck2.Gen.(pair gen_id gen_request)
    (fun (id, req) ->
      match Proto.decode_request (Proto.encode_request ~id req) with
      | Ok (id', req') -> id' = id && req' = req
      | Error e ->
          QCheck2.Test.fail_reportf "decode error %d: %s" e.Proto.code
            e.Proto.msg)

let prop_response_roundtrip =
  QCheck2.Test.make ~name:"response encode/decode round-trips" ~count:500
    QCheck2.Gen.(pair gen_id gen_response)
    (fun (id, resp) ->
      match Proto.decode_response (Proto.encode_response ~id resp) with
      | Ok (id', resp') -> id' = id && resp' = resp
      | Error e ->
          QCheck2.Test.fail_reportf "decode error %d: %s" e.Proto.code
            e.Proto.msg)

(* Totality under mutation: flip random bytes / truncate / extend a
   valid body — decode must return (never raise), and when it returns
   [Ok] on a mutated-but-coincidentally-valid body that is fine. *)
let gen_mutation =
  let open QCheck2.Gen in
  let* base = pair gen_id gen_request in
  let* flips = list_size (int_range 1 8) (pair small_nat (int_bound 255)) in
  let* cut = small_nat in
  let* extend = string_size ~gen:char (int_bound 8) in
  return (base, flips, cut, extend)

let mutate body flips cut extend =
  let n = String.length body in
  let b = Bytes.of_string body in
  List.iter
    (fun (i, c) -> if n > 0 then Bytes.set b (i mod n) (Char.chr c))
    flips;
  let s = Bytes.to_string b in
  let s = if cut mod 3 = 0 && n > 0 then String.sub s 0 (cut mod n) else s in
  if String.length extend > 0 then s ^ extend else s

let prop_mutation_total =
  QCheck2.Test.make ~name:"decoders are total under byte mutation"
    ~count:1000 gen_mutation (fun ((id, req), flips, cut, extend) ->
      let body = mutate (Proto.encode_request ~id req) flips cut extend in
      (match Proto.decode_request body with
      | Ok _ | Error _ -> ()
      | exception e ->
          QCheck2.Test.fail_reportf "decode_request raised %s"
            (Printexc.to_string e));
      (match Proto.decode_response body with
      | Ok _ | Error _ -> ()
      | exception e ->
          QCheck2.Test.fail_reportf "decode_response raised %s"
            (Printexc.to_string e));
      true)

(* ------------------------------------------------------------------ *)
(* Targeted malformed bodies                                           *)
(* ------------------------------------------------------------------ *)

let check_code what expected = function
  | Ok _ -> Alcotest.failf "%s: decoded Ok, wanted error %d" what expected
  | Error e ->
      Alcotest.(check int) (what ^ " error code") expected e.Proto.code

let test_targeted_malformed () =
  let valid = Proto.encode_request ~id:7 Proto.Health in
  (* empty body *)
  check_code "empty" Proto.err_truncated (Proto.decode_request "");
  (* bad version byte *)
  let b = Bytes.of_string valid in
  Bytes.set b 0 '\xfe';
  check_code "bad version" Proto.err_bad_version
    (Proto.decode_request (Bytes.to_string b));
  (* unknown tag *)
  let b = Bytes.of_string valid in
  Bytes.set b 1 '\x63';
  check_code "bad tag" Proto.err_bad_tag
    (Proto.decode_request (Bytes.to_string b));
  (* trailing garbage after a complete request *)
  check_code "trailing" Proto.err_trailing
    (Proto.decode_request (valid ^ "x"));
  (* truncated submit: chop a full frame mid-field *)
  let sub =
    {
      Proto.kind = Proto.Check;
      program = "fig1-buggy";
      scale = 1.0;
      seed = 0;
      spec = "all";
      density = 0.5;
      max_events = None;
      deadline_s = None;
      prune = false;
    }
  in
  let full = Proto.encode_request ~id:9 (Proto.Submit sub) in
  for cut = 1 to String.length full - 1 do
    match Proto.decode_request (String.sub full 0 cut) with
    | Ok _ -> Alcotest.failf "prefix of length %d decoded Ok" cut
    | Error _ -> ()
  done;
  (* a string field claiming more bytes than the body holds must be a
     structured error, not an allocation attempt *)
  let lying = Bytes.of_string full in
  (* program-string length lives right after version/tag/id/kind *)
  Bytes.set lying 7 '\xff';
  match Proto.decode_request (Bytes.to_string lying) with
  | Ok _ -> Alcotest.fail "lying string length decoded Ok"
  | Error e ->
      Alcotest.(check bool)
        "lying length is a structured field/truncation error" true
        (e.Proto.code = Proto.err_bad_field
        || e.Proto.code = Proto.err_truncated)

let test_frame_io () =
  (* send/recv over a socketpair: normal frame, oversized reject,
     mid-frame disconnect *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let body = Proto.encode_request ~id:3 Proto.Health in
  Proto.send a body;
  (match Proto.recv b with
  | Ok got -> Alcotest.(check string) "frame round-trip" body got
  | Error _ -> Alcotest.fail "recv failed on a valid frame");
  (* oversized length prefix is rejected before allocation *)
  let huge = Bytes.create 4 in
  Bytes.set huge 0 '\x7f';
  Bytes.set huge 1 '\xff';
  Bytes.set huge 2 '\xff';
  Bytes.set huge 3 '\xff';
  ignore (Unix.write a huge 0 4);
  (match Proto.recv b with
  | Error (`Err e) ->
      Alcotest.(check int) "oversized code" Proto.err_bad_length e.Proto.code
  | Ok _ -> Alcotest.fail "oversized frame accepted"
  | Error `Eof -> Alcotest.fail "oversized frame read as EOF");
  Unix.close a;
  Unix.close b;
  (* mid-frame disconnect: length prefix promises a body, then close *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let prefix = Bytes.of_string "\x00\x00\x00\x10" in
  ignore (Unix.write a prefix 0 4);
  ignore (Unix.write a (Bytes.of_string "abc") 0 3);
  Unix.close a;
  (match Proto.recv b with
  | Error (`Err e) ->
      Alcotest.(check int) "truncated code" Proto.err_truncated e.Proto.code
  | Ok _ -> Alcotest.fail "truncated frame accepted"
  | Error `Eof -> Alcotest.fail "truncated frame read as clean EOF");
  Unix.close b;
  (* clean close at a frame boundary is `Eof *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  (match Proto.recv b with
  | Error `Eof -> ()
  | Ok _ | Error (`Err _) -> Alcotest.fail "boundary close not EOF");
  Unix.close b;
  (* send refuses oversized bodies instead of emitting a bad frame *)
  match Proto.send Unix.stdout (String.make (Proto.max_frame + 1) 'x') with
  | () -> Alcotest.fail "oversized send accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)
(* ------------------------------------------------------------------ *)

let test_cache_basic () =
  let c = Cache.create ~cap:2 in
  Alcotest.(check (option string)) "miss" None (Cache.find c "a");
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  Alcotest.(check (option string)) "hit a" (Some "1") (Cache.find c "a");
  Alcotest.(check (option string)) "hit b" (Some "2") (Cache.find c "b");
  Alcotest.(check int) "len" 2 (Cache.len c);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 1 (Cache.misses c)

let test_cache_eviction_order () =
  let c = Cache.create ~cap:2 in
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  (* touch a so b becomes LRU *)
  ignore (Cache.find c "a");
  Cache.add c "c" "3";
  Alcotest.(check (option string)) "a survives" (Some "1") (Cache.find c "a");
  Alcotest.(check (option string)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option string)) "c present" (Some "3") (Cache.find c "c");
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c);
  Alcotest.(check int) "len stays capped" 2 (Cache.len c)

let test_cache_replace () =
  let c = Cache.create ~cap:2 in
  Cache.add c "a" "1";
  Cache.add c "a" "override";
  Alcotest.(check int) "replace keeps len" 1 (Cache.len c);
  Alcotest.(check (option string))
    "replaced value" (Some "override") (Cache.find c "a");
  Alcotest.(check int) "no eviction on replace" 0 (Cache.evictions c)

let test_cache_churn () =
  (* sustained distinct keys: memory stays flat (len <= cap) and the
     most recent cap keys are exactly the survivors *)
  let cap = 8 in
  let c = Cache.create ~cap in
  for i = 0 to 99 do
    Cache.add c (string_of_int i) i
  done;
  Alcotest.(check int) "len = cap" cap (Cache.len c);
  Alcotest.(check int) "evictions" (100 - cap) (Cache.evictions c);
  for i = 0 to 99 do
    let expect = if i >= 100 - cap then Some i else None in
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" i)
      expect
      (Cache.find c (string_of_int i))
  done;
  match Cache.create ~cap:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cap 0 accepted"

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_request_roundtrip; prop_response_roundtrip; prop_mutation_total ]
  in
  Alcotest.run "serve protocol"
    [
      ("roundtrip", props);
      ( "malformed",
        [
          Alcotest.test_case "targeted malformed bodies" `Quick
            test_targeted_malformed;
          Alcotest.test_case "frame I/O edge cases" `Quick test_frame_io;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basic hit/miss" `Quick test_cache_basic;
          Alcotest.test_case "eviction order" `Quick test_cache_eviction_order;
          Alcotest.test_case "replace" `Quick test_cache_replace;
          Alcotest.test_case "churn stays bounded" `Quick test_cache_churn;
        ] );
    ]
