module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type 'a t = {
  mutable root : int; (* representative element, or -1 when empty *)
  mutable payload : 'a;
}

type 'a store = {
  dset : Dset.t;
  owner : 'a t option Dynarr.t; (* indexed by representative element *)
}

let create_store () = { dset = Dset.create (); owner = Dynarr.create () }

let clear_store store =
  Dset.clear store.dset;
  Dynarr.clear store.owner

let set_owner store root bag =
  Dynarr.ensure store.owner (root + 1) None;
  Dynarr.set store.owner root bag

let owner_of store root =
  if root < Dynarr.length store.owner then Dynarr.get store.owner root else None

let add_fresh store bag x =
  Dset.add store.dset x;
  if bag.root < 0 then begin
    bag.root <- x;
    set_owner store x (Some bag)
  end
  else begin
    let r = Dset.union store.dset bag.root x in
    if r <> bag.root then begin
      set_owner store bag.root None;
      bag.root <- r
    end;
    set_owner store r (Some bag)
  end

let make store payload elts =
  if Obs.enabled () then Obs.bump_bag_make ();
  let bag = { root = -1; payload } in
  List.iter (add_fresh store bag) elts;
  bag

let payload b = b.payload

let set_payload b p = b.payload <- p

let add store b x = add_fresh store b x

let union_into store ~dst ~src =
  if dst == src then invalid_arg "Bag.union_into: dst and src are the same bag";
  if Obs.enabled () then Obs.bump_bag_union ();
  if src.root >= 0 then begin
    if dst.root < 0 then begin
      dst.root <- src.root;
      set_owner store src.root (Some dst)
    end
    else begin
      let r = Dset.union store.dset dst.root src.root in
      set_owner store dst.root None;
      set_owner store src.root None;
      dst.root <- r;
      set_owner store r (Some dst)
    end;
    src.root <- -1
  end

let find store x =
  if Obs.enabled () then Obs.bump_bag_find ();
  if Dset.mem store.dset x then owner_of store (Dset.find store.dset x) else None

let is_empty b = b.root < 0

let same_bag a b = a == b

let mem store b x =
  match find store x with Some b' -> b' == b | None -> false
