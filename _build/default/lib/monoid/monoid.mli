(** Algebraic monoids [(T, ⊗, e)].

    A reducer hyperobject is defined semantically by a monoid: a carrier set
    [T], an associative binary operation [⊗] and its identity [e] (paper §2).
    This module holds the {e pure} representation used by the plain (non-DSL)
    benchmark versions, the oracles, and tests; the runtime's instrumented
    counterpart lives in [Rader_runtime.Rmonoid]. *)

type 'a t = {
  name : string;  (** for reports and debugging *)
  identity : unit -> 'a;  (** [Create-Identity]: builds a fresh identity *)
  combine : 'a -> 'a -> 'a;  (** [Reduce]: the associative ⊗ *)
}

(** [make ~name ~identity ~combine] is a monoid record. *)
val make : name:string -> identity:(unit -> 'a) -> combine:('a -> 'a -> 'a) -> 'a t

(** [fold m xs] is [e ⊗ x1 ⊗ ... ⊗ xn]. *)
val fold : 'a t -> 'a list -> 'a

(** [fold_tree m xs] combines [xs] as a balanced binary tree; by
    associativity the result equals [fold m xs]. Used by tests to check
    that user monoids really are associative under rebracketing. *)
val fold_tree : 'a t -> 'a list -> 'a

(** [is_associative ~equal m samples] checks [⊗] associativity and the
    identity laws on every triple drawn from [samples]. O(n³); for tests. *)
val is_associative : equal:('a -> 'a -> bool) -> 'a t -> 'a list -> bool
