lib/support/stats.mli:
