type frame_kind = Frame_kind.t = User_fn | Update_fn | Reduce_fn | Identity_fn

type hooks = {
  on_frame_enter : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_frame_return : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_sync : frame:int -> unit;
  on_steal : frame:int -> region:int -> unit;
  on_reduce : frame:int -> into_region:int -> from_region:int -> unit;
  on_read : frame:int -> loc:int -> view_aware:bool -> unit;
  on_write : frame:int -> loc:int -> view_aware:bool -> unit;
  on_reducer_read : frame:int -> reducer:int -> unit;
}

let hooks_null =
  {
    on_frame_enter = (fun ~frame:_ ~parent:_ ~spawned:_ ~kind:_ -> ());
    on_frame_return = (fun ~frame:_ ~parent:_ ~spawned:_ ~kind:_ -> ());
    on_sync = (fun ~frame:_ -> ());
    on_steal = (fun ~frame:_ ~region:_ -> ());
    on_reduce = (fun ~frame:_ ~into_region:_ ~from_region:_ -> ());
    on_read = (fun ~frame:_ ~loc:_ ~view_aware:_ -> ());
    on_write = (fun ~frame:_ ~loc:_ ~view_aware:_ -> ());
    on_reducer_read = (fun ~frame:_ ~reducer:_ -> ());
  }

type t =
  | Null
  | Sp_plus of Sp_hot.t
  | Peer_set of Peer_hot.t
  | Both of t * t
  | Extern of hooks

let null = Null
let sp_plus d = Sp_plus d
let peer_set d = Peer_set d
let extern h = Extern h

(* Allocation-free for the common cases: chaining with [null] returns the
   other tool physically unchanged (no wrapper closures, no wrapper
   node), so [chain t null == t]. *)
let chain a b =
  match (a, b) with Null, t | t, Null -> t | a, b -> Both (a, b)

let both = chain

(* -------- event dispatch --------

   One match per event. The [Sp_plus]/[Peer_set] arms are direct calls
   into the flat detector cores; [Both] recurses (tool stacks are tiny in
   practice — two or three tools); [Extern] is the escape hatch carrying
   the seed's closure record. *)

let rec frame_enter t ~frame ~parent ~spawned ~kind =
  match t with
  | Null -> ()
  | Sp_plus d -> Sp_hot.frame_enter d ~frame ~kind
  | Peer_set d -> Peer_hot.frame_enter d ~frame ~spawned ~kind
  | Both (a, b) ->
      frame_enter a ~frame ~parent ~spawned ~kind;
      frame_enter b ~frame ~parent ~spawned ~kind
  | Extern h -> h.on_frame_enter ~frame ~parent ~spawned ~kind

let rec frame_return t ~frame ~parent ~spawned ~kind =
  match t with
  | Null -> ()
  | Sp_plus d -> Sp_hot.frame_return d ~frame ~spawned
  | Peer_set d -> Peer_hot.frame_return d ~frame ~spawned ~kind
  | Both (a, b) ->
      frame_return a ~frame ~parent ~spawned ~kind;
      frame_return b ~frame ~parent ~spawned ~kind
  | Extern h -> h.on_frame_return ~frame ~parent ~spawned ~kind

let rec sync t ~frame =
  match t with
  | Null -> ()
  | Sp_plus d -> Sp_hot.sync d ~frame
  | Peer_set d -> Peer_hot.sync d ~frame
  | Both (a, b) ->
      sync a ~frame;
      sync b ~frame
  | Extern h -> h.on_sync ~frame

let rec steal t ~frame ~region =
  match t with
  | Null | Peer_set _ -> ()
  | Sp_plus d -> Sp_hot.steal d ~frame ~region
  | Both (a, b) ->
      steal a ~frame ~region;
      steal b ~frame ~region
  | Extern h -> h.on_steal ~frame ~region

let rec reduce t ~frame ~into_region ~from_region =
  match t with
  | Null | Peer_set _ -> ()
  | Sp_plus d -> Sp_hot.reduce d ~frame
  | Both (a, b) ->
      reduce a ~frame ~into_region ~from_region;
      reduce b ~frame ~into_region ~from_region
  | Extern h -> h.on_reduce ~frame ~into_region ~from_region

let rec read t ~frame ~loc ~view_aware =
  match t with
  | Null | Peer_set _ -> ()
  | Sp_plus d -> Sp_hot.read d ~frame ~loc ~view_aware
  | Both (a, b) ->
      read a ~frame ~loc ~view_aware;
      read b ~frame ~loc ~view_aware
  | Extern h -> h.on_read ~frame ~loc ~view_aware

let rec write t ~frame ~loc ~view_aware =
  match t with
  | Null | Peer_set _ -> ()
  | Sp_plus d -> Sp_hot.write d ~frame ~loc ~view_aware
  | Both (a, b) ->
      write a ~frame ~loc ~view_aware;
      write b ~frame ~loc ~view_aware
  | Extern h -> h.on_write ~frame ~loc ~view_aware

let rec reducer_read t ~frame ~reducer =
  match t with
  | Null | Sp_plus _ -> ()
  | Peer_set d -> Peer_hot.reducer_read d ~frame ~reducer
  | Both (a, b) ->
      reducer_read a ~frame ~reducer;
      reducer_read b ~frame ~reducer
  | Extern h -> h.on_reducer_read ~frame ~reducer

(* Span events: the engine only batches when [spans_ok] (no [Extern] arm
   anywhere in the stack), so the [Extern] fallback loop below is
   defensive — an external tool driven directly with a span sees the same
   per-access calls it would have seen unbatched. *)

let rec read_span t ~frame ~base ~len ~stride ~view_aware =
  match t with
  | Null | Peer_set _ -> ()
  | Sp_plus d -> Sp_hot.read_span d ~frame ~base ~len ~stride ~view_aware
  | Both (a, b) ->
      read_span a ~frame ~base ~len ~stride ~view_aware;
      read_span b ~frame ~base ~len ~stride ~view_aware
  | Extern h ->
      let loc = ref base in
      for _ = 1 to len do
        h.on_read ~frame ~loc:!loc ~view_aware;
        loc := !loc + stride
      done

let rec write_span t ~frame ~base ~len ~stride ~view_aware =
  match t with
  | Null | Peer_set _ -> ()
  | Sp_plus d -> Sp_hot.write_span d ~frame ~base ~len ~stride ~view_aware
  | Both (a, b) ->
      write_span a ~frame ~base ~len ~stride ~view_aware;
      write_span b ~frame ~base ~len ~stride ~view_aware
  | Extern h ->
      let loc = ref base in
      for _ = 1 to len do
        h.on_write ~frame ~loc:!loc ~view_aware;
        loc := !loc + stride
      done

let rec spans_ok = function
  | Null | Sp_plus _ | Peer_set _ -> true
  | Both (a, b) -> spans_ok a && spans_ok b
  | Extern _ -> false

(* The seed's all-closures view of any tool, for code that predates the
   variant (and for the differential dispatch-parity tests, which drive
   the same detector through both paths). *)
let hooks_of t =
  {
    on_frame_enter =
      (fun ~frame ~parent ~spawned ~kind ->
        frame_enter t ~frame ~parent ~spawned ~kind);
    on_frame_return =
      (fun ~frame ~parent ~spawned ~kind ->
        frame_return t ~frame ~parent ~spawned ~kind);
    on_sync = (fun ~frame -> sync t ~frame);
    on_steal = (fun ~frame ~region -> steal t ~frame ~region);
    on_reduce =
      (fun ~frame ~into_region ~from_region ->
        reduce t ~frame ~into_region ~from_region);
    on_read = (fun ~frame ~loc ~view_aware -> read t ~frame ~loc ~view_aware);
    on_write = (fun ~frame ~loc ~view_aware -> write t ~frame ~loc ~view_aware);
    on_reducer_read = (fun ~frame ~reducer -> reducer_read t ~frame ~reducer);
  }

let is_view_aware_kind = Frame_kind.is_view_aware
let frame_kind_name = Frame_kind.name
