lib/dsets/dset.mli:
