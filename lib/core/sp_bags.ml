module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Bag = Rader_dsets.Bag
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr

type bag_kind = KS | KP

type fstate = { fid : int; s : bag_kind Bag.t; p : bag_kind Bag.t }

type t = {
  eng : Engine.t;
  store : bag_kind Bag.store;
  stack : fstate Dynarr.t;
  reader : Shadow.t;
  writer : Shadow.t;
  collector : Report.collector;
}

let create eng =
  {
    eng;
    store = Bag.create_store ();
    stack = Dynarr.create ();
    reader = Shadow.create ();
    writer = Shadow.create ();
    collector = Report.collector ();
  }

let top d = Dynarr.top d.stack

let on_frame_enter d ~frame =
  Dynarr.push d.stack
    { fid = frame; s = Bag.make d.store KS [ frame ]; p = Bag.make d.store KP [] }

let on_frame_return d ~frame ~spawned =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  if not (Dynarr.is_empty d.stack) then begin
    let f = top d in
    Bag.union_into d.store ~dst:f.p ~src:g.p;
    if spawned then Bag.union_into d.store ~dst:f.p ~src:g.s
    else Bag.union_into d.store ~dst:f.s ~src:g.s
  end

let on_sync d ~frame =
  let f = top d in
  assert (f.fid = frame);
  Bag.union_into d.store ~dst:f.s ~src:f.p

let in_p_bag d frame_id =
  frame_id <> Shadow.absent
  &&
  match Bag.find d.store frame_id with
  | Some bag -> Bag.payload bag = KP
  | None -> false

let report d ~loc ~first_frame ~first_access ~second_access ~frame =
  Report.report d.collector
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label d.eng loc;
      first_frame;
      first_access;
      second_frame = frame;
      second_access;
      second_strand = Engine.current_strand d.eng;
      second_view_aware = false;
      detail = "";
    }

let on_read d ~frame ~loc =
  let w = Shadow.get d.writer loc in
  if in_p_bag d w then
    report d ~loc ~first_frame:w ~first_access:Report.Write
      ~second_access:Report.Read ~frame;
  let r = Shadow.get d.reader loc in
  if r = Shadow.absent || not (in_p_bag d r) then Shadow.set d.reader loc frame

let on_write d ~frame ~loc =
  let r = Shadow.get d.reader loc in
  if in_p_bag d r then
    report d ~loc ~first_frame:r ~first_access:Report.Read
      ~second_access:Report.Write ~frame;
  let w = Shadow.get d.writer loc in
  if in_p_bag d w then
    report d ~loc ~first_frame:w ~first_access:Report.Write
      ~second_access:Report.Write ~frame;
  if w = Shadow.absent || not (in_p_bag d w) then Shadow.set d.writer loc frame

let tool d =
  Tool.extern
    {
      Tool.hooks_null with
      Tool.on_frame_enter =
        (fun ~frame ~parent:_ ~spawned:_ ~kind:_ -> on_frame_enter d ~frame);
      on_frame_return =
        (fun ~frame ~parent:_ ~spawned ~kind:_ ->
          on_frame_return d ~frame ~spawned);
      on_sync = (fun ~frame -> on_sync d ~frame);
      on_read = (fun ~frame ~loc ~view_aware:_ -> on_read d ~frame ~loc);
      on_write = (fun ~frame ~loc ~view_aware:_ -> on_write d ~frame ~loc);
    }

let attach eng =
  let d = create eng in
  Engine.set_tool eng (tool d);
  d

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
