lib/benchsuite/bench_def.mli: Rader_runtime
