lib/dsets/bag.ml: Dset List Rader_support
