(** Canonical SP parse trees (paper §4, Fig. 4; after Feng & Leiserson).

    The dag of a Cilk computation without reducers is series-parallel and is
    represented by a binary parse tree whose leaves are strands and whose
    internal nodes are S (series) or P (parallel) compositions. In the
    {e canonical} tree of a function, the sync strands partition the
    function's strands into sync blocks; each sync block is a right-leaning
    chain in which a node is a P node exactly when its left child is the
    subtree of a {e spawned} child, and the sync blocks are linked by a
    spine of S nodes.

    Lemma 2: [peers(u) = peers(v)] iff the tree path from [u] to [v]
    consists entirely of S nodes. Lemma 4 of Feng & Leiserson: [u ‖ v] iff
    their least common ancestor is a P node. This module provides both
    queries; the Peer-Set tests use them as an independent oracle. *)

type t =
  | Leaf of int  (** strand id *)
  | S of t * t
  | P of t * t

(** Items of one sync block, in serial order. *)
type item =
  | Strand of int  (** a strand executed directly by the function *)
  | Spawned of t  (** the parse tree of a spawned child *)
  | Called of t  (** the parse tree of a called child *)

(** [block_tree items] is the canonical right-leaning chain of one sync
    block. @raise Invalid_argument on an empty block. *)
val block_tree : item list -> t

(** [function_tree blocks] chains the given sync-block trees with the S
    spine. @raise Invalid_argument on an empty list. *)
val function_tree : t list -> t

(** [leaves t] is the leaf strand ids in left-to-right (= serial) order. *)
val leaves : t -> int list

(** Preprocessed form supporting O(depth) path queries. *)
type indexed

(** [index t] preprocesses the tree. @raise Invalid_argument if a strand id
    appears in two leaves. *)
val index : t -> indexed

(** [lca_kind ix u v] is [`S] or [`P]: the kind of the least common ancestor
    of leaves [u] and [v]. @raise Invalid_argument for unknown leaves or
    [u = v]. *)
val lca_kind : indexed -> int -> int -> [ `S | `P ]

(** [all_s_path ix u v] is true iff every internal node on the tree path
    from leaf [u] to leaf [v] (LCA included) is an S node — by Lemma 2,
    exactly when [peers(u) = peers(v)]. [all_s_path ix u u = true]. *)
val all_s_path : indexed -> int -> int -> bool

(** [parallel ix u v] is true iff the LCA of [u] and [v] is a P node — by
    Feng & Leiserson's Lemma 4, exactly when [u ‖ v]. *)
val parallel : indexed -> int -> int -> bool

(** [to_dot t] renders the parse tree in Graphviz format (S nodes as
    circles, P nodes as doublecircles, strand leaves as boxes) — the
    Fig.-4 view of a computation. [leaf_attrs strand] contributes extra
    dot attributes to that strand's leaf (values must already be
    dot-quoted if needed) — the hook the lint pass uses to color
    finding-bearing strands. *)
val to_dot : ?leaf_attrs:(int -> (string * string) list) -> t -> string

(** [to_dag t] converts the parse tree back to the series-parallel dag it
    represents. Strand ids become dag strand ids 0..n-1 renumbered in serial
    order; the result also maps original leaf ids to dag ids. Useful for
    cross-checking tree-based and dag-based oracles. *)
val to_dag : t -> Dag.t * (int -> int)
