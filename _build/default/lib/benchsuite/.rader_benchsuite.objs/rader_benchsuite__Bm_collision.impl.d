lib/benchsuite/bm_collision.ml: Array Bench_def Cilk Hashtbl List Printf Rader_monoid Rader_runtime Reducer Rvec Workloads
