(* Tests for the online work-stealing runtime (Rader_sched.Online).

   - soundness: the online verdict (determinacy locs and view-read
     reducers) over several seeded runs must be a subset of the serial
     ground truth — §7 exhaustive coverage for determinacy, one serial
     Peer-Set run for view-reads (its verdict is schedule-independent) —
     on generated programs, and every racy run's steal trace must convert
     to a spec under which the serial detectors confirm the verdict;
   - determinism: same (program, seed, density) ⇒ identical steal trace,
     race summary and result, for every worker count;
   - integrity: race-free demos compute the same value online as the
     serial engine (reducer views survive being split across regions);
   - soak: 256 randomized-seed runs over racy / crashing / budgeted
     programs at workers ∈ {1,2,4}, each deadline-guarded, must all end
     in a structured verdict or a contained failure. *)

open Rader_runtime
open Rader_core
module O = Rader_sched.Online
module G = Rader_testkit.Gen_program
module Demos = Rader_benchsuite.Demos
module Reach = Rader_reach.Reach

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let cfg ?(workers = 2) ?(seed = 1) ?stripes ?max_events ?deadline () =
  {
    O.workers;
    seed;
    density = 0.5;
    reach = Reach.Depa;
    stripes;
    max_events;
    deadline;
    clock = None;
  }

let kind_subjects races kind =
  List.filter_map
    (fun r -> if r.Report.kind = kind then Some r.Report.subject else None)
    races
  |> List.sort_uniq compare

let subset a b = List.for_all (fun x -> List.mem x b) a

let ints l = String.concat ";" (List.map string_of_int l)

let demo name =
  match Demos.resolve ~scale:0.25 name with
  | Ok p -> p
  | Error m -> Alcotest.fail m

(* ---------- soundness on generated programs ---------- *)

(* Serial view-read ground truth: one Peer-Set run (the verdict is
   defined on the user dag, independent of the steal spec). *)
let serial_view_subjects prog =
  let eng = Engine.create () in
  let pe = Peer_set.attach eng in
  ignore (Engine.run_result eng (fun ctx -> ignore (prog ctx)));
  kind_subjects (Peer_set.races pe) Report.View_read_race

(* Serial re-check of one online run under its own realized schedule. *)
let replay_confirms prog (out : O.outcome) =
  match Steal_trace.to_spec out.O.trace prog with
  | Error msg -> Error ("trace->spec failed: " ^ msg)
  | Ok spec ->
      let eng = Engine.create ~spec () in
      let sp = Sp_plus.attach eng in
      ignore (Engine.run_result eng (fun ctx -> ignore (prog ctx)));
      let eng2 = Engine.create ~spec () in
      let pe = Peer_set.attach eng2 in
      ignore (Engine.run_result eng2 (fun ctx -> ignore (prog ctx)));
      let o_det = kind_subjects out.O.races Report.Determinacy_race in
      let o_view = kind_subjects out.O.races Report.View_read_race in
      let s_det = Sp_plus.racy_locs sp in
      let s_view = kind_subjects (Peer_set.races pe) Report.View_read_race in
      if subset o_det s_det && subset o_view s_view then Ok ()
      else
        Error
          (Printf.sprintf
             "online det=[%s] view=[%s] not confirmed by replay det=[%s] \
              view=[%s]"
             (ints o_det) (ints o_view) (ints s_det) (ints s_view))

let prop_online_subset_of_exhaustive ~racy ~count =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "online ⊆ exhaustive + serial Peer-Set (racy=%b)" racy)
    ~count ~print:G.print
    (G.gen ~with_reducers:true ~racy)
    (fun p ->
      QCheck2.assume (G.max_local_spawns p <= 4);
      let prog = G.interpret p in
      let truth =
        Coverage.exhaustive_check ~max_events:200_000 prog
      in
      let det_truth = truth.Coverage.racy_locs in
      let view_truth = serial_view_subjects prog in
      List.for_all
        (fun (seed, workers) ->
          let out =
            O.run
              (cfg ~workers ~seed ~max_events:200_000
                 ~deadline:(Unix.gettimeofday () +. 30.)
                 ())
              prog
          in
          let o_det = kind_subjects out.O.races Report.Determinacy_race in
          let o_view = kind_subjects out.O.races Report.View_read_race in
          if not (subset o_det det_truth) then
            QCheck2.Test.fail_reportf
              "seed=%d workers=%d: online determinacy [%s] ⊄ exhaustive [%s]"
              seed workers (ints o_det) (ints det_truth)
          else if not (subset o_view view_truth) then
            QCheck2.Test.fail_reportf
              "seed=%d workers=%d: online view-read [%s] ⊄ serial [%s]" seed
              workers (ints o_view) (ints view_truth)
          else if out.O.races <> [] then (
            match replay_confirms prog out with
            | Ok () -> true
            | Error msg ->
                QCheck2.Test.fail_reportf "seed=%d workers=%d: %s" seed
                  workers msg)
          else true)
        [ (1, 1); (2, 2); (3, 2) ])

(* ---------- determinism ---------- *)

let entries_string tr =
  String.concat "|"
    (List.map
       (fun e ->
         Printf.sprintf "%s:%d"
           (String.concat "." (List.map string_of_int e.Steal_trace.e_path))
           e.Steal_trace.e_ord)
       tr.Steal_trace.entries)

let value_string = function
  | Ok v -> Printf.sprintf "ok:%d" v
  | Error f -> "contained:" ^ Diag.class_name f

let test_determinism () =
  List.iter
    (fun name ->
      let prog = demo name in
      (* same seed twice at the same worker count: bit-identical *)
      let a = O.run (cfg ~workers:2 ~seed:5 ()) prog in
      let b = O.run (cfg ~workers:2 ~seed:5 ()) prog in
      checks (name ^ ": trace stable across reruns")
        (Steal_trace.to_string a.O.trace)
        (Steal_trace.to_string b.O.trace);
      checks (name ^ ": verdict stable across reruns")
        (O.race_summary a.O.races) (O.race_summary b.O.races);
      checks (name ^ ": value stable across reruns") (value_string a.O.value)
        (value_string b.O.value);
      (* the steal set, verdict and value are worker-count independent *)
      List.iter
        (fun workers ->
          let c = O.run (cfg ~workers ~seed:5 ()) prog in
          checks
            (Printf.sprintf "%s: steal set identical at %d workers" name
               workers)
            (entries_string a.O.trace) (entries_string c.O.trace);
          checks
            (Printf.sprintf "%s: verdict identical at %d workers" name workers)
            (O.race_summary a.O.races) (O.race_summary c.O.races);
          checks
            (Printf.sprintf "%s: value identical at %d workers" name workers)
            (value_string a.O.value) (value_string c.O.value))
        [ 1; 4 ];
      (* a different seed picks a different steal set on programs with
         enough spawns — sanity that the seed actually reaches it *)
      if name = "fib-racy" then begin
        let d = O.run (cfg ~workers:2 ~seed:6 ()) prog in
        checkb (name ^ ": different seed, different steal set") false
          (entries_string a.O.trace = entries_string d.O.trace)
      end)
    [ "fib-racy"; "fig1-buggy"; "racy-read"; "wordcount" ]

(* ---------- reducer-view integrity on race-free programs ---------- *)

let test_value_integrity () =
  List.iter
    (fun name ->
      let prog = demo name in
      let serial =
        let eng = Engine.create () in
        match Engine.run_result eng prog with
        | Ok v -> v
        | Error f -> Alcotest.fail (name ^ " serial: " ^ Diag.to_string f)
      in
      List.iter
        (fun (workers, seed) ->
          let out = O.run (cfg ~workers ~seed ()) prog in
          check
            (Printf.sprintf "%s: online(workers=%d,seed=%d) = serial" name
               workers seed)
            serial
            (match out.O.value with
            | Ok v -> v
            | Error f ->
                Alcotest.fail (name ^ " online: " ^ Diag.to_string f));
          check (name ^ ": race-free online") 0 (List.length out.O.races))
        [ (1, 1); (2, 1); (2, 9); (4, 3) ])
    [ "fig1-fixed"; "wordcount"; "minimax"; "nqueens" ]

(* ---------- online finds the seeded demo races ---------- *)

let test_demo_races_found () =
  (* fib-racy: a structural determinacy race, found on every schedule *)
  let out = O.run (cfg ~workers:2 ~seed:1 ()) (demo "fib-racy") in
  checkb "fib-racy: determinacy race found online" true
    (kind_subjects out.O.races Report.Determinacy_race <> []);
  (match replay_confirms (demo "fib-racy") out with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("fib-racy replay: " ^ msg));
  (* racy-read: the view-read race Peer-Set exists to catch *)
  let out = O.run (cfg ~workers:2 ~seed:1 ()) (demo "racy-read") in
  checkb "racy-read: view-read race found online" true
    (kind_subjects out.O.races Report.View_read_race <> [])

(* ---------- 256-run randomized soak ---------- *)

(* A fib tree with a crashing leaf: the exception must come back as a
   contained User_program_exn whichever worker hits it. *)
let crashing ctx =
  let rec go ctx k =
    if k = 0 then failwith "soak-crash"
    else begin
      let a = Cilk.spawn ctx (fun ctx -> go ctx (k - 1)) in
      let b = if k > 1 then go ctx (k - 2) else 0 in
      Cilk.sync ctx;
      Cilk.get ctx a + b
    end
  in
  go ctx 6

let test_soak () =
  let corpus =
    [|
      ("fib-racy", demo "fib-racy", None, `Races);
      ("fig1-buggy", demo "fig1-buggy", None, `Maybe_races);
      ("racy-read", demo "racy-read", None, `Races);
      ("crashing", crashing, None, `Contained "user-program-exn");
      ("budgeted", demo "fib-racy", Some 64, `Contained "budget-exceeded");
    |]
  in
  let workers_of = [| 1; 2; 4; 8 |] in
  let n_ok = ref 0 and n_contained = ref 0 and n_racy = ref 0 in
  for i = 0 to 255 do
    let name, prog, max_events, expect = corpus.(i mod Array.length corpus) in
    let workers = workers_of.(i mod Array.length workers_of) in
    let seed = 1000 + i in
    let out =
      O.run
        (cfg ~workers ~seed ?max_events
           ~deadline:(Unix.gettimeofday () +. 30.)
           ())
        prog
    in
    let tag = Printf.sprintf "soak %d (%s workers=%d seed=%d)" i name workers seed in
    (match out.O.value with
    | Ok _ ->
        incr n_ok;
        (match expect with
        | `Contained cls ->
            Alcotest.failf "%s: expected contained %s, got Ok" tag cls
        | _ -> ())
    | Error f -> (
        incr n_contained;
        match expect with
        | `Contained cls -> checks (tag ^ ": failure class") cls (Diag.class_name f)
        | _ -> Alcotest.failf "%s: unexpected failure %s" tag (Diag.to_string f)));
    if out.O.races <> [] then incr n_racy;
    (match expect with
    | `Races ->
        checkb (tag ^ ": races detected") true (out.O.races <> [])
    | _ -> ());
    (* every outcome is structurally well-formed *)
    checkb (tag ^ ": trace parses back") true
      (match Steal_trace.of_string (Steal_trace.to_string out.O.trace) with
      | Ok tr -> tr.Steal_trace.entries = out.O.trace.Steal_trace.entries
      | Error _ -> false)
  done;
  checkb "soak: both clean and contained outcomes exercised" true
    (!n_ok > 0 && !n_contained > 0 && !n_racy > 0)

(* ---------- budget and deadline containment ---------- *)

let test_budget_containment () =
  let out = O.run (cfg ~workers:2 ~seed:1 ~max_events:64 ()) (demo "fib-racy") in
  (match out.O.value with
  | Error (Fault.Budget_exceeded (Fault.Max_events 64)) -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Diag.to_string f)
  | Ok _ -> Alcotest.fail "event budget did not stop the run");
  let out =
    O.run
      (cfg ~workers:2 ~seed:1 ~deadline:1.0 ())
      (demo "fib-racy")
  in
  match out.O.value with
  | Error (Fault.Budget_exceeded (Fault.Deadline _)) -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Diag.to_string f)
  | Ok _ -> Alcotest.fail "expired deadline did not stop the run"

(* ---------- endpoint attribution ---------- *)

(* Online reports must carry the frame/strand ids of a serial replay of
   the recorded steal trace: each endpoint must name a recorded access
   (or reducer-read) of the subject at exactly those ids in the replay. *)
let test_endpoint_attribution () =
  let checked = ref 0 in
  List.iter
    (fun (name, seed) ->
      let prog = demo name in
      let out = O.run (cfg ~workers:2 ~seed ()) prog in
      let spec =
        match Steal_trace.to_spec out.O.trace prog with
        | Ok s -> s
        | Error m -> Alcotest.failf "%s: trace->spec: %s" name m
      in
      let eng = Engine.create ~spec ~record:true () in
      ignore (Engine.run_result eng (fun ctx -> ignore (prog ctx)));
      let tr = Trace.of_engine eng in
      let stats = Engine.stats eng in
      List.iter
        (fun r ->
          incr checked;
          let tag =
            Printf.sprintf "%s seed=%d subject=%d" name seed r.Report.subject
          in
          checkb (tag ^ ": endpoints attributed") true
            (r.Report.first_frame >= 0
            && r.Report.second_frame >= 0
            && r.Report.second_strand >= 0);
          match r.Report.kind with
          | Report.Determinacy_race ->
              checkb (tag ^ ": first endpoint is a recorded access") true
                (List.exists
                   (fun a ->
                     a.Engine.a_loc = r.Report.subject
                     && a.Engine.a_frame = r.Report.first_frame
                     && a.Engine.a_is_write
                        = (r.Report.first_access = Report.Write))
                   tr.Trace.accesses);
              checkb (tag ^ ": second endpoint is a recorded access") true
                (List.exists
                   (fun a ->
                     a.Engine.a_loc = r.Report.subject
                     && a.Engine.a_frame = r.Report.second_frame
                     && a.Engine.a_strand = r.Report.second_strand
                     && a.Engine.a_is_write
                        = (r.Report.second_access = Report.Write))
                   tr.Trace.accesses)
          | Report.View_read_race ->
              checkb (tag ^ ": second endpoint is a recorded reducer-read")
                true
                (List.mem
                   (r.Report.subject, r.Report.second_strand)
                   tr.Trace.reducer_reads);
              checkb (tag ^ ": first frame in replay range") true
                (r.Report.first_frame < stats.Engine.n_frames))
        out.O.races)
    [ ("fig1-buggy", 3); ("racy-read", 5); ("fib-racy", 2) ];
  checkb "some races attributed" true (!checked > 0)

(* ---------- stripes ---------- *)

(* Striping only moves mutexes around; any width must produce the same
   verdict, and non-power-of-two widths round up. *)
let test_stripes () =
  let prog = demo "racy-read" in
  let base = O.run (cfg ~workers:2 ~seed:5 ()) prog in
  List.iter
    (fun s ->
      let out = O.run (cfg ~workers:2 ~seed:5 ~stripes:s ()) prog in
      checks
        (Printf.sprintf "stripes=%d verdict" s)
        (O.race_summary base.O.races)
        (O.race_summary out.O.races))
    [ 1; 3; 256 ];
  Alcotest.check_raises "stripes < 1 rejected"
    (Invalid_argument "Online.run: stripes must be >= 1") (fun () ->
      ignore (O.run (cfg ~stripes:0 ()) prog))

let test_config_validation () =
  let prog = demo "fib-racy" in
  Alcotest.check_raises "workers < 1 rejected"
    (Invalid_argument "Online.run: workers must be >= 1") (fun () ->
      ignore (O.run (cfg ~workers:0 ()) prog));
  Alcotest.check_raises "dset rejected"
    (Invalid_argument
       "Online.run: the dset backend is serially anchored (replay-only); \
        online detection requires --reach depa") (fun () ->
      ignore (O.run { (cfg ()) with O.reach = Reach.Dset } prog))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_online_subset_of_exhaustive ~racy:true ~count:25;
      prop_online_subset_of_exhaustive ~racy:false ~count:25;
    ]

let () =
  Alcotest.run "online"
    [
      ("soundness", properties);
      ( "determinism",
        [ Alcotest.test_case "trace/verdict/value" `Quick test_determinism ] );
      ( "integrity",
        [
          Alcotest.test_case "race-free values" `Quick test_value_integrity;
          Alcotest.test_case "demo races found" `Quick test_demo_races_found;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "endpoints match serial replay" `Quick
            test_endpoint_attribution;
          Alcotest.test_case "stripes invariance" `Quick test_stripes;
        ] );
      ( "soak",
        [
          Alcotest.test_case "256 randomized runs" `Slow test_soak;
          Alcotest.test_case "budgets contained" `Quick test_budget_containment;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
    ]
