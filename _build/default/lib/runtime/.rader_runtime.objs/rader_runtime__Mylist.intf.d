lib/runtime/mylist.mli: Engine Reducer
