(* rader — command-line driver for the Rader/OCaml race detectors.

   Subcommands:
     rader check    run a benchmark or demo under a detector + steal spec
     rader coverage run the §7 exhaustive steal-specification enumeration
     rader lint     static reducer-misuse lint over the SP parse tree
     rader chaos    run the fault-containment battery against a program
     rader fuzz     run under simulated work-stealing schedules
     rader sim      work-stealing simulator speedup table
     rader dag      dump the (performance) dag of a program as Graphviz dot

   Exit codes (check / coverage / chaos / lint):
     0  clean — analysis complete, no races
     1  races found
     2  usage error
     3  contained failure / partial coverage: the program under test
        crashed, a monoid contract or steal spec was invalid, or a budget
        ran out — the printed results cover only the completed prefix.
   When both apply, 3 wins over 1: an incomplete analysis is flagged as
   such, and any races found are still printed. *)

open Cmdliner
open Rader_runtime
open Rader_core
open Rader_benchsuite
module Obs = Rader_obs.Obs
module Chrome_trace = Rader_obs.Chrome_trace
module An = Rader_analysis

(* ---------- programs addressable from the CLI ---------- *)

let update_list ctx n list =
  Cilk.call ctx (fun ctx ->
      let red = Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx) in
      Reducer.set_value ctx red list;
      let _ = Cilk.spawn ctx (fun ctx -> ignore ctx) in
      Cilk.parallel_for ctx ~lo:0 ~hi:n (fun ctx i ->
          Reducer.update ctx red (fun c l ->
              Mylist.insert c l i;
              l));
      Cilk.sync ctx;
      Reducer.get_value ctx red)

let fig1 ~buggy ctx =
  let list = Mylist.empty ctx in
  List.iter (Mylist.insert ctx list) [ 10; 20; 30 ];
  let copy = (if buggy then Mylist.shallow_copy else Mylist.deep_copy) ctx list in
  let len = Cilk.spawn ctx (fun ctx -> Mylist.scan ctx list) in
  let _ = update_list ctx 6 copy in
  Cilk.sync ctx;
  Cilk.get ctx len

let racy_read ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  ignore
    (Cilk.spawn ctx (fun ctx ->
         Cilk.parallel_for ctx ~lo:1 ~hi:33 (fun ctx i -> Rmonoid.add ctx r i)));
  let v = Rmonoid.int_cell_value ctx r in
  Cilk.sync ctx;
  v

(* Word count with a dictionary reducer (examples/wordcount.ml as an
   addressable program): associative monoid over count maps, clean under
   every schedule. *)
let wordcount ~scale ctx =
  let vocab = [| "the"; "reducer"; "view"; "steal"; "race"; "cilk" |] in
  let n = max 64 (int_of_float (scale *. 4000.)) in
  let m = Rader_monoid.Monoids.counter () in
  Cilk.call ctx (fun ctx ->
      let counts = Reducer.create ctx (Rmonoid.of_pure m) ~init:[] in
      Cilk.parallel_for ~grain:16 ctx ~lo:0 ~hi:n (fun ctx i ->
          Reducer.update ctx counts (fun _ c ->
              m.Rader_monoid.Monoid.combine c
                [ (vocab.((i * 7) mod Array.length vocab), 1) ]));
      Cilk.sync ctx;
      List.fold_left (fun acc (_, c) -> acc + c) 0 (Reducer.get_value ctx counts))

(* Parallel game-tree search with an arg-max reducer (examples/minimax.ml
   as an addressable program): deterministic best move under every
   schedule thanks to the reducer's serial-order guarantee. *)
let minimax_demo ~scale ctx =
  let branching = 4 in
  let depth = 4 + int_of_float (scale *. 4.) in
  let leaf_value path =
    let h = List.fold_left (fun acc m -> (acc * 31) + m + 17) 1 path in
    (h * 2654435761) land 1023
  in
  let rec minimax path d maximizing =
    if d = 0 then leaf_value path
    else begin
      let best = ref (if maximizing then min_int else max_int) in
      for m = 0 to branching - 1 do
        let v = minimax (m :: path) (d - 1) (not maximizing) in
        if maximizing then best := max !best v else best := min !best v
      done;
      !best
    end
  in
  Cilk.call ctx (fun ctx ->
      let am = Rader_monoid.Monoids.arg_max () in
      let best = Reducer.create ctx (Rmonoid.of_pure am) ~init:None in
      Cilk.parallel_for ctx ~lo:0 ~hi:branching (fun ctx mv ->
          let score = minimax [ mv ] (depth - 1) false in
          Reducer.update ctx best (fun _ b ->
              am.Rader_monoid.Monoid.combine b (Some (score, mv))));
      Cilk.sync ctx;
      match Reducer.get_value ctx best with
      | Some (score, mv) -> (score * 10) + mv
      | None -> -1)

let demo_names =
  [ "fig1-buggy"; "fig1-fixed"; "racy-read"; "nqueens"; "wordcount"; "minimax" ]

let program_names () = demo_names @ Suite.names

let resolve_program ~scale name : Engine.ctx -> int =
  match name with
  | "fig1-buggy" -> fig1 ~buggy:true
  | "fig1-fixed" -> fig1 ~buggy:false
  | "racy-read" -> racy_read
  | "wordcount" -> wordcount ~scale
  | "minimax" -> minimax_demo ~scale
  | "nqueens" ->
      (Bm_nqueens.bench ~n:(7 + int_of_float scale) ~spawn_depth:3).Bench_def.cilk
  | name -> (
      match Suite.find ~scale name with
      | b -> b.Bench_def.cilk
      | exception Not_found ->
          Printf.eprintf "unknown program %S; try one of: %s\n" name
            (String.concat ", " (program_names ()));
          exit 2)

(* ---------- common options ---------- *)

let program_arg =
  let doc =
    "Program to analyze: a benchmark ("
    ^ String.concat ", " Suite.names
    ^ ") or a demo (" ^ String.concat ", " demo_names ^ ")."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let scale_arg =
  Arg.(value & opt float 0.25 & info [ "scale" ] ~docv:"X" ~doc:"Workload scale factor.")

let seed_arg =
  Arg.(value & opt int 20150613 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let spec_arg =
  let doc =
    "Steal specification: $(b,none), $(b,all), $(b,random) (with --density), or a \
     comma-separated list of sync-block continuation indices, e.g. $(b,1,2,3)."
  in
  Arg.(value & opt string "none" & info [ "steal"; "s" ] ~docv:"SPEC" ~doc)

let density_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "density" ] ~docv:"P" ~doc:"Steal probability for --steal random.")

let parse_spec ~seed ~density = function
  | "none" -> Steal_spec.none
  | "all" -> Steal_spec.all ()
  | "random" -> Steal_spec.random ~seed ~density ()
  | s -> (
      try
        let idxs = List.map int_of_string (String.split_on_char ',' s) in
        Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly idxs
      with _ ->
        Printf.eprintf "cannot parse steal spec %S\n" s;
        exit 2)

let detector_arg =
  let detector_conv =
    Arg.enum
      [
        ("peerset", `Peerset);
        ("spbags", `Spbags);
        ("sporder", `Sporder);
        ("offsetspan", `Offsetspan);
        ("sp+", `Spplus);
      ]
  in
  Arg.(
    value
    & opt detector_conv `Spplus
    & info [ "detector"; "d" ] ~docv:"NAME"
        ~doc:
          "Detector: $(b,peerset), $(b,spbags), $(b,sporder), $(b,offsetspan) \
           or $(b,sp+).")

(* ---------- observability options (check / coverage) ---------- *)

let metrics_arg =
  let fmt = Arg.enum [ ("table", `Table); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Table) (some fmt) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Print detector operation counters after the analysis: \
           $(b,table) (the default when the flag is given bare) or \
           $(b,json) (one object on stdout, for scripts).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the analysis — load it \
           in Perfetto or chrome://tracing. Implies counter collection.")

let metrics_json counters phases =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"counters\":";
  Buffer.add_string b (Obs.to_json_string counters);
  Buffer.add_string b ",\"phases\":{";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S:%.6f" name s))
    phases;
  Buffer.add_string b "}}";
  Buffer.contents b

let print_metrics fmt counters ~phases =
  match fmt with
  | `Json -> print_endline (metrics_json counters phases)
  | `Table ->
      print_string (Obs.to_table_string counters);
      List.iter
        (fun (name, s) -> Printf.printf "phase %-10s %10.6f s\n" name s)
        phases

(* ---------- check ---------- *)

let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Abort a run (exit 3) after N engine events (strand starts + \
           instrumented accesses); results cover the completed prefix.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-s" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget in seconds; on expiry the run is contained \
           (exit 3) and results cover the completed prefix.")

let print_races races =
  Printf.printf "%d race(s):\n" (List.length races);
  List.iter (fun r -> Printf.printf "  %s\n" (Report.to_string r)) races

let do_check program scale seed spec_str density detector max_events deadline_s
    metrics trace_out =
  let spec = parse_spec ~seed ~density spec_str in
  let prog = resolve_program ~scale program in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  let eng = Engine.create ~spec ?max_events ?deadline () in
  let races =
    match detector with
    | `Peerset ->
        let d = Peer_set.attach eng in
        fun () -> Peer_set.races d
    | `Spbags ->
        let d = Sp_bags.attach eng in
        fun () -> Sp_bags.races d
    | `Sporder ->
        let d = Sp_order.attach eng in
        fun () -> Sp_order.races d
    | `Offsetspan ->
        let d = Offset_span.attach eng in
        fun () -> Offset_span.races d
    | `Spplus ->
        let d = Sp_plus.attach eng in
        fun () -> Sp_plus.races d
  in
  let obs_on = metrics <> None || trace_out <> None in
  let obs_was = Obs.enabled () in
  if obs_on then Obs.set_enabled true;
  let t0_us = Obs.now_us () in
  let snap = if obs_on then Some (Obs.snapshot ()) else None in
  let verdict = Engine.run_result eng prog in
  let t1_us = Obs.now_us () in
  Obs.set_enabled obs_was;
  let delta = Option.map Obs.since snap in
  let stats = Engine.stats eng in
  (match verdict with
  | Ok value -> Printf.printf "program %s finished (result %d)\n" program value
  | Error _ -> Printf.printf "program %s did not finish\n" program);
  Printf.printf "%d frames, %d spawns, %d steals, %d reduce ops, %d accesses\n"
    stats.Engine.n_frames stats.Engine.n_spawns stats.Engine.n_steals
    stats.Engine.n_reduce_calls
    (stats.Engine.n_reads + stats.Engine.n_writes);
  let races = races () in
  (match races with
  | [] -> print_endline "no races detected"
  | races -> print_races races);
  (match (delta, metrics) with
  | Some c, Some fmt ->
      print_metrics fmt c ~phases:[ ("run", (t1_us -. t0_us) /. 1e6) ]
  | _ -> ());
  (match (delta, trace_out) with
  | Some c, Some path ->
      let tr = Chrome_trace.create () in
      Chrome_trace.set_process_name tr (Printf.sprintf "rader check %s" program);
      Chrome_trace.set_thread_name tr ~tid:0 "main";
      let detector_name =
        match detector with
        | `Peerset -> "peerset"
        | `Spbags -> "spbags"
        | `Sporder -> "sporder"
        | `Offsetspan -> "offsetspan"
        | `Spplus -> "sp+"
      in
      Chrome_trace.add_complete ~cat:"run"
        ~args:[ ("spec", spec_str); ("detector", detector_name) ]
        tr ~name:program ~tid:0 ~ts_us:t0_us ~dur_us:(t1_us -. t0_us) ();
      Chrome_trace.add_counter tr ~name:"counters" ~tid:0 ~ts_us:t1_us
        (Obs.to_assoc c);
      Chrome_trace.save tr path;
      Printf.printf "wrote %s\n" path
  | _ -> ());
  match verdict with
  | Ok _ -> if races = [] then 0 else 1
  | Error f ->
      Printf.printf "contained failure: %s\n" (Diag.to_string f);
      if races <> [] then
        print_endline "(the races above cover the completed prefix only)";
      3

let check_cmd =
  let doc = "Run a program under a detector and steal specification." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const do_check $ program_arg $ scale_arg $ seed_arg $ spec_arg $ density_arg
      $ detector_arg $ max_events_arg $ deadline_arg $ metrics_arg $ trace_out_arg)

(* ---------- coverage ---------- *)

let do_coverage program scale verbose max_specs max_events deadline_s jobs prune
    metrics trace_out =
  if jobs < 0 then begin
    Printf.eprintf "--jobs must be >= 0 (0 = one worker per core)\n";
    exit 2
  end;
  let prog = resolve_program ~scale program in
  let with_obs = metrics <> None || trace_out <> None in
  let res =
    Coverage.exhaustive_check ?max_specs ?max_events ?deadline:deadline_s ~jobs
      ~with_obs ~prune prog
  in
  Printf.printf "profile: K=%d D=%d spawns=%d; %d steal specifications (%d run)\n"
    res.Coverage.prof.Coverage.k res.Coverage.prof.Coverage.d
    res.Coverage.prof.Coverage.n_spawns res.Coverage.n_specs res.Coverage.n_run;
  if prune then begin
    Printf.printf
      "pruned: %d of %d specification(s) provably redundant (k_rel=%d)\n"
      res.Coverage.n_pruned res.Coverage.n_specs
      res.Coverage.prof.Coverage.k_rel;
    if verbose then
      List.iter
        (fun (d : An.Prune.decision) ->
          if not d.An.Prune.d_kept then
            Printf.printf "  - %s: %s\n" d.An.Prune.d_spec.Steal_spec.name
              d.An.Prune.d_reason)
        (An.Prune.family res.Coverage.prof)
  end;
  if verbose then
    List.iter
      (fun ((spec : Steal_spec.t), locs) ->
        if locs <> [] then
          Printf.printf "  %s -> %d racy location(s)\n" spec.Steal_spec.name
            (List.length locs))
      res.Coverage.per_spec;
  (match res.Coverage.obs with
  | None -> ()
  | Some o ->
      (match metrics with
      | Some fmt ->
          print_metrics fmt o.Coverage.obs_counters ~phases:o.Coverage.obs_phases
      | None -> ());
      (match trace_out with
      | Some path ->
          let tr = Chrome_trace.create () in
          Chrome_trace.set_process_name tr
            (Printf.sprintf "rader coverage %s" program);
          let named = Hashtbl.create 8 in
          List.iter
            (fun (s : Coverage.span) ->
              if not (Hashtbl.mem named s.Coverage.span_worker) then begin
                Hashtbl.add named s.Coverage.span_worker ();
                Chrome_trace.set_thread_name tr ~tid:s.Coverage.span_worker
                  (Printf.sprintf "worker %d" s.Coverage.span_worker)
              end;
              Chrome_trace.add_complete ~cat:"replay" tr
                ~name:s.Coverage.span_spec ~tid:s.Coverage.span_worker
                ~ts_us:s.Coverage.span_t0_us
                ~dur_us:(s.Coverage.span_t1_us -. s.Coverage.span_t0_us) ())
            o.Coverage.obs_spans;
          Chrome_trace.add_counter tr ~name:"counters" ~tid:0
            ~ts_us:(Obs.now_us ())
            (Obs.to_assoc o.Coverage.obs_counters);
          Chrome_trace.save tr path;
          Printf.printf "wrote %s\n" path
      | None -> ()));
  let race_code =
    match res.Coverage.reports with
    | [] ->
        print_endline "no determinacy races under any specification that ran";
        0
    | reports ->
        Printf.printf "%d racy location(s):\n" (List.length reports);
        List.iter
          (fun r ->
            Printf.printf "  %s\n" (Report.to_string r);
            match Coverage.witness_spec res r.Report.subject with
            | Some spec ->
                Printf.printf "    reproduce with: --steal %s\n" spec.Steal_spec.name
            | None -> ())
          reports;
        1
  in
  if res.Coverage.complete then race_code
  else begin
    Printf.printf
      "PARTIAL COVERAGE: %d specification(s) incomplete — the §7 guarantee \
       does not hold for this sweep\n"
      (List.length res.Coverage.incomplete);
    List.iter
      (fun (name, f) -> Printf.printf "  %s: %s\n" name (Diag.to_string f))
      (let rec firstn n = function
         | x :: rest when n > 0 -> x :: firstn (n - 1) rest
         | _ -> []
       in
       firstn 10 res.Coverage.incomplete);
    (let n = List.length res.Coverage.incomplete in
     if n > 10 then Printf.printf "  ... and %d more\n" (n - 10));
    3
  end

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-specification results.")

let max_specs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-specs" ] ~docv:"N"
        ~doc:
          "Attempt at most N steal specifications; the rest are reported \
           as incomplete (exit 3).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the steal-specification sweep across N worker domains \
           ($(b,0) = one per core). Results are merged in specification \
           order, so the report is identical for every N.")

let prune_arg =
  Arg.(
    value
    & flag
    & info [ "prune" ]
        ~doc:
          "Drop steal specifications that provably cannot elicit a new \
           view-aware strand (see DESIGN.md §10) before sweeping. The \
           verdict — racy locations and reports — is unchanged; only \
           redundant replays are skipped.")

let coverage_cmd =
  let doc = "Exhaustively check every possible view-aware strand (paper §7)." in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(
      const do_coverage $ program_arg $ scale_arg $ verbose_arg $ max_specs_arg
      $ max_events_arg $ deadline_arg $ jobs_arg $ prune_arg $ metrics_arg
      $ trace_out_arg)

(* ---------- lint ---------- *)

let do_lint program all scale json dot_out baseline write_baseline =
  let programs =
    match (program, all) with
    | Some p, false -> [ p ]
    | None, true -> program_names ()
    | Some _, true ->
        Printf.eprintf "PROGRAM and --all are mutually exclusive\n";
        exit 2
    | None, false ->
        Printf.eprintf "need a PROGRAM or --all\n";
        exit 2
  in
  let failures = ref 0 in
  let results =
    List.filter_map
      (fun name ->
        let prog = resolve_program ~scale name in
        match An.Ir.of_program prog with
        | Error f ->
            Printf.printf "%s: contained failure: %s\n" name (Diag.to_string f);
            incr failures;
            None
        | Ok ir ->
            (* every lint run doubles as a static/dynamic agreement check *)
            (match An.Verdict.cross_check prog ir with
            | Ok () -> ()
            | Error msg ->
                Printf.printf "%s: %s\n" name msg;
                incr failures);
            Some (name, ir, An.Lint.run ~program:prog ir))
      programs
  in
  let multi = List.length programs > 1 in
  List.iter
    (fun (name, _, findings) ->
      if json then print_string (An.Lint.to_json ~program:name findings ^ "\n")
      else begin
        if multi then Printf.printf "== %s ==\n" name;
        print_string (An.Lint.to_table findings)
      end)
    results;
  (match (dot_out, results) with
  | Some path, [ (_, ir, findings) ] ->
      let oc = open_out path in
      output_string oc (An.Lint.to_dot ir findings);
      close_out oc;
      Printf.printf "wrote %s\n" path
  | Some _, _ ->
      Printf.eprintf "--dot needs exactly one successfully linted program\n";
      exit 2
  | None, _ -> ());
  let lines =
    List.concat_map
      (fun (name, _, findings) -> An.Lint.baseline_lines ~program:name findings)
      results
  in
  (match write_baseline with
  | Some path ->
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      Printf.printf "wrote %d baseline line(s) to %s\n" (List.length lines) path
  | None -> ());
  let n_findings =
    List.fold_left (fun acc (_, _, fs) -> acc + List.length fs) 0 results
  in
  if !failures > 0 then 3
  else
    match baseline with
    | Some path ->
        let expected =
          let ic = open_in path in
          let rec loop acc =
            match input_line ic with
            | line -> loop (if line = "" then acc else line :: acc)
            | exception End_of_file ->
                close_in ic;
                List.rev acc
          in
          loop []
        in
        let missing = List.filter (fun l -> not (List.mem l lines)) expected in
        let extra = List.filter (fun l -> not (List.mem l expected)) lines in
        if missing = [] && extra = [] then begin
          Printf.printf "lint baseline OK (%d finding(s))\n" n_findings;
          0
        end
        else begin
          List.iter (fun l -> Printf.printf "-%s\n" l) missing;
          List.iter (fun l -> Printf.printf "+%s\n" l) extra;
          Printf.printf
            "lint baseline DRIFT: %d missing, %d new (regen with \
             --write-baseline)\n"
            (List.length missing) (List.length extra);
          1
        end
    | None -> if n_findings > 0 then 1 else 0

let lint_program_arg =
  let doc = "Program to lint (omit with $(b,--all))." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let lint_all_arg =
  Arg.(
    value & flag & info [ "all" ] ~doc:"Lint every benchmark and demo program.")

let lint_json_arg =
  Arg.(
    value
    & flag
    & info [ "json" ] ~doc:"Emit findings as JSON, one object per program.")

let lint_dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the SP parse tree with finding-bearing strands colored \
           (single-program mode only).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Compare findings against a checked-in expected-findings file; \
           exit 1 on any drift.")

let write_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:"Write the current findings as a baseline file.")

let lint_cmd =
  let doc =
    "Statically lint a program for reducer misuse (rules R001-R005) over \
     the canonical SP parse tree of one recorded run."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const do_lint $ lint_program_arg $ lint_all_arg $ scale_arg $ lint_json_arg
      $ lint_dot_arg $ baseline_arg $ write_baseline_arg)

(* ---------- chaos ---------- *)

let do_chaos program scale =
  let prog = resolve_program ~scale program in
  let outcomes = Rader_chaos.Chaos.run_all prog in
  List.iter
    (fun o -> print_endline (Rader_chaos.Chaos.outcome_to_string o))
    outcomes;
  let bad = List.filter (fun o -> not (Rader_chaos.Chaos.ok o)) outcomes in
  if bad = [] then begin
    Printf.printf "all %d perturbations contained\n" (List.length outcomes);
    0
  end
  else begin
    Printf.printf "%d of %d perturbations NOT contained\n" (List.length bad)
      (List.length outcomes);
    3
  end

let chaos_cmd =
  let doc =
    "Perturb a program with every fault class (raising strands, raising \
     reduce/identity, non-associative monoid, invalid spec, budget \
     blowouts) and verify the pipeline contains each one."
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const do_chaos $ program_arg $ scale_arg)

(* ---------- fuzz ---------- *)

let do_fuzz program scale seed runs workers =
  let prog = resolve_program ~scale program in
  let seeds = List.init runs (fun i -> seed + i) in
  let outs = Rader_sched.Schedule_gen.fuzz prog ~workers ~seeds in
  let values = List.sort_uniq compare (List.map snd outs) in
  Printf.printf "%d schedules (%d workers) -> %d distinct result(s)\n"
    (List.length outs) workers (List.length values);
  List.iter
    (fun v ->
      let names =
        List.filter_map (fun (n, v') -> if v = v' then Some n else None) outs
      in
      Printf.printf "  %d  (%d schedules, e.g. %s)\n" v (List.length names)
        (List.hd names))
    values;
  if List.length values > 1 then 1 else 0

let runs_arg =
  Arg.(value & opt int 16 & info [ "runs"; "n" ] ~docv:"N" ~doc:"Number of schedules.")

let workers_arg =
  Arg.(value & opt int 8 & info [ "workers"; "p" ] ~docv:"P" ~doc:"Simulated workers.")

let fuzz_cmd =
  let doc = "Run under randomized simulated work-stealing schedules." in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(const do_fuzz $ program_arg $ scale_arg $ seed_arg $ runs_arg $ workers_arg)

(* ---------- sim ---------- *)

let do_sim program scale seed =
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng prog);
  Printf.printf "workers  makespan  speedup  steals\n";
  let t1 = ref 0 in
  List.iter
    (fun p ->
      let res = Rader_sched.Wsim.simulate ~workers:p ~seed eng in
      if p = 1 then t1 := res.Rader_sched.Wsim.makespan;
      Printf.printf "%7d %9d %8.2f %7d\n" p res.Rader_sched.Wsim.makespan
        (float_of_int !t1 /. float_of_int res.Rader_sched.Wsim.makespan)
        res.Rader_sched.Wsim.n_steals)
    [ 1; 2; 4; 8; 16; 32 ];
  0

let sim_cmd =
  let doc = "Simulate randomized work stealing over the recorded dag." in
  Cmd.v (Cmd.info "sim" ~doc) Term.(const do_sim $ program_arg $ scale_arg $ seed_arg)

(* ---------- dag ---------- *)

let do_dag program scale seed spec_str density output =
  let spec = parse_spec ~seed ~density spec_str in
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~spec ~record:true () in
  ignore (Engine.run eng prog);
  let dot = Rader_dag.Dag.to_dot (Option.get (Engine.dag eng)) in
  (match output with
  | None -> print_string dot
  | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write dot to FILE instead of stdout.")

let dag_cmd =
  let doc = "Dump the performance dag of an execution as Graphviz dot." in
  Cmd.v
    (Cmd.info "dag" ~doc)
    Term.(
      const do_dag $ program_arg $ scale_arg $ seed_arg $ spec_arg $ density_arg
      $ output_arg)

(* ---------- tree: canonical SP parse tree (paper Fig. 4) ---------- *)

let do_tree program scale output =
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng prog);
  let tree = Trace.sp_tree (Trace.of_engine eng) in
  let dot = Rader_dag.Sp_tree.to_dot tree in
  (match output with
  | None -> print_string dot
  | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

let tree_cmd =
  let doc = "Dump the canonical SP parse tree of the serial execution as dot." in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const do_tree $ program_arg $ scale_arg $ output_arg)

(* ---------- record / oracle (offline analysis of saved traces) ---------- *)

let do_record program scale seed spec_str density output =
  let spec = parse_spec ~seed ~density spec_str in
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~spec ~record:true () in
  ignore (Engine.run eng prog);
  let tr = Trace.of_engine eng in
  Trace.save tr output;
  let stats = Engine.stats eng in
  Printf.printf "recorded %s under %s: %d strands, %d accesses -> %s\n" program
    spec_str stats.Engine.n_strands
    (stats.Engine.n_reads + stats.Engine.n_writes)
    output;
  0

let record_output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Trace file to write.")

let record_cmd =
  let doc = "Execute a program with full recording and save the trace." in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(
      const do_record $ program_arg $ scale_arg $ seed_arg $ spec_arg $ density_arg
      $ record_output_arg)

let do_oracle path =
  let tr = Trace.load path in
  let vr = Oracle.view_read_races_t tr in
  let dr = Oracle.determinacy_races_t tr in
  Printf.printf "trace: %d strands, %d accesses, %d merges\n"
    (Rader_dag.Dag.n_strands tr.Trace.dag)
    (List.length tr.Trace.accesses)
    (List.length tr.Trace.merges);
  Printf.printf "view-read races: %d reducer(s)%s\n" (List.length vr)
    (if vr = [] then ""
     else " — " ^ String.concat ", " (List.map string_of_int vr));
  Printf.printf "determinacy races: %d location(s)%s\n" (List.length dr)
    (if dr = [] then ""
     else
       " — "
       ^ String.concat ", "
           (List.map (fun l -> Printf.sprintf "%d (%s)" l (Trace.loc_label tr l)) dr));
  if vr = [] && dr = [] then 0 else 1

let trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let oracle_cmd =
  let doc = "Run the brute-force race oracles on a saved trace." in
  Cmd.v (Cmd.info "oracle" ~doc) Term.(const do_oracle $ trace_arg)

let () =
  let doc = "race detection for Cilk-style programs that use reducer hyperobjects" in
  let info = Cmd.info "rader" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           check_cmd;
           coverage_cmd;
           lint_cmd;
           chaos_cmd;
           fuzz_cmd;
           sim_cmd;
           dag_cmd;
           tree_cmd;
           record_cmd;
           oracle_cmd;
         ])
  in
  (* cmdliner's 124/125 for CLI and internal errors fold into the
     documented usage-error code *)
  exit (if code = Cmd.Exit.cli_error || code = Cmd.Exit.internal_error then 2 else code)
