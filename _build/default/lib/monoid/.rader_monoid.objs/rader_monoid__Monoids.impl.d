lib/monoid/monoids.ml: List Monoid Printf
