lib/benchsuite/bm_ferret.ml: Array Bench_def Buffer Cell Cilk List Printf Rader_runtime Rader_support Reducer Rmonoid String Workloads
