(* Differential dispatch parity: the defunctionalized tool path vs the
   seed's closure-record path.

   The hot-path overhaul changed HOW events reach the detectors — a
   variant match with span batching instead of a record of closures
   invoked per access — while promising it changed nothing observable.
   This suite drives randomly generated Cilk programs through both
   dispatch shapes under a family of steal specifications:

   - the {e variant} leg attaches [Tool.chain (Sp_plus) (Peer_set)]
     directly, so the engine uses monomorphic dispatch and batches
     same-strand access runs into span events;
   - the {e extern} leg wraps the very same tool value as
     [Tool.extern (Tool.hooks_of tool)], forcing every event through the
     seed's closure record and disabling span batching.

   Both legs must agree exactly on: the program result, every engine
   counter, a structural fingerprint of the recorded trace (frames,
   accesses, merges, reducer reads, spawns), both detectors' reports
   (full strings, not just verdicts), SP+'s racy locations, and the Obs
   operation totals (disjoint-set, shadow, reachability work) — the last
   one proving the detectors do the same WORK, not merely reach the same
   verdicts. *)

open Rader_runtime
open Rader_core
module G = Rader_testkit.Gen_program
module Obs = Rader_obs.Obs

(* Deterministic spec family, mirroring test_property's: serial, all
   continuations, eager/at-sync reduce policies, Bernoulli and explicit
   local indices. *)
let specs =
  [
    Steal_spec.none;
    Steal_spec.all ();
    Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ();
    Steal_spec.random ~seed:11 ~density:0.4 ();
    Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 1; 2 ];
  ]

type leg = {
  l_result : int;
  l_stats : Engine.stats;
  l_trace : int;
  l_sp_reports : string list;
  l_peer_reports : string list;
  l_sp_racy : int list;
  l_obs : (string * int) list;
}

let trace_fingerprint eng =
  Hashtbl.hash
    ( Engine.accesses eng,
      Engine.frames eng,
      Engine.merges eng,
      Engine.reducer_reads eng,
      Engine.spawn_log eng )

let run_leg ~extern p spec =
  let eng = Engine.create ~spec ~record:true () in
  let sp = Sp_plus.create eng in
  let peer = Peer_set.create eng in
  let tool = Tool.chain (Sp_plus.tool sp) (Peer_set.tool peer) in
  let tool = if extern then Tool.extern (Tool.hooks_of tool) else tool in
  Engine.set_tool eng tool;
  Obs.set_enabled true;
  let before = Obs.snapshot () in
  let result = Engine.run eng (G.interpret p) in
  let obs = Obs.to_assoc (Obs.since before) in
  Obs.set_enabled false;
  {
    l_result = result;
    l_stats = Engine.stats eng;
    l_trace = trace_fingerprint eng;
    l_sp_reports = List.map Report.to_string (Sp_plus.races sp);
    l_peer_reports = List.map Report.to_string (Peer_set.races peer);
    l_sp_racy = Sp_plus.racy_locs sp;
    l_obs = obs;
  }

let first_obs_diff a b =
  List.find_opt
    (fun (k, v) -> match List.assoc_opt k b with Some w -> v <> w | None -> true)
    a

let prop_dispatch_parity =
  QCheck2.Test.make ~name:"variant dispatch = closure-record dispatch"
    ~count:200 ~print:G.print
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      List.for_all
        (fun spec ->
          let v = run_leg ~extern:false p spec in
          let e = run_leg ~extern:true p spec in
          let ctxt = spec.Steal_spec.name in
          if v.l_result <> e.l_result then
            QCheck2.Test.fail_reportf "%s: result %d vs %d" ctxt v.l_result
              e.l_result
          else if v.l_stats <> e.l_stats then
            QCheck2.Test.fail_reportf "%s: engine stats differ" ctxt
          else if v.l_trace <> e.l_trace then
            QCheck2.Test.fail_reportf "%s: trace fingerprints differ" ctxt
          else if v.l_sp_reports <> e.l_sp_reports then
            QCheck2.Test.fail_reportf "%s: SP+ reports differ:\n%s\n-- vs --\n%s"
              ctxt
              (String.concat "\n" v.l_sp_reports)
              (String.concat "\n" e.l_sp_reports)
          else if v.l_peer_reports <> e.l_peer_reports then
            QCheck2.Test.fail_reportf
              "%s: Peer-Set reports differ:\n%s\n-- vs --\n%s" ctxt
              (String.concat "\n" v.l_peer_reports)
              (String.concat "\n" e.l_peer_reports)
          else if v.l_sp_racy <> e.l_sp_racy then
            QCheck2.Test.fail_reportf "%s: racy locs differ" ctxt
          else if v.l_obs <> e.l_obs then (
            match first_obs_diff v.l_obs e.l_obs with
            | Some (k, n) ->
                QCheck2.Test.fail_reportf
                  "%s: Obs totals differ on %s (variant %d vs extern %s)" ctxt
                  k n
                  (match List.assoc_opt k e.l_obs with
                  | Some w -> string_of_int w
                  | None -> "missing")
            | None -> QCheck2.Test.fail_reportf "%s: Obs key sets differ" ctxt)
          else true)
        specs)

(* Same parity for the depa reachability backend: dispatch shape must be
   orthogonal to the precedence representation. *)
let run_leg_depa ~extern p spec =
  let eng = Engine.create ~spec () in
  let sp = Sp_plus.create ~reach:Rader_reach.Reach.Depa eng in
  let tool = Sp_plus.tool sp in
  let tool = if extern then Tool.extern (Tool.hooks_of tool) else tool in
  Engine.set_tool eng tool;
  let result = Engine.run eng (G.interpret p) in
  (result, List.map Report.to_string (Sp_plus.races sp))

let prop_dispatch_parity_depa =
  QCheck2.Test.make ~name:"dispatch parity holds under the depa backend"
    ~count:60 ~print:G.print
    (G.gen ~with_reducers:true ~racy:true)
    (fun p ->
      List.for_all
        (fun spec ->
          let rv, av = run_leg_depa ~extern:false p spec in
          let re, ae = run_leg_depa ~extern:true p spec in
          if rv <> re then
            QCheck2.Test.fail_reportf "%s: result %d vs %d"
              spec.Steal_spec.name rv re
          else if av <> ae then
            QCheck2.Test.fail_reportf "%s: depa reports differ"
              spec.Steal_spec.name
          else true)
        specs)

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_dispatch_parity; prop_dispatch_parity_depa ]
  in
  Alcotest.run "dispatch" [ ("variant-vs-extern", suite) ]
