lib/core/sp_order.ml: Rader_memory Rader_runtime Rader_support Report
