type 'a t = {
  name : string;
  identity : unit -> 'a;
  combine : 'a -> 'a -> 'a;
}

let make ~name ~identity ~combine = { name; identity; combine }

let fold m xs = List.fold_left m.combine (m.identity ()) xs

let fold_tree m xs =
  let rec pairwise = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: y :: rest -> m.combine x y :: pairwise rest
  in
  let rec go = function
    | [] -> m.identity ()
    | [ x ] -> x
    | xs -> go (pairwise xs)
  in
  go xs

let is_associative ~equal m samples =
  let assoc_ok =
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            List.for_all
              (fun c -> equal (m.combine (m.combine a b) c) (m.combine a (m.combine b c)))
              samples)
          samples)
      samples
  in
  let identity_ok =
    List.for_all
      (fun a ->
        equal (m.combine (m.identity ()) a) a && equal (m.combine a (m.identity ())) a)
      samples
  in
  assoc_ok && identity_ok
