(* The Chrome-trace emitter must always produce a loadable file: valid
   JSON with the trace_event envelope, per-tid monotone timestamps even
   when the wall clock steps backwards, properly nested spans, and a
   parseable document for the empty trace. Validated with a small local
   JSON parser so no external dependency is needed. *)

module Chrome_trace = Rader_obs.Chrome_trace

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- a minimal strict JSON parser -------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin advance (); skip_ws () end
  in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let parse_lit lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              advance ();
              let hex = String.sub s !pos 4 in
              pos := !pos + 3;
              Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex) land 0xff))
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
      | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
      | c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && num_char s.[!pos] do advance () done;
    if !pos = start then raise (Bad "empty number");
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "bad object sep %c" c))
          in
          members []
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin advance (); Arr [] end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elems (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "bad array sep %c" c))
          in
          elems []
        end
    | '"' -> Str (parse_string ())
    | 't' -> parse_lit "true" (Bool true)
    | 'f' -> parse_lit "false" (Bool false)
    | 'n' -> parse_lit "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let events_of doc =
  match field "traceEvents" doc with
  | Some (Arr evs) -> evs
  | _ -> Alcotest.fail "no traceEvents array"

let str_field name ev =
  match field name ev with Some (Str s) -> Some s | _ -> None

let num_field name ev =
  match field name ev with Some (Num x) -> Some x | _ -> None

let parse_trace t = parse_json (Chrome_trace.to_string t)

(* --- well-formedness ---------------------------------------------------- *)

let test_empty_trace_loads () =
  let t = Chrome_trace.create () in
  let doc = parse_trace t in
  check "no events" 0 (List.length (events_of doc));
  checkb "displayTimeUnit present" true
    (field "displayTimeUnit" doc = Some (Str "ms"))

let test_event_shape () =
  let t = Chrome_trace.create () in
  Chrome_trace.set_process_name t "proc";
  Chrome_trace.set_thread_name t ~tid:3 "worker 3";
  Chrome_trace.add_complete ~cat:"replay" ~args:[ ("spec", "none") ] t
    ~name:"span" ~tid:3 ~ts_us:10.0 ~dur_us:5.0 ();
  Chrome_trace.add_instant t ~name:"mark" ~tid:3 ~ts_us:20.0 ();
  Chrome_trace.add_counter t ~name:"counters" ~tid:3 ~ts_us:30.0
    [ ("dset_finds", 7); ("events", 9) ];
  let evs = events_of (parse_trace t) in
  check "five events" 5 (List.length evs);
  (* every event carries the required keys, all under one pid *)
  List.iter
    (fun ev ->
      checkb "has name" true (str_field "name" ev <> None);
      checkb "has ph" true (str_field "ph" ev <> None);
      checkb "pid = 1" true (num_field "pid" ev = Some 1.0);
      checkb "has tid" true (num_field "tid" ev <> None))
    evs;
  let phs = List.filter_map (str_field "ph") evs in
  Alcotest.(check (list string)) "phases" [ "M"; "M"; "X"; "i"; "C" ] phs;
  let x = List.nth evs 2 in
  checkb "X has dur" true (num_field "dur" x = Some 5.0);
  checkb "X carries args" true
    (match field "args" x with
    | Some (Obj kvs) -> List.assoc_opt "spec" kvs = Some (Str "none")
    | _ -> false);
  let c = List.nth evs 4 in
  checkb "C args are numeric tracks" true
    (match field "args" c with
    | Some (Obj kvs) ->
        List.assoc_opt "dset_finds" kvs = Some (Num 7.0)
        && List.assoc_opt "events" kvs = Some (Num 9.0)
    | _ -> false)

let test_string_escaping () =
  let nasty = "sp\"an\\ with\nnewline\tand ctrl \001 done" in
  let t = Chrome_trace.create () in
  Chrome_trace.add_instant t ~name:nasty ~tid:0 ~ts_us:1.0 ();
  match events_of (parse_trace t) with
  | [ ev ] -> Alcotest.(check (option string)) "round-trips" (Some nasty) (str_field "name" ev)
  | _ -> Alcotest.fail "expected one event"

(* --- monotone timestamps per tid ---------------------------------------- *)

let test_monotone_per_tid () =
  let t = Chrome_trace.create () in
  (* simulate a backwards wall-clock step on tid 0; tid 1 is independent *)
  Chrome_trace.add_instant t ~name:"a" ~tid:0 ~ts_us:100.0 ();
  Chrome_trace.add_instant t ~name:"b" ~tid:0 ~ts_us:40.0 ();
  Chrome_trace.add_instant t ~name:"c" ~tid:1 ~ts_us:10.0 ();
  Chrome_trace.add_complete t ~name:"d" ~tid:0 ~ts_us:90.0 ~dur_us:(-3.0) ();
  let evs = events_of (parse_trace t) in
  let by_tid tid =
    List.filter_map
      (fun ev ->
        match (num_field "tid" ev, num_field "ts" ev) with
        | Some t', Some ts when t' = float_of_int tid -> Some ts
        | _ -> None)
      evs
  in
  let monotone l = List.sort compare l = l in
  checkb "tid 0 timestamps clamped monotone" true (monotone (by_tid 0));
  checkb "tid 1 unaffected" true (by_tid 1 = [ 10.0 ]);
  (* negative duration clamps to zero *)
  let d =
    List.find (fun ev -> str_field "name" ev = Some "d") evs
  in
  checkb "negative dur clamped" true (num_field "dur" d = Some 0.0)

(* --- span nesting -------------------------------------------------------- *)

let test_span_nesting () =
  let t = Chrome_trace.create () in
  Chrome_trace.begin_span t ~name:"outer" ~tid:0 ~ts_us:0.0;
  Chrome_trace.begin_span t ~name:"inner" ~tid:0 ~ts_us:10.0;
  check "two open" 2 (Chrome_trace.open_spans t 0);
  Chrome_trace.end_span t ~tid:0 ~ts_us:20.0;
  Chrome_trace.end_span t ~tid:0 ~ts_us:30.0;
  check "balanced" 0 (Chrome_trace.open_spans t 0);
  let evs = events_of (parse_trace t) in
  let span name =
    let ev = List.find (fun ev -> str_field "name" ev = Some name) evs in
    (Option.get (num_field "ts" ev), Option.get (num_field "dur" ev))
  in
  let ots, odur = span "outer" and its, idur = span "inner" in
  (* inner lies strictly within outer *)
  checkb "inner starts after outer" true (its >= ots);
  checkb "inner ends before outer" true (its +. idur <= ots +. odur);
  (* unbalanced end is a programming error, not a corrupt file *)
  checkb "end on empty stack rejected" true
    (match Chrome_trace.end_span t ~tid:0 ~ts_us:40.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_with_span_closes_on_exception () =
  let t = Chrome_trace.create () in
  (match
     Chrome_trace.with_span t ~name:"body" ~tid:0 (fun () -> failwith "boom")
   with
  | _ -> Alcotest.fail "expected the exception to escape"
  | exception Failure _ -> ());
  check "stack balanced after exception" 0 (Chrome_trace.open_spans t 0);
  check "span still emitted" 1 (List.length (events_of (parse_trace t)))

(* --- save ---------------------------------------------------------------- *)

let test_save_writes_loadable_file () =
  let t = Chrome_trace.create () in
  Chrome_trace.set_process_name t "rader";
  Chrome_trace.add_complete t ~name:"run" ~tid:0 ~ts_us:0.0 ~dur_us:1.0 ();
  let path = Filename.temp_file "rader_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chrome_trace.save t path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      check "file = to_string" 0 (compare body (Chrome_trace.to_string t));
      check "two events" 2 (List.length (events_of (parse_json body))))

let () =
  Alcotest.run "chrome_trace"
    [
      ( "well-formedness",
        [
          Alcotest.test_case "empty trace loads" `Quick test_empty_trace_loads;
          Alcotest.test_case "event shape" `Quick test_event_shape;
          Alcotest.test_case "string escaping" `Quick test_string_escaping;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "monotone per tid" `Quick test_monotone_per_tid;
          Alcotest.test_case "spans nest" `Quick test_span_nesting;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_closes_on_exception;
        ] );
      ( "save",
        [ Alcotest.test_case "loadable file" `Quick test_save_writes_loadable_file ] );
    ]
