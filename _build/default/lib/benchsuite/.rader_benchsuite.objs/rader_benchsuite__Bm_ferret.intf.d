lib/benchsuite/bm_ferret.mli: Bench_def
