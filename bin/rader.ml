(* rader — command-line driver for the Rader/OCaml race detectors.

   Subcommands:
     rader check    run a benchmark or demo under a detector + steal spec
     rader coverage run the §7 exhaustive steal-specification enumeration
     rader verify   symbolic whole-family verification, witness replays only
     rader lint     static reducer-misuse lint over the SP parse tree
     rader chaos    run the fault-containment battery against a program
     rader fuzz     run under simulated work-stealing schedules
     rader sim      work-stealing simulator speedup table
     rader dag      dump the (performance) dag of a program as Graphviz dot

   Exit codes (check / coverage / chaos / lint):
     0  clean — analysis complete, no races
     1  races found
     2  usage error
     3  contained failure / partial coverage: the program under test
        crashed, a monoid contract or steal spec was invalid, or a budget
        ran out — the printed results cover only the completed prefix.
   When both apply, 3 wins over 1: an incomplete analysis is flagged as
   such, and any races found are still printed. *)

open Cmdliner
open Rader_runtime
open Rader_core
open Rader_benchsuite
module Obs = Rader_obs.Obs
module Chrome_trace = Rader_obs.Chrome_trace
module An = Rader_analysis
module Reach = Rader_reach.Reach

(* ---------- programs addressable from the CLI ---------- *)

(* The registry lives in [Rader_benchsuite.Demos] so the serve daemon
   resolves exactly the same programs; here it only gains the
   exit-on-unknown-name behaviour. *)

let program_names () = Demos.names ()

let resolve_program ~scale name : Engine.ctx -> int =
  match Demos.resolve ~scale name with
  | Ok prog -> prog
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

(* ---------- common options ---------- *)

let program_arg =
  let doc =
    "Program to analyze: a benchmark ("
    ^ String.concat ", " Suite.names
    ^ ") or a demo (" ^ String.concat ", " Demos.demo_names ^ ")."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let scale_arg =
  Arg.(value & opt float 0.25 & info [ "scale" ] ~docv:"X" ~doc:"Workload scale factor.")

let seed_arg =
  Arg.(value & opt int 20150613 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let spec_arg =
  let doc =
    "Steal specification: $(b,none), $(b,all), $(b,random) (with --density), or a \
     comma-separated list of sync-block continuation indices, e.g. $(b,1,2,3)."
  in
  Arg.(value & opt string "none" & info [ "steal"; "s" ] ~docv:"SPEC" ~doc)

let density_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "density" ] ~docv:"P" ~doc:"Steal probability for --steal random.")

let parse_spec ~seed ~density s =
  match Steal_spec.parse ~seed ~density s with
  | Ok spec -> spec
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let detector_arg =
  let detector_conv =
    Arg.enum
      [
        ("peerset", `Peerset);
        ("spbags", `Spbags);
        ("sporder", `Sporder);
        ("offsetspan", `Offsetspan);
        ("sp+", `Spplus);
      ]
  in
  Arg.(
    value
    & opt detector_conv `Spplus
    & info [ "detector"; "d" ] ~docv:"NAME"
        ~doc:
          "Detector: $(b,peerset), $(b,spbags), $(b,sporder), $(b,offsetspan) \
           or $(b,sp+).")

let reach_arg =
  let backend_conv = Arg.enum [ ("dset", Reach.Dset); ("depa", Reach.Depa) ] in
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "reach" ] ~docv:"BACKEND"
        ~doc:
          "Precedence (SP-reachability) backend: $(b,dset) — the paper's \
           disjoint-set bags (the default) — or $(b,depa) — DePa-style \
           strand fingerprints answering queries in worst-case O(1). \
           Verdicts are byte-identical either way; only the cost model \
           changes. Applies to the $(b,sp+), $(b,peerset) and \
           $(b,sporder) detectors ($(b,sporder) keeps its own \
           order-maintenance labels when the flag is absent).")

(* ---------- observability options (check / coverage) ---------- *)

let metrics_arg =
  let fmt = Arg.enum [ ("table", `Table); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Table) (some fmt) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Print detector operation counters after the analysis: \
           $(b,table) (the default when the flag is given bare) or \
           $(b,json) (one object on stdout, for scripts).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON file of the analysis — load it \
           in Perfetto or chrome://tracing. Implies counter collection.")

let metrics_json counters phases =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"counters\":";
  Buffer.add_string b (Obs.to_json_string counters);
  Buffer.add_string b ",\"phases\":{";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S:%.6f" name s))
    phases;
  Buffer.add_string b "}}";
  Buffer.contents b

let print_metrics fmt counters ~phases =
  match fmt with
  | `Json -> print_endline (metrics_json counters phases)
  | `Table ->
      print_string (Obs.to_table_string counters);
      List.iter
        (fun (name, s) -> Printf.printf "phase %-10s %10.6f s\n" name s)
        phases

(* ---------- check ---------- *)

let max_events_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-events" ] ~docv:"N"
        ~doc:
          "Abort a run (exit 3) after N engine events (strand starts + \
           instrumented accesses); results cover the completed prefix.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-s" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget in seconds; on expiry the run is contained \
           (exit 3) and results cover the completed prefix.")

let print_races races =
  Printf.printf "%d race(s):\n" (List.length races);
  List.iter (fun r -> Printf.printf "  %s\n" (Report.to_string r)) races

let do_check program scale seed spec_str density detector reach max_events
    deadline_s metrics trace_out =
  let spec = parse_spec ~seed ~density spec_str in
  let prog = resolve_program ~scale program in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
  let eng = Engine.create ~spec ?max_events ?deadline () in
  let races =
    match detector with
    | `Peerset ->
        let d = Peer_set.attach ?reach eng in
        fun () -> Peer_set.races d
    | `Spbags ->
        let d = Sp_bags.attach eng in
        fun () -> Sp_bags.races d
    | `Sporder ->
        let d = Sp_order.attach ?reach eng in
        fun () -> Sp_order.races d
    | `Offsetspan ->
        let d = Offset_span.attach eng in
        fun () -> Offset_span.races d
    | `Spplus ->
        let d = Sp_plus.attach ?reach eng in
        fun () -> Sp_plus.races d
  in
  let obs_on = metrics <> None || trace_out <> None in
  let obs_was = Obs.enabled () in
  if obs_on then Obs.set_enabled true;
  let t0_us = Obs.now_us () in
  let snap = if obs_on then Some (Obs.snapshot ()) else None in
  let verdict = Engine.run_result eng prog in
  let t1_us = Obs.now_us () in
  Obs.set_enabled obs_was;
  let delta = Option.map Obs.since snap in
  let stats = Engine.stats eng in
  (match verdict with
  | Ok value -> Printf.printf "program %s finished (result %d)\n" program value
  | Error _ -> Printf.printf "program %s did not finish\n" program);
  Printf.printf "%d frames, %d spawns, %d steals, %d reduce ops, %d accesses\n"
    stats.Engine.n_frames stats.Engine.n_spawns stats.Engine.n_steals
    stats.Engine.n_reduce_calls
    (stats.Engine.n_reads + stats.Engine.n_writes);
  let races = races () in
  (match races with
  | [] -> print_endline "no races detected"
  | races -> print_races races);
  (match (delta, metrics) with
  | Some c, Some fmt ->
      print_metrics fmt c ~phases:[ ("run", (t1_us -. t0_us) /. 1e6) ]
  | _ -> ());
  (match (delta, trace_out) with
  | Some c, Some path ->
      let tr = Chrome_trace.create () in
      Chrome_trace.set_process_name tr (Printf.sprintf "rader check %s" program);
      Chrome_trace.set_thread_name tr ~tid:0 "main";
      let detector_name =
        match detector with
        | `Peerset -> "peerset"
        | `Spbags -> "spbags"
        | `Sporder -> "sporder"
        | `Offsetspan -> "offsetspan"
        | `Spplus -> "sp+"
      in
      Chrome_trace.add_complete ~cat:"run"
        ~args:[ ("spec", spec_str); ("detector", detector_name) ]
        tr ~name:program ~tid:0 ~ts_us:t0_us ~dur_us:(t1_us -. t0_us) ();
      Chrome_trace.add_counter tr ~name:"counters" ~tid:0 ~ts_us:t1_us
        (Obs.to_assoc c);
      Chrome_trace.save tr path;
      Printf.printf "wrote %s\n" path
  | _ -> ());
  match verdict with
  | Ok _ -> if races = [] then 0 else 1
  | Error f ->
      Printf.printf "contained failure: %s\n" (Diag.to_string f);
      if races <> [] then
        print_endline "(the races above cover the completed prefix only)";
      3

let check_cmd =
  let doc = "Run a program under a detector and steal specification." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const do_check $ program_arg $ scale_arg $ seed_arg $ spec_arg $ density_arg
      $ detector_arg $ reach_arg $ max_events_arg $ deadline_arg $ metrics_arg
      $ trace_out_arg)

(* ---------- coverage ---------- *)

let do_coverage program scale verbose max_specs max_events deadline_s jobs prune
    reach metrics trace_out =
  if jobs < 0 then begin
    Printf.eprintf "--jobs must be >= 0 (0 = one worker per core)\n";
    exit 2
  end;
  let prog = resolve_program ~scale program in
  let with_obs = metrics <> None || trace_out <> None in
  let res =
    Coverage.exhaustive_check ?max_specs ?max_events ?deadline:deadline_s ~jobs
      ~with_obs ~prune ?reach prog
  in
  Printf.printf "profile: K=%d D=%d spawns=%d; %d steal specifications (%d run)\n"
    res.Coverage.prof.Coverage.k res.Coverage.prof.Coverage.d
    res.Coverage.prof.Coverage.n_spawns res.Coverage.n_specs res.Coverage.n_run;
  if prune then begin
    Printf.printf
      "pruned: %d of %d specification(s) provably redundant (k_rel=%d)\n"
      res.Coverage.n_pruned res.Coverage.n_specs
      res.Coverage.prof.Coverage.k_rel;
    if verbose then
      List.iter
        (fun (d : An.Prune.decision) ->
          if not d.An.Prune.d_kept then
            Printf.printf "  - %s: %s\n" d.An.Prune.d_spec.Steal_spec.name
              d.An.Prune.d_reason)
        (An.Prune.family res.Coverage.prof)
  end;
  if verbose then
    List.iter
      (fun ((spec : Steal_spec.t), locs) ->
        if locs <> [] then
          Printf.printf "  %s -> %d racy location(s)\n" spec.Steal_spec.name
            (List.length locs))
      res.Coverage.per_spec;
  (match res.Coverage.obs with
  | None -> ()
  | Some o ->
      (match metrics with
      | Some fmt ->
          print_metrics fmt o.Coverage.obs_counters ~phases:o.Coverage.obs_phases
      | None -> ());
      (match trace_out with
      | Some path ->
          let tr = Chrome_trace.create () in
          Chrome_trace.set_process_name tr
            (Printf.sprintf "rader coverage %s" program);
          let named = Hashtbl.create 8 in
          List.iter
            (fun (s : Coverage.span) ->
              if not (Hashtbl.mem named s.Coverage.span_worker) then begin
                Hashtbl.add named s.Coverage.span_worker ();
                Chrome_trace.set_thread_name tr ~tid:s.Coverage.span_worker
                  (Printf.sprintf "worker %d" s.Coverage.span_worker)
              end;
              Chrome_trace.add_complete ~cat:"replay" tr
                ~name:s.Coverage.span_spec ~tid:s.Coverage.span_worker
                ~ts_us:s.Coverage.span_t0_us
                ~dur_us:(s.Coverage.span_t1_us -. s.Coverage.span_t0_us) ())
            o.Coverage.obs_spans;
          Chrome_trace.add_counter tr ~name:"counters" ~tid:0
            ~ts_us:(Obs.now_us ())
            (Obs.to_assoc o.Coverage.obs_counters);
          Chrome_trace.save tr path;
          Printf.printf "wrote %s\n" path
      | None -> ()));
  let race_code =
    match res.Coverage.reports with
    | [] ->
        print_endline "no determinacy races under any specification that ran";
        print_endline "racy locs:";
        0
    | reports ->
        Printf.printf "%d racy location(s):\n" (List.length reports);
        List.iter
          (fun r ->
            Printf.printf "  %s\n" (Report.to_string r);
            match Coverage.witness_spec res r.Report.subject with
            | Some spec ->
                Printf.printf "    reproduce with: --steal %s\n" spec.Steal_spec.name
            | None -> ())
          reports;
        (* stable one-line summary, byte-comparable with `rader verify` *)
        Printf.printf "racy locs:%s\n"
          (String.concat ""
             (List.map (fun l -> " " ^ string_of_int l) res.Coverage.racy_locs));
        1
  in
  if res.Coverage.complete then race_code
  else begin
    Printf.printf
      "PARTIAL COVERAGE: %d specification(s) incomplete — the §7 guarantee \
       does not hold for this sweep\n"
      (List.length res.Coverage.incomplete);
    List.iter
      (fun (name, f) -> Printf.printf "  %s: %s\n" name (Diag.to_string f))
      (let rec firstn n = function
         | x :: rest when n > 0 -> x :: firstn (n - 1) rest
         | _ -> []
       in
       firstn 10 res.Coverage.incomplete);
    (let n = List.length res.Coverage.incomplete in
     if n > 10 then Printf.printf "  ... and %d more\n" (n - 10));
    3
  end

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-specification results.")

let max_specs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-specs" ] ~docv:"N"
        ~doc:
          "Attempt at most N steal specifications; the rest are reported \
           as incomplete (exit 3).")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the steal-specification sweep across N worker domains \
           ($(b,0) = one per core). Results are merged in specification \
           order, so the report is identical for every N.")

let prune_arg =
  Arg.(
    value
    & flag
    & info [ "prune" ]
        ~doc:
          "Drop steal specifications that provably cannot elicit a new \
           view-aware strand (see DESIGN.md §10) before sweeping. The \
           verdict — racy locations and reports — is unchanged; only \
           redundant replays are skipped.")

let coverage_cmd =
  let doc = "Exhaustively check every possible view-aware strand (paper §7)." in
  Cmd.v
    (Cmd.info "coverage" ~doc)
    Term.(
      const do_coverage $ program_arg $ scale_arg $ verbose_arg $ max_specs_arg
      $ max_events_arg $ deadline_arg $ jobs_arg $ prune_arg $ reach_arg
      $ metrics_arg $ trace_out_arg)

(* ---------- verify: symbolic whole-spec-space verification ---------- *)

let max_pairs_arg =
  Arg.(
    value
    & opt int 100_000
    & info [ "max-pairs" ] ~docv:"N"
        ~doc:
          "Per-location budget for the symbolic pair scan; past it the \
           scan is reported truncated and the no-steal replay is kept \
           (the verdict stays sound, the symbolic detail partial).")

let do_verify program scale json reach max_pairs jobs max_events deadline_s
    metrics =
  if jobs < 0 then begin
    Printf.eprintf "--jobs must be >= 0 (0 = one worker per core)\n";
    exit 2
  end;
  let prog = resolve_program ~scale program in
  let with_obs = metrics <> None in
  match
    An.Witness.verify ?reach ~max_pairs ~jobs ?max_events ?deadline:deadline_s
      ~with_obs ~name:program prog
  with
  | Error f ->
      Printf.printf "contained failure: %s\n" (Diag.to_string f);
      print_endline
        "(the recorded run crashed; run the enumerated sweep: rader coverage)";
      3
  | Ok w ->
      if json then print_string (An.Witness.to_json w ^ "\n")
      else print_string (An.Witness.to_table w);
      (match (w.An.Witness.res.Coverage.obs, metrics) with
      | Some o, Some fmt ->
          print_metrics fmt o.Coverage.obs_counters ~phases:o.Coverage.obs_phases
      | _ -> ());
      if not w.An.Witness.complete then 3
      else if w.An.Witness.racy_locs <> [] then 1
      else 0

let verify_cmd =
  let doc =
    "Symbolically verify a program across the whole §7 steal-specification \
     family, replaying only the witness specifications; every verdict is \
     replay-confirmed and byte-identical to $(b,rader coverage)."
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the witness table as one JSON object.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc)
    Term.(
      const do_verify $ program_arg $ scale_arg $ json_arg $ reach_arg
      $ max_pairs_arg $ jobs_arg $ max_events_arg $ deadline_arg $ metrics_arg)

(* ---------- lint ---------- *)

let do_lint program all scale reach json dot_out baseline write_baseline =
  let programs =
    match (program, all) with
    | Some p, false -> [ p ]
    | None, true -> program_names ()
    | Some _, true ->
        Printf.eprintf "PROGRAM and --all are mutually exclusive\n";
        exit 2
    | None, false ->
        Printf.eprintf "need a PROGRAM or --all\n";
        exit 2
  in
  let failures = ref 0 in
  let results =
    List.filter_map
      (fun name ->
        let prog = resolve_program ~scale name in
        match An.Ir.of_program prog with
        | Error f ->
            Printf.printf "%s: contained failure: %s\n" name (Diag.to_string f);
            incr failures;
            None
        | Ok ir ->
            (* every lint run doubles as a static/dynamic agreement check *)
            (match An.Verdict.cross_check ?reach prog ir with
            | Ok () -> ()
            | Error msg ->
                Printf.printf "%s: %s\n" name msg;
                incr failures);
            (* R006 needs the symbolic verification result; a crashing
               program just loses that rule (contained above). *)
            let verify =
              match An.Witness.verify ?reach ~name prog with
              | Ok w -> Some w
              | Error _ -> None
            in
            Some (name, ir, An.Lint.run ~program:prog ?verify ir))
      programs
  in
  let multi = List.length programs > 1 in
  List.iter
    (fun (name, _, findings) ->
      if json then print_string (An.Lint.to_json ~program:name findings ^ "\n")
      else begin
        if multi then Printf.printf "== %s ==\n" name;
        print_string (An.Lint.to_table findings)
      end)
    results;
  (match (dot_out, results) with
  | Some path, [ (_, ir, findings) ] ->
      let oc = open_out path in
      output_string oc (An.Lint.to_dot ir findings);
      close_out oc;
      Printf.printf "wrote %s\n" path
  | Some _, _ ->
      Printf.eprintf "--dot needs exactly one successfully linted program\n";
      exit 2
  | None, _ -> ());
  let lines =
    List.concat_map
      (fun (name, _, findings) -> An.Lint.baseline_lines ~program:name findings)
      results
  in
  (match write_baseline with
  | Some path ->
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      Printf.printf "wrote %d baseline line(s) to %s\n" (List.length lines) path
  | None -> ());
  let n_findings =
    List.fold_left (fun acc (_, _, fs) -> acc + List.length fs) 0 results
  in
  if !failures > 0 then 3
  else
    match baseline with
    | Some path ->
        let expected =
          let ic = open_in path in
          let rec loop acc =
            match input_line ic with
            | line -> loop (if line = "" then acc else line :: acc)
            | exception End_of_file ->
                close_in ic;
                List.rev acc
          in
          loop []
        in
        let missing = List.filter (fun l -> not (List.mem l lines)) expected in
        let extra = List.filter (fun l -> not (List.mem l expected)) lines in
        if missing = [] && extra = [] then begin
          Printf.printf "lint baseline OK (%d finding(s))\n" n_findings;
          0
        end
        else begin
          List.iter (fun l -> Printf.printf "-%s\n" l) missing;
          List.iter (fun l -> Printf.printf "+%s\n" l) extra;
          Printf.printf
            "lint baseline DRIFT: %d missing, %d new (regen with \
             --write-baseline)\n"
            (List.length missing) (List.length extra);
          1
        end
    | None -> if n_findings > 0 then 1 else 0

let lint_program_arg =
  let doc = "Program to lint (omit with $(b,--all))." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let lint_all_arg =
  Arg.(
    value & flag & info [ "all" ] ~doc:"Lint every benchmark and demo program.")

let lint_json_arg =
  Arg.(
    value
    & flag
    & info [ "json" ] ~doc:"Emit findings as JSON, one object per program.")

let lint_dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the SP parse tree with finding-bearing strands colored \
           (single-program mode only).")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Compare findings against a checked-in expected-findings file; \
           exit 1 on any drift.")

let write_baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:"Write the current findings as a baseline file.")

let lint_cmd =
  let doc =
    "Statically lint a program for reducer misuse (rules R001-R006) over \
     the canonical SP parse tree of one recorded run."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const do_lint $ lint_program_arg $ lint_all_arg $ scale_arg $ reach_arg
      $ lint_json_arg $ lint_dot_arg $ baseline_arg $ write_baseline_arg)

(* ---------- chaos ---------- *)

let do_chaos program scale =
  let prog = resolve_program ~scale program in
  let outcomes = Rader_chaos.Chaos.run_all prog in
  List.iter
    (fun o -> print_endline (Rader_chaos.Chaos.outcome_to_string o))
    outcomes;
  let bad = List.filter (fun o -> not (Rader_chaos.Chaos.ok o)) outcomes in
  if bad = [] then begin
    Printf.printf "all %d perturbations contained\n" (List.length outcomes);
    0
  end
  else begin
    Printf.printf "%d of %d perturbations NOT contained\n" (List.length bad)
      (List.length outcomes);
    3
  end

let chaos_cmd =
  let doc =
    "Perturb a program with every fault class (raising strands, raising \
     reduce/identity, non-associative monoid, invalid spec, budget \
     blowouts) and verify the pipeline contains each one."
  in
  Cmd.v (Cmd.info "chaos" ~doc) Term.(const do_chaos $ program_arg $ scale_arg)

(* ---------- fuzz ---------- *)

let do_fuzz program scale seed runs workers =
  let prog = resolve_program ~scale program in
  let seeds = List.init runs (fun i -> seed + i) in
  let outs = Rader_sched.Schedule_gen.fuzz prog ~workers ~seeds in
  let values = List.sort_uniq compare (List.map snd outs) in
  Printf.printf "%d schedules (%d workers) -> %d distinct result(s)\n"
    (List.length outs) workers (List.length values);
  List.iter
    (fun v ->
      let names =
        List.filter_map (fun (n, v') -> if v = v' then Some n else None) outs
      in
      Printf.printf "  %d  (%d schedules, e.g. %s)\n" v (List.length names)
        (List.hd names))
    values;
  if List.length values > 1 then 1 else 0

let runs_arg =
  Arg.(value & opt int 16 & info [ "runs"; "n" ] ~docv:"N" ~doc:"Number of schedules.")

let workers_arg =
  Arg.(value & opt int 8 & info [ "workers"; "p" ] ~docv:"P" ~doc:"Simulated workers.")

let fuzz_cmd =
  let doc = "Run under randomized simulated work-stealing schedules." in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(const do_fuzz $ program_arg $ scale_arg $ seed_arg $ runs_arg $ workers_arg)

(* ---------- sim ---------- *)

let do_sim program scale seed =
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng prog);
  Printf.printf "workers  makespan  speedup  steals\n";
  let t1 = ref 0 in
  List.iter
    (fun p ->
      let res = Rader_sched.Wsim.simulate ~workers:p ~seed eng in
      if p = 1 then t1 := res.Rader_sched.Wsim.makespan;
      Printf.printf "%7d %9d %8.2f %7d\n" p res.Rader_sched.Wsim.makespan
        (float_of_int !t1 /. float_of_int res.Rader_sched.Wsim.makespan)
        res.Rader_sched.Wsim.n_steals)
    [ 1; 2; 4; 8; 16; 32 ];
  0

let sim_cmd =
  let doc = "Simulate randomized work stealing over the recorded dag." in
  Cmd.v (Cmd.info "sim" ~doc) Term.(const do_sim $ program_arg $ scale_arg $ seed_arg)

(* ---------- online: work-stealing runtime with on-the-fly detection ---------- *)

let online_kind_subjects races kind =
  List.filter_map
    (fun r -> if r.Report.kind = kind then Some r.Report.subject else None)
    races
  |> List.sort_uniq compare

(* Serial re-check of an online run: convert its steal trace to a spec and
   run SP+ (determinacy) and Peer-Set (view-reads) under it. *)
let replay_subjects prog spec reach =
  let eng = Engine.create ~spec () in
  let sp = Sp_plus.attach ?reach eng in
  let r1 = Engine.run_result eng (fun ctx -> ignore (prog ctx)) in
  let eng2 = Engine.create ~spec () in
  let pe = Peer_set.attach ?reach eng2 in
  let r2 = Engine.run_result eng2 (fun ctx -> ignore (prog ctx)) in
  let ok = Result.is_ok r1 && Result.is_ok r2 in
  ( Sp_plus.racy_locs sp,
    online_kind_subjects (Peer_set.races pe) Report.View_read_race,
    ok )

let do_online program scale seed runs workers stripes density reach max_events
    deadline_s metrics trace_out no_replay =
  if workers < 1 then begin
    Printf.eprintf "rader online: --workers must be >= 1\n";
    exit 2
  end;
  if runs < 1 then begin
    Printf.eprintf "rader online: --runs must be >= 1\n";
    exit 2
  end;
  (match stripes with
  | Some s when s < 1 ->
      Printf.eprintf "rader online: --stripes must be >= 1\n";
      exit 2
  | _ -> ());
  (match reach with
  | Some Reach.Dset ->
      Printf.eprintf
        "rader online: the dset backend is replay-only (serially anchored \
         bags); online detection requires --reach depa\n";
      exit 2
  | _ -> ());
  let prog = resolve_program ~scale program in
  let obs_on = metrics <> None in
  let obs_was = Obs.enabled () in
  if obs_on then Obs.set_enabled true;
  let t0_us = Obs.now_us () in
  let union : Report.t list ref = ref [] in
  let first_failure = ref None in
  let total_events = ref 0 in
  let total_steals = ref 0 in
  let total_tasks = ref 0 in
  let total_deque = ref 0 in
  let counters = Obs.zero () in
  let racy_trace = ref None in
  let last_trace = ref None in
  for i = 0 to runs - 1 do
    let run_seed = seed + i in
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s in
    let cfg =
      {
        Rader_sched.Online.workers;
        seed = run_seed;
        density;
        reach = Reach.Depa;
        stripes;
        max_events;
        deadline;
        clock = None;
      }
    in
    let out = Rader_sched.Online.run cfg prog in
    let module O = Rader_sched.Online in
    total_events := !total_events + out.O.events;
    total_steals := !total_steals + out.O.n_structural_steals;
    total_tasks := !total_tasks + out.O.n_tasks;
    total_deque := !total_deque + out.O.n_deque_steals;
    Option.iter (fun c -> Obs.add ~into:counters c) out.O.counters;
    last_trace := Some out.O.trace;
    if out.O.races <> [] && !racy_trace = None then
      racy_trace := Some out.O.trace;
    List.iter
      (fun r ->
        if
          not
            (List.exists
               (fun r' ->
                 r'.Report.kind = r.Report.kind
                 && r'.Report.subject = r.Report.subject)
               !union)
        then union := r :: !union)
      out.O.races;
    (match out.O.value with
    | Error f when !first_failure = None -> first_failure := Some f
    | _ -> ());
    Printf.printf
      "run seed=%-6d workers=%d: %3d structural steals, %4d tasks, %3d deque \
       steals, %s%s\n"
      run_seed workers out.O.n_structural_steals out.O.n_tasks
      out.O.n_deque_steals
      (match out.O.value with
      | Ok v -> Printf.sprintf "result %d" v
      | Error f -> Printf.sprintf "contained: %s" (Diag.class_name f))
      (if out.O.races = [] then ""
       else Printf.sprintf ", %d race(s)" (List.length out.O.races));
    (* Serial re-check: the steal trace replayed as a spec must confirm
       every online verdict (the serial detectors may see strictly more —
       they also check reduce-strand accesses). *)
    if (not no_replay) && out.O.races <> [] then begin
      match Steal_trace.to_spec out.O.trace prog with
      | Error msg -> Printf.printf "  replay: %s\n" msg
      | Ok spec ->
          let det_locs, view_reds, ok = replay_subjects prog spec reach in
          let o_det = online_kind_subjects out.O.races Report.Determinacy_race in
          let o_view = online_kind_subjects out.O.races Report.View_read_race in
          let subset a b = List.for_all (fun x -> List.mem x b) a in
          if subset o_det det_locs && subset o_view view_reds then
            Printf.printf "  replay(%d steals): serial detectors confirm%s\n"
              (Steal_trace.n_steals out.O.trace)
              (if ok then "" else " (replay partially contained)")
          else
            Printf.printf
              "  replay: DISAGREEMENT — online %s vs serial determinacy=[%s] \
               view-read=[%s]\n"
              (Rader_sched.Online.race_summary out.O.races)
              (String.concat ";" (List.map string_of_int det_locs))
              (String.concat ";" (List.map string_of_int view_reds))
    end
  done;
  let t1_us = Obs.now_us () in
  Obs.set_enabled obs_was;
  let union =
    List.sort
      (fun a b ->
        match compare a.Report.kind b.Report.kind with
        | 0 -> compare a.Report.subject b.Report.subject
        | c -> c)
      !union
  in
  Printf.printf
    "%d run(s): %d structural steals, %d tasks, %d deque steals, %d events\n"
    runs !total_steals !total_tasks !total_deque !total_events;
  (match union with
  | [] -> print_endline "no races detected"
  | races -> print_races races);
  (match metrics with
  | None -> ()
  | Some fmt ->
      let dt = (t1_us -. t0_us) /. 1e6 in
      Printf.printf "throughput %.0f events/s over %.3f s\n"
        (float_of_int !total_events /. (if dt > 0. then dt else 1e-9))
        dt;
      print_metrics fmt counters ~phases:[ ("online", dt) ]);
  (match (trace_out, if !racy_trace <> None then !racy_trace else !last_trace) with
  | Some path, Some tr ->
      let oc = open_out path in
      output_string oc (Steal_trace.to_string tr);
      close_out oc;
      Printf.printf "wrote %s\n" path
  | _ -> ());
  match !first_failure with
  | Some f ->
      Printf.printf "contained failure: %s\n" (Diag.to_string f);
      3
  | None -> if union = [] then 0 else 1

let online_cmd =
  let doc =
    "Run a program on the real work-stealing runtime (OCaml domains) with \
     on-the-fly detection."
  in
  let online_runs_arg =
    Arg.(
      value & opt int 8
      & info [ "runs"; "n" ] ~docv:"K"
          ~doc:"Number of online runs, with seeds SEED, SEED+1, ...")
  in
  let online_workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers"; "p" ] ~docv:"P" ~doc:"Worker domains (>= 1).")
  in
  let online_stripes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "stripes" ] ~docv:"N"
          ~doc:
            "Shadow-space lock stripes (>= 1, rounded up to a power of \
             two). Default: derived from $(b,--workers). Striping only \
             affects contention, never the verdict.")
  in
  let online_trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the steal trace of the first racy run (or the last run \
             when all are clean) — replayable with $(b,rader check) via \
             the equivalent steal spec.")
  in
  let no_replay_arg =
    Arg.(
      value & flag
      & info [ "no-replay" ]
          ~doc:"Skip the serial re-check of racy runs' steal traces.")
  in
  Cmd.v
    (Cmd.info "online" ~doc)
    Term.(
      const do_online $ program_arg $ scale_arg $ seed_arg $ online_runs_arg
      $ online_workers_arg $ online_stripes_arg $ density_arg $ reach_arg
      $ max_events_arg $ deadline_arg $ metrics_arg $ online_trace_out_arg
      $ no_replay_arg)

(* ---------- dag ---------- *)

let do_dag program scale seed spec_str density output =
  let spec = parse_spec ~seed ~density spec_str in
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~spec ~record:true () in
  ignore (Engine.run eng prog);
  let dot = Rader_dag.Dag.to_dot (Option.get (Engine.dag eng)) in
  (match output with
  | None -> print_string dot
  | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write dot to FILE instead of stdout.")

let dag_cmd =
  let doc = "Dump the performance dag of an execution as Graphviz dot." in
  Cmd.v
    (Cmd.info "dag" ~doc)
    Term.(
      const do_dag $ program_arg $ scale_arg $ seed_arg $ spec_arg $ density_arg
      $ output_arg)

(* ---------- tree: canonical SP parse tree (paper Fig. 4) ---------- *)

let do_tree program scale output =
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng prog);
  let tree = Trace.sp_tree (Trace.of_engine eng) in
  let dot = Rader_dag.Sp_tree.to_dot tree in
  (match output with
  | None -> print_string dot
  | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  0

let tree_cmd =
  let doc = "Dump the canonical SP parse tree of the serial execution as dot." in
  Cmd.v (Cmd.info "tree" ~doc) Term.(const do_tree $ program_arg $ scale_arg $ output_arg)

(* ---------- record / oracle (offline analysis of saved traces) ---------- *)

let do_record program scale seed spec_str density output =
  let spec = parse_spec ~seed ~density spec_str in
  let prog = resolve_program ~scale program in
  let eng = Engine.create ~spec ~record:true () in
  ignore (Engine.run eng prog);
  let tr = Trace.of_engine eng in
  Trace.save tr output;
  let stats = Engine.stats eng in
  Printf.printf "recorded %s under %s: %d strands, %d accesses -> %s\n" program
    spec_str stats.Engine.n_strands
    (stats.Engine.n_reads + stats.Engine.n_writes)
    output;
  0

let record_output_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Trace file to write.")

let record_cmd =
  let doc = "Execute a program with full recording and save the trace." in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(
      const do_record $ program_arg $ scale_arg $ seed_arg $ spec_arg $ density_arg
      $ record_output_arg)

let do_oracle path =
  let tr = Trace.load path in
  let vr = Oracle.view_read_races_t tr in
  let dr = Oracle.determinacy_races_t tr in
  Printf.printf "trace: %d strands, %d accesses, %d merges\n"
    (Rader_dag.Dag.n_strands tr.Trace.dag)
    (List.length tr.Trace.accesses)
    (List.length tr.Trace.merges);
  Printf.printf "view-read races: %d reducer(s)%s\n" (List.length vr)
    (if vr = [] then ""
     else " — " ^ String.concat ", " (List.map string_of_int vr));
  Printf.printf "determinacy races: %d location(s)%s\n" (List.length dr)
    (if dr = [] then ""
     else
       " — "
       ^ String.concat ", "
           (List.map (fun l -> Printf.sprintf "%d (%s)" l (Trace.loc_label tr l)) dr));
  if vr = [] && dr = [] then 0 else 1

let trace_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let oracle_cmd =
  let doc = "Run the brute-force race oracles on a saved trace." in
  Cmd.v (Cmd.info "oracle" ~doc) Term.(const do_oracle $ trace_arg)

(* ---------- serve / submit / loadtest (the daemon) ---------- *)

module Server = Rader_serve.Server
module Sclient = Rader_serve.Client
module Sproto = Rader_serve.Proto
module Sload = Rader_serve.Load

let addr_conv =
  let parse s = Server.parse_addr s |> Result.map_error (fun m -> `Msg m) in
  Arg.conv (parse, fun ppf a -> Format.pp_print_string ppf (Server.addr_to_string a))

let addr_arg =
  Arg.(
    value
    & opt addr_conv (Server.Unix_path "/tmp/rader.sock")
    & info [ "addr"; "a" ] ~docv:"ADDR"
        ~doc:
          "Server address: $(b,unix:PATH) or $(b,tcp:HOST:PORT) \
           ($(b,tcp:127.0.0.1:0) picks a free port).")

let do_serve addr workers queue_depth max_deadline default_deadline
    max_events_cap restart_budget restart_window cache_cap retry_after_ms
    drain_grace chaos chaos_seed reach =
  if workers < 1 || queue_depth < 1 then begin
    Printf.eprintf "--workers and --queue-depth must be >= 1\n";
    exit 2
  end;
  let base = Server.default_config ~addr in
  let cfg =
    {
      base with
      Server.workers;
      queue_depth;
      max_deadline_s = max_deadline;
      default_deadline_s = default_deadline;
      max_events_cap;
      restart_budget;
      restart_window_s = restart_window;
      cache_cap;
      retry_after_ms;
      drain_grace_s = drain_grace;
      reach = Option.value reach ~default:base.Server.reach;
      chaos_cfg =
        (match chaos with
        | None -> None
        | Some rate ->
            Some
              {
                Server.crash_rate = rate;
                stall_rate = rate;
                chaos_seed;
              });
    }
  in
  let t = Server.start cfg in
  Server.install_sigterm t;
  Printf.printf "rader serve: listening on %s (%d worker(s), queue %d)\n%!"
    (Server.addr_to_string (Server.bound_addr t))
    workers queue_depth;
  let flush = Server.wait t in
  Printf.printf "rader serve: drained; final state:\n%s\n%!" flush;
  0

let serve_cmd =
  let doc = "Run the race-checking daemon (SIGTERM drains gracefully)." in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Admission queue bound; beyond it requests are shed.")
  in
  let max_deadline_arg =
    Arg.(
      value & opt float 30.0
      & info [ "max-deadline-s" ] ~docv:"S" ~doc:"Cap on per-request deadlines.")
  in
  let default_deadline_arg =
    Arg.(
      value & opt float 10.0
      & info [ "default-deadline-s" ] ~docv:"S"
          ~doc:"Deadline applied when a request names none.")
  in
  let max_events_cap_arg =
    Arg.(
      value & opt int 20_000_000
      & info [ "max-events-cap" ] ~docv:"N"
          ~doc:"Cap on per-request event budgets.")
  in
  let restart_budget_arg =
    Arg.(
      value & opt int 8
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:"Worker respawns allowed per rolling window before the pool \
                degrades.")
  in
  let restart_window_arg =
    Arg.(
      value & opt float 10.0
      & info [ "restart-window-s" ] ~docv:"S" ~doc:"Restart-budget window.")
  in
  let cache_cap_arg =
    Arg.(
      value & opt int 256
      & info [ "cache-cap" ] ~docv:"N" ~doc:"LRU verdict-cache capacity.")
  in
  let retry_after_arg =
    Arg.(
      value & opt int 50
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Backoff hint attached to shed responses.")
  in
  let drain_grace_arg =
    Arg.(
      value & opt float 10.0
      & info [ "drain-grace-s" ] ~docv:"S"
          ~doc:"Drain wait before leftover queued requests are shed.")
  in
  let chaos_arg =
    Arg.(
      value
      & opt ~vopt:(Some 0.1) (some float) None
      & info [ "chaos" ] ~docv:"RATE"
          ~doc:
            "Inject worker crashes and stalls, each with probability RATE \
             per request (default 0.1 when given bare) — every degradation \
             path becomes reachable deterministically.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 1337
      & info [ "chaos-seed" ] ~docv:"N" ~doc:"Chaos determinism seed.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const do_serve $ addr_arg $ workers_arg $ queue_arg $ max_deadline_arg
      $ default_deadline_arg $ max_events_cap_arg $ restart_budget_arg
      $ restart_window_arg $ cache_cap_arg $ retry_after_arg $ drain_grace_arg
      $ chaos_arg $ chaos_seed_arg $ reach_arg)

let print_verdict (v : Sproto.verdict) =
  (match v.Sproto.v_result with
  | Some r -> Printf.printf "program finished (result %d)%s\n" r
                (if v.Sproto.cached then " [cached]" else "")
  | None ->
      if v.Sproto.cached then print_endline "[cached]");
  Printf.printf "%d of %d specification(s) run\n" v.Sproto.n_run v.Sproto.n_specs;
  (match v.Sproto.races with
  | [] -> print_endline "no races detected"
  | races ->
      Printf.printf "%d race(s):\n" (List.length races);
      List.iter (fun r -> Printf.printf "  %s\n" r) races);
  List.iter
    (fun (cls, msg) -> Printf.printf "contained failure [%s]: %s\n" cls msg)
    v.Sproto.failures;
  match v.Sproto.status with
  | Sproto.Clean -> 0
  | Sproto.Races -> 1
  | Sproto.Partial -> 3

let do_submit addr mode program scale seed spec_str density max_events
    deadline_s prune health shutdown retries =
  match Sclient.connect addr with
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  | Ok c ->
      let finish code =
        Sclient.close c;
        code
      in
      if health then (
        match Sclient.health c with
        | Ok json ->
            print_endline json;
            finish 0
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            finish 2)
      else if shutdown then (
        match Sclient.shutdown c with
        | Ok () ->
            print_endline "server draining";
            finish 0
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            finish 2)
      else
        match program with
        | None ->
            Printf.eprintf "need a PROGRAM (or --health / --shutdown)\n";
            finish 2
        | Some program -> (
            let sub =
              {
                Sproto.kind =
                  (match mode with
                  | `Check -> Sproto.Check
                  | `Coverage -> Sproto.Coverage
                  | `Lint -> Sproto.Lint
                  | `Verify -> Sproto.Verify);
                program;
                scale;
                seed;
                spec = spec_str;
                density;
                max_events;
                deadline_s;
                prune;
              }
            in
            match Sclient.submit ~retries c sub with
            | Error msg ->
                Printf.eprintf "%s\n" msg;
                finish 2
            | Ok (Sclient.Verdict v) -> finish (print_verdict v)
            | Ok (Sclient.Fault msg) ->
                Printf.printf "internal fault: %s\n" msg;
                finish 3
            | Ok (Sclient.Rejected e) ->
                Printf.eprintf "rejected (%d): %s\n" e.Sproto.code e.Sproto.msg;
                finish 2
            | Ok Sclient.Shed ->
                Printf.printf "server busy: shed after %d retries\n" retries;
                finish 4)

let submit_cmd =
  let doc =
    "Submit a check to a running daemon (exit codes match $(b,rader check), \
     plus 4 when shed)."
  in
  let mode_arg =
    let m =
      Arg.enum
        [
          ("check", `Check);
          ("coverage", `Coverage);
          ("lint", `Lint);
          ("verify", `Verify);
        ]
    in
    Arg.(
      value & opt m `Check
      & info [ "mode"; "m" ] ~docv:"MODE"
          ~doc:
            "Request kind: $(b,check), $(b,coverage), $(b,lint) or \
             $(b,verify).")
  in
  let submit_program_arg =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"PROGRAM"
          ~doc:"Program to analyze (omit with --health/--shutdown).")
  in
  let health_arg =
    Arg.(value & flag & info [ "health" ] ~doc:"Print the server's health JSON.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Ask the server to drain and exit.")
  in
  let retries_arg =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Backoff retries when the server sheds (capped exponential \
             with jitter).")
  in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const do_submit $ addr_arg $ mode_arg $ submit_program_arg $ scale_arg
      $ seed_arg $ spec_arg $ density_arg $ max_events_arg $ deadline_arg
      $ prune_arg $ health_arg $ shutdown_arg $ retries_arg)

let do_loadtest addr program scale clients requests malformed_rate seed =
  (* distinct per-request seeds defeat the verdict cache, so the run
     measures the full service path rather than cache lookups *)
  let make i =
    {
      Sproto.kind = Sproto.Check;
      program;
      scale;
      seed = i;
      spec = "none";
      density = 0.5;
      max_events = None;
      deadline_s = None;
      prune = false;
    }
  in
  let res =
    Sload.run ~seed ~malformed_rate ~addr ~clients ~requests_per_client:requests
      ~make ()
  in
  let t = res.Sload.tally in
  Printf.printf
    "%d client(s) x %d request(s): %.1f checks/s over %.2f s\n\
    \  verdicts %d (cached %d)  partials %d  faults %d  sheds %d  rejected %d\n\
    \  malformed sent %d answered %d  transport errors %d\n"
    clients requests res.Sload.checks_per_s res.Sload.elapsed_s t.Sload.verdicts
    t.Sload.cached t.Sload.partials t.Sload.faults t.Sload.sheds
    t.Sload.rejected t.Sload.malformed_sent t.Sload.malformed_answered
    t.Sload.transport_errors;
  if Sload.answered t = t.Sload.sent && t.Sload.transport_errors = 0 then begin
    print_endline "every request answered";
    0
  end
  else begin
    Printf.printf "%d request(s) unanswered\n" (t.Sload.sent - Sload.answered t);
    1
  end

let loadtest_cmd =
  let doc = "Drive a running daemon with many concurrent clients." in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "c"; "clients" ] ~docv:"N" ~doc:"Client threads.")
  in
  let requests_arg =
    Arg.(
      value & opt int 25
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let malformed_arg =
    Arg.(
      value & opt float 0.0
      & info [ "malformed-rate" ] ~docv:"P"
          ~doc:"Probability of preceding a request with a hostile frame.")
  in
  Cmd.v
    (Cmd.info "loadtest" ~doc)
    Term.(
      const do_loadtest $ addr_arg $ program_arg $ scale_arg $ clients_arg
      $ requests_arg $ malformed_arg $ seed_arg)

let () =
  let doc = "race detection for Cilk-style programs that use reducer hyperobjects" in
  let info = Cmd.info "rader" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           check_cmd;
           coverage_cmd;
           verify_cmd;
           lint_cmd;
           chaos_cmd;
           fuzz_cmd;
           online_cmd;
           sim_cmd;
           dag_cmd;
           tree_cmd;
           record_cmd;
           oracle_cmd;
           serve_cmd;
           submit_cmd;
           loadtest_cmd;
         ])
  in
  (* cmdliner's 124/125 for CLI and internal errors fold into the
     documented usage-error code *)
  exit (if code = Cmd.Exit.cli_error || code = Cmd.Exit.internal_error then 2 else code)
