module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr

module Label = struct
  type l = (int * int) array

  let precedes (a : l) (b : l) =
    let na = Array.length a and nb = Array.length b in
    let rec go i =
      if i >= na then true (* a is a prefix of b (or equal): serial *)
      else if i >= nb then false
      else begin
        let oa, sa = a.(i) and ob, sb = b.(i) in
        if oa = ob && sa = sb then go (i + 1)
        else sa = sb && oa mod sa = ob mod sb && oa < ob
      end
    in
    go 0
end

type fstate = {
  fid : int;
  mutable label : Label.l;
  mutable block_base : Label.l; (* label at the start of the sync block *)
  mutable spawned_in_block : bool;
}

type t = {
  eng : Engine.t;
  stack : fstate Dynarr.t;
  labels : Label.l Dynarr.t; (* interning table: shadow stores indices *)
  reader : Shadow.t;
  writer : Shadow.t;
  reader_frame : Shadow.t;
  writer_frame : Shadow.t;
  collector : Report.collector;
}

let create eng =
  {
    eng;
    stack = Dynarr.create ();
    labels = Dynarr.create ();
    reader = Shadow.create ();
    writer = Shadow.create ();
    reader_frame = Shadow.create ();
    writer_frame = Shadow.create ();
    collector = Report.collector ();
  }

let top d = Dynarr.top d.stack

let extend label pair = Array.append label [| pair |]

(* Bump the last pair (o, s) of [label] to (o + s, s): the sequential
   successor of every branch forked under it. *)
let bump label =
  let n = Array.length label in
  let label' = Array.copy label in
  let o, s = label'.(n - 1) in
  label'.(n - 1) <- (o + s, s);
  label'

let on_frame_enter d ~frame ~spawned =
  if Dynarr.is_empty d.stack then
    Dynarr.push d.stack
      {
        fid = frame;
        label = [| (1, 1) |];
        block_base = [| (1, 1) |];
        spawned_in_block = false;
      }
  else begin
    let f = top d in
    let child_label =
      if spawned then begin
        let child = extend f.label (1, 2) in
        (* the parent's continuation becomes the sibling branch *)
        f.label <- extend f.label (2, 2);
        f.spawned_in_block <- true;
        child
      end
      else f.label (* calls are serial: inherit *)
    in
    Dynarr.push d.stack
      {
        fid = frame;
        label = child_label;
        block_base = child_label;
        spawned_in_block = false;
      }
  end

let on_frame_return d ~frame ~spawned =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  if not (Dynarr.is_empty d.stack) then begin
    let f = top d in
    if spawned then ()
      (* the parent already switched to the sibling branch at the spawn *)
    else
      (* calls are serial: the caller continues as the callee's final
         thread, inheriting any join bumps the callee performed *)
      f.label <- g.label
  end

let on_sync d ~frame =
  let f = top d in
  assert (f.fid = frame);
  if f.spawned_in_block then begin
    (* The post-sync strand sequentially succeeds every branch of the
       block: bump the last pair at the block's base depth. Take the
       prefix of the CURRENT label (not the stale block base): a called
       child's own join may already have bumped pairs at this depth, and
       the successor must account for those generations. *)
    let prefix = Array.sub f.label 0 (Array.length f.block_base) in
    f.label <- bump prefix;
    f.block_base <- f.label;
    f.spawned_in_block <- false
  end

let intern d label =
  let id = Dynarr.length d.labels in
  Dynarr.push d.labels label;
  id

let stored_parallel d shadow loc ~current =
  let id = Shadow.get shadow loc in
  if id = Shadow.absent then `Absent
  else begin
    let stored = Dynarr.get d.labels id in
    if Label.precedes stored current then `Serial else `Parallel
  end

let report d ~loc ~first_frame ~first_access ~second_access ~frame =
  Report.report d.collector
    {
      Report.kind = Report.Determinacy_race;
      subject = loc;
      subject_label = Engine.loc_label d.eng loc;
      first_frame;
      first_access;
      second_frame = frame;
      second_access;
      second_strand = Engine.current_strand d.eng;
      second_view_aware = false;
      detail = "(offset-span)";
    }

let on_read d ~frame ~loc =
  let f = top d in
  (match stored_parallel d d.writer loc ~current:f.label with
  | `Parallel ->
      report d ~loc
        ~first_frame:(Shadow.get d.writer_frame loc)
        ~first_access:Report.Write ~second_access:Report.Read ~frame
  | `Serial | `Absent -> ());
  match stored_parallel d d.reader loc ~current:f.label with
  | `Absent | `Serial ->
      Shadow.set d.reader loc (intern d f.label);
      Shadow.set d.reader_frame loc frame
  | `Parallel -> ()

let on_write d ~frame ~loc =
  let f = top d in
  (match stored_parallel d d.reader loc ~current:f.label with
  | `Parallel ->
      report d ~loc
        ~first_frame:(Shadow.get d.reader_frame loc)
        ~first_access:Report.Read ~second_access:Report.Write ~frame
  | `Serial | `Absent -> ());
  (match stored_parallel d d.writer loc ~current:f.label with
  | `Parallel ->
      report d ~loc
        ~first_frame:(Shadow.get d.writer_frame loc)
        ~first_access:Report.Write ~second_access:Report.Write ~frame
  | `Serial | `Absent -> ());
  match stored_parallel d d.writer loc ~current:f.label with
  | `Absent | `Serial ->
      Shadow.set d.writer loc (intern d f.label);
      Shadow.set d.writer_frame loc frame
  | `Parallel -> ()

let tool d =
  Tool.extern
    {
      Tool.hooks_null with
      Tool.on_frame_enter =
        (fun ~frame ~parent:_ ~spawned ~kind:_ ->
          on_frame_enter d ~frame ~spawned);
      on_frame_return =
        (fun ~frame ~parent:_ ~spawned ~kind:_ ->
          on_frame_return d ~frame ~spawned);
      on_sync = (fun ~frame -> on_sync d ~frame);
      on_read = (fun ~frame ~loc ~view_aware:_ -> on_read d ~frame ~loc);
      on_write = (fun ~frame ~loc ~view_aware:_ -> on_write d ~frame ~loc);
    }

let attach eng =
  let d = create eng in
  Engine.set_tool eng (tool d);
  d

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
