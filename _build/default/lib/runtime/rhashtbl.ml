type ('k, 'v) t = {
  buckets : ('k * 'v) list Cell.t array;
  count : int Cell.t;
}

let create ctx ~buckets () =
  if buckets <= 0 then invalid_arg "Rhashtbl.create: buckets must be positive";
  {
    buckets = Array.init buckets (fun _ -> Cell.make_in ctx ~label:"rhash.bucket" []);
    count = Cell.make_in ctx ~label:"rhash.count" 0;
  }

let bucket_of h k = Hashtbl.hash k mod Array.length h.buckets

let add ctx h k v ~combine =
  let cell = h.buckets.(bucket_of h k) in
  let chain = Cell.read ctx cell in
  let rec replace = function
    | [] -> None
    | (k', v') :: tl when k' = k -> Some ((k, combine v' v) :: tl)
    | kv :: tl -> Option.map (fun tl' -> kv :: tl') (replace tl)
  in
  match replace chain with
  | Some chain' -> Cell.write ctx cell chain'
  | None ->
      Cell.write ctx cell ((k, v) :: chain);
      Cell.write ctx h.count (Cell.read ctx h.count + 1)

let find ctx h k =
  List.assoc_opt k (Cell.read ctx h.buckets.(bucket_of h k))

let size ctx h = Cell.read ctx h.count

let bindings ctx h =
  Array.fold_left (fun acc cell -> List.rev_append (Cell.read ctx cell) acc) [] h.buckets
  |> List.sort compare

let merge_into ctx ~dst ~src ~combine =
  Array.iter
    (fun cell ->
      List.iter (fun (k, v) -> add ctx dst k v ~combine) (Cell.read ctx cell))
    src.buckets

let peek_bindings h =
  Array.fold_left (fun acc cell -> List.rev_append (Cell.peek cell) acc) [] h.buckets
  |> List.sort compare

let monoid ~buckets ~combine () =
  {
    Reducer.name = "rhashtbl";
    identity = (fun c -> create c ~buckets ());
    reduce =
      (fun c l r ->
        merge_into c ~dst:l ~src:r ~combine;
        l);
  }
