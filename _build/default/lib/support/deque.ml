type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of the top (oldest) element *)
  mutable len : int;
}

let create () = { data = Array.make 8 None; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let data' = Array.make (cap * 2) None in
  for i = 0 to t.len - 1 do
    data'.(i) <- t.data.((t.head + i) mod cap)
  done;
  t.data <- data';
  t.head <- 0

let push_bottom t x =
  if t.len = Array.length t.data then grow t;
  let cap = Array.length t.data in
  t.data.((t.head + t.len) mod cap) <- Some x;
  t.len <- t.len + 1

let take t idx =
  match t.data.(idx) with
  | Some x ->
      t.data.(idx) <- None;
      x
  | None -> assert false

let pop_bottom t =
  if t.len = 0 then invalid_arg "Deque.pop_bottom: empty";
  let cap = Array.length t.data in
  t.len <- t.len - 1;
  take t ((t.head + t.len) mod cap)

let steal_top t =
  if t.len = 0 then invalid_arg "Deque.steal_top: empty";
  let x = take t t.head in
  t.head <- (t.head + 1) mod Array.length t.data;
  t.len <- t.len - 1;
  x

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.len <- 0
