(** Seeded synthetic workload generators for the benchmark suite.

    Substitutes for the paper's external inputs (PARSEC media files and
    image databases; see DESIGN.md §2): everything is derived
    deterministically from an integer seed, so benchmark checksums are
    stable across runs and machines. *)

(** Directed graph in CSR form. *)
type graph = {
  n : int;
  row : int array;  (** length n+1; neighbors of v are col.(row.(v))..col.(row.(v+1)-1) *)
  col : int array;
}

(** [random_graph ~seed ~n ~m] is a random multigraph with [n] vertices and
    [m] edges; endpoints chosen with a power-law-ish skew so BFS frontiers
    look like real graph workloads. Edges are made symmetric. *)
val random_graph : seed:int -> n:int -> m:int -> graph

(** [random_bytes ~seed n] is [n] pseudo-random bytes with repeated runs
    mixed in so that chunk-level deduplication and RLE compression have
    something to find (the dedup workload). *)
val random_bytes : seed:int -> int -> Bytes.t

(** [feature_vectors ~seed ~count ~dim] is a database of [count] vectors of
    dimension [dim] with clustered structure (the ferret image database). *)
val feature_vectors : seed:int -> count:int -> dim:int -> float array array

(** [knapsack_items ~seed ~n ~max_weight ~max_value] is [(weight, value)]
    pairs. *)
val knapsack_items :
  seed:int -> n:int -> max_weight:int -> max_value:int -> (int * int) array

(** [spheres ~seed ~n ~world] is [n] sphere centers (x, y, z, radius) in a
    cube of side [world] (the collision-detection scene). *)
val spheres : seed:int -> n:int -> world:float -> (float * float * float * float) array
