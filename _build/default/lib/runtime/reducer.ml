type 'v monoid = {
  name : string;
  identity : Engine.ctx -> 'v;
  reduce : Engine.ctx -> 'v -> 'v -> 'v;
}

type 'v t = {
  rid : int;
  monoid : 'v monoid;
  views : (int, 'v) Hashtbl.t; (* region id -> view *)
  creation_region : int;
}

let create ctx monoid ~init =
  let eng = Engine.engine ctx in
  let views : (int, 'v) Hashtbl.t = Hashtbl.create 8 in
  let merge mctx ~from_region ~into_region =
    match Hashtbl.find_opt views from_region with
    | None -> ()
    | Some v_from -> (
        Hashtbl.remove views from_region;
        match Hashtbl.find_opt views into_region with
        | None ->
            (* The surviving region never materialized a view: its lazy
               identity absorbs [v_from] without running user code. *)
            Hashtbl.replace views into_region v_from
        | Some v_into ->
            let combined =
              Engine.run_aux_frame mctx Tool.Reduce_fn (fun c ->
                  monoid.reduce c v_into v_from)
            in
            Hashtbl.replace views into_region combined)
  in
  let rid = Engine.register_reducer eng ~merge in
  Engine.emit_reducer_read ctx rid;
  let creation_region = Engine.current_region ctx in
  Hashtbl.replace views creation_region init;
  { rid; monoid; views; creation_region }

(* The view of the current region, materializing an identity view on
   demand (Cilk creates views lazily at the first access after a steal). *)
let current_view ctx r =
  let region = Engine.current_region ctx in
  match Hashtbl.find_opt r.views region with
  | Some v -> v
  | None ->
      let v = Engine.run_aux_frame ctx Tool.Identity_fn (fun c -> r.monoid.identity c) in
      Hashtbl.replace r.views region v;
      v

let get_value ctx r =
  Engine.emit_reducer_read ctx r.rid;
  current_view ctx r

let set_value ctx r v =
  Engine.emit_reducer_read ctx r.rid;
  Hashtbl.replace r.views (Engine.current_region ctx) v

let update ctx r f =
  let v = current_view ctx r in
  let v' = Engine.run_aux_frame ctx Tool.Update_fn (fun c -> f c v) in
  Hashtbl.replace r.views (Engine.current_region ctx) v'

let id r = r.rid
let name r = r.monoid.name
let peek r = Hashtbl.find_opt r.views r.creation_region
let n_views r = Hashtbl.length r.views
