(** The Peer-Set detector's hot path, defunctionalized.

    Owns the precedence core ({!Rader_reach.Reach.Peer}, run with
    [lazy_note]), the per-reducer reader and spawn-count shadows, and the
    Lemma-3 comparison; the policy wrapper ([Rader_core.Peer_set]) builds
    report records in the {!set_on_race} callback. Frame events for
    auxiliary (view-aware) frames are filtered here, as the seed's tool
    record did. *)

type t

type on_race = reducer:int -> first_frame:int -> second_frame:int -> unit

val create : ?backend:Rader_reach.Reach.backend -> unit -> t
val set_on_race : t -> on_race -> unit
val backend : t -> Rader_reach.Reach.backend

(** Empty every arena but keep grown storage; [on_race] is kept. *)
val reset : t -> unit

val frame_enter : t -> frame:int -> spawned:bool -> kind:Frame_kind.t -> unit
val frame_return : t -> frame:int -> spawned:bool -> kind:Frame_kind.t -> unit
val sync : t -> frame:int -> unit
val reducer_read : t -> frame:int -> reducer:int -> unit
