(** Instrumented growable vectors.

    The memory-level twin of the pure hypervector monoid: every slot and
    the length word are shadow-tracked locations, so updates and reduces
    over vector views generate the same kind of shadow traffic as the
    paper's C++ "hypervector" views. Concatenation ({!append_into}) reads
    every source slot and writes every destination slot — O(|src|) work
    in the Reduce, which is what makes reduce cost τ visible to the
    SP+ cost model. *)

type 'a t

(** [create ctx ()] is an empty vector (allocation untracked). *)
val create : Engine.ctx -> unit -> 'a t

(** [length ctx v] reads the length (instrumented). *)
val length : Engine.ctx -> 'a t -> int

(** [push ctx v x] appends [x]: reads the length, writes the slot and the
    length. *)
val push : Engine.ctx -> 'a t -> 'a -> unit

(** [get ctx v i] reads slot [i]. @raise Invalid_argument if out of
    bounds. *)
val get : Engine.ctx -> 'a t -> int -> 'a

(** [set ctx v i x] writes slot [i]. @raise Invalid_argument if out of
    bounds. *)
val set : Engine.ctx -> 'a t -> int -> 'a -> unit

(** [append_into ctx ~dst ~src] appends all of [src]'s elements to [dst]
    (reads each source slot, writes each destination slot) — the
    hypervector Reduce. [src] is left unchanged. *)
val append_into : Engine.ctx -> dst:'a t -> src:'a t -> unit

(** [to_list ctx v] reads out the contents in order (instrumented). *)
val to_list : Engine.ctx -> 'a t -> 'a list

(** [peek_list v] is the contents without instrumentation (post-run). *)
val peek_list : 'a t -> 'a list

(** [monoid ()] is the reducer monoid: identity = fresh empty vector,
    reduce = [append_into] left. *)
val monoid : unit -> 'a t Reducer.monoid
