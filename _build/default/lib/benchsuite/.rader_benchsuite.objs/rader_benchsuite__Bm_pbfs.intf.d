lib/benchsuite/bm_pbfs.mli: Bench_def
