lib/support/bitset.ml: Bytes Int64
