lib/core/coverage.mli: Rader_runtime Report
