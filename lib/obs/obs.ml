(* Detector-wide operation counters.

   One [counters] record per domain, reached through domain-local storage:
   the instrumented substrates (Dset, Bag, Shadow, Engine, Peer_set) bump
   the current domain's record, the coverage sweep snapshots it around
   each spec replay, and the per-replay deltas are summed in spec order —
   so the merged counters of a parallel sweep are byte-identical to the
   serial sweep's, the same discipline the sweep already applies to race
   reports.

   Counting is gated on one process-wide atomic flag. With the flag off
   (the default) every instrumentation site is a single load-and-branch,
   which is what keeps the always-compiled layer within the bench
   regression budget; with it on, sites pay one domain-local lookup and a
   field increment. *)

type counters = {
  (* engine events, flushed once per run from Engine's own stats *)
  mutable engine_runs : int;
  mutable events : int; (* strand starts + instrumented accesses *)
  mutable strands : int;
  mutable frames : int;
  mutable spawns : int;
  mutable syncs : int;
  mutable steals : int;
  mutable reduce_calls : int;
  mutable reads : int;
  mutable writes : int;
  mutable reducer_reads : int;
  (* disjoint-set forest (the α(x,x) term of Theorems 4 and 5) *)
  mutable dset_adds : int;
  mutable dset_finds : int;
  mutable dset_unions : int;
  mutable dset_compress_steps : int; (* parent pointers rewritten *)
  (* bag layer over the forest *)
  mutable bag_makes : int;
  mutable bag_unions : int;
  mutable bag_finds : int;
  (* shadow spaces *)
  mutable shadow_lookups : int;
  mutable shadow_updates : int;
  (* Peer-Set reducer-read checks *)
  mutable peerset_queries : int;
  (* Reach fingerprint backend (DePa-style order maintenance) *)
  mutable reach_fp_queries : int; (* precedence queries answered *)
  mutable reach_fp_words : int; (* fingerprint words compared *)
  mutable reach_epoch_ops : int; (* view-epoch records + survivor-search steps *)
  (* online work-stealing runtime (Rader_sched.Online) *)
  mutable online_tasks : int; (* tasks executed across all workers *)
  mutable online_deque_steals : int; (* successful cross-worker deque steals *)
  mutable online_parks : int; (* sync waits that actually suspended *)
}

let zero () =
  {
    engine_runs = 0;
    events = 0;
    strands = 0;
    frames = 0;
    spawns = 0;
    syncs = 0;
    steals = 0;
    reduce_calls = 0;
    reads = 0;
    writes = 0;
    reducer_reads = 0;
    dset_adds = 0;
    dset_finds = 0;
    dset_unions = 0;
    dset_compress_steps = 0;
    bag_makes = 0;
    bag_unions = 0;
    bag_finds = 0;
    shadow_lookups = 0;
    shadow_updates = 0;
    peerset_queries = 0;
    reach_fp_queries = 0;
    reach_fp_words = 0;
    reach_epoch_ops = 0;
    online_tasks = 0;
    online_deque_steals = 0;
    online_parks = 0;
  }

(* The field list below is the single source of truth for every derived
   form (tables, JSON, equality, arithmetic). Add new counters here and in
   [zero]; never rename — the names are schema keys in BENCH_rader.json
   and in --metrics=json output. *)
let fields : (string * (counters -> int) * (counters -> int -> unit)) list =
  [
    ("engine_runs", (fun c -> c.engine_runs), fun c v -> c.engine_runs <- v);
    ("events", (fun c -> c.events), fun c v -> c.events <- v);
    ("strands", (fun c -> c.strands), fun c v -> c.strands <- v);
    ("frames", (fun c -> c.frames), fun c v -> c.frames <- v);
    ("spawns", (fun c -> c.spawns), fun c v -> c.spawns <- v);
    ("syncs", (fun c -> c.syncs), fun c v -> c.syncs <- v);
    ("steals", (fun c -> c.steals), fun c v -> c.steals <- v);
    ("reduce_calls", (fun c -> c.reduce_calls), fun c v -> c.reduce_calls <- v);
    ("reads", (fun c -> c.reads), fun c v -> c.reads <- v);
    ("writes", (fun c -> c.writes), fun c v -> c.writes <- v);
    ("reducer_reads", (fun c -> c.reducer_reads), fun c v -> c.reducer_reads <- v);
    ("dset_adds", (fun c -> c.dset_adds), fun c v -> c.dset_adds <- v);
    ("dset_finds", (fun c -> c.dset_finds), fun c v -> c.dset_finds <- v);
    ("dset_unions", (fun c -> c.dset_unions), fun c v -> c.dset_unions <- v);
    ( "dset_compress_steps",
      (fun c -> c.dset_compress_steps),
      fun c v -> c.dset_compress_steps <- v );
    ("bag_makes", (fun c -> c.bag_makes), fun c v -> c.bag_makes <- v);
    ("bag_unions", (fun c -> c.bag_unions), fun c v -> c.bag_unions <- v);
    ("bag_finds", (fun c -> c.bag_finds), fun c v -> c.bag_finds <- v);
    ("shadow_lookups", (fun c -> c.shadow_lookups), fun c v -> c.shadow_lookups <- v);
    ("shadow_updates", (fun c -> c.shadow_updates), fun c v -> c.shadow_updates <- v);
    ("peerset_queries", (fun c -> c.peerset_queries), fun c v -> c.peerset_queries <- v);
    ( "reach_fp_queries",
      (fun c -> c.reach_fp_queries),
      fun c v -> c.reach_fp_queries <- v );
    ("reach_fp_words", (fun c -> c.reach_fp_words), fun c v -> c.reach_fp_words <- v);
    ("reach_epoch_ops", (fun c -> c.reach_epoch_ops), fun c v -> c.reach_epoch_ops <- v);
    ("online_tasks", (fun c -> c.online_tasks), fun c v -> c.online_tasks <- v);
    ( "online_deque_steals",
      (fun c -> c.online_deque_steals),
      fun c v -> c.online_deque_steals <- v );
    ("online_parks", (fun c -> c.online_parks), fun c v -> c.online_parks <- v);
  ]

let to_assoc c = List.map (fun (name, get, _) -> (name, get c)) fields

let copy c =
  let out = zero () in
  List.iter (fun (_, get, set) -> set out (get c)) fields;
  out

let add ~into c = List.iter (fun (_, get, set) -> set into (get into + get c)) fields

let diff a b =
  let out = zero () in
  List.iter (fun (_, get, set) -> set out (get a - get b)) fields;
  out

let equal a b = List.for_all (fun (_, get, _) -> get a = get b) fields

let is_zero c = List.for_all (fun (_, get, _) -> get c = 0) fields

let dset_ops c = c.dset_finds + c.dset_unions + c.dset_compress_steps

let shadow_ops c = c.shadow_lookups + c.shadow_updates

let bag_ops c = c.bag_makes + c.bag_unions + c.bag_finds

let reach_ops c = c.reach_fp_words + c.reach_epoch_ops

(* ---------- enable flag + per-domain current record ---------- *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let key : counters Domain.DLS.key = Domain.DLS.new_key zero

let cur () = Domain.DLS.get key

let snapshot () = copy (cur ())

let since snap = diff (cur ()) snap

(* [with_enabled f] runs [f] with counting on, restoring the previous
   state afterwards (including on exceptions), and returns [f]'s result
   together with the counters this domain accumulated during the call. *)
let with_enabled f =
  let was = enabled () in
  set_enabled true;
  let snap = snapshot () in
  Fun.protect ~finally:(fun () -> set_enabled was) (fun () ->
      let result = f () in
      (result, since snap))

(* ---------- bump helpers (call only under [enabled ()]) ---------- *)

let bump_dset_add () =
  let c = cur () in
  c.dset_adds <- c.dset_adds + 1

let bump_dset_find ~compress_steps =
  let c = cur () in
  c.dset_finds <- c.dset_finds + 1;
  c.dset_compress_steps <- c.dset_compress_steps + compress_steps

let bump_dset_union () =
  let c = cur () in
  c.dset_unions <- c.dset_unions + 1

let bump_bag_make () =
  let c = cur () in
  c.bag_makes <- c.bag_makes + 1

let bump_bag_union () =
  let c = cur () in
  c.bag_unions <- c.bag_unions + 1

let bump_bag_find () =
  let c = cur () in
  c.bag_finds <- c.bag_finds + 1

let bump_shadow_lookup () =
  let c = cur () in
  c.shadow_lookups <- c.shadow_lookups + 1

let bump_shadow_update () =
  let c = cur () in
  c.shadow_updates <- c.shadow_updates + 1

let bump_peerset_query () =
  let c = cur () in
  c.peerset_queries <- c.peerset_queries + 1

let bump_reach_query ~words =
  let c = cur () in
  c.reach_fp_queries <- c.reach_fp_queries + 1;
  c.reach_fp_words <- c.reach_fp_words + words

let bump_reach_epoch ~steps =
  let c = cur () in
  c.reach_epoch_ops <- c.reach_epoch_ops + steps

(* Online runtime: bumped from the worker domain that did the work, so
   the per-domain records naturally shard the counts; the runtime sums
   the per-worker deltas when it joins its domains. *)
let bump_online_task () =
  let c = cur () in
  c.online_tasks <- c.online_tasks + 1

let bump_online_deque_steal () =
  let c = cur () in
  c.online_deque_steals <- c.online_deque_steals + 1

let bump_online_park () =
  let c = cur () in
  c.online_parks <- c.online_parks + 1

(* Engine flushes a whole run at once (zero per-event overhead: the engine
   already maintains these counts for [Engine.stats]). *)
let note_engine_run ~events ~strands ~frames ~spawns ~syncs ~steals ~reduce_calls
    ~reads ~writes ~reducer_reads =
  let c = cur () in
  c.engine_runs <- c.engine_runs + 1;
  c.events <- c.events + events;
  c.strands <- c.strands + strands;
  c.frames <- c.frames + frames;
  c.spawns <- c.spawns + spawns;
  c.syncs <- c.syncs + syncs;
  c.steals <- c.steals + steals;
  c.reduce_calls <- c.reduce_calls + reduce_calls;
  c.reads <- c.reads + reads;
  c.writes <- c.writes + writes;
  c.reducer_reads <- c.reducer_reads + reducer_reads

(* ---------- rendering ---------- *)

let to_table_string c =
  let width =
    List.fold_left (fun w (name, _, _) -> max w (String.length name)) 0 fields
  in
  String.concat ""
    (List.map
       (fun (name, v) -> Printf.sprintf "  %-*s %d\n" width name v)
       (to_assoc c))

(* The counters object alone, e.g. {"engine_runs":1,...} — callers embed
   it in their own JSON envelope. *)
let to_json_string c =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '"';
      Buffer.add_string buf name;
      Buffer.add_string buf "\":";
      Buffer.add_string buf (string_of_int v))
    (to_assoc c);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ---------- monotonic-enough clock (microseconds) ---------- *)

(* Phase timers and trace spans share this clock. [Unix.gettimeofday] is
   the only sub-second clock in the image; span emitters clamp per-thread
   regressions away (see Chrome_trace), so a rare NTP step cannot produce
   a malformed trace. *)
let now_us () = Unix.gettimeofday () *. 1e6

type phase = { phase_name : string; mutable phase_us : float; mutable phase_count : int }

let phase name = { phase_name = name; phase_us = 0.0; phase_count = 0 }

let timed p f =
  let t0 = now_us () in
  Fun.protect
    ~finally:(fun () ->
      p.phase_us <- p.phase_us +. (now_us () -. t0);
      p.phase_count <- p.phase_count + 1)
    f

let phase_seconds p = p.phase_us /. 1e6
let phase_name p = p.phase_name
let phase_count p = p.phase_count
