(** SP-bags-style bags: possibly-empty sets of elements with an attached
    payload, supporting the MakeBag / FindBag / Union trio used verbatim in
    the pseudocode of the SP-bags, SP+ (paper Fig. 6) and Peer-Set
    (paper Fig. 3) algorithms.

    A {e bag} is a descriptor object that owns the set of elements currently
    in it; the element partition itself lives in a shared disjoint-set
    [store]. Unioning bag [src] into bag [dst] moves all of [src]'s elements
    into [dst] (in O(α) amortized), empties [src], and — crucially for SP+ —
    {e preserves [dst]'s payload} (e.g. its view ID). [find] maps an element
    to the bag currently containing it, which is how the detectors classify
    the last reader/writer of a shadow location. *)

type 'a store

(** A bag holding elements, carrying a mutable payload of type ['a]. *)
type 'a t

(** [create_store ()] is a fresh element partition shared by related bags. *)
val create_store : unit -> 'a store

(** [clear_store store] empties the store (elements and owner table) while
    keeping its arenas allocated. Bags made against the old contents are
    dangling afterwards and must not be used. *)
val clear_store : 'a store -> unit

(** [make store payload elts] is a new bag containing exactly [elts] (each of
    which must be fresh in [store]); [make store payload \[\]] is the
    pseudocode's [MakeBag(∅)]. *)
val make : 'a store -> 'a -> int list -> 'a t

(** [payload b] is [b]'s payload. *)
val payload : 'a t -> 'a

(** [set_payload b p] replaces [b]'s payload. *)
val set_payload : 'a t -> 'a -> unit

(** [add store b x] inserts the fresh element [x] into [b].
    @raise Invalid_argument if [x] is already in the store. *)
val add : 'a store -> 'a t -> int -> unit

(** [union_into store ~dst ~src] moves all elements of [src] into [dst] and
    empties [src]. [dst]'s payload is preserved; [src] can be reused (it is
    simply empty afterwards). The pseudocode's [A ∪= B; B = ∅]. *)
val union_into : 'a store -> dst:'a t -> src:'a t -> unit

(** [find store x] is the bag currently containing [x], or [None] if [x] was
    never added. The pseudocode's [FindBag]. *)
val find : 'a store -> int -> 'a t option

(** [is_empty b] is true iff [b] currently holds no element. *)
val is_empty : 'a t -> bool

(** [same_bag a b] is physical identity of bag descriptors. *)
val same_bag : 'a t -> 'a t -> bool

(** [mem store b x] is true iff element [x] is currently in bag [b]. *)
val mem : 'a store -> 'a t -> int -> bool
