lib/support/bitset.mli:
