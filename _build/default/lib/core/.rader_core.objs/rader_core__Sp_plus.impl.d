lib/core/sp_plus.ml: Printf Rader_dsets Rader_memory Rader_runtime Rader_support Report
