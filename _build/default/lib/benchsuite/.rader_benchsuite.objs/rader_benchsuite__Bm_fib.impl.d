lib/benchsuite/bm_fib.ml: Bench_def Cilk Rader_runtime Rmonoid
