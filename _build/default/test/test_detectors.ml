(* Unit tests for the three detectors on hand-crafted programs, including
   the paper's Figure 1 and the peer-set examples of §3–§4. *)

open Rader_runtime
open Rader_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let run_peer_set program =
  let eng = Engine.create () in
  let d = Peer_set.attach eng in
  ignore (Engine.run eng program);
  Peer_set.races d

let run_sp_bags ?spec program =
  let eng = Engine.create ?spec () in
  let d = Sp_bags.attach eng in
  ignore (Engine.run eng program);
  Sp_bags.races d

let run_sp_plus ?spec program =
  let eng = Engine.create ?spec () in
  let d = Sp_plus.attach eng in
  ignore (Engine.run eng program);
  d

(* ---------- Peer-Set ---------- *)

let test_ps_clean_usage () =
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        Cilk.parallel_for ctx ~lo:0 ~hi:10 (fun ctx i -> Rmonoid.add ctx r i);
        Cilk.sync ctx;
        ignore (Rmonoid.int_cell_value ctx r))
  in
  check "no races" 0 (List.length races)

let test_ps_get_before_sync () =
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 1));
        (* reading the reducer here can observe a scheduling-dependent view *)
        ignore (Rmonoid.int_cell_value ctx r);
        Cilk.sync ctx)
  in
  check "one race" 1 (List.length races);
  (match races with
  | [ r ] -> checkb "is view-read" true (r.Report.kind = Report.View_read_race)
  | _ -> ())

let test_ps_set_after_spawn () =
  (* The paper's §3 example: moving set_value after the cilk_spawn creates
     a view-read race even if it happens to be benign. *)
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Cilk.spawn ctx (fun _ -> ()));
        Reducer.set_value ctx r (Cell.make_in ctx 0);
        Cilk.sync ctx)
  in
  check "benign but reported" 1 (List.length races)

let test_ps_reads_in_sibling_spawns () =
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Cilk.spawn ctx (fun ctx -> ignore (Rmonoid.int_cell_value ctx r)));
        ignore (Cilk.spawn ctx (fun ctx -> ignore (Rmonoid.int_cell_value ctx r)));
        Cilk.sync ctx)
  in
  check "siblings race" 1 (List.length races)

let test_ps_reads_in_called_children_ok () =
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        Cilk.call ctx (fun ctx -> ignore (Rmonoid.int_cell_value ctx r));
        Cilk.call ctx (fun ctx -> ignore (Rmonoid.int_cell_value ctx r));
        ignore (Rmonoid.int_cell_value ctx r))
  in
  check "same peers everywhere" 0 (List.length races)

let test_ps_read_before_and_after_synced_spawn () =
  (* spawn…sync between two reads leaves the peer sets equal *)
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Rmonoid.int_cell_value ctx r);
        ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 1));
        Cilk.sync ctx;
        ignore (Rmonoid.int_cell_value ctx r))
  in
  check "no race across synced spawn" 0 (List.length races)

let test_ps_read_straddling_unsynced_spawn () =
  (* two reads in the same frame with a spawn between them: the spawn
     count differs, so the peer sets differ *)
  let races =
    run_peer_set (fun ctx ->
        let r = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Rmonoid.int_cell_value ctx r);
        ignore (Cilk.spawn ctx (fun _ -> ()));
        ignore (Rmonoid.int_cell_value ctx r);
        Cilk.sync ctx)
  in
  check "race across unsynced spawn" 1 (List.length races)

(* Reducer ids are dense in creation order, so the first reducer is 0. *)
let test_ps_two_reducers_independent () =
  let races =
    run_peer_set (fun ctx ->
        let r1 = Rmonoid.new_int_add ctx ~init:0 in
        let r2 = Rmonoid.new_int_add ctx ~init:0 in
        ignore (Cilk.spawn ctx (fun _ -> ()));
        (* r1's read straddles the unsynced spawn: races with its creation
           read; r2 is only re-read after the sync, same peer set. *)
        ignore (Rmonoid.int_cell_value ctx r1);
        Cilk.sync ctx;
        ignore (Rmonoid.int_cell_value ctx r2))
  in
  match races with
  | [ r ] ->
      check "subject is reducer 0" 0 r.Report.subject
  | l -> Alcotest.failf "expected exactly 1 race, got %d" (List.length l)

let test_ps_agrees_with_oracle_on_fixture () =
  let program ctx =
    let r = Rmonoid.new_int_add ctx ~init:0 in
    ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 1));
    ignore (Rmonoid.int_cell_value ctx r);
    Cilk.sync ctx;
    ignore (Rmonoid.int_cell_value ctx r)
  in
  let eng = Engine.create ~record:true () in
  let d = Peer_set.attach eng in
  ignore (Engine.run eng program);
  Alcotest.(check (list int))
    "same racy reducers"
    (Oracle.view_read_races eng)
    (List.sort_uniq compare (List.map (fun r -> r.Report.subject) (Peer_set.races d)))

(* ---------- SP-bags ---------- *)

let racy_ww ctx =
  let c = Cell.make_in ctx 0 in
  ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
  Cell.write ctx c 2;
  Cilk.sync ctx

let racy_rw ctx =
  let c = Cell.make_in ctx 0 in
  ignore (Cilk.spawn ctx (fun ctx -> ignore (Cell.read ctx c)));
  Cell.write ctx c 2;
  Cilk.sync ctx

let racy_wr ctx =
  let c = Cell.make_in ctx 0 in
  ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
  ignore (Cell.read ctx c);
  Cilk.sync ctx

let clean_synced ctx =
  let c = Cell.make_in ctx 0 in
  ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
  Cilk.sync ctx;
  Cell.write ctx c 2

let clean_series ctx =
  let c = Cell.make_in ctx 0 in
  Cilk.call ctx (fun ctx -> Cell.write ctx c 1);
  ignore (Cell.read ctx c)

let clean_parallel_reads ctx =
  let c = Cell.make_in ctx 7 in
  ignore (Cilk.spawn ctx (fun ctx -> ignore (Cell.read ctx c)));
  ignore (Cell.read ctx c);
  Cilk.sync ctx

let test_spbags_cases () =
  check "write-write race" 1 (List.length (run_sp_bags racy_ww));
  check "read-write race" 1 (List.length (run_sp_bags racy_rw));
  check "write-read race" 1 (List.length (run_sp_bags racy_wr));
  check "synced clean" 0 (List.length (run_sp_bags clean_synced));
  check "series clean" 0 (List.length (run_sp_bags clean_series));
  check "parallel reads clean" 0 (List.length (run_sp_bags clean_parallel_reads))

let test_spbags_pseudotransitivity () =
  (* Reader shadow keeps the first parallel reader; a later writer must
     still race even though a second parallel read happened in between. *)
  let races =
    run_sp_bags (fun ctx ->
        let c = Cell.make_in ctx 0 in
        ignore (Cilk.spawn ctx (fun ctx -> ignore (Cell.read ctx c)));
        ignore (Cilk.spawn ctx (fun ctx -> ignore (Cell.read ctx c)));
        ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
        Cilk.sync ctx)
  in
  check "writer races with a reader" 1 (List.length races)

let test_spbags_dedupes_per_location () =
  let races =
    run_sp_bags (fun ctx ->
        let c = Cell.make_in ctx 0 in
        ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
        Cell.write ctx c 2;
        Cell.write ctx c 3;
        Cell.write ctx c 4;
        Cilk.sync ctx)
  in
  check "one report per location" 1 (List.length races)

(* ---------- SP+ ---------- *)

let test_spplus_degenerates_to_spbags () =
  List.iter
    (fun program ->
      let expected = List.length (run_sp_bags program) in
      let d = run_sp_plus program in
      check "same verdict as SP-bags" expected (List.length (Sp_plus.races d)))
    [ racy_ww; racy_rw; racy_wr; clean_synced; clean_series; clean_parallel_reads ]

(* The paper's Figure 1. *)
let update_list ctx n list =
  Cilk.call ctx (fun ctx ->
      let red = Reducer.create ctx (Mylist.monoid ()) ~init:(Mylist.empty ctx) in
      Reducer.set_value ctx red list;
      let _ = Cilk.spawn ctx (fun ctx -> ignore ctx) in
      Cilk.parallel_for ctx ~lo:0 ~hi:n (fun ctx i ->
          Reducer.update ctx red (fun c l ->
              Mylist.insert c l i;
              l));
      Cilk.sync ctx;
      Reducer.get_value ctx red)

let fig1 ~buggy ctx =
  let list = Mylist.empty ctx in
  Mylist.insert ctx list 100;
  Mylist.insert ctx list 200;
  let copy = (if buggy then Mylist.shallow_copy else Mylist.deep_copy) ctx list in
  let len = Cilk.spawn ctx (fun ctx -> Mylist.scan ctx list) in
  let _ = update_list ctx 6 copy in
  Cilk.sync ctx;
  Cilk.get ctx len

let steal_specs =
  [
    Steal_spec.all ();
    Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ();
    Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 1; 2; 3 ];
    Steal_spec.random ~seed:1 ~density:0.7 ();
  ]

let test_spplus_fig1_buggy_detected () =
  List.iter
    (fun spec ->
      let d = run_sp_plus ~spec (fig1 ~buggy:true) in
      checkb
        (Printf.sprintf "race found under %s" spec.Steal_spec.name)
        true (Sp_plus.found d);
      (* the racing write is the Reduce's append through a next pointer *)
      let someone_view_aware =
        List.exists (fun r -> r.Report.second_view_aware) (Sp_plus.races d)
      in
      checkb "involves a view-aware strand" true someone_view_aware)
    steal_specs

let test_spplus_fig1_fixed_clean () =
  List.iter
    (fun spec ->
      let d = run_sp_plus ~spec (fig1 ~buggy:false) in
      checkb
        (Printf.sprintf "clean under %s" spec.Steal_spec.name)
        false (Sp_plus.found d))
    steal_specs

let test_spplus_fig1_needs_steals () =
  (* Under the no-steal schedule the Reduce never executes, so the race is
     not elicited — the paper's motivation for steal specifications. *)
  let d = run_sp_plus ~spec:Steal_spec.none (fig1 ~buggy:true) in
  checkb "not elicited serially" false (Sp_plus.found d)

let test_spbags_unreliable_on_reducers () =
  (* SP-bags is not reducer-aware: on the CORRECT (deep-copy) program under
     a schedule with steals it reports false positives — it takes the
     reduce strands' accesses, which are serialized with the views they
     merge, to be ordinary parallel accesses. SP+ stays silent. This is
     the coverage/soundness gap that motivates SP+ (paper §1, §5). *)
  let spec = Steal_spec.all () in
  let spbags = run_sp_bags ~spec (fig1 ~buggy:false) in
  checkb "SP-bags false positives" true (List.length spbags > 0);
  let d = run_sp_plus ~spec (fig1 ~buggy:false) in
  checkb "SP+ correct" false (Sp_plus.found d)

let test_spplus_update_vs_oblivious () =
  (* an Update's view-aware write to shared memory races with a parallel
     view-oblivious read even without any steal *)
  let program ctx =
    let shared = Cell.make_in ctx 0 in
    let r =
      Reducer.create ctx
        {
          Reducer.name = "touchy";
          identity = (fun c -> Cell.make_in c 0);
          reduce =
            (fun c l r ->
              Cell.write c l (Cell.read c l + Cell.read c r);
              l);
        }
        ~init:(Cell.make_in ctx 0)
    in
    ignore
      (Cilk.spawn ctx (fun ctx ->
           Reducer.update ctx r (fun c v ->
               Cell.write c shared 1;
               v)));
    ignore (Cell.read ctx shared);
    Cilk.sync ctx
  in
  let d = run_sp_plus program in
  check "race detected" 1 (List.length (Sp_plus.races d))

let test_spplus_parallel_updates_clean () =
  (* Two parallel updates of the same reducer are exactly what reducers
     make safe: no race, with or without steals. *)
  let program ctx =
    let r = Rmonoid.new_int_add ctx ~init:0 in
    ignore (Cilk.spawn ctx (fun ctx -> Rmonoid.add ctx r 1));
    Rmonoid.add ctx r 2;
    Cilk.sync ctx;
    ignore (Rmonoid.int_cell_value ctx r)
  in
  List.iter
    (fun spec ->
      let d = run_sp_plus ~spec program in
      checkb
        (Printf.sprintf "clean under %s" spec.Steal_spec.name)
        false (Sp_plus.found d))
    (Steal_spec.none :: steal_specs)

let test_spplus_matches_oracle_on_fig1 () =
  List.iter
    (fun spec ->
      List.iter
        (fun buggy ->
          let eng = Engine.create ~spec ~record:true () in
          let d = Sp_plus.attach eng in
          ignore (Engine.run eng (fig1 ~buggy));
          Alcotest.(check (list int))
            (Printf.sprintf "oracle agreement (%s, buggy=%b)" spec.Steal_spec.name buggy)
            (Oracle.determinacy_races eng)
            (Sp_plus.racy_locs d))
        [ true; false ])
    (Steal_spec.none :: steal_specs)

(* ---------- SP-order and offset-span baselines ---------- *)

let run_sp_order program =
  let eng = Engine.create () in
  let d = Sp_order.attach eng in
  ignore (Engine.run eng program);
  Sp_order.races d

let run_offset_span program =
  let eng = Engine.create () in
  let d = Offset_span.attach eng in
  ignore (Engine.run eng program);
  Offset_span.races d

let test_baselines_agree_with_spbags () =
  List.iter
    (fun program ->
      let expected = List.length (run_sp_bags program) in
      Alcotest.(check int) "sp-order verdict" expected (List.length (run_sp_order program));
      Alcotest.(check int) "offset-span verdict" expected
        (List.length (run_offset_span program)))
    [ racy_ww; racy_rw; racy_wr; clean_synced; clean_series; clean_parallel_reads ]

let test_sp_order_nested_blocks () =
  (* multiple sync blocks with nested spawns: the Hebrew frontier must
     track the first spawned child per block *)
  let program ctx =
    let c = Cell.make_in ctx 0 in
    ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 1));
    ignore (Cilk.spawn ctx (fun ctx -> ignore (Cell.read ctx c)));
    Cilk.sync ctx;
    (* after the sync everything is serial again *)
    Cell.write ctx c 2;
    ignore (Cilk.spawn ctx (fun ctx -> Cell.write ctx c 3));
    Cilk.sync ctx;
    ignore (Cell.read ctx c)
  in
  (* the only race is write(child1) vs read(child2) in block 1 *)
  Alcotest.(check int) "one race" 1 (List.length (run_sp_order program));
  Alcotest.(check int) "offset-span agrees" 1 (List.length (run_offset_span program))

let test_sp_order_deep_series () =
  let rec chain ctx c n =
    if n = 0 then Cell.write ctx c 1
    else Cilk.call ctx (fun ctx -> chain ctx c (n - 1))
  in
  let program ctx =
    let c = Cell.make_in ctx 0 in
    chain ctx c 20;
    ignore (Cell.read ctx c)
  in
  Alcotest.(check int) "series clean (sp-order)" 0 (List.length (run_sp_order program));
  Alcotest.(check int) "series clean (offset-span)" 0
    (List.length (run_offset_span program))

let test_offset_span_label_rules () =
  let module L = Offset_span.Label in
  let base = [| (1, 1) |] in
  let child = [| (1, 1); (1, 2) |] in
  let cont = [| (1, 1); (2, 2) |] in
  let nested = [| (1, 1); (2, 2); (1, 2) |] in
  let post_sync = [| (2, 1) |] in
  Alcotest.(check bool) "reflexive serial" true (L.precedes base base);
  Alcotest.(check bool) "prefix serial" true (L.precedes base child);
  Alcotest.(check bool) "child || cont" false (L.precedes child cont);
  Alcotest.(check bool) "cont || child" false (L.precedes cont child);
  Alcotest.(check bool) "child || nested" false (L.precedes child nested);
  Alcotest.(check bool) "cont before nested" true (L.precedes cont nested);
  Alcotest.(check bool) "child before post-sync" true (L.precedes child post_sync);
  Alcotest.(check bool) "nested before post-sync" true (L.precedes nested post_sync);
  Alcotest.(check bool) "post-sync not before child" false (L.precedes post_sync child)

let test_sp_order_caught_by_oracle_fixture () =
  (* both baselines against the oracle on a mixed fixture *)
  let program ctx =
    let a = Cell.make_in ctx 0 in
    let b = Cell.make_in ctx 0 in
    ignore
      (Cilk.spawn ctx (fun ctx ->
           Cell.write ctx a 1;
           Cilk.call ctx (fun ctx -> ignore (Cell.read ctx b))));
    ignore (Cell.read ctx a);
    Cilk.sync ctx;
    Cell.write ctx b 2
  in
  let eng = Engine.create ~record:true () in
  let d = Sp_order.attach eng in
  ignore (Engine.run eng program);
  let truth = Oracle.determinacy_races eng in
  Alcotest.(check (list int))
    "sp-order = oracle" truth
    (List.sort_uniq compare (List.map (fun r -> r.Report.subject) (Sp_order.races d)))

(* ---------- Report ---------- *)

let test_report_collector_dedup () =
  let c = Report.collector () in
  let mk subject kind =
    {
      Report.kind;
      subject;
      subject_label = "x";
      first_frame = 0;
      first_access = Report.Write;
      second_frame = 1;
      second_access = Report.Read;
      second_strand = 5;
      second_view_aware = false;
      detail = "";
    }
  in
  Report.report c (mk 1 Report.Determinacy_race);
  Report.report c (mk 1 Report.Determinacy_race);
  Report.report c (mk 2 Report.Determinacy_race);
  Report.report c (mk 1 Report.View_read_race);
  check "three distinct" 3 (Report.count c);
  Alcotest.(check (list int)) "subjects" [ 1; 2 ] (Report.racy_subjects c)

let test_report_to_string () =
  let r =
    {
      Report.kind = Report.Determinacy_race;
      subject = 3;
      subject_label = "mylist.next";
      first_frame = 4;
      first_access = Report.Read;
      second_frame = 9;
      second_access = Report.Write;
      second_strand = 17;
      second_view_aware = true;
      detail = "parallel views 1 vs 2";
    }
  in
  let s = Report.to_string r in
  checkb "mentions label" true
    (let rec contains i =
       i + 11 <= String.length s && (String.sub s i 11 = "mylist.next" || contains (i + 1))
     in
     contains 0);
  checkb "mentions view-aware" true
    (let rec contains i =
       i + 12 <= String.length s && (String.sub s i 12 = "[view-aware]" || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "detectors"
    [
      ( "peer-set",
        [
          Alcotest.test_case "clean usage" `Quick test_ps_clean_usage;
          Alcotest.test_case "get before sync" `Quick test_ps_get_before_sync;
          Alcotest.test_case "set after spawn (benign)" `Quick test_ps_set_after_spawn;
          Alcotest.test_case "sibling spawns" `Quick test_ps_reads_in_sibling_spawns;
          Alcotest.test_case "called children ok" `Quick test_ps_reads_in_called_children_ok;
          Alcotest.test_case "synced spawn ok" `Quick
            test_ps_read_before_and_after_synced_spawn;
          Alcotest.test_case "unsynced spawn races" `Quick
            test_ps_read_straddling_unsynced_spawn;
          Alcotest.test_case "reducers independent" `Quick test_ps_two_reducers_independent;
          Alcotest.test_case "oracle agreement" `Quick test_ps_agrees_with_oracle_on_fixture;
        ] );
      ( "sp-bags",
        [
          Alcotest.test_case "core cases" `Quick test_spbags_cases;
          Alcotest.test_case "pseudotransitivity" `Quick test_spbags_pseudotransitivity;
          Alcotest.test_case "dedup per location" `Quick test_spbags_dedupes_per_location;
        ] );
      ( "sp+",
        [
          Alcotest.test_case "degenerates to SP-bags" `Quick test_spplus_degenerates_to_spbags;
          Alcotest.test_case "fig1 buggy detected" `Quick test_spplus_fig1_buggy_detected;
          Alcotest.test_case "fig1 fixed clean" `Quick test_spplus_fig1_fixed_clean;
          Alcotest.test_case "fig1 needs steals" `Quick test_spplus_fig1_needs_steals;
          Alcotest.test_case "sp-bags unreliable on reducers" `Quick
            test_spbags_unreliable_on_reducers;
          Alcotest.test_case "update vs oblivious" `Quick test_spplus_update_vs_oblivious;
          Alcotest.test_case "parallel updates clean" `Quick
            test_spplus_parallel_updates_clean;
          Alcotest.test_case "oracle agreement on fig1" `Quick
            test_spplus_matches_oracle_on_fig1;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "agree with SP-bags" `Quick test_baselines_agree_with_spbags;
          Alcotest.test_case "nested blocks" `Quick test_sp_order_nested_blocks;
          Alcotest.test_case "deep series" `Quick test_sp_order_deep_series;
          Alcotest.test_case "offset-span label rules" `Quick test_offset_span_label_rules;
          Alcotest.test_case "sp-order = oracle fixture" `Quick
            test_sp_order_caught_by_oracle_fixture;
        ] );
      ( "report",
        [
          Alcotest.test_case "collector dedup" `Quick test_report_collector_dedup;
          Alcotest.test_case "to_string" `Quick test_report_to_string;
        ] );
    ]
