(** Bounded LRU cache for daemon verdicts.

    Exact least-recently-used eviction with O(1) find/add, so the daemon's
    memory stays flat under sustained load no matter how many distinct
    requests it sees. Not thread-safe; the server serializes access. *)

type ('k, 'v) t

(** @raise Invalid_argument if [cap < 1]. *)
val create : cap:int -> ('k, 'v) t

(** [find t k] refreshes [k]'s recency on a hit and counts hit/miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts or replaces, evicting the LRU entry beyond
    capacity. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

val len : ('k, 'v) t -> int
val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
