(* Benchmark harness reproducing the paper's evaluation (§8).

   Regenerates:
   - Figure 7: Rader's multiplicative overhead over running each benchmark
     WITHOUT instrumentation, for the four detector configurations
     (Check view-read race / No steals / Check updates / Check reductions);
   - Figure 8: the same runs normalized to the EMPTY TOOL (instrumentation
     dispatching to no-op callbacks);
   - S1: the §7 steal-specification family sizes (Theorems 6 & 7 shapes);
   - S2: SP+ running time as the number of simulated steals M grows
     (the O((T + Mτ) α) cost model of Theorem 5);
   - S3: work-stealing simulator speedup sanity (T₁/T_p);
   - S4: the multicore §7 coverage sweep — wall-clock at --jobs 1/2/4/ncores
     (job counts beyond the available cores are marked skipped, not timed
     as bogus <1x speedups) and the engine-reuse (Engine.reset) vs
     fresh-engine-per-spec ratio;
   - S5: serial detector comparison on reducer-free workloads (§9 baselines);
   - S6: the Rader_obs cost model — real detector operation counts (dset /
     bag / shadow / reach work per engine event) behind the Fig. 7/8
     overheads, per precedence backend (dset vs depa);
   - S7: relevance-guided steal-spec pruning — how much of each
     benchmark's §7 family Coverage.spec_relevant proves redundant;
   - S8: service throughput — checks/sec through the rader serve daemon
     at 1/4/16 clients, and the shed rate when a starved pool is
     deliberately overloaded (backpressure, not silence);
   - S9: precedence-backend comparison — detector ops/event and Fig. 8
     overhead for the dset (disjoint-set) vs depa (DePa fingerprint)
     reachability backends, same verdicts by construction;
   - S10: online throughput — events/sec through the real work-stealing
     runtime (effects scheduler, Chase-Lev deques, lock-striped shadows)
     at 1/2/4 worker domains, and the detection overhead relative to the
     serial detector stack on the same program;
   plus a bechamel micro-benchmark group per figure table.

   Besides the printed tables, the harness persists a perf trajectory to
   BENCH_rader.json (schema-stable keys, see `schema` field) so later PRs
   can diff performance against this run. BENCH_rader.json itself is
   gitignored (host-dependent timings); BENCH_seed.json is a committed
   fast-mode snapshot giving trajectory diffs a stable starting point.

   Environment knobs:
     RADER_BENCH_SCALE      workload multiplier (default 4.0)
     RADER_BENCH_FAST=1     scale 1.0 and skip bechamel (CI smoke)
     RADER_BENCH_SKIP_BECHAMEL=1 *)

open Rader_runtime
open Rader_core
open Rader_benchsuite
module Stats = Rader_support.Stats
module Tablefmt = Rader_support.Tablefmt
module Rng = Rader_support.Rng
module Obs = Rader_obs.Obs
module Reach = Rader_reach.Reach

let fast = Sys.getenv_opt "RADER_BENCH_FAST" = Some "1"

let scale =
  if fast then 1.0
  else
    match Sys.getenv_opt "RADER_BENCH_SCALE" with
    | Some s -> float_of_string s
    | None -> 4.0

let skip_bechamel = fast || Sys.getenv_opt "RADER_BENCH_SKIP_BECHAMEL" = Some "1"

(* Noise-robust timing. A single run of a sub-millisecond region is
   dominated by clock granularity and scheduler jitter, and min-of-singles
   systematically underestimates the steady state. Every timed region is
   therefore repeated in a calibrated batch sized so that ONE clock pair
   spans at least [min_block] (50ms) of wall-clock; the block reports the
   per-iteration MEAN, and the best mean over a few blocks sheds
   whole-block outliers (GC, migrations). Batching the repetitions inside
   a single clock pair — rather than timing iterations one by one and
   summing, as this harness used to — keeps clock granularity and
   timer-call overhead out of the sub-100µs rows entirely: a fast-mode
   fib iteration is ~50µs, so its 50ms batch amortizes the two clock
   reads over ~1000 runs. Every fast-mode row now accumulates at least
   [min_block] per sample and the old [noisy] flag no longer trips. *)
let min_block = 0.05

let measure f =
  let blocks = 4 in
  (* calibration run: how many repetitions fit in one block? *)
  let _, dt0 = Stats.time_it f in
  let reps =
    if dt0 >= min_block then 1
    else max 1 (int_of_float (ceil (min_block /. max dt0 1e-9)))
  in
  let best = ref infinity in
  for _ = 1 to blocks do
    let total = ref 0.0 in
    let iters = ref 0 in
    (* the calibration estimate can be low (cold caches); keep adding
       batches until the block really spans [min_block] *)
    while !total < min_block do
      let _, dt =
        Stats.time_it (fun () ->
            for _ = 1 to reps do
              ignore (f ())
            done)
      in
      total := !total +. dt;
      iters := !iters + reps
    done;
    let mean = !total /. float_of_int !iters in
    if mean < !best then best := mean
  done;
  !best

(* ---------- detector configurations (paper Fig. 7 columns) ---------- *)

type mode = {
  mode_name : string;
  run : Bench_def.t -> k:int -> int;
      (** executes the benchmark once under this configuration *)
}

let with_detector attach ?(spec = Steal_spec.none) b =
  let eng = Engine.create ~spec () in
  attach eng;
  Engine.run eng b.Bench_def.cilk

let spec_updates ~k =
  (* "steals at continuation depth that's half of the maximum sync block
     size" (§8) *)
  Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ max 1 (k / 2) ]

let spec_reductions ~k ~seed =
  (* three random continuation positions per sync block, middle pair
     reduced first (§8's random steal points) *)
  let rng = Rng.create seed in
  let pick () = 1 + Rng.int rng (max 1 k) in
  let rec distinct3 () =
    let a = pick () and b = pick () and c = pick () in
    if a <> b && b <> c && a <> c then List.sort compare [ a; b; c ]
    else if k < 3 then [ 1; 2; 3 ]
    else distinct3 ()
  in
  Steal_spec.at_local_indices
    ~policy:(Steal_spec.Reduce_schedule (fun ord -> if ord = 3 then 1 else 0))
    (distinct3 ())

(* The four detector configurations, parameterized by the precedence
   backend. The dset instances feed the Fig. 7/8 tables (unchanged
   schema); the depa instances feed the S9 backend comparison. *)
let detector_modes ~reach =
  [
    {
      mode_name = "Check view-read race";
      run =
        (fun b ~k:_ ->
          with_detector (fun eng -> ignore (Peer_set.attach ~reach eng)) b);
    };
    {
      mode_name = "No steals";
      run =
        (fun b ~k:_ ->
          with_detector (fun eng -> ignore (Sp_plus.attach ~reach eng)) b);
    };
    {
      mode_name = "Check updates";
      run =
        (fun b ~k ->
          with_detector
            (fun eng -> ignore (Sp_plus.attach ~reach eng))
            ~spec:(spec_updates ~k) b);
    };
    {
      mode_name = "Check reductions";
      run =
        (fun b ~k ->
          with_detector
            (fun eng -> ignore (Sp_plus.attach ~reach eng))
            ~spec:(spec_reductions ~k ~seed:20150613)
            b);
    };
  ]

let modes =
  [
    { mode_name = "plain"; run = (fun b ~k:_ -> b.Bench_def.plain ()) };
    {
      mode_name = "empty tool";
      run = (fun b ~k:_ -> with_detector (fun _ -> ()) b);
    };
  ]
  @ detector_modes ~reach:Reach.Dset

(* Mode display names -> schema keys (stable even if table titles move). *)
let mode_key = function
  | "plain" -> "plain"
  | "empty tool" -> "empty_tool"
  | "Check view-read race" -> "check_view_read_race"
  | "No steals" -> "no_steals"
  | "Check updates" -> "check_updates"
  | "Check reductions" -> "check_reductions"
  | s -> s

type row = {
  bench : Bench_def.t;
  k : int;
  d : int;
  prof : Coverage.profile;
  times : (string * float) list; (* mode -> best per-iteration mean seconds *)
}

let time_suite () =
  let suite = Suite.all ~scale () in
  List.map
    (fun b ->
      Printf.printf "timing %-10s ...%!" b.Bench_def.name;
      let prof = Coverage.profile b.Bench_def.cilk in
      let k = prof.Coverage.k in
      (* correctness check: every mode must return the plain checksum *)
      let expected = b.Bench_def.plain () in
      List.iter
        (fun m ->
          let got = m.run b ~k in
          if got <> expected then
            failwith
              (Printf.sprintf "%s/%s: checksum mismatch" b.Bench_def.name m.mode_name))
        modes;
      let times = List.map (fun m -> (m.mode_name, measure (fun () -> m.run b ~k))) modes in
      Printf.printf " done\n%!";
      { bench = b; k; d = prof.Coverage.d; prof; times })
    suite

let ratio row m base = List.assoc m row.times /. List.assoc base row.times

let overhead_table ~title ~base rows =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  let cols = [ "Check view-read race"; "No steals"; "Check updates"; "Check reductions" ] in
  let t = Tablefmt.create ([ "Benchmark"; "Input size"; "Description" ] @ cols) in
  List.iter
    (fun row ->
      Tablefmt.add_row t
        ([
           row.bench.Bench_def.name;
           row.bench.Bench_def.input;
           row.bench.Bench_def.descr;
         ]
        @ List.map (fun c -> Tablefmt.cell_f (ratio row c base)) cols))
    rows;
  Tablefmt.add_rule t;
  let geo c = Stats.geomean (List.map (fun r -> ratio r c base) rows) in
  Tablefmt.add_row t
    ([ "geometric mean"; ""; "" ] @ List.map (fun c -> Tablefmt.cell_f (geo c)) cols);
  let lo, hi =
    Stats.min_max (List.concat_map (fun r -> List.map (fun c -> ratio r c base) cols) rows)
  in
  Tablefmt.add_row t
    [ "range"; ""; ""; Printf.sprintf "%.2f - %.2f" lo hi ];
  Tablefmt.print t

(* Historically flagged sub-100µs plain baselines, whose per-iteration
   clock reads made overhead ratios swing by tens of percent run to run.
   [measure] now batches repetitions inside a single clock pair so every
   sample spans >= [min_block] regardless of per-iteration duration; the
   hazard is gone by construction, and the flag (kept for table/JSON
   schema continuity) is constant [false]. *)
let row_noisy (_ : row) = false

let base_times_table rows =
  Printf.printf "\nAbsolute base times (best of n)\n-------------------------------\n";
  let t =
    Tablefmt.create [ "Benchmark"; "K"; "D"; "plain (s)"; "empty tool (s)"; "noisy" ]
  in
  List.iter
    (fun row ->
      Tablefmt.add_row t
        [
          row.bench.Bench_def.name;
          string_of_int row.k;
          string_of_int row.d;
          Printf.sprintf "%.5f" (List.assoc "plain" row.times);
          Printf.sprintf "%.5f" (List.assoc "empty tool" row.times);
          (if row_noisy row then "yes (plain < 100us)" else "");
        ])
    rows;
  Tablefmt.print t

(* ---------- S1: §7 steal-specification family sizes ---------- *)

let s1_spec_families rows =
  Printf.printf
    "\nS1: coverage steal-specification family sizes (Theorems 6 & 7)\n\
     ---------------------------------------------------------------\n";
  let t =
    Tablefmt.create [ "K"; "update specs (K+D+1, D=4)"; "reduction specs"; "K^3/6" ]
  in
  List.iter
    (fun k ->
      Tablefmt.add_row t
        [
          string_of_int k;
          string_of_int (List.length (Coverage.specs_for_updates ~k ~d:4));
          string_of_int (List.length (Coverage.specs_for_reductions ~k));
          string_of_int (k * k * k / 6);
        ])
    [ 2; 4; 8; 12; 16; 24; 32 ];
  Tablefmt.print t;
  Printf.printf "\nPer-benchmark profile (K = max continuations per sync block):\n";
  let t = Tablefmt.create [ "Benchmark"; "K"; "D"; "specs for full coverage" ] in
  List.iter
    (fun row ->
      Tablefmt.add_row t
        [
          row.bench.Bench_def.name;
          string_of_int row.k;
          string_of_int row.d;
          string_of_int (List.length (Coverage.all_specs ~k:row.k ~d:row.d));
        ])
    rows;
  Tablefmt.print t

(* ---------- S2: SP+ cost vs number of steals (Theorem 5) ---------- *)

let s2_steal_sweep () =
  Printf.printf
    "\nS2: SP+ running time vs simulated steals M (fib workload)\n\
     ---------------------------------------------------------\n";
  let b = Suite.find ~scale:(Float.min scale 2.0) "fib" in
  let t = Tablefmt.create [ "steal density"; "steals M"; "reduce calls"; "time (s)"; "vs M=0" ] in
  let base = ref None in
  List.iter
    (fun density ->
      let spec =
        if density = 0.0 then Steal_spec.none
        else Steal_spec.random ~seed:7 ~density ()
      in
      let run () =
        let eng = Engine.create ~spec () in
        ignore (Sp_plus.attach eng);
        ignore (Engine.run eng b.Bench_def.cilk);
        Engine.stats eng
      in
      let stats = run () in
      let dt = measure (fun () -> ignore (run ())) in
      let b0 = match !base with None -> base := Some dt; dt | Some b0 -> b0 in
      Tablefmt.add_row t
        [
          Printf.sprintf "%.2f" density;
          string_of_int stats.Engine.n_steals;
          string_of_int stats.Engine.n_reduce_calls;
          Printf.sprintf "%.4f" dt;
          Tablefmt.cell_f (dt /. b0);
        ])
    [ 0.0; 0.05; 0.1; 0.25; 0.5; 0.75; 1.0 ];
  Tablefmt.print t

(* ---------- S3: work-stealing simulator speedup ---------- *)

let s3_wsim () =
  Printf.printf
    "\nS3: simulated work-stealing speedup (pbfs dag, unit-cost strands)\n\
     -----------------------------------------------------------------\n";
  let b = Suite.find ~scale:(Float.min scale 1.0) "pbfs" in
  let eng = Engine.create ~record:true () in
  ignore (Engine.run eng b.Bench_def.cilk);
  let t = Tablefmt.create [ "workers"; "makespan T_p"; "speedup T1/T_p"; "steals" ] in
  let t1 = ref 0 in
  List.iter
    (fun p ->
      let res = Rader_sched.Wsim.simulate ~workers:p ~seed:42 eng in
      if p = 1 then t1 := res.Rader_sched.Wsim.makespan;
      Tablefmt.add_row t
        [
          string_of_int p;
          string_of_int res.Rader_sched.Wsim.makespan;
          Printf.sprintf "%.2f"
            (float_of_int !t1 /. float_of_int res.Rader_sched.Wsim.makespan);
          string_of_int res.Rader_sched.Wsim.n_steals;
        ])
    [ 1; 2; 4; 8; 16 ];
  Tablefmt.print t

(* ---------- S4: multicore coverage sweep (paper §7 across domains) ---------- *)

(* A workload shaped for the sweep: K = [sweep_width] continuations in the
   root sync block (the acceptance floor is K >= 6), each spawn doing
   enough reducer updates that one spec replay has measurable work. *)
let sweep_width = 7
let sweep_work = if fast then 40 else 160

let sweep_program ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  for _ = 1 to sweep_width do
    ignore
      (Cilk.spawn ctx (fun ctx ->
           for i = 1 to sweep_work do
             Rmonoid.add ctx r i
           done))
  done;
  Cilk.sync ctx;
  ignore (Rmonoid.int_cell_value ctx r)

type s4_data = {
  s4_k : int;
  s4_d : int;
  s4_n_specs : int;
  s4_ncores : int;
  s4_times : (int * float option) list;
      (* jobs -> best sweep seconds; [None] = more jobs than cores, the
         speedup would be hardware-bound noise, so the row is skipped *)
  s4_fresh : float; (* N replays, fresh engine per spec *)
  s4_reset : float; (* N replays, one engine recycled via reset *)
  s4_reuse_iters : int;
}

let s4_parallel_sweep () =
  let ncores = Parallel_sweep.default_jobs () in
  let prof = Coverage.profile sweep_program in
  let n_specs =
    List.length (Coverage.all_specs ~k:prof.Coverage.k ~d:prof.Coverage.d)
  in
  let job_counts = List.sort_uniq compare [ 1; 2; 4; ncores ] in
  let times =
    List.map
      (fun jobs ->
        if jobs > ncores then (jobs, None)
        else
          let dt =
            measure (fun () ->
                let res = Coverage.exhaustive_check ~jobs sweep_program in
                assert res.Coverage.complete;
                0)
          in
          (jobs, Some dt))
      job_counts
  in
  (* Engine reuse: the same batch of spec replays with a fresh
     engine+detector per spec vs one pair recycled through
     Engine.reset / Sp_plus.reset. *)
  let spec =
    Steal_spec.at_local_indices ~policy:Steal_spec.Reduce_eagerly [ 2; 4 ]
  in
  let reuse_iters = if fast then 200 else 400 in
  let fresh =
    measure (fun () ->
        for _ = 1 to reuse_iters do
          let eng = Engine.create ~spec () in
          let det = Sp_plus.attach eng in
          (match Engine.run_result eng sweep_program with
          | Ok _ -> ()
          | Error _ -> assert false);
          assert (Sp_plus.races det = [])
        done;
        0)
  in
  let reset =
    measure (fun () ->
        let eng = Engine.create () in
        let det = Sp_plus.attach eng in
        for _ = 1 to reuse_iters do
          Engine.reset ~spec eng;
          Sp_plus.reset det;
          (match Engine.run_result eng sweep_program with
          | Ok _ -> ()
          | Error _ -> assert false);
          assert (Sp_plus.races det = [])
        done;
        0)
  in
  {
    s4_k = prof.Coverage.k;
    s4_d = prof.Coverage.d;
    s4_n_specs = n_specs;
    s4_ncores = ncores;
    s4_times = times;
    s4_fresh = fresh;
    s4_reset = reset;
    s4_reuse_iters = reuse_iters;
  }

let s4_print (s4 : s4_data) =
  Printf.printf
    "\nS4: multicore coverage sweep (K=%d D=%d workload, %d steal specs;\n\
     %d core(s) available — job counts beyond that are skipped)\n\
     ----------------------------------------------------------------\n"
    s4.s4_k s4.s4_d s4.s4_n_specs s4.s4_ncores;
  let t = Tablefmt.create [ "jobs"; "sweep (s)"; "speedup vs jobs=1" ] in
  let t1 = Option.get (List.assoc 1 s4.s4_times) in
  List.iter
    (fun (jobs, dt) ->
      match dt with
      | Some dt ->
          Tablefmt.add_row t
            [ string_of_int jobs; Printf.sprintf "%.4f" dt; Tablefmt.cell_f (t1 /. dt) ]
      | None ->
          Tablefmt.add_row t
            [
              string_of_int jobs;
              Printf.sprintf "skipped (%d core(s))" s4.s4_ncores;
              "-";
            ])
    s4.s4_times;
  Tablefmt.print t;
  Printf.printf
    "engine reuse (%d replays under one spec): fresh %.4fs, reset %.4fs -> \
     fresh/reset = %.2fx\n"
    s4.s4_reuse_iters s4.s4_fresh s4.s4_reset (s4.s4_fresh /. s4.s4_reset)

(* ---------- S5: detector comparison on view-oblivious workloads ---------- *)

let s5_detector_comparison () =
  Printf.printf
    "\nS5: serial detector comparison on reducer-free workloads\n\
     (overhead over the empty tool; SP-bags/SP-order/offset-span are the\n\
     related-work baselines of §9, SP+ degenerates to SP-bags here)\n\
     --------------------------------------------------------------\n";
  let workloads =
    [
      Bm_oblivious.fib_futures ~n:(if fast then 18 else 21);
      Bm_oblivious.stencil ~seed:1
        ~n:(if fast then 4096 else 16384)
        ~rounds:(if fast then 4 else 8)
        ~grain:32;
    ]
  in
  let detectors =
    [
      ("empty", fun _ -> ());
      ("SP-bags", fun eng -> ignore (Sp_bags.attach eng));
      ("SP-order", fun eng -> ignore (Sp_order.attach eng));
      ("offset-span", fun eng -> ignore (Offset_span.attach eng));
      ("SP+", fun eng -> ignore (Sp_plus.attach eng));
    ]
  in
  let t =
    Tablefmt.create
      ("Workload" :: "Input" :: List.map fst (List.tl detectors))
  in
  List.iter
    (fun b ->
      let time_of attach =
        measure (fun () ->
            let eng = Engine.create () in
            attach eng;
            ignore (Engine.run eng b.Bench_def.cilk))
      in
      let base = time_of (fun _ -> ()) in
      Tablefmt.add_row t
        (b.Bench_def.name :: b.Bench_def.input
        :: List.filter_map
             (fun (name, attach) ->
               if name = "empty" then None
               else Some (Tablefmt.cell_f (time_of attach /. base)))
             detectors))
    workloads;
  Tablefmt.print t

(* ---------- S7: relevance-guided steal-spec pruning ---------- *)

(* How much of each benchmark's §7 spec family the relevance profile
   (Coverage.spec_relevant, DESIGN.md §10) proves redundant. The suite
   benchmarks all use reducers, so only positions past the last
   instrumented event of a sync block prune; the reducer-free §9 workloads
   (fib-futures, stencil) prune their whole family down to the no-steal
   baseline. *)

type s7_row = {
  s7_name : string;
  s7_k : int;
  s7_d : int;
  s7_k_rel : int;
  s7_total : int;
  s7_kept : int;
}

let s7_of_profile name (prof : Coverage.profile) =
  let specs = Coverage.all_specs ~k:prof.Coverage.k ~d:prof.Coverage.d in
  let kept = Coverage.prune_specs prof specs in
  {
    s7_name = name;
    s7_k = prof.Coverage.k;
    s7_d = prof.Coverage.d;
    s7_k_rel = prof.Coverage.k_rel;
    s7_total = List.length specs;
    s7_kept = List.length kept;
  }

let s7_spec_pruning rows =
  let oblivious =
    [
      Bm_oblivious.fib_futures ~n:(if fast then 12 else 16);
      Bm_oblivious.stencil ~seed:1
        ~n:(if fast then 1024 else 4096)
        ~rounds:(if fast then 2 else 4)
        ~grain:32;
    ]
  in
  List.map (fun row -> s7_of_profile row.bench.Bench_def.name row.prof) rows
  @ List.map
      (fun b ->
        s7_of_profile b.Bench_def.name (Coverage.profile b.Bench_def.cilk))
      oblivious

let s7_pruned_pct r =
  100.0 *. float_of_int (r.s7_total - r.s7_kept) /. float_of_int r.s7_total

let s7_print s7rows =
  Printf.printf
    "\nS7: relevance-guided steal-spec pruning (specs kept vs full family)\n\
     -------------------------------------------------------------------\n";
  let t =
    Tablefmt.create [ "Benchmark"; "K"; "D"; "k_rel"; "specs"; "kept"; "pruned %" ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.s7_name;
          string_of_int r.s7_k;
          string_of_int r.s7_d;
          string_of_int r.s7_k_rel;
          string_of_int r.s7_total;
          string_of_int r.s7_kept;
          Printf.sprintf "%.0f%%" (s7_pruned_pct r);
        ])
    s7rows;
  Tablefmt.print t

(* ---------- S8: service throughput (rader serve) ---------- *)

(* Checks/sec through the full daemon stack — socket, framing, admission
   queue, worker-domain dispatch, arena reuse — at increasing client
   counts, plus the shed rate when a deliberately starved pool (one
   worker, depth-1 queue, no client retries) is overloaded: the daemon
   must answer every request even when it cannot serve them all. *)

module Serve = Rader_serve.Server
module Sload = Rader_serve.Load
module Sproto = Rader_serve.Proto

type s8_row = {
  s8_clients : int;
  s8_cps : float;
  s8_sent : int;
  s8_answered : int;
}

type s8_data = {
  s8_rows : s8_row list;
  s8_per_client : int;
  s8_over_sent : int;
  s8_over_sheds : int;
  s8_over_served : int;
}

let s8_addr tag =
  Serve.Unix_path
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "rader-bench-%d-%s.sock" (Unix.getpid ()) tag))

(* Distinct seeds defeat the verdict cache: S8 measures service, not
   cache lookups. *)
let s8_submit i =
  {
    Sproto.kind = Sproto.Check;
    program = "fig1-buggy";
    scale = 1.0;
    seed = i;
    spec = "all";
    density = 0.5;
    max_events = None;
    deadline_s = None;
    prune = false;
  }

let s8_service_throughput () =
  let per_client = if fast then 25 else 100 in
  let rows =
    List.map
      (fun clients ->
        let cfg =
          {
            (Serve.default_config ~addr:(s8_addr (string_of_int clients))) with
            Serve.workers = 2;
            queue_depth = 64;
          }
        in
        let t = Serve.start cfg in
        let r =
          Sload.run ~addr:(Serve.bound_addr t) ~clients
            ~requests_per_client:per_client ~make:s8_submit ()
        in
        ignore (Serve.stop t);
        {
          s8_clients = clients;
          s8_cps = r.Sload.checks_per_s;
          s8_sent = r.Sload.tally.Sload.sent;
          s8_answered = Sload.answered r.Sload.tally;
        })
      [ 1; 4; 16 ]
  in
  let cfg =
    {
      (Serve.default_config ~addr:(s8_addr "overload")) with
      Serve.workers = 1;
      queue_depth = 1;
      retry_after_ms = 1;
    }
  in
  let t = Serve.start cfg in
  let r =
    Sload.run ~retries:0 ~addr:(Serve.bound_addr t) ~clients:16
      ~requests_per_client:per_client ~make:s8_submit ()
  in
  ignore (Serve.stop t);
  let tally = r.Sload.tally in
  {
    s8_rows = rows;
    s8_per_client = per_client;
    s8_over_sent = tally.Sload.sent;
    s8_over_sheds = tally.Sload.sheds;
    s8_over_served = tally.Sload.verdicts + tally.Sload.partials;
  }

let s8_shed_pct s8 =
  100.0 *. float_of_int s8.s8_over_sheds /. float_of_int (max 1 s8.s8_over_sent)

let s8_print s8 =
  Printf.printf
    "\nS8: service throughput — checks/sec through the rader serve daemon\n\
     ------------------------------------------------------------------\n";
  let t = Tablefmt.create [ "Clients"; "Requests"; "Answered"; "Checks/s" ] in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          string_of_int r.s8_clients;
          string_of_int r.s8_sent;
          string_of_int r.s8_answered;
          Printf.sprintf "%.0f" r.s8_cps;
        ])
    s8.s8_rows;
  Tablefmt.print t;
  Printf.printf
    "overload (1 worker, depth-1 queue, 16 clients, no retries): %d requests, \
     %d served, %d shed (%.0f%%) — all answered\n"
    s8.s8_over_sent s8.s8_over_served s8.s8_over_sheds (s8_shed_pct s8)

(* ---------- S6: the obs-layer cost model behind Figures 7/8 ---------- *)

(* Re-run each benchmark under each detector configuration with counting
   on and derive the per-event detector work — the unit-cost model behind
   the measured Fig. 7/8 multipliers (Theorems 4/5 say this ratio is
   O(α), i.e. flat). These runs are separate from the timed ones above,
   so counting never pollutes the wall-clock numbers. *)

type s6_row = {
  s6_bench : string;
  s6_modes : (string * Obs.counters) list;
      (* schema mode key -> delta, under the dset backend *)
  s6_modes_depa : (string * Obs.counters) list;
      (* detector modes only, under the depa backend *)
}

let s6_mode_keys =
  [ "empty_tool"; "check_view_read_race"; "no_steals"; "check_updates"; "check_reductions" ]

(* Total detector work: disjoint-set + bag + shadow ops under dset,
   fingerprint-word + epoch ops (reach_ops) under depa — each backend
   bumps only its own family, so the sum is comparable across both. *)
let s6_detector_ops c =
  Obs.dset_ops c + Obs.bag_ops c + Obs.shadow_ops c + Obs.reach_ops c

let s6_ops_per_event c =
  float_of_int (s6_detector_ops c) /. float_of_int c.Obs.events

let s6_cost_model rows =
  List.map
    (fun row ->
      let deltas_of ms =
        List.filter_map
          (fun m ->
            if m.mode_name = "plain" then None
            else
              let _, delta = Obs.with_enabled (fun () -> m.run row.bench ~k:row.k) in
              Some (mode_key m.mode_name, delta))
          ms
      in
      {
        s6_bench = row.bench.Bench_def.name;
        s6_modes = deltas_of modes;
        s6_modes_depa = deltas_of (detector_modes ~reach:Reach.Depa);
      })
    rows

let s6_print s6rows =
  Printf.printf
    "\nS6: detector operations per engine event (obs counters;\n\
     predicted unit-cost overhead over the empty tool = 1 + ops/event;\n\
     one row per precedence backend — dset counts disjoint-set/bag work,\n\
     depa counts fingerprint words + epoch-table steps)\n\
     ----------------------------------------------------------------\n";
  let det_keys = List.filter (fun k -> k <> "empty_tool") s6_mode_keys in
  let t = Tablefmt.create ([ "Benchmark"; "reach"; "events" ] @ det_keys) in
  List.iter
    (fun r ->
      let events = (List.assoc "empty_tool" r.s6_modes).Obs.events in
      List.iter
        (fun (backend, l) ->
          Tablefmt.add_row t
            ([ r.s6_bench; backend; string_of_int events ]
            @ List.map
                (fun key -> Tablefmt.cell_f (s6_ops_per_event (List.assoc key l)))
                det_keys))
        [ ("dset", r.s6_modes); ("depa", r.s6_modes_depa) ])
    s6rows;
  Tablefmt.print t

(* ---------- S9: precedence-backend comparison (dset vs depa) ---------- *)

(* The verdict is backend-independent (property-tested); what the backend
   changes is the constant factor. S9 publishes that factor both ways it
   can be seen: counted detector ops per engine event (deterministic,
   noise-free) and the measured Fig. 8 overhead over the empty tool
   (wall-clock, so subject to the same noise flag as Fig. 7/8). *)

type s9_cell = {
  s9_ops_dset : float;
  s9_ops_depa : float;
  s9_fig8_dset : float;
  s9_fig8_depa : float;
}

type s9_row = {
  s9_bench : string;
  s9_noisy : bool;
  s9_cells : (string * s9_cell) list; (* schema mode key -> cell *)
}

let s9_backend_comparison rows s6rows =
  List.map2
    (fun row s6 ->
      Printf.printf "timing %-10s [depa] ...%!" row.bench.Bench_def.name;
      let empty_t = List.assoc "empty tool" row.times in
      let cells =
        List.map
          (fun m ->
            let key = mode_key m.mode_name in
            let t_depa = measure (fun () -> m.run row.bench ~k:row.k) in
            ( key,
              {
                s9_ops_dset = s6_ops_per_event (List.assoc key s6.s6_modes);
                s9_ops_depa = s6_ops_per_event (List.assoc key s6.s6_modes_depa);
                s9_fig8_dset = List.assoc m.mode_name row.times /. empty_t;
                s9_fig8_depa = t_depa /. empty_t;
              } ))
          (detector_modes ~reach:Reach.Depa)
      in
      Printf.printf " done\n%!";
      {
        s9_bench = row.bench.Bench_def.name;
        s9_noisy = row_noisy row;
        s9_cells = cells;
      })
    rows s6rows

let s9_print s9rows =
  Printf.printf
    "\nS9: precedence-backend comparison — dset (disjoint sets) vs depa\n\
     (DePa fingerprints); ops/event is deterministic, overheads are\n\
     wall-clock (noisy rows flagged as in the base-times table)\n\
     ----------------------------------------------------------------\n";
  let t =
    Tablefmt.create
      [
        "Benchmark";
        "mode";
        "ops/ev dset";
        "ops/ev depa";
        "depa/dset";
        "x empty dset";
        "x empty depa";
        "noisy";
      ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun (key, c) ->
          Tablefmt.add_row t
            [
              r.s9_bench;
              key;
              Tablefmt.cell_f c.s9_ops_dset;
              Tablefmt.cell_f c.s9_ops_depa;
              Tablefmt.cell_f (c.s9_ops_depa /. c.s9_ops_dset);
              Tablefmt.cell_f c.s9_fig8_dset;
              Tablefmt.cell_f c.s9_fig8_depa;
              (if r.s9_noisy then "yes" else "");
            ])
        r.s9_cells)
    s9rows;
  Tablefmt.add_rule t;
  let all_cells = List.concat_map (fun r -> List.map snd r.s9_cells) s9rows in
  let geo f = Stats.geomean (List.map f all_cells) in
  Tablefmt.add_row t
    [
      "geometric mean";
      "";
      Tablefmt.cell_f (geo (fun c -> c.s9_ops_dset));
      Tablefmt.cell_f (geo (fun c -> c.s9_ops_depa));
      Tablefmt.cell_f (geo (fun c -> c.s9_ops_depa /. c.s9_ops_dset));
      Tablefmt.cell_f (geo (fun c -> c.s9_fig8_dset));
      Tablefmt.cell_f (geo (fun c -> c.s9_fig8_depa));
      "";
    ];
  Tablefmt.print t

(* ---------- S10: online throughput (real work-stealing runtime) ---------- *)

(* Events/sec through the Online runtime — effects scheduler, Chase-Lev
   deques, lock-striped shadows, fingerprint oracle — at 1/2/4 worker
   domains, against the serial detector stack (Engine + SP+ + Peer-Set,
   same depa backend) on the same program. The structural steal set is a
   pure function of (program, seed, density), so every row checks the
   same SP tree; what varies across rows is only genuine parallel
   execution. [x serial] is wall-clock relative to the serial stack —
   the price (or win) of detecting on-the-fly instead of replaying. *)

module Online = Rader_sched.Online

type s10_row = { s10_workers : int; s10_s : float; s10_events : int }

type s10_prog = {
  s10_name : string;
  s10_serial_s : float;
  s10_serial_events : int;
  s10_rows : s10_row list;
}

let s10_worker_counts = [ 1; 2; 4 ]

let s10_online_throughput () =
  let s10_scale = if fast then 0.25 else 1.0 in
  let prog name =
    match Demos.resolve ~scale:s10_scale name with
    | Ok p -> p
    | Error m -> failwith m
  in
  List.map
    (fun name ->
      Printf.printf "timing %-10s [online] ...%!" name;
      let p = prog name in
      let serial_run () =
        let eng = Engine.create () in
        ignore (Sp_plus.attach ~reach:Reach.Depa eng);
        ignore (Peer_set.attach ~reach:Reach.Depa eng);
        Engine.run eng p
      in
      let serial_s = measure serial_run in
      let _, serial_delta = Obs.with_enabled serial_run in
      let rows =
        List.map
          (fun workers ->
            let cfg = Online.default ~workers ~seed:1 () in
            let events = ref 0 in
            let s =
              measure (fun () ->
                  let o = Online.run cfg p in
                  events := o.Online.events;
                  match o.Online.value with
                  | Ok v -> v
                  | Error f -> failwith ("S10: online run failed: " ^ Fault.to_string f))
            in
            { s10_workers = workers; s10_s = s; s10_events = !events })
          s10_worker_counts
      in
      Printf.printf " done\n%!";
      {
        s10_name = name;
        s10_serial_s = serial_s;
        s10_serial_events = serial_delta.Obs.events;
        s10_rows = rows;
      })
    [ "fib"; "wordcount" ]

let s10_print progs =
  Printf.printf
    "\nS10: online throughput — events/sec on the real work-stealing\n\
     runtime at 1/2/4 worker domains, vs the serial detector stack\n\
     (SP+ + Peer-Set, depa backend) on the same program\n\
     ----------------------------------------------------------------\n";
  let t =
    Tablefmt.create
      [ "Program"; "workers"; "events"; "events/s"; "speedup"; "x serial" ]
  in
  List.iter
    (fun p ->
      Tablefmt.add_row t
        [
          p.s10_name;
          "serial";
          string_of_int p.s10_serial_events;
          Printf.sprintf "%.3g"
            (float_of_int p.s10_serial_events /. p.s10_serial_s);
          "";
          "1.00";
        ];
      let w1 = (List.hd p.s10_rows).s10_s in
      List.iter
        (fun r ->
          Tablefmt.add_row t
            [
              p.s10_name;
              string_of_int r.s10_workers;
              string_of_int r.s10_events;
              Printf.sprintf "%.3g" (float_of_int r.s10_events /. r.s10_s);
              Printf.sprintf "%.2f" (w1 /. r.s10_s);
              Printf.sprintf "%.2f" (r.s10_s /. p.s10_serial_s);
            ])
        p.s10_rows)
    progs;
  Tablefmt.print t

(* ---------- S11: symbolic verification vs the enumerated sweep ---------- *)

(* [rader verify] wall-clock against the enumerated §7 sweep on the same
   program, plus how many of the family's replays the symbolic layer
   eliminated (certified without running). Reducer-free programs
   (fib-futures, stencil) have an empty residual set, so the whole family
   collapses to the no-steal run — the replays-avoided column is the
   acceptance number. Parity (identical racy-location sets) is asserted,
   not just reported. *)

module Witness = Rader_analysis.Witness

type s11_row = {
  s11_name : string;
  s11_n_specs : int;
  s11_sweep_run : int;
  s11_sweep_s : float;
  s11_replays : int;
  s11_verify_s : float;
  s11_racy : int;
  s11_parity : bool;
}

let s11_avoided_pct r =
  100.0
  *. float_of_int (r.s11_n_specs - r.s11_replays)
  /. float_of_int (max 1 r.s11_n_specs)

let s11_symbolic_verify () =
  let s11_scale = if fast then 0.25 else 0.5 in
  let demo name =
    match Demos.resolve ~scale:s11_scale name with
    | Ok p -> (name, p)
    | Error m -> failwith m
  in
  let oblivious =
    [
      Bm_oblivious.fib_futures ~n:(if fast then 12 else 16);
      Bm_oblivious.stencil ~seed:1
        ~n:(if fast then 1024 else 4096)
        ~rounds:(if fast then 2 else 4)
        ~grain:32;
    ]
  in
  let corpus =
    List.map demo [ "fig1-buggy"; "fig1-fixed"; "fib"; "wordcount" ]
    @ List.map (fun b -> (b.Bench_def.name, b.Bench_def.cilk)) oblivious
  in
  List.map
    (fun (name, prog) ->
      Printf.printf "timing %-12s [verify] ...%!" name;
      let sweep, sweep_s =
        Stats.time_it (fun () -> Coverage.exhaustive_check prog)
      in
      let w, verify_s =
        Stats.time_it (fun () ->
            match Witness.verify ~name prog with
            | Ok w -> w
            | Error f -> failwith ("S11: verify failed: " ^ Diag.to_string f))
      in
      Printf.printf " done\n%!";
      {
        s11_name = name;
        s11_n_specs = sweep.Coverage.n_specs;
        s11_sweep_run = sweep.Coverage.n_run;
        s11_sweep_s = sweep_s;
        s11_replays = w.Witness.n_replays;
        s11_verify_s = verify_s;
        s11_racy = List.length w.Witness.racy_locs;
        s11_parity = w.Witness.racy_locs = sweep.Coverage.racy_locs;
      })
    corpus

let s11_print s11rows =
  Printf.printf
    "\nS11: symbolic verification (rader verify) vs the enumerated sweep —\n\
     replays eliminated by the closed-form scan, at identical verdicts\n\
     -------------------------------------------------------------------\n";
  let t =
    Tablefmt.create
      [
        "Benchmark";
        "specs";
        "sweep runs";
        "sweep s";
        "verify replays";
        "verify s";
        "avoided %";
        "speedup";
        "racy";
        "parity";
      ]
  in
  List.iter
    (fun r ->
      Tablefmt.add_row t
        [
          r.s11_name;
          string_of_int r.s11_n_specs;
          string_of_int r.s11_sweep_run;
          Printf.sprintf "%.3g" r.s11_sweep_s;
          string_of_int r.s11_replays;
          Printf.sprintf "%.3g" r.s11_verify_s;
          Printf.sprintf "%.0f%%" (s11_avoided_pct r);
          Printf.sprintf "%.2f" (r.s11_sweep_s /. r.s11_verify_s);
          string_of_int r.s11_racy;
          (if r.s11_parity then "ok" else "MISMATCH");
        ])
    s11rows;
  Tablefmt.print t;
  List.iter
    (fun r ->
      if not r.s11_parity then
        failwith ("S11: verify/sweep verdict mismatch on " ^ r.s11_name))
    s11rows

(* ---------- S12: engine event throughput ----------

   The hot-path overhaul's own yardstick: how many instrumentation events
   per second the serial engine pushes through

   - the [Null] tool (defunctionalized empty case — what Fig. 8
     normalizes by),
   - a no-op [Extern] closure-record tool (the seed's dispatch shape:
     every event costs an indirect call and span batching is off),
   - the full SP+ and Peer-Set detector stacks,

   all under the same "check updates" steal specification so the
   steal/reduce machinery is exercised. "Events" is everything the tool
   interface can observe — frame enters + returns, syncs, steals, reduce
   merges and memory accesses — and is configuration-independent, so the
   rows divide through by the same numerator. *)

type s12_row = {
  s12_bench : string;
  s12_events : int;
  s12_eps : (string * float) list; (* config key -> events per second *)
}

let s12_configs =
  [
    ("null_tool", fun (_ : Engine.t) -> ());
    ( "noop_extern",
      fun eng -> Engine.set_tool eng (Tool.extern Tool.hooks_null) );
    ("sp_plus", fun eng -> ignore (Sp_plus.attach ~reach:Reach.Dset eng));
    ("peer_set", fun eng -> ignore (Peer_set.attach ~reach:Reach.Dset eng));
  ]

let s12_event_count (st : Engine.stats) =
  (2 * st.Engine.n_frames) (* enter + return *)
  + st.Engine.n_syncs + st.Engine.n_steals + st.Engine.n_reduce_calls
  + st.Engine.n_reads + st.Engine.n_writes + st.Engine.n_reducer_reads

let s12_event_throughput rows =
  List.map
    (fun row ->
      let b = row.bench in
      Printf.printf "timing %-10s [events/s] ...%!" b.Bench_def.name;
      let spec = spec_updates ~k:row.k in
      let events =
        let eng = Engine.create ~spec () in
        ignore (Engine.run eng b.Bench_def.cilk);
        s12_event_count (Engine.stats eng)
      in
      let eps =
        List.map
          (fun (key, attach) ->
            let s =
              measure (fun () ->
                  let eng = Engine.create ~spec () in
                  attach eng;
                  Engine.run eng b.Bench_def.cilk)
            in
            (key, float_of_int events /. s))
          s12_configs
      in
      Printf.printf " done\n%!";
      { s12_bench = b.Bench_def.name; s12_events = events; s12_eps = eps })
    rows

let s12_print s12rows =
  Printf.printf
    "\nS12: engine event throughput under the \"check updates\" spec —\n\
     defunctionalized dispatch ([Null]/variant) vs the seed's closure\n\
     records ([Extern]), in observable events per second\n\
     --------------------------------------------------------------\n";
  let t =
    Tablefmt.create
      [
        "Benchmark";
        "events";
        "null tool Mev/s";
        "no-op extern Mev/s";
        "SP+ Mev/s";
        "Peer-Set Mev/s";
      ]
  in
  List.iter
    (fun r ->
      let mev key = Printf.sprintf "%.2f" (List.assoc key r.s12_eps /. 1e6) in
      Tablefmt.add_row t
        [
          r.s12_bench;
          string_of_int r.s12_events;
          mev "null_tool";
          mev "noop_extern";
          mev "sp_plus";
          mev "peer_set";
        ])
    s12rows;
  Tablefmt.print t

(* ---------- bechamel micro-benchmarks: one Test.make per table ---------- *)

let bechamel_tables () =
  let open Bechamel in
  let tiny = Suite.all ~scale:0.25 () in
  let mk_fig7 b =
    Test.make ~name:b.Bench_def.name
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           ignore (Sp_plus.attach eng);
           ignore (Engine.run eng b.Bench_def.cilk)))
  in
  let mk_fig8 b =
    Test.make ~name:b.Bench_def.name
      (Staged.stage (fun () ->
           let eng = Engine.create () in
           ignore (Engine.run eng b.Bench_def.cilk)))
  in
  let grouped =
    Test.make_grouped ~name:"bechamel"
      [
        Test.make_grouped ~name:"fig7-sp+" (List.map mk_fig7 tiny);
        Test.make_grouped ~name:"fig8-empty-tool" (List.map mk_fig8 tiny);
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~stabilize:false () in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf
    "\nBechamel micro-benchmarks (ns per whole-benchmark run, tiny inputs)\n\
     -------------------------------------------------------------------\n";
  let t = Tablefmt.create [ "test"; "ns/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Tablefmt.add_row t
        [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Tablefmt.print t

(* ---------- BENCH_rader.json: the persisted perf trajectory ---------- *)

(* Hand-rolled emitter (no JSON dependency in the image). Keys are part of
   the schema: never rename them, only add — future PRs diff this file
   against their own run to see performance moves. *)
type json =
  | Num of float
  | Int of int
  | Bool of bool
  | Str of string
  | Obj of (string * json) list

let rec emit_json buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Num f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Str s ->
      Buffer.add_char buf '"';
      String.iter
        (function
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          emit_json buf (Str k);
          Buffer.add_char buf ':';
          emit_json buf v)
        fields;
      Buffer.add_char buf '}'

let bench_json rows (s4 : s4_data) s6rows s7rows (s8 : s8_data) s9rows s10progs
    s11rows s12rows =
  let overhead_grid base =
    Obj
      (List.map
         (fun row ->
           ( row.bench.Bench_def.name,
             Obj
               (List.filter_map
                  (fun (m, _) ->
                    if m = "plain" || m = "empty tool" then None
                    else Some (mode_key m, Num (ratio row m base)))
                  row.times) ))
         rows)
  in
  let base_times =
    Obj
      (List.map
         (fun row ->
           ( row.bench.Bench_def.name,
             Obj
               [
                 ("k", Int row.k);
                 ("d", Int row.d);
                 ("plain_s", Num (List.assoc "plain" row.times));
                 ("empty_tool_s", Num (List.assoc "empty tool" row.times));
                 ("noisy", Bool (row_noisy row));
               ] ))
         rows)
  in
  let t1 = Option.get (List.assoc 1 s4.s4_times) in
  (* skipped (hardware-bound) job counts serialize as null, and are listed
     under skipped_jobs, so trajectory diffs on bigger hosts see the hole *)
  let opt_num = function Some x -> Num x | None -> Num Float.nan in
  let s6_counters =
    (* depa deltas ride along as "<mode>_depa" keys — additive, so the
       rader-bench/4 keys keep their meaning (dset backend) *)
    let counters_obj c =
      Obj
        (List.map (fun (k, v) -> (k, Int v)) (Obs.to_assoc c)
        @ [
            ("detector_ops", Int (s6_detector_ops c));
            ("detector_ops_per_event", Num (s6_ops_per_event c));
          ])
    in
    Obj
      (List.map
         (fun r ->
           ( r.s6_bench,
             Obj
               (List.map (fun (mode, c) -> (mode, counters_obj c)) r.s6_modes
               @ List.map
                   (fun (mode, c) -> (mode ^ "_depa", counters_obj c))
                   r.s6_modes_depa) ))
         s6rows)
  in
  let s9_json =
    Obj
      (List.map
         (fun r ->
           ( r.s9_bench,
             Obj
               (("noisy", Bool r.s9_noisy)
               :: List.map
                    (fun (key, c) ->
                      ( key,
                        Obj
                          [
                            ("ops_per_event_dset", Num c.s9_ops_dset);
                            ("ops_per_event_depa", Num c.s9_ops_depa);
                            ("ops_ratio", Num (c.s9_ops_depa /. c.s9_ops_dset));
                            ("fig8_dset", Num c.s9_fig8_dset);
                            ("fig8_depa", Num c.s9_fig8_depa);
                          ] ))
                    r.s9_cells) ))
         s9rows)
  in
  let s7_json =
    Obj
      (List.map
         (fun r ->
           ( r.s7_name,
             Obj
               [
                 ("k", Int r.s7_k);
                 ("d", Int r.s7_d);
                 ("k_rel", Int r.s7_k_rel);
                 ("specs_total", Int r.s7_total);
                 ("specs_kept", Int r.s7_kept);
                 ("pruned_pct", Num (s7_pruned_pct r));
               ] ))
         s7rows)
  in
  let s10_json =
    Obj
      (List.map
         (fun p ->
           ( p.s10_name,
             Obj
               [
                 ("serial_detector_s", Num p.s10_serial_s);
                 ("serial_events", Int p.s10_serial_events);
                 ( "by_workers",
                   Obj
                     (List.map
                        (fun r ->
                          ( string_of_int r.s10_workers,
                            Obj
                              [
                                ("seconds", Num r.s10_s);
                                ("events", Int r.s10_events);
                                ( "events_per_s",
                                  Num (float_of_int r.s10_events /. r.s10_s) );
                                ("x_serial", Num (r.s10_s /. p.s10_serial_s));
                              ] ))
                        p.s10_rows) );
               ] ))
         s10progs)
  in
  let s11_json =
    Obj
      (List.map
         (fun r ->
           ( r.s11_name,
             Obj
               [
                 ("n_specs", Int r.s11_n_specs);
                 ("sweep_runs", Int r.s11_sweep_run);
                 ("sweep_s", Num r.s11_sweep_s);
                 ("verify_replays", Int r.s11_replays);
                 ("verify_s", Num r.s11_verify_s);
                 ("replays_avoided_pct", Num (s11_avoided_pct r));
                 ("speedup_vs_sweep", Num (r.s11_sweep_s /. r.s11_verify_s));
                 ("racy_locs", Int r.s11_racy);
                 ("parity", Bool r.s11_parity);
               ] ))
         s11rows)
  in
  let s12_json =
    Obj
      (List.map
         (fun r ->
           ( r.s12_bench,
             Obj
               [
                 ("events", Int r.s12_events);
                 ( "events_per_s",
                   Obj (List.map (fun (k, v) -> (k, Num v)) r.s12_eps) );
               ] ))
         s12rows)
  in
  Obj
    [
      (* rader-bench/8: s12_event_throughput added; base_times.noisy is
         now constant false (batched-reps measurement) *)
      ("schema", Str "rader-bench/8");
      ("scale", Num scale);
      ("fast", Bool fast);
      ("ncores", Int s4.s4_ncores);
      ("fig7_overhead_vs_plain", overhead_grid "plain");
      ("fig8_overhead_vs_empty_tool", overhead_grid "empty tool");
      ("base_times", base_times);
      ( "s4_parallel_sweep",
        Obj
          [
            ("workload_k", Int s4.s4_k);
            ("workload_d", Int s4.s4_d);
            ("n_specs", Int s4.s4_n_specs);
            ("recommended_domain_count", Int s4.s4_ncores);
            ( "sweep_seconds_by_jobs",
              Obj
                (List.map (fun (j, dt) -> (string_of_int j, opt_num dt)) s4.s4_times)
            );
            ( "speedup_vs_jobs1",
              Obj
                (List.map
                   (fun (j, dt) ->
                     (string_of_int j, opt_num (Option.map (fun d -> t1 /. d) dt)))
                   s4.s4_times) );
            ( "skipped_jobs",
              Str
                (String.concat ","
                   (List.filter_map
                      (fun (j, dt) ->
                        if dt = None then Some (string_of_int j) else None)
                      s4.s4_times)) );
            ( "engine_reuse",
              Obj
                [
                  ("replays", Int s4.s4_reuse_iters);
                  ("fresh_engine_s", Num s4.s4_fresh);
                  ("reset_reuse_s", Num s4.s4_reset);
                  ("fresh_over_reset", Num (s4.s4_fresh /. s4.s4_reset));
                ] );
          ] );
      ("s6_counters", s6_counters);
      ("s7_spec_pruning", s7_json);
      ("s9_reach_backends", s9_json);
      ( "s8_service_throughput",
        Obj
          [
            ("requests_per_client", Int s8.s8_per_client);
            ( "checks_per_s_by_clients",
              Obj
                (List.map
                   (fun r -> (string_of_int r.s8_clients, Num r.s8_cps))
                   s8.s8_rows) );
            ( "overload",
              Obj
                [
                  ("workers", Int 1);
                  ("queue_depth", Int 1);
                  ("clients", Int 16);
                  ("sent", Int s8.s8_over_sent);
                  ("served", Int s8.s8_over_served);
                  ("shed", Int s8.s8_over_sheds);
                  ("shed_pct", Num (s8_shed_pct s8));
                ] );
          ] );
      ("s10_online_throughput", s10_json);
      ("s11_symbolic_verify", s11_json);
      ("s12_event_throughput", s12_json);
    ]

let write_bench_json rows s4 s6rows s7rows s8 s9rows s10progs s11rows s12rows =
  let buf = Buffer.create 4096 in
  emit_json buf
    (bench_json rows s4 s6rows s7rows s8 s9rows s10progs s11rows s12rows);
  Buffer.add_char buf '\n';
  let oc = open_out "BENCH_rader.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "\nwrote BENCH_rader.json\n"

let () =
  Printf.printf
    "Rader/OCaml benchmark harness — reproducing Lee & Schardl, SPAA'15 §8\n\
     scale=%.2f fast=%b\n\n%!"
    scale fast;
  let rows = time_suite () in
  overhead_table ~title:"Figure 7: overhead over no instrumentation" ~base:"plain" rows;
  overhead_table ~title:"Figure 8: overhead over an empty tool" ~base:"empty tool" rows;
  base_times_table rows;
  s1_spec_families rows;
  s2_steal_sweep ();
  s3_wsim ();
  let s4 = s4_parallel_sweep () in
  s4_print s4;
  s5_detector_comparison ();
  let s6rows = s6_cost_model rows in
  s6_print s6rows;
  let s7rows = s7_spec_pruning rows in
  s7_print s7rows;
  let s8 = s8_service_throughput () in
  s8_print s8;
  let s9rows = s9_backend_comparison rows s6rows in
  s9_print s9rows;
  let s10progs = s10_online_throughput () in
  s10_print s10progs;
  let s11rows = s11_symbolic_verify () in
  s11_print s11rows;
  let s12rows = s12_event_throughput rows in
  s12_print s12rows;
  write_bench_json rows s4 s6rows s7rows s8 s9rows s10progs s11rows s12rows;
  if not skip_bechamel then bechamel_tables ();
  Printf.printf "\ndone.\n"
