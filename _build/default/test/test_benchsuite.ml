(* Tests for the benchmark suite: workload generators are deterministic,
   every benchmark's Cilk version matches its plain version, results are
   schedule-independent, and the suite is race-free under the detectors. *)

open Rader_runtime
open Rader_benchsuite
open Rader_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Scaled-down suite for tests. *)
let small () = Suite.all ~seed:7 ~scale:0.05 ()

(* ---------- workloads ---------- *)

let test_graph_generator () =
  let g = Workloads.random_graph ~seed:3 ~n:100 ~m:300 in
  check "n" 100 g.Workloads.n;
  check "csr closes" (Array.length g.Workloads.col) g.Workloads.row.(100);
  check "symmetric edge count" 600 g.Workloads.row.(100);
  checkb "neighbors in range" true
    (Array.for_all (fun v -> v >= 0 && v < 100) g.Workloads.col);
  let g2 = Workloads.random_graph ~seed:3 ~n:100 ~m:300 in
  checkb "deterministic" true (g.Workloads.col = g2.Workloads.col)

let test_bytes_generator () =
  let b = Workloads.random_bytes ~seed:1 4096 in
  check "size" 4096 (Bytes.length b);
  checkb "deterministic" true (Bytes.equal b (Workloads.random_bytes ~seed:1 4096));
  checkb "seed matters" false (Bytes.equal b (Workloads.random_bytes ~seed:2 4096))

let test_vectors_generator () =
  let db = Workloads.feature_vectors ~seed:5 ~count:64 ~dim:8 in
  check "count" 64 (Array.length db);
  checkb "dims" true (Array.for_all (fun v -> Array.length v = 8) db)

let test_items_and_spheres () =
  let items = Workloads.knapsack_items ~seed:4 ~n:20 ~max_weight:10 ~max_value:20 in
  checkb "weights positive" true (Array.for_all (fun (w, v) -> w >= 1 && v >= 1) items);
  let sp = Workloads.spheres ~seed:4 ~n:50 ~world:10.0 in
  checkb "in world" true
    (Array.for_all (fun (x, y, z, r) -> x >= 0. && y >= 0. && z >= 0. && r > 0. && x < 10.) sp)

(* ---------- benchmark correctness ---------- *)

let test_plain_equals_cilk () =
  List.iter
    (fun b ->
      let p = b.Bench_def.plain () in
      let c, _ = Cilk.exec b.Bench_def.cilk in
      Alcotest.(check int) (b.Bench_def.name ^ ": plain = cilk") p c)
    (small ())

let test_schedule_independent () =
  let specs =
    [
      Steal_spec.all ();
      Steal_spec.all ~policy:Steal_spec.Reduce_at_sync ();
      Steal_spec.random ~seed:21 ~density:0.3 ();
    ]
  in
  List.iter
    (fun b ->
      let expected = b.Bench_def.plain () in
      List.iter
        (fun spec ->
          let c, _ = Cilk.exec ~spec b.Bench_def.cilk in
          Alcotest.(check int)
            (Printf.sprintf "%s under %s" b.Bench_def.name spec.Steal_spec.name)
            expected c)
        specs)
    (small ())

let test_benchmarks_race_free_peer_set () =
  List.iter
    (fun b ->
      let eng = Engine.create () in
      let d = Peer_set.attach eng in
      ignore (Engine.run eng b.Bench_def.cilk);
      Alcotest.(check int) (b.Bench_def.name ^ ": no view-read races") 0
        (List.length (Peer_set.races d)))
    (small ())

let test_benchmarks_race_free_sp_plus () =
  List.iter
    (fun b ->
      List.iter
        (fun spec ->
          let eng = Engine.create ~spec () in
          let d = Sp_plus.attach eng in
          ignore (Engine.run eng b.Bench_def.cilk);
          Alcotest.(check int)
            (Printf.sprintf "%s under %s: no determinacy races" b.Bench_def.name
               spec.Steal_spec.name)
            0
            (List.length (Sp_plus.races d)))
        [ Steal_spec.none; Steal_spec.random ~seed:2 ~density:0.25 () ])
    (small ())

let test_oblivious_workloads () =
  List.iter
    (fun b ->
      let p = b.Bench_def.plain () in
      let c, _ = Cilk.exec b.Bench_def.cilk in
      Alcotest.(check int) (b.Bench_def.name ^ " plain = cilk") p c;
      (* race-free under every reducer-unaware detector *)
      let eng = Engine.create () in
      let d = Sp_order.attach eng in
      ignore (Engine.run eng b.Bench_def.cilk);
      Alcotest.(check int) (b.Bench_def.name ^ " sp-order clean") 0
        (List.length (Sp_order.races d));
      let eng = Engine.create () in
      let d = Offset_span.attach eng in
      ignore (Engine.run eng b.Bench_def.cilk);
      Alcotest.(check int)
        (b.Bench_def.name ^ " offset-span clean")
        0
        (List.length (Offset_span.races d));
      let eng = Engine.create () in
      let d = Sp_bags.attach eng in
      ignore (Engine.run eng b.Bench_def.cilk);
      Alcotest.(check int) (b.Bench_def.name ^ " sp-bags clean") 0
        (List.length (Sp_bags.races d)))
    [
      Bm_oblivious.fib_futures ~n:12;
      Bm_oblivious.stencil ~seed:2 ~n:512 ~rounds:3 ~grain:16;
    ]

let test_nqueens () =
  let b = Bm_nqueens.bench ~n:7 ~spawn_depth:3 in
  let p = b.Bench_def.plain () in
  Alcotest.(check int) "7-queens has 40 solutions" 40 p;
  let c, _ = Cilk.exec b.Bench_def.cilk in
  Alcotest.(check int) "plain = cilk" p c;
  let c2, _ = Cilk.exec ~spec:(Steal_spec.all ()) b.Bench_def.cilk in
  Alcotest.(check int) "schedule independent" p c2;
  let eng = Engine.create ~spec:(Steal_spec.at_local_indices [ 1; 2; 3 ]) () in
  let d = Sp_plus.attach eng in
  ignore (Engine.run eng b.Bench_def.cilk);
  Alcotest.(check int) "race-free" 0 (List.length (Sp_plus.races d))

let test_stencil_race_injection () =
  (* sanity of the workload's race-freedom claim: removing the buffer swap
     (writing in place) must produce real races that all detectors see *)
  let broken ctx =
    let eng = Engine.engine ctx in
    let buf = Rarray.init eng ~label:"inplace" 64 (fun i -> i) in
    Cilk.parallel_for ctx ~lo:0 ~hi:64 (fun ctx i ->
        let a = if i = 0 then 0 else Rarray.read ctx buf (i - 1) in
        Rarray.write ctx buf i (a + 1));
    Cilk.sync ctx
  in
  let eng = Engine.create () in
  let d = Sp_bags.attach eng in
  ignore (Engine.run eng broken);
  Alcotest.(check bool) "sp-bags catches" true (Sp_bags.races d <> []);
  let eng = Engine.create () in
  let d = Sp_order.attach eng in
  ignore (Engine.run eng broken);
  Alcotest.(check bool) "sp-order catches" true (Sp_order.races d <> [])

let test_suite_lookup () =
  Alcotest.(check (list string)) "names" Suite.names
    (List.map (fun b -> b.Bench_def.name) (Suite.all ()));
  let b = Suite.find ~scale:0.05 "fib" in
  Alcotest.(check string) "find" "fib" b.Bench_def.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Suite.find "nope"))

let test_fnv_hash_stability () =
  Alcotest.(check bool) "string hash stable" true
    (Bench_def.fnv_string "abc" = Bench_def.fnv_string "abc");
  Alcotest.(check bool) "different strings differ" true
    (Bench_def.fnv_string "abc" <> Bench_def.fnv_string "abd");
  Alcotest.(check bool) "int folding differs" true
    (Bench_def.fnv_int 0 1 <> Bench_def.fnv_int 0 2)

let () =
  Alcotest.run "benchsuite"
    [
      ( "workloads",
        [
          Alcotest.test_case "graph" `Quick test_graph_generator;
          Alcotest.test_case "bytes" `Quick test_bytes_generator;
          Alcotest.test_case "vectors" `Quick test_vectors_generator;
          Alcotest.test_case "items/spheres" `Quick test_items_and_spheres;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "plain = cilk" `Quick test_plain_equals_cilk;
          Alcotest.test_case "schedule independent" `Quick test_schedule_independent;
          Alcotest.test_case "peer-set clean" `Quick test_benchmarks_race_free_peer_set;
          Alcotest.test_case "sp+ clean" `Slow test_benchmarks_race_free_sp_plus;
          Alcotest.test_case "oblivious workloads" `Quick test_oblivious_workloads;
          Alcotest.test_case "nqueens" `Quick test_nqueens;
          Alcotest.test_case "stencil race injection" `Quick test_stencil_race_injection;
          Alcotest.test_case "suite lookup" `Quick test_suite_lookup;
          Alcotest.test_case "fnv" `Quick test_fnv_hash_stability;
        ] );
    ]
