type 'a t = { base : int; data : 'a array }

let make eng ?(label = "arr") n v =
  { base = Engine.alloc_locs eng ~label n; data = Array.make n v }

let init eng ?(label = "arr") n f =
  { base = Engine.alloc_locs eng ~label n; data = Array.init n f }

let length a = Array.length a.data

let read ctx a i =
  Engine.emit_read ctx (a.base + i);
  a.data.(i)

let write ctx a i v =
  Engine.emit_write ctx (a.base + i);
  a.data.(i) <- v

let peek a i = a.data.(i)
let poke a i v = a.data.(i) <- v
let loc a i = a.base + i
let to_array a = Array.copy a.data
