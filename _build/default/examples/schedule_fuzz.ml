(* Schedule fuzzing with the work-stealing simulator: a correct reducer
   program yields the same answer under every simulated schedule; a
   program with a view-read race visibly yields different answers — the
   nondeterminism the paper's detectors exist to catch before it bites.

   Run with: dune exec examples/schedule_fuzz.exe *)

open Rader_runtime
open Rader_sched

(* Correct: value read after the sync. *)
let clean ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  Cilk.parallel_for ctx ~lo:1 ~hi:65 (fun ctx i -> Rmonoid.add ctx r i);
  Cilk.sync ctx;
  Rmonoid.int_cell_value ctx r

(* Racy: a progress probe reads the reducer mid-flight. *)
let racy ctx =
  let r = Rmonoid.new_int_add ctx ~init:0 in
  let probe = ref (-1) in
  Cilk.call ctx (fun ctx ->
      ignore
        (Cilk.spawn ctx (fun ctx ->
             Cilk.parallel_for ctx ~lo:1 ~hi:33 (fun ctx i -> Rmonoid.add ctx r i)));
      ignore
        (Cilk.spawn ctx (fun ctx ->
             Cilk.parallel_for ctx ~lo:33 ~hi:65 (fun ctx i -> Rmonoid.add ctx r i)));
      probe := Rmonoid.int_cell_value ctx r; (* view-read race *)
      Cilk.sync ctx);
  Cilk.sync ctx;
  (!probe * 100000) + Rmonoid.int_cell_value ctx r

let summarize name program =
  let seeds = List.init 24 (fun i -> i + 1) in
  let outs = Schedule_gen.fuzz program ~workers:8 ~seeds in
  let values = List.sort_uniq compare (List.map snd outs) in
  Printf.printf "%-6s %d simulated 8-worker schedules -> %d distinct result(s)%s\n"
    name (List.length outs) (List.length values)
    (if List.length values = 1 then " (deterministic)" else "");
  if List.length values > 1 then begin
    let show v = Printf.sprintf "probe=%d sum=%d" (v / 100000) (v mod 100000) in
    Printf.printf "       e.g. %s\n"
      (String.concat " | " (List.map show (List.filteri (fun i _ -> i < 4) values)))
  end

let () =
  print_endline "== Schedule fuzzing with the work-stealing simulator ==";
  summarize "clean" clean;
  summarize "racy" racy;
  print_endline
    "The racy probe's value depends on which continuations were stolen\n\
     (fresh views observe nothing); the final sum is always correct —\n\
     exactly the subtle symptom view-read races produce in practice."
