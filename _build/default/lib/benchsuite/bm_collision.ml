open Rader_runtime
module Monoids = Rader_monoid.Monoids

(* Uniform-grid binning is identical (and serial) in both versions; the
   parallel part is the per-cell pair testing. Spheres whose centers fall
   in the same grid cell are tested pairwise. *)

type scene = {
  spheres : (float * float * float * float) array;
  cells : int array array; (* sphere ids per grid cell *)
}

let build_scene ~seed ~n ~world ~cell =
  let spheres = Workloads.spheres ~seed ~n ~world in
  let per_side = max 1 (int_of_float (world /. cell)) in
  let idx x = min (per_side - 1) (int_of_float (x /. cell)) in
  let buckets = Hashtbl.create 64 in
  Array.iteri
    (fun i (x, y, z, _) ->
      let key = (idx x * per_side * per_side) + (idx y * per_side) + idx z in
      let prev = try Hashtbl.find buckets key with Not_found -> [] in
      Hashtbl.replace buckets key (i :: prev))
    spheres;
  let cells =
    Hashtbl.fold (fun key ids acc -> (key, Array.of_list (List.rev ids)) :: acc) buckets []
    |> List.sort compare
    |> List.map snd
    |> Array.of_list
  in
  { spheres; cells }

let overlaps spheres i j =
  let x1, y1, z1, r1 = spheres.(i) in
  let x2, y2, z2, r2 = spheres.(j) in
  let dx = x1 -. x2 and dy = y1 -. y2 and dz = z1 -. z2 in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz) <= (r1 +. r2) *. (r1 +. r2)

let cell_pairs scene c emit =
  let ids = scene.cells.(c) in
  let k = Array.length ids in
  for a = 0 to k - 1 do
    for b = a + 1 to k - 1 do
      if overlaps scene.spheres ids.(a) ids.(b) then emit (ids.(a), ids.(b))
    done
  done

let checksum pairs =
  List.fold_left
    (fun acc (i, j) -> Bench_def.fnv_int (Bench_def.fnv_int acc i) j)
    (Bench_def.fnv_string "collision") pairs

let plain scene () =
  let hits = ref [] in
  for c = 0 to Array.length scene.cells - 1 do
    cell_pairs scene c (fun p -> hits := p :: !hits)
  done;
  checksum (List.rev !hits)

let cilk scene ctx =
  (* Instrumented hypervector views (Rvec): slot writes in updates and the
     O(|src|) copy in every Reduce hit shadow memory, like the paper's
     C++ hypervector. *)
  let r = Reducer.create ctx (Rvec.monoid ()) ~init:(Rvec.create ctx ()) in
  Cilk.parallel_for ctx ~lo:0 ~hi:(Array.length scene.cells) (fun ctx c ->
      cell_pairs scene c (fun p ->
          Reducer.update ctx r (fun c hv ->
              Rvec.push c hv p;
              hv)));
  Cilk.sync ctx;
  checksum (Rvec.to_list ctx (Reducer.get_value ctx r))

let bench ~seed ~n ~world ~cell =
  let scene = build_scene ~seed ~n ~world ~cell in
  {
    Bench_def.name = "collision";
    descr = "Collision detection in 3D";
    input = Printf.sprintf "%d spheres" n;
    plain = plain scene;
    cilk = cilk scene;
  }
