module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Reach = Rader_reach.Reach
module Shadow = Rader_memory.Shadow
module Obs = Rader_obs.Obs

(* Bags and spawn counts live behind [Reach.Peer]; this module keeps the
   reader shadows, the spawn-count comparison, the user-frame filter and
   report collection. *)

type t = {
  eng : Engine.t;
  reach : Reach.Peer.t;
  reader : Shadow.t; (* reducer id -> last reader frame *)
  reader_sc : Shadow.t; (* reducer id -> spawn count of last reader *)
  collector : Report.collector;
}

let create ?(reach = Reach.Dset) eng =
  {
    eng;
    reach = Reach.Peer.create reach;
    reader = Shadow.create ();
    reader_sc = Shadow.create ();
    collector = Report.collector ();
  }

let backend d = Reach.Peer.backend d.reach

let on_reducer_read d ~frame ~reducer =
  if Obs.enabled () then Obs.bump_peerset_query ();
  let sc = Reach.Peer.spawn_count d.reach in
  let last = Shadow.get d.reader reducer in
  if last <> Shadow.absent then begin
    (* Lemma 3: same peer set iff same spawn count and not in a P bag.
       Short-circuit order matches the seed: the spawn-count shadow is
       only consulted when the bag is not already P. *)
    let racy =
      Reach.Peer.parallel_read d.reach ~reducer ~frame:last
      || Shadow.get d.reader_sc reducer <> sc
    in
    if racy then
      Report.report d.collector
        {
          Report.kind = Report.View_read_race;
          subject = reducer;
          subject_label = Printf.sprintf "reducer #%d" reducer;
          first_frame = last;
          first_access = Report.Reducer_read;
          second_frame = frame;
          second_access = Report.Reducer_read;
          second_strand = Engine.current_strand d.eng;
          second_view_aware = false;
          detail = "reducer-reads have different peer sets";
        }
  end;
  Shadow.set d.reader reducer frame;
  Shadow.set d.reader_sc reducer sc;
  Reach.Peer.note_read d.reach ~reducer ~frame

(* Auxiliary (update/reduce/identity) frames are not Cilk functions in the
   peer-set sense and cannot perform reducer-reads (the engine forbids
   it); skipping them makes the algorithm's verdicts independent of the
   steal specification, since view-read races are defined on the user
   dag. *)
let tool d =
  {
    Tool.null with
    Tool.on_frame_enter =
      (fun ~frame ~parent:_ ~spawned ~kind ->
        if kind = Tool.User_fn then Reach.Peer.on_frame_enter d.reach ~frame ~spawned);
    on_frame_return =
      (fun ~frame ~parent:_ ~spawned ~kind ->
        if kind = Tool.User_fn then Reach.Peer.on_frame_return d.reach ~frame ~spawned);
    on_sync = (fun ~frame -> Reach.Peer.on_sync d.reach ~frame);
    on_reducer_read = (fun ~frame ~reducer -> on_reducer_read d ~frame ~reducer);
  }

let attach ?reach eng =
  let d = create ?reach eng in
  Engine.set_tool eng (tool d);
  d

let reset d =
  Reach.Peer.reset d.reach;
  Shadow.clear d.reader;
  Shadow.clear d.reader_sc;
  Report.clear d.collector;
  Engine.set_tool d.eng (tool d)

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
