(** Fixed-capacity dense bitsets.

    Used by the dag oracles to compute strand reachability and peer sets:
    for the program sizes exercised by tests (a few thousand strands), an
    [n × n/64] bit-matrix sweep is both simple and fast. *)

type t

(** [create n] is an empty set over universe [\[0, n)]. *)
val create : int -> t

(** [capacity t] is the universe size [n] given at creation. *)
val capacity : t -> int

(** [add t i] inserts [i]. @raise Invalid_argument if out of range. *)
val add : t -> int -> unit

(** [remove t i] deletes [i]. *)
val remove : t -> int -> unit

(** [mem t i] is true iff [i] is in the set. *)
val mem : t -> int -> bool

(** [union_into dst src] sets [dst := dst ∪ src]. Capacities must match. *)
val union_into : t -> t -> unit

(** [equal a b] is set equality. Capacities must match. *)
val equal : t -> t -> bool

(** [copy t] is an independent copy. *)
val copy : t -> t

(** [cardinal t] is the number of elements (popcount sweep). *)
val cardinal : t -> int

(** [iter f t] applies [f] to each member in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [to_list t] is the members in increasing order. *)
val to_list : t -> int list

(** [inter_nonempty a b] is true iff [a ∩ b ≠ ∅]. *)
val inter_nonempty : t -> t -> bool
