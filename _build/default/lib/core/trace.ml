module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Dag = Rader_dag.Dag
module Sp_tree = Rader_dag.Sp_tree

type t = {
  dag : Dag.t;
  accesses : Engine.access list;
  merges : Engine.merge_rec list;
  reducer_reads : (int * int) list;
  spawns : (int * int * int) list;
  frames : (int * int * bool * Tool.frame_kind) list;
  loc_labels : (int * string) list;
}

let of_engine eng =
  let dag =
    match Engine.dag eng with
    | Some d -> d
    | None -> invalid_arg "Trace.of_engine: engine run was not recorded"
  in
  let accesses = Engine.accesses eng in
  let locs =
    List.sort_uniq compare (List.map (fun a -> a.Engine.a_loc) accesses)
  in
  {
    dag;
    accesses;
    merges = Engine.merges eng;
    reducer_reads = Engine.reducer_reads eng;
    spawns = Engine.spawn_log eng;
    frames = Engine.frames eng;
    loc_labels = List.map (fun l -> (l, Engine.loc_label eng l)) locs;
  }

let loc_label t loc =
  match List.assoc_opt loc t.loc_labels with Some s -> s | None -> "?"

(* ---------- serialization ---------- *)

let header = "rader-trace 1"

let kind_to_int = function
  | Dag.User -> 0
  | Dag.Update -> 1
  | Dag.Reduce -> 2
  | Dag.Identity -> 3

let kind_of_int = function
  | 0 -> Dag.User
  | 1 -> Dag.Update
  | 2 -> Dag.Reduce
  | 3 -> Dag.Identity
  | k -> failwith (Printf.sprintf "Trace: bad strand kind %d" k)

(* Labels may contain spaces; they are always the final field, so parsing
   splits on the first few spaces only. *)

let save t path =
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  pr "%s\n" header;
  for i = 0 to Dag.n_strands t.dag - 1 do
    let s = Dag.strand t.dag i in
    pr "s %d %d %d %s\n" s.Dag.frame (kind_to_int s.Dag.kind) s.Dag.view
      (String.map (fun c -> if c = '\n' then ' ' else c) s.Dag.label)
  done;
  for u = 0 to Dag.n_strands t.dag - 1 do
    List.iter (fun v -> pr "e %d %d\n" u v) (Dag.succs t.dag u)
  done;
  List.iter
    (fun a ->
      pr "a %d %d %d %d %d\n" a.Engine.a_loc a.Engine.a_strand a.Engine.a_frame
        (if a.Engine.a_is_write then 1 else 0)
        (if a.Engine.a_view_aware then 1 else 0))
    t.accesses;
  List.iter
    (fun m -> pr "m %d %d %d\n" m.Engine.m_from m.Engine.m_into m.Engine.m_at)
    t.merges;
  List.iter (fun (r, s) -> pr "r %d %d\n" r s) t.reducer_reads;
  List.iter (fun (i, sp, co) -> pr "w %d %d %d\n" i sp co) t.spawns;
  List.iter
    (fun (fid, parent, spawned, kind) ->
      let k =
        match kind with
        | Tool.User_fn -> 0
        | Tool.Update_fn -> 1
        | Tool.Reduce_fn -> 2
        | Tool.Identity_fn -> 3
      in
      pr "f %d %d %d %d\n" fid parent (if spawned then 1 else 0) k)
    t.frames;
  List.iter (fun (l, lab) -> pr "l %d %s\n" l lab) t.loc_labels;
  close_out oc

let split_n line n =
  (* split [line] on spaces into at most [n] fields; the last keeps the
     remainder verbatim *)
  let rec go start k acc =
    if k = n - 1 then
      List.rev (String.sub line start (String.length line - start) :: acc)
    else
      match String.index_from_opt line start ' ' with
      | None -> List.rev (String.sub line start (String.length line - start) :: acc)
      | Some i -> go (i + 1) (k + 1) (String.sub line start (i - start) :: acc)
  in
  go 0 0 []

let load path =
  let ic = open_in path in
  let line1 = try input_line ic with End_of_file -> failwith "Trace: empty file" in
  if line1 <> header then failwith "Trace: unsupported format/version";
  let dag = Dag.create () in
  let accesses = ref [] in
  let merges = ref [] in
  let rreads = ref [] in
  let spawns = ref [] in
  let frames = ref [] in
  let labels = ref [] in
  (try
     while true do
       let line = input_line ic in
       if line <> "" then begin
         match split_n line 2 with
         | [ "s"; rest ] -> (
             match split_n rest 4 with
             | [ frame; kind; view; label ] ->
                 ignore
                   (Dag.add_strand dag ~frame:(int_of_string frame)
                      ~kind:(kind_of_int (int_of_string kind))
                      ~view:(int_of_string view) ~label)
             | _ -> failwith "Trace: bad strand line")
         | [ "e"; rest ] -> (
             match String.split_on_char ' ' rest with
             | [ u; v ] -> Dag.add_edge dag (int_of_string u) (int_of_string v)
             | _ -> failwith "Trace: bad edge line")
         | [ "a"; rest ] -> (
             match String.split_on_char ' ' rest with
             | [ loc; strand; frame; w; va ] ->
                 accesses :=
                   {
                     Engine.a_loc = int_of_string loc;
                     a_strand = int_of_string strand;
                     a_frame = int_of_string frame;
                     a_is_write = w = "1";
                     a_view_aware = va = "1";
                   }
                   :: !accesses
             | _ -> failwith "Trace: bad access line")
         | [ "m"; rest ] -> (
             match String.split_on_char ' ' rest with
             | [ f; i; at ] ->
                 merges :=
                   {
                     Engine.m_from = int_of_string f;
                     m_into = int_of_string i;
                     m_at = int_of_string at;
                   }
                   :: !merges
             | _ -> failwith "Trace: bad merge line")
         | [ "r"; rest ] -> (
             match String.split_on_char ' ' rest with
             | [ r; s ] -> rreads := (int_of_string r, int_of_string s) :: !rreads
             | _ -> failwith "Trace: bad reducer-read line")
         | [ "w"; rest ] -> (
             match String.split_on_char ' ' rest with
             | [ i; sp; co ] ->
                 spawns :=
                   (int_of_string i, int_of_string sp, int_of_string co) :: !spawns
             | _ -> failwith "Trace: bad spawn line")
         | [ "f"; rest ] -> (
             match String.split_on_char ' ' rest with
             | [ fid; parent; spawned; kind ] ->
                 let k =
                   match int_of_string kind with
                   | 0 -> Tool.User_fn
                   | 1 -> Tool.Update_fn
                   | 2 -> Tool.Reduce_fn
                   | 3 -> Tool.Identity_fn
                   | k -> failwith (Printf.sprintf "Trace: bad frame kind %d" k)
                 in
                 frames :=
                   (int_of_string fid, int_of_string parent, spawned = "1", k)
                   :: !frames
             | _ -> failwith "Trace: bad frame line")
         | [ "l"; rest ] -> (
             match split_n rest 2 with
             | [ l; lab ] -> labels := (int_of_string l, lab) :: !labels
             | _ -> failwith "Trace: bad label line")
         | _ -> failwith ("Trace: bad line: " ^ line)
       end
     done
   with End_of_file -> ());
  close_in ic;
  {
    dag;
    accesses = List.rev !accesses;
    merges = List.rev !merges;
    reducer_reads = List.rev !rreads;
    spawns = List.rev !spawns;
    frames = List.rev !frames;
    loc_labels = List.rev !labels;
  }

let dag_equal a b =
  Dag.n_strands a = Dag.n_strands b
  &&
  let ok = ref true in
  for i = 0 to Dag.n_strands a - 1 do
    if Dag.strand a i <> Dag.strand b i then ok := false;
    if List.sort compare (Dag.succs a i) <> List.sort compare (Dag.succs b i) then
      ok := false
  done;
  !ok

let equal a b =
  dag_equal a.dag b.dag && a.accesses = b.accesses && a.merges = b.merges
  && a.reducer_reads = b.reducer_reads && a.spawns = b.spawns
  && a.frames = b.frames && a.loc_labels = b.loc_labels

(* ---------- canonical SP parse tree reconstruction (paper Fig. 4) ---------- *)

let sp_tree t =
  let n = Dag.n_strands t.dag in
  for i = 0 to n - 1 do
    if (Dag.strand t.dag i).Dag.kind = Dag.Reduce then
      invalid_arg "Trace.sp_tree: performance dag with reduce strands (record under Steal_spec.none)"
  done;
  (* strands per frame, in serial order (ids ascending) *)
  let strands_of = Hashtbl.create 64 in
  for i = n - 1 downto 0 do
    let f = (Dag.strand t.dag i).Dag.frame in
    let prev = try Hashtbl.find strands_of f with Not_found -> [] in
    Hashtbl.replace strands_of f (i :: prev)
  done;
  (* children per frame, in creation (= serial) order *)
  let children_of = Hashtbl.create 64 in
  List.iter
    (fun (fid, parent, spawned, _) ->
      if parent >= 0 then begin
        let prev = try Hashtbl.find children_of parent with Not_found -> [] in
        Hashtbl.replace children_of parent ((fid, spawned) :: prev)
      end)
    t.frames;
  let first_strand fid =
    match Hashtbl.find_opt strands_of fid with
    | Some (s :: _) -> s
    | _ -> invalid_arg "Trace.sp_tree: frame without strands"
  in
  let rec frame_tree fid =
    let strands = try Hashtbl.find strands_of fid with Not_found -> [] in
    let children =
      List.rev (try Hashtbl.find children_of fid with Not_found -> [])
    in
    (* interleave own strands and child subtrees by serial position *)
    let items =
      List.merge
        (fun a b -> compare (fst a) (fst b))
        (List.map (fun s -> (s, `Strand s)) strands)
        (List.map (fun (c, sp) -> (first_strand c, `Child (c, sp))) children)
    in
    (* split into sync blocks: a strand labelled "sync" begins a new block *)
    let blocks = ref [] and current = ref [] in
    List.iter
      (fun (_, item) ->
        (match item with
        | `Strand s when (Dag.strand t.dag s).Dag.label = "sync" && !current <> [] ->
            blocks := List.rev !current :: !blocks;
            current := []
        | _ -> ());
        let entry =
          match item with
          | `Strand s -> Sp_tree.Strand s
          | `Child (c, true) -> Sp_tree.Spawned (frame_tree c)
          | `Child (c, false) -> Sp_tree.Called (frame_tree c)
        in
        current := entry :: !current)
      items;
    if !current <> [] then blocks := List.rev !current :: !blocks;
    Sp_tree.function_tree (List.map Sp_tree.block_tree (List.rev !blocks))
  in
  let root =
    match t.frames with
    | (fid, -1, _, _) :: _ -> fid
    | _ -> invalid_arg "Trace.sp_tree: no root frame"
  in
  frame_tree root
