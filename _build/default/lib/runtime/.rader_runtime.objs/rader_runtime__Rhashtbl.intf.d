lib/runtime/rhashtbl.mli: Engine Reducer
