(** Offset-span labeling [Mellor-Crummey, SC'91] — the classic labeling
    baseline from the paper's related work (§9).

    Every strand carries a label: a sequence of (offset, span) pairs that
    grows with spawn-nesting depth. For Cilk's binary fork structure, a
    spawn forks span-2 branches — the child extends the label with
    [(1, 2)], the continuation with [(2, 2)] — and a sync replaces the
    block with its sequential successor by bumping the enclosing pair's
    offset by its span. Two labels are ordered iff one is a prefix of the
    other, or at their first differing position the spans agree, the
    offsets are congruent modulo the span, and the earlier offset is
    smaller; otherwise the strands are logically parallel.

    Label comparisons cost O(depth) — the trade-off against SP-bags'
    near-constant bags that Mellor-Crummey's scheme embodies — and, like
    SP-bags and SP-order, the algorithm is not reducer-aware. *)

type t

val create : Rader_runtime.Engine.t -> t
val tool : t -> Rader_runtime.Tool.t
val attach : Rader_runtime.Engine.t -> t
val races : t -> Report.t list
val found : t -> bool

(** Exposed for unit tests. *)
module Label : sig
  type l = (int * int) array

  (** [precedes a b]: serial-order test described above ([precedes a a]
      is true: a strand is serial with itself). *)
  val precedes : l -> l -> bool
end
