(** Schedule fuzzing: run a program under many realistic work-stealing
    schedules and collect the results.

    In a correct (ostensibly deterministic) reducer program, the result is
    identical under every schedule; a view-read race typically shows up as
    schedule-dependent output — the observable symptom the paper's §1–§2
    examples describe. *)

(** [derive_specs program ~workers ~seeds] records one serial run of
    [program], then simulates work stealing on its dag once per seed and
    returns the corresponding steal specifications. *)
val derive_specs :
  (Rader_runtime.Engine.ctx -> 'a) ->
  workers:int ->
  seeds:int list ->
  Rader_runtime.Steal_spec.t list

(** [fuzz program ~workers ~seeds] executes [program] under each derived
    schedule and returns [(spec_name, result)] per run, serial run
    included first. *)
val fuzz :
  (Rader_runtime.Engine.ctx -> 'a) ->
  workers:int ->
  seeds:int list ->
  (string * 'a) list

(** [deterministic ~equal results] is true iff all fuzzed results are
    [equal] to the first. *)
val deterministic : equal:('a -> 'a -> bool) -> (string * 'a) list -> bool
