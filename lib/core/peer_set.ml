module Engine = Rader_runtime.Engine
module Tool = Rader_runtime.Tool
module Bag = Rader_dsets.Bag
module Shadow = Rader_memory.Shadow
module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type bag_kind = KSS | KSP | KP

type fstate = {
  fid : int;
  anc : int; (* F.as: spawns by ancestors, unsynced at F's creation *)
  mutable ls : int; (* F.ls: spawns since F's last sync *)
  ss : bag_kind Bag.t;
  mutable sp : bag_kind Bag.t;
  p : bag_kind Bag.t;
}

type t = {
  eng : Engine.t;
  store : bag_kind Bag.store;
  stack : fstate Dynarr.t;
  reader : Shadow.t; (* reducer id -> last reader frame *)
  reader_sc : Shadow.t; (* reducer id -> spawn count of last reader *)
  collector : Report.collector;
}

let create eng =
  {
    eng;
    store = Bag.create_store ();
    stack = Dynarr.create ();
    reader = Shadow.create ();
    reader_sc = Shadow.create ();
    collector = Report.collector ();
  }

let top d = Dynarr.top d.stack

(* Auxiliary (update/reduce/identity) frames are not Cilk functions in the
   peer-set sense and cannot perform reducer-reads (the engine forbids
   it); skipping them makes the algorithm's verdicts independent of the
   steal specification, since view-read races are defined on the user
   dag. *)
let on_frame_enter d ~frame ~parent:_ ~spawned ~kind:_ =
  let anc =
    if Dynarr.is_empty d.stack then 0
    else begin
      let f = top d in
      if spawned then begin
        (* Fig. 3, "F spawns G": bump the local-spawn count and retire the
           SP bag into P before the child's counts are derived. *)
        f.ls <- f.ls + 1;
        Bag.union_into d.store ~dst:f.p ~src:f.sp
      end;
      f.anc + f.ls
    end
  in
  let g =
    {
      fid = frame;
      anc;
      ls = 0;
      ss = Bag.make d.store KSS [ frame ];
      sp = Bag.make d.store KSP [];
      p = Bag.make d.store KP [];
    }
  in
  Dynarr.push d.stack g

let on_frame_return d ~frame ~parent:_ ~spawned ~kind:_ =
  let g = Dynarr.pop d.stack in
  assert (g.fid = frame);
  if not (Dynarr.is_empty d.stack) then begin
    let f = top d in
    (* Fig. 3, "G returns to F". G.SP is empty: functions sync before
       returning. *)
    Bag.union_into d.store ~dst:f.p ~src:g.p;
    if spawned then Bag.union_into d.store ~dst:f.p ~src:g.ss
    else if f.ls = 0 then Bag.union_into d.store ~dst:f.ss ~src:g.ss
    else Bag.union_into d.store ~dst:f.sp ~src:g.ss
  end

let on_sync d ~frame =
  let f = top d in
  assert (f.fid = frame);
  f.ls <- 0;
  Bag.union_into d.store ~dst:f.p ~src:f.sp

let on_reducer_read d ~frame ~reducer =
  if Obs.enabled () then Obs.bump_peerset_query ();
  let f = top d in
  assert (f.fid = frame);
  let sc = f.anc + f.ls in
  let last = Shadow.get d.reader reducer in
  if last <> Shadow.absent then begin
    let racy =
      match Bag.find d.store last with
      | Some bag -> Bag.payload bag = KP || Shadow.get d.reader_sc reducer <> sc
      | None -> assert false
    in
    if racy then
      Report.report d.collector
        {
          Report.kind = Report.View_read_race;
          subject = reducer;
          subject_label = Printf.sprintf "reducer #%d" reducer;
          first_frame = last;
          first_access = Report.Reducer_read;
          second_frame = frame;
          second_access = Report.Reducer_read;
          second_strand = Engine.current_strand d.eng;
          second_view_aware = false;
          detail = "reducer-reads have different peer sets";
        }
  end;
  Shadow.set d.reader reducer frame;
  Shadow.set d.reader_sc reducer sc

let tool d =
  {
    Tool.null with
    Tool.on_frame_enter =
      (fun ~frame ~parent ~spawned ~kind ->
        if kind = Tool.User_fn then
          on_frame_enter d ~frame ~parent ~spawned ~kind);
    on_frame_return =
      (fun ~frame ~parent ~spawned ~kind ->
        if kind = Tool.User_fn then
          on_frame_return d ~frame ~parent ~spawned ~kind);
    on_sync = (fun ~frame -> on_sync d ~frame);
    on_reducer_read = (fun ~frame ~reducer -> on_reducer_read d ~frame ~reducer);
  }

let attach eng =
  let d = create eng in
  Engine.set_tool eng (tool d);
  d

let races d = Report.races d.collector

let found d = Report.count d.collector > 0
