(* Chaos battery: every perturbation from the harness, applied to real
   benchmarks, must yield a structured diagnostic (or race evidence) with
   no escaped exception — the executable form of the survival contract in
   DESIGN.md's failure-model section. *)

open Rader_chaos

let checkb = Alcotest.(check bool)

(* A structurally varied subset of the suite: plain recursion (fib),
   pipeline-ish reducer traffic (dedup), and irregular graph work
   (pbfs). *)
let programs =
  List.map
    (fun n ->
      ( n,
        (Rader_benchsuite.Suite.find ~seed:7 ~scale:0.02 n)
          .Rader_benchsuite.Bench_def.cilk ))
    [ "fib"; "dedup"; "pbfs" ]

let test_battery prog () =
  List.iter
    (fun o ->
      checkb
        (Chaos.name o.Chaos.perturbation ^ ": " ^ Chaos.outcome_to_string o)
        true (Chaos.ok o))
    (Chaos.run_all prog)

(* Targeted law checks: the sampled self-check must name the broken law,
   delivered as a contained [Monoid_contract] diagnostic. *)

let run_self_check monoid =
  let open Rader_runtime in
  let eng = Engine.create ~spec:(Steal_spec.all ()) () in
  let res =
    Engine.run_result eng (fun ctx ->
        let r = Reducer.create ctx ~self_check:Chaos.int_check monoid ~init:2 in
        ignore
          (Cilk.spawn ctx (fun ctx -> Reducer.update ctx r (fun _ v -> v + 3)));
        ignore
          (Cilk.spawn ctx (fun ctx -> Reducer.update ctx r (fun _ v -> v + 5)));
        Cilk.sync ctx;
        0)
  in
  match res with
  | Error (Rader_core.Diag.Monoid_contract cv) -> Some cv.Rader_core.Diag.cv_law
  | _ -> None

let test_non_associative () =
  match run_self_check Chaos.non_associative_monoid with
  | Some Rader_core.Diag.Associativity -> ()
  | Some l -> Alcotest.failf "wrong law: %s" (Rader_core.Diag.law_name l)
  | None -> Alcotest.fail "self-check missed the broken associativity"

(* 7 is not an identity for +, so reduce(identity(), v) <> v already on
   the initial view at create time. *)
let bad_identity =
  {
    Rader_runtime.Reducer.name = "chaos-bad-identity";
    identity = (fun _ -> 7);
    reduce = (fun _ a b -> a + b);
  }

let test_bad_identity () =
  match run_self_check bad_identity with
  | Some (Rader_core.Diag.Left_identity | Rader_core.Diag.Right_identity) -> ()
  | Some l -> Alcotest.failf "wrong law: %s" (Rader_core.Diag.law_name l)
  | None -> Alcotest.fail "self-check missed the broken identity"

(* Stall containment, in isolation: the perturbation must deliver a
   Deadline diagnostic through a virtual-clock jump alone — the test
   completes instantly even though the simulated stall is 60 s. *)
let test_stall_is_deadline () =
  let prog =
    (Rader_benchsuite.Suite.find ~seed:7 ~scale:0.02 "fib")
      .Rader_benchsuite.Bench_def.cilk
  in
  let t0 = Unix.gettimeofday () in
  let o = Chaos.run_one (Chaos.Stall 8) prog in
  let elapsed = Unix.gettimeofday () -. t0 in
  checkb (Chaos.outcome_to_string o) true (Chaos.ok o);
  (match o.Chaos.diag with
  | Some (Rader_core.Diag.Budget_exceeded (Rader_core.Diag.Deadline _)) -> ()
  | _ -> Alcotest.fail "stall did not yield a Deadline diagnostic");
  checkb "no wall-clock sleep happened" true (elapsed < 5.0)

(* The virtual clock itself: monotone state, no wall-clock coupling. *)
let test_vclock () =
  let vc = Chaos.Vclock.make ~start:100.0 in
  let clk = Chaos.Vclock.clock vc in
  Alcotest.(check (float 0.0)) "starts at start" 100.0 (clk ());
  Chaos.Vclock.advance vc 2.5;
  Alcotest.(check (float 0.0)) "advance adds" 102.5 (clk ());
  Alcotest.(check (float 0.0)) "now agrees" 102.5 (Chaos.Vclock.now vc)

(* The headline acceptance property: a program with BOTH an oblivious
   determinacy race and a reduce that crashes under steals. The sweep must
   report the race (from the specs that complete) AND record the crashed
   specs, without any exception escaping. *)
let test_partial_sweep_keeps_races () =
  let open Rader_runtime in
  let program ctx =
    let shared = Cell.make_in ctx ~label:"shared" 0 in
    let monoid =
      {
        Reducer.name = "crashy";
        identity = (fun _ -> 0);
        reduce = (fun _ _ _ -> failwith "injected reduce crash");
      }
    in
    let r = Reducer.create ctx monoid ~init:0 in
    let w = Cilk.spawn ctx (fun ctx -> Cell.write ctx shared 1) in
    ignore (Cilk.spawn ctx (fun ctx -> Reducer.update ctx r (fun _ v -> v + 1)));
    (* races with the spawned writer *)
    ignore (Cell.read ctx shared);
    Cilk.sync ctx;
    Cilk.get ctx w
  in
  let res = Rader_core.Coverage.exhaustive_check program in
  checkb "races reported" true (res.Rader_core.Coverage.reports <> []);
  checkb "crashed specs recorded" true
    (res.Rader_core.Coverage.incomplete <> []);
  checkb "marked partial" true (not res.Rader_core.Coverage.complete);
  checkb "every incomplete entry is a user-program failure" true
    (List.for_all
       (fun (_, f) ->
         match f with Rader_core.Diag.User_program_exn _ -> true | _ -> false)
       res.Rader_core.Coverage.incomplete)

let () =
  Alcotest.run "chaos"
    [
      ( "battery",
        List.map
          (fun (n, p) -> Alcotest.test_case n `Quick (test_battery p))
          programs );
      ( "laws",
        [
          Alcotest.test_case "non-associative caught" `Quick
            test_non_associative;
          Alcotest.test_case "bad identity caught" `Quick test_bad_identity;
        ] );
      ( "stall",
        [
          Alcotest.test_case "virtual-clock stall contained as deadline"
            `Quick test_stall_is_deadline;
          Alcotest.test_case "vclock semantics" `Quick test_vclock;
        ] );
      ( "partial sweep",
        [
          Alcotest.test_case "races and incomplete coexist" `Quick
            test_partial_sweep_keeps_races;
        ] );
    ]
