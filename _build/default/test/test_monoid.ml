(* Monoid laws for every monoid shipped in the library — reducers are only
   correct when the user-supplied ⊗ is associative with identity (paper
   §2), so the library instances had better satisfy the laws. *)

module Monoid = Rader_monoid.Monoid
module Monoids = Rader_monoid.Monoids

let checkb = Alcotest.(check bool)

let law_test name m samples ~equal () =
  checkb (name ^ " laws") true (Monoid.is_associative ~equal m samples)

let int_samples = [ -7; -1; 0; 1; 2; 3; 42; 1000; max_int / 4 ]

let test_int_monoid_laws () =
  List.iter
    (fun (name, m) -> law_test name m int_samples ~equal:( = ) ())
    [
      ("int_add", Monoids.int_add);
      ("int_mul", Monoids.int_mul);
      ("int_min", Monoids.int_min);
      ("int_max", Monoids.int_max);
      ("int_land", Monoids.int_land);
      ("int_lor", Monoids.int_lor);
      ("int_lxor", Monoids.int_lxor);
    ]

let test_bool_float_laws () =
  law_test "bool_and" Monoids.bool_and [ true; false ] ~equal:( = ) ();
  law_test "bool_or" Monoids.bool_or [ true; false ] ~equal:( = ) ();
  law_test "float_add" Monoids.float_add [ 0.0; 1.0; 2.5; -3.0 ]
    ~equal:(fun a b -> Float.abs (a -. b) < 1e-9)
    ()

let test_list_string_laws () =
  law_test "list_append" (Monoids.list_append ())
    [ []; [ 1 ]; [ 2; 3 ]; [ 4; 5; 6 ] ]
    ~equal:( = ) ();
  law_test "string_concat" Monoids.string_concat [ ""; "a"; "bc"; "def" ]
    ~equal:( = ) ()

let test_pair_law () =
  let m = Monoids.pair Monoids.int_add Monoids.int_max in
  law_test "pair" m [ (0, min_int); (1, 3); (2, -5); (7, 7) ] ~equal:( = ) ()

let test_arg_max () =
  let m = Monoids.arg_max () in
  law_test "arg_max" m
    [ None; Some (1, "a"); Some (2, "b"); Some (2, "c"); Some (5, "d") ]
    ~equal:( = ) ();
  let combined = Monoid.fold m [ Some (2, "b"); Some (5, "d"); Some (2, "c") ] in
  Alcotest.(check bool) "max wins" true (combined = Some (5, "d"));
  (* ties keep the earlier element *)
  let tied = Monoid.fold m [ Some (2, "first"); Some (2, "second") ] in
  Alcotest.(check bool) "tie keeps left" true (tied = Some (2, "first"))

let test_counter () =
  let m = Monoids.counter () in
  let c1 = Monoids.counter_of_list [ "a"; "b"; "a" ] in
  let c2 = Monoids.counter_of_list [ "b"; "c" ] in
  Alcotest.(check (list (pair string int)))
    "merge" [ ("a", 2); ("b", 2); ("c", 1) ]
    (Monoids.counter_entries (m.Monoid.combine c1 c2));
  law_test "counter" m [ []; c1; c2; Monoids.counter_of_list [ "z" ] ] ~equal:( = ) ()

let test_bag_semantics () =
  let m = Monoids.bag () in
  let b =
    m.Monoid.combine
      (Monoids.bag_of_list [ 1; 2 ])
      (m.Monoid.combine (Monoids.bag_singleton 3) (m.Monoid.identity ()))
  in
  Alcotest.(check int) "size" 3 (Monoids.bag_size b);
  Alcotest.(check (list int)) "elements (multiset)" [ 1; 2; 3 ]
    (List.sort compare (Monoids.bag_elements b))

let test_hypervector_order () =
  let m = Monoids.hypervector () in
  let hv =
    m.Monoid.combine
      (Monoids.hv_push (Monoids.hv_push (m.Monoid.identity ()) 1) 2)
      (Monoids.hv_push (m.Monoid.identity ()) 3)
  in
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3 ] (Monoids.hv_to_list hv);
  Alcotest.(check int) "length" 3 (Monoids.hv_length hv)

let test_fold_tree_matches_fold () =
  let xs = List.init 37 (fun i -> [ i ]) in
  let m = Monoids.list_append () in
  Alcotest.(check bool) "rebracketing irrelevant" true
    (Monoid.fold m xs = Monoid.fold_tree m xs);
  Alcotest.(check (list int)) "empty fold" [] (Monoid.fold_tree m [])

let prop_counter_merge_is_multiset_union =
  QCheck2.Test.make ~name:"counter merge = multiset union" ~count:300
    QCheck2.Gen.(pair (list (string_size (int_range 1 3))) (list (string_size (int_range 1 3))))
    (fun (a, b) ->
      let m = Monoids.counter () in
      let merged =
        Monoids.counter_entries
          (m.Monoid.combine (Monoids.counter_of_list a) (Monoids.counter_of_list b))
      in
      merged = Monoids.counter_of_list (a @ b))

let prop_hv_concat_preserves_order =
  QCheck2.Test.make ~name:"hypervector concat = list append" ~count:300
    QCheck2.Gen.(pair (list small_int) (list small_int))
    (fun (a, b) ->
      let m = Monoids.hypervector () in
      let of_list xs = List.fold_left Monoids.hv_push (m.Rader_monoid.Monoid.identity ()) xs in
      Monoids.hv_to_list (m.Rader_monoid.Monoid.combine (of_list a) (of_list b)) = a @ b)

let () =
  Alcotest.run "monoid"
    [
      ( "laws",
        [
          Alcotest.test_case "int monoids" `Quick test_int_monoid_laws;
          Alcotest.test_case "bool/float" `Quick test_bool_float_laws;
          Alcotest.test_case "list/string" `Quick test_list_string_laws;
          Alcotest.test_case "pair" `Quick test_pair_law;
          Alcotest.test_case "arg_max" `Quick test_arg_max;
          Alcotest.test_case "counter" `Quick test_counter;
        ] );
      ( "structures",
        [
          Alcotest.test_case "bag" `Quick test_bag_semantics;
          Alcotest.test_case "hypervector" `Quick test_hypervector_order;
          Alcotest.test_case "fold_tree" `Quick test_fold_tree_matches_fold;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_counter_merge_is_multiset_union; prop_hv_concat_preserves_order ] );
    ]
