examples/linked_list_race.mli:
