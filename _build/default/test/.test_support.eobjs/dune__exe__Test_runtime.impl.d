test/test_runtime.ml: Alcotest Array Buffer Cell Cilk Engine Fun Hashtbl List Mylist Option Printf Rader_dag Rader_runtime Rarray Reducer Rhashtbl Rmonoid Rvec Steal_spec
