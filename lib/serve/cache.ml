(* Bounded LRU verdict cache.

   Exact LRU over a hash table plus an intrusive doubly-linked recency
   list: find and add are O(1), eviction pops the list's tail. Not
   thread-safe — the server serializes access under its admission lock. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most-recent *)
  mutable next : ('k, 'v) node option;  (* towards least-recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Cache.create: cap must be >= 1";
  {
    cap;
    tbl = Hashtbl.create (min cap 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value

let add t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.tbl >= t.cap then (
        match t.tail with
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.key;
            t.evictions <- t.evictions + 1
        | None -> ());
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.tbl k n;
      push_front t n

let len t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
