lib/runtime/rarray.mli: Engine
