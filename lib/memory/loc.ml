module Dynarr = Rader_support.Dynarr

type t = int

(* Ranges are stored as (first_id, label) and resolved by binary search so
   that allocating a million-slot array costs O(1), not O(n) label strings. *)
type registry = {
  mutable next : int;
  starts : int Dynarr.t;
  labels : string Dynarr.t;
  sizes : int Dynarr.t;
}

let registry () =
  { next = 0; starts = Dynarr.create (); labels = Dynarr.create (); sizes = Dynarr.create () }

let alloc_range reg ~label n =
  if n <= 0 then invalid_arg "Loc.alloc_range: size must be positive";
  let first = reg.next in
  reg.next <- reg.next + n;
  Dynarr.push reg.starts first;
  Dynarr.push reg.labels label;
  Dynarr.push reg.sizes n;
  first

let alloc reg ~label = alloc_range reg ~label 1

let label reg loc =
  if loc < 0 || loc >= reg.next then "?"
  else begin
    (* binary search for the last start <= loc *)
    let lo = ref 0 and hi = ref (Dynarr.length reg.starts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if Dynarr.get reg.starts mid <= loc then lo := mid else hi := mid - 1
    done;
    let base = Dynarr.get reg.starts !lo in
    let name = Dynarr.get reg.labels !lo in
    if Dynarr.get reg.sizes !lo = 1 then name
    else Printf.sprintf "%s[%d]" name (loc - base)
  end

let count reg = reg.next

let reset reg =
  reg.next <- 0;
  Dynarr.clear reg.starts;
  Dynarr.clear reg.labels;
  Dynarr.clear reg.sizes
