(** Observability: detector-wide operation counters and phase timers.

    The paper's headline results are complexity bounds — Peer-Set runs in
    [O(T α(x,x))] (Theorem 4) and SP+ in [O((T + Mτ) α(v,v))] (Theorem 5)
    — whose dominant terms are disjoint-set and shadow-space operations.
    This module counts exactly those operations so the bounds can be
    measured and regression-tested (see [test/test_complexity.ml] and the
    bench harness's S6 table) instead of trusted.

    {2 Model}

    Counting is process-wide gated by {!set_enabled} and accumulated into
    one {!counters} record {e per domain} (domain-local storage). Off —
    the default — every instrumentation site costs one load-and-branch.
    On, sites pay a domain-local lookup plus a field increment.

    Parallel sweeps make per-replay deltas with {!snapshot} / {!since} and
    sum them in task order, which keeps merged counters byte-identical to
    a serial run (each replay's work is deterministic; addition is
    order-independent; the order is fixed anyway). *)

type counters = {
  mutable engine_runs : int;  (** completed (or contained) engine runs *)
  mutable events : int;  (** strand starts + instrumented accesses *)
  mutable strands : int;
  mutable frames : int;
  mutable spawns : int;
  mutable syncs : int;
  mutable steals : int;  (** simulated steals (spec-elicited regions) *)
  mutable reduce_calls : int;  (** user [Reduce] bodies actually run *)
  mutable reads : int;
  mutable writes : int;
  mutable reducer_reads : int;
  mutable dset_adds : int;
  mutable dset_finds : int;
  mutable dset_unions : int;
  mutable dset_compress_steps : int;
      (** parent pointers rewritten by path compression — the amortized
          α-term made visible *)
  mutable bag_makes : int;
  mutable bag_unions : int;
  mutable bag_finds : int;
  mutable shadow_lookups : int;
  mutable shadow_updates : int;
  mutable peerset_queries : int;  (** Peer-Set reducer-read checks *)
  mutable reach_fp_queries : int;
      (** precedence queries answered by the fingerprint (depa) backend *)
  mutable reach_fp_words : int;
      (** fingerprint words compared — the worst-case O(⌈depth/w⌉) term *)
  mutable reach_epoch_ops : int;
      (** view-epoch bookkeeping: records at frame return plus survivor
          binary-search steps at query time *)
  mutable online_tasks : int;
      (** tasks (continuations + root) executed by the online runtime *)
  mutable online_deque_steals : int;
      (** successful cross-worker deque steals in the online runtime *)
  mutable online_parks : int;
      (** online syncs that actually suspended waiting for a child *)
}

val zero : unit -> counters
val copy : counters -> counters

(** [add ~into c] accumulates [c] into [into], field-wise. *)
val add : into:counters -> counters -> unit

(** [diff a b] is [a - b], field-wise. *)
val diff : counters -> counters -> counters

val equal : counters -> counters -> bool
val is_zero : counters -> bool

(** [to_assoc c] is every counter as [(name, value)] in a stable order —
    the names are schema keys (never renamed, only added). *)
val to_assoc : counters -> (string * int) list

(** Aggregates used by the cost-model checks: total disjoint-set work
    (finds + unions + compression steps), shadow-space work, bag work. *)
val dset_ops : counters -> int

val shadow_ops : counters -> int
val bag_ops : counters -> int

(** Fingerprint-backend work: words compared plus epoch bookkeeping — the
    depa-backend analogue of {!dset_ops}[ + ]{!bag_ops}. *)
val reach_ops : counters -> int

(** {1 Enabling and reading} *)

(** [enabled ()] is the process-wide flag instrumentation sites check
    before bumping. Reading it is the entire off-cost of the layer. *)
val enabled : unit -> bool

(** [set_enabled b] flips counting on or off for {e every} domain. Set it
    before spawning worker domains; workers observe the value at their
    first instrumented operation. *)
val set_enabled : bool -> unit

(** [cur ()] is the calling domain's live counters record. *)
val cur : unit -> counters

(** [snapshot ()] is a copy of the calling domain's counters. *)
val snapshot : unit -> counters

(** [since snap] is what the calling domain accumulated after [snap] was
    taken. *)
val since : counters -> counters

(** [with_enabled f] runs [f] with counting on (restoring the previous
    flag afterwards, exceptions included) and returns [f ()] together
    with the calling domain's delta over the call. *)
val with_enabled : (unit -> 'a) -> 'a * counters

(** {1 Instrumentation sites} — called by the substrates, only under
    {!enabled}. *)

val bump_dset_add : unit -> unit
val bump_dset_find : compress_steps:int -> unit
val bump_dset_union : unit -> unit
val bump_bag_make : unit -> unit
val bump_bag_union : unit -> unit
val bump_bag_find : unit -> unit
val bump_shadow_lookup : unit -> unit
val bump_shadow_update : unit -> unit
val bump_peerset_query : unit -> unit

(** One fingerprint precedence query that compared [words] words. *)
val bump_reach_query : words:int -> unit

(** [steps] view-epoch operations (records or survivor-search steps). *)
val bump_reach_epoch : steps:int -> unit

(** Online-runtime sites, bumped from the worker domain doing the work —
    the per-domain records shard the counts, and the runtime sums the
    per-worker deltas when it joins its domains. *)
val bump_online_task : unit -> unit

val bump_online_deque_steal : unit -> unit
val bump_online_park : unit -> unit

(** [note_engine_run ...] flushes one whole engine run's event counts
    (the engine already maintains them for [Engine.stats], so per-event
    cost stays zero). Called by the engine at run completion and during
    contained unwinding. *)
val note_engine_run :
  events:int ->
  strands:int ->
  frames:int ->
  spawns:int ->
  syncs:int ->
  steals:int ->
  reduce_calls:int ->
  reads:int ->
  writes:int ->
  reducer_reads:int ->
  unit

(** {1 Rendering} *)

(** [to_table_string c] is a two-column human-readable table body. *)
val to_table_string : counters -> string

(** [to_json_string c] is the counters as one flat JSON object (stable
    keys, suitable for embedding). *)
val to_json_string : counters -> string

(** {1 Clock and phase timers} *)

(** [now_us ()] is a wall-clock timestamp in microseconds — the shared
    timebase of phase timers and Chrome-trace spans. *)
val now_us : unit -> float

type phase

(** [phase name] is a fresh accumulating timer. *)
val phase : string -> phase

(** [timed p f] runs [f], charging its wall time to [p] (exceptions
    included). *)
val timed : phase -> (unit -> 'a) -> 'a

val phase_name : phase -> string
val phase_seconds : phase -> float
val phase_count : phase -> int
