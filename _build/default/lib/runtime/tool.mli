(** The instrumentation interface between the Cilk engine and race
    detectors.

    A {e tool} is a record of callbacks invoked by the engine at every
    parallel-control construct and every instrumented memory access — the
    OCaml analogue of Rader's compiler instrumentation (low-overhead
    annotations for control constructs, ThreadSanitizer hooks for memory
    accesses; paper §8). Detectors (Peer-Set, SP-bags, SP+) are
    implementations of this interface; [null] is the paper's "empty tool"
    used as the instrumentation-only overhead baseline of Figure 8.

    Callback discipline (guaranteed by the engine):
    - [on_frame_enter]/[on_frame_return] are properly nested; the root frame
      (id 0, [parent = -1]) brackets the whole run.
    - [on_spawn_return]/[on_call_return] fire {e after} the child's
      [on_frame_return], in the parent's context.
    - [on_sync] fires for every explicit sync and for the implicit sync
      before each frame return (Cilk functions always sync before
      returning).
    - [on_steal] fires when a continuation designated by the steal
      specification begins executing on a fresh view/region.
    - [on_reduce] fires when the two most recently opened regions of the
      current sync block are merged — {e before} the [Reduce_fn] frames
      (zero or more, one per reducer holding views in both regions) run.
    - [on_read]/[on_write]/[on_reducer_read] carry the id of the frame
      performing the access; [view_aware] is true inside [Update_fn],
      [Reduce_fn] and [Identity_fn] frames. *)

(** Why a frame was created. *)
type frame_kind =
  | User_fn  (** a spawned or called Cilk function *)
  | Update_fn  (** body of [Reducer.update] *)
  | Reduce_fn  (** a runtime-invoked [Reduce] operation *)
  | Identity_fn  (** a runtime-invoked [Create-Identity] *)

type t = {
  on_frame_enter : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_frame_return : frame:int -> parent:int -> spawned:bool -> kind:frame_kind -> unit;
  on_sync : frame:int -> unit;
  on_steal : frame:int -> region:int -> unit;
  on_reduce : frame:int -> into_region:int -> from_region:int -> unit;
  on_read : frame:int -> loc:int -> view_aware:bool -> unit;
  on_write : frame:int -> loc:int -> view_aware:bool -> unit;
  on_reducer_read : frame:int -> reducer:int -> unit;
}

(** [null] ignores every event — the "empty tool" baseline. *)
val null : t

(** [both a b] dispatches every event to [a] then [b]. *)
val both : t -> t -> t

(** [is_view_aware_kind k] is true for [Update_fn], [Reduce_fn],
    [Identity_fn]. *)
val is_view_aware_kind : frame_kind -> bool

(** [frame_kind_name k] is a short printable name. *)
val frame_kind_name : frame_kind -> string
