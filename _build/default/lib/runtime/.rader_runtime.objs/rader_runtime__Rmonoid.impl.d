lib/runtime/rmonoid.ml: Buffer Cell Rader_monoid Reducer
