module Coverage = Rader_core.Coverage
module Steal_spec = Rader_runtime.Steal_spec
module Engine = Rader_runtime.Engine

(* The closed-form §7 verdict, computed from the PR 4 IR. Three facts make
   it exact (soundness argument in DESIGN.md §14):

   1. SP+ under [Steal_spec.none] reduces to a parse-tree query — racy iff
      some serially-ordered access pair at the location is logically
      parallel, writes at least once, and has a view-oblivious later
      endpoint ([Coverage.scan_trace] recomputes exactly that).
   2. Every spec outside the *residual set* — the [spec_relevant] specs of
      the family minus [none] — replays byte-identically to [none] (the
      PR 4 relevance lemma), so the whole-family verdict is determined by
      the no-steal verdict plus the residual replays.
   3. A no-steal-racy pair whose endpoints are *both* view-oblivious stays
      racy under every spec of the family: plain user strands execute at
      the same location under any steal placement, their SP relation is
      program-determined, and the later-endpoint-oblivious check fires
      regardless of view ids. Those locations are *spec-independent* races
      (lint R006).

   What stays out of closed-form reach — the measured incompleteness
   boundary — is exactly the residual set: a steal there can relocate a
   view-aware access onto a freshly created view, run identity/reduce
   code the no-steal IR never saw, and change view-id comparisons. Those
   few specs are replayed, not predicted. *)

type t = {
  scan : Coverage.scan;  (** per-location no-steal verdict + certificates *)
  prof : Coverage.profile;
  residual : Steal_spec.t list;
      (** relevant specs beyond [none], in family order — the only specs
          whose verdict the closed form cannot predict *)
  n_family : int;  (** size of the full §7 family for this profile *)
}

let analyze ?max_pairs ~prof (ir : Ir.t) =
  let scan = Coverage.scan_trace ?max_pairs ir.Ir.trace in
  let family = Coverage.all_specs ~k:prof.Coverage.k ~d:prof.Coverage.d in
  let residual =
    List.filter
      (fun (s : Steal_spec.t) ->
        s.Steal_spec.shape <> Steal_spec.Never
        && Coverage.spec_relevant prof s)
      family
  in
  { scan; prof; residual; n_family = List.length family }

let racy_locs t =
  List.map (fun ls -> ls.Coverage.ls_loc) t.scan.Coverage.scan_racy

let always_racy_locs t =
  List.filter_map
    (fun (ls : Coverage.loc_scan) ->
      if ls.Coverage.ls_always then Some ls.Coverage.ls_loc else None)
    t.scan.Coverage.scan_racy

let witness_pair t loc =
  List.find_map
    (fun (ls : Coverage.loc_scan) ->
      if ls.Coverage.ls_loc = loc then
        Some (ls.Coverage.ls_first, ls.Coverage.ls_second)
      else None)
    t.scan.Coverage.scan_racy

let certificate t loc =
  List.assoc_opt loc t.scan.Coverage.scan_clean

let complete t = not t.scan.Coverage.scan_truncated

(* Specs a sound checker must still replay: the no-steal spec whenever the
   scan found (or could have missed) a race there, then the residual set.
   Empty exactly when the whole family is proved race-free with zero
   replays. *)
let replay_specs t =
  let need_none =
    t.scan.Coverage.scan_racy <> [] || t.scan.Coverage.scan_truncated
  in
  (if need_none then [ Steal_spec.none ] else []) @ t.residual

let certificate_string = function
  | Coverage.No_parallel_pair -> "no parallel pair"
  | Coverage.Parallel_reads_only -> "parallel reads only"
  | Coverage.Va_suppressed -> "view-aware endpoints only"
