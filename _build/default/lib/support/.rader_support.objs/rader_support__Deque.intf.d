lib/support/deque.mli:
