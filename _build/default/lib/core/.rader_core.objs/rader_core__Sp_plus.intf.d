lib/core/sp_plus.mli: Rader_runtime Report
