lib/monoid/monoid.mli:
