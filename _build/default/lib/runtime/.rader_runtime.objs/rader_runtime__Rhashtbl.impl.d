lib/runtime/rhashtbl.ml: Array Cell Hashtbl List Option Reducer
