module Dynarr = Rader_support.Dynarr
module Obs = Rader_obs.Obs

type t = {
  parent : int Dynarr.t; (* parent.(x) = x for roots; -1 for absent *)
  rank : int Dynarr.t;
  mutable count : int;
}

let create () = { parent = Dynarr.create (); rank = Dynarr.create (); count = 0 }

let mem t x = x >= 0 && x < Dynarr.length t.parent && Dynarr.get t.parent x >= 0

let add t x =
  if x < 0 then invalid_arg "Dset.add: negative element";
  Dynarr.ensure t.parent (x + 1) (-1);
  Dynarr.ensure t.rank (x + 1) 0;
  if Dynarr.get t.parent x >= 0 then invalid_arg "Dset.add: element already present";
  Dynarr.set t.parent x x;
  Dynarr.set t.rank x 0;
  t.count <- t.count + 1;
  if Obs.enabled () then Obs.bump_dset_add ()

(* Iterative two-pass path compression: walk to the root, then rewrite
   every parent pointer on the path. The textbook recursive version
   allocates a stack frame per link; parent chains produced by large
   coverage sweeps (hundreds of thousands of frames) must not be able to
   blow the OCaml stack, so both passes are loops. *)
let find_root t x =
  let r = ref x in
  while Dynarr.get t.parent !r <> !r do
    r := Dynarr.get t.parent !r
  done;
  let root = !r in
  if Obs.enabled () then begin
    let steps = ref 0 in
    let c = ref x in
    while Dynarr.get t.parent !c <> root do
      let next = Dynarr.get t.parent !c in
      Dynarr.set t.parent !c root;
      incr steps;
      c := next
    done;
    Obs.bump_dset_find ~compress_steps:!steps
  end
  else begin
    let c = ref x in
    while Dynarr.get t.parent !c <> root do
      let next = Dynarr.get t.parent !c in
      Dynarr.set t.parent !c root;
      c := next
    done
  end;
  root

let find t x =
  if not (mem t x) then invalid_arg "Dset.find: unknown element";
  find_root t x

let union t a b =
  if Obs.enabled () then Obs.bump_dset_union ();
  let ra = find t a and rb = find t b in
  if ra = rb then ra
  else begin
    let ka = Dynarr.get t.rank ra and kb = Dynarr.get t.rank rb in
    if ka < kb then begin
      Dynarr.set t.parent ra rb;
      rb
    end
    else if ka > kb then begin
      Dynarr.set t.parent rb ra;
      ra
    end
    else begin
      Dynarr.set t.parent rb ra;
      Dynarr.set t.rank ra (ka + 1);
      ra
    end
  end

let same_set t a b = find t a = find t b

let cardinal t = t.count

let clear t =
  Dynarr.clear t.parent;
  Dynarr.clear t.rank;
  t.count <- 0
