(* Many-client load driver: N client threads fire requests at a server
   and tally every outcome. Doubles as the S8 bench workload and as the
   acceptance harness for the chaos criteria ("every request answered").

   [malformed_rate] optionally precedes a request with a mutated copy of
   its own encoded frame (random byte flips, truncations, oversized
   length prefixes) — the server must answer each with a structured
   Proto_error (or close that connection cleanly) and keep serving. *)

module Rng = Rader_support.Rng

type tally = {
  mutable sent : int;
  mutable verdicts : int;  (* complete verdicts (clean or racy) *)
  mutable partials : int;
  mutable cached : int;
  mutable faults : int;
  mutable sheds : int;  (* gave up after retries *)
  mutable rejected : int;  (* structured Proto_error answers *)
  mutable malformed_sent : int;
  mutable malformed_answered : int;
  mutable transport_errors : int;
}

let new_tally () =
  {
    sent = 0;
    verdicts = 0;
    partials = 0;
    cached = 0;
    faults = 0;
    sheds = 0;
    rejected = 0;
    malformed_sent = 0;
    malformed_answered = 0;
    transport_errors = 0;
  }

let merge ~into d =
  into.sent <- into.sent + d.sent;
  into.verdicts <- into.verdicts + d.verdicts;
  into.partials <- into.partials + d.partials;
  into.cached <- into.cached + d.cached;
  into.faults <- into.faults + d.faults;
  into.sheds <- into.sheds + d.sheds;
  into.rejected <- into.rejected + d.rejected;
  into.malformed_sent <- into.malformed_sent + d.malformed_sent;
  into.malformed_answered <- into.malformed_answered + d.malformed_answered;
  into.transport_errors <- into.transport_errors + d.transport_errors

type result = {
  tally : tally;
  elapsed_s : float;
  checks_per_s : float;  (* answered submits (any outcome) per second *)
}

let answered t =
  t.verdicts + t.partials + t.faults + t.sheds + t.rejected

(* Mutate an encoded body into a hostile frame. Sent raw (with a
   hand-built prefix) so we can also lie about the length. *)
let send_malformed rng fd body =
  let n = String.length body in
  let mode = Rng.int rng 4 in
  let raw =
    let put_u32 b v =
      Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
      Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
      Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
      Buffer.add_char b (Char.chr (v land 0xff))
    in
    let b = Buffer.create (n + 4) in
    (match mode with
    | 0 ->
        (* flip some bytes in the body; framing stays valid *)
        let bytes = Bytes.of_string body in
        for _ = 0 to 1 + Rng.int rng 4 do
          let i = Rng.int rng n in
          Bytes.set bytes i (Char.chr (Rng.int rng 256))
        done;
        put_u32 b n;
        Buffer.add_bytes b bytes
    | 1 ->
        (* truncated payload: claim more than we send, then a valid
           frame after it would be misparsed — so this closes the conn *)
        put_u32 b (n + 32);
        Buffer.add_string b body
    | 2 ->
        (* oversized length prefix, no body *)
        put_u32 b (Proto.max_frame + 1 + Rng.int rng 1000)
    | _ ->
        (* bad version byte; framing stays valid *)
        put_u32 b n;
        Buffer.add_char b '\xff';
        Buffer.add_string b (String.sub body 1 (n - 1)));
    Buffer.contents b
  in
  (* frame-preserving modes expect a Proto_error answer; the others
     desynchronize the stream and expect an error + close *)
  let recoverable = mode = 0 || mode = 3 in
  let wrote =
    match
      let b = Bytes.unsafe_of_string raw in
      let len = Bytes.length b in
      let w = ref 0 in
      while !w < len do
        w := !w + Unix.write fd b !w (len - !w)
      done
    with
    | () -> true
    | exception Unix.Unix_error (_, _, _) -> false
  in
  (recoverable, wrote)

let client_thread ~addr ~requests ~seed ~malformed_rate ~retries ~make
    ~(tally : tally) start_gate cid () =
  let rng = Rng.create (seed + (cid * 7919)) in
  let gmu, started = start_gate in
  let rec wait_gate () =
    Mutex.lock gmu;
    let s = !started in
    Mutex.unlock gmu;
    if not s then begin
      Thread.delay 0.001;
      wait_gate ()
    end
  in
  wait_gate ();
  let cl = ref None in
  let get_client () =
    match !cl with
    | Some c -> Ok c
    | None -> (
        match Client.connect addr with
        | Ok c ->
            cl := Some c;
            Ok c
        | Error _ as e -> e)
  in
  for i = 0 to requests - 1 do
    let sub = make ((cid * requests) + i) in
    tally.sent <- tally.sent + 1;
    match get_client () with
    | Error _ -> tally.transport_errors <- tally.transport_errors + 1
    | Ok c -> (
        (* optionally poke the server with a hostile frame first *)
        (if malformed_rate > 0.0 && Rng.bernoulli rng malformed_rate then begin
           tally.malformed_sent <- tally.malformed_sent + 1;
           let body =
             Proto.encode_request ~id:999_999 (Proto.Submit sub)
           in
           let recoverable, wrote = send_malformed rng (Client.fd c) body in
           (* Only frame-valid mutations get a reply for certain. A
              truncated payload leaves the server legitimately waiting
              for the rest of the frame — blocking on a reply there
              would deadlock; closing is the protocol-correct move (the
              server sees a mid-frame EOF and discards the stream). *)
           if wrote && recoverable then begin
             match Proto.recv (Client.fd c) with
             | Ok _ | Error (`Err _) | Error `Eof ->
                 tally.malformed_answered <- tally.malformed_answered + 1
             | exception Unix.Unix_error (_, _, _) -> ()
           end;
           Client.close c;
           cl := None
         end);
        match get_client () with
        | Error _ -> tally.transport_errors <- tally.transport_errors + 1
        | Ok c -> (
            match Client.submit ~retries c sub with
            | Ok (Client.Verdict v) ->
                if v.Proto.status = Proto.Partial then
                  tally.partials <- tally.partials + 1
                else tally.verdicts <- tally.verdicts + 1;
                if v.Proto.cached then tally.cached <- tally.cached + 1
            | Ok (Client.Fault _) ->
                tally.faults <- tally.faults + 1;
                (* the worker serving us died; the connection survived,
                   but be conservative and reconnect *)
                Client.close c;
                cl := None
            | Ok Client.Shed -> tally.sheds <- tally.sheds + 1
            | Ok (Client.Rejected _) -> tally.rejected <- tally.rejected + 1
            | Error _ ->
                tally.transport_errors <- tally.transport_errors + 1;
                Client.close c;
                cl := None))
  done;
  match !cl with Some c -> Client.close c | None -> ()

let run ?(seed = 42) ?(malformed_rate = 0.0) ?(retries = 5) ~addr ~clients
    ~requests_per_client ~make () =
  let tallies = Array.init clients (fun _ -> new_tally ()) in
  let gate = (Mutex.create (), ref false) in
  let threads =
    List.init clients (fun cid ->
        Thread.create
          (client_thread ~addr ~requests:requests_per_client ~seed
             ~malformed_rate ~retries ~make ~tally:tallies.(cid) gate cid)
          ())
  in
  let t0 = Unix.gettimeofday () in
  Mutex.lock (fst gate);
  snd gate := true;
  Mutex.unlock (fst gate);
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let total = new_tally () in
  Array.iter (fun d -> merge ~into:total d) tallies;
  {
    tally = total;
    elapsed_s;
    checks_per_s =
      (if elapsed_s > 0.0 then float_of_int (answered total) /. elapsed_s
       else 0.0);
  }
