lib/runtime/steal_spec.ml: Int Int64 List Printf Set String
