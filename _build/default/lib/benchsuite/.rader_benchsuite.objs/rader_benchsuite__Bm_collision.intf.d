lib/benchsuite/bm_collision.mli: Bench_def
