type elt = int

type t = {
  tag : int Dynarr.t;
  prev : int Dynarr.t; (* -1 at the head *)
  next : int Dynarr.t; (* -1 at the tail *)
  mutable relabels : int;
}

(* OCaml ints are 63-bit; keep tags in [0, 2^60) so midpoints and range
   arithmetic never overflow. *)
let tag_space_bits = 60
let tag_limit = 1 lsl tag_space_bits (* exclusive upper bound on tags *)
let end_gap = 1 lsl 32 (* preferred gap when appending at the tail *)

let create () =
  let t =
    { tag = Dynarr.create (); prev = Dynarr.create (); next = Dynarr.create (); relabels = 0 }
  in
  Dynarr.push t.tag (tag_limit / 2);
  Dynarr.push t.prev (-1);
  Dynarr.push t.next (-1);
  t

let base _ = 0

let length t = Dynarr.length t.tag

let check t x =
  if x < 0 || x >= length t then invalid_arg "Om: unknown element"

let precedes t a b =
  check t a;
  check t b;
  Dynarr.get t.tag a < Dynarr.get t.tag b

let to_list t =
  (* find head, then walk *)
  let rec head x = if Dynarr.get t.prev x = -1 then x else head (Dynarr.get t.prev x) in
  let rec walk x acc = if x = -1 then List.rev acc else walk (Dynarr.get t.next x) (x :: acc) in
  walk (head 0) []

let relabel_count t = t.relabels

(* Spread the elements whose tags lie in the aligned range [l, l + w)
   around [x] evenly across that range. Returns unit; tags end up strictly
   increasing with gaps >= 2 provided w >= 4·count². *)
let relabel_range t x ~l ~w =
  (* find leftmost member of the range *)
  let in_range e = e <> -1 && Dynarr.get t.tag e >= l && Dynarr.get t.tag e < l + w in
  let leftmost = ref x in
  while in_range (Dynarr.get t.prev !leftmost) do
    leftmost := Dynarr.get t.prev !leftmost
  done;
  (* collect members in order *)
  let members = ref [] in
  let cursor = ref !leftmost in
  while in_range !cursor do
    members := !cursor :: !members;
    cursor := Dynarr.get t.next !cursor
  done;
  let members = List.rev !members in
  let count = List.length members in
  let stride = w / (count + 1) in
  List.iteri
    (fun k e ->
      Dynarr.set t.tag e (l + ((k + 1) * stride));
      t.relabels <- t.relabels + 1)
    members

(* Ensure there is tag room immediately after [x]; relabel if needed. *)
let make_room t x =
  let next = Dynarr.get t.next x in
  let next_tag = if next = -1 then tag_limit else Dynarr.get t.tag next in
  if next_tag - Dynarr.get t.tag x >= 2 then ()
  else begin
    (* grow aligned ranges around x's tag until sparse enough *)
    let rec grow i =
      if i > tag_space_bits then failwith "Om: tag space exhausted";
      let w = 1 lsl i in
      let l = Dynarr.get t.tag x land lnot (w - 1) in
      (* count members in [l, l+w) by walking both ways *)
      let in_range e = e <> -1 && Dynarr.get t.tag e >= l && Dynarr.get t.tag e < l + w in
      let count = ref 1 in
      let c = ref (Dynarr.get t.prev x) in
      while in_range !c do
        incr count;
        c := Dynarr.get t.prev !c
      done;
      c := Dynarr.get t.next x;
      while in_range !c do
        incr count;
        c := Dynarr.get t.next !c
      done;
      if w >= 4 * !count * !count && w >= 4 then relabel_range t x ~l ~w
      else grow (i + 1)
    in
    grow 2
  end

let insert_after t x =
  check t x;
  make_room t x;
  let next = Dynarr.get t.next x in
  let next_tag = if next = -1 then tag_limit else Dynarr.get t.tag next in
  let xtag = Dynarr.get t.tag x in
  let gap = next_tag - xtag in
  let newtag = if next = -1 then xtag + min (gap / 2) end_gap else xtag + (gap / 2) in
  let y = length t in
  Dynarr.push t.tag newtag;
  Dynarr.push t.prev x;
  Dynarr.push t.next next;
  Dynarr.set t.next x y;
  if next <> -1 then Dynarr.set t.prev next y;
  y
