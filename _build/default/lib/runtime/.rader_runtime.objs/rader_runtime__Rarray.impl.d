lib/runtime/rarray.ml: Array Engine
