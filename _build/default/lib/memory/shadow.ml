module Dynarr = Rader_support.Dynarr

type t = int Dynarr.t

let absent = -1

let create () = Dynarr.create ()

let get t loc = if loc < Dynarr.length t then Dynarr.get t loc else absent

let set t loc v =
  if v < 0 then invalid_arg "Shadow.set: negative value";
  Dynarr.ensure t (loc + 1) absent;
  Dynarr.set t loc v

let clear t = Dynarr.clear t
