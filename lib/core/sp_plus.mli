(** The SP+ algorithm (paper §5–§6, Fig. 6).

    Detects determinacy races in Cilk computations {e that use reducers},
    executed serially under a steal specification that fixes which
    continuations are stolen and which reduce operations run when. SP+
    extends SP-bags in two ways:

    - Each function instantiation [F] keeps, instead of one P bag, a
      {e stack} of P bags, each tagged with a view ID ([vid]): executing a
      stolen continuation pushes a fresh P bag with the new view's id, and
      every runtime [Reduce] pops the top P bag and unions it into the one
      below (the destination's vid survives) — imitating how the runtime
      creates views at steals and destroys dominated views at reduces.

    - Accesses by {e view-aware} strands (update / reduce /
      create-identity code) only race with parallel accesses whose
      recorded P bag carries a {e different} vid — logically parallel
      strands operating on the same view are in series through the reduce
      tree. A reduce strand may also overwrite a shadow entry whose bag
      shares its vid, since the reduce serializes with those strands.

    The S/P/vid bookkeeping itself lives behind the pluggable
    {!Rader_reach.Reach.Sp} precedence backend: [Dset] (the default) is
    the bag/disjoint-set machinery above, [Depa] answers the same queries
    from fork-path fingerprints in worst-case O(1) per query. Verdicts are
    identical; only the cost model changes.

    Correct for the execution named by the steal specification
    (paper §6); cost O((T + Mτ) α(v, v)) for M steals and reduce cost τ
    (Theorem 5) under [Dset], O(T + Mτ) under [Depa]. Combine with
    {!Coverage} for the §7 guarantee. *)

type t

val create : ?reach:Rader_reach.Reach.backend -> Rader_runtime.Engine.t -> t
val tool : t -> Rader_runtime.Tool.t
val attach : ?reach:Rader_reach.Reach.backend -> Rader_runtime.Engine.t -> t

(** [backend d] is the precedence backend [d] was created with. *)
val backend : t -> Rader_reach.Reach.backend

(** [reset d] empties all detector state (precedence backend, frame
    stack, shadow spaces, collected reports) while keeping the grown
    arenas, and re-installs [d] as its engine's tool. Call right after
    [Engine.reset] on the same engine to replay another steal
    specification without reallocating — one [attach]+[reset] pair per
    spec is observationally identical to a fresh engine+detector pair. *)
val reset : t -> unit

val races : t -> Report.t list
val found : t -> bool

(** [racy_locs d] is the sorted list of distinct racy location ids. *)
val racy_locs : t -> int list
