(** The SP-bags algorithm [Feng & Leiserson '99] — the baseline detector.

    Detects determinacy races in computations {e without} reducers: every
    function instantiation [F] keeps an S bag (completed descendants in
    series with the current strand) and a P bag (completed descendants
    logically parallel to it); shadow spaces [reader]/[writer] keep the
    last accessor of each location, and an access races iff the recorded
    accessor lies in a P bag.

    SP-bags is {e not} reducer-aware: it ignores steal and reduce events
    and treats view-aware accesses like ordinary ones. Run on a computation
    that uses reducers under a steal specification, it can both miss races
    (it never sees reduce strands under [Steal_spec.none] — the situation
    of the paper's Figure 1) and report false positives (it takes a reduce
    strand's accesses, which are in series with the views it merges, to be
    parallel) — this is precisely the motivation for SP+ (paper §1, §5).
    It is included as the correctness baseline for view-oblivious programs
    and for overhead comparisons. *)

type t

val create : Rader_runtime.Engine.t -> t
val tool : t -> Rader_runtime.Tool.t
val attach : Rader_runtime.Engine.t -> t
val races : t -> Report.t list
val found : t -> bool
