module Engine = Rader_runtime.Engine
module Dag = Rader_dag.Dag
module Reach = Rader_dag.Reach
module Peers = Rader_dag.Peers

(* All oracles are defined over traces; the Engine entry points extract
   the trace first. *)

let view_read_pairs_t (tr : Trace.t) =
  let peers = Peers.compute tr.Trace.dag in
  let by_reducer = Hashtbl.create 8 in
  List.iter
    (fun (rid, strand) ->
      let prev = try Hashtbl.find by_reducer rid with Not_found -> [] in
      Hashtbl.replace by_reducer rid (strand :: prev))
    tr.Trace.reducer_reads;
  let pairs = ref [] in
  Hashtbl.iter
    (fun rid strands ->
      let strands = List.rev strands in
      let rec go = function
        | [] -> ()
        | s1 :: rest ->
            List.iter
              (fun s2 ->
                if not (Peers.equal_peers peers s1 s2) then
                  pairs := (rid, s1, s2) :: !pairs)
              rest;
            go rest
      in
      go strands)
    by_reducer;
  List.sort compare !pairs

let view_read_races_t tr =
  List.sort_uniq compare (List.map (fun (rid, _, _) -> rid) (view_read_pairs_t tr))

(* Canonical view id of region [r] as of serial time [t]: follow the chain
   of merges that had already happened. Each region is merged away at most
   once, so the chain is a forest with timestamped parent edges. *)
let canonicalizer (tr : Trace.t) =
  let merged_into = Hashtbl.create 32 in
  List.iter
    (fun m -> Hashtbl.replace merged_into m.Engine.m_from (m.Engine.m_into, m.Engine.m_at))
    tr.Trace.merges;
  let rec canon r t =
    match Hashtbl.find_opt merged_into r with
    | Some (into, at) when at <= t -> canon into t
    | _ -> r
  in
  canon

let determinacy_pairs_t (tr : Trace.t) =
  let dag = tr.Trace.dag in
  let reach = Reach.compute dag in
  let canon = canonicalizer tr in
  let by_loc : (int, Engine.access list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let prev = try Hashtbl.find by_loc a.Engine.a_loc with Not_found -> [] in
      Hashtbl.replace by_loc a.Engine.a_loc (a :: prev))
    tr.Trace.accesses;
  let pairs = ref [] in
  Hashtbl.iter
    (fun loc accesses ->
      let accesses = Array.of_list (List.rev accesses) (* serial order *) in
      let n = Array.length accesses in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let e1 = accesses.(i) and e2 = accesses.(j) in
          if
            (e1.Engine.a_is_write || e2.Engine.a_is_write)
            && Reach.parallel reach e1.Engine.a_strand e2.Engine.a_strand
          then begin
            let racy =
              if not e2.Engine.a_view_aware then true
              else begin
                let t = e2.Engine.a_strand in
                let v1 = (Dag.strand dag e1.Engine.a_strand).Dag.view in
                let v2 = (Dag.strand dag e2.Engine.a_strand).Dag.view in
                canon v1 t <> canon v2 t
              end
            in
            if racy then pairs := (loc, e1.Engine.a_strand, e2.Engine.a_strand) :: !pairs
          end
        done
      done)
    by_loc;
  List.sort_uniq compare !pairs

let determinacy_races_t tr =
  List.sort_uniq compare (List.map (fun (l, _, _) -> l) (determinacy_pairs_t tr))

(* ---------- Engine entry points ---------- *)

let view_read_pairs eng = view_read_pairs_t (Trace.of_engine eng)
let view_read_races eng = view_read_races_t (Trace.of_engine eng)
let determinacy_pairs eng = determinacy_pairs_t (Trace.of_engine eng)
let determinacy_races eng = determinacy_races_t (Trace.of_engine eng)
