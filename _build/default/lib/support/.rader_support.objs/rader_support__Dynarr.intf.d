lib/support/dynarr.mli:
