lib/memory/loc.mli:
