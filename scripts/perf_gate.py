#!/usr/bin/env python3
"""Perf gate: fail if the hot-path Fig. 8 overheads regress vs the seed.

Compares a freshly produced BENCH_rader.json (fast mode) against the
committed BENCH_seed.json baseline on the ratios the hot-path overhaul
(DESIGN.md S15) is accountable for: fib and knapsack under the
check_updates / check_reductions steal specs, measured as overhead vs
the empty tool (`fig8_overhead_vs_empty_tool`).

The gate is on the RATIO, not wall-clock, so a uniformly slower CI
runner does not trip it; what trips it is detector- or engine-side work
growing relative to the empty-tool baseline on the same machine. The
tolerance (default 20%, --tolerance) absorbs the fast-mode noise floor:
the empty-tool denominator is a few milliseconds, and its run-to-run
variance moves the ratio a few percent (DESIGN.md S15).

Exit status: 0 all gated ratios within tolerance, 1 regression,
2 malformed/missing input.

Usage: scripts/perf_gate.py [--seed BENCH_seed.json] [--new BENCH_rader.json]
                            [--tolerance 0.20]
"""

import argparse
import json
import sys

GATED_BENCHES = ("fib", "knapsack")
GATED_CONFIGS = ("check_updates", "check_reductions")
FIG8_KEY = "fig8_overhead_vs_empty_tool"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf-gate: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def gated_ratio(doc, path, bench, config):
    try:
        val = doc[FIG8_KEY][bench][config]
    except (KeyError, TypeError):
        print(
            f"perf-gate: {path} has no {FIG8_KEY}.{bench}.{config}",
            file=sys.stderr,
        )
        sys.exit(2)
    if not isinstance(val, (int, float)) or val <= 0:
        print(
            f"perf-gate: {path} {bench}.{config} is not a positive number: {val!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    return float(val)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", default="BENCH_seed.json")
    ap.add_argument("--new", dest="new", default="BENCH_rader.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional regression vs seed (default 0.20 = +20%%)",
    )
    args = ap.parse_args()

    seed = load(args.seed)
    new = load(args.new)

    if not new.get("fast", False):
        print(
            f"perf-gate: {args.new} was not produced in fast mode "
            "(run with RADER_BENCH_FAST=1) — refusing to compare "
            "unlike-for-unlike measurements",
            file=sys.stderr,
        )
        sys.exit(2)

    failures = []
    print(
        f"perf-gate: Fig. 8 overhead vs empty tool, "
        f"tolerance +{args.tolerance:.0%} over {args.seed}"
    )
    print(f"{'benchmark':<10} {'config':<18} {'seed':>7} {'new':>7} {'limit':>7}  verdict")
    for bench in GATED_BENCHES:
        for config in GATED_CONFIGS:
            s = gated_ratio(seed, args.seed, bench, config)
            n = gated_ratio(new, args.new, bench, config)
            limit = s * (1.0 + args.tolerance)
            ok = n <= limit
            print(
                f"{bench:<10} {config:<18} {s:>7.3f} {n:>7.3f} {limit:>7.3f}  "
                f"{'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                failures.append((bench, config, s, n, limit))

    if failures:
        print(file=sys.stderr)
        for bench, config, s, n, limit in failures:
            print(
                f"perf-gate: {bench} {config} regressed: {n:.3f} > "
                f"{limit:.3f} (seed {s:.3f} + {args.tolerance:.0%})",
                file=sys.stderr,
            )
        print(
            "perf-gate: if the regression is intentional, regenerate the "
            "baseline with RADER_BENCH_FAST=1 dune exec bench/main.exe && "
            "cp BENCH_rader.json BENCH_seed.json and justify it in the PR",
            file=sys.stderr,
        )
        return 1
    print("perf-gate: all gated ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
