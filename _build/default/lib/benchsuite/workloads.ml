module Rng = Rader_support.Rng

type graph = { n : int; row : int array; col : int array }

let random_graph ~seed ~n ~m =
  if n <= 0 then invalid_arg "random_graph: n";
  let rng = Rng.create seed in
  (* Skewed endpoint choice: square a uniform to bias toward low ids. *)
  let vertex () =
    let u = Rng.float rng 1.0 in
    let v = int_of_float (u *. u *. float_of_int n) in
    if v >= n then n - 1 else v
  in
  let edges = Array.init m (fun _ -> (vertex (), Rng.int rng n)) in
  let deg = Array.make n 0 in
  Array.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    edges;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let col = Array.make row.(n) 0 in
  let fill = Array.copy row in
  Array.iter
    (fun (a, b) ->
      col.(fill.(a)) <- b;
      fill.(a) <- fill.(a) + 1;
      col.(fill.(b)) <- a;
      fill.(b) <- fill.(b) + 1)
    edges;
  { n; row; col }

let random_bytes ~seed n =
  let rng = Rng.create seed in
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    if Rng.bernoulli rng 0.3 then begin
      (* a run of one repeated byte, compressible and dedupable *)
      let len = min (n - !i) (8 + Rng.int rng 56) in
      let c = Char.chr (Rng.int rng 256) in
      Bytes.fill b !i len c;
      i := !i + len
    end
    else begin
      (* low-entropy "text": a small alphabet *)
      let len = min (n - !i) (4 + Rng.int rng 28) in
      for j = !i to !i + len - 1 do
        Bytes.set b j (Char.chr (97 + Rng.int rng 16))
      done;
      i := !i + len
    end
  done;
  b

let feature_vectors ~seed ~count ~dim =
  let rng = Rng.create seed in
  let n_clusters = max 1 (count / 16) in
  let centers =
    Array.init n_clusters (fun _ -> Array.init dim (fun _ -> Rng.float rng 10.0))
  in
  Array.init count (fun _ ->
      let c = centers.(Rng.int rng n_clusters) in
      Array.init dim (fun j -> c.(j) +. Rng.float rng 1.0))

let knapsack_items ~seed ~n ~max_weight ~max_value =
  let rng = Rng.create seed in
  Array.init n (fun _ -> (1 + Rng.int rng max_weight, 1 + Rng.int rng max_value))

let spheres ~seed ~n ~world =
  let rng = Rng.create seed in
  Array.init n (fun _ ->
      ( Rng.float rng world,
        Rng.float rng world,
        Rng.float rng world,
        0.5 +. Rng.float rng 1.0 ))
