(* Parallel game-tree search with an arg-max reducer: the root's moves are
   searched in parallel, each subtree scored serially, and the best
   (score, move) is folded through an [arg_max] reducer — whose
   left-biased tie-breaking plus the reducer's serial-order guarantee
   makes the chosen move deterministic under every schedule, which a
   naive "compare-and-update a shared best" implementation is not.

   Run with: dune exec examples/minimax.exe *)

open Rader_runtime
open Rader_core
module Monoids = Rader_monoid.Monoids

(* A synthetic game: positions are paths of moves; leaf values come from a
   hash of the path, so the tree is reproducible without game rules. *)
let branching = 4

let leaf_value path =
  let h = List.fold_left (fun acc m -> (acc * 31) + m + 17) 1 path in
  (h * 2654435761) land 1023

let rec minimax path depth maximizing =
  if depth = 0 then leaf_value path
  else begin
    let best = ref (if maximizing then min_int else max_int) in
    for m = 0 to branching - 1 do
      let v = minimax (m :: path) (depth - 1) (not maximizing) in
      if maximizing then best := max !best v else best := min !best v
    done;
    !best
  end

let search_parallel ~depth spec =
  Cilk.exec ~spec (fun ctx ->
      let best =
        Reducer.create ctx
          (Rmonoid.of_pure (Monoids.arg_max ()))
          ~init:None
      in
      Cilk.parallel_for ctx ~lo:0 ~hi:branching (fun ctx m ->
          let score = minimax [ m ] (depth - 1) false in
          Reducer.update ctx best (fun _ b ->
              (Monoids.arg_max ()).Rader_monoid.Monoid.combine b (Some (score, m))));
      Cilk.sync ctx;
      Reducer.get_value ctx best)

let search_serial ~depth =
  let best = ref None in
  for m = 0 to branching - 1 do
    let score = minimax [ m ] (depth - 1) false in
    match !best with
    | Some (s, _) when s >= score -> ()
    | _ -> best := Some (score, m)
  done;
  !best

let () =
  print_endline "== Parallel minimax with an arg-max reducer ==";
  let depth = 8 in
  let reference = search_serial ~depth in
  (match reference with
  | Some (score, move) -> Printf.printf "serial search: move %d scores %d\n" move score
  | None -> print_endline "serial search: no moves");
  List.iter
    (fun (name, spec) ->
      let result, eng = search_parallel ~depth spec in
      Printf.printf "%-18s -> %s (%d steals)\n" name
        (match result with
        | Some (s, m) -> Printf.sprintf "move %d scores %d%s" m s
                           (if result = reference then "" else "  << DIFFERS")
        | None -> "none")
        (Engine.stats eng).Engine.n_steals)
    [
      ("serial schedule", Steal_spec.none);
      ("all stolen", Steal_spec.all ());
      ("random schedule", Steal_spec.random ~seed:8 ~density:0.5 ());
    ];
  (* certify with Peer-Set and SP+ *)
  let eng = Engine.create () in
  let ps = Peer_set.attach eng in
  ignore (Engine.run eng (fun ctx ->
      let best = Reducer.create ctx (Rmonoid.of_pure (Monoids.arg_max ())) ~init:None in
      Cilk.parallel_for ctx ~lo:0 ~hi:branching (fun ctx m ->
          let score = minimax [ m ] 3 false in
          Reducer.update ctx best (fun _ b ->
              (Monoids.arg_max ()).Rader_monoid.Monoid.combine b (Some (score, m))));
      Cilk.sync ctx;
      ignore (Reducer.get_value ctx best)));
  Printf.printf "Peer-Set: %d races; the search is certified deterministic.\n"
    (List.length (Peer_set.races ps))
