type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Dynarr: index %d out of bounds [0,%d)" i t.len)

let get t i = check t i; Array.unsafe_get t.data i

let set t i x = check t i; Array.unsafe_set t.data i x

let grow t x =
  let cap = Array.length t.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit t.data 0 data' 0 t.len;
  t.data <- data'

let push t x =
  if t.len = Array.length t.data then grow t x;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dynarr.pop: empty";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let top t =
  if t.len = 0 then invalid_arg "Dynarr.top: empty";
  Array.unsafe_get t.data (t.len - 1)

let is_empty t = t.len = 0

let clear t = t.len <- 0

let ensure t n x =
  if n > t.len then begin
    if n > Array.length t.data then begin
      let cap' = max n (2 * Array.length t.data) in
      let data' = Array.make cap' x in
      Array.blit t.data 0 data' 0 t.len;
      t.data <- data'
    end;
    Array.fill t.data t.len (n - t.len) x;
    t.len <- n
  end

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get t i :: acc) in
  go (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let exists p t =
  let rec go i = i < t.len && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0

let find_opt p t =
  let rec go i =
    if i >= t.len then None
    else
      let x = Array.unsafe_get t.data i in
      if p x then Some x else go (i + 1)
  in
  go 0
